// Package mrm is the public facade of the Managed-Retention Memory
// simulator, a reproduction of "Storage Class Memory is Dead, All Hail
// Managed-Retention Memory: Rethinking Memory for the AI Era" (HotOS 2025).
//
// The package exposes one runner per experiment in the paper's evaluation
// (EXPERIMENTS.md maps each to the paper's figure or claim), built on the
// internal substrates:
//
//   - internal/core — the MRM device + retention control plane (the paper's
//     contribution)
//   - internal/cellphys, internal/memdev — cell physics and device models
//   - internal/ecc — Hamming SECDED and Reed–Solomon codes
//   - internal/llm, internal/kvcache, internal/cluster — the inference
//     workload
//   - internal/tier — retention-aware placement
//   - internal/endurance, internal/energy — the paper's quantitative
//     analyses
//
// Each Run*/Build* function is deterministic given its seed, returns plain
// data plus a rendered table, and is exercised by both the cmd/ binaries and
// the benchmark harness in bench_test.go.
//
// Sweep-style runners (serving comparisons, retention/ECC/page-size sweeps,
// fleet scale-out) fan their cells out over internal/sweep's deterministic
// worker pool: results are bit-identical at any parallelism, including the
// serial reference (SetParallelism(1) or cmd/mrmsim's -parallel 1).
package mrm

import "mrm/internal/sweep"

// SetParallelism sets the process-wide worker-pool size used by the sweep
// runners. n < 1 resets to runtime.NumCPU (the default); n == 1 forces plain
// serial loops. It returns the previous value so callers can restore it.
// Results never depend on this setting — only wall-clock time does.
func SetParallelism(n int) int { return sweep.SetDefaultWorkers(n) }

// Parallelism returns the current process-wide worker-pool size.
func Parallelism() int { return sweep.DefaultWorkers() }
