// Package mrm is the public facade of the Managed-Retention Memory
// simulator, a reproduction of "Storage Class Memory is Dead, All Hail
// Managed-Retention Memory: Rethinking Memory for the AI Era" (HotOS 2025).
//
// The package exposes one runner per experiment in the paper's evaluation
// (EXPERIMENTS.md maps each to the paper's figure or claim), built on the
// internal substrates:
//
//   - internal/core — the MRM device + retention control plane (the paper's
//     contribution)
//   - internal/cellphys, internal/memdev — cell physics and device models
//   - internal/ecc — Hamming SECDED and Reed–Solomon codes
//   - internal/llm, internal/kvcache, internal/cluster — the inference
//     workload
//   - internal/tier — retention-aware placement
//   - internal/endurance, internal/energy — the paper's quantitative
//     analyses
//
// Each Run*/Build* function is deterministic given its seed, returns plain
// data plus a rendered table, and is exercised by both the cmd/ binaries and
// the benchmark harness in bench_test.go.
package mrm
