package mrm

import (
	"strings"
	"testing"
	"time"

	"mrm/internal/cellphys"
	"mrm/internal/llm"
	"mrm/internal/units"
)

// E1: the figure's three findings must hold in our reproduction.
func TestFigure1Findings(t *testing.T) {
	res := RunFigure1(48 * units.GiB)
	if len(res.Data.Requirements) != 4 {
		t.Fatalf("requirements = %d", len(res.Data.Requirements))
	}
	if !strings.Contains(res.Chart, "HBM3E") || !strings.Contains(res.Chart, "req:") {
		t.Error("chart incomplete")
	}
	if res.Table.NumRows() < 6 {
		t.Error("table incomplete")
	}
}

// E2: read:write ratio exceeds 1000:1 across the sweep and grows with
// context length.
func TestReadWriteRatioShape(t *testing.T) {
	pts, tab, err := RunReadWriteRatio(llm.Llama2_70B, llm.B200,
		[]int{1, 8, 32}, []int{1024, 4096})
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 6 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	for _, p := range pts {
		if p.Ratio < 1000 {
			t.Errorf("batch %d ctx %d: ratio %v < 1000", p.Batch, p.Ctx, p.Ratio)
		}
	}
	// Within a batch, longer context → more KV read per vector written.
	if pts[1].Ratio <= pts[0].Ratio {
		t.Errorf("ratio should grow with context: %v then %v", pts[0].Ratio, pts[1].Ratio)
	}
}

// E3 renders a row per model.
func TestCapacityBreakdown(t *testing.T) {
	tab := RunCapacityBreakdown(4096, 16)
	if tab.NumRows() != len(llm.Models()) {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	out := tab.String()
	for _, want := range []string{"Llama2-70B", "Frontier-500B", "GiB"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

// E4: the trace is overwhelmingly sequential, append-only, read-dominated.
func TestSequentialityShape(t *testing.T) {
	res, err := RunSequentiality(llm.Llama2_70B, 16, 4, 256, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Sequentiality < 0.7 {
		t.Errorf("sequentiality = %v, want high", res.Stats.Sequentiality)
	}
	if res.Stats.AppendOnly < 0.999 {
		t.Errorf("append-only = %v, want ~1", res.Stats.AppendOnly)
	}
	if res.Stats.ReadWriteRatio < 1000 {
		t.Errorf("ratio = %v", res.Stats.ReadWriteRatio)
	}
	if res.Log.Len() == 0 || res.Table.NumRows() != 4 {
		t.Error("outputs incomplete")
	}
}

// E5: HBM pays refresh power; MRM rows pay none.
func TestRefreshOverheadShape(t *testing.T) {
	res := RunRefreshOverhead()
	byName := map[string]RefreshRow{}
	for _, r := range res.Rows {
		byName[r.Name] = r
	}
	if byName["HBM3E"].RefreshPower <= 0 || byName["HBM3E"].BankTimeShare <= 0 {
		t.Error("HBM must pay refresh")
	}
	for name, r := range byName {
		if strings.HasPrefix(name, "MRM-") {
			if r.RefreshPower != 0 || r.BankTimeShare != 0 {
				t.Errorf("%s pays refresh", name)
			}
			if r.IdlePerTBDay >= byName["HBM3E"].IdlePerTBDay {
				t.Errorf("%s idle J/TB/day %v should beat HBM %v",
					name, r.IdlePerTBDay, byName["HBM3E"].IdlePerTBDay)
			}
		}
	}
}

// E6 covers the whole spec database.
func TestDeviceComparisonShape(t *testing.T) {
	tab := RunDeviceComparison()
	out := tab.String()
	for _, want := range []string{"HBM3E", "NAND-TLC", "Optane-PCM", "MRM-RRAM@1d", "managed-retention"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

// E7: the serving comparison's headline — hbm+mrm wins tokens/joule without
// losing throughput.
func TestServingComparisonShape(t *testing.T) {
	p := DefaultServingParams()
	p.NumReqs = 10
	outs, tab, err := RunServingComparison(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 || tab.NumRows() != 3 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	byCfg := map[MemoryConfig]ServingOutcome{}
	for _, o := range outs {
		byCfg[o.Config] = o
		if o.Result.Completed+o.Result.Truncated == 0 {
			t.Fatalf("%v served nothing", o.Config)
		}
	}
	hbm := byCfg[HBMOnly].Result
	mrm := byCfg[HBMPlusMRM].Result
	if mrm.TokensPerJoule <= hbm.TokensPerJoule {
		t.Errorf("tokens/J: mrm %v should beat hbm-only %v", mrm.TokensPerJoule, hbm.TokensPerJoule)
	}
	if mrm.TokensPerSec < hbm.TokensPerSec*0.8 {
		t.Errorf("tokens/s: mrm %v should be within 20%% of hbm-only %v", mrm.TokensPerSec, hbm.TokensPerSec)
	}
}

func TestMemoryConfigString(t *testing.T) {
	if HBMOnly.String() != "hbm-only" || HBMPlusLPDDR.String() != "hbm+lpddr" ||
		HBMPlusMRM.String() != "hbm+mrm" {
		t.Fatal("config names wrong")
	}
	if !strings.Contains(MemoryConfig(9).String(), "9") {
		t.Fatal("unknown config should include number")
	}
	if _, err := BuildMemory(MemoryConfig(9)); err == nil {
		t.Fatal("unknown config should error")
	}
	for _, cfg := range []MemoryConfig{HBMOnly, HBMPlusLPDDR, HBMPlusMRM} {
		ms, err := BuildMemory(cfg)
		if err != nil || ms.Manager == nil || ms.Description == "" {
			t.Errorf("BuildMemory(%v): %v", cfg, err)
		}
	}
}

// E8: write energy falls and endurance rises as retention is relaxed, and
// the store-energy curve is minimized at the right-provisioned class.
func TestDCMSweepShape(t *testing.T) {
	classes := []time.Duration{
		time.Minute, time.Hour, 24 * time.Hour, 30 * 24 * time.Hour, 10 * units.Year,
	}
	pts, tab, err := RunDCMSweep(cellphys.RRAM, 24*time.Hour, classes)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != len(classes) {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].WriteEnergy < pts[i-1].WriteEnergy {
			t.Error("write energy should not fall with longer retention")
		}
		if pts[i].Endurance > pts[i-1].Endurance {
			t.Error("endurance should not rise with longer retention")
		}
	}
	// Store-energy optimum at the class matching the 1-day data lifetime.
	best := 0
	for i, p := range pts {
		if p.StoreEnergyPerGBDay < pts[best].StoreEnergyPerGBDay {
			best = i
		}
	}
	if classes[best] != 24*time.Hour {
		t.Errorf("store-energy optimum at %v, want 24h (right provisioning)", classes[best])
	}
	if _, _, err := RunDCMSweep(cellphys.RRAM, time.Hour, []time.Duration{time.Nanosecond}); err == nil {
		t.Error("invalid class should error")
	}
}

// E9: at similar overhead, longer codes tolerate more raw BER.
func TestECCBlockSweepShape(t *testing.T) {
	pts, tab, err := RunECCBlockSweep(cellphys.RRAM, 24*time.Hour, 1e-18)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 4 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	byName := map[string]ECCPoint{}
	for _, p := range pts {
		byName[p.Name] = p
	}
	if byName["RS(255,223)"].MaxBER <= byName["RS(63,55)"].MaxBER {
		t.Error("longer code should tolerate more BER")
	}
	if byName["Hamming(72,64)"].MaxBER >= byName["RS(255,223)"].MaxBER {
		t.Error("SECDED should be the weakest")
	}
	if _, _, err := RunECCBlockSweep(cellphys.RRAM, time.Nanosecond, 1e-18); err == nil {
		t.Error("invalid retention should error")
	}
}

// E10: the lifetime-blind FTL amplifies writes; the MRM control plane does
// not, and keeps wear even.
func TestControlPlaneShape(t *testing.T) {
	res, err := RunControlPlane(3, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.FTLWriteAmp <= 1.05 {
		t.Errorf("FTL WA = %v, want amplification under mixed lifetimes", res.FTLWriteAmp)
	}
	if res.MRMWriteAmp > 1.01 {
		t.Errorf("MRM WA = %v, want ~1 (zones die wholesale)", res.MRMWriteAmp)
	}
	if res.MRMResetMean <= 0 {
		t.Error("MRM should have churned zones")
	}
	if float64(res.MRMResetMax) > res.MRMResetMean*2.5 {
		t.Errorf("MRM wear spread too wide: max %d mean %v", res.MRMResetMax, res.MRMResetMean)
	}
	if res.Table.NumRows() != 2 {
		t.Error("table incomplete")
	}
}

// E11 shows MRM stacks hold the model in fewer packages.
func TestDensityRoadmapShape(t *testing.T) {
	tab := RunDensityRoadmap(llm.Frontier500B)
	out := tab.String()
	if !strings.Contains(out, "HBM4") || !strings.Contains(out, "MRM-RRAM@1d") {
		t.Errorf("missing rows:\n%s", out)
	}
	if tab.NumRows() != 3 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
}

// E12: throughput grows sublinearly with batch; read dominance persists.
func TestBatchingLimitsShape(t *testing.T) {
	batches := []int{1, 4, 16, 64}
	pts, tab, err := RunBatchingLimits(llm.GPT3_175B, llm.B200, 4096, batches)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != len(batches) {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].TokensPerSec <= pts[i-1].TokensPerSec {
			t.Error("throughput should grow with batch")
		}
		if pts[i].Ratio < 1000 {
			t.Errorf("batch %d: ratio %v below 1000", pts[i].Batch, pts[i].Ratio)
		}
	}
	// Sublinear: 64x batch gives far less than 64x throughput.
	if pts[3].TokensPerSec/pts[0].TokensPerSec > 40 {
		t.Error("batching should be sublinear (KV reads scale with batch)")
	}
}
