package mrm

import (
	"context"
	"errors"
	"fmt"
	"time"

	"mrm/internal/cellphys"
	"mrm/internal/cluster"
	"mrm/internal/controller"
	"mrm/internal/core"
	"mrm/internal/dist"
	"mrm/internal/ecc"
	"mrm/internal/endurance"
	"mrm/internal/energy"
	"mrm/internal/ftl"
	"mrm/internal/kvcache"
	"mrm/internal/llm"
	"mrm/internal/memdev"
	"mrm/internal/report"
	"mrm/internal/sweep"
	"mrm/internal/trace"
	"mrm/internal/units"
)

// ---- E1: Figure 1 — endurance requirements vs technologies ----

// Figure1Result bundles the dataset and its renderings.
type Figure1Result struct {
	Data  endurance.Figure1
	Chart string
	Table *report.Table
}

// RunFigure1 reproduces the paper's Figure 1 for a KV region of the given
// capacity (the paper's working set is a few tens of GBs per accelerator).
func RunFigure1(kvBytes units.Bytes) Figure1Result {
	data := endurance.Compute(kvBytes)
	return Figure1Result{Data: data, Chart: data.Chart(), Table: data.Table()}
}

// ---- E2: decode read:write ratio ----

// RatioPoint is one measurement of E2.
type RatioPoint struct {
	Batch, Ctx int
	Ratio      float64
}

// RunReadWriteRatio sweeps decode batches and context lengths and reports
// bytes read per byte written (§2.2 claims >1000:1). Grid points evaluate in
// parallel on the sweep pool; the engine is stateless so cells share it.
func RunReadWriteRatio(model llm.ModelConfig, acc llm.Accelerator, batches, ctxs []int) ([]RatioPoint, *report.Table, error) {
	eng, err := llm.NewEngine(model, acc)
	if err != nil {
		return nil, nil, err
	}
	type gridCell struct{ batch, ctx int }
	grid := make([]gridCell, 0, len(batches)*len(ctxs))
	for _, b := range batches {
		for _, ctx := range ctxs {
			grid = append(grid, gridCell{b, ctx})
		}
	}
	type ratioRow struct {
		p           RatioPoint
		read, write float64
	}
	rows, err := sweep.Map(context.Background(), sweep.Config{}, grid,
		func(_ context.Context, _ sweep.Cell, g gridCell) (ratioRow, error) {
			lens := make([]int, g.batch)
			for i := range lens {
				lens[i] = g.ctx
			}
			cost, err := eng.DecodeStep(lens)
			if err != nil {
				return ratioRow{}, err
			}
			return ratioRow{
				p:    RatioPoint{Batch: g.batch, Ctx: g.ctx, Ratio: cost.ReadWriteRatio()},
				read: float64(cost.ReadBytes), write: float64(cost.WriteBytes),
			}, nil
		})
	if err != nil {
		return nil, nil, err
	}
	tab := report.NewTable(fmt.Sprintf("E2: decode read:write ratio (%s)", model.Name),
		"batch", "ctx", "read_bytes", "write_bytes", "ratio")
	pts := make([]RatioPoint, 0, len(rows))
	for _, r := range rows {
		pts = append(pts, r.p)
		tab.AddRow(r.p.Batch, r.p.Ctx, r.read, r.write, r.p.Ratio)
	}
	return pts, tab, nil
}

// ---- E3: capacity breakdown ----

// RunCapacityBreakdown reports weights/KV/activation footprints per model
// (§2: weights 250 GB–1 TB; KV grows to tens of GB; activations ~10x less).
func RunCapacityBreakdown(ctx, batch int) *report.Table {
	tab := report.NewTable(fmt.Sprintf("E3: memory capacity breakdown (ctx=%d, batch=%d)", ctx, batch),
		"model", "weights", "kv_cache", "activations", "kv/token")
	for _, m := range llm.Models() {
		c := ctx
		if c > m.MaxContext {
			c = m.MaxContext
		}
		ctxs := make([]int, batch)
		for i := range ctxs {
			ctxs[i] = c
		}
		var kv units.Bytes
		for _, n := range ctxs {
			kv += m.KVCacheBytes(n)
		}
		tab.AddRow(m.Name, m.WeightBytes().String(), kv.String(),
			m.ActivationBytes(batch).String(), m.KVBytesPerToken().String())
	}
	return tab
}

// ---- E4: sequentiality & predictability ----

// SequentialityResult is E4's output.
type SequentialityResult struct {
	Stats trace.Stats
	Log   *trace.Log
	Table *report.Table
}

// RunSequentiality simulates decode over a paged KV cache and measures the
// trace properties §2.2 claims: sequential per-stream access, append-only
// writes, read dominance.
func RunSequentiality(model llm.ModelConfig, pageTokens, nSeqs, promptLen, steps int, seed uint64) (SequentialityResult, error) {
	// Prompts sample up to 1.5x promptLen below; size the cache for that.
	cache, err := kvcache.New(kvcache.Config{
		PageTokens:      pageTokens,
		KVBytesPerToken: model.KVBytesPerToken(),
		CapacityPages:   nSeqs*(promptLen*3/2+steps)/pageTokens + 2*nSeqs,
	})
	if err != nil {
		return SequentialityResult{}, err
	}
	rng := dist.NewRNG(seed)
	log := &trace.Log{}
	for i := 0; i < nSeqs; i++ {
		id := kvcache.SeqID(i)
		if err := cache.NewSequence(id); err != nil {
			return SequentialityResult{}, err
		}
		n := promptLen/2 + rng.Intn(promptLen)
		if err := cache.Append(id, n); err != nil {
			return SequentialityResult{}, err
		}
	}
	var now time.Duration
	weightChunk := 256 * units.MiB
	wb := model.WeightBytes()
	for step := 0; step < steps; step++ {
		// Weights are scanned start-to-finish every step.
		for off := units.Bytes(0); off < wb; off += weightChunk {
			sz := weightChunk
			if off+sz > wb {
				sz = wb - off
			}
			log.Append(trace.Event{At: now, Stream: trace.StreamWeights, Op: trace.Read, Addr: off, Size: sz})
		}
		for _, id := range cache.Sequences() {
			stream := trace.SeqStream(int(id))
			plan, err := cache.ReadPlan(id)
			if err != nil {
				return SequentialityResult{}, err
			}
			for _, pr := range plan {
				log.Append(trace.Event{At: now, Stream: stream, Op: trace.Read, Addr: pr.Addr, Size: pr.Size})
			}
			// Append one vector: its write lands at the tail.
			if len(plan) > 0 {
				tail := plan[len(plan)-1]
				log.Append(trace.Event{At: now, Stream: stream, Op: trace.Write,
					Addr: tail.Addr + tail.Size, Size: model.KVBytesPerToken()})
			}
			if err := cache.Append(id, 1); err != nil {
				return SequentialityResult{}, err
			}
		}
		now += time.Millisecond
	}
	st := log.Analyze()
	tab := report.NewTable("E4: access-pattern properties",
		"metric", "value")
	tab.AddRow("events", st.Events)
	tab.AddRow("read:write ratio", st.ReadWriteRatio)
	tab.AddRow("sequentiality", st.Sequentiality)
	tab.AddRow("append-only writes", st.AppendOnly)
	return SequentialityResult{Stats: st, Log: log, Table: tab}, nil
}

// ---- E5: HBM refresh & idle housekeeping overhead ----

// RefreshOverheadResult is E5's output.
type RefreshOverheadResult struct {
	Rows  []RefreshRow
	Table *report.Table
}

// RefreshRow is one device's idle economics.
type RefreshRow struct {
	Name          string
	RefreshPower  units.Power
	StaticPower   units.Power
	IdlePerTBDay  units.Energy
	RefreshShare  float64 // refresh fraction of idle power
	BankTimeShare float64 // fraction of bank time stolen by refresh
}

// RunRefreshOverhead quantifies §2.1: HBM pays refresh power even idle;
// MRM's matched retention makes housekeeping power vanish.
func RunRefreshOverhead() RefreshOverheadResult {
	specs := []memdev.Spec{
		memdev.HBM3E,
		// §2.1: heat dissipation in tight accelerator packaging — extended-
		// temperature operation halves the refresh interval per 10°C.
		memdev.HBM3E.AtTemperature(95),
		memdev.HBM3E.AtTemperature(105),
		memdev.DDR5, memdev.LPDDR5X,
		memdev.MRMSpec(cellphys.RRAM, 24*time.Hour),
		memdev.MRMSpec(cellphys.STTMRAM, 24*time.Hour),
	}
	tab := report.NewTable("E5: idle housekeeping (per device)",
		"device", "refresh_pwr", "static_pwr", "idle_J_per_TB_day", "refresh_share", "bank_time_share")
	var rows []RefreshRow
	for _, s := range specs {
		day := 24 * time.Hour
		idle := s.IdlePower().Over(day)
		perTB := units.Energy(float64(idle) / (float64(s.Capacity) / 1e12))
		share := 0.0
		if s.IdlePower() > 0 {
			share = float64(s.RefreshPower()) / float64(s.IdlePower())
		}
		bankShare := 0.0
		if s.RefreshInterval > 0 {
			// tRFC-class penalty per refresh slice (see controller defaults).
			cfg := controller.DefaultSchedConfig(s)
			slice := s.RefreshInterval / time.Duration(cfg.RefreshSlices)
			bankShare = float64(cfg.RefreshDuration) / float64(slice+cfg.RefreshDuration)
		}
		row := RefreshRow{
			Name: s.Name, RefreshPower: s.RefreshPower(), StaticPower: s.StaticPower,
			IdlePerTBDay: perTB, RefreshShare: share, BankTimeShare: bankShare,
		}
		rows = append(rows, row)
		tab.AddRow(s.Name, row.RefreshPower.String(), row.StaticPower.String(),
			row.IdlePerTBDay.String(), row.RefreshShare, row.BankTimeShare)
	}
	return RefreshOverheadResult{Rows: rows, Table: tab}
}

// ---- E6: device comparison ----

// RunDeviceComparison renders the cross-technology comparison behind §3:
// read bandwidth, read energy, density, endurance, retention, cost.
func RunDeviceComparison() *report.Table {
	tco := energy.DefaultTCO()
	tab := report.NewTable("E6: device comparison",
		"device", "class", "cap/stack", "read_bw", "read_pJ/bit", "write_pJ/bit",
		"retention", "endurance", "$/GB", "$/TB/month", "GB/s/W")
	for _, s := range memdev.AllSpecs() {
		tab.AddRow(s.Name, s.Class.String(), s.Capacity.String(), s.ReadBW.String(),
			float64(s.ReadEnergyPerBit)/1e-12, float64(s.WriteEnergyPerBit)/1e-12,
			shortDur(s.Retention), fmt.Sprintf("%.0e", s.Endurance),
			float64(s.CostPerGB), float64(tco.CostPerTBPerMonth(s)),
			s.BytesPerSecPerWatt()/1e9)
	}
	return tab
}

// ---- E7: serving comparison across memory configurations ----

// MemoryConfig names a buildable memory system for the serving comparison.
type MemoryConfig int

// Memory configurations under comparison.
const (
	HBMOnly MemoryConfig = iota
	HBMPlusLPDDR
	HBMPlusMRM
	// HBMPlusHBF pairs the HBM tier with High-Bandwidth Flash, the
	// Ma & Patterson capacity-tier rival to MRM: 10x stack capacity at
	// HBM-class read bandwidth but flash writes and endurance underneath.
	HBMPlusHBF
)

// String names the configuration.
func (m MemoryConfig) String() string {
	switch m {
	case HBMOnly:
		return "hbm-only"
	case HBMPlusLPDDR:
		return "hbm+lpddr"
	case HBMPlusMRM:
		return "hbm+mrm"
	case HBMPlusHBF:
		return "hbm+hbf"
	default:
		return fmt.Sprintf("MemoryConfig(%d)", int(m))
	}
}

// BuildMemory constructs the tiered memory for a configuration. Total fast
// capacity is comparable across configs; the MRM config swaps most HBM for
// denser, cheaper-to-read MRM, keeping a small HBM tier for activations and
// partial pages (the paper's co-existence story).
func BuildMemory(cfg MemoryConfig) (*MemorySystem, error) {
	return buildMemory(cfg)
}

// ServingOutcome pairs a config with its serving result.
type ServingOutcome struct {
	Config MemoryConfig
	Result cluster.Result
}

// ServingParams sizes E7.
type ServingParams struct {
	Model      llm.ModelConfig
	Acc        llm.Accelerator
	NumReqs    int
	RatePerSec float64
	Seed       uint64
	MaxBatch   int
	PageTokens int
}

// DefaultServingParams returns a laptop-scale E7 configuration.
func DefaultServingParams() ServingParams {
	return ServingParams{
		Model: llm.Llama27B, Acc: llm.B200,
		NumReqs: 24, RatePerSec: 4, Seed: 42,
		MaxBatch: 8, PageTokens: 16,
	}
}

// RunServingComparison runs the same request stream over each memory
// configuration and reports throughput, latency, and energy efficiency.
// Configurations simulate in parallel on the sweep pool; each cell builds
// its own memory system, simulator, and RNG (re-seeded from p.Seed, so every
// config sees the identical request stream), making the output bit-identical
// to the serial loop at any worker count.
func RunServingComparison(p ServingParams, configs ...MemoryConfig) ([]ServingOutcome, *report.Table, error) {
	if len(configs) == 0 {
		configs = []MemoryConfig{HBMOnly, HBMPlusLPDDR, HBMPlusMRM}
	}
	gen := cluster.Generator{
		Workload:   llm.SplitwiseConv,
		RatePerSec: p.RatePerSec,
		Mix:        [3]float64{0.4, 0.4, 0.2},
		MaxContext: p.Model.MaxContext,
	}
	outs, err := sweep.Map(context.Background(), sweep.Config{}, configs,
		func(_ context.Context, _ sweep.Cell, cfg MemoryConfig) (ServingOutcome, error) {
			rng := dist.NewRNG(p.Seed) // same stream per config
			reqs, err := gen.Generate(rng, p.NumReqs)
			if err != nil {
				return ServingOutcome{}, err
			}
			// Shorten the tails so the comparison finishes quickly while still
			// exercising multi-page contexts.
			for i := range reqs {
				if reqs[i].PromptTokens > 512 {
					reqs[i].PromptTokens = 512
				}
				if reqs[i].OutputTokens > 64 {
					reqs[i].OutputTokens = 64
				}
			}
			mh, err := buildMemory(cfg)
			if err != nil {
				return ServingOutcome{}, err
			}
			sim, err := cluster.NewSim(cluster.Config{
				Model: p.Model, Acc: p.Acc, Memory: mh.Manager,
				PageTokens: p.PageTokens, MaxBatch: p.MaxBatch,
				KVLifetime: 30 * time.Minute, ScratchTier: mh.ScratchTier,
			})
			if err != nil {
				return ServingOutcome{}, err
			}
			res, err := sim.Run(reqs)
			if err != nil {
				return ServingOutcome{}, err
			}
			return ServingOutcome{Config: cfg, Result: res}, nil
		})
	if err != nil {
		return nil, nil, err
	}
	tab := report.NewTable(fmt.Sprintf("E7: serving on different memory systems (%s)", p.Model.Name),
		"memory", "tokens/s", "tokens/kJ", "ttft_p50_s", "tbt_p99_s", "truncated", "mem_bound")
	for _, o := range outs {
		res := o.Result
		tab.AddRow(o.Config.String(), res.TokensPerSec, res.TokensPerJoule*1000,
			res.TTFT.P50, res.TBT.P99, res.Truncated, res.MemoryBoundFrac)
	}
	return outs, tab, nil
}

// ---- E8: DCM retention sweep ----

// DCMPoint is one retention class's economics.
type DCMPoint struct {
	Retention   time.Duration
	WriteEnergy units.Energy // per bit
	WriteLat    time.Duration
	Endurance   float64
	// StoreEnergyPerGBDay is the write energy to keep 1 GB alive for a
	// 1-day data lifetime at this class (rewrites included): the
	// right-provisioning curve.
	StoreEnergyPerGBDay units.Energy
}

// RunDCMSweep quantifies §4's Dynamically Configurable Memory claim: writing
// at the retention the data needs minimizes energy; over-provisioned
// retention wastes write energy, under-provisioned retention wastes refresh
// rewrites.
func RunDCMSweep(tech cellphys.Technology, dataLifetime time.Duration, classes []time.Duration) ([]DCMPoint, *report.Table, error) {
	tr := cellphys.ForTechnology(tech)
	pts, err := sweep.Map(context.Background(), sweep.Config{}, classes,
		func(_ context.Context, _ sweep.Cell, class time.Duration) (DCMPoint, error) {
			op, err := tr.At(class)
			if err != nil {
				return DCMPoint{}, err
			}
			// Rewrites needed to cover the data lifetime at this class.
			writes := 1.0
			if class < dataLifetime {
				writes = float64((dataLifetime + class - 1) / class)
			}
			perGB := units.Energy(float64(op.WriteEnergy) * 8e9 * writes)
			return DCMPoint{
				Retention: class, WriteEnergy: op.WriteEnergy, WriteLat: op.WriteLatency,
				Endurance: op.Endurance, StoreEnergyPerGBDay: perGB,
			}, nil
		})
	if err != nil {
		return nil, nil, err
	}
	tab := report.NewTable(fmt.Sprintf("E8: DCM retention sweep (%s, data lifetime %s)", tech, shortDur(dataLifetime)),
		"retention", "write_pJ/bit", "write_lat", "endurance", "store_J_per_GB")
	for _, p := range pts {
		tab.AddRow(shortDur(p.Retention), float64(p.WriteEnergy)/1e-12,
			p.WriteLat.String(), fmt.Sprintf("%.1e", p.Endurance), float64(p.StoreEnergyPerGBDay))
	}
	return pts, tab, nil
}

// ---- E9: ECC block-size sweep ----

// ECCPoint is one code's budget.
type ECCPoint struct {
	Name         string
	Spec         ecc.CodeSpec
	MaxBER       float64
	ScrubsPerDay float64
}

// RunECCBlockSweep compares codes of similar overhead at different block
// sizes against a UBER target, with retention-aware scrub intervals derived
// from the cell error model (§4 / ref [8]).
func RunECCBlockSweep(tech cellphys.Technology, retention time.Duration, uberTarget float64) ([]ECCPoint, *report.Table, error) {
	op, err := cellphys.ForTechnology(tech).At(retention)
	if err != nil {
		return nil, nil, err
	}
	berAt := func(age time.Duration) float64 {
		return cellphys.RawBER(op, cellphys.WearState{}, age, cellphys.DefaultBER)
	}
	codes := []struct {
		name string
		spec ecc.CodeSpec
	}{
		{"Hamming(72,64)", ecc.HammingSpec()},
		{"RS(63,55)", ecc.RSSpec(63, 55)},
		{"RS(127,111)", ecc.RSSpec(127, 111)},
		{"RS(255,223)", ecc.RSSpec(255, 223)},
	}
	pts, err := sweep.Map(context.Background(), sweep.Config{}, codes,
		func(_ context.Context, _ sweep.Cell, c struct {
			name string
			spec ecc.CodeSpec
		}) (ECCPoint, error) {
			maxBER := c.spec.MaxBERForUBER(uberTarget)
			scrubs := 0.0
			plan, err := ecc.PlanScrub(c.spec, berAt, uberTarget, retention)
			switch {
			case errors.Is(err, ecc.ErrUnreachableTarget):
				scrubs = -1 // this design point cannot meet the target at all
			case err != nil:
				return ECCPoint{}, err
			case plan.Interval > 0:
				scrubs = (24 * time.Hour).Seconds() / plan.Interval.Seconds()
			}
			return ECCPoint{Name: c.name, Spec: c.spec, MaxBER: maxBER, ScrubsPerDay: scrubs}, nil
		})
	if err != nil {
		return nil, nil, err
	}
	tab := report.NewTable(fmt.Sprintf("E9: ECC block size vs reliability (%s@%s, UBER<=%.0e)",
		tech, shortDur(retention), uberTarget),
		"code", "data_bits", "overhead", "max_raw_BER", "scrubs/day")
	for _, p := range pts {
		tab.AddRow(p.Name, p.Spec.DataBits(), p.Spec.Overhead(),
			fmt.Sprintf("%.2e", p.MaxBER), p.ScrubsPerDay)
	}
	return pts, tab, nil
}

// ---- E10: host control plane vs device FTL ----

// ControlPlaneResult compares housekeeping write amplification.
type ControlPlaneResult struct {
	FTLWriteAmp  float64
	FTLEraseMax  int
	FTLEraseMean float64
	MRMWriteAmp  float64 // host+refresh bytes over host bytes
	MRMResetMax  int
	MRMResetMean float64
	Table        *report.Table
}

// RunControlPlane replays the same mixed-lifetime KV workload against (a) a
// device FTL that cannot see lifetimes, and (b) the MRM control plane whose
// retention classes segregate lifetimes into zones that die wholesale (§4:
// lightweight controllers, policy lifted into software).
func RunControlPlane(seed uint64, rounds int) (ControlPlaneResult, error) {
	rng := dist.NewRNG(seed)
	// FTL side: logical pages partitioned into short-lived (hot) and
	// long-lived (cold) contexts, interleaved — the allocator can't separate
	// them, so GC relocates cold data repeatedly.
	fcfg := ftl.DefaultConfig()
	f, err := ftl.New(fcfg)
	if err != nil {
		return ControlPlaneResult{}, err
	}
	n := f.LogicalPages()
	cold := n / 2
	for lpn := 0; lpn < n; lpn++ { // fill
		if err := f.Write(lpn); err != nil {
			return ControlPlaneResult{}, err
		}
	}
	for r := 0; r < rounds; r++ {
		// Hot half churns; cold half stays.
		for i := 0; i < n/2; i++ {
			lpn := cold + rng.Intn(n-cold)
			if err := f.Write(lpn); err != nil {
				return ControlPlaneResult{}, err
			}
		}
	}
	fst := f.Stats()

	// MRM side: the same byte volume of short-lived objects, tagged with
	// their lifetime; zones reset without relocation.
	mcfg := core.DefaultConfig()
	mcfg.Capacity = 1 * units.GiB
	mcfg.ZoneSize = 16 * units.MiB
	m, err := core.New(mcfg)
	if err != nil {
		return ControlPlaneResult{}, err
	}
	for r := 0; r < rounds; r++ {
		for i := 0; i < 8; i++ {
			if _, _, err := m.Put(16*units.MiB, core.WriteOptions{
				Kind: core.KindKVCache, Lifetime: 10 * time.Minute, Policy: core.PolicyDrop,
			}); err != nil {
				return ControlPlaneResult{}, err
			}
		}
		if err := m.Tick(time.Hour); err != nil {
			return ControlPlaneResult{}, err
		}
	}
	mst := m.Stats()
	mWA := 1.0
	if mst.BytesWritten > 0 {
		mWA = float64(mst.BytesWritten+mst.BytesRefreshed) / float64(mst.BytesWritten)
	}
	maxR, meanR := m.ZoneWearSpread()

	tab := report.NewTable("E10: device FTL vs MRM software control plane",
		"system", "write_amp", "wear_max", "wear_mean")
	tab.AddRow("flash-FTL (lifetime-blind)", fst.WriteAmplification, fst.MaxErase, fst.MeanErase)
	tab.AddRow("MRM control plane (lifetime-aware)", mWA, maxR, meanR)
	return ControlPlaneResult{
		FTLWriteAmp: fst.WriteAmplification, FTLEraseMax: fst.MaxErase, FTLEraseMean: fst.MeanErase,
		MRMWriteAmp: mWA, MRMResetMax: maxR, MRMResetMean: meanR,
		Table: tab,
	}, nil
}

// ---- E11: density roadmap ----

// RunDensityRoadmap compares per-stack capacity scaling (§2.1: HBM4 is only
// +30%/layer and stacking stalls at 16; resistive crossbars stack on-die).
func RunDensityRoadmap(model llm.ModelConfig) *report.Table {
	tab := report.NewTable(fmt.Sprintf("E11: density roadmap (stacks to hold %s weights = %s)",
		model.Name, model.WeightBytes().String()),
		"device", "layers", "Gbit/layer", "cap/stack", "stacks_needed")
	for _, s := range []memdev.Spec{
		memdev.HBM3E, memdev.HBM4,
		memdev.MRMSpec(cellphys.RRAM, 24*time.Hour),
	} {
		stacks := float64(model.WeightBytes()) / float64(s.Capacity)
		tab.AddRow(s.Name, s.StackLayers, s.LayerDensityGbit, s.Capacity.String(),
			fmt.Sprintf("%.1f", stacks))
	}
	return tab
}

// ---- E12: batching & prefix-reuse limits ----

// BatchPoint is one batch size's economics.
type BatchPoint struct {
	Batch        int
	TokensPerSec float64
	Ratio        float64
}

// RunBatchingLimits shows that batching amortizes weight reads (throughput
// grows) but KV reads scale with batch, so the workload stays heavily
// read-dominated (§2.2), and prefix sharing saves capacity, not read traffic.
func RunBatchingLimits(model llm.ModelConfig, acc llm.Accelerator, ctx int, batches []int) ([]BatchPoint, *report.Table, error) {
	eng, err := llm.NewEngine(model, acc)
	if err != nil {
		return nil, nil, err
	}
	type batchRow struct {
		p      BatchPoint
		readGB float64
	}
	rows, err := sweep.Map(context.Background(), sweep.Config{}, batches,
		func(_ context.Context, _ sweep.Cell, b int) (batchRow, error) {
			lens := make([]int, b)
			for i := range lens {
				lens[i] = ctx
			}
			cost, err := eng.DecodeStep(lens)
			if err != nil {
				return batchRow{}, err
			}
			tps := float64(b) / cost.Time().Seconds()
			return batchRow{
				p:      BatchPoint{Batch: b, TokensPerSec: tps, Ratio: cost.ReadWriteRatio()},
				readGB: float64(cost.ReadBytes) / 1e9,
			}, nil
		})
	if err != nil {
		return nil, nil, err
	}
	tab := report.NewTable(fmt.Sprintf("E12: batching limits (%s, ctx=%d)", model.Name, ctx),
		"batch", "tokens/s", "read:write", "read_GB/step")
	pts := make([]BatchPoint, 0, len(rows))
	for _, r := range rows {
		pts = append(pts, r.p)
		tab.AddRow(r.p.Batch, r.p.TokensPerSec, r.p.Ratio, r.readGB)
	}
	return pts, tab, nil
}

func shortDur(d time.Duration) string {
	switch {
	case d >= units.Year:
		return fmt.Sprintf("%.0fy", float64(d)/float64(units.Year))
	case d >= 24*time.Hour:
		return fmt.Sprintf("%.0fd", d.Hours()/24)
	case d >= time.Hour:
		return fmt.Sprintf("%.0fh", d.Hours())
	case d >= time.Minute:
		return fmt.Sprintf("%.0fm", d.Minutes())
	default:
		return d.String()
	}
}
