package mrm

import (
	"time"

	"mrm/internal/cellphys"
	"mrm/internal/memdev"
)

// hbmSpec and cellphysMRM are shared spec shorthands for the benchmarks.
func hbmSpec() memdev.Spec { return memdev.HBM3E }

func cellphysMRM() memdev.Spec { return memdev.MRMSpec(cellphys.RRAM, 24*time.Hour) }
