package mrm

// Ablations and extension experiments (E13–E18): the design-choice studies
// DESIGN.md calls out, plus scenarios for the paper's §4/§5 discussion points
// (keep-vs-recompute, idle KV offload, model swap, multi-level cells).

import (
	"context"
	"fmt"
	"math"
	"time"

	"mrm/internal/cellphys"
	"mrm/internal/cluster"
	"mrm/internal/dist"
	"mrm/internal/fault"
	"mrm/internal/kvcache"
	"mrm/internal/llm"
	"mrm/internal/memdev"
	"mrm/internal/report"
	"mrm/internal/sweep"
	"mrm/internal/units"
)

// ---- E13: retention-class-count ablation ----

// ClassCountPoint is one ablation measurement.
type ClassCountPoint struct {
	Classes int
	// MeanStoreJPerGB is the average write(+refresh) energy to store 1 GB
	// for its sampled lifetime.
	MeanStoreJPerGB float64
	// MeanRetentionWaste is mean(class retention / data lifetime) — how
	// overprovisioned the chosen class is.
	MeanRetentionWaste float64
}

// RunClassCountAblation samples data lifetimes from a lognormal (median
// 30 min, heavy tail — a KV-cache lifetime distribution) and measures how
// the number of available retention classes affects DCM's energy saving.
// Classes are geometrically spaced between minRet and maxRet.
func RunClassCountAblation(tech cellphys.Technology, classCounts []int, samples int, seed uint64) ([]ClassCountPoint, *report.Table, error) {
	if samples <= 0 {
		return nil, nil, fmt.Errorf("mrm: need positive sample count")
	}
	tr := cellphys.ForTechnology(tech)
	minRet, maxRet := 10*time.Minute, 7*24*time.Hour
	lifetimes := make([]time.Duration, samples)
	rng := dist.NewRNG(seed)
	ln := dist.Lognormal{Median: 30, Sigma: 1.0} // minutes
	for i := range lifetimes {
		m := dist.Clamp(ln.Sample(rng), 1, maxRet.Minutes())
		lifetimes[i] = time.Duration(m * float64(time.Minute))
	}
	tab := report.NewTable(fmt.Sprintf("E13: retention-class-count ablation (%s)", tech),
		"classes", "store_J_per_GB", "retention_waste")
	var pts []ClassCountPoint
	// One sweep cell per sampled lifetime; each cell's (energy, waste)
	// contribution comes back in sample order and the float sums below run
	// serially over that order, so the means are bit-identical to the old
	// serial loop at any worker count.
	type contrib struct{ j, waste float64 }
	for _, k := range classCounts {
		if k < 1 {
			return nil, nil, fmt.Errorf("mrm: class count %d", k)
		}
		classes := geomSpace(minRet, maxRet, k)
		contribs, err := sweep.Map(context.Background(), sweep.Config{}, lifetimes,
			func(_ context.Context, _ sweep.Cell, life time.Duration) (contrib, error) {
				class := classes[len(classes)-1]
				for _, c := range classes {
					if c >= life {
						class = c
						break
					}
				}
				op, err := tr.At(class)
				if err != nil {
					return contrib{}, err
				}
				writes := 1.0
				if class < life {
					writes = math.Ceil(float64(life) / float64(class))
				}
				out := contrib{j: float64(op.WriteEnergy) * 8e9 * writes}
				if class >= life {
					out.waste = float64(class) / float64(life)
				} else {
					out.waste = 1 // refreshed exactly to fit
				}
				return out, nil
			})
		if err != nil {
			return nil, nil, err
		}
		var sumJ, sumWaste float64
		for _, c := range contribs {
			sumJ += c.j
			sumWaste += c.waste
		}
		p := ClassCountPoint{
			Classes:            k,
			MeanStoreJPerGB:    sumJ / float64(samples),
			MeanRetentionWaste: sumWaste / float64(samples),
		}
		pts = append(pts, p)
		tab.AddRow(k, p.MeanStoreJPerGB, p.MeanRetentionWaste)
	}
	return pts, tab, nil
}

// geomSpace returns k durations geometrically spaced over [lo, hi]
// inclusive (k == 1 yields just hi, which must cover everything).
func geomSpace(lo, hi time.Duration, k int) []time.Duration {
	if k == 1 {
		return []time.Duration{hi}
	}
	out := make([]time.Duration, k)
	ratio := math.Pow(float64(hi)/float64(lo), 1/float64(k-1))
	v := float64(lo)
	for i := 0; i < k; i++ {
		out[i] = time.Duration(v)
		v *= ratio
	}
	out[k-1] = hi
	return out
}

// ---- E14: KV page-size ablation ----

// PageSizePoint is one page-size measurement.
type PageSizePoint struct {
	PageTokens    int
	Utilization   float64 // filled bytes / allocated bytes
	RangesPerRead float64 // read-plan entries per decode read (metadata cost)
	Sequentiality float64
}

// RunPageSizeAblation sweeps KV page sizes over a population of sequences
// with lognormal lengths: small pages waste little capacity but fragment the
// read stream; big pages read perfectly sequentially but strand capacity in
// partial pages. The paper's ">10 vectors per page" sits at the knee.
func RunPageSizeAblation(model llm.ModelConfig, pageSizes []int, nSeqs int, seed uint64) ([]PageSizePoint, *report.Table, error) {
	// One sweep cell per page size: each cell re-seeds its own RNG from the
	// caller's seed (so every page size sees the same sequence-length
	// population, exactly as the serial loop did) and builds a private cache.
	pts, err := sweep.Map(context.Background(), sweep.Config{}, pageSizes,
		func(_ context.Context, _ sweep.Cell, pt int) (PageSizePoint, error) {
			rng := dist.NewRNG(seed)
			ln := dist.Lognormal{Median: 512, Sigma: 0.8}
			cache, err := kvcache.New(kvcache.Config{
				PageTokens:      pt,
				KVBytesPerToken: model.KVBytesPerToken(),
				CapacityPages:   nSeqs * (8192/pt + 2),
			})
			if err != nil {
				return PageSizePoint{}, err
			}
			totalRanges, reads := 0, 0
			seqFrac := 0.0
			for i := 0; i < nSeqs; i++ {
				id := kvcache.SeqID(i)
				if err := cache.NewSequence(id); err != nil {
					return PageSizePoint{}, err
				}
				n := int(dist.Clamp(ln.Sample(rng), 1, 8192))
				if err := cache.Append(id, n); err != nil {
					return PageSizePoint{}, err
				}
				plan, err := cache.ReadPlan(id)
				if err != nil {
					return PageSizePoint{}, err
				}
				totalRanges += len(plan)
				reads++
				// Sequential fraction within this read plan: ranges that start
				// exactly where the previous ended.
				if len(plan) > 1 {
					seq := 0
					for j := 1; j < len(plan); j++ {
						if plan[j].Addr == plan[j-1].Addr+plan[j-1].Size {
							seq++
						}
					}
					seqFrac += float64(seq) / float64(len(plan)-1)
				} else {
					seqFrac += 1
				}
			}
			st := cache.Stats()
			return PageSizePoint{
				PageTokens:    pt,
				Utilization:   st.Utilization,
				RangesPerRead: float64(totalRanges) / float64(reads),
				Sequentiality: seqFrac / float64(reads),
			}, nil
		})
	if err != nil {
		return nil, nil, err
	}
	tab := report.NewTable(fmt.Sprintf("E14: KV page-size ablation (%s, %d seqs)", model.Name, nSeqs),
		"page_tokens", "utilization", "ranges_per_read", "sequentiality")
	for _, p := range pts {
		tab.AddRow(p.PageTokens, p.Utilization, p.RangesPerRead, p.Sequentiality)
	}
	return pts, tab, nil
}

// ---- E15: keep vs recompute (expiry-policy ablation) ----

// KeepRecomputePoint compares the energy of keeping an idle KV cache alive
// against dropping and recomputing it on return.
type KeepRecomputePoint struct {
	IdleTime   time.Duration
	KeepJ      float64 // refresh writes to hold the data through the idle period
	RecomputeJ float64 // prefill compute + KV rewrite on return
	KeepWins   bool
}

// RunKeepVsRecompute quantifies the paper's §2 judgment ("the token rate per
// second is usually quite low (thus expensive) so caching and using the KV
// cache is usually preferable to recalculation") and finds the idle-time
// crossover given an MRM retention class.
func RunKeepVsRecompute(model llm.ModelConfig, acc llm.Accelerator, tech cellphys.Technology,
	class time.Duration, ctx int, idleTimes []time.Duration) ([]KeepRecomputePoint, *report.Table, error) {
	op, err := cellphys.ForTechnology(tech).At(class)
	if err != nil {
		return nil, nil, err
	}
	kvBytes := model.KVCacheBytes(ctx)
	kvBits := float64(kvBytes.Bits())
	writeJ := float64(op.WriteEnergy) * kvBits
	// Recompute: a full prefill of ctx tokens (compute energy at the
	// accelerator's J/FLOP) plus writing the KV cache again.
	var prefillFLOPs float64
	for n := 1; n <= ctx; n += 64 { // sample the quadratic attention term
		prefillFLOPs += 64 * (2*model.Params + 4*float64(model.Layers*model.KVHeads*model.HeadDim)*float64(n))
	}
	recomputeJ := prefillFLOPs*acc.JoulesPerFLOP() + writeJ
	tab := report.NewTable(fmt.Sprintf("E15: keep vs recompute (%s, ctx=%d, %s@%s)",
		model.Name, ctx, tech, shortDur(class)),
		"idle", "keep_J", "recompute_J", "winner")
	var pts []KeepRecomputePoint
	for _, idle := range idleTimes {
		// Holding through the idle period costs one refresh rewrite per
		// retention period that elapses.
		refreshes := math.Floor(float64(idle) / float64(class))
		keepJ := refreshes * writeJ
		p := KeepRecomputePoint{
			IdleTime: idle, KeepJ: keepJ, RecomputeJ: recomputeJ,
			KeepWins: keepJ < recomputeJ,
		}
		pts = append(pts, p)
		winner := "recompute"
		if p.KeepWins {
			winner = "keep"
		}
		tab.AddRow(shortDur(idle), keepJ, recomputeJ, winner)
	}
	return pts, tab, nil
}

// ---- E16: multi-level-cell sweep ----

// MLCPoint is one bits-per-cell design point.
type MLCPoint struct {
	BitsPerCell int
	Retention   time.Duration
	Endurance   float64
	WriteEnergy units.Energy // per bit
	// CapacityFactor is the density multiplier over SLC.
	CapacityFactor float64
}

// RunMLCSweep explores multi-level encoding ([10]): more bits per cell
// multiplies density but derates retention and endurance; the MRM question
// is which points still cover a one-day KV lifetime.
func RunMLCSweep(tech cellphys.Technology, baseRetention time.Duration) ([]MLCPoint, *report.Table, error) {
	base, err := cellphys.ForTechnology(tech).At(baseRetention)
	if err != nil {
		return nil, nil, err
	}
	tab := report.NewTable(fmt.Sprintf("E16: multi-level cells (%s, SLC@%s)", tech, shortDur(baseRetention)),
		"bits/cell", "retention", "endurance", "write_pJ/bit", "capacity_x")
	var pts []MLCPoint
	for bits := 1; bits <= 4; bits++ {
		op, err := cellphys.MLCDerate(base, bits)
		if err != nil {
			return nil, nil, err
		}
		p := MLCPoint{
			BitsPerCell: bits, Retention: op.Retention, Endurance: op.Endurance,
			WriteEnergy: op.WriteEnergy, CapacityFactor: float64(bits),
		}
		pts = append(pts, p)
		tab.AddRow(bits, shortDur(op.Retention), fmt.Sprintf("%.1e", op.Endurance),
			float64(op.WriteEnergy)/1e-12, float64(bits))
	}
	return pts, tab, nil
}

// ---- E17: model-swap cost ----

// ModelSwapPoint is the cost of a bulk weight overwrite on one device class.
type ModelSwapPoint struct {
	Device   string
	LoadTime time.Duration
	LoadJ    units.Energy
	// HourlyDuty is load time as a fraction of an hourly update period —
	// the paper's conservative weight-update cadence.
	HourlyDuty float64
}

// RunModelSwap measures what MRM's sacrificed write throughput costs when a
// new model is deployed (§2: the cluster drains, then loads new weights):
// bulk-writing the full weights on each memory system.
func RunModelSwap(model llm.ModelConfig) ([]ModelSwapPoint, *report.Table) {
	wb := model.WeightBytes()
	systems := []struct {
		name   string
		wbw    units.Bandwidth
		energy units.Energy
	}{
		// Aggregate package write bandwidth (8 HBM stacks; 8 MRM stacks).
		{"HBM3E x8", 8 * units.TBps, memdev.HBM3E.WriteEnergyPerBit},
		{"LPDDR5X tier", 500 * units.GBps, memdev.LPDDR5X.WriteEnergyPerBit},
		{"MRM-RRAM x8", 8 * 150 * units.GBps, memdev.MRMSpec(cellphys.RRAM, 24*time.Hour).WriteEnergyPerBit},
		{"NAND-SLC SSD", 1 * units.GBps, memdev.NANDSLC.WriteEnergyPerBit},
	}
	tab := report.NewTable(fmt.Sprintf("E17: model swap — bulk-writing %s of weights (%s)",
		wb.String(), model.Name),
		"device", "load_time", "load_J", "duty_of_hourly_update")
	var pts []ModelSwapPoint
	for _, s := range systems {
		t := s.wbw.Time(wb)
		p := ModelSwapPoint{
			Device:     s.name,
			LoadTime:   t,
			LoadJ:      s.energy.PerBit(wb),
			HourlyDuty: t.Seconds() / 3600,
		}
		pts = append(pts, p)
		tab.AddRow(s.name, t.Round(time.Millisecond).String(), float64(p.LoadJ), p.HourlyDuty)
	}
	return pts, tab
}

// ---- E18: idle KV retention cost across tiers ----

// IdleKVPoint is the cost of parking one idle context on a tier.
type IdleKVPoint struct {
	Tier string
	// ParkJ is migration (write) energy to move the KV there.
	ParkJ units.Energy
	// HoldJPerHour is the per-context share of idle power plus any refresh
	// rewrites needed per hour.
	HoldJPerHour units.Energy
}

// RunIdleKVOffload compares parking idle KV caches (§5: offloading idle KV
// to other tiers) in HBM, LPDDR, and MRM: migration cost vs holding cost.
func RunIdleKVOffload(model llm.ModelConfig, ctx int) ([]IdleKVPoint, *report.Table) {
	kv := model.KVCacheBytes(ctx)
	type sys struct {
		name     string
		spec     memdev.Spec
		contexts float64 // contexts the device capacity can park
	}
	mrmSpec := memdev.MRMSpec(cellphys.RRAM, 24*time.Hour)
	systems := []sys{
		{"HBM3E", memdev.HBM3E, float64(memdev.HBM3E.Capacity) / float64(kv)},
		{"LPDDR5X", memdev.LPDDR5X, float64(memdev.LPDDR5X.Capacity) / float64(kv)},
		{"MRM-RRAM@1d", mrmSpec, float64(mrmSpec.Capacity) / float64(kv)},
	}
	tab := report.NewTable(fmt.Sprintf("E18: parking an idle KV cache (%s, ctx=%d → %s)",
		model.Name, ctx, kv.String()),
		"tier", "park_J", "hold_J_per_hour", "note")
	var pts []IdleKVPoint
	for _, s := range systems {
		park := s.spec.WriteEnergyPerBit.PerBit(kv)
		// Idle power share attributable to this context's slice of capacity.
		hold := units.Energy(float64(s.spec.IdlePower().Over(time.Hour)) / s.contexts)
		note := "refresh-coupled idle power"
		if s.spec.Class == memdev.Managed {
			note = "no refresh; retention covers idleness"
		}
		pts = append(pts, IdleKVPoint{Tier: s.name, ParkJ: park, HoldJPerHour: hold})
		tab.AddRow(s.name, float64(park), float64(hold), note)
	}
	return pts, tab
}

// ---- E30: fault injection & graceful degradation ----

// FaultSweepPoint is one fault-rate design point of the degradation sweep.
type FaultSweepPoint struct {
	Rate   float64 // per-read probability of transient fault / retention lapse
	Result cluster.Result
}

// RunFaultSweep serves the identical request stream on an HBM+MRM system at
// increasing per-read fault rates, quantifying the paper's "soft state is
// cheap to lose" argument (§2.2): lost KV pages are dropped and recomputed,
// lost weights are reseated from their durable upstream copy, and the
// columns show what that degradation costs in goodput and efficiency. Rate 0
// is the unfaulted baseline (fault injection is never armed, so it is
// byte-identical to E7's hbm+mrm row machinery). Each cell derives its fault
// seed from faultSeed and its index, so the sweep is bit-identical at any
// -parallel setting.
func RunFaultSweep(p ServingParams, rates []float64, faultSeed uint64) ([]FaultSweepPoint, *report.Table, error) {
	gen := cluster.Generator{
		Workload:   llm.SplitwiseConv,
		RatePerSec: p.RatePerSec,
		Mix:        [3]float64{0.4, 0.4, 0.2},
		MaxContext: p.Model.MaxContext,
	}
	pts, err := sweep.Map(context.Background(), sweep.Config{Seed: faultSeed}, rates,
		func(_ context.Context, c sweep.Cell, rate float64) (FaultSweepPoint, error) {
			rng := dist.NewRNG(p.Seed) // same stream per rate
			reqs, err := gen.Generate(rng, p.NumReqs)
			if err != nil {
				return FaultSweepPoint{}, err
			}
			for i := range reqs {
				if reqs[i].PromptTokens > 512 {
					reqs[i].PromptTokens = 512
				}
				if reqs[i].OutputTokens > 64 {
					reqs[i].OutputTokens = 64
				}
			}
			ms, err := buildMemory(HBMPlusMRM)
			if err != nil {
				return FaultSweepPoint{}, err
			}
			if rate > 0 {
				ms.ApplyFaults(c.Seed, rate, rate)
			}
			sim, err := cluster.NewSim(cluster.Config{
				Model: p.Model, Acc: p.Acc, Memory: ms.Manager,
				PageTokens: p.PageTokens, MaxBatch: p.MaxBatch,
				KVLifetime: 30 * time.Minute, ScratchTier: ms.ScratchTier,
			})
			if err != nil {
				return FaultSweepPoint{}, err
			}
			res, err := sim.Run(reqs)
			if err != nil {
				return FaultSweepPoint{}, err
			}
			return FaultSweepPoint{Rate: rate, Result: res}, nil
		})
	if err != nil {
		return nil, nil, err
	}
	tab := report.NewTable(fmt.Sprintf("E30: fault rate vs graceful degradation (%s, hbm+mrm)", p.Model.Name),
		"fault_rate", "tokens/s", "tokens/kJ", "kv_pages_lost", "recompute_tok", "reseats", "tbt_p99_s")
	for _, pt := range pts {
		r := pt.Result
		tab.AddRow(fmt.Sprintf("%g", pt.Rate), r.TokensPerSec, r.TokensPerJoule*1000,
			r.Faults.KVPagesLost, r.Faults.KVTokensRecomputed, r.Faults.WeightsReseats, r.TBT.P99)
	}
	return pts, tab, nil
}

// FleetFailoverResult bundles the baseline and degraded runs of the E30
// fail-stop experiment.
type FleetFailoverResult struct {
	Baseline cluster.FleetResult
	Degraded cluster.FleetResult
	FailAt   []time.Duration // scheduled fail-stop times of the killed nodes
}

// RunFleetFailover runs the same stream on an HBM+MRM fleet twice: once
// undisturbed, once with failNodes nodes fail-stopping mid-run (at evenly
// spaced fractions of the baseline's wall time). Failed nodes' in-flight and
// queued requests requeue onto survivors; the table contrasts throughput,
// goodput (tokens that reached a completed request), and degraded-mode tail
// latency. Device-level fault injection at rate is armed identically in both
// runs, so the delta isolates the fail-stop machinery.
func RunFleetFailover(p ServingParams, nodes, failNodes int, rate float64, faultSeed uint64) (FleetFailoverResult, *report.Table, error) {
	if nodes <= 1 || failNodes <= 0 || failNodes >= nodes {
		return FleetFailoverResult{}, nil, fmt.Errorf("mrm: need 0 < failNodes < nodes, got %d/%d", failNodes, nodes)
	}
	gen := cluster.Generator{
		Workload:   llm.SplitwiseConv,
		RatePerSec: p.RatePerSec,
		Mix:        [3]float64{0.4, 0.4, 0.2},
		MaxContext: p.Model.MaxContext,
	}
	mkReqs := func() ([]cluster.Request, error) {
		rng := dist.NewRNG(p.Seed)
		reqs, err := gen.Generate(rng, p.NumReqs)
		if err != nil {
			return nil, err
		}
		for i := range reqs {
			if reqs[i].PromptTokens > 512 {
				reqs[i].PromptTokens = 512
			}
			if reqs[i].OutputTokens > 64 {
				reqs[i].OutputTokens = 64
			}
		}
		return reqs, nil
	}
	mkFleet := func() (*cluster.Fleet, error) {
		return cluster.NewFleet(nodes, func(node int) (*cluster.Sim, error) {
			ms, err := buildMemory(HBMPlusMRM)
			if err != nil {
				return nil, err
			}
			if rate > 0 {
				ms.ApplyFaults(fault.DeriveSeed(faultSeed, node), rate, rate)
			}
			return cluster.NewSim(cluster.Config{
				Model: p.Model, Acc: p.Acc, Memory: ms.Manager,
				PageTokens: p.PageTokens, MaxBatch: p.MaxBatch,
				KVLifetime: 30 * time.Minute, ScratchTier: ms.ScratchTier,
			})
		})
	}
	out := FleetFailoverResult{}
	reqs, err := mkReqs()
	if err != nil {
		return out, nil, err
	}
	base, err := mkFleet()
	if err != nil {
		return out, nil, err
	}
	out.Baseline, err = base.Run(reqs)
	if err != nil {
		return out, nil, err
	}
	// Kill nodes at evenly spaced points of the baseline's wall time, so the
	// failures land mid-stream regardless of workload scale.
	deg, err := mkFleet()
	if err != nil {
		return out, nil, err
	}
	for k := 0; k < failNodes; k++ {
		at := out.Baseline.WallTime * time.Duration(k+1) / time.Duration(failNodes+1)
		deg.Failures = append(deg.Failures, cluster.NodeFailure{Node: k, At: at})
		out.FailAt = append(out.FailAt, at)
	}
	reqs, err = mkReqs()
	if err != nil {
		return out, nil, err
	}
	out.Degraded, err = deg.Run(reqs)
	if err != nil {
		return out, nil, err
	}
	tab := report.NewTable(fmt.Sprintf("E30: fleet failover (%s, %d nodes, %d fail-stop)", p.Model.Name, nodes, failNodes),
		"fleet", "tokens/s", "goodput/s", "requeued", "wasted_tok", "ttft_p99_s", "tbt_p99_s")
	for _, row := range []struct {
		name string
		res  cluster.FleetResult
	}{{"baseline", out.Baseline}, {"failover", out.Degraded}} {
		tab.AddRow(row.name, row.res.TokensPerSec, row.res.GoodTokensPerSec,
			row.res.Requeued, row.res.WastedTokens, row.res.TTFT.P99, row.res.TBT.P99)
	}
	return out, tab, nil
}
