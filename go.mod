module mrm

go 1.22
