package mrm

import (
	"strings"
	"testing"
	"time"

	"mrm/internal/cellphys"
	"mrm/internal/llm"
)

// E13: more retention classes → tighter lifetime fit → less energy & waste.
func TestClassCountAblation(t *testing.T) {
	counts := []int{1, 2, 4, 8}
	pts, tab, err := RunClassCountAblation(cellphys.RRAM, counts, 2000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != len(counts) {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].MeanStoreJPerGB > pts[i-1].MeanStoreJPerGB {
			t.Errorf("%d classes cost more energy than %d: %v > %v",
				pts[i].Classes, pts[i-1].Classes, pts[i].MeanStoreJPerGB, pts[i-1].MeanStoreJPerGB)
		}
		if pts[i].MeanRetentionWaste > pts[i-1].MeanRetentionWaste {
			t.Errorf("%d classes waste more retention than %d", pts[i].Classes, pts[i-1].Classes)
		}
	}
	// A single class (one-size-fits-all SCM) must be dramatically worse
	// than 8 classes.
	if pts[0].MeanStoreJPerGB < 1.5*pts[len(pts)-1].MeanStoreJPerGB {
		t.Errorf("single class (%v J/GB) should lose clearly to 8 classes (%v J/GB)",
			pts[0].MeanStoreJPerGB, pts[len(pts)-1].MeanStoreJPerGB)
	}
	if _, _, err := RunClassCountAblation(cellphys.RRAM, []int{0}, 10, 1); err == nil {
		t.Error("class count 0 should error")
	}
	if _, _, err := RunClassCountAblation(cellphys.RRAM, counts, 0, 1); err == nil {
		t.Error("zero samples should error")
	}
}

// E14: the page-size fragmentation/sequentiality trade-off.
func TestPageSizeAblation(t *testing.T) {
	sizes := []int{1, 4, 16, 64, 256}
	pts, tab, err := RunPageSizeAblation(llm.Llama2_70B, sizes, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != len(sizes) {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	first, last := pts[0], pts[len(pts)-1]
	if first.Utilization < last.Utilization {
		t.Errorf("1-token pages should utilize better than 256-token pages: %v vs %v",
			first.Utilization, last.Utilization)
	}
	if first.RangesPerRead < last.RangesPerRead {
		t.Errorf("1-token pages should need more ranges per read: %v vs %v",
			first.RangesPerRead, last.RangesPerRead)
	}
	// The paper's ">10 vectors" geometry (16 tokens): high utilization AND
	// few ranges.
	mid := pts[2]
	if mid.Utilization < 0.9 {
		t.Errorf("16-token pages utilization = %v, want >= 0.9", mid.Utilization)
	}
	if mid.RangesPerRead > 64 {
		t.Errorf("16-token pages ranges/read = %v, want modest", mid.RangesPerRead)
	}
}

// E15: keeping a KV cache beats recomputing it until very long idle times.
func TestKeepVsRecompute(t *testing.T) {
	idles := []time.Duration{
		time.Minute, time.Hour, 24 * time.Hour, 7 * 24 * time.Hour, 60 * 24 * time.Hour,
	}
	pts, tab, err := RunKeepVsRecompute(llm.Llama2_70B, llm.B200, cellphys.RRAM,
		24*time.Hour, 2048, idles)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != len(idles) {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	// Short idle: keep wins (zero or few refreshes vs an expensive prefill).
	if !pts[0].KeepWins || !pts[1].KeepWins {
		t.Error("keep should win for short idle periods (the paper's judgment)")
	}
	// Keep-energy must be monotone in idle time.
	for i := 1; i < len(pts); i++ {
		if pts[i].KeepJ < pts[i-1].KeepJ {
			t.Error("keep energy should grow with idle time")
		}
		if pts[i].RecomputeJ != pts[0].RecomputeJ {
			t.Error("recompute energy should be idle-independent")
		}
	}
	if _, _, err := RunKeepVsRecompute(llm.Llama2_70B, llm.B200, cellphys.RRAM,
		time.Nanosecond, 2048, idles); err == nil {
		t.Error("invalid class should error")
	}
}

// E16: MLC multiplies capacity but derates retention/endurance monotonically.
func TestMLCSweep(t *testing.T) {
	pts, tab, err := RunMLCSweep(cellphys.RRAM, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 4 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Retention >= pts[i-1].Retention {
			t.Error("retention should shrink with bits/cell")
		}
		if pts[i].Endurance >= pts[i-1].Endurance {
			t.Error("endurance should shrink with bits/cell")
		}
		if pts[i].CapacityFactor <= pts[i-1].CapacityFactor {
			t.Error("capacity should grow with bits/cell")
		}
	}
	if _, _, err := RunMLCSweep(cellphys.RRAM, time.Nanosecond); err == nil {
		t.Error("bad retention should error")
	}
}

// E17: MRM loads a model slower than HBM but still a trivial fraction of an
// hourly update period — the write-throughput sacrifice is affordable.
func TestModelSwap(t *testing.T) {
	pts, tab := RunModelSwap(llm.Llama2_70B)
	if tab.NumRows() != len(pts) || len(pts) != 4 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	by := map[string]ModelSwapPoint{}
	for _, p := range pts {
		by[p.Device] = p
	}
	hbm, mrm, ssd := by["HBM3E x8"], by["MRM-RRAM x8"], by["NAND-SLC SSD"]
	if mrm.LoadTime <= hbm.LoadTime {
		t.Error("MRM bulk load should be slower than HBM (the sacrificed metric)")
	}
	if mrm.HourlyDuty > 0.01 {
		t.Errorf("MRM load duty %v should still be <1%% of an hourly update", mrm.HourlyDuty)
	}
	if ssd.LoadTime <= mrm.LoadTime {
		t.Error("flash should be far slower than MRM")
	}
}

// E18: parking idle KV on MRM avoids the refresh-coupled holding cost.
func TestIdleKVOffload(t *testing.T) {
	pts, tab := RunIdleKVOffload(llm.Llama2_70B, 4096)
	if tab.NumRows() != 3 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	by := map[string]IdleKVPoint{}
	for _, p := range pts {
		by[p.Tier] = p
	}
	hbm, mrm := by["HBM3E"], by["MRM-RRAM@1d"]
	if mrm.HoldJPerHour >= hbm.HoldJPerHour {
		t.Errorf("MRM hold cost %v should beat HBM %v", mrm.HoldJPerHour, hbm.HoldJPerHour)
	}
	out := tab.String()
	if !strings.Contains(out, "no refresh") {
		t.Error("table should note the refresh-free hold")
	}
}

func TestGeomSpace(t *testing.T) {
	got := geomSpace(time.Minute, time.Hour, 3)
	if len(got) != 3 || got[0] != time.Minute || got[2] != time.Hour {
		t.Fatalf("geomSpace = %v", got)
	}
	if got[1] <= got[0] || got[1] >= got[2] {
		t.Fatalf("middle point %v not between endpoints", got[1])
	}
	if one := geomSpace(time.Minute, time.Hour, 1); len(one) != 1 || one[0] != time.Hour {
		t.Fatalf("k=1 should yield the max: %v", one)
	}
}
