package mrm

// Benchmarks for the deterministic parallel sweep engine: the same drivers at
// worker-pool sizes 1 (the serial reference) and NumCPU. The interesting
// number is the ns/op ratio between the workers-1 and workers-N variants of
// the same benchmark — the results themselves are identical by construction
// (see parallel_test.go). `make bench-json` captures these in BENCH_sweep.json.

import (
	"fmt"
	"runtime"
	"testing"

	"mrm/internal/cellphys"
	"mrm/internal/llm"
)

// sweepWorkerCounts are the pool sizes each sweep benchmark runs at.
func sweepWorkerCounts() []int {
	if n := runtime.NumCPU(); n > 1 {
		return []int{1, n}
	}
	return []int{1}
}

// BenchmarkSweepServing runs the E7 serving comparison — the heaviest sweep,
// three full cluster simulations per op — at each pool size.
func BenchmarkSweepServing(b *testing.B) {
	p := DefaultServingParams()
	p.NumReqs = 16
	for _, workers := range sweepWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			old := SetParallelism(workers)
			defer SetParallelism(old)
			var outs []ServingOutcome
			for i := 0; i < b.N; i++ {
				var err error
				outs, _, err = RunServingComparison(p)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(outs)), "configs")
			b.ReportMetric(outs[len(outs)-1].Result.TokensPerSec, "mrm-tokens/s")
		})
	}
}

// BenchmarkSweepAblations runs the per-sample class-count ablation (E13) and
// the page-size ablation (E14) back to back at each pool size: many small
// cells (5000 lifetime samples) plus a few big ones (page-size populations).
func BenchmarkSweepAblations(b *testing.B) {
	for _, workers := range sweepWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			old := SetParallelism(workers)
			defer SetParallelism(old)
			var classPts []ClassCountPoint
			for i := 0; i < b.N; i++ {
				var err error
				classPts, _, err = RunClassCountAblation(cellphys.RRAM, []int{1, 2, 4, 8}, 5000, 42)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := RunPageSizeAblation(llm.Llama2_70B, []int{1, 4, 16, 64, 256}, 64, 42); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(classPts[0].MeanStoreJPerGB/classPts[len(classPts)-1].MeanStoreJPerGB,
				"1-class:8-class-J")
		})
	}
}
