package mrm

// Fuzz targets for the parsing and decoding surfaces: malformed inputs must
// produce errors, never panics or silent corruption.

import (
	"strings"
	"testing"

	"mrm/internal/ecc"
	"mrm/internal/trace"
)

// FuzzTraceReadCSV: arbitrary text must never panic the CSV parser, and
// anything it accepts must re-serialize losslessly.
func FuzzTraceReadCSV(f *testing.F) {
	f.Add("at_ns,stream,op,addr,size\n1,weights,R,0,4096\n")
	f.Add("1,kv,W,5,10\n2,s17,R,15,20\n")
	f.Add("")
	f.Add("garbage,,,,\n")
	f.Fuzz(func(t *testing.T, in string) {
		log, err := trace.ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		var out strings.Builder
		if err := log.WriteCSV(&out); err != nil {
			t.Fatalf("accepted log failed to serialize: %v", err)
		}
		back, err := trace.ReadCSV(strings.NewReader(out.String()))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.Len() != log.Len() {
			t.Fatalf("round trip changed event count %d -> %d", log.Len(), back.Len())
		}
	})
}

// FuzzRSDecode: arbitrary byte noise through the RS decoder must either
// decode (possibly correcting) or report an error — never panic, and a
// reported success must leave consistent syndromes (verified internally).
func FuzzRSDecode(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add(make([]byte, 255))
	f.Fuzz(func(t *testing.T, noise []byte) {
		code, err := ecc.NewRS(63, 55)
		if err != nil {
			t.Fatal(err)
		}
		cw := make([]byte, 63)
		copy(cw, noise)
		_, corrected, err := code.Decode(cw)
		if err == nil && (corrected < 0 || corrected > code.T()) {
			t.Fatalf("claimed to correct %d symbols, capability is %d", corrected, code.T())
		}
	})
}

// FuzzHammingDecode: all 72-bit patterns must decode or report ErrDoubleBit.
func FuzzHammingDecode(f *testing.F) {
	f.Add(uint64(0), uint8(0))
	f.Add(^uint64(0), uint8(0xff))
	f.Fuzz(func(t *testing.T, lo uint64, hi uint8) {
		cw := ecc.HammingCodeword{Lo: lo, Hi: hi}
		_, corrected, err := ecc.HammingDecode(cw)
		if err == nil && corrected > 1 {
			t.Fatalf("SECDED corrected %d bits", corrected)
		}
	})
}
