package mrm

import (
	"fmt"
	"strings"
	"testing"

	"mrm/internal/cluster"
	"mrm/internal/units"
)

// renderServingDrivers runs every experiment driver built on the serving
// simulator — E7 (serving comparison), E19 (fleet scale-out), E21 (chunked
// prefill), E24 (serving TCO), E27 (phase split), and E30 (fault sweep and
// fleet failover, faults armed) — and concatenates their rendered tables.
// The engine in effect is whatever cluster.SetDefaultStepping selected.
func renderServingDrivers(t *testing.T) string {
	t.Helper()
	var out strings.Builder
	add := func(name string, tab fmt.Stringer, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fmt.Fprintf(&out, "== %s ==\n%s\n", name, tab)
	}
	p := DefaultServingParams()
	_, tab, err := RunServingComparison(p)
	add("e7", tab, err)
	_, tab, err = RunFleetScaleOut(p, []int{1, 2})
	add("e19", tab, err)
	pc := p
	pc.NumReqs = 4
	_, tab, err = RunChunkedPrefill(pc, []int{0, 64, 256})
	add("e21", tab, err)
	_, tab, err = RunServingTCO(p)
	add("e24", tab, err)
	ps := p
	ps.RatePerSec = 20
	_, tab, err = RunPhaseSplit(ps, 1, 1, 200*units.GBps)
	add("e27", tab, err)
	_, tab, err = RunFaultSweep(p, []float64{0, 1e-5, 1e-4, 1e-3}, 7)
	add("e30-sweep", tab, err)
	_, tab, err = RunFleetFailover(p, 3, 1, 1e-3, 7)
	add("e30-failover", tab, err)
	return out.String()
}

// TestEngineEquivalenceAcrossDrivers runs the full serving-driver suite under
// the legacy stepping engine and again under the discrete-event engine and
// requires byte-identical rendered output. This is the top-level twin gate
// behind keeping the event engine as the default: every number an experiment
// prints — throughput, latency percentiles, energy, fault and failover
// accounting — must survive the engine swap untouched.
func TestEngineEquivalenceAcrossDrivers(t *testing.T) {
	prev := cluster.SetDefaultStepping(true)
	defer cluster.SetDefaultStepping(prev)
	stepped := renderServingDrivers(t)
	cluster.SetDefaultStepping(false)
	evented := renderServingDrivers(t)
	if stepped != evented {
		sl, el := strings.Split(stepped, "\n"), strings.Split(evented, "\n")
		for i := range sl {
			if i >= len(el) || sl[i] != el[i] {
				t.Fatalf("engines diverged at line %d:\nstepping: %q\nevents:   %q", i+1, sl[i],
					func() string {
						if i < len(el) {
							return el[i]
						}
						return "<missing>"
					}())
			}
		}
		t.Fatalf("engines diverged: stepping output has %d lines, events %d", len(sl), len(el))
	}
}
