// Fleet serving: schedule one request stream across a rack of HBM+MRM nodes
// with token-balanced placement and watch throughput, tail latency, and
// energy efficiency scale — the rack-scale orchestration §4 anticipates.
package main

import (
	"fmt"
	"log"

	"mrm"
)

func main() {
	p := mrm.DefaultServingParams()
	p.NumReqs = 24

	pts, tab, err := mrm.RunFleetScaleOut(p, []int{1, 2, 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tab)

	base := pts[0]
	for _, pt := range pts[1:] {
		fmt.Printf("%d nodes: %.2fx throughput, balance %.2f, TTFT p99 %.1f ms\n",
			pt.Nodes, pt.TokensPerSec/base.TokensPerSec, pt.Balance, pt.TTFTP99*1000)
	}
	fmt.Println("\nNodes run the HBM+MRM memory system; the scheduler assigns each request")
	fmt.Println("to the least-loaded node by token volume (static join-shortest-queue).")
}
