// Quickstart: build a Managed-Retention Memory, store data with lifetime
// hints, watch the control plane expire soft state and refresh durable
// state, and read the energy ledger.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"mrm/internal/core"
	"mrm/internal/units"
)

func main() {
	// An RRAM-based MRM with four retention classes (10m / 1h / 1d / 7d),
	// protected by RS(255,223), targeting an UBER of 1e-18.
	cfg := core.DefaultConfig()
	cfg.Capacity = 4 * units.GiB
	cfg.ZoneSize = 32 * units.MiB
	m, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MRM: %v of %v, retention classes %v\n",
		m.Capacity(), m.Spec().Tech, m.Classes())

	// A KV cache is soft state: tag it with its real lifetime and let it
	// decay — the write is cheaper because retention is right-provisioned.
	kv, lat, err := m.Put(256*units.MiB, core.WriteOptions{
		Kind:     core.KindKVCache,
		Lifetime: 30 * time.Minute,
		Policy:   core.PolicyDrop,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored 256 MiB of KV cache in %v\n", lat)

	// Weights must stay resident: the control plane refreshes them before
	// each retention deadline.
	weights, _, err := m.Put(1*units.GiB, core.WriteOptions{
		Kind:     core.KindWeights,
		Lifetime: 90 * 24 * time.Hour,
		Policy:   core.PolicyRefresh,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Reads are the cheap, fast path.
	if _, err := m.Get(kv); err != nil {
		log.Fatal(err)
	}

	// Two hours later the KV cache has expired (its class was 1h)...
	if err := m.Tick(2 * time.Hour); err != nil {
		log.Fatal(err)
	}
	if _, err := m.Get(kv); errors.Is(err, core.ErrExpired) {
		fmt.Println("KV cache expired as scheduled - soft state is recomputed, not refreshed")
	}

	// ...while the weights survive week after week via refresh.
	for i := 0; i < 30; i++ {
		if err := m.Tick(24 * time.Hour); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := m.Get(weights); err != nil {
		log.Fatal(err)
	}
	st := m.Stats()
	fmt.Printf("after 30 days: %d refreshes, %v rewritten, %d expirations\n",
		st.Refreshes, st.BytesRefreshed, st.Expirations)

	e := m.Energy()
	fmt.Printf("energy: host writes %v, refresh writes %v, reads %v, static %v\n",
		e.HostWrite, e.RefreshWrite, e.Read, e.Static)
	fmt.Printf("device wear: %.6f%% of life used\n", m.Wear().LifeUsed*100)
}
