// Dynamically Configurable Memory: program retention per write and observe
// the energy/endurance/latency trade-off across technologies — the knob §4
// proposes exposing to the cluster control plane.
package main

import (
	"fmt"
	"log"
	"time"

	"mrm"
	"mrm/internal/cellphys"
	"mrm/internal/units"
)

func main() {
	classes := []time.Duration{
		10 * time.Minute, time.Hour, 24 * time.Hour, 7 * 24 * time.Hour, 10 * units.Year,
	}
	for _, tech := range []cellphys.Technology{cellphys.RRAM, cellphys.PCM, cellphys.STTMRAM} {
		// Data that lives one day (a long-lived KV cache / daily model
		// refresh cycle): which retention class should the write use?
		pts, tab, err := mrm.RunDCMSweep(tech, 24*time.Hour, classes)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tab)
		nv := pts[len(pts)-1] // the 10-year, SCM-style write
		day := pts[2]         // the right-provisioned write
		fmt.Printf("%v: right-provisioning retention saves %.1fx write energy and gains %.0fx endurance vs non-volatile writes\n\n",
			tech,
			float64(nv.WriteEnergy)/float64(day.WriteEnergy),
			day.Endurance/nv.Endurance)
	}
}
