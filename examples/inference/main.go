// Inference serving on tiered memory: run the same request stream over an
// HBM-only node and an HBM+MRM node and compare tokens/s, latency, and
// tokens/joule — the paper's §4 "retention-aware placement" experiment at
// example scale.
package main

import (
	"fmt"
	"log"

	"mrm"
)

func main() {
	p := mrm.DefaultServingParams()
	p.NumReqs = 24

	outs, tab, err := mrm.RunServingComparison(p, mrm.HBMOnly, mrm.HBMPlusMRM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tab)

	var hbm, withMRM mrm.ServingOutcome
	for _, o := range outs {
		switch o.Config {
		case mrm.HBMOnly:
			hbm = o
		case mrm.HBMPlusMRM:
			withMRM = o
		}
	}
	fmt.Printf("throughput: %.0f tok/s (hbm) vs %.0f tok/s (hbm+mrm)\n",
		hbm.Result.TokensPerSec, withMRM.Result.TokensPerSec)
	if hbm.Result.TokensPerJoule > 0 {
		fmt.Printf("efficiency: hbm+mrm generates %.2fx more tokens per joule\n",
			withMRM.Result.TokensPerJoule/hbm.Result.TokensPerJoule)
	}
	fmt.Printf("per-tier reads with MRM: %v\n", withMRM.Result.PerTierReads)
}
