// Retention-aware tiering: place weights, KV pages, and activations across
// HBM + MRM + LPDDR under the two policies and see where each object lands
// and what the idle bill looks like.
package main

import (
	"fmt"
	"log"
	"time"

	"mrm/internal/core"
	"mrm/internal/memdev"
	"mrm/internal/tier"
	"mrm/internal/units"
)

func build(policy tier.Policy) *tier.Manager {
	hbmSpec := memdev.HBM3E
	hbmSpec.Capacity = 8 * units.GiB
	hbmSpec.ReadBW = 8 * units.TBps // aggregate of all stacks on the package
	hbmSpec.WriteBW = 8 * units.TBps
	hbm, err := tier.NewDeviceTier("hbm", hbmSpec)
	if err != nil {
		log.Fatal(err)
	}
	mcfg := core.DefaultConfig()
	mcfg.Capacity = 16 * units.GiB
	mcfg.ZoneSize = 32 * units.MiB
	m, err := core.New(mcfg)
	if err != nil {
		log.Fatal(err)
	}
	lpSpec := memdev.LPDDR5X
	lpSpec.Capacity = 32 * units.GiB
	lp, err := tier.NewDeviceTier("lpddr", lpSpec)
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := tier.NewManager(policy, hbm, tier.NewMRMTier("mrm", m), lp)
	if err != nil {
		log.Fatal(err)
	}
	return mgr
}

func main() {
	objects := []struct {
		name string
		meta tier.Meta
	}{
		{"weights shard", tier.Meta{Kind: core.KindWeights, Size: 2 * units.GiB, Lifetime: 90 * 24 * time.Hour, ReadHot: true}},
		{"live KV cache", tier.Meta{Kind: core.KindKVCache, Size: 512 * units.MiB, Lifetime: 30 * time.Minute, ReadHot: true}},
		{"idle KV cache", tier.Meta{Kind: core.KindKVCache, Size: 512 * units.MiB, Lifetime: 6 * time.Hour}},
		{"activations", tier.Meta{Kind: core.KindActivation, Size: 64 * units.MiB, Lifetime: time.Second}},
	}
	for _, policy := range []tier.Policy{tier.StaticPolicy{}, tier.RetentionAwarePolicy{}} {
		mgr := build(policy)
		names := make(map[int]string)
		for i, ti := range mgr.Tiers() {
			names[i] = ti.Name
		}
		fmt.Printf("policy %q:\n", policy.Name())
		var ids []tier.ObjectID
		for _, o := range objects {
			id, _, err := mgr.Put(o.meta)
			if err != nil {
				log.Fatal(err)
			}
			t, _ := mgr.TierOf(id)
			fmt.Printf("  %-14s -> %s\n", o.name, names[t])
			ids = append(ids, id)
		}
		// The decode loop re-reads weights and live KV constantly; where
		// they sit decides the energy bill (same hardware, same idle power,
		// different access energy).
		before := mgr.TotalEnergy()
		for i := 0; i < 100; i++ {
			for _, id := range ids[:2] { // weights + live KV
				if _, _, err := mgr.Get(id); err != nil {
					log.Fatal(err)
				}
			}
		}
		fmt.Printf("  read energy for 100 decode-loop scans: %v\n\n", mgr.TotalEnergy()-before)
	}
}
