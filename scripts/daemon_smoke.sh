#!/bin/sh
# daemon_smoke.sh — end-to-end liveness drill for the mrmd serving daemon.
#
# Builds mrmd, starts it on an ephemeral port, probes /healthz and /readyz,
# submits a request and expects a 200 result, arms /chaos and watches the
# daemon absorb it, reconfigures tiering live, then sends SIGTERM and
# requires a clean drain: exit code 0 within the drain deadline.
#
# POSIX sh + curl only; no test framework. Exits non-zero on the first
# failed expectation.
set -eu

workdir="$(mktemp -d)"
bin="$workdir/mrmd"
addrfile="$workdir/addr"
logfile="$workdir/mrmd.log"
pid=""

cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "daemon-smoke: FAIL: $*" >&2
    echo "--- mrmd log ---" >&2
    cat "$logfile" >&2 || true
    exit 1
}

echo "daemon-smoke: building mrmd"
go build -o "$bin" ./cmd/mrmd

echo "daemon-smoke: starting daemon"
"$bin" -addr 127.0.0.1:0 -addr-file "$addrfile" -nodes 2 -memory hbm+mrm \
    -drain-timeout 30s 2>"$logfile" &
pid=$!

# Wait for the bound address to appear.
for _ in $(seq 1 100); do
    [ -s "$addrfile" ] && break
    kill -0 "$pid" 2>/dev/null || fail "daemon exited during startup"
    sleep 0.1
done
[ -s "$addrfile" ] || fail "daemon never wrote its address"
addr="$(head -n1 "$addrfile")"
base="http://$addr"
echo "daemon-smoke: daemon up at $base (pid $pid)"

# Liveness and readiness.
curl -fsS "$base/healthz" >/dev/null || fail "/healthz not 200"
curl -fsS "$base/readyz" >/dev/null || fail "/readyz not 200"

# Submit a request; expect a 200 with tokens out.
out="$(curl -fsS -XPOST "$base/v1/submit" \
    -d '{"prompt_tokens":128,"output_tokens":32,"class":"interactive"}')" \
    || fail "submit rejected"
case "$out" in
*'"tokens":32'*) ;;
*) fail "submit result missing tokens: $out" ;;
esac
echo "daemon-smoke: submit ok: $out"

# Arm live chaos at a low rate; the daemon must keep answering 200s.
out="$(curl -fsS -XPOST "$base/v1/chaos" \
    -d '{"seed":7,"transient_rate":1e-4}')" || fail "chaos arm rejected"
case "$out" in
*'"armed_nodes":2'*) ;;
*) fail "chaos arm result wrong: $out" ;;
esac
curl -fsS -XPOST "$base/v1/submit" \
    -d '{"prompt_tokens":64,"output_tokens":16}' >/dev/null \
    || fail "submit under low-rate chaos should still succeed"
echo "daemon-smoke: chaos armed, daemon still serving"

# Live tiering reconfiguration.
curl -fsS -XPOST "$base/v1/config/tiering" -d '{"policy":"static"}' >/dev/null \
    || fail "tiering reconfig rejected"

# Metrics exposition names the daemon's counters.
curl -fsS "$base/metrics" | grep -q '^mrmd_requests_total' \
    || fail "/metrics missing mrmd_requests_total"

# Graceful drain: SIGTERM must exit 0 within the drain deadline.
echo "daemon-smoke: sending SIGTERM"
kill -TERM "$pid"
deadline=$(( $(date +%s) + 35 ))
while kill -0 "$pid" 2>/dev/null; do
    [ "$(date +%s)" -lt "$deadline" ] || fail "daemon did not exit within drain deadline"
    sleep 0.2
done
rc=0
wait "$pid" || rc=$?
pid=""
[ "$rc" -eq 0 ] || fail "daemon exited $rc, want 0 after graceful drain"
grep -q "drained cleanly" "$logfile" || fail "daemon log missing clean-drain line"
grep -q "mrmd final metrics" "$logfile" || fail "daemon log missing final metrics flush"

echo "daemon-smoke: PASS"
