package mrm

// The benchmark harness: one benchmark per experiment in EXPERIMENTS.md.
// Each benchmark regenerates the corresponding figure/claim of the paper and
// reports its headline quantity via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the full reproduction. Absolute times measure the simulator, not
// the hardware under study; the custom metrics carry the results.

import (
	"testing"
	"time"

	"mrm/internal/cellphys"
	"mrm/internal/llm"
	"mrm/internal/units"
)

// BenchmarkFigure1 regenerates Figure 1 (E1) and reports the gap between the
// KV-cache endurance requirement and RRAM product endurance (decades).
func BenchmarkFigure1(b *testing.B) {
	var res Figure1Result
	for i := 0; i < b.N; i++ {
		res = RunFigure1(48 * units.GiB)
	}
	kv := res.Data.Requirements[2].WritesPerCell
	b.ReportMetric(kv, "kv-writes/cell")
	for _, t := range res.Data.Technologies {
		if t.Name == "ReRAM(product)" {
			b.ReportMetric(kv/t.Product, "kv-req/rram-product")
		}
	}
}

// BenchmarkReadWriteRatio measures E2's decode read:write ratio.
func BenchmarkReadWriteRatio(b *testing.B) {
	var pts []RatioPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, _, err = RunReadWriteRatio(llm.Llama2_70B, llm.B200,
			[]int{1, 8, 32}, []int{1024, 4096, 16384})
		if err != nil {
			b.Fatal(err)
		}
	}
	minR, maxR := pts[0].Ratio, pts[0].Ratio
	for _, p := range pts {
		if p.Ratio < minR {
			minR = p.Ratio
		}
		if p.Ratio > maxR {
			maxR = p.Ratio
		}
	}
	b.ReportMetric(minR, "min-read:write")
	b.ReportMetric(maxR, "max-read:write")
}

// BenchmarkCapacityBreakdown regenerates E3.
func BenchmarkCapacityBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := RunCapacityBreakdown(8192, 16); tab.NumRows() == 0 {
			b.Fatal("empty table")
		}
	}
	b.ReportMetric(llm.Frontier500B.WeightBytes().GB(), "frontier-weights-GB")
	b.ReportMetric(llm.Llama2_70B.KVCacheBytes(4096).GB(), "70b-kv-4k-GB")
}

// BenchmarkSequentiality measures E4's trace properties.
func BenchmarkSequentiality(b *testing.B) {
	var res SequentialityResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = RunSequentiality(llm.Llama2_70B, 16, 8, 512, 32, 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Stats.Sequentiality, "sequentiality")
	b.ReportMetric(res.Stats.AppendOnly, "append-only")
	b.ReportMetric(res.Stats.ReadWriteRatio, "read:write")
}

// BenchmarkRefreshOverhead measures E5: HBM idle housekeeping vs MRM.
func BenchmarkRefreshOverhead(b *testing.B) {
	var res RefreshOverheadResult
	for i := 0; i < b.N; i++ {
		res = RunRefreshOverhead()
	}
	var hbm, mrm RefreshRow
	for _, r := range res.Rows {
		switch r.Name {
		case "HBM3E":
			hbm = r
		case "MRM-RRAM@1d":
			mrm = r
		}
	}
	b.ReportMetric(hbm.RefreshShare, "hbm-refresh-share")
	b.ReportMetric(float64(hbm.IdlePerTBDay)/float64(mrm.IdlePerTBDay), "hbm/mrm-idle-energy")
}

// BenchmarkDeviceComparison regenerates E6 and reports the MRM:HBM read
// efficiency advantage.
func BenchmarkDeviceComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := RunDeviceComparison(); tab.NumRows() == 0 {
			b.Fatal("empty table")
		}
	}
	mrm := cellphysMRM()
	b.ReportMetric(mrm.BytesPerSecPerWatt()/hbmSpec().BytesPerSecPerWatt(), "mrm/hbm-read-eff")
	b.ReportMetric(float64(mrm.Capacity)/float64(hbmSpec().Capacity), "mrm/hbm-density")
}

// BenchmarkTieringPolicies runs E7: serving on the three memory systems.
func BenchmarkTieringPolicies(b *testing.B) {
	p := DefaultServingParams()
	p.NumReqs = 16
	var outs []ServingOutcome
	for i := 0; i < b.N; i++ {
		var err error
		outs, _, err = RunServingComparison(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	var hbm, mrm ServingOutcome
	for _, o := range outs {
		switch o.Config {
		case HBMOnly:
			hbm = o
		case HBMPlusMRM:
			mrm = o
		}
	}
	b.ReportMetric(hbm.Result.TokensPerSec, "hbm-tokens/s")
	b.ReportMetric(mrm.Result.TokensPerSec, "mrm-tokens/s")
	if hbm.Result.TokensPerJoule > 0 {
		b.ReportMetric(mrm.Result.TokensPerJoule/hbm.Result.TokensPerJoule, "mrm/hbm-tokens/J")
	}
}

// BenchmarkDCM runs E8: the programmable-retention sweep, reporting the
// write-energy saving of right-provisioned retention vs non-volatile writes.
func BenchmarkDCM(b *testing.B) {
	classes := []time.Duration{
		10 * time.Minute, time.Hour, 24 * time.Hour, 7 * 24 * time.Hour, 10 * units.Year,
	}
	var pts []DCMPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, _, err = RunDCMSweep(cellphys.RRAM, 24*time.Hour, classes)
		if err != nil {
			b.Fatal(err)
		}
	}
	nv := pts[len(pts)-1]
	day := pts[2]
	b.ReportMetric(float64(nv.WriteEnergy)/float64(day.WriteEnergy), "write-energy-saving")
	b.ReportMetric(day.Endurance/nv.Endurance, "endurance-gain")
}

// BenchmarkECCBlockSize runs E9 and reports the long-code advantage.
func BenchmarkECCBlockSize(b *testing.B) {
	var pts []ECCPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, _, err = RunECCBlockSweep(cellphys.RRAM, 24*time.Hour, 1e-18)
		if err != nil {
			b.Fatal(err)
		}
	}
	var small, large float64
	for _, p := range pts {
		switch p.Name {
		case "RS(63,55)":
			small = p.MaxBER
		case "RS(255,223)":
			large = p.MaxBER
		}
	}
	b.ReportMetric(large/small, "rs255/rs63-ber-budget")
}

// BenchmarkControlPlane runs E10: device FTL vs MRM software control plane.
func BenchmarkControlPlane(b *testing.B) {
	var res ControlPlaneResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = RunControlPlane(3, 20)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.FTLWriteAmp, "ftl-write-amp")
	b.ReportMetric(res.MRMWriteAmp, "mrm-write-amp")
}

// BenchmarkDensityRoadmap runs E11.
func BenchmarkDensityRoadmap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := RunDensityRoadmap(llm.Frontier500B); tab.NumRows() != 3 {
			b.Fatal("bad table")
		}
	}
	b.ReportMetric(float64(cellphysMRM().Capacity)/float64(hbmSpec().Capacity), "mrm/hbm-stack-capacity")
}

// BenchmarkBatchingLimits runs E12.
func BenchmarkBatchingLimits(b *testing.B) {
	var pts []BatchPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, _, err = RunBatchingLimits(llm.GPT3_175B, llm.B200, 4096, []int{1, 4, 16, 64})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[len(pts)-1].TokensPerSec/pts[0].TokensPerSec, "batch64/batch1-speedup")
	b.ReportMetric(pts[len(pts)-1].Ratio, "batch64-read:write")
}
