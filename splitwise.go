package mrm

// E27: phase-split serving (Splitwise [37]) and E28: speculative decoding
// (SpecInfer [31]) — the serving-stack techniques the paper cites, modeled
// for their memory consequences.

import (
	"fmt"
	"math"
	"sort"
	"time"

	"mrm/internal/cluster"
	"mrm/internal/dist"
	"mrm/internal/llm"
	"mrm/internal/report"
	"mrm/internal/units"
)

// SplitResult is the E27 outcome for one serving architecture.
type SplitResult struct {
	Name          string
	TokensPerSec  float64
	TBTP99        float64
	TBTMax        float64
	TTFTP99       float64 // end-to-end: arrival → first token
	TransferBytes units.Bytes
}

// RunPhaseSplit compares aggregated serving (every node does prefill and
// decode) against Splitwise-style phase splitting (dedicated prefill nodes
// compute KV caches and ship them over the interconnect to decode nodes).
// Splitting removes prefill interference from the decode batch — bounding
// TBT — at the price of KV transfer traffic and a small TTFT hop.
func RunPhaseSplit(p ServingParams, prefillNodes, decodeNodes int, interconnect units.Bandwidth) ([]SplitResult, *report.Table, error) {
	if prefillNodes <= 0 || decodeNodes <= 0 {
		return nil, nil, fmt.Errorf("mrm: need positive node counts")
	}
	if interconnect <= 0 {
		return nil, nil, fmt.Errorf("mrm: need positive interconnect bandwidth")
	}
	gen := cluster.Generator{
		Workload:   llm.SplitwiseConv,
		RatePerSec: p.RatePerSec,
		Mix:        [3]float64{0.4, 0.4, 0.2},
		MaxContext: p.Model.MaxContext,
	}
	mkReqs := func() ([]cluster.Request, error) {
		rng := dist.NewRNG(p.Seed)
		reqs, err := gen.Generate(rng, p.NumReqs)
		if err != nil {
			return nil, err
		}
		for i := range reqs {
			// Long prompts make prefill interference visible.
			reqs[i].PromptTokens = 2048
			if reqs[i].OutputTokens > 64 {
				reqs[i].OutputTokens = 64
			}
		}
		return reqs, nil
	}
	newSim := func() (*cluster.Sim, error) {
		ms, err := buildMemory(HBMPlusMRM)
		if err != nil {
			return nil, err
		}
		return cluster.NewSim(cluster.Config{
			Model: p.Model, Acc: p.Acc, Memory: ms.Manager,
			PageTokens: p.PageTokens, MaxBatch: p.MaxBatch,
			KVLifetime: 30 * time.Minute, ScratchTier: ms.ScratchTier,
		})
	}
	tab := report.NewTable(
		fmt.Sprintf("E27: aggregated vs phase-split serving (%s, %d+%d nodes, %s interconnect)",
			p.Model.Name, prefillNodes, decodeNodes, interconnect.String()),
		"architecture", "tokens/s", "tbt_p99_s", "tbt_max_s", "ttft_p99_s", "kv_transferred")
	var out []SplitResult

	// Aggregated baseline: all nodes serve both phases.
	total := prefillNodes + decodeNodes
	reqs, err := mkReqs()
	if err != nil {
		return nil, nil, err
	}
	fleet, err := cluster.NewFleet(total, func(int) (*cluster.Sim, error) { return newSim() })
	if err != nil {
		return nil, nil, err
	}
	aggRes, err := fleet.Run(reqs)
	if err != nil {
		return nil, nil, err
	}
	aggTTFT, aggTBT, aggTBTMax := 0.0, 0.0, 0.0
	for _, nr := range aggRes.PerNode {
		if nr.TTFT.P99 > aggTTFT {
			aggTTFT = nr.TTFT.P99
		}
		if nr.TBT.P99 > aggTBT {
			aggTBT = nr.TBT.P99
		}
		if nr.TBT.Max > aggTBTMax {
			aggTBTMax = nr.TBT.Max
		}
	}
	agg := SplitResult{
		Name: "aggregated", TokensPerSec: aggRes.TokensPerSec,
		TBTP99: aggTBT, TBTMax: aggTBTMax, TTFTP99: aggTTFT,
	}
	out = append(out, agg)
	tab.AddRow(agg.Name, agg.TokensPerSec, agg.TBTP99, agg.TBTMax, agg.TTFTP99, "0 B")

	// Phase split: a prefill pool computes KV caches FCFS, then ships them.
	reqs, err = mkReqs()
	if err != nil {
		return nil, nil, err
	}
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Arrival < reqs[j].Arrival })
	eng, err := llm.NewEngine(p.Model, p.Acc)
	if err != nil {
		return nil, nil, err
	}
	free := make([]time.Duration, prefillNodes) // per-prefill-node next-free time
	var transfer units.Bytes
	queueDelay := make(map[uint64]time.Duration, len(reqs))
	for i := range reqs {
		r := &reqs[i]
		cost, err := eng.Prefill([]int{r.PromptTokens})
		if err != nil {
			return nil, nil, err
		}
		// Earliest-free prefill node.
		best := 0
		for n := 1; n < prefillNodes; n++ {
			if free[n] < free[best] {
				best = n
			}
		}
		start := r.Arrival
		if free[best] > start {
			start = free[best]
		}
		done := start + cost.Time()
		free[best] = done
		kv := p.Model.KVCacheBytes(r.PromptTokens)
		transfer += kv
		ready := done + interconnect.Time(kv)
		queueDelay[r.ID] = ready - r.Arrival
		r.Arrival = ready
		r.Prefilled = true
	}
	decodeFleet, err := cluster.NewFleet(decodeNodes, func(int) (*cluster.Sim, error) { return newSim() })
	if err != nil {
		return nil, nil, err
	}
	splitRes, err := decodeFleet.Run(reqs)
	if err != nil {
		return nil, nil, err
	}
	// End-to-end TTFT p99 ≈ p99 of (prefill+transfer delay) + decode-side
	// TTFT p99 (an upper bound: the two maxima need not coincide).
	splitTBT, splitTBTMax, splitTTFTDecode := 0.0, 0.0, 0.0
	for _, nr := range splitRes.PerNode {
		if nr.TBT.P99 > splitTBT {
			splitTBT = nr.TBT.P99
		}
		if nr.TBT.Max > splitTBTMax {
			splitTBTMax = nr.TBT.Max
		}
		if nr.TTFT.P99 > splitTTFTDecode {
			splitTTFTDecode = nr.TTFT.P99
		}
	}
	delays := make([]float64, 0, len(queueDelay))
	for _, d := range queueDelay {
		delays = append(delays, d.Seconds())
	}
	sort.Float64s(delays)
	p99Delay := delays[int(math.Ceil(0.99*float64(len(delays))))-1]
	split := SplitResult{
		Name:          "phase-split",
		TokensPerSec:  splitRes.TokensPerSec,
		TBTP99:        splitTBT,
		TBTMax:        splitTBTMax,
		TTFTP99:       p99Delay + splitTTFTDecode,
		TransferBytes: transfer,
	}
	out = append(out, split)
	tab.AddRow(split.Name, split.TokensPerSec, split.TBTP99, split.TBTMax, split.TTFTP99, transfer.String())
	return out, tab, nil
}

// ---- E28: speculative decoding ----

// SpecPoint is one (draft depth, acceptance) configuration.
type SpecPoint struct {
	K                  int     // draft tokens per round
	Alpha              float64 // per-token acceptance probability
	TokensPerRound     float64
	Speedup            float64 // tokens/s over plain decode
	WeightReadPerToken units.Bytes
}

// RunSpeculative models draft-then-verify decoding (SpecInfer [31]): a small
// draft model proposes K tokens; the target verifies them in one fused pass
// that reads the target weights once. Expected accepted tokens per round is
// (1-α^(K+1))/(1-α); weight-read traffic per emitted token falls by that
// factor — speculative decoding is a *memory-bandwidth* optimization, which
// is why the paper lists it among the OS mechanisms of §4.
func RunSpeculative(target, draft llm.ModelConfig, acc llm.Accelerator, ctx int,
	ks []int, alphas []float64) ([]SpecPoint, *report.Table, error) {
	if err := target.Validate(); err != nil {
		return nil, nil, err
	}
	if err := draft.Validate(); err != nil {
		return nil, nil, err
	}
	eng, err := llm.NewEngine(target, acc)
	if err != nil {
		return nil, nil, err
	}
	engD, err := llm.NewEngine(draft, acc)
	if err != nil {
		return nil, nil, err
	}
	base, err := eng.DecodeStep([]int{ctx})
	if err != nil {
		return nil, nil, err
	}
	baseTPS := 1 / base.Time().Seconds()
	tab := report.NewTable(
		fmt.Sprintf("E28: speculative decoding (%s drafted by %s, ctx=%d)", target.Name, draft.Name, ctx),
		"k", "alpha", "tokens/round", "speedup", "weight_GB_per_token")
	var pts []SpecPoint
	for _, k := range ks {
		if k < 1 {
			return nil, nil, fmt.Errorf("mrm: draft depth %d", k)
		}
		for _, a := range alphas {
			if a <= 0 || a >= 1 {
				return nil, nil, fmt.Errorf("mrm: acceptance %v outside (0,1)", a)
			}
			// Expected emitted tokens per round (including the bonus token
			// from the verification pass).
			accepted := (1 - math.Pow(a, float64(k)+1)) / (1 - a)
			// Draft: k small-model decode steps.
			dCost, err := engD.DecodeStep([]int{ctx})
			if err != nil {
				return nil, nil, err
			}
			// Verify: one target pass over k tokens — weights once, KV once,
			// compute for k tokens.
			vRead := target.WeightReadBytes(1) + target.KVCacheBytes(ctx)
			vTime := max(
				eng.TimeForFLOPs(float64(k)*target.FLOPsPerToken(ctx)),
				(acc.MemBW * units.Bandwidth(0.8)).Time(vRead),
			)
			roundTime := time.Duration(k)*dCost.Time() + vTime
			tps := accepted / roundTime.Seconds()
			p := SpecPoint{
				K: k, Alpha: a,
				TokensPerRound:     accepted,
				Speedup:            tps / baseTPS,
				WeightReadPerToken: units.Bytes(float64(vRead) / accepted),
			}
			pts = append(pts, p)
			tab.AddRow(k, a, accepted, p.Speedup, float64(p.WeightReadPerToken)/1e9)
		}
	}
	return pts, tab, nil
}

// ---- E29: accelerators needed per model ----

// PlacementPoint is one model's per-node memory demand.
type PlacementPoint struct {
	Model     string
	Footprint units.Bytes
	HBMNodes  int // B200-style 192 GiB nodes needed for capacity
	MRMNodes  int // 24 GiB HBM + 384 GiB MRM nodes
}

// RunAcceleratorCount reports how many accelerator packages each model needs
// purely for memory capacity (weights + a batch of KV) on HBM-only vs
// HBM+MRM nodes — the paper's density argument in deployment units.
func RunAcceleratorCount(ctx, batch int) ([]PlacementPoint, *report.Table) {
	tab := report.NewTable(fmt.Sprintf("E29: packages needed for capacity (ctx=%d, batch=%d)", ctx, batch),
		"model", "footprint", "hbm_nodes(192GiB)", "hbm+mrm_nodes(408GiB)")
	hbmCap := 192 * units.GiB
	mrmCap := (24 + 384) * units.GiB
	var pts []PlacementPoint
	for _, m := range llm.Models() {
		c := ctx
		if c > m.MaxContext {
			c = m.MaxContext
		}
		foot := m.WeightBytes() + m.KVCacheBytes(c)*units.Bytes(batch) + m.ActivationBytes(batch)
		p := PlacementPoint{
			Model:     m.Name,
			Footprint: foot,
			HBMNodes:  int(math.Ceil(float64(foot) / float64(hbmCap))),
			MRMNodes:  int(math.Ceil(float64(foot) / float64(mrmCap))),
		}
		pts = append(pts, p)
		tab.AddRow(m.Name, foot.String(), p.HBMNodes, p.MRMNodes)
	}
	return pts, tab
}
