package mrm

import (
	"fmt"
	"io"
	"time"

	"mrm/internal/cluster"
	"mrm/internal/dist"
	"mrm/internal/llm"
	"mrm/internal/report"
)

// FleetDayParams sizes a streamed fleet-day replay: an open-loop Poisson
// request stream of Rate req/s fleet-wide over Duration of simulated time,
// served by Nodes identical nodes. This is ROADMAP item 1's bar — a
// million-user day is Nodes=1000, Rate=25, Duration=24h ≈ 2.16M requests —
// made affordable by the stream-native path: the request stream is generated
// block by block (Generator.Stream) and executed windowed (Fleet.RunStream),
// so peak memory is O(Nodes × Window) no matter how long the day.
type FleetDayParams struct {
	Nodes      int
	Rate       float64       // fleet-wide request arrival rate, req/s
	Duration   time.Duration // simulated day length; requests = Rate × Duration
	Mix        [3]float64    // SLA class probabilities (interactive, throughput, best-effort)
	Seed       uint64
	Window     int          // RunStream buffer budget (0 = cluster.DefaultWindow)
	Memory     MemoryConfig // per-node memory system (HBMOnly, HBMPlusMRM, HBMPlusHBF, ...)
	Model      llm.ModelConfig
	Acc        llm.Accelerator
	MaxBatch   int
	PageTokens int
	// Progress, when non-nil, receives periodic requests/sec + ETA lines
	// during the replay (mrmsim fleetday -progress points it at stderr).
	// It is reporting-only: the replay's results and stdout tables are
	// byte-identical with or without it.
	Progress io.Writer
}

// DefaultFleetDayParams returns the million-user-day configuration: 1000
// nodes serving 25 req/s for 24 simulated hours (2.16M requests), HBM-only
// nodes, default window.
func DefaultFleetDayParams() FleetDayParams {
	return FleetDayParams{
		Nodes: 1000, Rate: 25, Duration: 24 * time.Hour,
		Mix: [3]float64{0.5, 0.3, 0.2}, Seed: 42,
		Memory: HBMOnly,
		Model:  llm.Llama27B, Acc: llm.B200,
		MaxBatch: 16, PageTokens: 16,
	}
}

// FleetDayResult is the replay outcome plus the sizing that produced it.
type FleetDayResult struct {
	Params   FleetDayParams
	Requests int
	Fleet    cluster.FleetResult
}

// RunFleetDay replays the configured day through the stream-native fleet
// path and reports the outcome. Output is deterministic in (Params); the
// request stream is identical to Generator.Generate with the same seed, and
// execution is bit-identical to the batch Fleet.Run twin.
func RunFleetDay(p FleetDayParams) (FleetDayResult, *report.Table, error) {
	if p.Nodes <= 0 || p.Rate <= 0 || p.Duration <= 0 {
		return FleetDayResult{}, nil, fmt.Errorf("mrm: fleetday needs positive nodes, rate, duration")
	}
	n := int(p.Rate * p.Duration.Seconds())
	if n <= 0 {
		return FleetDayResult{}, nil, fmt.Errorf("mrm: fleetday stream is empty (rate %v over %v)", p.Rate, p.Duration)
	}
	gen := cluster.Generator{
		Workload:   llm.SplitwiseConv,
		RatePerSec: p.Rate,
		Mix:        p.Mix,
		MaxContext: p.Model.MaxContext,
	}
	src, err := gen.Stream(dist.NewRNG(p.Seed), n)
	if err != nil {
		return FleetDayResult{}, nil, err
	}
	fleet, err := cluster.NewFleet(p.Nodes, func(int) (*cluster.Sim, error) {
		ms, err := buildMemory(p.Memory)
		if err != nil {
			return nil, err
		}
		return cluster.NewSim(cluster.Config{
			Model: p.Model, Acc: p.Acc, Memory: ms.Manager,
			PageTokens: p.PageTokens, MaxBatch: p.MaxBatch,
			ScratchTier: ms.ScratchTier,
		})
	})
	if err != nil {
		return FleetDayResult{}, nil, err
	}
	fleet.Window = p.Window
	if p.Progress != nil {
		// Pacing is reporting-only, exactly like mrmsim's -timing: wall-clock
		// reads feed a stderr-style writer while the replay's own output
		// stays byte-identical. RunStream invokes the callback at its
		// (deterministic) window boundaries; the callback throttles itself to
		// roughly one line every 5 wall seconds. `fed` counts requests handed
		// to node execution buffers, which for a no-failure day converges on
		// the request count — good enough for an ETA.
		start := time.Now() //mrm:allow-nondet -progress reports wall-clock pacing to stderr only; replay output is unaffected
		last := start
		total := int64(n)
		fleet.Progress = func(fed int64) {
			now := time.Now() //mrm:allow-nondet -progress reports wall-clock pacing to stderr only; replay output is unaffected
			if now.Sub(last) < 5*time.Second && fed < total {
				return
			}
			last = now
			elapsed := now.Sub(start).Seconds()
			if elapsed <= 0 || fed <= 0 {
				return
			}
			rate := float64(fed) / elapsed
			eta := time.Duration(float64(total-fed) / rate * float64(time.Second))
			if eta < 0 {
				eta = 0
			}
			fmt.Fprintf(p.Progress, "fleetday: %d/%d requests fed, %.0f req/s, ETA %s\n",
				fed, total, rate, eta.Round(time.Second))
		}
	}
	res, err := fleet.RunStream(src)
	if err != nil {
		return FleetDayResult{}, nil, err
	}
	out := FleetDayResult{Params: p, Requests: n, Fleet: res}
	tab := report.NewTable(
		fmt.Sprintf("Fleet day: %d nodes × %s, %.3g req/s over %s (%d requests, %s)",
			p.Nodes, p.Model.Name, p.Rate, p.Duration, n, p.Memory),
		"metric", "value")
	tab.AddRow("sim hours", res.WallTime.Hours())
	tab.AddRow("completed", res.Completed)
	tab.AddRow("truncated", res.Truncated)
	tab.AddRow("tokens/s", res.TokensPerSec)
	tab.AddRow("good tokens/s", res.GoodTokensPerSec)
	tab.AddRow("tokens/kJ", res.TokensPerJoule*1000)
	tab.AddRow("balance", res.Balance)
	tab.AddRow("ttft p50 (s)", res.TTFT.P50)
	tab.AddRow("ttft p99 (s)", res.TTFT.P99)
	tab.AddRow("tbt p99 (s)", res.TBT.P99)
	return out, tab, nil
}
