package mrm

// Extension experiments E19–E22: rack-scale serving (fleet scheduling),
// wear-out lifetime under sustained KV churn, chunked prefill, and
// automatic prefix caching.

import (
	"fmt"
	"time"

	"mrm/internal/cellphys"
	"mrm/internal/cluster"
	"mrm/internal/controller"
	"mrm/internal/dist"
	"mrm/internal/energy"
	"mrm/internal/kvcache"
	"mrm/internal/llm"
	"mrm/internal/memdev"
	"mrm/internal/report"
	"mrm/internal/units"
)

// ---- E19: fleet scale-out ----

// FleetPoint is one fleet size's outcome.
type FleetPoint struct {
	Nodes          int
	TokensPerSec   float64
	TokensPerJoule float64
	Balance        float64
	TTFTP99        float64
}

// RunFleetScaleOut serves one request stream on fleets of growing size
// (every node an HBM+MRM system), measuring throughput scaling, load
// balance, and tail latency — the "holistic and efficient orchestration"
// layer of §4.
func RunFleetScaleOut(p ServingParams, nodeCounts []int) ([]FleetPoint, *report.Table, error) {
	gen := cluster.Generator{
		Workload:   llm.SplitwiseConv,
		RatePerSec: p.RatePerSec,
		Mix:        [3]float64{0.4, 0.4, 0.2},
		MaxContext: p.Model.MaxContext,
	}
	tab := report.NewTable(fmt.Sprintf("E19: fleet scale-out (%s, %d requests)", p.Model.Name, p.NumReqs),
		"nodes", "tokens/s", "tokens/kJ", "balance", "ttft_p99_s")
	var pts []FleetPoint
	for _, n := range nodeCounts {
		rng := dist.NewRNG(p.Seed)
		reqs, err := gen.Generate(rng, p.NumReqs)
		if err != nil {
			return nil, nil, err
		}
		for i := range reqs {
			reqs[i].Arrival = 0 // saturating burst: measure capacity
			if reqs[i].PromptTokens > 512 {
				reqs[i].PromptTokens = 512
			}
			if reqs[i].OutputTokens > 64 {
				reqs[i].OutputTokens = 64
			}
		}
		fleet, err := cluster.NewFleet(n, func(int) (*cluster.Sim, error) {
			ms, err := buildMemory(HBMPlusMRM)
			if err != nil {
				return nil, err
			}
			return cluster.NewSim(cluster.Config{
				Model: p.Model, Acc: p.Acc, Memory: ms.Manager,
				PageTokens: p.PageTokens, MaxBatch: p.MaxBatch,
				KVLifetime: 30 * time.Minute, ScratchTier: ms.ScratchTier,
			})
		})
		if err != nil {
			return nil, nil, err
		}
		res, err := fleet.Run(reqs)
		if err != nil {
			return nil, nil, err
		}
		ttft := 0.0
		for _, nr := range res.PerNode {
			if nr.TTFT.P99 > ttft {
				ttft = nr.TTFT.P99
			}
		}
		pt := FleetPoint{
			Nodes: n, TokensPerSec: res.TokensPerSec,
			TokensPerJoule: res.TokensPerJoule, Balance: res.Balance,
			TTFTP99: ttft,
		}
		pts = append(pts, pt)
		tab.AddRow(n, pt.TokensPerSec, pt.TokensPerJoule*1000, pt.Balance, pt.TTFTP99)
	}
	return pts, tab, nil
}

// ---- E20: wear-out lifetime under KV churn ----

// WearoutPoint is one (technology, retention class) lifetime estimate.
type WearoutPoint struct {
	Device    string
	Endurance float64
	Years     float64
	MeetsLife bool // survives the paper's 5-year service life
}

// RunWearoutLifetime converts the Figure-1 arithmetic into device lifetimes:
// given sustained Splitwise KV churn over a region of kvBytes, how many
// years until the cells wear out, per technology and retention class.
// The MRM thesis requires the relaxed-retention points to clear 5 years
// where the 10-year (SCM) points do not.
func RunWearoutLifetime(w llm.Workload, model llm.ModelConfig, kvBytes units.Bytes,
	retentions []time.Duration) ([]WearoutPoint, *report.Table, error) {
	if kvBytes == 0 {
		return nil, nil, fmt.Errorf("mrm: zero KV capacity")
	}
	tokensPerSec := w.PrefillTokensPerSec + w.DecodeTokensPerSec
	writesPerCellPerSec := tokensPerSec * float64(model.KVBytesPerToken()) / float64(kvBytes)
	secPerYear := (365 * 24 * time.Hour).Seconds()
	tab := report.NewTable(fmt.Sprintf("E20: KV-churn wear-out (%s, %s region, %.3f writes/cell/s)",
		model.Name, kvBytes.String(), writesPerCellPerSec),
		"device", "endurance", "lifetime_years", "survives_5y")
	var pts []WearoutPoint
	for _, tech := range []cellphys.Technology{cellphys.PCM, cellphys.RRAM, cellphys.STTMRAM, cellphys.NANDFlash} {
		tr := cellphys.ForTechnology(tech)
		for _, ret := range retentions {
			op, err := tr.At(ret)
			if err != nil {
				continue // class outside the tech's range: skip, not an error
			}
			years := op.Endurance / (writesPerCellPerSec * secPerYear)
			p := WearoutPoint{
				Device:    fmt.Sprintf("%s@%s", tech, shortDur(ret)),
				Endurance: op.Endurance,
				Years:     years,
				MeetsLife: years >= 5,
			}
			pts = append(pts, p)
			tab.AddRow(p.Device, fmt.Sprintf("%.1e", op.Endurance),
				fmt.Sprintf("%.2f", years), p.MeetsLife)
		}
	}
	if len(pts) == 0 {
		return nil, nil, fmt.Errorf("mrm: no valid (technology, retention) points")
	}
	return pts, tab, nil
}

// ---- E21: chunked prefill (SARATHI-style scheduling) ----

// ChunkedPrefillPoint is one chunk-size configuration's outcome.
type ChunkedPrefillPoint struct {
	Chunk        int // 0 = monolithic prefill
	TokensPerSec float64
	TBTP99       float64
	TBTMax       float64
	TTFTP99      float64
}

// RunChunkedPrefill compares monolithic prefill against SARATHI-style [3]
// chunked prefill on a stream that mixes long-prompt arrivals into steady
// decodes — the paper's "batching is limited by latency requirements" point:
// chunking trades a little TTFT for a bounded time-between-tokens tail.
func RunChunkedPrefill(p ServingParams, chunks []int) ([]ChunkedPrefillPoint, *report.Table, error) {
	mkReqs := func() []cluster.Request {
		reqs := []cluster.Request{
			{ID: 0, PromptTokens: 64, OutputTokens: 400},
			{ID: 1, PromptTokens: 64, OutputTokens: 400},
		}
		for i := 2; i < 2+p.NumReqs; i++ {
			reqs = append(reqs, cluster.Request{
				ID:           uint64(i),
				Arrival:      time.Duration(i) * 50 * time.Millisecond,
				PromptTokens: 2048, OutputTokens: 16,
			})
		}
		return reqs
	}
	tab := report.NewTable(fmt.Sprintf("E21: chunked prefill (%s, %d long-prompt arrivals)", p.Model.Name, p.NumReqs),
		"chunk", "tokens/s", "tbt_p99_s", "tbt_max_s", "ttft_p99_s")
	var pts []ChunkedPrefillPoint
	for _, chunk := range chunks {
		ms, err := buildMemory(HBMOnly)
		if err != nil {
			return nil, nil, err
		}
		sim, err := cluster.NewSim(cluster.Config{
			Model: p.Model, Acc: p.Acc, Memory: ms.Manager,
			PageTokens: p.PageTokens, MaxBatch: p.MaxBatch,
			ScratchTier: ms.ScratchTier, PrefillChunk: chunk,
		})
		if err != nil {
			return nil, nil, err
		}
		res, err := sim.Run(mkReqs())
		if err != nil {
			return nil, nil, err
		}
		pt := ChunkedPrefillPoint{
			Chunk: chunk, TokensPerSec: res.TokensPerSec,
			TBTP99: res.TBT.P99, TBTMax: res.TBT.Max, TTFTP99: res.TTFT.P99,
		}
		pts = append(pts, pt)
		tab.AddRow(chunk, pt.TokensPerSec, pt.TBTP99, pt.TBTMax, pt.TTFTP99)
	}
	return pts, tab, nil
}

// ---- E22: automatic prefix caching ----

// PrefixSharingResult compares paged-KV capacity with and without prefix
// sharing under Zipf-popular system prompts.
type PrefixSharingResult struct {
	PagesShared      int
	PagesUnshared    int
	CapacitySaved    float64     // 1 - shared/unshared
	ReadBytesPerStep units.Bytes // unchanged by sharing: reads stay per-request
	Table            *report.Table
}

// RunPrefixSharing models automatic prefix caching [54]: requests reuse one
// of a handful of system prompts with Zipf popularity. Sharing collapses
// duplicate prefix pages (capacity), but every request still reads its whole
// context per token — sharing does not change the read-dominance of the
// workload, which is the paper's point when it calls these mitigations
// insufficient.
func RunPrefixSharing(model llm.ModelConfig, nPrefixes, prefixTokens, nReqs, reqTokens int, seed uint64) (PrefixSharingResult, error) {
	pageTokens := 16
	mkCache := func() (*kvcache.Cache, error) {
		return kvcache.New(kvcache.Config{
			PageTokens:      pageTokens,
			KVBytesPerToken: model.KVBytesPerToken(),
			CapacityPages:   (nPrefixes + nReqs) * (prefixTokens + reqTokens + pageTokens) / pageTokens,
		})
	}
	zipf := dist.NewZipf(nPrefixes, 1.0)

	// Shared: prefixes are materialized once and forked per request.
	shared, err := mkCache()
	if err != nil {
		return PrefixSharingResult{}, err
	}
	rng := dist.NewRNG(seed)
	for p := 0; p < nPrefixes; p++ {
		if err := shared.NewSequence(kvcache.SeqID(p)); err != nil {
			return PrefixSharingResult{}, err
		}
		if err := shared.Append(kvcache.SeqID(p), prefixTokens); err != nil {
			return PrefixSharingResult{}, err
		}
	}
	var readBytes units.Bytes
	for r := 0; r < nReqs; r++ {
		parent := kvcache.SeqID(zipf.Sample(rng) - 1)
		child := kvcache.SeqID(nPrefixes + r)
		if err := shared.Fork(parent, child); err != nil {
			return PrefixSharingResult{}, err
		}
		if err := shared.Append(child, reqTokens); err != nil {
			return PrefixSharingResult{}, err
		}
		plan, err := shared.ReadPlan(child)
		if err != nil {
			return PrefixSharingResult{}, err
		}
		for _, pr := range plan {
			readBytes += pr.Size
		}
	}
	sharedPages := shared.Stats().UsedPages

	// Unshared: every request materializes its own copy of the prefix.
	unshared, err := mkCache()
	if err != nil {
		return PrefixSharingResult{}, err
	}
	rng = dist.NewRNG(seed)
	for r := 0; r < nReqs; r++ {
		_ = zipf.Sample(rng) // same popularity draws, copies regardless
		id := kvcache.SeqID(r)
		if err := unshared.NewSequence(id); err != nil {
			return PrefixSharingResult{}, err
		}
		if err := unshared.Append(id, prefixTokens+reqTokens); err != nil {
			return PrefixSharingResult{}, err
		}
	}
	unsharedPages := unshared.Stats().UsedPages

	res := PrefixSharingResult{
		PagesShared:      sharedPages,
		PagesUnshared:    unsharedPages,
		CapacitySaved:    1 - float64(sharedPages)/float64(unsharedPages),
		ReadBytesPerStep: readBytes,
	}
	tab := report.NewTable(fmt.Sprintf("E22: prefix caching (%d prefixes x %d tokens, %d requests)",
		nPrefixes, prefixTokens, nReqs),
		"metric", "value")
	tab.AddRow("pages with sharing", sharedPages)
	tab.AddRow("pages without sharing", unsharedPages)
	tab.AddRow("capacity saved", res.CapacitySaved)
	tab.AddRow("KV read bytes per decode step", readBytes.String())
	res.Table = tab
	return res, nil
}

// ---- E23: expert (MoE) models ----

// MoEPoint compares MoE and dense weight traffic at a batch size.
type MoEPoint struct {
	Batch             int
	MoEWeightRead     units.Bytes
	DenseWeightRead   units.Bytes
	MoETokensPerSec   float64
	DenseTokensPerSec float64
}

// RunMoEComparison quantifies §4's "expert models" point: an MoE model
// must keep all experts resident (dense-model capacity) while reading only
// the routed slice per token at small batch — widening the capacity-vs-
// bandwidth gap that favors dense, cheap-to-read memory like MRM.
func RunMoEComparison(acc llm.Accelerator, ctx int, batches []int) ([]MoEPoint, *report.Table, error) {
	moe := llm.Mixtral8x7B
	dense := moe
	dense.Name = "Dense-47B"
	dense.Experts, dense.ActiveExperts = 0, 0
	eMoe, err := llm.NewEngine(moe, acc)
	if err != nil {
		return nil, nil, err
	}
	eDense, err := llm.NewEngine(dense, acc)
	if err != nil {
		return nil, nil, err
	}
	tab := report.NewTable(fmt.Sprintf("E23: MoE vs dense (%s vs %s, ctx=%d)", moe.Name, dense.Name, ctx),
		"batch", "moe_weight_GB/step", "dense_weight_GB/step", "moe_tok/s", "dense_tok/s")
	var pts []MoEPoint
	for _, b := range batches {
		mt, err := eMoe.DecodeTokensPerSec(b, ctx)
		if err != nil {
			return nil, nil, err
		}
		dt, err := eDense.DecodeTokensPerSec(b, ctx)
		if err != nil {
			return nil, nil, err
		}
		p := MoEPoint{
			Batch:           b,
			MoEWeightRead:   moe.WeightReadBytes(b),
			DenseWeightRead: dense.WeightReadBytes(b),
			MoETokensPerSec: mt, DenseTokensPerSec: dt,
		}
		pts = append(pts, p)
		tab.AddRow(b, float64(p.MoEWeightRead)/1e9, float64(p.DenseWeightRead)/1e9, mt, dt)
	}
	return pts, tab, nil
}

// ---- E24: serving TCO (tokens per dollar) ----

// TCOPoint is one memory configuration's dollar economics.
type TCOPoint struct {
	Config          MemoryConfig
	MemoryCapex     units.Cost
	TokensPerSec    float64
	TokensPerDollar float64 // over the amortization window, memory cost only
}

// RunServingTCO extends E7 to §5's closing metric — "tokens generated per
// dollar": the same serving run priced with amortized memory capex plus the
// measured memory energy.
func RunServingTCO(p ServingParams) ([]TCOPoint, *report.Table, error) {
	outs, _, err := RunServingComparison(p)
	if err != nil {
		return nil, nil, err
	}
	model := energy.DefaultTCO()
	tab := report.NewTable(fmt.Sprintf("E24: serving TCO (%s, memory subsystem only)", p.Model.Name),
		"memory", "capex", "tokens/s", "tokens/$")
	var pts []TCOPoint
	for _, o := range outs {
		ms, err := buildMemory(o.Config)
		if err != nil {
			return nil, nil, err
		}
		var capex units.Cost
		for _, info := range ms.Manager.Tiers() {
			// Price each tier's capacity at its spec's $/GB.
			perGB := tierCostPerGB(info.Name)
			capex += units.Cost(info.Capacity.GB() * perGB)
		}
		// Cost over the simulated window: amortized capex + measured energy.
		amort := capex * units.Cost(o.Result.SimTime.Hours()/(model.AmortizationYears*365*24))
		cost := amort + model.EnergyCost(o.Result.Energy)
		tpd := 0.0
		if cost > 0 {
			tpd = float64(o.Result.TokensOut) / float64(cost)
		}
		pt := TCOPoint{
			Config: o.Config, MemoryCapex: capex,
			TokensPerSec: o.Result.TokensPerSec, TokensPerDollar: tpd,
		}
		pts = append(pts, pt)
		tab.AddRow(o.Config.String(), float64(capex), pt.TokensPerSec, tpd)
	}
	return pts, tab, nil
}

// tierCostPerGB maps tier names from buildMemory to spec $/GB.
func tierCostPerGB(name string) float64 {
	switch name {
	case "hbm":
		return float64(memdev.HBM3E.CostPerGB)
	case "lpddr":
		return float64(memdev.LPDDR5X.CostPerGB)
	case "mrm":
		return float64(memdev.MRMSpec(cellphys.RRAM, 24*time.Hour).CostPerGB)
	case "hbf":
		return float64(memdev.HBFlash.CostPerGB)
	default:
		return float64(memdev.DDR5.CostPerGB)
	}
}

// ---- E25: controller-level achieved bandwidth ----

// BandwidthPoint is one device's achieved sequential read bandwidth through
// its bank/channel controller.
type BandwidthPoint struct {
	Device       string
	Achieved     units.Bandwidth
	Peak         units.Bandwidth
	Utilization  float64
	RefreshShare float64 // fraction of busy time stolen by refresh
}

// RunControllerBandwidth streams sequential reads through the bank/channel
// scheduler of each device and measures achieved bandwidth and refresh
// steal — the microarchitectural face of E5's refresh tax.
func RunControllerBandwidth(totalBytes units.Bytes) ([]BandwidthPoint, *report.Table, error) {
	specs := []memdev.Spec{
		memdev.HBM3E,
		memdev.MRMSpec(cellphys.RRAM, 24*time.Hour),
	}
	tab := report.NewTable(fmt.Sprintf("E25: achieved sequential read bandwidth (%s streamed)", totalBytes.String()),
		"device", "achieved", "peak", "utilization", "refresh_share")
	var pts []BandwidthPoint
	for _, spec := range specs {
		// Deep bank parallelism (16/channel) as in real HBM stacks and
		// crossbar arrays, so bank latency is hidden and the channel bus —
		// and any refresh tax — set the achieved bandwidth.
		cfg := controller.DefaultSchedConfig(spec)
		cfg.BanksPerChannel = 16
		sched, err := controller.NewSched(cfg)
		if err != nil {
			return nil, nil, err
		}
		// A real controller's address mapper interleaves a sequential stream
		// across channels and banks; emit the command stream it would:
		// fixed-size commands whose addresses rotate through the channel
		// and bank space.
		const chunk = 4 * units.KiB
		var clock time.Duration
		i := units.Bytes(0)
		for moved := units.Bytes(0); moved < totalBytes; moved += chunk {
			addr := (i*chunk + (i%128)*256) % spec.Capacity
			c, err := sched.Submit(controller.Request{
				Kind: memdev.Read, Addr: addr, Size: chunk, Arrive: clock,
			})
			if err != nil {
				return nil, nil, err
			}
			i++
			// Open-loop: the next command is ready immediately; the
			// controller's queueing sets the pace.
			clock = c.Start
		}
		busy := sched.BusyUntil()
		achieved := units.Bandwidth(0)
		if busy > 0 {
			achieved = units.Bandwidth(float64(totalBytes) / busy.Seconds())
		}
		refShare := 0.0
		if sched.BankBusyTime() > 0 {
			refShare = sched.RefreshTime().Seconds() / sched.BankBusyTime().Seconds()
		}
		p := BandwidthPoint{
			Device: spec.Name, Achieved: achieved, Peak: spec.ReadBW,
			Utilization:  float64(achieved) / float64(spec.ReadBW),
			RefreshShare: refShare,
		}
		pts = append(pts, p)
		tab.AddRow(spec.Name, achieved.String(), spec.ReadBW.String(), p.Utilization, p.RefreshShare)
	}
	return pts, tab, nil
}

// ---- E26: quantization sweep ----

// QuantPoint is one precision's geometry and speed.
type QuantPoint struct {
	Precision    llm.Precision
	WeightBytes  units.Bytes
	KVPerToken   units.Bytes
	TokensPerSec float64
}

// RunQuantizationSweep reproduces the paper's "250 GB to over 1 TB of data
// depending on the weight quantization" point and its bandwidth corollary:
// quantization shrinks both the capacity demand and the per-token read
// traffic, raising decode throughput on the same memory.
func RunQuantizationSweep(base llm.ModelConfig, acc llm.Accelerator, ctx, batch int) ([]QuantPoint, *report.Table, error) {
	tab := report.NewTable(fmt.Sprintf("E26: quantization sweep (%s, ctx=%d, batch=%d)", base.Name, ctx, batch),
		"precision", "weights", "kv/token", "tokens/s")
	var pts []QuantPoint
	for _, prec := range []llm.Precision{llm.FP32, llm.FP16, llm.FP8, llm.INT4} {
		m := base
		m.Precision = prec
		eng, err := llm.NewEngine(m, acc)
		if err != nil {
			return nil, nil, err
		}
		tps, err := eng.DecodeTokensPerSec(batch, ctx)
		if err != nil {
			return nil, nil, err
		}
		p := QuantPoint{
			Precision: prec, WeightBytes: m.WeightBytes(),
			KVPerToken: m.KVBytesPerToken(), TokensPerSec: tps,
		}
		pts = append(pts, p)
		tab.AddRow(prec.String(), p.WeightBytes.String(), p.KVPerToken.String(), tps)
	}
	return pts, tab, nil
}
