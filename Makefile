# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test bench run-experiments cover fmt

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem ./...

run-experiments:
	go run ./cmd/mrmsim

cover:
	go test -coverprofile=cover.out ./... && go tool cover -func=cover.out | tail -1

fmt:
	gofmt -w .
