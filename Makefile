# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test bench bench-json run-experiments cover fmt fault-smoke fault-golden

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

# test vets first, then runs the suite twice: once plain, once under the race
# detector (the parallel sweep engine makes every driver a concurrency test),
# then golden-diffs the fault-degradation experiment.
test:
	go vet ./...
	go test ./...
	go test -race ./...
	$(MAKE) fault-smoke

# fault-smoke golden-diffs e30 at -parallel 8: seeded fault injection must be
# bit-identical across runs and worker counts. Regenerate the golden with
# `make fault-golden` after an intentional change.
fault-smoke:
	go run ./cmd/mrmsim -exp e30 -seed 42 -fault-rate 1e-3 -fault-seed 7 -parallel 8 | diff -u testdata/e30_golden.txt -

fault-golden:
	go run ./cmd/mrmsim -exp e30 -seed 42 -fault-rate 1e-3 -fault-seed 7 -parallel 8 > testdata/e30_golden.txt

bench:
	go test -bench=. -benchmem ./...

# bench-json captures the sweep-engine scaling benchmarks (workers=1 vs
# workers=NumCPU) as test2json event lines for regression tracking.
bench-json:
	go test -json -run '^$$' -bench '^BenchmarkSweep' -benchmem . > BENCH_sweep.json
	@grep -c '"Action"' BENCH_sweep.json >/dev/null && echo "wrote BENCH_sweep.json"

run-experiments:
	go run ./cmd/mrmsim

cover:
	go test -coverprofile=cover.out ./... && go tool cover -func=cover.out | tail -1

fmt:
	gofmt -w .
