# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet lint test ci bench bench-json bench-diff run-experiments cover fmt fmt-check fault-smoke fault-golden daemon-smoke

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

# lint runs the project-specific analyzers (cmd/mrmlint): nondeterminism and
# seed purity (interprocedural — impurities reached through helper chains are
# reported at the simulation call site), map-iteration-order leaks,
# mutex-guard contracts, error-matching hygiene (errcmp), shell context
# discipline (ctxflow), and stale-waiver detection (staleallow). A clean tree
# exits 0; waivers are //mrm:allow-<analyzer> directives with reasons, and a
# waiver that stops suppressing anything becomes a finding itself.
lint:
	go run ./cmd/mrmlint ./...

# test vets and lints first, then runs the suite twice: once plain, once under
# the race detector (the parallel sweep engine makes every driver a
# concurrency test), then golden-diffs the fault-degradation experiment.
test:
	go vet ./...
	$(MAKE) lint
	go test ./...
	go test -race ./...
	$(MAKE) fault-smoke
	$(MAKE) daemon-smoke

# ci is what .github/workflows/ci.yml runs: the full gate plus a formatting
# check.
ci: build fmt-check test

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# fault-smoke golden-diffs e30 at -parallel 8: seeded fault injection must be
# bit-identical across runs and worker counts. Regenerate the golden with
# `make fault-golden` after an intentional change.
fault-smoke:
	go run ./cmd/mrmsim -exp e30 -seed 42 -fault-rate 1e-3 -fault-seed 7 -parallel 8 | diff -u testdata/e30_golden.txt -

fault-golden:
	go run ./cmd/mrmsim -exp e30 -seed 42 -fault-rate 1e-3 -fault-seed 7 -parallel 8 > testdata/e30_golden.txt

# daemon-smoke drills the mrmd serving daemon end-to-end: start on an
# ephemeral port, probe /healthz and /readyz, submit a request, arm /chaos,
# reconfigure tiering live, then SIGTERM and require a clean drain (exit 0
# within the drain deadline).
daemon-smoke:
	sh scripts/daemon_smoke.sh

bench:
	go test -bench=. -benchmem ./...

# bench-json captures the sweep-engine scaling benchmarks (workers=1 vs
# workers=NumCPU), the device hot-path benchmarks (superblock-pruned BER
# scan, coalesced reads, histogram bucket cache), the cluster-level serving
# benchmarks (coalesced decode loop, batched write path, fleet run), and the
# fleet-scale event-engine benchmarks (event vs stepping engine, 1000-node
# fleet-day batch and streamed, serial and pipelined, plus the
# generation/placement microbenches that decompose the streamed day —
# BENCH_fleet.json carries the BenchmarkFleetDayStream metrics) as test2json
# event lines for regression tracking.
bench-json:
	go test -json -run '^$$' -bench '^BenchmarkSweep' -benchmem . > BENCH_sweep.json
	@grep -c '"Action"' BENCH_sweep.json >/dev/null && echo "wrote BENCH_sweep.json"
	go test -json -run '^$$' -bench '^(BenchmarkDevice|BenchmarkDecodeCoalesce|BenchmarkHistogramObserve)' -benchmem \
		./internal/memdev ./internal/cluster ./internal/metrics > BENCH_device.json
	@grep -c '"Action"' BENCH_device.json >/dev/null && echo "wrote BENCH_device.json"
	go test -json -run '^$$' -bench '^(BenchmarkDecodeCoalesce|BenchmarkSimWritePath|BenchmarkFleetRun)' -benchmem \
		./internal/cluster > BENCH_cluster.json
	@grep -c '"Action"' BENCH_cluster.json >/dev/null && echo "wrote BENCH_cluster.json"
	go test -json -run '^$$' -bench '^(BenchmarkFleet|BenchmarkGeneratorStream)' -benchmem \
		./internal/cluster > BENCH_fleet.json
	@grep -c '"Action"' BENCH_fleet.json >/dev/null && echo "wrote BENCH_fleet.json"

# bench-diff compares the device and cluster hot-path benchmarks — including
# the streamed fleet-day path and its generation/placement microbenches —
# against a saved baseline with benchstat when both are available. Save a
# baseline with:
#   go test -run '^$$' -bench '^(BenchmarkDevice|BenchmarkDecodeCoalesce|BenchmarkSimWritePath|BenchmarkFleetRun|BenchmarkFleetDayStream|BenchmarkGeneratorStream|BenchmarkFleetPlacement)' -count 5 ./internal/memdev ./internal/cluster > bench_baseline.txt
# The target degrades gracefully: it explains what is missing rather than
# failing when benchstat or the baseline is absent.
bench-diff:
	@if [ ! -f bench_baseline.txt ]; then \
		echo "bench-diff: no bench_baseline.txt; save one with the command in the Makefile comment"; \
		exit 0; \
	fi; \
	go test -run '^$$' -bench '^(BenchmarkDevice|BenchmarkDecodeCoalesce|BenchmarkSimWritePath|BenchmarkFleetRun|BenchmarkFleetDayStream|BenchmarkGeneratorStream|BenchmarkFleetPlacement)' -count 5 \
		./internal/memdev ./internal/cluster > bench_new.txt; \
	if command -v benchstat >/dev/null 2>&1; then \
		benchstat bench_baseline.txt bench_new.txt; \
	else \
		echo "bench-diff: benchstat not installed; raw results are in bench_baseline.txt and bench_new.txt"; \
	fi

run-experiments:
	go run ./cmd/mrmsim

cover:
	go test -coverprofile=cover.out ./... && go tool cover -func=cover.out | tail -1

fmt:
	gofmt -w .
