package mrm

// Cross-module integration tests: end-to-end paths that single-package unit
// tests cannot cover — the wear/error model feeding real ECC decodes, the
// serving simulator driving MRM expiry under long timelines, and the CSV
// trace path round-tripping through analysis.

import (
	"errors"
	"strings"
	"testing"
	"time"

	"mrm/internal/cellphys"
	"mrm/internal/cluster"
	"mrm/internal/core"
	"mrm/internal/dist"
	"mrm/internal/ecc"
	"mrm/internal/llm"
	"mrm/internal/memdev"
	"mrm/internal/tier"
	"mrm/internal/trace"
	"mrm/internal/units"
)

// Fault injection end to end: sample bit flips at the rate the cell model
// predicts for aged, worn MRM cells, push real codewords through them, and
// check that RS(255,223) delivers the UBER the scrub plan promised.
func TestECCSurvivesCellModelErrors(t *testing.T) {
	op := cellphys.ForTechnology(cellphys.RRAM).MustAt(24 * time.Hour)
	// Heavily worn cells read close to their retention deadline: the worst
	// case the scrub planner must cover.
	wear := cellphys.WearState{Cycles: op.Endurance * 0.5}
	ber := cellphys.RawBER(op, wear, 23*time.Hour, cellphys.DefaultBER)
	if ber <= 0 || ber > 1e-3 {
		t.Fatalf("model BER = %g, outside the regime this test targets", ber)
	}
	code, err := ecc.NewRS(255, 223)
	if err != nil {
		t.Fatal(err)
	}
	rng := dist.NewRNG(99)
	words, failures, flips := 2000, 0, 0
	for w := 0; w < words; w++ {
		data := make([]byte, 223)
		for i := range data {
			data[i] = byte(rng.Uint64())
		}
		cw, err := code.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		// Flip each bit independently with probability ber.
		for i := range cw {
			for b := 0; b < 8; b++ {
				if rng.Float64() < ber {
					cw[i] ^= 1 << b
					flips++
				}
			}
		}
		got, _, err := code.Decode(cw)
		if err != nil {
			failures++
			continue
		}
		for i := range data {
			if got[i] != data[i] {
				t.Fatalf("word %d: silent miscorrection", w)
			}
		}
	}
	if flips == 0 {
		t.Fatal("error injection produced no flips; test is vacuous")
	}
	// The analytical failure probability at this BER.
	pFail := ecc.RSSpec(255, 223).CodewordFailureProb(ber)
	maxExpected := float64(words)*pFail*10 + 3 // generous slack
	if float64(failures) > maxExpected {
		t.Fatalf("decode failures = %d, analytical bound ~%.2f (ber=%g)",
			failures, maxExpected, pFail*float64(words))
	}
}

// A serving run on HBM+MRM whose timeline spans KV retention: expired pages
// are tolerated (requests completed long before), energy ledgers stay
// consistent, and the MRM reclaims its zones.
func TestServingThenExpiryLifecycle(t *testing.T) {
	hbmSpec := memdev.HBM3E
	hbmSpec.Capacity = 24 * units.GiB
	hbmSpec.ReadBW = 8 * units.TBps
	hbm, err := tier.NewDeviceTier("hbm", hbmSpec)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := core.DefaultConfig()
	mcfg.Capacity = 64 * units.GiB
	mcfg.ZoneSize = 64 * units.MiB
	mr, err := core.New(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := tier.NewManager(tier.RetentionAwarePolicy{}, hbm, tier.NewMRMTier("mrm", mr))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := cluster.NewSim(cluster.Config{
		Model: llm.Llama27B, Acc: llm.B200, Memory: mgr,
		PageTokens: 16, MaxBatch: 4, KVLifetime: 10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]cluster.Request, 6)
	for i := range reqs {
		reqs[i] = cluster.Request{ID: uint64(i), PromptTokens: 96, OutputTokens: 16}
	}
	res, err := sim.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 6 {
		t.Fatalf("completed = %d", res.Completed)
	}
	// Long after the serving burst, the MRM should have expired and
	// reclaimed everything except the weights, which the 7-day class
	// refreshes once its deadline margin is reached.
	for i := 0; i < 8*24; i++ {
		if err := mgr.Tick(time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	st := mr.Stats()
	if st.Refreshes == 0 {
		t.Error("weights on MRM should have been refreshed over 8 days (7d class)")
	}
	free := mr.FreeBytes()
	want := mr.Capacity() - llm.Llama27B.WeightBytes()
	// All KV zones reclaimed: free space within one zone of the ideal.
	if free < want-2*mcfg.ZoneSize {
		t.Errorf("free = %v, want ~%v (KV zones reclaimed)", free, want)
	}
	if mr.Energy().Total() <= 0 {
		t.Error("energy ledger empty")
	}
}

// The weights survive indefinitely on MRM under PolicyRefresh while the
// control plane reports the refresh traffic the DCM sweep predicts.
func TestWeightsRefreshEnergyMatchesPrediction(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Capacity = 8 * units.GiB
	cfg.ZoneSize = 64 * units.MiB
	m, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const size = units.GiB
	if _, _, err := m.Put(size, core.WriteOptions{
		Kind: core.KindWeights, Lifetime: 90 * 24 * time.Hour, Policy: core.PolicyRefresh,
	}); err != nil {
		t.Fatal(err)
	}
	hostWrite := m.Energy().HostWrite
	// 28 days with a 7d class → 4+ refreshes (margin pulls them earlier).
	for i := 0; i < 28; i++ {
		if err := m.Tick(24 * time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Refreshes < 4 {
		t.Fatalf("refreshes = %d, want >= 4", st.Refreshes)
	}
	perRefresh := m.Energy().RefreshWrite / units.Energy(st.Refreshes)
	// Each refresh rewrites the same bytes at the same class: its energy
	// must equal the original host write.
	ratio := float64(perRefresh) / float64(hostWrite)
	if ratio < 0.99 || ratio > 1.01 {
		t.Errorf("per-refresh energy %v vs host write %v (ratio %v)", perRefresh, hostWrite, ratio)
	}
}

// Trace CSV round trip at scale through the real workload generator.
func TestTraceCSVEndToEnd(t *testing.T) {
	res, err := RunSequentiality(llm.Llama2_70B, 16, 4, 128, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.Log.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	st1, st2 := res.Log.Analyze(), back.Analyze()
	if st1 != st2 {
		t.Fatalf("analysis changed across CSV round trip:\n%+v\n%+v", st1, st2)
	}
}

// Soft-state drop and recompute path: a KV object expires, the caller
// detects ErrExpired, re-puts it, and the zone accounting stays exact.
func TestDropRecomputeCycle(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Capacity = 512 * units.MiB
	cfg.ZoneSize = 16 * units.MiB
	m, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 10; round++ {
		id, _, err := m.Put(64*units.MiB, core.WriteOptions{
			Kind: core.KindKVCache, Lifetime: 10 * time.Minute, Policy: core.PolicyDrop,
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if _, err := m.Get(id); err != nil {
			t.Fatalf("round %d: fresh read: %v", round, err)
		}
		if err := m.Tick(time.Hour); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Get(id); !errors.Is(err, core.ErrExpired) {
			t.Fatalf("round %d: want ErrExpired, got %v", round, err)
		}
	}
	if m.FreeBytes() != m.Capacity() {
		t.Fatalf("all soft state expired, yet free = %v of %v", m.FreeBytes(), m.Capacity())
	}
	if m.Stats().Expirations != 10 {
		t.Fatalf("expirations = %d", m.Stats().Expirations)
	}
}
