package mrm

// Benchmarks for the ablations and extension experiments E13–E18.

import (
	"testing"
	"time"

	"mrm/internal/cellphys"
	"mrm/internal/llm"
)

// BenchmarkClassCountAblation (E13) reports the energy penalty of a single
// one-size-fits-all retention class vs eight DCM classes.
func BenchmarkClassCountAblation(b *testing.B) {
	var pts []ClassCountPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, _, err = RunClassCountAblation(cellphys.RRAM, []int{1, 2, 4, 8}, 2000, 11)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].MeanStoreJPerGB/pts[len(pts)-1].MeanStoreJPerGB, "1class/8class-energy")
	b.ReportMetric(pts[len(pts)-1].MeanRetentionWaste, "8class-retention-waste")
}

// BenchmarkPageSizeAblation (E14) reports the knee geometry.
func BenchmarkPageSizeAblation(b *testing.B) {
	var pts []PageSizePoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, _, err = RunPageSizeAblation(llm.Llama2_70B, []int{1, 4, 16, 64, 256}, 64, 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		if p.PageTokens == 16 {
			b.ReportMetric(p.Utilization, "16tok-utilization")
			b.ReportMetric(p.RangesPerRead, "16tok-ranges/read")
		}
	}
}

// BenchmarkKeepVsRecompute (E15) reports the energy gap at a one-day idle.
func BenchmarkKeepVsRecompute(b *testing.B) {
	idles := []time.Duration{24 * time.Hour}
	var pts []KeepRecomputePoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, _, err = RunKeepVsRecompute(llm.Llama2_70B, llm.B200, cellphys.RRAM,
			24*time.Hour, 2048, idles)
		if err != nil {
			b.Fatal(err)
		}
	}
	if pts[0].KeepJ > 0 {
		b.ReportMetric(pts[0].RecomputeJ/pts[0].KeepJ, "recompute/keep-energy")
	} else {
		b.ReportMetric(pts[0].RecomputeJ, "recompute-J(keep-free)")
	}
}

// BenchmarkMLC (E16) reports the TLC design point.
func BenchmarkMLC(b *testing.B) {
	var pts []MLCPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, _, err = RunMLCSweep(cellphys.RRAM, 24*time.Hour)
		if err != nil {
			b.Fatal(err)
		}
	}
	tlc := pts[2]
	b.ReportMetric(tlc.CapacityFactor, "tlc-capacity-x")
	b.ReportMetric(tlc.Retention.Seconds(), "tlc-retention-s")
}

// BenchmarkModelSwap (E17) reports MRM's bulk-load duty cycle.
func BenchmarkModelSwap(b *testing.B) {
	var pts []ModelSwapPoint
	for i := 0; i < b.N; i++ {
		pts, _ = RunModelSwap(llm.Llama2_70B)
	}
	for _, p := range pts {
		if p.Device == "MRM-RRAM x8" {
			b.ReportMetric(p.LoadTime.Seconds(), "mrm-load-s")
			b.ReportMetric(p.HourlyDuty, "mrm-hourly-duty")
		}
	}
}

// BenchmarkIdleKV (E18) reports the HBM:MRM idle-hold cost ratio.
func BenchmarkIdleKV(b *testing.B) {
	var pts []IdleKVPoint
	for i := 0; i < b.N; i++ {
		pts, _ = RunIdleKVOffload(llm.Llama2_70B, 4096)
	}
	var hbm, mrm IdleKVPoint
	for _, p := range pts {
		switch p.Tier {
		case "HBM3E":
			hbm = p
		case "MRM-RRAM@1d":
			mrm = p
		}
	}
	if mrm.HoldJPerHour > 0 {
		b.ReportMetric(float64(hbm.HoldJPerHour)/float64(mrm.HoldJPerHour), "hbm/mrm-hold-cost")
	}
}

// BenchmarkFleetScaleOut (E19) reports 4-node scaling efficiency.
func BenchmarkFleetScaleOut(b *testing.B) {
	p := DefaultServingParams()
	p.NumReqs = 12
	var pts []FleetPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, _, err = RunFleetScaleOut(p, []int{1, 4})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[1].TokensPerSec/pts[0].TokensPerSec, "4node-speedup")
	b.ReportMetric(pts[1].Balance, "4node-balance")
}

// BenchmarkWearoutLifetime (E20) reports the lifetime flip between
// non-volatile and managed retention on RRAM.
func BenchmarkWearoutLifetime(b *testing.B) {
	rets := []time.Duration{24 * time.Hour, 10 * 365 * 24 * time.Hour}
	var pts []WearoutPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, _, err = RunWearoutLifetime(llm.SplitwiseConv, llm.Llama2_70B, 48*1<<30, rets)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		switch p.Device {
		case "RRAM@1d":
			b.ReportMetric(p.Years, "rram-1d-years")
		case "RRAM@10y":
			b.ReportMetric(p.Years, "rram-10y-years")
		}
	}
}

// BenchmarkChunkedPrefill (E21) reports the TBT-tail reduction from chunking.
func BenchmarkChunkedPrefill(b *testing.B) {
	p := DefaultServingParams()
	p.NumReqs = 4
	var pts []ChunkedPrefillPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, _, err = RunChunkedPrefill(p, []int{0, 64})
		if err != nil {
			b.Fatal(err)
		}
	}
	if pts[1].TBTMax > 0 {
		b.ReportMetric(pts[0].TBTMax/pts[1].TBTMax, "mono/chunked-tbt-max")
	}
	b.ReportMetric(pts[1].TokensPerSec, "chunked-tokens/s")
}

// BenchmarkPrefixSharing (E22) reports capacity saved by prefix caching.
func BenchmarkPrefixSharing(b *testing.B) {
	var res PrefixSharingResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = RunPrefixSharing(llm.Llama2_70B, 5, 256, 40, 64, 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.CapacitySaved, "capacity-saved")
	b.ReportMetric(float64(res.ReadBytesPerStep)/1e9, "read-GB/step")
}

// BenchmarkMoE (E23) reports the small-batch weight-traffic saving.
func BenchmarkMoE(b *testing.B) {
	var pts []MoEPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, _, err = RunMoEComparison(llm.B200, 2048, []int{1, 64})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pts[0].DenseWeightRead)/float64(pts[0].MoEWeightRead), "dense/moe-batch1-read")
	b.ReportMetric(pts[0].MoETokensPerSec/pts[0].DenseTokensPerSec, "moe/dense-batch1-speed")
}

// BenchmarkServingTCO (E24) reports the tokens-per-dollar advantage.
func BenchmarkServingTCO(b *testing.B) {
	p := DefaultServingParams()
	p.NumReqs = 10
	var pts []TCOPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, _, err = RunServingTCO(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	var hbm, mrm TCOPoint
	for _, pt := range pts {
		switch pt.Config {
		case HBMOnly:
			hbm = pt
		case HBMPlusMRM:
			mrm = pt
		}
	}
	if hbm.TokensPerDollar > 0 {
		b.ReportMetric(mrm.TokensPerDollar/hbm.TokensPerDollar, "mrm/hbm-tokens/$")
	}
}

// BenchmarkControllerBandwidth (E25) reports achieved bandwidth and the
// refresh tax at the bank/channel level.
func BenchmarkControllerBandwidth(b *testing.B) {
	var pts []BandwidthPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, _, err = RunControllerBandwidth(2 << 30)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		switch p.Device {
		case "HBM3E":
			b.ReportMetric(p.RefreshShare, "hbm-refresh-tax")
		case "MRM-RRAM@1d":
			b.ReportMetric(float64(p.Achieved)/1e9, "mrm-achieved-GB/s")
		}
	}
}

// BenchmarkQuantization (E26) reports the int4:fp16 capacity and speed deltas.
func BenchmarkQuantization(b *testing.B) {
	var pts []QuantPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, _, err = RunQuantizationSweep(llm.Frontier500B, llm.B200, 4096, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	var fp16, int4 QuantPoint
	for _, p := range pts {
		switch p.Precision {
		case llm.FP16:
			fp16 = p
		case llm.INT4:
			int4 = p
		}
	}
	b.ReportMetric(float64(fp16.WeightBytes)/float64(int4.WeightBytes), "fp16/int4-capacity")
	b.ReportMetric(int4.TokensPerSec/fp16.TokensPerSec, "int4/fp16-speed")
}

// BenchmarkPhaseSplit (E27) reports the TBT-tail win of dedicated prefill
// nodes.
func BenchmarkPhaseSplit(b *testing.B) {
	p := DefaultServingParams()
	p.NumReqs = 12
	p.RatePerSec = 20
	var outs []SplitResult
	for i := 0; i < b.N; i++ {
		var err error
		outs, _, err = RunPhaseSplit(p, 1, 1, 200*1e9)
		if err != nil {
			b.Fatal(err)
		}
	}
	if outs[1].TBTMax > 0 {
		b.ReportMetric(outs[0].TBTMax/outs[1].TBTMax, "agg/split-tbt-max")
	}
	b.ReportMetric(float64(outs[1].TransferBytes)/1e9, "kv-transfer-GB")
}

// BenchmarkSpeculative (E28) reports the k=4, α=0.8 design point.
func BenchmarkSpeculative(b *testing.B) {
	var pts []SpecPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, _, err = RunSpeculative(llm.Llama2_70B, llm.Llama27B, llm.B200, 2048,
			[]int{4}, []float64{0.8})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].Speedup, "speedup")
	b.ReportMetric(float64(pts[0].WeightReadPerToken)/1e9, "weight-GB/token")
}

// BenchmarkAcceleratorCount (E29) reports the frontier-model density win.
func BenchmarkAcceleratorCount(b *testing.B) {
	var pts []PlacementPoint
	for i := 0; i < b.N; i++ {
		pts, _ = RunAcceleratorCount(8192, 8)
	}
	for _, p := range pts {
		if p.Model == "Frontier-500B" {
			b.ReportMetric(float64(p.HBMNodes), "frontier-hbm-nodes")
			b.ReportMetric(float64(p.MRMNodes), "frontier-mrm-nodes")
		}
	}
}

// BenchmarkFaultSweep (E30) reports what a 1e-3 per-read fault rate costs an
// HBM+MRM node relative to its unfaulted self.
func BenchmarkFaultSweep(b *testing.B) {
	p := DefaultServingParams()
	p.NumReqs = 12
	var pts []FaultSweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, _, err = RunFaultSweep(p, []float64{0, 1e-3}, 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	clean, faulty := pts[0].Result, pts[1].Result
	b.ReportMetric(faulty.TokensPerSec/clean.TokensPerSec, "goodput-ratio")
	b.ReportMetric(float64(faulty.Faults.KVTokensRecomputed), "recompute-tok")
}

// BenchmarkFleetFailover (E30) reports goodput retained when one of three
// nodes fail-stops mid-run and its work requeues onto the survivors.
func BenchmarkFleetFailover(b *testing.B) {
	p := DefaultServingParams()
	p.NumReqs = 12
	var res FleetFailoverResult
	for i := 0; i < b.N; i++ {
		var err error
		res, _, err = RunFleetFailover(p, 3, 1, 1e-3, 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Degraded.GoodTokensPerSec/res.Baseline.TokensPerSec, "goodput-retained")
	b.ReportMetric(float64(res.Degraded.Requeued), "requeued")
}
