package mrm

import (
	"fmt"
	"time"

	"mrm/internal/core"
	"mrm/internal/ecc"
	"mrm/internal/fault"
	"mrm/internal/memdev"
	"mrm/internal/tier"
	"mrm/internal/units"
)

// MemorySystem is a built tiered memory plus the metadata the serving
// simulator needs (which tier holds scratch/partial pages).
type MemorySystem struct {
	Manager     *tier.Manager
	ScratchTier int
	Description string
}

// ApplyFaults arms deterministic fault injection on every tier of the
// system, deriving an independent full-entropy seed per tier so fault
// streams do not correlate across tiers. Volatile device tiers (HBM, LPDDR
// — auto-refreshed) see only transient faults; managed tiers additionally
// see retention lapses, and their BER threshold comes from their own
// configured ECC plan. Rates of zero leave the simulator byte-identical to
// one that never called this.
func (ms *MemorySystem) ApplyFaults(seed uint64, transientRate, lapseRate float64) {
	for i, b := range ms.Manager.Backends() {
		cfg := memdev.FaultConfig{
			Seed:          fault.DeriveSeed(seed, i),
			TransientRate: transientRate,
		}
		switch t := b.(type) {
		case *tier.MRMTier:
			cfg.LapseRate = lapseRate
			t.SetFaults(cfg) // the MRM fills in its own ECC plan
		case tier.Faultable:
			cfg.Code = ecc.RSSpec(255, 223)
			cfg.UBERTarget = 1e-18
			t.SetFaults(cfg)
		}
	}
}

// buildMemory assembles the three E7 memory configurations. Capacities are
// sized for a single-accelerator simulation of a 7B–70B model:
//
//	hbm-only:   192 GiB HBM3E @ 8 TB/s aggregate (a B200 package)
//	hbm+lpddr:  96 GiB HBM + 384 GiB LPDDR5X (a GB200-style capacity tier)
//	hbm+mrm:    24 GiB HBM (activations/scratch) + 384 GiB MRM-RRAM
func buildMemory(cfg MemoryConfig) (*MemorySystem, error) {
	hbmSpec := func(capacity units.Bytes) memdev.Spec {
		s := memdev.HBM3E
		s.Capacity = capacity
		s.ReadBW = 8 * units.TBps
		s.WriteBW = 8 * units.TBps
		s.StaticPower = 16 // eight-stack package
		return s
	}
	lpddrSpec := func(capacity units.Bytes) memdev.Spec {
		s := memdev.LPDDR5X
		s.Capacity = capacity
		s.ReadBW = 500 * units.GBps // multi-package capacity tier
		s.WriteBW = 500 * units.GBps
		s.StaticPower = 4
		return s
	}
	switch cfg {
	case HBMOnly:
		hbm, err := tier.NewDeviceTier("hbm", hbmSpec(192*units.GiB))
		if err != nil {
			return nil, err
		}
		m, err := tier.NewManager(tier.StaticPolicy{}, hbm)
		if err != nil {
			return nil, err
		}
		return &MemorySystem{Manager: m, ScratchTier: 0, Description: "192 GiB HBM3E"}, nil
	case HBMPlusLPDDR:
		hbm, err := tier.NewDeviceTier("hbm", hbmSpec(96*units.GiB))
		if err != nil {
			return nil, err
		}
		lp, err := tier.NewDeviceTier("lpddr", lpddrSpec(384*units.GiB))
		if err != nil {
			return nil, err
		}
		m, err := tier.NewManager(tier.StaticPolicy{}, hbm, lp)
		if err != nil {
			return nil, err
		}
		return &MemorySystem{Manager: m, ScratchTier: 0, Description: "96 GiB HBM + 384 GiB LPDDR5X"}, nil
	case HBMPlusMRM:
		hbm, err := tier.NewDeviceTier("hbm", hbmSpec(24*units.GiB))
		if err != nil {
			return nil, err
		}
		mcfg := core.DefaultConfig()
		mcfg.Capacity = 384 * units.GiB
		mcfg.ZoneSize = 64 * units.MiB
		mcfg.Classes = []time.Duration{
			10 * time.Minute, time.Hour, 24 * time.Hour, 7 * 24 * time.Hour,
		}
		mr, err := core.New(mcfg)
		if err != nil {
			return nil, err
		}
		m, err := tier.NewManager(tier.RetentionAwarePolicy{}, hbm, tier.NewMRMTier("mrm", mr))
		if err != nil {
			return nil, err
		}
		return &MemorySystem{Manager: m, ScratchTier: 0, Description: "24 GiB HBM + 384 GiB MRM-RRAM"}, nil
	case HBMPlusHBF:
		// The Ma & Patterson rival substrate: a small HBM tier for
		// activations and partial pages, with two HBF stacks (480 GiB,
		// 2 TB/s aggregate read) carrying weights and cold KV. Writes and
		// endurance stay flash-grade — exactly the asymmetry the fleetday
		// mixes are meant to expose against MRM.
		hbm, err := tier.NewDeviceTier("hbm", hbmSpec(24*units.GiB))
		if err != nil {
			return nil, err
		}
		hbfSpec := memdev.HBFlash
		hbfSpec.Capacity = 480 * units.GiB
		hbfSpec.ReadBW = 2 * units.TBps
		hbfSpec.WriteBW = 16 * units.GBps
		hbfSpec.StaticPower = 0.8
		hbf, err := tier.NewDeviceTier("hbf", hbfSpec)
		if err != nil {
			return nil, err
		}
		m, err := tier.NewManager(tier.StaticPolicy{}, hbm, hbf)
		if err != nil {
			return nil, err
		}
		return &MemorySystem{Manager: m, ScratchTier: 0, Description: "24 GiB HBM + 480 GiB HBF"}, nil
	default:
		return nil, fmt.Errorf("mrm: unknown memory config %d", int(cfg))
	}
}
