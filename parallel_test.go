package mrm

// Determinism tests for the sweep-parallel drivers: every retrofitted runner
// must produce deep-equal points and byte-identical tables whether its cells
// run on one worker or eight. This is the contract behind cmd/mrmsim's
// -parallel flag.

import (
	"reflect"
	"testing"
	"time"

	"mrm/internal/cellphys"
	"mrm/internal/llm"
)

// driverResult captures everything a driver reports: its typed points and
// the rendered table.
type driverResult struct {
	pts any
	tab string
}

// atParallelism runs fn with the process-wide pool set to n, restoring the
// previous setting afterwards.
func atParallelism(t *testing.T, n int, fn func() driverResult) driverResult {
	t.Helper()
	old := SetParallelism(n)
	defer SetParallelism(old)
	return fn()
}

func TestDriversDeterministicAcrossWorkerCounts(t *testing.T) {
	servingParams := func() ServingParams {
		p := DefaultServingParams()
		p.NumReqs = 8
		return p
	}
	drivers := []struct {
		name string
		run  func(t *testing.T) driverResult
	}{
		{"ServingComparison", func(t *testing.T) driverResult {
			pts, tab, err := RunServingComparison(servingParams())
			if err != nil {
				t.Fatal(err)
			}
			return driverResult{pts, tab.String()}
		}},
		{"DCMSweep", func(t *testing.T) driverResult {
			classes := []time.Duration{10 * time.Minute, time.Hour, 24 * time.Hour, 7 * 24 * time.Hour}
			pts, tab, err := RunDCMSweep(cellphys.RRAM, 24*time.Hour, classes)
			if err != nil {
				t.Fatal(err)
			}
			return driverResult{pts, tab.String()}
		}},
		{"ECCBlockSweep", func(t *testing.T) driverResult {
			pts, tab, err := RunECCBlockSweep(cellphys.RRAM, 24*time.Hour, 1e-18)
			if err != nil {
				t.Fatal(err)
			}
			return driverResult{pts, tab.String()}
		}},
		{"ReadWriteRatio", func(t *testing.T) driverResult {
			pts, tab, err := RunReadWriteRatio(llm.Llama27B, llm.B200,
				[]int{1, 8}, []int{1024, 4096})
			if err != nil {
				t.Fatal(err)
			}
			return driverResult{pts, tab.String()}
		}},
		{"BatchingLimits", func(t *testing.T) driverResult {
			pts, tab, err := RunBatchingLimits(llm.Llama27B, llm.B200, 2048, []int{1, 4, 16})
			if err != nil {
				t.Fatal(err)
			}
			return driverResult{pts, tab.String()}
		}},
		{"ClassCountAblation", func(t *testing.T) driverResult {
			pts, tab, err := RunClassCountAblation(cellphys.RRAM, []int{1, 2, 4}, 500, 42)
			if err != nil {
				t.Fatal(err)
			}
			return driverResult{pts, tab.String()}
		}},
		{"PageSizeAblation", func(t *testing.T) driverResult {
			pts, tab, err := RunPageSizeAblation(llm.Llama27B, []int{4, 16, 64}, 16, 42)
			if err != nil {
				t.Fatal(err)
			}
			return driverResult{pts, tab.String()}
		}},
		{"FleetScaleOut", func(t *testing.T) driverResult {
			pts, tab, err := RunFleetScaleOut(servingParams(), []int{1, 2})
			if err != nil {
				t.Fatal(err)
			}
			return driverResult{pts, tab.String()}
		}},
		{"FaultSweep", func(t *testing.T) driverResult {
			pts, tab, err := RunFaultSweep(servingParams(), []float64{0, 1e-4, 1e-3}, 7)
			if err != nil {
				t.Fatal(err)
			}
			return driverResult{pts, tab.String()}
		}},
		{"FleetFailover", func(t *testing.T) driverResult {
			res, tab, err := RunFleetFailover(servingParams(), 3, 1, 1e-3, 7)
			if err != nil {
				t.Fatal(err)
			}
			return driverResult{res, tab.String()}
		}},
	}
	for _, d := range drivers {
		d := d
		// Subtests must not run concurrently: they flip the process-global
		// pool size, and a concurrent subtest would see the wrong setting.
		t.Run(d.name, func(t *testing.T) {
			serial := atParallelism(t, 1, func() driverResult { return d.run(t) })
			parallel := atParallelism(t, 8, func() driverResult { return d.run(t) })
			if !reflect.DeepEqual(parallel.pts, serial.pts) {
				t.Errorf("points diverged between workers=1 and workers=8:\n got %+v\nwant %+v",
					parallel.pts, serial.pts)
			}
			if parallel.tab != serial.tab {
				t.Errorf("table diverged between workers=1 and workers=8:\n got:\n%s\nwant:\n%s",
					parallel.tab, serial.tab)
			}
		})
	}
}
