package mrm

import (
	"testing"

	"mrm/internal/llm"
	"mrm/internal/units"
)

// E27: phase splitting bounds decode TBT relative to aggregated serving.
func TestPhaseSplit(t *testing.T) {
	p := DefaultServingParams()
	p.NumReqs = 12
	p.RatePerSec = 20 // pressure: prefills collide with decodes
	outs, tab, err := RunPhaseSplit(p, 1, 1, 200*units.GBps)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 || tab.NumRows() != 2 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	agg, split := outs[0], outs[1]
	if split.TBTMax >= agg.TBTMax {
		t.Errorf("phase-split TBT max %v should beat aggregated %v (no prefill stalls)",
			split.TBTMax, agg.TBTMax)
	}
	if split.TransferBytes == 0 {
		t.Error("phase split must ship KV over the interconnect")
	}
	if agg.TransferBytes != 0 {
		t.Error("aggregated serving ships nothing")
	}
	if split.TTFTP99 <= 0 {
		t.Error("end-to-end TTFT missing")
	}
}

func TestPhaseSplitValidation(t *testing.T) {
	p := DefaultServingParams()
	if _, _, err := RunPhaseSplit(p, 0, 1, units.GBps); err == nil {
		t.Error("zero prefill nodes should error")
	}
	if _, _, err := RunPhaseSplit(p, 1, 1, 0); err == nil {
		t.Error("zero interconnect should error")
	}
}

// E28: speculative decoding speeds up memory-bound decode and cuts weight
// traffic per emitted token, improving with acceptance rate.
func TestSpeculative(t *testing.T) {
	pts, tab, err := RunSpeculative(llm.Llama2_70B, llm.Llama27B, llm.B200, 2048,
		[]int{2, 4, 8}, []float64{0.5, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 6 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	byKA := map[[2]float64]SpecPoint{}
	for _, p := range pts {
		byKA[[2]float64{float64(p.K), p.Alpha}] = p
	}
	// Good acceptance at k=4 should beat plain decode.
	if p := byKA[[2]float64{4, 0.8}]; p.Speedup <= 1 {
		t.Errorf("k=4 α=0.8 speedup = %v, want > 1", p.Speedup)
	}
	// Higher acceptance → more tokens per round and less weight traffic.
	lo, hi := byKA[[2]float64{4, 0.5}], byKA[[2]float64{4, 0.8}]
	if hi.TokensPerRound <= lo.TokensPerRound {
		t.Error("tokens/round should grow with acceptance")
	}
	if hi.WeightReadPerToken >= lo.WeightReadPerToken {
		t.Error("weight traffic per token should fall with acceptance")
	}
	// Per-token weight traffic must be below plain decode's full read.
	if hi.WeightReadPerToken >= llm.Llama2_70B.WeightBytes() {
		t.Error("verification should amortize weight reads")
	}
	if _, _, err := RunSpeculative(llm.Llama2_70B, llm.Llama27B, llm.B200, 128,
		[]int{0}, []float64{0.5}); err == nil {
		t.Error("k=0 should error")
	}
	if _, _, err := RunSpeculative(llm.Llama2_70B, llm.Llama27B, llm.B200, 128,
		[]int{2}, []float64{1.5}); err == nil {
		t.Error("alpha out of range should error")
	}
}

// E29: MRM nodes hold big models in fewer packages.
func TestAcceleratorCount(t *testing.T) {
	pts, tab := RunAcceleratorCount(8192, 8)
	if tab.NumRows() != len(llm.Models()) {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	for _, p := range pts {
		if p.MRMNodes > p.HBMNodes {
			t.Errorf("%s: MRM nodes %d should never exceed HBM nodes %d", p.Model, p.MRMNodes, p.HBMNodes)
		}
	}
	// The frontier model must need several HBM packages but few MRM ones.
	for _, p := range pts {
		if p.Model == "Frontier-500B" {
			if p.HBMNodes < 5 {
				t.Errorf("frontier on HBM = %d nodes, want >= 5", p.HBMNodes)
			}
			if p.MRMNodes > p.HBMNodes/2 {
				t.Errorf("frontier on MRM = %d nodes vs %d HBM; want at least 2x density win",
					p.MRMNodes, p.HBMNodes)
			}
		}
	}
}
