package mrm

import (
	"strings"
	"testing"
	"time"

	"mrm/internal/llm"
	"mrm/internal/units"
)

// E19: throughput scales with nodes; balance stays near 1.
func TestFleetScaleOut(t *testing.T) {
	p := DefaultServingParams()
	p.NumReqs = 12
	counts := []int{1, 2, 4}
	pts, tab, err := RunFleetScaleOut(p, counts)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != len(counts) {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	if pts[2].TokensPerSec < 2*pts[0].TokensPerSec {
		t.Errorf("4 nodes (%v tok/s) should at least double 1 node (%v tok/s)",
			pts[2].TokensPerSec, pts[0].TokensPerSec)
	}
	for _, pt := range pts {
		if pt.Balance < 0.5 {
			t.Errorf("%d nodes: balance %v too skewed", pt.Nodes, pt.Balance)
		}
		if pt.TokensPerJoule <= 0 {
			t.Errorf("%d nodes: no efficiency", pt.Nodes)
		}
	}
	// Tail TTFT should improve with more capacity.
	if pts[2].TTFTP99 > pts[0].TTFTP99 {
		t.Errorf("4-node TTFT p99 %v should not exceed 1-node %v", pts[2].TTFTP99, pts[0].TTFTP99)
	}
}

// E20: the MRM thesis in lifetime form — relaxed retention survives the
// 5-year service life where 10-year (SCM) operation does not.
func TestWearoutLifetime(t *testing.T) {
	retentions := []time.Duration{24 * time.Hour, 10 * units.Year}
	pts, tab, err := RunWearoutLifetime(llm.SplitwiseConv, llm.Llama2_70B, 48*units.GiB, retentions)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() == 0 {
		t.Fatal("empty table")
	}
	by := map[string]WearoutPoint{}
	for _, p := range pts {
		by[p.Device] = p
	}
	if !by["RRAM@1d"].MeetsLife {
		t.Errorf("RRAM@1d should survive 5y: %.2f years", by["RRAM@1d"].Years)
	}
	if by["RRAM@10y"].MeetsLife {
		t.Errorf("RRAM at non-volatile retention should NOT survive 5y of KV churn: %.2f years",
			by["RRAM@10y"].Years)
	}
	if by["PCM@10y"].MeetsLife {
		t.Errorf("PCM (Optane-style) should wear out: %.2f years", by["PCM@10y"].Years)
	}
	// Flash gains almost nothing from relaxed retention.
	if by["NAND-Flash@1d"].MeetsLife {
		t.Errorf("flash must fail even at relaxed retention: %.2f years", by["NAND-Flash@1d"].Years)
	}
	if _, _, err := RunWearoutLifetime(llm.SplitwiseConv, llm.Llama2_70B, 0, retentions); err == nil {
		t.Error("zero capacity should error")
	}
	if _, _, err := RunWearoutLifetime(llm.SplitwiseConv, llm.Llama2_70B, units.GiB,
		[]time.Duration{time.Nanosecond}); err == nil {
		t.Error("no valid points should error")
	}
	out := tab.String()
	if !strings.Contains(out, "RRAM@1d") {
		t.Error("table missing rows")
	}
}

// E21: chunking bounds the TBT tail that monolithic prefill inflates.
func TestChunkedPrefillSweep(t *testing.T) {
	p := DefaultServingParams()
	p.NumReqs = 4
	chunks := []int{0, 64, 256}
	pts, tab, err := RunChunkedPrefill(p, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != len(chunks) {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	mono, chunked := pts[0], pts[1]
	if chunked.TBTMax >= mono.TBTMax {
		t.Errorf("chunk=64 TBT max %v should beat monolithic %v", chunked.TBTMax, mono.TBTMax)
	}
	for _, pt := range pts {
		if pt.TokensPerSec <= 0 {
			t.Errorf("chunk %d: no throughput", pt.Chunk)
		}
	}
}

// E22: prefix sharing saves capacity but not read traffic.
func TestPrefixSharing(t *testing.T) {
	res, err := RunPrefixSharing(llm.Llama2_70B, 5, 256, 40, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.CapacitySaved < 0.5 {
		t.Errorf("capacity saved = %v, want > 0.5 with 5 popular prefixes over 40 requests",
			res.CapacitySaved)
	}
	if res.PagesShared >= res.PagesUnshared {
		t.Error("sharing should reduce pages")
	}
	// Reads stay per-request: every request reads its full context, so read
	// bytes must be at least nReqs * prefix KV size.
	minRead := units.Bytes(40*256) * llm.Llama2_70B.KVBytesPerToken()
	if res.ReadBytesPerStep < minRead {
		t.Errorf("read bytes %v below per-request floor %v: sharing must not dedup reads",
			res.ReadBytesPerStep, minRead)
	}
	if res.Table.NumRows() != 4 {
		t.Error("table incomplete")
	}
}

// E23: MoE reads fewer weight bytes at small batch, converging to dense at
// large batch, while capacity demand stays dense-sized.
func TestMoEComparison(t *testing.T) {
	batches := []int{1, 4, 64}
	pts, tab, err := RunMoEComparison(llm.B200, 2048, batches)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != len(batches) {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	if pts[0].MoEWeightRead >= pts[0].DenseWeightRead {
		t.Error("batch-1 MoE should read fewer weight bytes")
	}
	// Convergence at large batch.
	ratio := float64(pts[2].MoEWeightRead) / float64(pts[2].DenseWeightRead)
	if ratio < 0.95 {
		t.Errorf("batch-64 MoE weight read should approach dense: ratio %v", ratio)
	}
	if pts[0].MoETokensPerSec <= pts[0].DenseTokensPerSec {
		t.Error("batch-1 MoE decode should be faster")
	}
	// Capacity is identical regardless of routing.
	if llm.Mixtral8x7B.WeightBytes() == 0 {
		t.Fatal("sanity")
	}
}

// E24: the MRM configuration must win tokens per dollar as well as per joule.
func TestServingTCO(t *testing.T) {
	p := DefaultServingParams()
	p.NumReqs = 10
	pts, tab, err := RunServingTCO(p)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 3 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	by := map[MemoryConfig]TCOPoint{}
	for _, pt := range pts {
		by[pt.Config] = pt
	}
	if by[HBMPlusMRM].MemoryCapex >= by[HBMOnly].MemoryCapex*2 {
		t.Errorf("MRM config capex %v should be in the same ballpark as HBM-only %v",
			by[HBMPlusMRM].MemoryCapex, by[HBMOnly].MemoryCapex)
	}
	if by[HBMPlusMRM].TokensPerDollar <= by[HBMOnly].TokensPerDollar {
		t.Errorf("tokens/$: hbm+mrm %v should beat hbm-only %v",
			by[HBMPlusMRM].TokensPerDollar, by[HBMOnly].TokensPerDollar)
	}
}

// E25: both controllers achieve high utilization on sequential streams; the
// HBM controller loses a slice to refresh, the MRM controller loses none.
func TestControllerBandwidth(t *testing.T) {
	pts, tab, err := RunControllerBandwidth(8 * units.GiB)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 2 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	by := map[string]BandwidthPoint{}
	for _, p := range pts {
		by[p.Device] = p
	}
	hbm := by["HBM3E"]
	mrm := by["MRM-RRAM@1d"]
	if hbm.Utilization < 0.6 || hbm.Utilization > 1.01 {
		t.Errorf("HBM utilization = %v", hbm.Utilization)
	}
	if hbm.RefreshShare <= 0 {
		t.Error("HBM must lose bank time to refresh")
	}
	if mrm.RefreshShare != 0 {
		t.Error("MRM controller must not refresh")
	}
	if mrm.Achieved <= hbm.Achieved {
		t.Errorf("MRM achieved bandwidth %v should exceed HBM %v (higher peak, no refresh)",
			mrm.Achieved, hbm.Achieved)
	}
	if hbm.RefreshShare < 0.02 || hbm.RefreshShare > 0.2 {
		t.Errorf("HBM refresh tax = %v, want a high-single-digit percentage", hbm.RefreshShare)
	}
}

// E26: quantization shrinks capacity and raises bandwidth-bound throughput.
func TestQuantizationSweep(t *testing.T) {
	pts, tab, err := RunQuantizationSweep(llm.Frontier500B, llm.B200, 4096, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 4 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	// The paper's range: ~250 GB at int4 up to ~1 TB at fp16 for >500B.
	var fp16, int4 QuantPoint
	for _, p := range pts {
		switch p.Precision {
		case llm.FP16:
			fp16 = p
		case llm.INT4:
			int4 = p
		}
	}
	if int4.WeightBytes < 230*units.GiB || int4.WeightBytes > 260*units.GiB {
		t.Errorf("int4 weights = %v, want ~250 GB", int4.WeightBytes)
	}
	if fp16.WeightBytes < 900*units.GiB {
		t.Errorf("fp16 weights = %v, want ~1 TB", fp16.WeightBytes)
	}
	// Monotone: lower precision → higher decode throughput.
	for i := 1; i < len(pts); i++ {
		if pts[i].TokensPerSec <= pts[i-1].TokensPerSec {
			t.Errorf("throughput should rise from %v to %v", pts[i-1].Precision, pts[i].Precision)
		}
	}
}

// The E5 table now includes hot-HBM rows with worse idle economics.
func TestRefreshOverheadThermalRows(t *testing.T) {
	res := RunRefreshOverhead()
	byName := map[string]RefreshRow{}
	for _, r := range res.Rows {
		byName[r.Name] = r
	}
	base, hot := byName["HBM3E"], byName["HBM3E@105C"]
	if hot.Name == "" {
		t.Fatal("no 105C row")
	}
	if hot.RefreshPower <= base.RefreshPower {
		t.Error("105C refresh power should exceed 85C rating point")
	}
	if hot.RefreshShare <= base.RefreshShare {
		t.Error("refresh share should grow with temperature")
	}
}
