// Command mrmlint runs the repo's determinism and concurrency analyzers
// (internal/analysis/...) over the given packages and exits non-zero on any
// finding. It is the mechanical safety net behind the simulator's
// reproducibility contract: `make lint` (wired into `make test` and CI) runs
// it over ./... so a stray time.Now, an unsorted map-range feeding output, an
// unguarded shared field, or an impure fault decision fails the build
// instead of corrupting a golden file three PRs later.
//
// Usage:
//
//	mrmlint [-only nondet,maporder] [-list] [packages]
//
// Packages default to ./... . Findings are waived per site with
// //mrm:allow-<analyzer> <reason>; the reason is mandatory and audited.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mrm/internal/analysis"
	"mrm/internal/analysis/maporder"
	"mrm/internal/analysis/mutexguard"
	"mrm/internal/analysis/nondet"
	"mrm/internal/analysis/seedpurity"
)

// analyzers is the suite, in reporting-name order.
var analyzers = []*analysis.Analyzer{
	maporder.Analyzer,
	mutexguard.Analyzer,
	nondet.Analyzer,
	seedpurity.Analyzer,
}

func main() {
	os.Exit(run())
}

func run() int {
	only := flag.String("only", "", "comma-separated subset of analyzers to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	enabled, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrmlint:", err)
		return 2
	}
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := analysis.NewLoader()
	pkgs, err := loader.LoadPatterns(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrmlint:", err)
		return 2
	}

	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, analysis.DirectiveDiagnostics(pkg, known)...)
		for _, a := range enabled {
			ds, err := analysis.RunAnalyzer(a, pkg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mrmlint:", err)
				return 2
			}
			diags = append(diags, ds...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	cwd, _ := os.Getwd()
	for _, d := range diags {
		name := d.Position.Filename
		if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Printf("%s:%d:%d: %s (%s)\n", name, d.Position.Line, d.Position.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mrmlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return analyzers, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (use -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
