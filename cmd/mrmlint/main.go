// Command mrmlint runs the repo's determinism, concurrency, and hygiene
// analyzers (internal/analysis/...) over the given packages and exits
// non-zero on any finding. It is the mechanical safety net behind the
// simulator's reproducibility contract: `make lint` (wired into `make test`
// and CI) runs it over ./... so a stray time.Now — even one laundered through
// two helper packages — an unsorted map-range feeding output, an unguarded
// shared field, an impure fault decision, a sentinel == comparison, a dropped
// context, or a waiver that outlived its code fails the build instead of
// corrupting a golden file three PRs later.
//
// Usage:
//
//	mrmlint [-only nondet,maporder] [-json] [-list] [packages]
//
// Packages default to ./... . All loaded packages are analyzed through one
// Program, so interprocedural analyzers (nondet, seedpurity) see facts flow
// across package boundaries. Findings are waived per site with
// //mrm:allow-<analyzer> <reason>; the reason is mandatory, audited, and —
// via the staleallow post-pass — expired the moment it stops suppressing
// anything. Output is sorted by (file, line, column, analyzer) and is
// byte-identical across runs; -json emits the same findings as a
// schema-stable JSON document for tooling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mrm/internal/analysis"
	"mrm/internal/analysis/ctxflow"
	"mrm/internal/analysis/errcmp"
	"mrm/internal/analysis/maporder"
	"mrm/internal/analysis/mutexguard"
	"mrm/internal/analysis/nondet"
	"mrm/internal/analysis/seedpurity"
)

// analyzers is the suite, in reporting-name order. StaleAllow is last: it is
// the post-pass over every other analyzer's suppression tallies.
var analyzers = []*analysis.Analyzer{
	ctxflow.Analyzer,
	errcmp.Analyzer,
	maporder.Analyzer,
	mutexguard.Analyzer,
	nondet.Analyzer,
	seedpurity.Analyzer,
	analysis.StaleAllow,
}

func main() {
	os.Exit(run(".", os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is one finding in -json output. The schema is stable: tools
// (and the CI problem matcher) key on these exact field names.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the -json document.
type jsonReport struct {
	Version  int           `json:"version"`
	Findings []jsonFinding `json:"findings"`
}

// run is main minus the process boundary: dir anchors package loading and
// path relativization, so tests can drive the whole binary against fixture
// modules and assert on bytes and exit codes.
func run(dir string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mrmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated subset of analyzers to run (default: all)")
	asJSON := fs.Bool("json", false, "emit findings as JSON on stdout")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	enabled, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(stderr, "mrmlint:", err)
		return 2
	}
	known := make(map[string]bool, len(analyzers))
	ran := make(map[string]bool, len(enabled))
	runStale := false
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, a := range enabled {
		if a == analysis.StaleAllow {
			runStale = true
			continue
		}
		ran[a.Name] = true
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := analysis.NewLoader()
	pkgs, err := loader.LoadPatterns(dir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "mrmlint:", err)
		return 2
	}

	// One Program over everything the loader saw: facts flow across package
	// boundaries exactly once, shared by every analyzer and the stale pass.
	prog := analysis.NewProgram(loader.Loaded())
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, analysis.DirectiveDiagnostics(pkg, known)...)
		for _, a := range enabled {
			if a.Run == nil {
				continue
			}
			ds, err := prog.Run(a, pkg)
			if err != nil {
				fmt.Fprintln(stderr, "mrmlint:", err)
				return 2
			}
			diags = append(diags, ds...)
		}
	}
	// The stale-waiver pass runs after every analyzer has tallied its
	// suppressions over every package.
	if runStale {
		for _, pkg := range pkgs {
			diags = append(diags, prog.StaleDirectives(pkg, ran)...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})

	absDir, _ := filepath.Abs(dir)
	relName := func(name string) string {
		if rel, err := filepath.Rel(absDir, name); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
		return name
	}
	if *asJSON {
		report := jsonReport{Version: 1, Findings: []jsonFinding{}}
		for _, d := range diags {
			report.Findings = append(report.Findings, jsonFinding{
				File:     relName(d.Position.Filename),
				Line:     d.Position.Line,
				Col:      d.Position.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, "mrmlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s:%d:%d: %s (%s)\n",
				relName(d.Position.Filename), d.Position.Line, d.Position.Column, d.Message, d.Analyzer)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "mrmlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return analyzers, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (use -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
