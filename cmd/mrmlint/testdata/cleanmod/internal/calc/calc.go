// Package calc is scoped, pure, and waiver-free: mrmlint must exit 0 over
// this module.
package calc

// Sum adds deterministically.
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
