// Package lib is outside mrmlint's reporting scopes: its wall-clock read is
// never flagged here, only at call sites in scoped packages.
package lib

import "time"

// Stamp reads the wall clock; the fact propagates to scoped callers.
func Stamp() time.Time {
	return time.Now()
}
