// Package fault is in seedpurity's scope: the trial counter below violates
// the purity contract.
package fault

var trials int

// Decide is impure: it reads and writes a package-level counter.
func Decide(seed uint64) bool {
	trials++
	return (seed+uint64(trials))&1 == 0
}
