// Package core seeds the mrmlint integration tests with one finding per
// analyzer family: direct nondeterminism, a laundered wall-clock read, a
// sentinel identity comparison, and a waiver that outlived its code.
package core

import (
	"errors"
	"time"

	"brokenmod/lib"
)

// ErrGone is a sentinel for the errcmp finding below.
var ErrGone = errors.New("gone")

func stamp() time.Time {
	return time.Now() // nondet: direct wall-clock read
}

func laundered() time.Time {
	return lib.Stamp() // nondet: reached through the helper package
}

func isGone(err error) bool {
	return err == ErrGone // errcmp: identity comparison
}

func pure(x int) int {
	return x + 1 //mrm:allow-maporder stale: the loop this excused was rewritten
}
