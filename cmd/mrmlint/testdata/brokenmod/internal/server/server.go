// Package server matches the shell scope, so ctxflow applies here — and
// nondet does not, despite the wall-clock read.
package server

import (
	"context"
	"time"
)

// Uptime may read the wall clock: the shell is nondet's boundary.
func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}

func wait(d time.Duration, ctx context.Context) { // ctxflow: ctx must come first
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
