package main

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"
)

// lint drives the full binary against a fixture module and returns
// (exit code, stdout, stderr).
func lint(t *testing.T, dir string, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(dir, args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestExitCodes pins the contract CI depends on: 0 clean, 1 findings,
// 2 usage or load errors.
func TestExitCodes(t *testing.T) {
	if code, out, _ := lint(t, "testdata/cleanmod", "./..."); code != 0 || out != "" {
		t.Errorf("clean module: code=%d out=%q, want 0 and no output", code, out)
	}
	if code, _, errOut := lint(t, "testdata/brokenmod", "./..."); code != 1 || !strings.Contains(errOut, "finding(s)") {
		t.Errorf("broken module: code=%d stderr=%q, want 1 with a findings tally", code, errOut)
	}
	if code, _, errOut := lint(t, "testdata/cleanmod", "-only", "nosuch", "./..."); code != 2 || !strings.Contains(errOut, "unknown analyzer") {
		t.Errorf("unknown analyzer: code=%d stderr=%q, want 2", code, errOut)
	}
	if code, _, _ := lint(t, "testdata/cleanmod", "./nosuchdir/..."); code != 2 {
		t.Errorf("bad pattern: code=%d, want 2", code)
	}
}

// TestFindings checks each analyzer family surfaces in the broken module:
// direct and laundered nondet, errcmp, ctxflow, seedpurity, staleallow —
// and that the shell package's wall-clock read is NOT flagged.
func TestFindings(t *testing.T) {
	_, out, _ := lint(t, "testdata/brokenmod", "./...")
	for _, want := range []string{
		"wall-clock call time.Now in simulation code",
		"call to lib.Stamp reaches wall-clock time.Now (lib.Stamp)",
		"compares error identity against sentinel ErrGone",
		"context.Context is parameter 2 of wait",
		"decision path touches package-level var trials",
		"//mrm:allow-maporder suppressed no findings in this run",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "server.go:12") || strings.Contains(out, "time.Since") {
		t.Errorf("shell package wall-clock read was flagged:\n%s", out)
	}
}

// TestDeterministicOutput: two independent runs over the same tree produce
// byte-identical bytes, in both text and JSON modes.
func TestDeterministicOutput(t *testing.T) {
	for _, args := range [][]string{{"./..."}, {"-json", "./..."}} {
		code1, out1, _ := lint(t, "testdata/brokenmod", args...)
		code2, out2, _ := lint(t, "testdata/brokenmod", args...)
		if code1 != code2 || out1 != out2 {
			t.Errorf("args %v: runs disagree (codes %d/%d):\n%s---\n%s", args, code1, code2, out1, out2)
		}
	}
}

// TestJSONSchema: -json emits the stable document shape, sorted by
// (file, line, col, analyzer), with an empty (not null) findings array on a
// clean run.
func TestJSONSchema(t *testing.T) {
	type finding struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	var report struct {
		Version  int       `json:"version"`
		Findings []finding `json:"findings"`
	}

	code, out, _ := lint(t, "testdata/brokenmod", "-json", "./...")
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if report.Version != 1 || len(report.Findings) == 0 {
		t.Fatalf("unexpected report: version=%d findings=%d", report.Version, len(report.Findings))
	}
	for _, f := range report.Findings {
		if f.File == "" || f.Line == 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
		if strings.HasPrefix(f.File, "/") {
			t.Errorf("finding path %q is absolute, want module-relative", f.File)
		}
	}
	if !sort.SliceIsSorted(report.Findings, func(i, j int) bool {
		a, b := report.Findings[i], report.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	}) {
		t.Errorf("findings not sorted: %+v", report.Findings)
	}

	out = ""
	code, out, _ = lint(t, "testdata/cleanmod", "-json", "./...")
	if code != 0 {
		t.Fatalf("clean module JSON run: exit %d", code)
	}
	if !strings.Contains(out, `"findings": []`) {
		t.Errorf("clean run should emit an empty findings array, got:\n%s", out)
	}
}

// TestOnlySubset: -only restricts the run, and a subset run must not condemn
// waivers belonging to analyzers that sat it out (staleallow gating).
func TestOnlySubset(t *testing.T) {
	_, out, _ := lint(t, "testdata/brokenmod", "-only", "errcmp,staleallow", "./...")
	if !strings.Contains(out, "ErrGone") {
		t.Errorf("-only errcmp should still flag the sentinel comparison:\n%s", out)
	}
	if strings.Contains(out, "wall-clock") {
		t.Errorf("-only errcmp ran nondet anyway:\n%s", out)
	}
	if strings.Contains(out, "suppressed no findings") {
		t.Errorf("staleallow condemned a maporder waiver in a run where maporder did not execute:\n%s", out)
	}
}
