// Command mrmd is the long-running serving daemon: it hosts MRM-backed
// serving-node simulators as a persistent HTTP/JSON service with per-request
// deadlines, bounded-queue backpressure, transient-fault retry, live chaos
// injection, and graceful SIGTERM drain.
//
// Usage:
//
//	mrmd -addr 127.0.0.1:8080 -nodes 2 -memory hbm+mrm
//
// Then:
//
//	curl localhost:8080/healthz
//	curl -XPOST localhost:8080/v1/submit -d '{"prompt_tokens":128,"output_tokens":32}'
//	curl -XPOST localhost:8080/v1/chaos -d '{"seed":7,"transient_rate":1e-4}'
//	kill -TERM <pid>   # graceful drain, exit 0
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mrm"
	"mrm/internal/cluster"
	"mrm/internal/llm"
	"mrm/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		addrFile = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using -addr :0)")
		nodes    = flag.Int("nodes", 1, "number of serving nodes")
		memory   = flag.String("memory", "hbm+mrm", "memory system per node: hbm-only, hbm+lpddr, or hbm+mrm")
		model    = flag.String("model", "Llama2-7B", "model preset served by each node")
		queue    = flag.Int("queue-depth", 64, "bounded admission queue depth (full queue = 429)")
		maxBatch = flag.Int("max-batch", 8, "max requests per node sim batch")
		reqTO    = flag.Duration("request-timeout", 30*time.Second, "default per-request deadline")
		drainTO  = flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown drain deadline")
		seed     = flag.Uint64("seed", 1, "daemon seed (retry jitter, default chaos derivation)")
		attempts = flag.Int("retries", 4, "total attempts per batch on transient faults (1 disables)")
		pageToks = flag.Int("page-tokens", 16, "KV page size in token vectors")
		kvLife   = flag.Duration("kv-lifetime", 30*time.Minute, "KV page lifetime hint")
	)
	flag.Parse()

	var memCfg mrm.MemoryConfig
	switch *memory {
	case "hbm-only":
		memCfg = mrm.HBMOnly
	case "hbm+lpddr":
		memCfg = mrm.HBMPlusLPDDR
	case "hbm+mrm":
		memCfg = mrm.HBMPlusMRM
	default:
		fmt.Fprintf(os.Stderr, "mrmd: unknown -memory %q (want hbm-only, hbm+lpddr, or hbm+mrm)\n", *memory)
		return 2
	}
	mc, err := llm.ModelByName(*model)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrmd: %v\n", err)
		return 2
	}

	build := func(node int) (server.Node, error) {
		ms, err := mrm.BuildMemory(memCfg)
		if err != nil {
			return server.Node{}, err
		}
		sim, err := cluster.NewSim(cluster.Config{
			Model: mc, Acc: llm.B200, Memory: ms.Manager,
			PageTokens: *pageToks, MaxBatch: *maxBatch,
			KVLifetime: *kvLife, ScratchTier: ms.ScratchTier,
		})
		if err != nil {
			return server.Node{}, err
		}
		return server.Node{Sim: sim, Mem: ms.Manager, Arm: ms.ApplyFaults}, nil
	}

	srv, err := server.New(server.Config{
		Build:          build,
		Nodes:          *nodes,
		QueueDepth:     *queue,
		MaxBatch:       *maxBatch,
		RequestTimeout: *reqTO,
		DrainTimeout:   *drainTO,
		Retry:          server.RetryPolicy{MaxAttempts: *attempts},
		Seed:           *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrmd: %v\n", err)
		return 1
	}
	if err := srv.Listen(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "mrmd: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "mrmd: serving %d node(s) of %s on %s (listening on %s)\n",
		*nodes, mc.Name, memCfg, srv.Addr())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(srv.Addr()+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mrmd: writing -addr-file: %v\n", err)
			return 1
		}
	}

	// Graceful drain on SIGTERM/SIGINT: stop admitting (429), finish every
	// admitted request within the drain deadline, flush final metrics, exit
	// 0. A second signal force-exits.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	drained := make(chan error, 1)
	go func() {
		sig := <-sigc
		fmt.Fprintf(os.Stderr, "mrmd: %v: draining (deadline %v)\n", sig, *drainTO)
		go func() {
			<-sigc
			fmt.Fprintln(os.Stderr, "mrmd: second signal, aborting")
			os.Exit(130)
		}()
		drained <- srv.Shutdown(os.Stderr)
	}()

	if err := srv.Serve(); err != nil {
		fmt.Fprintf(os.Stderr, "mrmd: %v\n", err)
		return 1
	}
	if err := <-drained; err != nil {
		fmt.Fprintf(os.Stderr, "mrmd: %v\n", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "mrmd: drained cleanly")
	return 0
}
