// Command tco prints the device-comparison and total-cost-of-ownership
// tables: read bandwidth, energy per bit, density, endurance, $/GB, and
// $/TB/month across the memory technologies the paper discusses.
//
// Usage:
//
//	tco [-csv]
package main

import (
	"flag"
	"fmt"

	"mrm"
)

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of a table")
	flag.Parse()

	tab := mrm.RunDeviceComparison()
	if *csv {
		fmt.Print(tab.CSV())
	} else {
		fmt.Println(tab)
	}
	fmt.Println(mrm.RunRefreshOverhead().Table)
}
