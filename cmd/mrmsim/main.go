// Command mrmsim runs the MRM reproduction experiments and prints their
// tables. With no flags it runs every experiment.
//
// Usage:
//
//	mrmsim [-exp e1,e7] [-kv-gib 48] [-reqs 24] [-seed 42] [-parallel N]
//
// -parallel bounds the worker pool the sweep-style experiments fan out on
// (default: number of CPUs; 1 = serial). Output is bit-identical at any
// setting — parallelism only changes wall-clock time. -timing prints each
// experiment's wall-clock time to stderr without touching stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"mrm"
	"mrm/internal/cellphys"
	"mrm/internal/llm"
	"mrm/internal/units"
)

func main() {
	os.Exit(run())
}

// run holds main's body so deferred profile writers execute before exit.
func run() int {
	exp := flag.String("exp", "all", "comma-separated experiments to run (e1..e30, or all)")
	kvGiB := flag.Uint64("kv-gib", 48, "KV region capacity in GiB for Figure 1")
	reqs := flag.Int("reqs", 24, "requests for the serving comparison (e7)")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	parallel := flag.Int("parallel", runtime.NumCPU(),
		"sweep worker-pool size (1 = serial; results are identical at any setting)")
	faultRate := flag.Float64("fault-rate", 1e-3,
		"peak per-read fault rate for the e30 degradation sweep (transient + retention-lapse)")
	faultSeed := flag.Uint64("fault-seed", 7,
		"seed for the deterministic fault streams (e30); results are identical across runs and -parallel settings")
	fleetNodes := flag.Int("fleet-nodes", 1000, "fleetday: node count")
	fleetRate := flag.Float64("fleet-rate", 25, "fleetday: fleet-wide request rate (req/s)")
	fleetHours := flag.Float64("fleet-hours", 24, "fleetday: simulated day length in hours")
	fleetMix := flag.String("fleet-mix", "0.5,0.3,0.2",
		"fleetday: SLA class mix (interactive,throughput,best-effort)")
	fleetWindow := flag.Int("fleet-window", 0,
		"fleetday: streamed execution window in requests (0 = default); peak memory is O(nodes x window)")
	fleetMem := flag.String("fleet-mem", "hbm",
		"fleetday: node memory system (hbm, lpddr, mrm, hbf)")
	progress := flag.Bool("progress", false,
		"fleetday: periodic requests/sec + ETA lines on stderr (stdout tables are unaffected)")
	timing := flag.Bool("timing", false,
		"report per-experiment wall-clock time on stderr (stdout tables are unaffected)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	mrm.SetParallelism(*parallel)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]
	// Per-experiment timing is reporting-only: it reads the wall clock but
	// writes to stderr, so the experiment tables on stdout (and the golden
	// files diffed against them) are byte-identical with or without -timing.
	var (
		timingName  string
		timingStart time.Time
	)
	finishTiming := func() {
		if timingName == "" {
			return
		}
		elapsed := time.Since(timingStart) //mrm:allow-nondet -timing reports wall-clock to stderr only; stdout is unaffected
		fmt.Fprintf(os.Stderr, "timing: %-4s %v\n", timingName, elapsed)
		timingName = ""
	}
	run := func(name string) bool {
		if !all && !want[name] {
			return false
		}
		if *timing {
			finishTiming()
			timingName = name
			timingStart = time.Now() //mrm:allow-nondet -timing reports wall-clock to stderr only; stdout is unaffected
		}
		return true
	}
	var failed bool
	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		failed = true
	}

	if run("e1") {
		res := mrm.RunFigure1(units.Bytes(*kvGiB) * units.GiB)
		fmt.Println(res.Chart)
		fmt.Println(res.Table)
	}
	if run("e2") {
		_, tab, err := mrm.RunReadWriteRatio(llm.Llama2_70B, llm.B200,
			[]int{1, 8, 32}, []int{1024, 4096, 16384})
		if err != nil {
			fail("e2", err)
		} else {
			fmt.Println(tab)
		}
	}
	if run("e3") {
		fmt.Println(mrm.RunCapacityBreakdown(8192, 16))
	}
	if run("e4") {
		res, err := mrm.RunSequentiality(llm.Llama2_70B, 16, 8, 512, 32, *seed)
		if err != nil {
			fail("e4", err)
		} else {
			fmt.Println(res.Table)
		}
	}
	if run("e5") {
		fmt.Println(mrm.RunRefreshOverhead().Table)
	}
	if run("e6") {
		fmt.Println(mrm.RunDeviceComparison())
	}
	if run("e7") {
		p := mrm.DefaultServingParams()
		p.NumReqs = *reqs
		p.Seed = *seed
		_, tab, err := mrm.RunServingComparison(p)
		if err != nil {
			fail("e7", err)
		} else {
			fmt.Println(tab)
		}
	}
	if run("e8") {
		classes := []time.Duration{
			10 * time.Minute, time.Hour, 24 * time.Hour, 7 * 24 * time.Hour, 10 * units.Year,
		}
		_, tab, err := mrm.RunDCMSweep(cellphys.RRAM, 24*time.Hour, classes)
		if err != nil {
			fail("e8", err)
		} else {
			fmt.Println(tab)
		}
	}
	if run("e9") {
		_, tab, err := mrm.RunECCBlockSweep(cellphys.RRAM, 24*time.Hour, 1e-18)
		if err != nil {
			fail("e9", err)
		} else {
			fmt.Println(tab)
		}
	}
	if run("e10") {
		res, err := mrm.RunControlPlane(*seed, 30)
		if err != nil {
			fail("e10", err)
		} else {
			fmt.Println(res.Table)
		}
	}
	if run("e11") {
		fmt.Println(mrm.RunDensityRoadmap(llm.Frontier500B))
	}
	if run("e12") {
		_, tab, err := mrm.RunBatchingLimits(llm.GPT3_175B, llm.B200, 4096, []int{1, 4, 16, 64})
		if err != nil {
			fail("e12", err)
		} else {
			fmt.Println(tab)
		}
	}
	if run("e13") {
		_, tab, err := mrm.RunClassCountAblation(cellphys.RRAM, []int{1, 2, 4, 8}, 5000, *seed)
		if err != nil {
			fail("e13", err)
		} else {
			fmt.Println(tab)
		}
	}
	if run("e14") {
		_, tab, err := mrm.RunPageSizeAblation(llm.Llama2_70B, []int{1, 4, 16, 64, 256}, 64, *seed)
		if err != nil {
			fail("e14", err)
		} else {
			fmt.Println(tab)
		}
	}
	if run("e15") {
		idles := []time.Duration{
			time.Minute, time.Hour, 24 * time.Hour, 7 * 24 * time.Hour, 60 * 24 * time.Hour,
		}
		_, tab, err := mrm.RunKeepVsRecompute(llm.Llama2_70B, llm.B200, cellphys.RRAM,
			24*time.Hour, 2048, idles)
		if err != nil {
			fail("e15", err)
		} else {
			fmt.Println(tab)
		}
	}
	if run("e16") {
		_, tab, err := mrm.RunMLCSweep(cellphys.RRAM, 24*time.Hour)
		if err != nil {
			fail("e16", err)
		} else {
			fmt.Println(tab)
		}
	}
	if run("e17") {
		_, tab := mrm.RunModelSwap(llm.Llama2_70B)
		fmt.Println(tab)
	}
	if run("e18") {
		_, tab := mrm.RunIdleKVOffload(llm.Llama2_70B, 4096)
		fmt.Println(tab)
	}
	if run("e19") {
		p := mrm.DefaultServingParams()
		p.NumReqs = *reqs
		p.Seed = *seed
		_, tab, err := mrm.RunFleetScaleOut(p, []int{1, 2, 4})
		if err != nil {
			fail("e19", err)
		} else {
			fmt.Println(tab)
		}
	}
	if run("e20") {
		rets := []time.Duration{time.Hour, 24 * time.Hour, 7 * 24 * time.Hour, 10 * units.Year}
		_, tab, err := mrm.RunWearoutLifetime(llm.SplitwiseConv, llm.Llama2_70B,
			units.Bytes(*kvGiB)*units.GiB, rets)
		if err != nil {
			fail("e20", err)
		} else {
			fmt.Println(tab)
		}
	}
	if run("e21") {
		p := mrm.DefaultServingParams()
		p.NumReqs = 4
		_, tab, err := mrm.RunChunkedPrefill(p, []int{0, 64, 256})
		if err != nil {
			fail("e21", err)
		} else {
			fmt.Println(tab)
		}
	}
	if run("e22") {
		res, err := mrm.RunPrefixSharing(llm.Llama2_70B, 5, 256, 40, 64, *seed)
		if err != nil {
			fail("e22", err)
		} else {
			fmt.Println(res.Table)
		}
	}
	if run("e23") {
		_, tab, err := mrm.RunMoEComparison(llm.B200, 2048, []int{1, 4, 16, 64})
		if err != nil {
			fail("e23", err)
		} else {
			fmt.Println(tab)
		}
	}
	if run("e24") {
		p := mrm.DefaultServingParams()
		p.NumReqs = *reqs
		p.Seed = *seed
		_, tab, err := mrm.RunServingTCO(p)
		if err != nil {
			fail("e24", err)
		} else {
			fmt.Println(tab)
		}
	}
	if run("e25") {
		_, tab, err := mrm.RunControllerBandwidth(8 * units.GiB)
		if err != nil {
			fail("e25", err)
		} else {
			fmt.Println(tab)
		}
	}
	if run("e26") {
		_, tab, err := mrm.RunQuantizationSweep(llm.Frontier500B, llm.B200, 4096, 4)
		if err != nil {
			fail("e26", err)
		} else {
			fmt.Println(tab)
		}
	}
	if run("e27") {
		p := mrm.DefaultServingParams()
		p.NumReqs = *reqs
		p.RatePerSec = 20
		p.Seed = *seed
		_, tab, err := mrm.RunPhaseSplit(p, 1, 1, 200*units.GBps)
		if err != nil {
			fail("e27", err)
		} else {
			fmt.Println(tab)
		}
	}
	if run("e28") {
		_, tab, err := mrm.RunSpeculative(llm.Llama2_70B, llm.Llama27B, llm.B200, 2048,
			[]int{2, 4, 8}, []float64{0.5, 0.7, 0.9})
		if err != nil {
			fail("e28", err)
		} else {
			fmt.Println(tab)
		}
	}
	if run("e29") {
		_, tab := mrm.RunAcceleratorCount(8192, 8)
		fmt.Println(tab)
	}
	if run("e30") {
		p := mrm.DefaultServingParams()
		p.NumReqs = *reqs
		p.Seed = *seed
		rates := []float64{0, *faultRate / 100, *faultRate / 10, *faultRate}
		_, tab, err := mrm.RunFaultSweep(p, rates, *faultSeed)
		if err != nil {
			fail("e30", err)
		} else {
			fmt.Println(tab)
		}
		_, tab2, err := mrm.RunFleetFailover(p, 3, 1, *faultRate, *faultSeed)
		if err != nil {
			fail("e30", err)
		} else {
			fmt.Println(tab2)
		}
	}
	// fleetday is opt-in only (-exp fleetday): the default million-user day
	// replays ~2.2M requests and takes minutes, not the seconds the e1..e30
	// suite budgets for.
	if want["fleetday"] && run("fleetday") {
		p := mrm.DefaultFleetDayParams()
		p.Nodes = *fleetNodes
		p.Rate = *fleetRate
		p.Duration = time.Duration(*fleetHours * float64(time.Hour))
		p.Seed = *seed
		p.Window = *fleetWindow
		if mix, err := parseMix(*fleetMix); err != nil {
			fail("fleetday", err)
		} else {
			p.Mix = mix
		}
		switch *fleetMem {
		case "hbm":
			p.Memory = mrm.HBMOnly
		case "lpddr":
			p.Memory = mrm.HBMPlusLPDDR
		case "mrm":
			p.Memory = mrm.HBMPlusMRM
		case "hbf":
			p.Memory = mrm.HBMPlusHBF
		default:
			fail("fleetday", fmt.Errorf("unknown -fleet-mem %q", *fleetMem))
		}
		if *progress {
			p.Progress = os.Stderr
		}
		if !failed {
			_, tab, err := mrm.RunFleetDay(p)
			if err != nil {
				fail("fleetday", err)
			} else {
				fmt.Println(tab)
			}
		}
	}
	finishTiming()
	if failed {
		return 1
	}
	return 0
}

// parseMix parses "a,b,c" into a class-mix triple; RunFleetDay validates the
// probabilities themselves.
func parseMix(s string) ([3]float64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return [3]float64{}, fmt.Errorf("mix %q: want three comma-separated probabilities", s)
	}
	var mix [3]float64
	for i, p := range parts {
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%g", &mix[i]); err != nil {
			return [3]float64{}, fmt.Errorf("mix %q: %w", s, err)
		}
	}
	return mix, nil
}
