// Command figure1 regenerates the paper's Figure 1: endurance requirements
// for KV-cache and model-weight writes over a 5-year service life vs the
// endurance of memory technologies (product and demonstrated potential).
//
// Usage:
//
//	figure1 [-kv-gib 48] [-csv]
package main

import (
	"flag"
	"fmt"

	"mrm"
	"mrm/internal/units"
)

func main() {
	kvGiB := flag.Uint64("kv-gib", 48, "KV region capacity in GiB")
	csv := flag.Bool("csv", false, "emit the verdict table as CSV")
	flag.Parse()

	res := mrm.RunFigure1(units.Bytes(*kvGiB) * units.GiB)
	fmt.Println(res.Chart)
	if *csv {
		fmt.Print(res.Table.CSV())
	} else {
		fmt.Println(res.Table)
	}
}
