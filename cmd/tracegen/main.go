// Command tracegen emits a simulated inference memory-access trace as CSV
// (at_ns,stream,op,addr,size) together with a summary of its properties, for
// consumption by external analysis tools.
//
// Usage:
//
//	tracegen [-model Llama2-70B] [-seqs 8] [-prompt 512] [-steps 32] [-o trace.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mrm"
	"mrm/internal/llm"
)

func main() {
	modelName := flag.String("model", "Llama2-70B", "model preset")
	seqs := flag.Int("seqs", 8, "concurrent sequences")
	prompt := flag.Int("prompt", 512, "prompt length scale (tokens)")
	steps := flag.Int("steps", 32, "decode steps to trace")
	pageTokens := flag.Int("page-tokens", 16, "KV page size in vectors")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	out := flag.String("o", "", "output file (default stdout)")
	format := flag.String("format", "csv", "output format: csv or jsonl")
	flag.Parse()

	model, err := llm.ModelByName(*modelName)
	if err != nil {
		log.Fatal(err)
	}
	res, err := mrm.RunSequentiality(model, *pageTokens, *seqs, *prompt, *steps, *seed)
	if err != nil {
		log.Fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	switch *format {
	case "csv":
		if err := res.Log.WriteCSV(w); err != nil {
			log.Fatal(err)
		}
	case "jsonl":
		if err := res.Log.WriteJSONL(w); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown format %q (want csv or jsonl)", *format)
	}
	fmt.Fprintln(os.Stderr, res.Table)
}
