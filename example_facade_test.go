package mrm_test

import (
	"fmt"
	"time"

	"mrm"
	"mrm/internal/cellphys"
	"mrm/internal/endurance"
	"mrm/internal/units"
)

// Regenerate the paper's Figure 1 and classify one technology against the
// KV-cache endurance requirement.
func ExampleRunFigure1() {
	res := mrm.RunFigure1(48 * units.GiB)
	kv := res.Data.Requirements[2] // KV churn, splitwise-conv
	for _, tech := range res.Data.Technologies {
		if tech.Name == "Optane-PCM" {
			fmt.Printf("%s vs %q: %v\n", tech.Name, kv.Name, endurance.Classify(tech, kv))
		}
	}
	// Output: Optane-PCM vs "KV cache (Llama2-70B, splitwise-conv)": potential-only
}

// Ask the DCM sweep what writing one-day data at the right retention saves
// over SCM-style non-volatile writes.
func ExampleRunDCMSweep() {
	classes := []time.Duration{24 * time.Hour, 10 * units.Year}
	pts, _, err := mrm.RunDCMSweep(cellphys.RRAM, 24*time.Hour, classes)
	if err != nil {
		panic(err)
	}
	saving := float64(pts[1].WriteEnergy) / float64(pts[0].WriteEnergy)
	fmt.Printf("write-energy saving: %.1fx\n", saving)
	// Output: write-energy saving: 5.2x
}
