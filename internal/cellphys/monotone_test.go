package cellphys

import (
	"math/rand"
	"testing"
	"time"
)

// TestRawBERMonotone pins the monotonicity contract documented on RawBER:
// non-decreasing in cycles and in age, over every operating point the
// simulator uses. The superblock pruning in internal/memdev is exact only
// while this holds.
func TestRawBERMonotone(t *testing.T) {
	techs := []Technology{RRAM, PCM, STTMRAM, NANDFlash, DRAM}
	rng := rand.New(rand.NewSource(11))
	for _, tech := range techs {
		tr := ForTechnology(tech)
		for _, ret := range []time.Duration{tr.MinRetention, tr.RefRetention, tr.MaxRetention} {
			op := tr.MustAt(ret)
			for trial := 0; trial < 2000; trial++ {
				c1 := rng.Float64() * op.Endurance * 1.5
				c2 := c1 + rng.Float64()*op.Endurance
				a1 := time.Duration(rng.Int63n(int64(2 * ret)))
				a2 := a1 + time.Duration(rng.Int63n(int64(ret)))
				lo := RawBER(op, WearState{Cycles: c1}, a1, DefaultBER)
				hiC := RawBER(op, WearState{Cycles: c2}, a1, DefaultBER)
				hiA := RawBER(op, WearState{Cycles: c1}, a2, DefaultBER)
				hi := RawBER(op, WearState{Cycles: c2}, a2, DefaultBER)
				if hiC < lo {
					t.Fatalf("%v ret=%v: BER decreased with cycles: %g@%g -> %g@%g", tech, ret, lo, c1, hiC, c2)
				}
				if hiA < lo {
					t.Fatalf("%v ret=%v: BER decreased with age: %g@%v -> %g@%v", tech, ret, lo, a1, hiA, a2)
				}
				if hi < lo {
					t.Fatalf("%v ret=%v: BER decreased at joint corner", tech, ret)
				}
			}
		}
	}
}

// TestRawBERCeilingBounds checks RawBERCeiling dominates every member of a
// random population and is attained exactly at the (max cycles, max age)
// corner — the tightness the pruned scan's skip decision relies on.
func TestRawBERCeilingBounds(t *testing.T) {
	tr := ForTechnology(RRAM)
	op := tr.MustAt(24 * time.Hour)

	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(64)
		var maxC float64
		var maxA time.Duration
		cells := make([]struct {
			c float64
			a time.Duration
		}, n)
		for i := range cells {
			cells[i].c = rng.Float64() * op.Endurance
			cells[i].a = time.Duration(rng.Int63n(int64(48 * time.Hour)))
			if cells[i].c > maxC {
				maxC = cells[i].c
			}
			if cells[i].a > maxA {
				maxA = cells[i].a
			}
		}
		ceil := RawBERCeiling(op, maxC, maxA, DefaultBER)
		for i, cell := range cells {
			if ber := RawBER(op, WearState{Cycles: cell.c}, cell.a, DefaultBER); ber > ceil {
				t.Fatalf("trial %d: cell %d BER %g exceeds ceiling %g", trial, i, ber, ceil)
			}
		}
		if corner := RawBER(op, WearState{Cycles: maxC}, maxA, DefaultBER); corner != ceil {
			t.Fatalf("trial %d: ceiling %g not attained at corner (%g)", trial, ceil, corner)
		}
	}
}
