// Package cellphys models memory-cell physics at the level of abstraction the
// MRM paper argues from: for resistive technologies (PCM, RRAM, STT-MRAM),
// retention time, write energy, write latency, and endurance are coupled —
// writing "harder" (higher voltage / longer pulse) buys longer retention but
// costs energy, time, and cell wear.
//
// The model is phenomenological: each technology has a reference operating
// point taken from device spec sheets (the non-volatile, 10-year-retention
// configuration shipped in SCM products) plus per-decade sensitivity slopes
// fitted to the directions and magnitudes reported in the device literature
// the paper cites:
//
//   - STT-MRAM: Smullen et al., HPCA'11 ("Relaxing non-volatility...") —
//     reducing retention 10y→1s cut write energy ~5-10x and latency ~2-3x.
//   - RRAM: Nail et al., IEDM'16 — endurance/retention/window trade-off,
//     roughly a decade of endurance per decade of retention given up.
//   - PCM: Lee et al., ISCA'09 — partial-SET programming trades retention
//     for write latency/energy.
//
// Relaxing retention by one decade multiplies write energy by
// 10^-EnergySlope, write latency by 10^-LatencySlope, and endurance by
// 10^+EnduranceSlope. DRAM gets a degenerate trade-off (retention is fixed by
// the capacitor; there is nothing to manage), and Flash gets a very stiff one
// (tunnel-oxide damage dominates regardless of retention target).
package cellphys

import (
	"fmt"
	"math"
	"time"

	"mrm/internal/units"
)

// Technology identifies a memory cell technology.
type Technology int

// Cell technologies modeled by the simulator.
const (
	DRAM Technology = iota
	PCM
	RRAM
	STTMRAM
	NANDFlash
	NORFlash
)

// String returns the conventional name of the technology.
func (t Technology) String() string {
	switch t {
	case DRAM:
		return "DRAM"
	case PCM:
		return "PCM"
	case RRAM:
		return "RRAM"
	case STTMRAM:
		return "STT-MRAM"
	case NANDFlash:
		return "NAND-Flash"
	case NORFlash:
		return "NOR-Flash"
	default:
		return fmt.Sprintf("Technology(%d)", int(t))
	}
}

// Tradeoff couples retention to write energy, write latency, and endurance
// for one technology. The zero value is not useful; obtain instances from
// ForTechnology.
type Tradeoff struct {
	Tech Technology

	// Reference (spec-sheet, non-volatile) operating point.
	RefRetention    time.Duration
	RefWriteEnergy  units.Energy // per bit
	RefWriteLatency time.Duration
	RefEndurance    float64 // program/erase or write cycles per cell

	// Per-decade sensitivities when *relaxing* retention below RefRetention.
	EnergySlope    float64 // write energy decades saved per retention decade given up
	LatencySlope   float64 // write latency decades saved per retention decade
	EnduranceSlope float64 // endurance decades gained per retention decade

	// Legal retention range for the technology. At() clamps error outside it.
	MinRetention time.Duration
	MaxRetention time.Duration
}

// OperatingPoint is a concrete cell configuration chosen on the trade-off
// curve: the result of deciding how long a write must be retained.
type OperatingPoint struct {
	Tech         Technology
	Retention    time.Duration
	WriteEnergy  units.Energy // per bit
	WriteLatency time.Duration
	Endurance    float64 // cycles per cell at this point
}

// ForTechnology returns the calibrated trade-off curve for tech.
// Reference values carry provenance comments; they are spec-sheet estimates,
// not measurements (no MRM silicon exists — that is the paper's point).
func ForTechnology(tech Technology) Tradeoff {
	switch tech {
	case DRAM:
		// DRAM retention is fixed by capacitor leakage; JEDEC refresh window
		// 64 ms (32 ms at high temperature). Endurance effectively unlimited.
		return Tradeoff{
			Tech:            DRAM,
			RefRetention:    64 * time.Millisecond,
			RefWriteEnergy:  0.5 * units.PicoJoule, // array access energy share
			RefWriteLatency: 15 * time.Nanosecond,
			RefEndurance:    1e16,
			EnergySlope:     0, LatencySlope: 0, EnduranceSlope: 0,
			MinRetention: 64 * time.Millisecond,
			MaxRetention: 64 * time.Millisecond,
		}
	case PCM:
		// Reference: Intel Optane-class PCM, 10y retention, ~1e6 media-level
		// cycles (blocksandfiles.com Optane DIMM endurance analysis [5]),
		// ~100 pJ/bit RESET energy, ~150 ns write (Lee et al. ISCA'09 [24]).
		return Tradeoff{
			Tech:            PCM,
			RefRetention:    10 * units.Year,
			RefWriteEnergy:  100 * units.PicoJoule,
			RefWriteLatency: 150 * time.Nanosecond,
			RefEndurance:    1e6,
			EnergySlope:     0.25, // partial-SET: ~1.8x energy per decade
			LatencySlope:    0.12,
			EnduranceSlope:  0.55, // melt-stress reduction dominates wear
			MinRetention:    time.Second,
			MaxRetention:    10 * units.Year,
		}
	case RRAM:
		// Reference: Weebit-class embedded ReRAM product: 10y retention,
		// ~1e5-1e6 cycles [32]; HfOx devices demonstrated 1e10 cycles at
		// reduced retention (Lee et al. IEDM'10 [25]; Nail et al. IEDM'16 [34]).
		return Tradeoff{
			Tech:            RRAM,
			RefRetention:    10 * units.Year,
			RefWriteEnergy:  20 * units.PicoJoule,
			RefWriteLatency: 100 * time.Nanosecond,
			RefEndurance:    1e6,
			EnergySlope:     0.20,
			LatencySlope:    0.15,
			EnduranceSlope:  0.60, // ~decade endurance per retention decade [34]
			MinRetention:    time.Second,
			MaxRetention:    10 * units.Year,
		}
	case STTMRAM:
		// Reference: Everspin-class STT-MRAM: 10y retention (thermal
		// stability Δ≈60), ~1e10 product cycles [39]; >1e15 demonstrated.
		// Smullen'11 [43]: retention relaxation cuts write energy/latency.
		return Tradeoff{
			Tech:            STTMRAM,
			RefRetention:    10 * units.Year,
			RefWriteEnergy:  1.0 * units.PicoJoule,
			RefWriteLatency: 10 * time.Nanosecond,
			RefEndurance:    1e10,
			EnergySlope:     0.15,
			LatencySlope:    0.08,
			EnduranceSlope:  0.50,
			MinRetention:    time.Millisecond,
			MaxRetention:    10 * units.Year,
		}
	case NANDFlash:
		// Reference: SLC NAND, 10y retention, ~1e5 P/E cycles [7]; tunnel
		// oxide wear is intrinsic to the program mechanism, so relaxing
		// retention buys almost nothing — the "curse of Flash" in the paper.
		return Tradeoff{
			Tech:            NANDFlash,
			RefRetention:    10 * units.Year,
			RefWriteEnergy:  2000 * units.PicoJoule, // incl. program/erase amortization
			RefWriteLatency: 200 * time.Microsecond,
			RefEndurance:    1e5,
			EnergySlope:     0.02,
			LatencySlope:    0.02,
			EnduranceSlope:  0.10,
			MinRetention:    24 * time.Hour,
			MaxRetention:    10 * units.Year,
		}
	case NORFlash:
		return Tradeoff{
			Tech:            NORFlash,
			RefRetention:    20 * units.Year,
			RefWriteEnergy:  5000 * units.PicoJoule,
			RefWriteLatency: 10 * time.Microsecond,
			RefEndurance:    1e5,
			EnergySlope:     0.02,
			LatencySlope:    0.02,
			EnduranceSlope:  0.10,
			MinRetention:    24 * time.Hour,
			MaxRetention:    20 * units.Year,
		}
	default:
		panic(fmt.Sprintf("cellphys: unknown technology %d", int(tech)))
	}
}

// At returns the operating point for the requested retention target.
// Retention outside [MinRetention, MaxRetention] is an error: the caller
// (the MRM control plane) must pick a representable retention class.
func (tr Tradeoff) At(retention time.Duration) (OperatingPoint, error) {
	if retention < tr.MinRetention || retention > tr.MaxRetention {
		return OperatingPoint{}, fmt.Errorf(
			"cellphys: %v retention %v outside [%v, %v]",
			tr.Tech, retention, tr.MinRetention, tr.MaxRetention)
	}
	// Decades of retention given up relative to the reference point.
	decades := math.Log10(float64(tr.RefRetention) / float64(retention))
	if decades < 0 {
		decades = 0
	}
	energy := float64(tr.RefWriteEnergy) * math.Pow(10, -tr.EnergySlope*decades)
	latency := float64(tr.RefWriteLatency) * math.Pow(10, -tr.LatencySlope*decades)
	endurance := tr.RefEndurance * math.Pow(10, tr.EnduranceSlope*decades)
	return OperatingPoint{
		Tech:         tr.Tech,
		Retention:    retention,
		WriteEnergy:  units.Energy(energy),
		WriteLatency: time.Duration(latency),
		Endurance:    endurance,
	}, nil
}

// MustAt is At for statically known-valid retentions; it panics on error.
func (tr Tradeoff) MustAt(retention time.Duration) OperatingPoint {
	op, err := tr.At(retention)
	if err != nil {
		panic(err)
	}
	return op
}

// MLCDerate adjusts an operating point for multi-level-cell encoding with
// bitsPerCell bits. Narrower level margins shrink retention and endurance;
// write energy per *bit* improves because one physical write stores several
// bits. bitsPerCell must be in [1, 4].
func MLCDerate(op OperatingPoint, bitsPerCell int) (OperatingPoint, error) {
	if bitsPerCell < 1 || bitsPerCell > 4 {
		return OperatingPoint{}, fmt.Errorf("cellphys: bitsPerCell %d outside [1,4]", bitsPerCell)
	}
	if bitsPerCell == 1 {
		return op, nil
	}
	// Each extra bit halves the level margin: retention and endurance drop
	// ~10x per extra bit (consistent with SLC→MLC→TLC NAND ratios), while
	// per-bit write energy falls by the sharing factor (iterative program
	// steps claw some of that back: use 0.7/bit instead of 1/bit).
	extra := float64(bitsPerCell - 1)
	op.Retention = time.Duration(float64(op.Retention) * math.Pow(0.1, extra))
	op.Endurance *= math.Pow(0.1, extra)
	op.WriteEnergy = units.Energy(float64(op.WriteEnergy) * math.Pow(0.7, extra) / float64(bitsPerCell))
	op.WriteLatency = time.Duration(float64(op.WriteLatency) * math.Pow(1.5, extra))
	return op, nil
}

// WearState tracks accumulated write cycles for a cell population (a block
// or zone) and answers bit-error-rate queries.
type WearState struct {
	Cycles float64 // writes per cell so far
}

// RawBERParams configures the error model. The defaults (DefaultBER) are
// typical of the resistive-memory reliability literature.
type RawBERParams struct {
	Floor     float64 // BER of a fresh cell immediately after write
	WearCoeff float64 // BER added at end of life (Cycles == Endurance)
	WearExp   float64 // super-linearity of wear damage
	DecayBeta float64 // Weibull shape of retention loss over time
}

// DefaultBER is the standard error-model calibration.
var DefaultBER = RawBERParams{
	Floor:     1e-9,
	WearCoeff: 1e-3,
	WearExp:   3,
	DecayBeta: 2,
}

// RawBER returns the expected raw bit error rate for cells written at
// operating point op, with wear state w, read sinceWrite after being written.
// Three additive terms: a floor, wear damage, and retention decay. Retention
// decay follows a Weibull CDF with characteristic life = op.Retention scaled
// so that BER at t == Retention equals the retention-failure criterion 1e-4
// (the usual specification point for "data retained").
//
// Monotonicity contract: for a fixed operating point and parameter set,
// RawBER is non-decreasing in w.Cycles and non-decreasing in sinceWrite.
// Physically, cells only accumulate damage and data only decays; in the
// model, both the wear term (a power of cycles/endurance) and the decay term
// (a Weibull CDF in sinceWrite/retention) are non-decreasing, and the terms
// are additive with a monotone clamp. This contract is what lets callers
// bound the BER of a whole cell population by evaluating RawBER once at the
// population's worst (max cycles, max age) corner — see RawBERCeiling and
// the superblock pruning in internal/memdev. TestRawBERMonotone pins it.
func RawBER(op OperatingPoint, w WearState, sinceWrite time.Duration, p RawBERParams) float64 {
	ber := p.Floor + WearBERTerm(op, w.Cycles, p) + DecayBERTerm(op, sinceWrite, p)
	if ber > 0.5 {
		ber = 0.5 // beyond this the data is noise
	}
	return ber
}

// WearBERTerm returns the wear-damage contribution to RawBER: the BER added
// by cycles accumulated writes at operating point op. It is zero for fresh
// cells and for technologies without an endurance limit, and depends only on
// (op, cycles, p) — never on data age — which is what lets hot-path callers
// cache it per cycle count and recombine with DecayBERTerm exactly:
// RawBER == min(0.5, p.Floor + WearBERTerm + DecayBERTerm), with the terms
// added in that order.
func WearBERTerm(op OperatingPoint, cycles float64, p RawBERParams) float64 {
	if op.Endurance <= 0 || cycles <= 0 {
		return 0
	}
	frac := cycles / op.Endurance
	return p.WearCoeff * math.Pow(frac, p.WearExp)
}

// DecayBERTerm returns the retention-decay contribution to RawBER: a Weibull
// CDF in sinceWrite/op.Retention scaled to hit the 1e-4 retention-failure
// criterion at sinceWrite == Retention. It is zero at or before the write
// instant and depends only on (op, sinceWrite, p) — never on wear — the other
// half of the exact decomposition documented on WearBERTerm.
func DecayBERTerm(op OperatingPoint, sinceWrite time.Duration, p RawBERParams) float64 {
	if sinceWrite <= 0 || op.Retention <= 0 {
		return 0
	}
	x := float64(sinceWrite) / float64(op.Retention)
	// Weibull CDF scaled to hit 1e-4 at x == 1.
	return 1e-4 * (1 - math.Exp(-math.Pow(x, p.DecayBeta))) / (1 - math.Exp(-1))
}

// RawBERCeiling bounds the raw BER of a cell population from above: given the
// population's maximum write cycles and maximum data age, it evaluates RawBER
// at that worst corner. By the monotonicity contract on RawBER, every cell in
// the population — whose (cycles, age) are pointwise ≤ (maxCycles, maxAge) —
// has BER ≤ the returned value, and the bound is tight: it is attained
// exactly by a cell sitting at the corner. Aggregate scans (superblock
// pruning in internal/memdev) use this to skip populations whose ceiling
// cannot beat an already-observed worst BER.
func RawBERCeiling(op OperatingPoint, maxCycles float64, maxAge time.Duration, p RawBERParams) float64 {
	return RawBER(op, WearState{Cycles: maxCycles}, maxAge, p)
}

// LifetimeWrites returns how many full-device overwrite cycles the operating
// point survives over the given service life if writes arrive at
// writesPerCellPerSec. It returns +Inf when endurance is not the binding
// constraint within the horizon.
func LifetimeWrites(op OperatingPoint, writesPerCellPerSec float64, horizon time.Duration) float64 {
	demanded := writesPerCellPerSec * horizon.Seconds()
	if demanded <= 0 {
		return math.Inf(1)
	}
	return op.Endurance / demanded
}
