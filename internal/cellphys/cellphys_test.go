package cellphys

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"mrm/internal/units"
)

func TestTechnologyString(t *testing.T) {
	for tech, want := range map[Technology]string{
		DRAM: "DRAM", PCM: "PCM", RRAM: "RRAM",
		STTMRAM: "STT-MRAM", NANDFlash: "NAND-Flash", NORFlash: "NOR-Flash",
	} {
		if got := tech.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if got := Technology(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown technology String() = %q", got)
	}
}

func TestForTechnologyPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ForTechnology(Technology(42))
}

func TestReferencePointIsIdentity(t *testing.T) {
	for _, tech := range []Technology{PCM, RRAM, STTMRAM, NANDFlash, NORFlash, DRAM} {
		tr := ForTechnology(tech)
		op, err := tr.At(tr.RefRetention)
		if err != nil {
			t.Fatalf("%v: %v", tech, err)
		}
		if op.WriteEnergy != tr.RefWriteEnergy {
			t.Errorf("%v: energy %v != ref %v", tech, op.WriteEnergy, tr.RefWriteEnergy)
		}
		if op.Endurance != tr.RefEndurance {
			t.Errorf("%v: endurance %v != ref %v", tech, op.Endurance, tr.RefEndurance)
		}
		if op.WriteLatency != tr.RefWriteLatency {
			t.Errorf("%v: latency %v != ref %v", tech, op.WriteLatency, tr.RefWriteLatency)
		}
	}
}

// The central MRM claim: relaxing retention improves endurance and write
// energy for the SCM technologies.
func TestRelaxingRetentionHelps(t *testing.T) {
	for _, tech := range []Technology{PCM, RRAM, STTMRAM} {
		tr := ForTechnology(tech)
		nv := tr.MustAt(10 * units.Year)
		day := tr.MustAt(24 * time.Hour)
		if day.Endurance <= nv.Endurance {
			t.Errorf("%v: 1-day endurance %g not above 10y %g", tech, day.Endurance, nv.Endurance)
		}
		if day.WriteEnergy >= nv.WriteEnergy {
			t.Errorf("%v: 1-day write energy %v not below 10y %v", tech, day.WriteEnergy, nv.WriteEnergy)
		}
		if day.WriteLatency >= nv.WriteLatency {
			t.Errorf("%v: 1-day latency %v not below 10y %v", tech, day.WriteLatency, nv.WriteLatency)
		}
	}
}

// RRAM calibration: ~0.6 decade endurance per decade of retention means
// 10y→1h (≈4.9 decades) should buy roughly 3 decades (≈870x) of endurance.
func TestRRAMEnduranceMagnitude(t *testing.T) {
	tr := ForTechnology(RRAM)
	hour := tr.MustAt(time.Hour)
	gain := hour.Endurance / tr.RefEndurance
	if gain < 100 || gain > 1e5 {
		t.Errorf("RRAM 10y→1h endurance gain = %g, want within [1e2, 1e5]", gain)
	}
	// An MRM-class RRAM at hour retention should exceed 1e8 cycles,
	// comfortably above the KV-cache requirement band in Figure 1.
	if hour.Endurance < 1e8 {
		t.Errorf("RRAM@1h endurance = %g, want >= 1e8", hour.Endurance)
	}
}

func TestFlashGainsAlmostNothing(t *testing.T) {
	tr := ForTechnology(NANDFlash)
	day := tr.MustAt(24 * time.Hour)
	if day.Endurance > tr.RefEndurance*10 {
		t.Errorf("flash endurance gain %g too large; oxide wear should dominate",
			day.Endurance/tr.RefEndurance)
	}
}

func TestAtRangeErrors(t *testing.T) {
	tr := ForTechnology(RRAM)
	if _, err := tr.At(time.Millisecond); err == nil {
		t.Error("sub-minimum retention should error")
	}
	if _, err := tr.At(100 * units.Year); err == nil {
		t.Error("super-maximum retention should error")
	}
}

func TestMustAtPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ForTechnology(RRAM).MustAt(time.Nanosecond)
}

func TestDRAMDegenerate(t *testing.T) {
	tr := ForTechnology(DRAM)
	if tr.MinRetention != tr.MaxRetention {
		t.Error("DRAM should have a single legal retention")
	}
	op := tr.MustAt(tr.RefRetention)
	if op.Endurance < 1e15 {
		t.Error("DRAM endurance should be effectively unlimited")
	}
}

func TestMLCDerate(t *testing.T) {
	op := ForTechnology(RRAM).MustAt(10 * units.Year)
	mlc, err := MLCDerate(op, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mlc.Retention >= op.Retention {
		t.Error("MLC should shrink retention")
	}
	if mlc.Endurance >= op.Endurance {
		t.Error("MLC should shrink endurance")
	}
	if mlc.WriteEnergy >= op.WriteEnergy {
		t.Error("MLC should cut per-bit write energy")
	}
	same, err := MLCDerate(op, 1)
	if err != nil || same != op {
		t.Error("bitsPerCell=1 must be identity")
	}
	if _, err := MLCDerate(op, 0); err == nil {
		t.Error("bitsPerCell=0 should error")
	}
	if _, err := MLCDerate(op, 5); err == nil {
		t.Error("bitsPerCell=5 should error")
	}
}

func TestRawBERFreshCell(t *testing.T) {
	op := ForTechnology(RRAM).MustAt(24 * time.Hour)
	ber := RawBER(op, WearState{}, 0, DefaultBER)
	if ber != DefaultBER.Floor {
		t.Errorf("fresh cell BER = %g, want floor %g", ber, DefaultBER.Floor)
	}
}

func TestRawBERGrowsWithWear(t *testing.T) {
	op := ForTechnology(RRAM).MustAt(24 * time.Hour)
	low := RawBER(op, WearState{Cycles: op.Endurance * 0.1}, 0, DefaultBER)
	high := RawBER(op, WearState{Cycles: op.Endurance}, 0, DefaultBER)
	if high <= low {
		t.Errorf("BER should grow with wear: %g <= %g", high, low)
	}
	if high < 1e-4 {
		t.Errorf("end-of-life BER %g should be substantial", high)
	}
}

func TestRawBERGrowsWithAge(t *testing.T) {
	op := ForTechnology(RRAM).MustAt(24 * time.Hour)
	young := RawBER(op, WearState{}, time.Hour, DefaultBER)
	atRet := RawBER(op, WearState{}, 24*time.Hour, DefaultBER)
	stale := RawBER(op, WearState{}, 96*time.Hour, DefaultBER)
	if !(young < atRet && atRet < stale) {
		t.Errorf("BER should grow with age: %g, %g, %g", young, atRet, stale)
	}
	// At exactly the retention target the decay term should be ~1e-4.
	if atRet < 0.5e-4 || atRet > 2e-4 {
		t.Errorf("BER at retention target = %g, want ~1e-4", atRet)
	}
}

func TestRawBERCapped(t *testing.T) {
	op := ForTechnology(RRAM).MustAt(24 * time.Hour)
	ber := RawBER(op, WearState{Cycles: op.Endurance * 100}, 1000*time.Hour, DefaultBER)
	if ber > 0.5 {
		t.Errorf("BER %g exceeds cap", ber)
	}
}

func TestLifetimeWrites(t *testing.T) {
	op := OperatingPoint{Endurance: 1e6}
	// 1 write/cell/sec over ~11.6 days = 1e6 writes: exactly life end.
	life := LifetimeWrites(op, 1, time.Duration(1e6)*time.Second)
	if math.Abs(life-1) > 1e-9 {
		t.Errorf("LifetimeWrites = %v, want 1", life)
	}
	if !math.IsInf(LifetimeWrites(op, 0, units.Year), 1) {
		t.Error("zero write rate should be unconstrained")
	}
}

// Property: for SCM technologies, endurance is monotone non-increasing in
// retention and write energy is monotone non-decreasing.
func TestMonotoneTradeoff(t *testing.T) {
	techs := []Technology{PCM, RRAM, STTMRAM}
	f := func(techIdx uint8, h1, h2 uint16) bool {
		tr := ForTechnology(techs[int(techIdx)%len(techs)])
		r1 := time.Duration(int(h1)%87600+1) * time.Hour // up to 10y
		r2 := time.Duration(int(h2)%87600+1) * time.Hour
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		p1, p2 := tr.MustAt(r1), tr.MustAt(r2)
		return p1.Endurance >= p2.Endurance && p1.WriteEnergy <= p2.WriteEnergy
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: RawBER is always within [floor, 0.5].
func TestRawBERBounds(t *testing.T) {
	op := ForTechnology(PCM).MustAt(time.Hour)
	f := func(cyc uint32, hrs uint16) bool {
		ber := RawBER(op, WearState{Cycles: float64(cyc)}, time.Duration(hrs)*time.Hour, DefaultBER)
		return ber >= DefaultBER.Floor && ber <= 0.5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: RawBER decomposes exactly — bit-identically, not approximately —
// into floor + WearBERTerm + DecayBERTerm (clamped), with the terms added in
// that order. The memdev hot path relies on this to cache the two terms
// independently and recombine without perturbing seeded-run goldens.
func TestRawBERTermDecompositionExact(t *testing.T) {
	ops := []OperatingPoint{
		ForTechnology(RRAM).MustAt(24 * time.Hour),
		ForTechnology(PCM).MustAt(time.Hour),
		ForTechnology(STTMRAM).MustAt(time.Minute),
		{Tech: DRAM}, // degenerate: no endurance, no retention
	}
	f := func(opIdx uint8, cyc uint32, secs uint32) bool {
		op := ops[int(opIdx)%len(ops)]
		w := WearState{Cycles: float64(cyc)}
		age := time.Duration(secs) * time.Second
		got := RawBER(op, w, age, DefaultBER)
		sum := DefaultBER.Floor +
			WearBERTerm(op, w.Cycles, DefaultBER) +
			DecayBERTerm(op, age, DefaultBER)
		if sum > 0.5 {
			sum = 0.5
		}
		return got == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
