package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	c.Add(-1)
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("Value = %d, want 8000", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(3.5)
	g.Add(-1.5)
	if g.Value() != 2.0 {
		t.Fatalf("Value = %v, want 2.0", g.Value())
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if g.Value() != 4000 {
		t.Fatalf("Value = %v, want 4000", g.Value())
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Observe(x)
	}
	if w.Count() != 8 {
		t.Fatalf("Count = %d", w.Count())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if math.Abs(w.Var()-32.0/7.0) > 1e-12 {
		t.Errorf("Var = %v, want %v", w.Var(), 32.0/7.0)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.Stddev() != 0 {
		t.Fatal("empty Welford should report zeros")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(1e-6, 1.01)
	for i := 1; i <= 10000; i++ {
		h.Observe(float64(i))
	}
	for _, tc := range []struct {
		q, want float64
	}{{0.5, 5000}, {0.9, 9000}, {0.99, 9900}} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want)/tc.want > 0.03 {
			t.Errorf("Quantile(%v) = %v, want ~%v", tc.q, got, tc.want)
		}
	}
	if h.Max() != 10000 {
		t.Errorf("Max = %v", h.Max())
	}
	if math.Abs(h.Mean()-5000.5) > 1e-6 {
		t.Errorf("Mean = %v", h.Mean())
	}
}

func TestHistogramZeroBucket(t *testing.T) {
	h := NewHistogram(1.0, 1.5)
	h.Observe(0)
	h.Observe(0.5)
	h.Observe(10)
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("Quantile(0.5) = %v, want 0 (two of three samples below base)", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(1, 2)
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramPanics(t *testing.T) {
	h := NewHistogram(1, 2)
	mustPanic(t, func() { h.Observe(-1) })
	mustPanic(t, func() { h.Quantile(1.5) })
	mustPanic(t, func() { NewHistogram(0, 2) })
	mustPanic(t, func() { NewHistogram(1, 1) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestHistogramSnapshot(t *testing.T) {
	h := NewHistogram(1e-3, 1.05)
	for i := 0; i < 100; i++ {
		h.Observe(1.0)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Errorf("Count = %d", s.Count)
	}
	if math.Abs(s.P50-1.0) > 0.1 {
		t.Errorf("P50 = %v, want ~1", s.P50)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("reads").Add(3)
	r.Gauge("occupancy").Set(0.7)
	r.Histogram("latency").Observe(0.001)
	// Same name returns same instance.
	if r.Counter("reads").Value() != 3 {
		t.Fatal("counter identity broken")
	}
	var lines []string
	r.Each(func(name, value string) { lines = append(lines, name+"="+value) })
	if len(lines) != 3 {
		t.Fatalf("Each visited %d metrics, want 3", len(lines))
	}
	joined := strings.Join(lines, ";")
	for _, want := range []string{"reads=3", "occupancy=0.7", "latency="} {
		if !strings.Contains(joined, want) {
			t.Errorf("output %q missing %q", joined, want)
		}
	}
}

// Property: Welford mean is always within [min, max] of its samples.
func TestWelfordMeanBounds(t *testing.T) {
	f := func(samples []float64) bool {
		var w Welford
		any := false
		for _, s := range samples {
			if math.IsNaN(s) || math.IsInf(s, 0) || math.Abs(s) > 1e300 {
				// Near-overflow magnitudes make the running mean lose all
				// precision; exclude them as out of the simulator's domain.
				continue
			}
			w.Observe(s)
			any = true
		}
		if !any {
			return true
		}
		return w.Mean() >= w.Min()-1e-9 && w.Mean() <= w.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram quantiles are monotone in q.
func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram(1e-6, 1.1)
	for i := 1; i < 1000; i++ {
		h.Observe(float64(i * i % 977))
	}
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

// Merging sharded histograms must be exact: a merged histogram answers every
// query identically to one that observed all samples directly.
func TestHistogramMergeMatchesDirectObservation(t *testing.T) {
	direct := NewHistogram(1e-6, 1.05)
	shards := []*Histogram{
		NewHistogram(1e-6, 1.05),
		NewHistogram(1e-6, 1.05),
		NewHistogram(1e-6, 1.05),
	}
	for i := 0; i < 3000; i++ {
		x := float64(i%997) * 1e-3
		direct.Observe(x)
		shards[i%len(shards)].Observe(x)
	}
	merged := NewHistogram(1e-6, 1.05)
	for _, s := range shards {
		merged.Merge(s)
	}
	if merged.Count() != direct.Count() {
		t.Fatalf("count %d != %d", merged.Count(), direct.Count())
	}
	if merged.Mean() != direct.Mean() {
		t.Fatalf("mean %v != %v", merged.Mean(), direct.Mean())
	}
	if merged.Max() != direct.Max() {
		t.Fatalf("max %v != %v", merged.Max(), direct.Max())
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
		if m, d := merged.Quantile(q), direct.Quantile(q); m != d {
			t.Fatalf("q=%v: %v != %v", q, m, d)
		}
	}
	// The donors are unchanged.
	var donorCount int64
	for _, s := range shards {
		donorCount += s.Count()
	}
	if donorCount != direct.Count() {
		t.Fatalf("donor histograms mutated: %d", donorCount)
	}
}

func TestHistogramMergeEmptyAndNil(t *testing.T) {
	h := NewHistogram(1e-6, 1.05)
	h.Observe(1)
	h.Merge(nil)
	h.Merge(NewHistogram(1e-6, 1.05))
	if h.Count() != 1 || h.Mean() != 1 {
		t.Fatalf("merge of empty/nil changed state: %+v", h.Snapshot())
	}
}

func TestHistogramMergePanics(t *testing.T) {
	h := NewHistogram(1e-6, 1.05)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("mismatched params", func() { h.Merge(NewHistogram(1e-3, 1.05)) })
	mustPanic("self merge", func() { h.Merge(h) })
}

// Welford.Merge must agree with direct observation to floating-point
// accuracy (Chan et al.'s parallel combination).
func TestWelfordMerge(t *testing.T) {
	var direct, a, b Welford
	for i := 0; i < 500; i++ {
		x := math.Sin(float64(i)) * 10
		direct.Observe(x)
		if i%2 == 0 {
			a.Observe(x)
		} else {
			b.Observe(x)
		}
	}
	a.Merge(b)
	if a.Count() != direct.Count() {
		t.Fatalf("count %d != %d", a.Count(), direct.Count())
	}
	if math.Abs(a.Mean()-direct.Mean()) > 1e-12 {
		t.Fatalf("mean %v != %v", a.Mean(), direct.Mean())
	}
	if math.Abs(a.Var()-direct.Var()) > 1e-9 {
		t.Fatalf("var %v != %v", a.Var(), direct.Var())
	}
	if a.Min() != direct.Min() || a.Max() != direct.Max() {
		t.Fatalf("min/max %v/%v != %v/%v", a.Min(), a.Max(), direct.Min(), direct.Max())
	}
	// Merging into an empty accumulator copies; merging an empty one is a
	// no-op.
	var empty Welford
	empty.Merge(a)
	if empty.Count() != a.Count() || empty.Mean() != a.Mean() {
		t.Fatal("merge into empty should copy")
	}
	before := a
	a.Merge(Welford{})
	if a != before {
		t.Fatal("merging an empty accumulator should be a no-op")
	}
}

// The one-entry bucket cache in Observe is an optimization only: samples fed
// in a cache-friendly (clustered) order must produce exactly the same buckets
// and quantiles as the same samples in a cache-hostile (shuffled) order, and
// as a per-sample comparison against fresh histograms that never hit the
// cache. Boundary samples sit exactly on bucket edges (base*growth^k), the
// worst case for the guard band.
func TestHistogramObserveCacheExact(t *testing.T) {
	const base, growth = 1e-6, 1.05
	var samples []float64
	// Clustered runs, as latency samples arrive in practice.
	for c := 0; c < 50; c++ {
		center := 1e-5 * math.Pow(1.7, float64(c%13))
		for i := 0; i < 40; i++ {
			samples = append(samples, center*(1+1e-4*float64(i)))
		}
	}
	// Exact bucket boundaries and their immediate neighborhoods.
	for k := -2; k < 40; k++ {
		edge := base * math.Pow(growth, float64(k))
		samples = append(samples, edge, math.Nextafter(edge, 0), math.Nextafter(edge, math.Inf(1)))
	}

	clustered := NewHistogram(base, growth)
	for _, x := range samples {
		// A fresh histogram per sample can never hit the cache: its bucket
		// choice is the exact log-formula answer.
		fresh := NewHistogram(base, growth)
		fresh.Observe(x)
		clustered.Observe(x)
		for i, c := range fresh.buckets {
			if c != 1 {
				t.Fatalf("fresh histogram bucket %d count %d", i, c)
			}
			if clustered.buckets[i] == 0 {
				t.Fatalf("sample %g: cached path chose a different bucket than exact path (%d)", x, i)
			}
		}
	}

	shuffled := NewHistogram(base, growth)
	perm := make([]float64, len(samples))
	copy(perm, samples)
	for i := len(perm) - 1; i > 0; i-- {
		j := (i * 7919) % (i + 1) // deterministic shuffle
		perm[i], perm[j] = perm[j], perm[i]
	}
	for _, x := range perm {
		shuffled.Observe(x)
	}
	if len(clustered.buckets) != len(shuffled.buckets) {
		t.Fatalf("bucket sets differ: %d vs %d", len(clustered.buckets), len(shuffled.buckets))
	}
	for i, c := range clustered.buckets {
		if shuffled.buckets[i] != c {
			t.Fatalf("bucket %d: clustered %d != shuffled %d", i, c, shuffled.buckets[i])
		}
	}
	cs, ss := clustered.Snapshot(), shuffled.Snapshot()
	if cs != ss {
		t.Fatalf("snapshots diverged: %+v != %+v", cs, ss)
	}
}

// BenchmarkHistogramObserve measures the clustered-sample case the bucket
// cache targets: long runs of near-identical latencies.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(1e-9, 1.05)
	samples := make([]float64, 1024)
	for i := range samples {
		// Three clusters, long runs within each.
		center := 1e-4 * math.Pow(10, float64((i/341)%3))
		samples[i] = center * (1 + 1e-5*float64(i%341))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(samples[i%len(samples)])
	}
}
