// Package metrics provides the measurement primitives used by the simulator:
// atomic counters, Welford mean/variance accumulators, log-bucketed
// histograms with percentile queries, and a registry that renders snapshots.
// All types are safe for concurrent use unless noted otherwise.
//
// Sharded use: rather than sharing one accumulator across workers, give each
// worker of a parallel sweep its own Histogram/Welford and combine them
// after the barrier with Merge. Merging is exact for Count, Mean, Sum, Max
// and bucket counts — a merged histogram answers quantile queries exactly as
// if every sample had been observed by a single accumulator — so sharding
// changes no reported number, only the synchronization cost.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n may not be negative).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: Counter.Add with negative delta")
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(nv)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Welford accumulates running mean and variance without storing samples.
// It is not safe for concurrent use; wrap with a mutex or shard per goroutine.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Observe adds a sample.
func (w *Welford) Observe(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Merge folds another accumulator's samples into w (Chan et al.'s parallel
// update), as if w had observed every sample o did. o is unchanged.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n = n
}

// Count returns the number of samples.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the sample mean (0 if empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 for n < 2).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest observed sample (0 if empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observed sample (0 if empty).
func (w *Welford) Max() float64 { return w.max }

// Histogram is a log-bucketed histogram of non-negative float samples.
// Bucket i covers [base*growth^i, base*growth^(i+1)). It answers approximate
// percentile queries with relative error bounded by the growth factor.
type Histogram struct {
	mu      sync.Mutex
	base    float64       // immutable after NewHistogram
	logG    float64       // immutable after NewHistogram
	buckets map[int]int64 // guarded by mu
	zero    int64         // samples below base; guarded by mu
	count   int64         // guarded by mu
	sum     float64       // guarded by mu
	max     float64       // guarded by mu

	// One-entry bucket cache: latency samples cluster, so consecutive
	// observations usually land in the bucket of the previous one. lastLo/
	// lastHi are that bucket's bounds shrunk by a guard band, so any sample
	// the fast path accepts is far enough from a boundary that the exact
	// log-formula index is unambiguous; boundary-adjacent samples miss the
	// cache and take the exact path. Bucketing is bit-identical either way.
	lastValid      bool    // guarded by mu
	lastIdx        int     // guarded by mu
	lastLo, lastHi float64 // guarded by mu
}

// NewHistogram creates a histogram with the given smallest resolvable value
// and per-bucket growth factor (e.g. 1.1 for 10% resolution).
func NewHistogram(base, growth float64) *Histogram {
	if base <= 0 || growth <= 1 {
		panic("metrics: invalid histogram parameters")
	}
	return &Histogram{base: base, logG: math.Log(growth), buckets: make(map[int]int64)}
}

// Observe adds a sample; negative samples panic.
func (h *Histogram) Observe(x float64) {
	if x < 0 || math.IsNaN(x) {
		panic(fmt.Sprintf("metrics: invalid histogram sample %v", x))
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += x
	if x > h.max {
		h.max = x
	}
	if x < h.base {
		h.zero++
		return
	}
	if h.lastValid && x >= h.lastLo && x < h.lastHi {
		h.buckets[h.lastIdx]++
		return
	}
	i := int(math.Floor(math.Log(x/h.base) / h.logG))
	h.buckets[i]++
	// Cache this bucket's bounds for the next sample, pulled inward by a
	// guard band several orders of magnitude wider than the rounding error
	// of exp/log, so the fast-path test never claims a sample the exact
	// formula could assign to a neighboring bucket.
	const guard = 1 + 1e-12
	h.lastValid = true
	h.lastIdx = i
	h.lastLo = h.base * math.Exp(float64(i)*h.logG) * guard
	h.lastHi = h.base * math.Exp(float64(i+1)*h.logG) / guard
}

// Merge folds other's samples into h, exactly as if h had observed every
// sample other did: counts, sums, maxima, and per-bucket tallies all add.
// This is the combine step for per-worker (sharded) histograms after a
// parallel sweep's barrier. Both histograms must share base and growth
// parameters; merging a histogram into itself is a programming error.
// other is left unchanged and may be used concurrently.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	if other == h {
		panic("metrics: Histogram.Merge with itself")
	}
	// base and logG are immutable after construction: safe to compare
	// without other's lock.
	if other.base != h.base || other.logG != h.logG {
		panic("metrics: merging histograms with different parameters")
	}
	// Copy other's state out under its own lock, then fold in under h's;
	// never hold both locks at once.
	other.mu.Lock()
	zero, count, sum, max := other.zero, other.count, other.sum, other.max
	buckets := make(map[int]int64, len(other.buckets))
	for i, c := range other.buckets {
		buckets[i] = c
	}
	other.mu.Unlock()

	h.mu.Lock()
	defer h.mu.Unlock()
	h.zero += zero
	h.count += count
	h.sum += sum
	if max > h.max {
		h.max = max
	}
	for i, c := range buckets {
		h.buckets[i] += c
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the exact mean of the observed samples.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Max returns the exact maximum of the observed samples.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns an approximation of the q-th quantile (q in [0,1]).
// It returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic("metrics: quantile out of range")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.count)))
	if target <= h.zero {
		return 0
	}
	seen := h.zero
	idx := make([]int, 0, len(h.buckets))
	for i := range h.buckets {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	for _, i := range idx {
		seen += h.buckets[i]
		if seen >= target {
			// Return the geometric midpoint of the bucket.
			lo := h.base * math.Exp(float64(i)*h.logG)
			hi := lo * math.Exp(h.logG)
			return math.Sqrt(lo * hi)
		}
	}
	return h.max
}

// Snapshot captures commonly reported statistics.
type Snapshot struct {
	Count          int64
	Mean, P50      float64
	P90, P99, P999 float64
	Max            float64
}

// Snapshot returns the current statistics.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.Max(),
	}
}

// Registry is a named collection of metrics for bulk reporting.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter   // guarded by mu
	gauges     map[string]*Gauge     // guarded by mu
	histograms map[string]*Histogram // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram with default
// parameters (base 1e-9, 5% buckets) suitable for latencies in seconds.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(1e-9, 1.05)
		r.histograms[name] = h
	}
	return h
}

// WriteText renders every metric as one flat numeric sample per line in the
// Prometheus text exposition style — counters and gauges as `name value`,
// histograms exploded into `name{q="0.5"}` quantile samples plus `_count`,
// `_mean`, and `_max` — in deterministic (sorted) order, so two snapshots of
// identical state render byte-identically and scrapes diff cleanly.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var err error
	emit := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		emit("%s %d\n", n, r.counters[n].Value())
	}
	names = names[:0]
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		emit("%s %g\n", n, r.gauges[n].Value())
	}
	names = names[:0]
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s := r.histograms[n].Snapshot()
		emit("%s{q=\"0.5\"} %g\n", n, s.P50)
		emit("%s{q=\"0.9\"} %g\n", n, s.P90)
		emit("%s{q=\"0.99\"} %g\n", n, s.P99)
		emit("%s{q=\"0.999\"} %g\n", n, s.P999)
		emit("%s_count %d\n", n, s.Count)
		emit("%s_mean %g\n", n, s.Mean)
		emit("%s_max %g\n", n, s.Max)
	}
	return err
}

// ServeHTTP exposes the registry as a text /metrics endpoint (WriteText's
// format), making a *Registry mountable directly on an HTTP mux.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := r.WriteText(w); err != nil {
		// The response is already streaming; nothing useful to send.
		return
	}
}

// Each calls fn for every metric in deterministic (sorted) order with a
// one-line rendering of its value.
func (r *Registry) Each(fn func(name, value string)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for n := range r.counters {
		names = append(names, "c:"+n)
	}
	for n := range r.gauges {
		names = append(names, "g:"+n)
	}
	for n := range r.histograms {
		names = append(names, "h:"+n)
	}
	sort.Strings(names)
	for _, tagged := range names {
		kind, n := tagged[:1], tagged[2:]
		switch kind {
		case "c":
			fn(n, fmt.Sprintf("%d", r.counters[n].Value()))
		case "g":
			fn(n, fmt.Sprintf("%g", r.gauges[n].Value()))
		case "h":
			s := r.histograms[n].Snapshot()
			fn(n, fmt.Sprintf("n=%d mean=%.4g p50=%.4g p99=%.4g max=%.4g",
				s.Count, s.Mean, s.P50, s.P99, s.Max))
		}
	}
}
