package tier

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"mrm/internal/core"
	"mrm/internal/fault"
	"mrm/internal/memdev"
	"mrm/internal/units"
)

// compareManagerPutTwins drives seq with serial Puts (stopping at the first
// error) and bat with one PutBatch over the same metas, then requires
// identical done counts, errors, ids, latencies, tier choices, id-allocation
// state, free space, backend traffic, and backend energy.
func compareManagerPutTwins(t *testing.T, label string, seq, bat *Manager, metas []Meta) (int, error) {
	t.Helper()
	seqIDs := make([]ObjectID, len(metas))
	seqLats := make([]time.Duration, len(metas))
	seqTiers := make([]int, len(metas))
	seqDone, seqErr := len(metas), error(nil)
	for i, meta := range metas {
		id, lat, err := seq.Put(meta)
		if err != nil {
			seqDone, seqErr = i, err
			break
		}
		ti, err := seq.TierOf(id)
		if err != nil {
			t.Fatalf("%s: TierOf(%d): %v", label, id, err)
		}
		seqIDs[i], seqLats[i], seqTiers[i] = id, lat, ti
	}
	batIDs := make([]ObjectID, len(metas))
	batLats := make([]time.Duration, len(metas))
	batTiers := make([]int, len(metas))
	batDone, batErr := bat.PutBatch(metas, batIDs, batLats, batTiers)
	if batDone != seqDone {
		t.Fatalf("%s: done %d != sequential %d (err %v vs %v)", label, batDone, seqDone, batErr, seqErr)
	}
	if (batErr == nil) != (seqErr == nil) ||
		(batErr != nil && batErr.Error() != seqErr.Error()) {
		t.Fatalf("%s: err %q != sequential %q", label, batErr, seqErr)
	}
	for i := 0; i < seqDone; i++ {
		if batIDs[i] != seqIDs[i] || batLats[i] != seqLats[i] || batTiers[i] != seqTiers[i] {
			t.Fatalf("%s obj %d: (id %d, lat %v, tier %d) != sequential (id %d, lat %v, tier %d)",
				label, i, batIDs[i], batLats[i], batTiers[i], seqIDs[i], seqLats[i], seqTiers[i])
		}
	}
	if seq.nextID != bat.nextID {
		t.Fatalf("%s: nextID diverged: %d != %d", label, seq.nextID, bat.nextID)
	}
	if sn, bn := seq.NumObjects(), bat.NumObjects(); sn != bn {
		t.Fatalf("%s: object count diverged: %d != %d", label, sn, bn)
	}
	si, bi := seq.Tiers(), bat.Tiers()
	for ti := range si {
		if si[ti].Free != bi[ti].Free {
			t.Fatalf("%s tier %d: free %v != sequential %v", label, ti, bi[ti].Free, si[ti].Free)
		}
		sr, sw := seq.tiers[ti].Traffic()
		br, bw := bat.tiers[ti].Traffic()
		if sr != br || sw != bw {
			t.Fatalf("%s tier %d: traffic (%v,%v) != (%v,%v)", label, ti, br, bw, sr, sw)
		}
		if se, be := seq.tiers[ti].Energy(), bat.tiers[ti].Energy(); se != be {
			t.Fatalf("%s tier %d: energy %v != sequential %v", label, ti, be, se)
		}
	}
	return batDone, batErr
}

// twinPutManagers builds two identical HBM+MRM managers for write-path twin
// tests: a small HBM tier that fills quickly so batches straddle tiers, and a
// larger MRM tier behind it.
func twinPutManagers(t *testing.T, policy Policy, hbmCap units.Bytes) (*Manager, *Manager) {
	t.Helper()
	mk := func() *Manager {
		m, err := NewManager(policy, smallHBM(t, hbmCap), smallMRMTier(t, units.GiB))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	return mk(), mk()
}

func kvMeta(size units.Bytes) Meta {
	return Meta{Kind: core.KindKVCache, Size: size, Lifetime: time.Hour}
}

// TestManagerPutBatchMatchesPuts covers the clean path and validation
// failures: single-tier runs, batches whose placements straddle tiers (run
// splits), mixed data kinds (MRM-side write-option run splits), zero-size
// objects mid-batch, and batches that run every tier out of room.
func TestManagerPutBatchMatchesPuts(t *testing.T) {
	cases := []struct {
		name  string
		metas []Meta
	}{
		{"single", []Meta{kvMeta(512 * units.KiB)}},
		{"one-tier-run", []Meta{kvMeta(256 * units.KiB), kvMeta(256 * units.KiB), kvMeta(256 * units.KiB)}},
		{"straddles-tiers", []Meta{
			kvMeta(512 * units.KiB), kvMeta(8 * units.MiB),
			kvMeta(512 * units.KiB), kvMeta(8 * units.MiB),
		}},
		{"mixed-kinds", []Meta{
			{Kind: core.KindWeights, Size: 8 * units.MiB, Lifetime: 24 * time.Hour},
			{Kind: core.KindKVCache, Size: 8 * units.MiB, Lifetime: time.Hour},
			{Kind: core.KindKVCache, Size: 8 * units.MiB, Lifetime: 2 * time.Hour},
			{Kind: core.KindWeights, Size: 8 * units.MiB, Lifetime: 24 * time.Hour},
		}},
		{"zero-size-mid-batch", []Meta{kvMeta(512 * units.KiB), kvMeta(0), kvMeta(512 * units.KiB)}},
		{"zero-size-first", []Meta{kvMeta(0), kvMeta(512 * units.KiB)}},
		{"no-tier-fits", []Meta{kvMeta(512 * units.KiB), kvMeta(4 * units.GiB), kvMeta(512 * units.KiB)}},
	}
	for _, tc := range cases {
		seq, bat := twinPutManagers(t, StaticPolicy{}, 4*units.MiB)
		comparePutTwinsBothWays(t, tc.name, seq, bat, tc.metas)
	}
}

// comparePutTwinsBothWays runs the twin comparison and then a follow-up
// single Put on each manager, so divergence that only shows up in later
// behavior (free-list shape, id allocation) is caught too.
func comparePutTwinsBothWays(t *testing.T, label string, seq, bat *Manager, metas []Meta) {
	t.Helper()
	compareManagerPutTwins(t, label, seq, bat, metas)
	compareManagerPutTwins(t, label+"/followup", seq, bat, []Meta{kvMeta(128 * units.KiB)})
}

// TestManagerPutBatchRetentionAware repeats the twin check under the
// retention-aware policy, whose placements depend on kind and lifetime.
func TestManagerPutBatchRetentionAware(t *testing.T) {
	metas := []Meta{
		{Kind: core.KindWeights, Size: 16 * units.MiB, Lifetime: 30 * 24 * time.Hour},
		{Kind: core.KindActivation, Size: 512 * units.KiB, Lifetime: time.Millisecond},
		{Kind: core.KindKVCache, Size: 4 * units.MiB, Lifetime: time.Hour},
		{Kind: core.KindActivation, Size: 512 * units.KiB, Lifetime: time.Millisecond},
		{Kind: core.KindKVCache, Size: 4 * units.MiB, Lifetime: 90 * 24 * time.Hour},
	}
	seq, bat := twinPutManagers(t, RetentionAwarePolicy{}, 64*units.MiB)
	comparePutTwinsBothWays(t, "retention-aware", seq, bat, metas)
}

// TestManagerPutBatchUnderWriteFaults is the manager-level write-fault
// equivalence gate: with program failures armed on every backend, serial Put
// and PutBatch twins must surface the error at the same object index with
// identical accounting and identical residual state — across many random
// rounds interleaved with Ticks.
func TestManagerPutBatchUnderWriteFaults(t *testing.T) {
	seq, bat := twinPutManagers(t, StaticPolicy{}, 32*units.MiB)
	faults := memdev.FaultConfig{Seed: 17, WriteFaultRate: 0.1}
	for _, m := range []*Manager{seq, bat} {
		for _, b := range m.Backends() {
			b.(Faultable).SetFaults(faults)
		}
	}
	rng := rand.New(rand.NewSource(9))
	sawFault := false
	for round := 0; round < 50; round++ {
		n := 1 + rng.Intn(6)
		metas := make([]Meta, n)
		for i := range metas {
			metas[i] = kvMeta(units.Bytes(1+rng.Intn(16)) * 256 * units.KiB)
		}
		if _, err := compareManagerPutTwins(t, "round", seq, bat, metas); errors.Is(err, fault.ErrUncorrectable) {
			sawFault = true
		}
		dt := time.Duration(rng.Int63n(int64(time.Minute)))
		if err := seq.Tick(dt); err != nil {
			t.Fatal(err)
		}
		if err := bat.Tick(dt); err != nil {
			t.Fatal(err)
		}
	}
	if !sawFault {
		t.Fatal("fault rate never fired; the equivalence test exercised nothing")
	}
}

// TestDeviceTierPutBatchRewindsFreeList pins the device-error rollback: after
// a mid-batch program failure, the free list, free-byte count, and id space
// must match a serial caller's exactly — including the failing Put's
// allocation, which the serial path leaves carved out.
func TestDeviceTierPutBatchRewindsFreeList(t *testing.T) {
	faults := memdev.FaultConfig{Seed: 3, WriteFaultRate: 0.2}
	rng := rand.New(rand.NewSource(31))
	for round := 0; round < 40; round++ {
		seq := smallHBM(t, 64*units.MiB)
		bat := smallHBM(t, 64*units.MiB)
		seq.SetFaults(faults)
		bat.SetFaults(faults)
		n := 1 + rng.Intn(8)
		metas := make([]Meta, n)
		for i := range metas {
			metas[i] = kvMeta(units.Bytes(1+rng.Intn(8)) * units.MiB)
		}
		seqDone, seqErr := n, error(nil)
		for i, m := range metas {
			if _, _, err := seq.Put(m); err != nil {
				seqDone, seqErr = i, err
				break
			}
		}
		handles := make([]uint64, n)
		lats := make([]time.Duration, n)
		batDone, batErr := bat.PutBatch(metas, handles, lats)
		if batDone != seqDone {
			t.Fatalf("round %d: done %d != sequential %d", round, batDone, seqDone)
		}
		if (batErr == nil) != (seqErr == nil) ||
			(batErr != nil && batErr.Error() != seqErr.Error()) {
			t.Fatalf("round %d: err %q != sequential %q", round, batErr, seqErr)
		}
		if len(seq.free) != len(bat.free) {
			t.Fatalf("round %d: free-list length %d != sequential %d", round, len(bat.free), len(seq.free))
		}
		for i := range seq.free {
			if seq.free[i] != bat.free[i] {
				t.Fatalf("round %d free[%d]: %+v != sequential %+v", round, i, bat.free[i], seq.free[i])
			}
		}
		if seq.freeB != bat.freeB || seq.nextID != bat.nextID {
			t.Fatalf("round %d: (freeB %v, nextID %d) != sequential (%v, %d)",
				round, bat.freeB, bat.nextID, seq.freeB, seq.nextID)
		}
		if ss, bs := seq.dev.Stats(), bat.dev.Stats(); ss != bs {
			t.Fatalf("round %d: device stats %+v != sequential %+v", round, bs, ss)
		}
	}
}

func TestManagerPutBatchShortSlices(t *testing.T) {
	m, _ := twinPutManagers(t, StaticPolicy{}, 4*units.MiB)
	metas := []Meta{kvMeta(units.KiB), kvMeta(units.KiB)}
	if _, err := m.PutBatch(metas, make([]ObjectID, 1), make([]time.Duration, 2), make([]int, 2)); err == nil {
		t.Fatal("want error for short ids slice")
	}
	if _, err := m.PutBatch(metas, make([]ObjectID, 2), make([]time.Duration, 1), make([]int, 2)); err == nil {
		t.Fatal("want error for short lats slice")
	}
	if _, err := m.PutBatch(metas, make([]ObjectID, 2), make([]time.Duration, 2), make([]int, 1)); err == nil {
		t.Fatal("want error for short tiers slice")
	}
	if done, err := m.PutBatch(nil, nil, nil, nil); done != 0 || err != nil {
		t.Fatalf("empty batch: (%d, %v), want (0, nil)", done, err)
	}
}
