package tier

import (
	"testing"
	"testing/quick"
	"time"

	"mrm/internal/core"
	"mrm/internal/memdev"
	"mrm/internal/units"
)

func smallHBM(t *testing.T, capacity units.Bytes) *DeviceTier {
	t.Helper()
	spec := memdev.HBM3E
	spec.Capacity = capacity
	d, err := NewDeviceTier("hbm", spec)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func smallLPDDR(t *testing.T, capacity units.Bytes) *DeviceTier {
	t.Helper()
	spec := memdev.LPDDR5X
	spec.Capacity = capacity
	d, err := NewDeviceTier("lpddr", spec)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func smallMRMTier(t *testing.T, capacity units.Bytes) *MRMTier {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Capacity = capacity
	cfg.ZoneSize = 16 * units.MiB
	m, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return NewMRMTier("mrm", m)
}

func TestDeviceTierPutGetDelete(t *testing.T) {
	d := smallHBM(t, units.GiB)
	h, lat, err := d.Put(Meta{Kind: core.KindWeights, Size: 64 * units.MiB})
	if err != nil || lat <= 0 {
		t.Fatalf("Put: %v, lat %v", err, lat)
	}
	if _, err := d.Get(h); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(h); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get(h); err == nil {
		t.Fatal("deleted handle should fail")
	}
	if err := d.Delete(h); err == nil {
		t.Fatal("double delete should fail")
	}
	if _, _, err := d.Put(Meta{Size: 0}); err == nil {
		t.Fatal("zero-size should fail")
	}
}

func TestDeviceTierAllocatorCoalesces(t *testing.T) {
	d := smallHBM(t, 100*units.MiB)
	var hs []uint64
	for i := 0; i < 4; i++ {
		h, _, err := d.Put(Meta{Size: 25 * units.MiB})
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	if _, _, err := d.Put(Meta{Size: units.MiB}); err == nil {
		t.Fatal("tier should be full")
	}
	// Free two adjacent middle blocks, then allocate one 50 MiB object:
	// only possible if spans coalesced.
	if err := d.Delete(hs[1]); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(hs[2]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Put(Meta{Size: 50 * units.MiB}); err != nil {
		t.Fatalf("coalesced alloc failed: %v", err)
	}
}

func TestDeviceTierInfoAndTraffic(t *testing.T) {
	d := smallHBM(t, units.GiB)
	info := d.Info()
	if info.Free != units.GiB || info.Managed {
		t.Fatalf("info = %+v", info)
	}
	h, _, _ := d.Put(Meta{Size: units.MiB})
	_, _ = d.Get(h)
	r, w := d.Traffic()
	if r != units.MiB || w != units.MiB {
		t.Fatalf("traffic = %v/%v", r, w)
	}
	if err := d.Tick(time.Second); err != nil {
		t.Fatal(err)
	}
	if d.Energy() <= 0 {
		t.Fatal("energy should accrue")
	}
}

func TestMRMTierRoundTrip(t *testing.T) {
	mt := smallMRMTier(t, units.GiB)
	h, lat, err := mt.Put(Meta{Kind: core.KindKVCache, Size: units.MiB, Lifetime: time.Hour})
	if err != nil || lat <= 0 {
		t.Fatalf("Put: %v", err)
	}
	if _, err := mt.Get(h); err != nil {
		t.Fatal(err)
	}
	info := mt.Info()
	if !info.Managed || info.MaxRetention != 7*24*time.Hour {
		t.Fatalf("info = %+v", info)
	}
	if err := mt.Delete(h); err != nil {
		t.Fatal(err)
	}
	if mt.MRM() == nil {
		t.Fatal("MRM accessor nil")
	}
}

func TestMRMTierSoftStateExpires(t *testing.T) {
	mt := smallMRMTier(t, units.GiB)
	h, _, err := mt.Put(Meta{Kind: core.KindKVCache, Size: units.MiB, Lifetime: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if err := mt.Tick(time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := mt.Get(h); err == nil {
		t.Fatal("expired KV should not be readable")
	}
	// Weights use PolicyRefresh and survive.
	h2, _, err := mt.Put(Meta{Kind: core.KindWeights, Size: units.MiB, Lifetime: 30 * 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := mt.Tick(24 * time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := mt.Get(h2); err != nil {
		t.Fatalf("weights should survive via refresh: %v", err)
	}
}

func TestStaticPolicyFillsFastestFirst(t *testing.T) {
	tiers := []Info{
		{Index: 0, Name: "lpddr", Free: units.GiB, ReadBW: 68 * units.GBps},
		{Index: 1, Name: "hbm", Free: units.GiB, ReadBW: 8 * units.TBps},
	}
	idx, err := StaticPolicy{}.Place(Meta{Size: units.MiB}, tiers)
	if err != nil || idx != 1 {
		t.Fatalf("static placed in %d, want 1 (hbm)", idx)
	}
	// Overflow to the slower tier.
	tiers[1].Free = 0
	idx, err = StaticPolicy{}.Place(Meta{Size: units.MiB}, tiers)
	if err != nil || idx != 0 {
		t.Fatalf("overflow placed in %d, want 0", idx)
	}
	tiers[0].Free = 0
	if _, err := (StaticPolicy{}).Place(Meta{Size: units.MiB}, tiers); err == nil {
		t.Fatal("no space should error")
	}
	if (StaticPolicy{}).Name() == "" || (RetentionAwarePolicy{}).Name() == "" {
		t.Fatal("policies need names")
	}
}

func TestRetentionAwarePlacement(t *testing.T) {
	tiers := []Info{
		{Index: 0, Name: "hbm", Free: units.GiB, ReadBW: 8 * units.TBps, ReadEnergyPerBit: 3.9 * units.PicoJoule},
		{Index: 1, Name: "mrm", Free: units.GiB, ReadBW: 9 * units.TBps, ReadEnergyPerBit: units.PicoJoule, Managed: true, MaxRetention: 7 * 24 * time.Hour},
		{Index: 2, Name: "lpddr", Free: units.GiB, ReadBW: 68 * units.GBps, ReadEnergyPerBit: 6 * units.PicoJoule},
	}
	p := RetentionAwarePolicy{}
	// Activations stay in HBM.
	idx, err := p.Place(Meta{Kind: core.KindActivation, Size: units.MiB, Lifetime: time.Second}, tiers)
	if err != nil || idx != 0 {
		t.Fatalf("activation -> %d, want 0 (hbm)", idx)
	}
	// Read-hot KV within retention goes to MRM.
	idx, err = p.Place(Meta{Kind: core.KindKVCache, Size: units.MiB, Lifetime: time.Hour, ReadHot: true}, tiers)
	if err != nil || idx != 1 {
		t.Fatalf("hot KV -> %d, want 1 (mrm)", idx)
	}
	// Weights (long-lived but within managed max retention via refresh
	// policy: lifetime above max retention overflows to HBM first).
	idx, err = p.Place(Meta{Kind: core.KindWeights, Size: units.MiB, Lifetime: 24 * time.Hour, ReadHot: true}, tiers)
	if err != nil || idx != 1 {
		t.Fatalf("weights -> %d, want 1 (mrm)", idx)
	}
	// MRM full: falls back to HBM.
	tiers[1].Free = 0
	idx, err = p.Place(Meta{Kind: core.KindKVCache, Size: units.MiB, Lifetime: time.Hour, ReadHot: true}, tiers)
	if err != nil || idx != 0 {
		t.Fatalf("overflow KV -> %d, want 0", idx)
	}
	// Everything full errors.
	tiers[0].Free, tiers[2].Free = 0, 0
	if _, err := p.Place(Meta{Size: units.MiB}, tiers); err == nil {
		t.Fatal("no space should error")
	}
}

func TestManagerEndToEnd(t *testing.T) {
	hbm := smallHBM(t, 256*units.MiB)
	mrmT := smallMRMTier(t, 256*units.MiB)
	lpddr := smallLPDDR(t, 256*units.MiB)
	m, err := NewManager(RetentionAwarePolicy{}, hbm, mrmT, lpddr)
	if err != nil {
		t.Fatal(err)
	}
	if m.Policy().Name() != "retention-aware" {
		t.Fatal("wrong policy")
	}
	id, lat, err := m.Put(Meta{Kind: core.KindKVCache, Size: 8 * units.MiB, Lifetime: time.Hour, ReadHot: true})
	if err != nil || lat <= 0 {
		t.Fatal(err)
	}
	tr, err := m.TierOf(id)
	if err != nil || tr != 1 {
		t.Fatalf("KV placed in tier %d, want 1 (mrm)", tr)
	}
	if _, from, err := m.Get(id); err != nil || from != 1 {
		t.Fatalf("Get from %d: %v", from, err)
	}
	if m.NumObjects() != 1 {
		t.Fatal("object count wrong")
	}
	// Migrate to LPDDR and read from there.
	if err := m.Migrate(id, 2); err != nil {
		t.Fatal(err)
	}
	if _, from, _ := m.Get(id); from != 2 {
		t.Fatalf("after migrate, read from %d", from)
	}
	// Migrate to same tier is a no-op.
	if err := m.Migrate(id, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.Migrate(id, 9); err == nil {
		t.Fatal("bad destination should error")
	}
	if err := m.Delete(id); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(id); err == nil {
		t.Fatal("double delete should error")
	}
	if err := m.Tick(time.Second); err != nil {
		t.Fatal(err)
	}
	if m.TotalEnergy() <= 0 {
		t.Fatal("energy should be positive after traffic + time")
	}
}

func TestManagerValidation(t *testing.T) {
	if _, err := NewManager(nil); err == nil {
		t.Fatal("nil policy should error")
	}
	if _, err := NewManager(StaticPolicy{}); err == nil {
		t.Fatal("no tiers should error")
	}
}

func TestManagerUnknownObject(t *testing.T) {
	hbm := smallHBM(t, units.GiB)
	m, _ := NewManager(StaticPolicy{}, hbm)
	if _, _, err := m.Get(42); err == nil {
		t.Error("unknown Get should error")
	}
	if _, err := m.TierOf(42); err == nil {
		t.Error("unknown TierOf should error")
	}
	if err := m.Migrate(42, 0); err == nil {
		t.Error("unknown Migrate should error")
	}
}

func TestManagerForget(t *testing.T) {
	mrmT := smallMRMTier(t, units.GiB)
	m, _ := NewManager(RetentionAwarePolicy{}, mrmT)
	id, _, err := m.Put(Meta{Kind: core.KindKVCache, Size: units.MiB, Lifetime: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	_ = m.Tick(time.Hour) // expires inside the MRM
	m.Forget(id)
	if m.NumObjects() != 0 {
		t.Fatal("Forget should drop the record")
	}
}

func TestManagerReseatMovesOffFailedTier(t *testing.T) {
	hbm := smallHBM(t, 256*units.MiB)
	lpddr := smallLPDDR(t, 256*units.MiB)
	m, err := NewManager(StaticPolicy{}, hbm, lpddr)
	if err != nil {
		t.Fatal(err)
	}
	// Static policy fills the fastest (HBM) tier first.
	id, _, err := m.Put(Meta{Kind: core.KindWeights, Size: 8 * units.MiB, Lifetime: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if tr, _ := m.TierOf(id); tr != 0 {
		t.Fatalf("placed in tier %d, want 0", tr)
	}
	lat, err := m.Reseat(id)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Fatal("reseat should cost a write")
	}
	// The failed tier is masked during re-placement, so the copy lands on
	// LPDDR — and the object keeps its identity.
	if tr, _ := m.TierOf(id); tr != 1 {
		t.Fatalf("reseated into tier %d, want 1", tr)
	}
	if _, from, err := m.Get(id); err != nil || from != 1 {
		t.Fatalf("Get after reseat: tier %d, err %v", from, err)
	}
	if m.Reseats() != 1 {
		t.Fatalf("Reseats = %d", m.Reseats())
	}
	if m.NumObjects() != 1 {
		t.Fatal("reseat must not leak or drop objects")
	}
}

func TestManagerReseatSingleTierRestoresInPlace(t *testing.T) {
	hbm := smallHBM(t, 256*units.MiB)
	m, _ := NewManager(StaticPolicy{}, hbm)
	id, _, err := m.Put(Meta{Kind: core.KindWeights, Size: 8 * units.MiB, Lifetime: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	// With nowhere else to go, the masked placement fails and Reseat falls
	// back to rewriting the same tier (restore from upstream durable copy).
	if _, err := m.Reseat(id); err != nil {
		t.Fatal(err)
	}
	if tr, _ := m.TierOf(id); tr != 0 {
		t.Fatalf("restored into tier %d, want 0", tr)
	}
	if _, _, err := m.Get(id); err != nil {
		t.Fatal(err)
	}
	if m.Reseats() != 1 {
		t.Fatalf("Reseats = %d", m.Reseats())
	}
}

func TestManagerReseatUnknownObject(t *testing.T) {
	hbm := smallHBM(t, units.GiB)
	m, _ := NewManager(StaticPolicy{}, hbm)
	if _, err := m.Reseat(42); err == nil {
		t.Fatal("unknown object should error")
	}
}

func TestReadTimeParallelTiers(t *testing.T) {
	hbm := smallHBM(t, units.GiB)     // 1 TB/s per stack spec
	lpddr := smallLPDDR(t, units.GiB) // 68 GB/s
	m, _ := NewManager(StaticPolicy{}, hbm, lpddr)
	// 1 GB from HBM (1ms) and 68 MB from LPDDR (1ms): parallel → ~1ms.
	d := m.ReadTime([]units.Bytes{1e9, 68e6})
	if d < 900*time.Microsecond || d > 1100*time.Microsecond {
		t.Fatalf("ReadTime = %v, want ~1ms", d)
	}
	if m.ReadTime(nil) != 0 {
		t.Fatal("empty read plan should take no time")
	}
}

// Property: the allocator never double-allocates and free space is conserved.
func TestAllocatorProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		spec := memdev.HBM3E
		spec.Capacity = 64 * units.MiB
		d, err := NewDeviceTier("t", spec)
		if err != nil {
			return false
		}
		var handles []uint64
		var used units.Bytes
		for _, op := range ops {
			if op%2 == 0 || len(handles) == 0 {
				size := units.Bytes(op%16+1) * units.MiB
				h, _, err := d.Put(Meta{Size: size})
				if err != nil {
					continue // full is fine
				}
				handles = append(handles, h)
				used += size
			} else {
				h := handles[len(handles)-1]
				handles = handles[:len(handles)-1]
				sz := d.objects[h].size
				if err := d.Delete(h); err != nil {
					return false
				}
				used -= sz
			}
			if d.Info().Free != spec.Capacity-used {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
