package tier

import (
	"errors"
	"testing"
	"time"

	"mrm/internal/core"
	"mrm/internal/units"
)

// planOf builds a ReadPlan over the given ids, failing the test on any
// append error.
func planOf(t *testing.T, m *Manager, ids []ObjectID) *ReadPlan {
	t.Helper()
	var p ReadPlan
	for _, id := range ids {
		if err := m.PlanAppend(&p, id); err != nil {
			t.Fatalf("PlanAppend(%d): %v", id, err)
		}
	}
	return &p
}

// checkTwins compares the two managers' per-tier read accounting and backend
// traffic, the state GetPlanned must keep bit-identical to GetBatch.
func checkTwins(t *testing.T, label string, seq, pln *Manager) {
	t.Helper()
	for tier := range seq.tiers {
		if sr, pr := seq.perTierReads[tier], pln.perTierReads[tier]; sr != pr {
			t.Fatalf("%s tier %d: perTierReads %v != %v", label, tier, sr, pr)
		}
		sr, sw := seq.tiers[tier].Traffic()
		pr, pw := pln.tiers[tier].Traffic()
		if sr != pr || sw != pw {
			t.Fatalf("%s tier %d: traffic (%v,%v) != (%v,%v)", label, tier, sr, sw, pr, pw)
		}
		if se, pe := seq.tiers[tier].Energy(), pln.tiers[tier].Energy(); se != pe {
			t.Fatalf("%s tier %d: energy %v != %v", label, tier, se, pe)
		}
	}
}

// TestGetPlannedMatchesGetBatch drives one twin with GetBatch by id and the
// other with a pre-resolved ReadPlan over the same id sequences — singleton
// runs (alternating tiers), multi-object runs, repeated execution of one plan
// — and requires identical done counts, errors, per-tier accounting, and
// backend traffic. GetPlanned is the per-step read path under the serving
// simulator's event engine and must not change any number.
func TestGetPlannedMatchesGetBatch(t *testing.T) {
	seq, pln, ids := twinManagers(t)
	sequences := [][]ObjectID{
		ids,                                      // alternating tiers: every run is a singleton
		{ids[0], ids[2], ids[4]},                 // one 3-object device-tier run
		{ids[1], ids[3], ids[5]},                 // one 3-object MRM-tier run
		{ids[0], ids[2], ids[1], ids[3], ids[6]}, // mixed run lengths
		{ids[7]},
		{},
	}
	for si, seqIDs := range sequences {
		p := planOf(t, pln, seqIDs)
		// Execute the same plan several times: planned reads are resolved once
		// and replayed every decode step.
		for rep := 0; rep < 3; rep++ {
			seqDone, seqErr := seq.GetBatch(seqIDs)
			plnDone, plnErr := pln.GetPlanned(p)
			if plnDone != seqDone {
				t.Fatalf("seq %d rep %d: done %d != by-id %d", si, rep, plnDone, seqDone)
			}
			if (plnErr == nil) != (seqErr == nil) ||
				(plnErr != nil && plnErr.Error() != seqErr.Error()) {
				t.Fatalf("seq %d rep %d: err %v != by-id %v", si, rep, plnErr, seqErr)
			}
			checkTwins(t, "after exec", seq, pln)
		}
	}
}

// TestGetPlannedObservesExpiry pins the expiry arm of the validity contract:
// a plan member on the MRM tier that expires after the plan was built must
// fail the planned read exactly as the by-id read fails — same error, same
// partial progress, same accounting for the earlier reads.
func TestGetPlannedObservesExpiry(t *testing.T) {
	seq, pln, ids := twinManagers(t)
	// ids alternate HBM/MRM; odd ids are MRM-backed KV pages (PolicyDrop,
	// 1h lifetime). Read [hbm, mrm, hbm] through a plan built now, then
	// expire the MRM page on both twins and read again.
	seqIDs := []ObjectID{ids[0], ids[1], ids[2]}
	p := planOf(t, pln, seqIDs)
	if err := seq.Tick(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := pln.Tick(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	seqDone, seqErr := seq.GetBatch(seqIDs)
	plnDone, plnErr := pln.GetPlanned(p)
	if seqErr == nil || !errors.Is(seqErr, core.ErrExpired) {
		t.Fatalf("setup: by-id read of expired page returned %v, want ErrExpired", seqErr)
	}
	if plnDone != seqDone {
		t.Fatalf("done %d != by-id %d", plnDone, seqDone)
	}
	if (plnErr == nil) || plnErr.Error() != seqErr.Error() {
		t.Fatalf("err %v != by-id %v", plnErr, seqErr)
	}
	checkTwins(t, "after expiry", seq, pln)
}

// TestPlanTruncateReset pins Truncate's run bookkeeping: truncating inside
// and at run boundaries leaves a plan equivalent to one built over the prefix,
// and Reset leaves an empty, reusable plan.
func TestPlanTruncateReset(t *testing.T) {
	seq, pln, ids := twinManagers(t)
	// [hbm, hbm, hbm, mrm, mrm]: two runs of lengths 3 and 2.
	seqIDs := []ObjectID{ids[0], ids[2], ids[4], ids[1], ids[3]}
	for _, cut := range []int{4, 3, 2, 0} {
		p := planOf(t, pln, seqIDs)
		p.Truncate(cut)
		if p.Len() != cut {
			t.Fatalf("Truncate(%d): len %d", cut, p.Len())
		}
		seqDone, seqErr := seq.GetBatch(seqIDs[:cut])
		plnDone, plnErr := pln.GetPlanned(p)
		if plnDone != seqDone || (plnErr == nil) != (seqErr == nil) {
			t.Fatalf("Truncate(%d): (%d, %v) != by-id (%d, %v)", cut, plnDone, plnErr, seqDone, seqErr)
		}
		checkTwins(t, "after truncate", seq, pln)
	}
	p := planOf(t, pln, seqIDs)
	p.Truncate(99) // beyond length: no-op
	if p.Len() != len(seqIDs) {
		t.Fatalf("Truncate beyond length changed len to %d", p.Len())
	}
	p.Reset()
	if p.Len() != 0 {
		t.Fatalf("Reset left %d entries", p.Len())
	}
	if n, err := pln.GetPlanned(p); n != 0 || err != nil {
		t.Fatalf("GetPlanned on reset plan = (%d, %v)", n, err)
	}
	// A reset plan must be rebuildable.
	p2 := p
	if err := pln.PlanAppend(p2, seqIDs[0]); err != nil {
		t.Fatal(err)
	}
	if p2.Len() != 1 {
		t.Fatalf("rebuild after reset: len %d", p2.Len())
	}
}

// TestPlanAppendErrors pins PlanAppend's error contract.
func TestPlanAppendErrors(t *testing.T) {
	_, pln, ids := twinManagers(t)
	var p ReadPlan
	if err := pln.PlanAppend(&p, ObjectID(9999)); err == nil {
		t.Fatal("append of unknown id succeeded")
	}
	if p.Len() != 0 {
		t.Fatalf("failed append grew the plan to %d", p.Len())
	}
	// An expired MRM object fails resolution with ErrExpired, like Get.
	if err := pln.Tick(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := pln.PlanAppend(&p, ids[1]); !errors.Is(err, core.ErrExpired) {
		t.Fatalf("append of expired object: err %v, want ErrExpired", err)
	}
}

// TestNextHousekeepingMatchesMRM pins that the manager surfaces its MRM
// tier's deadline and reports nothing when no tier has deadline-driven work.
func TestNextHousekeepingMatchesMRM(t *testing.T) {
	hbm := smallHBM(t, 64*units.MiB)
	m, err := NewManager(StaticPolicy{}, hbm)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.NextHousekeeping(); ok {
		t.Fatal("device-only manager reported housekeeping")
	}
	mrmT := smallMRMTier(t, units.GiB)
	m2, err := NewManager(RetentionAwarePolicy{}, hbm, mrmT)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m2.Put(Meta{Kind: core.KindKVCache, Size: units.MiB, Lifetime: time.Hour}); err != nil {
		t.Fatal(err)
	}
	at, ok := m2.NextHousekeeping()
	want, wok := mrmT.NextDeadline()
	if !ok || ok != wok || at != want {
		t.Fatalf("NextHousekeeping = (%v, %v), MRM reports (%v, %v)", at, ok, want, wok)
	}
}
