package tier

import (
	"testing"
	"time"

	"mrm/internal/core"
	"mrm/internal/units"
)

// twinManagers builds two identically-stocked two-tier managers whose
// objects alternate between tiers, so GetBatch must split the id list into
// per-tier runs.
func twinManagers(t *testing.T) (*Manager, *Manager, []ObjectID) {
	t.Helper()
	mk := func() (*Manager, []ObjectID) {
		hbm := smallHBM(t, 4*units.MiB)
		mrm := smallMRMTier(t, units.GiB)
		m, err := NewManager(StaticPolicy{}, hbm, mrm)
		if err != nil {
			t.Fatal(err)
		}
		var ids []ObjectID
		for i := 0; i < 12; i++ {
			// Small objects land on HBM; big ones overflow to the MRM tier,
			// so consecutive ids alternate tiers.
			meta := Meta{Kind: core.KindKVCache, Size: 512 * units.KiB, Lifetime: time.Hour}
			if i%2 == 1 {
				meta.Size = 8 * units.MiB
			}
			id, _, err := m.Put(meta)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		return m, ids
	}
	a, idsA := mk()
	b, idsB := mk()
	for i := range idsA {
		if idsA[i] != idsB[i] {
			t.Fatal("twin managers diverged during setup")
		}
		ta, _ := a.TierOf(idsA[i])
		tb, _ := b.TierOf(idsB[i])
		if ta != tb {
			t.Fatal("twin managers placed objects differently")
		}
	}
	return a, b, idsA
}

// TestManagerGetBatchMatchesGets compares GetBatch to a sequential Get loop
// on a twin manager: same per-tier read accounting, same backend traffic,
// same error behavior — including unknown ids mid-batch.
func TestManagerGetBatchMatchesGets(t *testing.T) {
	seq, bat, ids := twinManagers(t)
	batches := [][]ObjectID{
		ids,
		ids[2:7],
		{ids[0]},
		{ids[1], ObjectID(9999), ids[2]},
		{},
	}
	for bi, batch := range batches {
		seqDone, seqErr := len(batch), error(nil)
		for i, id := range batch {
			if _, _, err := seq.Get(id); err != nil {
				seqDone, seqErr = i, err
				break
			}
		}
		batDone, batErr := bat.GetBatch(batch)
		if batDone != seqDone {
			t.Fatalf("batch %d: done %d != sequential %d", bi, batDone, seqDone)
		}
		if (batErr == nil) != (seqErr == nil) ||
			(batErr != nil && batErr.Error() != seqErr.Error()) {
			t.Fatalf("batch %d: err %v != sequential %v", bi, batErr, seqErr)
		}
		for tier := range seq.tiers {
			if sr, br := seq.perTierReads[tier], bat.perTierReads[tier]; sr != br {
				t.Fatalf("batch %d tier %d: perTierReads %v != %v", bi, tier, sr, br)
			}
			sr, sw := seq.tiers[tier].Traffic()
			br, bw := bat.tiers[tier].Traffic()
			if sr != br || sw != bw {
				t.Fatalf("batch %d tier %d: traffic (%v,%v) != (%v,%v)", bi, tier, sr, sw, br, bw)
			}
		}
	}
}

// TestGetBatchRunGrouping checks that runs of same-tier objects actually
// take the batched backend path: a batch across N objects on one device
// tier must cost one device lock round but N logical reads.
func TestGetBatchRunGrouping(t *testing.T) {
	hbm := smallHBM(t, 64*units.MiB)
	m, err := NewManager(StaticPolicy{}, hbm)
	if err != nil {
		t.Fatal(err)
	}
	var ids []ObjectID
	for i := 0; i < 8; i++ {
		id, _, err := m.Put(Meta{Kind: core.KindKVCache, Size: units.MiB, Lifetime: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	n, err := m.GetBatch(ids)
	if err != nil || n != len(ids) {
		t.Fatalf("GetBatch = (%d, %v), want (%d, nil)", n, err, len(ids))
	}
	st := hbm.dev.Stats()
	if st.Reads != uint64(len(ids)) {
		t.Fatalf("device saw %d logical reads, want %d (one per object)", st.Reads, len(ids))
	}
	if st.ReadBytes != units.Bytes(len(ids))*units.MiB {
		t.Fatalf("device read %v bytes, want %v", st.ReadBytes, units.Bytes(len(ids))*units.MiB)
	}
}
