// Package tier implements the tiered-memory control plane of §4: a manager
// that places inference data structures (weights, KV pages, activations)
// across heterogeneous memory backends — HBM, MRM, LPDDR — according to a
// placement policy, tracks per-tier traffic and energy, and supports
// migration. The paper's claim under test (E7) is that retention-aware
// placement beats bandwidth-ordered static placement on tokens/joule at
// equal or better throughput.
package tier

import (
	"fmt"
	"sort"
	"time"

	"mrm/internal/core"
	"mrm/internal/memdev"
	"mrm/internal/units"
)

// ObjectID names an object across the tiered store.
type ObjectID uint64

// Meta describes an object for placement decisions.
type Meta struct {
	Kind     core.DataKind
	Size     units.Bytes
	Lifetime time.Duration
	// ReadHot marks data on the per-token read path (weights, live KV).
	ReadHot bool
}

// Info summarizes a tier for policies.
type Info struct {
	Index            int
	Name             string
	Capacity         units.Bytes
	Free             units.Bytes
	ReadBW           units.Bandwidth
	ReadEnergyPerBit units.Energy
	Managed          bool          // an MRM tier
	MaxRetention     time.Duration // longest retention class (managed only)
}

// Policy decides which tier an object lands in.
type Policy interface {
	Name() string
	// Place returns the index of the chosen tier, or an error if nothing
	// fits. tiers are presented in manager order.
	Place(m Meta, tiers []Info) (int, error)
}

// Backend is a memory tier implementation.
type Backend interface {
	Name() string
	Info() Info
	Put(m Meta) (handle uint64, lat time.Duration, err error)
	Get(handle uint64) (lat time.Duration, err error)
	Delete(handle uint64) error
	Tick(dt time.Duration) error
	// Energy returns total energy consumed so far.
	Energy() units.Energy
	// Traffic returns cumulative bytes read and written.
	Traffic() (read, written units.Bytes)
}

// Faultable is implemented by backends that support deterministic fault
// injection (internal/fault). Backends without it simply never fail.
type Faultable interface {
	SetFaults(memdev.FaultConfig)
}

// BERTunable is implemented by backends whose device exposes the read-path
// BER-scan switch (memdev.Device.SetBERTracking). Callers that never consume
// raw-BER results (the serving simulator) turn the scan off; fault behavior
// is unchanged because an armed ECC budget forces the scan regardless.
type BERTunable interface {
	SetBERTracking(on bool)
}

// BatchGetter is implemented by backends that can coalesce a sequence of Gets
// into one vectored device access. The contract is strict sequential
// equivalence: GetBatch(handles) must perform exactly the validation, device
// reads, fault events, and accounting of calling Get(h) for each handle in
// order and stopping at the first error. It returns the number of handles
// read in full and the error the first-failing Get would have returned.
type BatchGetter interface {
	GetBatch(handles []uint64) (int, error)
}

// SpanGetter is implemented by backends whose objects resolve to fixed device
// spans (DeviceTier), letting planned readers skip the per-read handle lookup.
// GetSpans must perform exactly the device reads, fault events, and accounting
// of calling Get on the handles the spans were resolved from, in order,
// stopping at the first error. A resolved span is valid until its object is
// deleted.
type SpanGetter interface {
	ResolveSpan(handle uint64) (memdev.Span, error)
	GetSpans(spans []memdev.Span) (int, error)
}

// RefGetter is implemented by backends whose objects live behind a control
// plane that relocates extents (MRMTier): the resolved reference is stable
// across refresh-driven moves, and reads through it observe expiry exactly
// like reads by handle. GetRefs carries GetBatch's strict sequential
// equivalence, minus the id lookups.
type RefGetter interface {
	ResolveRef(handle uint64) (core.ObjRef, error)
	GetRefs(refs []core.ObjRef) (int, error)
}

// Housekeeper is implemented by backends with deadline-driven housekeeping
// (MRM refresh/expiry). NextDeadline reports the earliest simulated time at
// which the backend's Tick would act on a deadline, letting a discrete-event
// driver jump idle windows without missing scrub or retention work.
type Housekeeper interface {
	NextDeadline() (time.Duration, bool)
}

// BatchPutter is implemented by backends that can coalesce a sequence of Puts
// into one vectored device access. The contract mirrors BatchGetter on the
// write side: PutBatch(metas, ...) must perform exactly the validation,
// allocation decisions, device writes, fault events, and accounting of calling
// Put(m) for each meta in order and stopping at the first error — including
// any partial state a failed serial Put leaves behind. handles[i] and lats[i]
// (both slices at least len(metas) long) receive object i's backend handle and
// write latency. It returns the number of objects fully stored and the error
// the first-failing Put would have returned.
type BatchPutter interface {
	PutBatch(metas []Meta, handles []uint64, lats []time.Duration) (int, error)
}

// ---- Device-backed tier (HBM / LPDDR / DDR) ----

// DeviceTier wraps a raw memdev.Device with a first-fit allocator.
type DeviceTier struct {
	name string
	dev  *memdev.Device
	// free is a sorted list of free extents.
	free     []span
	objects  map[uint64]span
	nextID   uint64
	freeB    units.Bytes
	spanBuf  []memdev.Span   // scratch for GetBatch/PutBatch, reused across calls
	resBuf   []memdev.Result // scratch for GetBatch/PutBatch, reused across calls
	freeSnap []span          // scratch for PutBatch rollback, reused across calls
	allocBuf []span          // scratch for PutBatch planning, reused across calls
}

type span struct {
	addr, size units.Bytes
}

// NewDeviceTier builds a tier over a device spec.
func NewDeviceTier(name string, spec memdev.Spec) (*DeviceTier, error) {
	dev, err := memdev.NewDevice(spec)
	if err != nil {
		return nil, err
	}
	return &DeviceTier{
		name:    name,
		dev:     dev,
		free:    []span{{addr: 0, size: spec.Capacity}},
		objects: make(map[uint64]span),
		freeB:   spec.Capacity,
	}, nil
}

// Name returns the tier name.
func (d *DeviceTier) Name() string { return d.name }

// Info reports placement-relevant properties.
func (d *DeviceTier) Info() Info {
	s := d.dev.Spec()
	return Info{
		Name:             d.name,
		Capacity:         s.Capacity,
		Free:             d.freeB,
		ReadBW:           s.ReadBW,
		ReadEnergyPerBit: s.ReadEnergyPerBit,
	}
}

// alloc carves size bytes out of the free list first-fit, returning the
// allocated span. The free list is mutated exactly as a serial Put would
// before its device write; freeB is the caller's to update on commit.
func (d *DeviceTier) alloc(size units.Bytes) (span, bool) {
	for i, f := range d.free {
		if f.size >= size {
			sp := span{addr: f.addr, size: size}
			if f.size == size {
				d.free = append(d.free[:i], d.free[i+1:]...)
			} else {
				d.free[i] = span{addr: f.addr + size, size: f.size - size}
			}
			return sp, true
		}
	}
	return span{}, false
}

// Put allocates and writes an object.
func (d *DeviceTier) Put(m Meta) (uint64, time.Duration, error) {
	if m.Size == 0 {
		return 0, 0, fmt.Errorf("tier: zero-size object")
	}
	sp, ok := d.alloc(m.Size)
	if !ok {
		return 0, 0, fmt.Errorf("tier: %s full (need %v, free %v)", d.name, m.Size, d.freeB)
	}
	res, err := d.dev.WriteAt(sp.addr, sp.size)
	if err != nil {
		return 0, 0, err
	}
	id := d.nextID
	d.nextID++
	d.objects[id] = sp
	d.freeB -= m.Size
	return id, res.Latency, nil
}

// PutBatch allocates and writes the listed objects as one vectored device
// access with sequential-Put equivalence (see BatchPutter). Allocations are
// planned against the live free list, the writes issue as a single WriteSpans
// call, and on a device error the free list is rewound to exactly the state a
// serial caller would observe: the failing Put's allocation stays carved out
// (Put mutates the free list before its device write and does not roll back),
// while allocations planned for never-attempted Puts are undone.
func (d *DeviceTier) PutBatch(metas []Meta, handles []uint64, lats []time.Duration) (int, error) {
	if len(handles) < len(metas) || len(lats) < len(metas) {
		return 0, fmt.Errorf("tier: %s: PutBatch output slices shorter than metas", d.name)
	}
	d.freeSnap = append(d.freeSnap[:0], d.free...)
	d.allocBuf = d.allocBuf[:0]
	d.spanBuf = d.spanBuf[:0]
	freeShadow := d.freeB
	var valErr error
	for _, m := range metas {
		if m.Size == 0 {
			valErr = fmt.Errorf("tier: zero-size object")
			break
		}
		sp, ok := d.alloc(m.Size)
		if !ok {
			// The serial path reports the free-byte count as of its own turn.
			valErr = fmt.Errorf("tier: %s full (need %v, free %v)", d.name, m.Size, freeShadow)
			break
		}
		d.allocBuf = append(d.allocBuf, sp)
		d.spanBuf = append(d.spanBuf, memdev.Span{Addr: sp.addr, Size: sp.size})
		freeShadow -= m.Size
	}
	n := len(d.allocBuf)
	if cap(d.resBuf) < n {
		d.resBuf = make([]memdev.Result, max(n, 2*cap(d.resBuf)))
	}
	done, derr := d.dev.WriteSpans(d.spanBuf, d.resBuf[:n])
	if derr != nil {
		// Rewind to the snapshot and replay the allocations the serial path
		// performed: every completed write plus the failing one. Allocation is
		// deterministic, so the replay reproduces the exact free-list shape.
		d.free = append(d.free[:0], d.freeSnap...)
		for j := 0; j <= done && j < n; j++ {
			d.alloc(d.allocBuf[j].size)
		}
	}
	for j := 0; j < done; j++ {
		id := d.nextID
		d.nextID++
		d.objects[id] = d.allocBuf[j]
		d.freeB -= d.allocBuf[j].size
		handles[j] = id
		lats[j] = d.resBuf[j].Latency
	}
	if derr != nil {
		return done, derr
	}
	return done, valErr
}

// Get reads an object.
func (d *DeviceTier) Get(handle uint64) (time.Duration, error) {
	sp, ok := d.objects[handle]
	if !ok {
		return 0, fmt.Errorf("tier: %s has no object %d", d.name, handle)
	}
	res, err := d.dev.ReadAt(sp.addr, sp.size)
	if err != nil {
		return 0, err
	}
	return res.Latency, nil
}

// GetBatch reads the listed objects as one vectored device access with
// sequential-Get equivalence (see BatchGetter).
func (d *DeviceTier) GetBatch(handles []uint64) (int, error) {
	d.spanBuf = d.spanBuf[:0]
	for _, h := range handles {
		sp, ok := d.objects[h]
		if !ok {
			// A sequential caller has read the earlier handles before failing
			// this lookup; a device error among those takes precedence.
			done, derr := d.dev.ReadSpansQuiet(d.spanBuf)
			if derr != nil {
				return done, derr
			}
			return len(d.spanBuf), fmt.Errorf("tier: %s has no object %d", d.name, h)
		}
		d.spanBuf = append(d.spanBuf, memdev.Span{Addr: sp.addr, Size: sp.size})
	}
	return d.dev.ReadSpansQuiet(d.spanBuf)
}

// ResolveSpan resolves a handle to its device span for planned reads (see
// SpanGetter). Device-tier objects never move, so the span is valid until the
// object is deleted.
func (d *DeviceTier) ResolveSpan(handle uint64) (memdev.Span, error) {
	sp, ok := d.objects[handle]
	if !ok {
		return memdev.Span{}, fmt.Errorf("tier: %s has no object %d", d.name, handle)
	}
	return memdev.Span{Addr: sp.addr, Size: sp.size}, nil
}

// GetSpans reads the resolved spans as one vectored device access — the same
// span sequence GetBatch issues after its lookups, so counters, energy, and
// fault-stream positions are identical. The per-span Results are never
// consumed on this path (the simulator takes read costs from the manager's
// per-tier totals), so it reads through ReadSpansQuiet.
func (d *DeviceTier) GetSpans(spans []memdev.Span) (int, error) {
	return d.dev.ReadSpansQuiet(spans)
}

// Delete frees an object, coalescing adjacent free spans.
func (d *DeviceTier) Delete(handle uint64) error {
	sp, ok := d.objects[handle]
	if !ok {
		return fmt.Errorf("tier: %s has no object %d", d.name, handle)
	}
	delete(d.objects, handle)
	d.freeB += sp.size
	i := sort.Search(len(d.free), func(i int) bool { return d.free[i].addr > sp.addr })
	d.free = append(d.free, span{})
	copy(d.free[i+1:], d.free[i:])
	d.free[i] = sp
	// Coalesce with neighbours.
	if i+1 < len(d.free) && d.free[i].addr+d.free[i].size == d.free[i+1].addr {
		d.free[i].size += d.free[i+1].size
		d.free = append(d.free[:i+1], d.free[i+2:]...)
	}
	if i > 0 && d.free[i-1].addr+d.free[i-1].size == d.free[i].addr {
		d.free[i-1].size += d.free[i].size
		d.free = append(d.free[:i], d.free[i+1:]...)
	}
	return nil
}

// SetFaults arms fault injection on the underlying device.
func (d *DeviceTier) SetFaults(cfg memdev.FaultConfig) { d.dev.SetFaults(cfg) }

// SetBERTracking forwards the BER-scan switch to the device.
func (d *DeviceTier) SetBERTracking(on bool) { d.dev.SetBERTracking(on) }

// Tick advances device time (charging static + refresh energy).
func (d *DeviceTier) Tick(dt time.Duration) error { return d.dev.Advance(dt) }

// Energy returns the device's total energy.
func (d *DeviceTier) Energy() units.Energy { return d.dev.Energy().Total() }

// Traffic returns cumulative bytes moved.
func (d *DeviceTier) Traffic() (units.Bytes, units.Bytes) {
	st := d.dev.Stats()
	return st.ReadBytes, st.WriteBytes
}

// ---- MRM-backed tier ----

// MRMTier adapts a core.MRM as a tier backend.
type MRMTier struct {
	name    string
	mrm     *core.MRM
	idBuf   []core.ObjectID // scratch for GetBatch/PutBatch, reused across calls
	sizeBuf []units.Bytes   // scratch for PutBatch, reused across calls
}

// NewMRMTier wraps an MRM.
func NewMRMTier(name string, m *core.MRM) *MRMTier {
	return &MRMTier{name: name, mrm: m}
}

// Name returns the tier name.
func (t *MRMTier) Name() string { return t.name }

// MRM exposes the underlying control plane.
func (t *MRMTier) MRM() *core.MRM { return t.mrm }

// Info reports placement-relevant properties.
func (t *MRMTier) Info() Info {
	classes := t.mrm.Classes()
	s := t.mrm.Spec()
	return Info{
		Name:             t.name,
		Capacity:         t.mrm.Capacity(),
		Free:             t.mrm.FreeBytes(),
		ReadBW:           s.ReadBW,
		ReadEnergyPerBit: s.ReadEnergyPerBit,
		Managed:          true,
		MaxRetention:     classes[len(classes)-1],
	}
}

// writeOptions maps a meta to the MRM write options Put uses: soft state
// (KV, activations) is dropped at expiry; anything else is refreshed.
func writeOptions(m Meta) core.WriteOptions {
	policy := core.PolicyRefresh
	if m.Kind == core.KindKVCache || m.Kind == core.KindActivation {
		policy = core.PolicyDrop
	}
	return core.WriteOptions{Kind: m.Kind, Lifetime: m.Lifetime, Policy: policy}
}

// Put stores an object with kind-appropriate expiry policy (see writeOptions).
func (t *MRMTier) Put(m Meta) (uint64, time.Duration, error) {
	id, lat, err := t.mrm.Put(m.Size, writeOptions(m))
	return uint64(id), lat, err
}

// PutBatch stores the listed objects with sequential-Put equivalence (see
// BatchPutter), splitting the batch into runs of identical write options so
// each run flushes through the control plane as one vectored append.
func (t *MRMTier) PutBatch(metas []Meta, handles []uint64, lats []time.Duration) (int, error) {
	if len(handles) < len(metas) || len(lats) < len(metas) {
		return 0, fmt.Errorf("tier: %s: PutBatch output slices shorter than metas", t.name)
	}
	done := 0
	for done < len(metas) {
		opts := writeOptions(metas[done])
		end := done + 1
		for end < len(metas) && writeOptions(metas[end]) == opts {
			end++
		}
		t.sizeBuf = t.sizeBuf[:0]
		for _, m := range metas[done:end] {
			t.sizeBuf = append(t.sizeBuf, m.Size)
		}
		if cap(t.idBuf) < end-done {
			t.idBuf = make([]core.ObjectID, end-done)
		}
		ids := t.idBuf[:end-done]
		n, err := t.mrm.PutBatch(t.sizeBuf, opts, ids, lats[done:end])
		for i := 0; i < n; i++ {
			handles[done+i] = uint64(ids[i])
		}
		done += n
		if err != nil {
			return done, err
		}
	}
	return done, nil
}

// Get reads an object.
func (t *MRMTier) Get(handle uint64) (time.Duration, error) {
	return t.mrm.Get(core.ObjectID(handle))
}

// GetBatch reads the listed objects as one vectored device access with
// sequential-Get equivalence (see BatchGetter).
func (t *MRMTier) GetBatch(handles []uint64) (int, error) {
	t.idBuf = t.idBuf[:0]
	for _, h := range handles {
		t.idBuf = append(t.idBuf, core.ObjectID(h))
	}
	return t.mrm.GetBatch(t.idBuf)
}

// ResolveRef resolves a handle for planned reads (see RefGetter).
func (t *MRMTier) ResolveRef(handle uint64) (core.ObjRef, error) {
	return t.mrm.ResolveRef(core.ObjectID(handle))
}

// GetRefs reads the referenced objects with GetBatch's sequential-Get
// equivalence, minus the id lookups.
func (t *MRMTier) GetRefs(refs []core.ObjRef) (int, error) {
	return t.mrm.GetRefs(refs)
}

// NextDeadline reports the MRM's earliest pending housekeeping deadline (see
// Housekeeper).
func (t *MRMTier) NextDeadline() (time.Duration, bool) {
	return t.mrm.NextDeadline()
}

// Delete removes an object.
func (t *MRMTier) Delete(handle uint64) error {
	return t.mrm.Delete(core.ObjectID(handle))
}

// SetFaults arms fault injection on the MRM's device.
func (t *MRMTier) SetFaults(cfg memdev.FaultConfig) { t.mrm.SetFaults(cfg) }

// SetBERTracking forwards the BER-scan switch to the MRM's device.
func (t *MRMTier) SetBERTracking(on bool) { t.mrm.SetBERTracking(on) }

// Tick advances the MRM control plane.
func (t *MRMTier) Tick(dt time.Duration) error { return t.mrm.Tick(dt) }

// Energy returns the MRM account total.
func (t *MRMTier) Energy() units.Energy { return t.mrm.Energy().Total() }

// Traffic returns cumulative bytes moved.
func (t *MRMTier) Traffic() (units.Bytes, units.Bytes) {
	st := t.mrm.Stats()
	return st.BytesRead, st.BytesWritten + st.BytesRefreshed
}

// ---- Policies ----

// StaticPolicy is the baseline: fill the fastest tier first, overflow down,
// ignoring data kind and lifetime — how a bandwidth-tiered HBM+LPDDR system
// behaves without retention awareness.
type StaticPolicy struct{}

// Name identifies the policy.
func (StaticPolicy) Name() string { return "static-bandwidth" }

// Place picks the highest-bandwidth tier with room. Tiers are visited in
// bandwidth-descending order with ties kept in manager order, selected one at
// a time so the hot Put path allocates nothing (placement runs once per
// object; a sorted index slice here dominated the write path's allocations).
func (StaticPolicy) Place(m Meta, tiers []Info) (int, error) {
	var used uint64 // bitmask over tier indices; managers have a handful of tiers
	if len(tiers) > 64 {
		return 0, fmt.Errorf("tier: too many tiers (%d)", len(tiers))
	}
	for picked := 0; picked < len(tiers); picked++ {
		best := -1
		for i := range tiers {
			if used&(1<<uint(i)) != 0 {
				continue
			}
			if best < 0 || tiers[i].ReadBW > tiers[best].ReadBW {
				best = i
			}
		}
		used |= 1 << uint(best)
		if tiers[best].Free >= m.Size {
			return best, nil
		}
	}
	return 0, fmt.Errorf("tier: no tier fits %v", m.Size)
}

// RetentionAwarePolicy implements §4's placement: match data lifetime to
// tier retention and read-intensity to read efficiency.
//
//   - Activations (written every pass) stay in volatile HBM: MRM write energy
//     and endurance would be wasted on them.
//   - Weights and KV pages (read-hot, rarely written, lifetime >> HBM
//     refresh) go to the managed tier when its retention covers them.
//   - Cold/oversized data overflows to the slow tier.
type RetentionAwarePolicy struct{}

// Name identifies the policy.
func (RetentionAwarePolicy) Name() string { return "retention-aware" }

// Place implements Policy.
func (RetentionAwarePolicy) Place(m Meta, tiers []Info) (int, error) {
	// Index tiers by role.
	managed := -1
	fastest := -1
	for i, ti := range tiers {
		if ti.Managed && managed < 0 {
			managed = i
		}
		if !ti.Managed && (fastest < 0 || ti.ReadBW > tiers[fastest].ReadBW) {
			fastest = i
		}
	}
	var prefer [2]int
	switch {
	case m.Kind == core.KindActivation:
		// Rewritten every forward pass: volatile memory, no wear, no
		// retention to manage.
		prefer = [2]int{fastest, managed}
	case m.Kind == core.KindWeights:
		// Read-hot, immutable, persisted elsewhere: the MRM sweet spot.
		// Lifetimes beyond the device's retention are covered by the control
		// plane's refresh policy (cheap: updates are rare).
		prefer = [2]int{managed, fastest}
	case managed >= 0 && m.Lifetime <= tiers[managed].MaxRetention:
		// Soft state whose lifetime a retention class covers outright.
		prefer = [2]int{managed, fastest}
	default:
		prefer = [2]int{fastest, managed}
	}
	if len(tiers) > 64 {
		return 0, fmt.Errorf("tier: too many tiers (%d)", len(tiers))
	}
	var used uint64 // bitmask over tier indices (preferred tiers already tried)
	for _, i := range prefer {
		if i >= 0 {
			used |= 1 << uint(i)
			if tiers[i].Free >= m.Size {
				return i, nil
			}
		}
	}
	// Fall back over the remaining tiers, fastest-read first (ties in manager
	// order), selected one at a time so the hot path allocates nothing.
	for {
		best := -1
		for i := range tiers {
			if used&(1<<uint(i)) != 0 {
				continue
			}
			if best < 0 || tiers[i].ReadBW > tiers[best].ReadBW {
				best = i
			}
		}
		if best < 0 {
			break
		}
		used |= 1 << uint(best)
		if tiers[best].Free >= m.Size {
			return best, nil
		}
	}
	return 0, fmt.Errorf("tier: no tier fits %v (%v)", m.Size, m.Kind)
}

// ---- Manager ----

type placed struct {
	tier   int
	handle uint64
	meta   Meta
}

// Manager places objects across tiers under a policy.
type Manager struct {
	tiers   []Backend
	policy  Policy
	objects map[ObjectID]placed
	nextID  ObjectID

	perTierReads []units.Bytes // bytes read via Get, indexed by tier
	reseats      int64
	handleBuf    []uint64 // scratch for GetBatch/PutBatch, reused across calls
	runBuf       []placed // scratch for GetBatch run grouping, reused across calls
	infoBuf      []Info   // scratch for Put/PutBatch placement, reused across calls
	// readBW caches each backend's read bandwidth, which is fixed at device
	// construction; ReadTime runs per decode step and must not pay Info()
	// (an MRM Info scans zones for its Free count) to learn a constant.
	readBW []units.Bandwidth

	// Backoff is the base delay charged before a Reseat attempt (the
	// controller's fault-isolation/remap window); callers double it per retry.
	Backoff time.Duration
}

// NewManager builds a manager; tier order is preserved for policies.
func NewManager(policy Policy, tiers ...Backend) (*Manager, error) {
	if policy == nil || len(tiers) == 0 {
		return nil, fmt.Errorf("tier: need a policy and at least one tier")
	}
	readBW := make([]units.Bandwidth, len(tiers))
	for i, t := range tiers {
		readBW[i] = t.Info().ReadBW
	}
	return &Manager{
		tiers:        tiers,
		policy:       policy,
		objects:      make(map[ObjectID]placed),
		perTierReads: make([]units.Bytes, len(tiers)),
		readBW:       readBW,
		Backoff:      100 * time.Microsecond,
	}, nil
}

// Backends returns the managed tiers in manager order (for fault arming and
// stats collection; callers must not mutate placement through them).
func (m *Manager) Backends() []Backend { return m.tiers }

// Reseats counts re-placements performed by Reseat.
func (m *Manager) Reseats() int64 { return m.reseats }

// Policy returns the active policy.
func (m *Manager) Policy() Policy { return m.policy }

// SetPolicy swaps the placement policy live and returns the previous one.
// Only future placements (Put/PutBatch/Reseat) consult the policy, so
// already-placed objects stay where they are — the serving daemon uses this
// to reconfigure tiering on a running node without disturbing its state.
func (m *Manager) SetPolicy(p Policy) (Policy, error) {
	if p == nil {
		return nil, fmt.Errorf("tier: nil policy")
	}
	prev := m.policy
	m.policy = p
	return prev, nil
}

// Tiers returns current tier infos (with indices filled in).
func (m *Manager) Tiers() []Info {
	out := make([]Info, len(m.tiers))
	for i, t := range m.tiers {
		out[i] = t.Info()
		out[i].Index = i
	}
	return out
}

// infos fills the manager's info scratch with current tier infos. The slice
// is invalidated by the next infos call; Put/PutBatch use it so per-object
// placement doesn't allocate. Callers that hand infos out (Tiers, Reseat)
// still take fresh copies.
func (m *Manager) infos() []Info {
	m.infoBuf = m.infoBuf[:0]
	for i, t := range m.tiers {
		info := t.Info()
		info.Index = i
		m.infoBuf = append(m.infoBuf, info)
	}
	return m.infoBuf
}

// Put places an object per the policy.
func (m *Manager) Put(meta Meta) (ObjectID, time.Duration, error) {
	idx, err := m.policy.Place(meta, m.infos())
	if err != nil {
		return 0, 0, err
	}
	if idx < 0 || idx >= len(m.tiers) {
		return 0, 0, fmt.Errorf("tier: policy chose bad tier %d", idx)
	}
	h, lat, err := m.tiers[idx].Put(meta)
	if err != nil {
		return 0, 0, err
	}
	id := m.nextID
	m.nextID++
	m.objects[id] = placed{tier: idx, handle: h, meta: meta}
	return id, lat, nil
}

// PutBatch places the metas exactly as if Put were called once per meta in
// order, stopping at the first error — identical placement decisions, object
// ids, latencies, and backend state — but coalesces consecutive runs of
// same-tier placements into one vectored backend call when the backend
// supports it (BatchPutter). Placement for object i runs against a shadow of
// the tier infos whose Free counts are decremented as earlier objects are
// planned: both backend kinds shrink Free by exactly the object size on a
// successful Put, so the shadow reproduces the serial path's placement inputs
// without flushing between objects. ids, lats, and tiers (each at least
// len(metas) long) receive each stored object's id, write latency, and tier
// index. Returns the number of objects fully stored and, when that is <
// len(metas), the first-failing Put's error.
func (m *Manager) PutBatch(metas []Meta, ids []ObjectID, lats []time.Duration, tiers []int) (int, error) {
	if len(ids) < len(metas) || len(lats) < len(metas) || len(tiers) < len(metas) {
		return 0, fmt.Errorf("tier: PutBatch output slices shorter than metas")
	}
	infos := m.infos()
	done := 0
	for done < len(metas) {
		idx, perr := m.policy.Place(metas[done], infos)
		if perr == nil && (idx < 0 || idx >= len(m.tiers)) {
			perr = fmt.Errorf("tier: policy chose bad tier %d", idx)
		}
		if perr != nil {
			return done, perr
		}
		infos[idx].Free -= metas[done].Size
		// Extend the run while the policy keeps choosing the same tier. A
		// placement error inside the run only surfaces after the run's writes
		// succeed, exactly as the serial caller would hit it.
		end := done + 1
		var pendErr error
		for end < len(metas) {
			j, err := m.policy.Place(metas[end], infos)
			if err == nil && (j < 0 || j >= len(m.tiers)) {
				err = fmt.Errorf("tier: policy chose bad tier %d", j)
			}
			if err != nil {
				pendErr = err
				break
			}
			if j != idx {
				break
			}
			infos[j].Free -= metas[end].Size
			end++
		}
		got, err := m.flushRun(idx, metas[done:end], ids[done:], lats[done:], tiers[done:])
		done += got
		if err != nil {
			return done, err
		}
		if pendErr != nil {
			return done, pendErr
		}
	}
	return done, nil
}

// flushRun stores one same-tier run of metas on tier idx, preferring the
// backend's vectored path, and registers the stored objects. The output
// slices are positioned at the run's start.
func (m *Manager) flushRun(idx int, metas []Meta, ids []ObjectID, lats []time.Duration, tiers []int) (int, error) {
	if bp, ok := m.tiers[idx].(BatchPutter); ok && len(metas) > 1 {
		if cap(m.handleBuf) < len(metas) {
			// Geometric growth: run lengths vary call to call, and exact-size
			// growth would churn an allocation per flush.
			m.handleBuf = make([]uint64, max(len(metas), 2*cap(m.handleBuf)))
		}
		handles := m.handleBuf[:len(metas)]
		got, err := bp.PutBatch(metas, handles, lats)
		for i := 0; i < got; i++ {
			id := m.nextID
			m.nextID++
			m.objects[id] = placed{tier: idx, handle: handles[i], meta: metas[i]}
			ids[i], tiers[i] = id, idx
		}
		return got, err
	}
	for i := range metas {
		h, lat, err := m.tiers[idx].Put(metas[i])
		if err != nil {
			return i, err
		}
		id := m.nextID
		m.nextID++
		m.objects[id] = placed{tier: idx, handle: h, meta: metas[i]}
		ids[i], lats[i], tiers[i] = id, lat, idx
	}
	return len(metas), nil
}

// Get reads an object, returning the read latency and the tier it came from.
func (m *Manager) Get(id ObjectID) (time.Duration, int, error) {
	p, ok := m.objects[id]
	if !ok {
		return 0, 0, fmt.Errorf("tier: no object %d", id)
	}
	lat, err := m.tiers[p.tier].Get(p.handle)
	if err != nil {
		return 0, p.tier, err
	}
	m.perTierReads[p.tier] += p.meta.Size
	return lat, p.tier, nil
}

// GetBatch reads the listed objects exactly as if Get were called once per
// id in order, stopping at the first error — same device read sequence,
// fault events, and per-tier accounting — but coalesces consecutive runs of
// objects living on the same tier into one vectored backend call when the
// backend supports it (BatchGetter). It returns the number of objects read
// in full and, when that is < len(ids), the first-failing Get's error.
func (m *Manager) GetBatch(ids []ObjectID) (int, error) {
	done := 0
	for done < len(ids) {
		p, ok := m.objects[ids[done]]
		if !ok {
			return done, fmt.Errorf("tier: no object %d", ids[done])
		}
		// Extend the run of consecutive objects on the same tier, keeping each
		// placement so the flush below never re-resolves an id. Peeking at a
		// later object's placement is safe: reads never change placement, so
		// the lookup answers exactly what a sequential caller would see.
		m.runBuf = append(m.runBuf[:0], p)
		for done+len(m.runBuf) < len(ids) {
			q, ok := m.objects[ids[done+len(m.runBuf)]]
			if !ok || q.tier != p.tier {
				break
			}
			m.runBuf = append(m.runBuf, q)
		}
		if bg, isBatch := m.tiers[p.tier].(BatchGetter); isBatch && len(m.runBuf) > 1 {
			m.handleBuf = m.handleBuf[:0]
			for i := range m.runBuf {
				m.handleBuf = append(m.handleBuf, m.runBuf[i].handle)
			}
			n, err := bg.GetBatch(m.handleBuf)
			for i := 0; i < n; i++ {
				m.perTierReads[p.tier] += m.runBuf[i].meta.Size
			}
			done += n
			if err != nil {
				return done, err
			}
		} else {
			for i := range m.runBuf {
				if _, err := m.tiers[p.tier].Get(m.runBuf[i].handle); err != nil {
					return done, err
				}
				m.perTierReads[p.tier] += m.runBuf[i].meta.Size
				done++
			}
		}
	}
	return done, nil
}

// planRun is one run of consecutive same-tier objects within a ReadPlan.
type planRun struct {
	tier int
	end  int // exclusive end index into the plan's parallel arrays
}

// ReadPlan caches the resolved read path of an append-only object list so a
// caller that reads the same objects every step (the serving simulator's KV
// pages) pays the id lookup and run grouping once, at append time, instead of
// once per read. GetPlanned(p) performs exactly the device reads, fault
// events, and per-tier accounting of GetBatch over the same ids.
//
// Validity contract: a plan may only be executed while every member object is
// still placed where it was appended. Deleting, forgetting, migrating, or
// reseating a member invalidates the plan from that member on — Truncate
// before deleting a suffix, Reset before anything else. Expiry of an
// MRM-backed member does NOT invalidate the plan: refs observe expiry exactly
// like reads by id.
type ReadPlan struct {
	ids     []ObjectID
	handles []uint64
	tiers   []int
	sizes   []units.Bytes
	sums    []units.Bytes // prefix sums: sums[i] = total size of objects [0, i)
	spans   []memdev.Span // valid where the tier is a SpanGetter
	refs    []core.ObjRef // valid where the tier is a RefGetter
	runs    []planRun
}

// Len returns the number of planned objects.
func (p *ReadPlan) Len() int { return len(p.ids) }

// IDs returns the planned object ids in read order (shared storage; callers
// must not mutate).
func (p *ReadPlan) IDs() []ObjectID { return p.ids }

// Tier returns the tier index object i was resolved on.
func (p *ReadPlan) Tier(i int) int { return p.tiers[i] }

// Runs returns the number of consecutive same-tier runs in the plan, letting
// callers account per-tier totals in O(runs) instead of O(objects).
func (p *ReadPlan) Runs() int { return len(p.runs) }

// Run returns run i's tier and its [start, end) range of object indices.
func (p *ReadPlan) Run(i int) (tier, start, end int) {
	if i > 0 {
		start = p.runs[i-1].end
	}
	return p.runs[i].tier, start, p.runs[i].end
}

// Reset empties the plan, keeping capacity.
func (p *ReadPlan) Reset() {
	p.ids = p.ids[:0]
	p.handles = p.handles[:0]
	p.tiers = p.tiers[:0]
	p.sizes = p.sizes[:0]
	if len(p.sums) > 0 {
		p.sums = p.sums[:1]
	}
	p.spans = p.spans[:0]
	p.refs = p.refs[:0]
	p.runs = p.runs[:0]
}

// Truncate drops all planned objects at index n and beyond, keeping capacity.
func (p *ReadPlan) Truncate(n int) {
	if n < 0 || n >= len(p.ids) {
		return
	}
	p.ids = p.ids[:n]
	p.handles = p.handles[:n]
	p.tiers = p.tiers[:n]
	p.sizes = p.sizes[:n]
	p.sums = p.sums[:n+1]
	p.spans = p.spans[:n]
	p.refs = p.refs[:n]
	for len(p.runs) > 0 {
		last := len(p.runs) - 1
		start := 0
		if last > 0 {
			start = p.runs[last-1].end
		}
		if start >= n {
			p.runs = p.runs[:last]
			continue
		}
		if p.runs[last].end > n {
			p.runs[last].end = n
		}
		break
	}
}

// PlanAppend resolves id once and appends it to the plan, extending the final
// run when the object lives on the same tier as its predecessor. Resolution
// errors match Get's: a missing id fails the manager lookup, an expired or
// deleted MRM object fails ref resolution.
func (m *Manager) PlanAppend(p *ReadPlan, id ObjectID) error {
	pl, ok := m.objects[id]
	if !ok {
		return fmt.Errorf("tier: no object %d", id)
	}
	var (
		span memdev.Span
		ref  core.ObjRef
		err  error
	)
	switch b := m.tiers[pl.tier].(type) {
	case SpanGetter:
		span, err = b.ResolveSpan(pl.handle)
	case RefGetter:
		ref, err = b.ResolveRef(pl.handle)
	}
	if err != nil {
		return err
	}
	p.ids = append(p.ids, id)
	p.handles = append(p.handles, pl.handle)
	p.tiers = append(p.tiers, pl.tier)
	p.sizes = append(p.sizes, pl.meta.Size)
	if len(p.sums) == 0 {
		p.sums = append(p.sums, 0)
	}
	p.sums = append(p.sums, p.sums[len(p.sums)-1]+pl.meta.Size)
	p.spans = append(p.spans, span)
	p.refs = append(p.refs, ref)
	if n := len(p.runs); n > 0 && p.runs[n-1].tier == pl.tier {
		p.runs[n-1].end = len(p.ids)
	} else {
		p.runs = append(p.runs, planRun{tier: pl.tier, end: len(p.ids)})
	}
	return nil
}

// GetPlanned executes the plan: the same device read sequence, fault events,
// per-tier accounting, and error contract as GetBatch(p.IDs()), with the id
// lookups and run grouping already paid at append time. Each run issues
// through the backend's resolved vectored path; the single-span (single-ref)
// case is device-identical to the serial Get that GetBatch would use for a
// length-1 run. Returns the number of objects read in full and the
// first-failing Get's error.
func (m *Manager) GetPlanned(p *ReadPlan) (int, error) {
	done := 0
	for _, run := range p.runs {
		switch b := m.tiers[run.tier].(type) {
		case SpanGetter:
			n, err := b.GetSpans(p.spans[done:run.end])
			// Prefix sums give the completed objects' total in O(1); integer
			// addition makes it the exact per-object sum.
			m.perTierReads[run.tier] += p.sums[done+n] - p.sums[done]
			done += n
			if err != nil {
				return done, err
			}
		case RefGetter:
			n, err := b.GetRefs(p.refs[done:run.end])
			m.perTierReads[run.tier] += p.sums[done+n] - p.sums[done]
			done += n
			if err != nil {
				return done, err
			}
		default:
			// No resolved fast path: serial Gets, exactly GetBatch's fallback.
			for i := done; i < run.end; i++ {
				if _, err := m.tiers[run.tier].Get(p.handles[i]); err != nil {
					return done, err
				}
				m.perTierReads[run.tier] += p.sizes[i]
				done++
			}
		}
	}
	return done, nil
}

// NextHousekeeping reports the earliest pending housekeeping deadline across
// tiers with deadline-driven work (see Housekeeper), letting a discrete-event
// driver segment idle windows so no refresh or expiry fires late.
func (m *Manager) NextHousekeeping() (time.Duration, bool) {
	var best time.Duration
	found := false
	for _, t := range m.tiers {
		hk, ok := t.(Housekeeper)
		if !ok {
			continue
		}
		if at, ok := hk.NextDeadline(); ok && (!found || at < best) {
			best, found = at, true
		}
	}
	return best, found
}

// Delete removes an object.
func (m *Manager) Delete(id ObjectID) error {
	p, ok := m.objects[id]
	if !ok {
		return fmt.Errorf("tier: no object %d", id)
	}
	delete(m.objects, id)
	return m.tiers[p.tier].Delete(p.handle)
}

// Forget drops the manager's record of an object without touching the
// backend — used when the backend already dropped it (MRM soft-state expiry).
func (m *Manager) Forget(id ObjectID) {
	delete(m.objects, id)
}

// Reseat re-places an object whose copy on its current tier was lost to an
// uncorrectable error. The failed copy is deleted (tolerating backends that
// already dropped it) and the object is rewritten from its durable upstream
// copy, preferring any tier other than the one that failed; when nothing else
// fits, it is restored in place. The object keeps its id. Returns the write
// latency of the re-placement; callers add their own backoff.
func (m *Manager) Reseat(id ObjectID) (time.Duration, error) {
	p, ok := m.objects[id]
	if !ok {
		return 0, fmt.Errorf("tier: no object %d", id)
	}
	failed := p.tier
	_ = m.tiers[failed].Delete(p.handle)
	delete(m.objects, id)
	infos := m.Tiers()
	masked := make([]Info, len(infos))
	copy(masked, infos)
	masked[failed].Free = 0
	idx, err := m.policy.Place(p.meta, masked)
	if err != nil {
		// Nowhere else fits: restore in place on the failed tier.
		idx, err = m.policy.Place(p.meta, infos)
	}
	if err != nil {
		return 0, fmt.Errorf("tier: reseat %d: %w", id, err)
	}
	h, lat, err := m.tiers[idx].Put(p.meta)
	if err != nil {
		return 0, fmt.Errorf("tier: reseat %d: %w", id, err)
	}
	m.objects[id] = placed{tier: idx, handle: h, meta: p.meta}
	m.reseats++
	return lat, nil
}

// TierOf reports where an object lives.
func (m *Manager) TierOf(id ObjectID) (int, error) {
	p, ok := m.objects[id]
	if !ok {
		return 0, fmt.Errorf("tier: no object %d", id)
	}
	return p.tier, nil
}

// Migrate moves an object to the given tier (read + rewrite).
func (m *Manager) Migrate(id ObjectID, to int) error {
	p, ok := m.objects[id]
	if !ok {
		return fmt.Errorf("tier: no object %d", id)
	}
	if to < 0 || to >= len(m.tiers) {
		return fmt.Errorf("tier: bad destination %d", to)
	}
	if to == p.tier {
		return nil
	}
	if _, err := m.tiers[p.tier].Get(p.handle); err != nil {
		return fmt.Errorf("tier: migrate read: %w", err)
	}
	h, _, err := m.tiers[to].Put(p.meta)
	if err != nil {
		return fmt.Errorf("tier: migrate write: %w", err)
	}
	if err := m.tiers[p.tier].Delete(p.handle); err != nil {
		return fmt.Errorf("tier: migrate cleanup: %w", err)
	}
	p.tier, p.handle = to, h
	m.objects[id] = p
	return nil
}

// Tick advances every tier.
func (m *Manager) Tick(dt time.Duration) error {
	for _, t := range m.tiers {
		if err := t.Tick(dt); err != nil {
			return err
		}
	}
	return nil
}

// TotalEnergy sums tier energy.
func (m *Manager) TotalEnergy() units.Energy {
	var e units.Energy
	for _, t := range m.tiers {
		e += t.Energy()
	}
	return e
}

// ReadTime returns the time to read the given per-tier byte amounts (indexed
// by tier; extra entries are ignored), assuming tiers transfer in parallel
// (independent links): the max of the per-tier transfer times.
func (m *Manager) ReadTime(perTier []units.Bytes) time.Duration {
	var worst time.Duration
	for idx, n := range perTier {
		if idx >= len(m.tiers) || n == 0 {
			continue
		}
		if t := m.readBW[idx].Time(n); t > worst {
			worst = t
		}
	}
	return worst
}

// NumObjects returns the live object count.
func (m *Manager) NumObjects() int { return len(m.objects) }
