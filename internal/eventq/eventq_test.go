package eventq

import (
	"sort"
	"testing"
	"time"

	"mrm/internal/dist"
)

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindFailStop: "fail-stop",
		KindDeadline: "deadline",
		KindArrival:  "arrival",
		KindStep:     "step",
		Kind(99):     "kind?",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

// TestKindPriority pins the tie-break order the event engine's equivalence
// with the stepping engine depends on: at one instant, fail-stop beats
// deadline beats arrival beats step.
func TestKindPriority(t *testing.T) {
	var c Calendar
	at := 5 * time.Millisecond
	c.Push(at, KindStep, 0)
	c.Push(at, KindArrival, 1)
	c.Push(at, KindFailStop, 2)
	c.Push(at, KindDeadline, 3)
	want := []Kind{KindFailStop, KindDeadline, KindArrival, KindStep}
	for i, k := range want {
		ev, ok := c.Pop()
		if !ok {
			t.Fatalf("pop %d: calendar empty", i)
		}
		if ev.Kind != k || ev.At != at {
			t.Fatalf("pop %d = (%v, %v), want (%v, %v)", i, ev.At, ev.Kind, at, k)
		}
	}
	if _, ok := c.Pop(); ok {
		t.Fatal("calendar not empty after draining")
	}
}

// TestFIFOTies pins the third key: equal (time, kind) events pop in push
// order, identified here by their Data payloads.
func TestFIFOTies(t *testing.T) {
	var c Calendar
	for i := uint64(0); i < 16; i++ {
		c.Push(time.Second, KindArrival, i)
	}
	for i := uint64(0); i < 16; i++ {
		ev, ok := c.Pop()
		if !ok {
			t.Fatalf("pop %d: calendar empty", i)
		}
		if ev.Data != i {
			t.Fatalf("pop %d carries data %d: FIFO tie-break violated", i, ev.Data)
		}
	}
}

func TestTimeBeatsKind(t *testing.T) {
	var c Calendar
	c.Push(2*time.Second, KindFailStop, 0)
	c.Push(1*time.Second, KindStep, 1)
	ev, _ := c.Pop()
	if ev.Kind != KindStep {
		t.Fatalf("earlier step should beat later fail-stop, popped %v", ev.Kind)
	}
}

func TestPeek(t *testing.T) {
	var c Calendar
	if _, ok := c.Peek(); ok {
		t.Fatal("peek on empty calendar reported an event")
	}
	c.Push(time.Second, KindStep, 7)
	ev, ok := c.Peek()
	if !ok || ev.Data != 7 {
		t.Fatalf("peek = (%v, %v), want the pushed event", ev, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("peek consumed the event: len %d", c.Len())
	}
}

func TestResetKeepsCapacityRestartsSeq(t *testing.T) {
	var c Calendar
	for i := 0; i < 64; i++ {
		c.Push(time.Duration(i), KindStep, 0)
	}
	capBefore := cap(c.h)
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("reset left %d events", c.Len())
	}
	c.Push(time.Second, KindStep, 0)
	if cap(c.h) != capBefore {
		t.Fatalf("reset dropped capacity: %d -> %d", capBefore, cap(c.h))
	}
	ev, _ := c.Pop()
	if ev.Seq != 0 {
		t.Fatalf("first push after reset has seq %d, want 0", ev.Seq)
	}
}

// TestPopOrderMatchesSort drives the heap with a seeded random schedule and
// checks the pop sequence equals a stable sort by (At, Kind, Seq) — the
// property the engine's determinism rests on.
func TestPopOrderMatchesSort(t *testing.T) {
	rng := dist.NewRNG(42)
	var c Calendar
	var want []Event
	for i := 0; i < 500; i++ {
		at := time.Duration(rng.Intn(50)) * time.Millisecond
		kind := Kind(rng.Intn(4))
		c.Push(at, kind, uint64(i))
		want = append(want, Event{At: at, Kind: kind, Seq: uint64(i), Data: uint64(i)})
	}
	sort.SliceStable(want, func(i, j int) bool { return want[i].before(want[j]) })
	for i, w := range want {
		got, ok := c.Pop()
		if !ok {
			t.Fatalf("pop %d: calendar empty", i)
		}
		if got != w {
			t.Fatalf("pop %d = %+v, want %+v", i, got, w)
		}
	}
}

// TestMergeEquivalentToStableSortByArrival pins the property Fleet.Run's
// orphan requeue relies on: pushing items in slice order at their arrival
// times and draining the calendar reproduces sort.SliceStable by arrival.
func TestMergeEquivalentToStableSortByArrival(t *testing.T) {
	rng := dist.NewRNG(7)
	type orphan struct {
		arrival time.Duration
		idx     int
	}
	var items []orphan
	for i := 0; i < 200; i++ {
		items = append(items, orphan{arrival: time.Duration(rng.Intn(20)) * time.Second, idx: i})
	}
	want := append([]orphan(nil), items...)
	sort.SliceStable(want, func(i, j int) bool { return want[i].arrival < want[j].arrival })
	var c Calendar
	for _, it := range items {
		c.Push(it.arrival, KindArrival, uint64(it.idx))
	}
	for i := range want {
		ev, ok := c.Pop()
		if !ok {
			t.Fatalf("pop %d: calendar empty", i)
		}
		if int(ev.Data) != want[i].idx {
			t.Fatalf("pop %d = item %d, want %d", i, ev.Data, want[i].idx)
		}
	}
}

func BenchmarkCalendarPushPop(b *testing.B) {
	var c Calendar
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Reset()
		for j := 0; j < 4; j++ {
			c.Push(time.Duration(j), Kind(j%4), uint64(j))
		}
		for c.Len() > 0 {
			c.Pop()
		}
	}
}
