// Package eventq provides the deterministic event calendar behind the
// cluster discrete-event engine. A Calendar is a binary min-heap of events
// ordered by (time, kind, sequence number): time first, then a fixed kind
// priority (fail-stop before housekeeping deadline before arrival before
// batch step), then insertion order. The third key makes every tie
// deterministic — two events pushed at the same instant with the same kind
// pop in push order, no map iteration, no pointer comparison, nothing the
// scheduler or allocator can perturb — which is what lets the event engine
// reproduce the stepping engine bit for bit.
package eventq

import "time"

// Kind classifies an event. The declaration order IS the tie-break priority
// at equal times: a node's fail-stop preempts everything else scheduled at
// that instant, housekeeping deadlines fire before the arrival that would
// observe their effects, and arrivals enter the batch before the step that
// would run at the same boundary (matching the stepping engine, which calls
// admit() ahead of every decode step).
type Kind uint8

// Event kinds in tie-break order.
const (
	KindFailStop Kind = iota // node halt (RunUntil stopAt)
	KindDeadline             // memory housekeeping: refresh or expiry deadline
	KindArrival              // request arrival (or fleet requeue)
	KindStep                 // batch decode/prefill step boundary
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindFailStop:
		return "fail-stop"
	case KindDeadline:
		return "deadline"
	case KindArrival:
		return "arrival"
	case KindStep:
		return "step"
	default:
		return "kind?"
	}
}

// Event is one calendar entry. Data is an opaque caller payload (a request
// index, a node id); the calendar never interprets it.
type Event struct {
	At   time.Duration
	Kind Kind
	Seq  uint64 // assigned by Push; FIFO among (At, Kind) ties
	Data uint64
}

// before is the calendar's total order: (At, Kind, Seq) lexicographic.
func (e Event) before(o Event) bool {
	if e.At != o.At {
		return e.At < o.At
	}
	if e.Kind != o.Kind {
		return e.Kind < o.Kind
	}
	return e.Seq < o.Seq
}

// Calendar is a deterministic event min-heap. The zero value is ready to
// use. Not safe for concurrent use: each simulated node owns its own
// calendar, mirroring the one-goroutine-per-device discipline elsewhere.
type Calendar struct {
	h   []Event
	seq uint64
}

// Len returns the number of pending events.
func (c *Calendar) Len() int { return len(c.h) }

// Reset empties the calendar, keeping the heap's capacity and restarting
// sequence numbers, so a per-iteration rebuild allocates nothing in steady
// state and numbers its events identically every time.
func (c *Calendar) Reset() {
	c.h = c.h[:0]
	c.seq = 0
}

// Push schedules an event. Sequence numbers are assigned in call order, so
// equal-(time, kind) events pop first-pushed-first.
func (c *Calendar) Push(at time.Duration, kind Kind, data uint64) {
	ev := Event{At: at, Kind: kind, Seq: c.seq, Data: data}
	c.seq++
	c.h = append(c.h, ev)
	c.siftUp(len(c.h) - 1)
}

// Peek returns the next event without removing it.
func (c *Calendar) Peek() (Event, bool) {
	if len(c.h) == 0 {
		return Event{}, false
	}
	return c.h[0], true
}

// Pop removes and returns the next event in (time, kind, seq) order.
func (c *Calendar) Pop() (Event, bool) {
	n := len(c.h)
	if n == 0 {
		return Event{}, false
	}
	top := c.h[0]
	c.h[0] = c.h[n-1]
	c.h = c.h[:n-1]
	if len(c.h) > 0 {
		c.siftDown(0)
	}
	return top, true
}

func (c *Calendar) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !c.h[i].before(c.h[parent]) {
			return
		}
		c.h[i], c.h[parent] = c.h[parent], c.h[i]
		i = parent
	}
}

func (c *Calendar) siftDown(i int) {
	n := len(c.h)
	for {
		least := i
		if l := 2*i + 1; l < n && c.h[l].before(c.h[least]) {
			least = l
		}
		if r := 2*i + 2; r < n && c.h[r].before(c.h[least]) {
			least = r
		}
		if least == i {
			return
		}
		c.h[i], c.h[least] = c.h[least], c.h[i]
		i = least
	}
}
