package kvcache

import (
	"errors"
	"math/rand"
	"testing"
	"time"
)

// TestForkDropFromWithBatchedAppends pins the page-table side of the batched
// write path: the cluster flushes several pages per decode step as one
// multi-page Append, and that batch must not mutate pages shared with a
// forked sibling — a shared partial page is copied (CoW) exactly once, never
// written through, so a shared prefix can never be "double-flushed" by a
// batch landing on both sequences.
func TestForkDropFromWithBatchedAppends(t *testing.T) {
	c := newCache(t)
	pt := testConfig().PageTokens

	// Parent: 3 full pages + a half page.
	if err := c.NewSequence(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Append(1, 3*pt+pt/2); err != nil {
		t.Fatal(err)
	}
	if err := c.Fork(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	parentBefore, _ := c.Tokens(1)

	// Batched append on the child spanning several pages: fills its CoW'd
	// partial page and allocates fresh ones. The parent must not move.
	if err := c.Append(2, 3*pt); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Tokens(1); got != parentBefore {
		t.Fatalf("batched child append moved parent: %d -> %d tokens", parentBefore, got)
	}
	// The 3 full prefix pages are shared (ref 2); the partial was copied.
	st := c.Stats()
	if st.SharedPages != 3 {
		t.Fatalf("shared pages = %d, want 3", st.SharedPages)
	}
	if st.CoWCopies != 1 {
		t.Fatalf("CoW copies = %d, want exactly 1 (the forked partial page)", st.CoWCopies)
	}

	// Batched append on the parent: its last page is the shared-at-fork-time
	// partial, now private again only if CoW fired on the parent's side too.
	if err := c.Append(1, 2*pt); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	childTok, _ := c.Tokens(2)
	if childTok != parentBefore+3*pt {
		t.Fatalf("parent append moved child: %d tokens, want %d", childTok, parentBefore+3*pt)
	}

	// Drop the child's suffix from page 1: shared prefix page 1 onward loses
	// the child's references, but the parent keeps every page.
	dropped, err := c.DropFrom(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dropped <= 0 {
		t.Fatalf("DropFrom rolled back %d tokens", dropped)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Tokens(1); got != parentBefore+2*pt {
		t.Fatalf("child DropFrom moved parent: %d tokens, want %d", got, parentBefore+2*pt)
	}

	// Both released: every page must come home.
	if err := c.Release(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Release(2); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.UsedPages != 0 || st.FreePages != testConfig().CapacityPages {
		t.Fatalf("pages leaked: %+v", st)
	}
}

// TestBatchedAppendInterleavingProperty drives a randomized interleaving of
// batch-sized appends, forks, suffix drops, and releases — the operation mix
// of a serving step stream under fault degradation — and requires
// CheckInvariants to hold after every single operation.
func TestBatchedAppendInterleavingProperty(t *testing.T) {
	cfg := testConfig()
	cfg.CapacityPages = 48
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	live := []SeqID{}
	next := SeqID(1)
	for op := 0; op < 800; op++ {
		switch k := rng.Intn(10); {
		case k < 3 || len(live) == 0: // new sequence
			if err := c.NewSequence(next); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			live = append(live, next)
			next++
		case k < 7: // batched append, 1..3 pages worth
			id := live[rng.Intn(len(live))]
			n := (1 + rng.Intn(3)) * cfg.PageTokens
			if err := c.Append(id, n); err != nil {
				if errors.As(err, &ErrNoPages{}) {
					// Out of pages: degrade like the serving loop — evict.
					victim, ok := c.VictimLRU()
					if !ok {
						t.Fatalf("op %d: no pages and no victim", op)
					}
					if err := c.Release(victim); err != nil {
						t.Fatalf("op %d: %v", op, err)
					}
					for i, v := range live {
						if v == victim {
							live = append(live[:i], live[i+1:]...)
							break
						}
					}
				} else {
					t.Fatalf("op %d: %v", op, err)
				}
			}
		case k < 8: // fork a shared prefix
			parent := live[rng.Intn(len(live))]
			if err := c.Fork(parent, next); err != nil {
				if !errors.As(err, &ErrNoPages{}) {
					t.Fatalf("op %d: %v", op, err)
				}
			} else {
				live = append(live, next)
				next++
			}
		case k < 9: // fault degradation: drop a suffix
			id := live[rng.Intn(len(live))]
			if tok, _ := c.Tokens(id); tok > 0 {
				s := c.seqs[id]
				if _, err := c.DropFrom(id, rng.Intn(len(s.pages))); err != nil {
					t.Fatalf("op %d: %v", op, err)
				}
			}
		default: // release
			i := rng.Intn(len(live))
			if err := c.Release(live[i]); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			live = append(live[:i], live[i+1:]...)
		}
		c.Tick(time.Millisecond)
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("op %d: invariants: %v", op, err)
		}
	}
	for _, id := range live {
		if err := c.Release(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.UsedPages != 0 || st.FreePages != cfg.CapacityPages {
		t.Fatalf("pages leaked after releasing all sequences: %+v", st)
	}
}
