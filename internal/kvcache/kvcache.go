// Package kvcache implements a paged KV-cache manager in the style of
// PagedAttention [22]: per-sequence page tables over fixed-size pages of
// self-attention vectors, reference-counted prefix sharing across sequences
// (automatic prefix caching [54]), and copy-on-write for partially filled
// pages. The paper leans on this geometry twice: pages hold "over 10
// vectors" and are read strictly in order (§2.2), and KV data is soft state
// whose pages can be dropped and recomputed.
package kvcache

import (
	"fmt"
	"sort"
	"time"

	"mrm/internal/units"
)

// SeqID names a sequence (one inference context).
type SeqID uint64

// Config sizes the cache.
type Config struct {
	// PageTokens is the number of self-attention vectors per page.
	PageTokens int
	// KVBytesPerToken is the vector size (from llm.ModelConfig).
	KVBytesPerToken units.Bytes
	// CapacityPages is the number of physical pages.
	CapacityPages int
}

// PageBytes returns the physical page size.
func (c Config) PageBytes() units.Bytes {
	return c.KVBytesPerToken * units.Bytes(c.PageTokens)
}

type page struct {
	ref    int // sequences referencing this page (0 = free)
	tokens int // filled vector count (== PageTokens when full)
}

type sequence struct {
	id         SeqID
	tokens     int
	pages      []int
	lastAccess time.Duration
}

// Cache is the paged KV-cache manager. Not safe for concurrent use.
type Cache struct {
	cfg   Config
	pages []page
	free  []int
	seqs  map[SeqID]*sequence
	clock time.Duration

	allocs      int64
	cowCopies   int64
	sharedSaved int64 // page allocations avoided via sharing
	droppedPage int64 // page references dropped by DropFrom
	recompute   int64 // tokens rolled back by DropFrom (the recompute bill)
}

// New builds a cache.
func New(cfg Config) (*Cache, error) {
	if cfg.PageTokens <= 0 || cfg.KVBytesPerToken == 0 || cfg.CapacityPages <= 0 {
		return nil, fmt.Errorf("kvcache: invalid config %+v", cfg)
	}
	c := &Cache{
		cfg:   cfg,
		pages: make([]page, cfg.CapacityPages),
		seqs:  make(map[SeqID]*sequence),
	}
	for i := cfg.CapacityPages - 1; i >= 0; i-- {
		c.free = append(c.free, i)
	}
	return c, nil
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Tick advances the cache's logical clock (used for LRU decisions).
func (c *Cache) Tick(dt time.Duration) { c.clock += dt }

// NewSequence registers an empty sequence.
func (c *Cache) NewSequence(id SeqID) error {
	if _, ok := c.seqs[id]; ok {
		return fmt.Errorf("kvcache: sequence %d exists", id)
	}
	c.seqs[id] = &sequence{id: id, lastAccess: c.clock}
	return nil
}

// Fork creates child sharing parent's prefix: full pages are shared
// (ref-counted); a partially filled last page is copied (CoW) so the child
// can append independently.
func (c *Cache) Fork(parent, child SeqID) error {
	p, ok := c.seqs[parent]
	if !ok {
		return fmt.Errorf("kvcache: no sequence %d", parent)
	}
	if _, ok := c.seqs[child]; ok {
		return fmt.Errorf("kvcache: sequence %d exists", child)
	}
	s := &sequence{id: child, tokens: p.tokens, lastAccess: c.clock}
	for i, pg := range p.pages {
		last := i == len(p.pages)-1
		if last && c.pages[pg].tokens < c.cfg.PageTokens {
			// Copy the partial page.
			np, err := c.allocPage()
			if err != nil {
				// Roll back pages taken so far (shares and copies).
				for _, taken := range s.pages {
					c.pages[taken].ref--
					if c.pages[taken].ref == 0 {
						c.pages[taken].tokens = 0
						c.free = append(c.free, taken)
					}
				}
				return err
			}
			c.pages[np].tokens = c.pages[pg].tokens
			c.cowCopies++
			s.pages = append(s.pages, np)
		} else {
			c.pages[pg].ref++
			c.sharedSaved++
			s.pages = append(s.pages, pg)
		}
	}
	c.seqs[child] = s
	return nil
}

// Append adds n vectors to the sequence, allocating pages as needed.
// Appending to a shared partial page triggers copy-on-write.
func (c *Cache) Append(id SeqID, n int) error {
	s, ok := c.seqs[id]
	if !ok {
		return fmt.Errorf("kvcache: no sequence %d", id)
	}
	if n <= 0 {
		return fmt.Errorf("kvcache: non-positive append %d", n)
	}
	s.lastAccess = c.clock
	for n > 0 {
		// Room in the last page?
		if len(s.pages) > 0 {
			last := s.pages[len(s.pages)-1]
			if c.pages[last].tokens < c.cfg.PageTokens {
				if c.pages[last].ref > 1 {
					// CoW: private copy before mutating.
					np, err := c.allocPage()
					if err != nil {
						return err
					}
					c.pages[np].tokens = c.pages[last].tokens
					c.pages[last].ref--
					s.pages[len(s.pages)-1] = np
					c.cowCopies++
					last = np
				}
				take := min(n, c.cfg.PageTokens-c.pages[last].tokens)
				c.pages[last].tokens += take
				s.tokens += take
				n -= take
				continue
			}
		}
		np, err := c.allocPage()
		if err != nil {
			return err
		}
		s.pages = append(s.pages, np)
	}
	return nil
}

// ErrNoPages reports cache exhaustion; callers evict or recompute.
type ErrNoPages struct{}

func (ErrNoPages) Error() string { return "kvcache: out of physical pages" }

func (c *Cache) allocPage() (int, error) {
	if len(c.free) == 0 {
		return 0, ErrNoPages{}
	}
	p := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	c.pages[p] = page{ref: 1}
	c.allocs++
	return p, nil
}

// Release drops a sequence, freeing pages whose refcount reaches zero.
func (c *Cache) Release(id SeqID) error {
	s, ok := c.seqs[id]
	if !ok {
		return fmt.Errorf("kvcache: no sequence %d", id)
	}
	for _, pg := range s.pages {
		c.pages[pg].ref--
		if c.pages[pg].ref == 0 {
			c.pages[pg].tokens = 0
			c.free = append(c.free, pg)
		}
		if c.pages[pg].ref < 0 {
			panic("kvcache: negative refcount")
		}
	}
	delete(c.seqs, id)
	return nil
}

// DropFrom drops the sequence's pages from index pageIdx onward — the
// degradation path for an uncorrectable fault in that page. Pages are read
// strictly in order (§2.2), so losing page i invalidates the sequence's
// suffix: the sequence rolls back to its last intact prefix and the dropped
// tokens become a recompute obligation. Pages shared with other sequences
// survive for those owners via refcount — only this sequence's references
// are dropped. Returns the number of tokens rolled back.
func (c *Cache) DropFrom(id SeqID, pageIdx int) (int, error) {
	s, ok := c.seqs[id]
	if !ok {
		return 0, fmt.Errorf("kvcache: no sequence %d", id)
	}
	if pageIdx < 0 || pageIdx >= len(s.pages) {
		return 0, fmt.Errorf("kvcache: seq %d has no page %d", id, pageIdx)
	}
	dropped := 0
	for _, pg := range s.pages[pageIdx:] {
		dropped += c.pages[pg].tokens
		c.pages[pg].ref--
		if c.pages[pg].ref == 0 {
			c.pages[pg].tokens = 0
			c.free = append(c.free, pg)
		}
		if c.pages[pg].ref < 0 {
			panic("kvcache: negative refcount")
		}
		c.droppedPage++
	}
	s.pages = s.pages[:pageIdx]
	s.tokens -= dropped
	s.lastAccess = c.clock
	c.recompute += int64(dropped)
	return dropped, nil
}

// Touch records a read of the sequence (for LRU).
func (c *Cache) Touch(id SeqID) error {
	s, ok := c.seqs[id]
	if !ok {
		return fmt.Errorf("kvcache: no sequence %d", id)
	}
	s.lastAccess = c.clock
	return nil
}

// VictimLRU returns the least-recently-accessed sequence, or false if empty.
func (c *Cache) VictimLRU() (SeqID, bool) {
	var best *sequence
	for _, s := range c.seqs {
		if best == nil || s.lastAccess < best.lastAccess ||
			(s.lastAccess == best.lastAccess && s.id < best.id) {
			best = s
		}
	}
	if best == nil {
		return 0, false
	}
	return best.id, true
}

// Tokens returns the sequence's token count.
func (c *Cache) Tokens(id SeqID) (int, error) {
	s, ok := c.seqs[id]
	if !ok {
		return 0, fmt.Errorf("kvcache: no sequence %d", id)
	}
	return s.tokens, nil
}

// PageRange is a contiguous physical region holding part of a sequence.
type PageRange struct {
	Addr units.Bytes
	Size units.Bytes
}

// ReadPlan returns the physical regions read (in order) by one decode step
// of the sequence: its pages, each read fully and sequentially. This is the
// access pattern §2.2 calls "sequential and predictable".
func (c *Cache) ReadPlan(id SeqID) ([]PageRange, error) {
	s, ok := c.seqs[id]
	if !ok {
		return nil, fmt.Errorf("kvcache: no sequence %d", id)
	}
	s.lastAccess = c.clock
	pb := c.cfg.PageBytes()
	out := make([]PageRange, 0, len(s.pages))
	for _, pg := range s.pages {
		size := c.cfg.KVBytesPerToken * units.Bytes(c.pages[pg].tokens)
		if size == 0 {
			continue
		}
		out = append(out, PageRange{Addr: units.Bytes(pg) * pb, Size: size})
	}
	return out, nil
}

// Stats summarizes cache state.
type Stats struct {
	Sequences   int
	UsedPages   int
	FreePages   int
	SharedPages int // pages with ref > 1
	Allocations int64
	CoWCopies   int64
	SharedSaved int64
	// DroppedPages and RecomputeTokens account DropFrom (fault degradation):
	// page references rolled back and the tokens owed to recomputation.
	DroppedPages    int64
	RecomputeTokens int64
	// Utilization is filled-vector bytes over used-page bytes (internal
	// fragmentation shows up as utilization < 1).
	Utilization float64
}

// Stats computes current statistics.
func (c *Cache) Stats() Stats {
	st := Stats{
		Sequences:   len(c.seqs),
		FreePages:   len(c.free),
		Allocations: c.allocs,
		CoWCopies:   c.cowCopies,
		SharedSaved: c.sharedSaved,

		DroppedPages:    c.droppedPage,
		RecomputeTokens: c.recompute,
	}
	usedTokens := 0
	for i := range c.pages {
		if c.pages[i].ref > 0 {
			st.UsedPages++
			usedTokens += c.pages[i].tokens
			if c.pages[i].ref > 1 {
				st.SharedPages++
			}
		}
	}
	if st.UsedPages > 0 {
		st.Utilization = float64(usedTokens) / float64(st.UsedPages*c.cfg.PageTokens)
	}
	return st
}

// CheckInvariants verifies refcount and free-list consistency.
func (c *Cache) CheckInvariants() error {
	refs := make([]int, len(c.pages))
	for _, id := range c.Sequences() {
		s := c.seqs[id]
		seen := map[int]bool{}
		total := 0
		for _, pg := range s.pages {
			if pg < 0 || pg >= len(c.pages) {
				return fmt.Errorf("kvcache: seq %d references bad page %d", s.id, pg)
			}
			if seen[pg] {
				return fmt.Errorf("kvcache: seq %d references page %d twice", s.id, pg)
			}
			seen[pg] = true
			refs[pg]++
			total += c.pages[pg].tokens
		}
		if total != s.tokens {
			return fmt.Errorf("kvcache: seq %d tokens %d != page sum %d", s.id, s.tokens, total)
		}
	}
	inFree := map[int]bool{}
	for _, pg := range c.free {
		if inFree[pg] {
			return fmt.Errorf("kvcache: page %d on free list twice", pg)
		}
		inFree[pg] = true
	}
	for i := range c.pages {
		if refs[i] != c.pages[i].ref {
			return fmt.Errorf("kvcache: page %d ref %d, actual %d", i, c.pages[i].ref, refs[i])
		}
		if (c.pages[i].ref == 0) != inFree[i] {
			return fmt.Errorf("kvcache: page %d free-list membership inconsistent (ref=%d)", i, c.pages[i].ref)
		}
	}
	return nil
}

// Sequences returns all sequence ids, sorted (for deterministic iteration).
func (c *Cache) Sequences() []SeqID {
	out := make([]SeqID, 0, len(c.seqs))
	for id := range c.seqs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
