package kvcache

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"mrm/internal/units"
)

func testConfig() Config {
	return Config{PageTokens: 16, KVBytesPerToken: 320 * units.KiB, CapacityPages: 64}
}

func newCache(t *testing.T) *Cache {
	t.Helper()
	c, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{PageTokens: 0, KVBytesPerToken: 1, CapacityPages: 1},
		{PageTokens: 1, KVBytesPerToken: 0, CapacityPages: 1},
		{PageTokens: 1, KVBytesPerToken: 1, CapacityPages: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestPageBytes(t *testing.T) {
	cfg := testConfig()
	if cfg.PageBytes() != 16*320*units.KiB {
		t.Fatalf("PageBytes = %v", cfg.PageBytes())
	}
}

func TestAppendAllocatesPages(t *testing.T) {
	c := newCache(t)
	if err := c.NewSequence(1); err != nil {
		t.Fatal(err)
	}
	if err := c.NewSequence(1); err == nil {
		t.Fatal("duplicate sequence should error")
	}
	if err := c.Append(1, 40); err != nil { // 2.5 pages
		t.Fatal(err)
	}
	n, err := c.Tokens(1)
	if err != nil || n != 40 {
		t.Fatalf("Tokens = %d, %v", n, err)
	}
	st := c.Stats()
	if st.UsedPages != 3 {
		t.Fatalf("UsedPages = %d, want 3", st.UsedPages)
	}
	if st.Utilization <= 0.7 || st.Utilization >= 1 {
		t.Errorf("Utilization = %v (internal fragmentation expected in last page)", st.Utilization)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendErrors(t *testing.T) {
	c := newCache(t)
	if err := c.Append(9, 1); err == nil {
		t.Error("append to unknown sequence should error")
	}
	_ = c.NewSequence(1)
	if err := c.Append(1, 0); err == nil {
		t.Error("zero append should error")
	}
}

func TestExhaustion(t *testing.T) {
	c := newCache(t)
	_ = c.NewSequence(1)
	err := c.Append(1, 16*64+1) // one token more than capacity
	var noPages ErrNoPages
	if !errors.As(err, &noPages) {
		t.Fatalf("expected ErrNoPages, got %v", err)
	}
}

func TestReleaseFreesPages(t *testing.T) {
	c := newCache(t)
	_ = c.NewSequence(1)
	_ = c.Append(1, 64)
	free0 := c.Stats().FreePages
	if err := c.Release(1); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().FreePages; got != free0+4 {
		t.Fatalf("FreePages = %d, want %d", got, free0+4)
	}
	if err := c.Release(1); err == nil {
		t.Fatal("double release should error")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestForkSharesFullPages(t *testing.T) {
	c := newCache(t)
	_ = c.NewSequence(1)
	_ = c.Append(1, 32) // 2 full pages
	used0 := c.Stats().UsedPages
	if err := c.Fork(1, 2); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.UsedPages != used0 {
		t.Fatalf("full-page fork should allocate nothing: %d -> %d", used0, st.UsedPages)
	}
	if st.SharedPages != 2 {
		t.Fatalf("SharedPages = %d, want 2", st.SharedPages)
	}
	n, _ := c.Tokens(2)
	if n != 32 {
		t.Fatalf("child tokens = %d", n)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestForkCopiesPartialPage(t *testing.T) {
	c := newCache(t)
	_ = c.NewSequence(1)
	_ = c.Append(1, 20) // 1 full + 1 partial
	used0 := c.Stats().UsedPages
	if err := c.Fork(1, 2); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.UsedPages != used0+1 {
		t.Fatalf("partial page should be copied: used %d -> %d", used0, st.UsedPages)
	}
	if st.CoWCopies != 1 {
		t.Fatalf("CoWCopies = %d", st.CoWCopies)
	}
	// Appends diverge independently.
	_ = c.Append(1, 1)
	_ = c.Append(2, 5)
	n1, _ := c.Tokens(1)
	n2, _ := c.Tokens(2)
	if n1 != 21 || n2 != 25 {
		t.Fatalf("tokens = %d, %d", n1, n2)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDropFromRollsBackSuffix(t *testing.T) {
	c := newCache(t)
	_ = c.NewSequence(1)
	_ = c.Append(1, 3*16+5) // 3 full pages + 1 partial (5 tokens)
	used0 := c.Stats().UsedPages

	// Lose page 1: pages 1..3 are invalidated (reads are strictly in order),
	// so 2*16+5 tokens roll back and become a recompute obligation.
	dropped, err := c.DropFrom(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2*16 + 5; dropped != want {
		t.Fatalf("dropped = %d, want %d", dropped, want)
	}
	n, _ := c.Tokens(1)
	if n != 16 {
		t.Fatalf("surviving prefix = %d tokens, want 16", n)
	}
	st := c.Stats()
	if st.UsedPages != used0-3 {
		t.Fatalf("used pages %d -> %d, want 3 freed", used0, st.UsedPages)
	}
	if st.DroppedPages != 3 {
		t.Fatalf("DroppedPages = %d, want 3", st.DroppedPages)
	}
	// The recompute obligation equals exactly the rolled-back tokens.
	if st.RecomputeTokens != int64(dropped) {
		t.Fatalf("RecomputeTokens = %d, want %d", st.RecomputeTokens, dropped)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The sequence keeps working: re-append the lost tokens.
	if err := c.Append(1, dropped); err != nil {
		t.Fatal(err)
	}
	if n, _ := c.Tokens(1); n != 3*16+5 {
		t.Fatalf("tokens after recompute = %d", n)
	}
}

func TestDropFromSparesSharedPrefix(t *testing.T) {
	c := newCache(t)
	_ = c.NewSequence(1)
	_ = c.Append(1, 48) // 3 full pages
	if err := c.Fork(1, 2); err != nil {
		t.Fatal(err)
	}
	// Child loses its whole context. The pages are prefix-shared with the
	// parent, so the refcount keeps every one of them alive for seq 1.
	used0 := c.Stats().UsedPages
	dropped, err := c.DropFrom(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 48 {
		t.Fatalf("dropped = %d, want 48", dropped)
	}
	st := c.Stats()
	if st.UsedPages != used0 {
		t.Fatalf("shared pages must survive the drop: used %d -> %d", used0, st.UsedPages)
	}
	if n, _ := c.Tokens(1); n != 48 {
		t.Fatalf("parent tokens = %d, want 48 intact", n)
	}
	if n, _ := c.Tokens(2); n != 0 {
		t.Fatalf("child tokens = %d, want 0", n)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Dropping the parent's copy too releases the pages for real.
	if _, err := c.DropFrom(1, 0); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().UsedPages; got != used0-3 {
		t.Fatalf("after both drops used = %d, want %d", got, used0-3)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDropFromErrors(t *testing.T) {
	c := newCache(t)
	if _, err := c.DropFrom(9, 0); err == nil {
		t.Error("unknown sequence should error")
	}
	_ = c.NewSequence(1)
	_ = c.Append(1, 16)
	if _, err := c.DropFrom(1, -1); err == nil {
		t.Error("negative page index should error")
	}
	if _, err := c.DropFrom(1, 1); err == nil {
		t.Error("out-of-range page index should error")
	}
}

func TestForkErrors(t *testing.T) {
	c := newCache(t)
	if err := c.Fork(1, 2); err == nil {
		t.Error("fork of unknown parent should error")
	}
	_ = c.NewSequence(1)
	_ = c.NewSequence(2)
	if err := c.Fork(1, 2); err == nil {
		t.Error("fork onto existing child should error")
	}
}

func TestCoWOnSharedAppend(t *testing.T) {
	// Two sequences share full pages after fork; appending to the child's
	// shared *full* page allocates a fresh page (no CoW needed); but a
	// shared partial page produced by releasing... exercise CoW via a
	// 3-way fork where partial pages get shared through full-page path.
	c := newCache(t)
	_ = c.NewSequence(1)
	_ = c.Append(1, 16) // exactly one full page
	_ = c.Fork(1, 2)
	// Parent and child both append: each gets its own new page.
	if err := c.Append(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Append(2, 1); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.SharedPages != 1 {
		t.Fatalf("SharedPages = %d, want 1 (the full prefix page)", st.SharedPages)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Releasing the parent keeps the shared page alive for the child.
	_ = c.Release(1)
	if _, err := c.ReadPlan(2); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadPlanSequential(t *testing.T) {
	c := newCache(t)
	_ = c.NewSequence(1)
	_ = c.Append(1, 40)
	plan, err := c.ReadPlan(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 3 {
		t.Fatalf("plan length = %d", len(plan))
	}
	var total units.Bytes
	for i, pr := range plan {
		if pr.Size == 0 {
			t.Error("zero-size range in plan")
		}
		total += pr.Size
		// Full pages except the last.
		if i < len(plan)-1 && pr.Size != c.Config().PageBytes() {
			t.Errorf("range %d size %v, want full page", i, pr.Size)
		}
	}
	if total != 40*c.Config().KVBytesPerToken {
		t.Fatalf("plan bytes = %v", total)
	}
	if _, err := c.ReadPlan(99); err == nil {
		t.Error("plan for unknown sequence should error")
	}
}

func TestVictimLRU(t *testing.T) {
	c := newCache(t)
	if _, ok := c.VictimLRU(); ok {
		t.Fatal("empty cache has no victim")
	}
	_ = c.NewSequence(1)
	c.Tick(time.Second)
	_ = c.NewSequence(2)
	c.Tick(time.Second)
	if v, ok := c.VictimLRU(); !ok || v != 1 {
		t.Fatalf("victim = %d, want 1", v)
	}
	// Touching 1 makes 2 the victim.
	if err := c.Touch(1); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.VictimLRU(); v != 2 {
		t.Fatalf("victim after touch = %d, want 2", v)
	}
	if err := c.Touch(42); err == nil {
		t.Error("touch of unknown sequence should error")
	}
}

func TestSequencesSorted(t *testing.T) {
	c := newCache(t)
	for _, id := range []SeqID{5, 1, 3} {
		_ = c.NewSequence(id)
	}
	got := c.Sequences()
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("Sequences = %v", got)
	}
}

// Prefix sharing saves pages proportional to the shared prefix (E12).
func TestSharingSavesMemory(t *testing.T) {
	cfg := testConfig()
	cfg.CapacityPages = 1024
	c, _ := New(cfg)
	_ = c.NewSequence(0)
	_ = c.Append(0, 256) // 16 pages of shared system prompt
	for i := SeqID(1); i <= 10; i++ {
		if err := c.Fork(0, i); err != nil {
			t.Fatal(err)
		}
		if err := c.Append(i, 16); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	// Without sharing: 11 copies of 16 pages + 10 appended = 186.
	// With sharing: 16 + 10 = 26.
	if st.UsedPages > 30 {
		t.Fatalf("UsedPages = %d; sharing is not working", st.UsedPages)
	}
	if st.SharedSaved < 100 {
		t.Errorf("SharedSaved = %d", st.SharedSaved)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Property: arbitrary interleavings of create/append/fork/release keep the
// invariants and page accounting exact.
func TestInvariantsProperty(t *testing.T) {
	type op struct {
		Kind uint8
		Seq  uint8
		N    uint8
	}
	f := func(ops []op) bool {
		cfg := testConfig()
		cfg.CapacityPages = 256
		c, err := New(cfg)
		if err != nil {
			return false
		}
		next := SeqID(0)
		live := map[SeqID]bool{}
		pick := func(sel uint8) (SeqID, bool) {
			ids := c.Sequences()
			if len(ids) == 0 {
				return 0, false
			}
			return ids[int(sel)%len(ids)], true
		}
		for _, o := range ops {
			switch o.Kind % 4 {
			case 0:
				if err := c.NewSequence(next); err != nil {
					return false
				}
				live[next] = true
				next++
			case 1:
				if id, ok := pick(o.Seq); ok {
					if err := c.Append(id, int(o.N)%40+1); err != nil {
						if _, full := err.(ErrNoPages); !full {
							return false
						}
					}
				}
			case 2:
				if id, ok := pick(o.Seq); ok {
					if err := c.Fork(id, next); err != nil {
						if _, full := err.(ErrNoPages); !full {
							return false
						}
					} else {
						live[next] = true
						next++
					}
				}
			case 3:
				if id, ok := pick(o.Seq); ok {
					if err := c.Release(id); err != nil {
						return false
					}
					delete(live, id)
				}
			}
			if err := c.CheckInvariants(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
