// Package fault is the deterministic fault-injection engine behind the
// simulator's robustness experiments. The paper's degradation story (§2.2,
// §4) is that inference data tolerates loss — KV pages are soft state that
// "can be dropped and recomputed", and retention-aware error correction turns
// retention lapses into a managed failure mode instead of silent corruption.
// Evaluating that story requires failures to be first-class events, and for
// the experiment drivers to stay reproducible those events must not depend on
// scheduling.
//
// Determinism contract (mirrors internal/sweep):
//
//   - A fault decision is a pure function of (seed, stream, event): no shared
//     RNG advances, so two goroutines — or two runs at different -parallel
//     settings — asking the same question get the same answer.
//   - Streams partition the event space by fault kind (transient vs retention
//     lapse vs node fail-stop); events are the consumer's own monotone
//     counters (a device's read index, a node's id), which are themselves
//     deterministic.
//   - Injectors are cheap value-like objects; a nil *Injector never fires, so
//     fault paths cost one nil check when injection is disabled.
package fault

import "errors"

// ErrUncorrectable reports a read whose raw bit errors exceeded the ECC
// plan's correction capability: the stored data is lost. Layers above decide
// what that means — KV pages are dropped and recomputed, weights are restored
// from their durable upstream copy, anything else is an error. Callers branch
// with errors.Is.
var ErrUncorrectable = errors.New("uncorrectable memory error (ECC capacity exceeded)")

// Stream identifiers partition fault decisions by kind so one seed can drive
// several independent fault processes without correlation.
const (
	// StreamTransient is the per-read transient (particle strike, read
	// disturb) fault process.
	StreamTransient uint64 = 1
	// StreamLapse is the per-read retention-lapse process: the touched data
	// decayed past its retention window before the scrubber reached it.
	StreamLapse uint64 = 2
	// StreamNodeFail is reserved for fleet-level fail-stop processes.
	StreamNodeFail uint64 = 3
	// StreamWriteFault is the per-write program-failure process: the write
	// pulse completed (and is charged) but the cells did not latch, so the
	// data is lost at write time rather than discovered on a later read.
	StreamWriteFault uint64 = 4
)

// mix64 is the splitmix64 finalizer: a full-avalanche permutation of uint64.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DeriveSeed maps (base, index) to an independent full-entropy seed, the same
// derivation internal/sweep uses for per-cell seeds — so a memory system can
// hand each of its tiers an uncorrelated fault seed.
func DeriveSeed(base uint64, index int) uint64 {
	return mix64(base + (uint64(index)+1)*0x9e3779b97f4a7c15)
}

// U01 maps (seed, stream, event) to a uniform value in [0, 1). It is pure:
// the same triple always yields the same value, on any goroutine.
func U01(seed, stream, event uint64) float64 {
	x := mix64(seed ^ mix64(stream*0x9e3779b97f4a7c15)) // per-stream subkey
	x = mix64(x + (event+1)*0x9e3779b97f4a7c15)
	return float64(x>>11) / (1 << 53)
}

// Injector decides fault occurrences at a fixed rate. The zero value and the
// nil pointer are both disabled injectors.
type Injector struct {
	seed uint64
	rate float64
}

// NewInjector builds an injector firing with probability rate per trial.
// rate <= 0 returns nil (disabled), so callers can gate on a nil check.
func NewInjector(seed uint64, rate float64) *Injector {
	if rate <= 0 {
		return nil
	}
	return &Injector{seed: seed, rate: rate}
}

// Rate returns the per-trial fault probability (0 for a disabled injector).
func (in *Injector) Rate() float64 {
	if in == nil {
		return 0
	}
	return in.rate
}

// Hit reports whether the fault fires for the given (stream, event) pair.
// Pure: independent of call order, goroutine, and every other (stream, event).
func (in *Injector) Hit(stream, event uint64) bool {
	if in == nil || in.rate <= 0 {
		return false
	}
	if in.rate >= 1 {
		return true
	}
	return U01(in.seed, stream, event) < in.rate
}
