package fault

import (
	"errors"
	"fmt"
	"testing"
)

func TestHitIsPure(t *testing.T) {
	in := NewInjector(42, 0.3)
	for event := uint64(0); event < 100; event++ {
		a := in.Hit(StreamTransient, event)
		b := in.Hit(StreamTransient, event)
		if a != b {
			t.Fatalf("Hit not pure at event %d: %v then %v", event, a, b)
		}
	}
}

func TestHitOrderIndependence(t *testing.T) {
	in := NewInjector(7, 0.5)
	forward := make([]bool, 1000)
	for e := range forward {
		forward[e] = in.Hit(StreamLapse, uint64(e))
	}
	for e := len(forward) - 1; e >= 0; e-- {
		if got := in.Hit(StreamLapse, uint64(e)); got != forward[e] {
			t.Fatalf("event %d changed with query order: %v vs %v", e, got, forward[e])
		}
	}
}

func TestDisabledInjectorNeverFires(t *testing.T) {
	var nilIn *Injector
	if nilIn.Hit(StreamTransient, 1) {
		t.Error("nil injector fired")
	}
	if nilIn.Rate() != 0 {
		t.Error("nil injector has nonzero rate")
	}
	if NewInjector(1, 0) != nil {
		t.Error("rate-0 injector not nil")
	}
	if NewInjector(1, -0.5) != nil {
		t.Error("negative-rate injector not nil")
	}
}

func TestSaturatedRateAlwaysFires(t *testing.T) {
	in := NewInjector(9, 1)
	for e := uint64(0); e < 100; e++ {
		if !in.Hit(StreamTransient, e) {
			t.Fatalf("rate-1 injector missed event %d", e)
		}
	}
}

func TestEmpiricalRate(t *testing.T) {
	const n = 200000
	for _, rate := range []float64{0.01, 0.1, 0.5} {
		in := NewInjector(1234, rate)
		hits := 0
		for e := uint64(0); e < n; e++ {
			if in.Hit(StreamTransient, e) {
				hits++
			}
		}
		got := float64(hits) / n
		if got < rate*0.9 || got > rate*1.1 {
			t.Errorf("rate %g: empirical %g outside ±10%%", rate, got)
		}
	}
}

func TestStreamsAreIndependent(t *testing.T) {
	in := NewInjector(55, 0.5)
	same := 0
	const n = 10000
	for e := uint64(0); e < n; e++ {
		if in.Hit(StreamTransient, e) == in.Hit(StreamLapse, e) {
			same++
		}
	}
	// Independent fair streams agree ~50% of the time; correlated streams
	// agree ~100% or ~0%.
	frac := float64(same) / n
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("streams correlate: agreement %g", frac)
	}
}

func TestDeriveSeedSpreads(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(0, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("DeriveSeed collision: index %d and %d", prev, i)
		}
		seen[s] = i
	}
}

func TestU01Range(t *testing.T) {
	for e := uint64(0); e < 10000; e++ {
		v := U01(3, StreamTransient, e)
		if v < 0 || v >= 1 {
			t.Fatalf("U01 out of range at event %d: %g", e, v)
		}
	}
}

func TestErrUncorrectableWrapping(t *testing.T) {
	wrapped := fmt.Errorf("memdev: read [0, 64): %w", ErrUncorrectable)
	if !errors.Is(wrapped, ErrUncorrectable) {
		t.Error("wrapped ErrUncorrectable not recognized by errors.Is")
	}
}
