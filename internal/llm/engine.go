package llm

import (
	"fmt"
	"time"

	"mrm/internal/units"
)

// Bound says which resource limited a phase.
type Bound int

// Bounds.
const (
	ComputeBound Bound = iota
	MemoryBound
)

// String names the bound.
func (b Bound) String() string {
	if b == ComputeBound {
		return "compute"
	}
	return "memory"
}

// PhaseCost is the cost of one inference phase (a prefill, or one decode
// step across a batch): the memory traffic it generates and the time it
// takes on a given accelerator.
type PhaseCost struct {
	ReadBytes  units.Bytes // weights + KV read
	WriteBytes units.Bytes // KV appended (+ activations written)
	FLOPs      float64

	ComputeTime time.Duration
	MemoryTime  time.Duration
	Bound       Bound
}

// Time is the phase latency: max of compute and memory time (perfect
// overlap, the standard roofline assumption).
func (c PhaseCost) Time() time.Duration {
	if c.ComputeTime > c.MemoryTime {
		return c.ComputeTime
	}
	return c.MemoryTime
}

// ReadWriteRatio returns bytes read per byte written.
func (c PhaseCost) ReadWriteRatio() float64 {
	if c.WriteBytes == 0 {
		return 0
	}
	return float64(c.ReadBytes) / float64(c.WriteBytes)
}

// Engine computes phase costs for one model on one accelerator.
type Engine struct {
	Model ModelConfig
	Acc   Accelerator
	// MFU is the achieved fraction of peak FLOPs (model FLOP utilization);
	// production serving lands around 0.4–0.6. Default 0.5.
	MFU float64
	// BWUtil is achieved fraction of peak memory bandwidth. Default 0.8.
	BWUtil float64
}

// NewEngine builds an engine with default utilization factors.
func NewEngine(model ModelConfig, acc Accelerator) (*Engine, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if acc.FLOPS <= 0 || acc.MemBW <= 0 {
		return nil, fmt.Errorf("llm: accelerator %q has no compute or bandwidth", acc.Name)
	}
	return &Engine{Model: model, Acc: acc, MFU: 0.5, BWUtil: 0.8}, nil
}

func (e *Engine) effFLOPS() float64 { return e.Acc.FLOPS * e.MFU }
func (e *Engine) effBW() units.Bandwidth {
	return e.Acc.MemBW * units.Bandwidth(e.BWUtil)
}

// finish fills in times and bound from traffic and FLOPs.
func (e *Engine) finish(c PhaseCost) PhaseCost {
	c.ComputeTime = time.Duration(c.FLOPs / e.effFLOPS() * float64(time.Second))
	c.MemoryTime = e.effBW().Time(c.ReadBytes + c.WriteBytes)
	if c.ComputeTime >= c.MemoryTime {
		c.Bound = ComputeBound
	} else {
		c.Bound = MemoryBound
	}
	return c
}

// Prefill returns the cost of ingesting prompts for a batch of requests.
// Weights are read once for the fused pass (batching amortizes them);
// the KV cache for every prompt token is written out. Prefill is compute
// bound for realistic prompt lengths — the paper's reason decode, not
// prefill, sets the memory-bandwidth agenda.
func (e *Engine) Prefill(promptLens []int) (PhaseCost, error) {
	if len(promptLens) == 0 {
		return PhaseCost{}, fmt.Errorf("llm: empty prefill batch")
	}
	total := 0
	var flops float64
	for _, n := range promptLens {
		if n <= 0 {
			return PhaseCost{}, fmt.Errorf("llm: non-positive prompt length %d", n)
		}
		if n > e.Model.MaxContext {
			return PhaseCost{}, fmt.Errorf("llm: prompt %d exceeds context %d", n, e.Model.MaxContext)
		}
		total += n
		// Attention inside the prompt is quadratic: sum over positions.
		flops += 2*e.Model.Params*float64(n) +
			2*float64(e.Model.Layers*e.Model.KVHeads*e.Model.HeadDim)*float64(n)*float64(n)
	}
	// Activation tensors stay in on-chip scratch and are excluded from the
	// read:write arithmetic, matching the paper's accounting ("for one
	// self-attention vector write").
	c := PhaseCost{
		// A prefill touches enough tokens to route through every expert.
		ReadBytes:  e.Model.WeightReadBytes(total),
		WriteBytes: e.Model.KVBytesPerToken() * units.Bytes(total),
		FLOPs:      flops,
	}
	return e.finish(c), nil
}

// DecodeStep returns the cost of generating one token for every sequence in
// the batch, where ctxLens are the current context lengths. All weights are
// read once (shared across the batch); each sequence's entire KV cache is
// read; one KV vector per sequence is written — the >1000:1 read:write
// pattern of §2.2.
func (e *Engine) DecodeStep(ctxLens []int) (PhaseCost, error) {
	if len(ctxLens) == 0 {
		return PhaseCost{}, fmt.Errorf("llm: empty decode batch")
	}
	var kvRead units.Bytes
	var flops float64
	for _, n := range ctxLens {
		if n <= 0 {
			return PhaseCost{}, fmt.Errorf("llm: non-positive context length %d", n)
		}
		kvRead += e.Model.KVCacheBytes(n)
		flops += e.Model.FLOPsPerToken(n)
	}
	c := PhaseCost{
		ReadBytes:  e.Model.WeightReadBytes(len(ctxLens)) + kvRead,
		WriteBytes: e.Model.KVBytesPerToken() * units.Bytes(len(ctxLens)),
		FLOPs:      flops,
	}
	return e.finish(c), nil
}

// TimeForFLOPs converts a FLOP count into compute time at the engine's
// effective throughput (used by schedulers that fuse prefill chunks into
// decode steps).
func (e *Engine) TimeForFLOPs(f float64) time.Duration {
	return time.Duration(f / e.effFLOPS() * float64(time.Second))
}

// DecodeTokensPerSec returns steady-state decode throughput for a batch all
// at context length ctx.
func (e *Engine) DecodeTokensPerSec(batch, ctx int) (float64, error) {
	ctxs := make([]int, batch)
	for i := range ctxs {
		ctxs[i] = ctx
	}
	c, err := e.DecodeStep(ctxs)
	if err != nil {
		return 0, err
	}
	return float64(batch) / c.Time().Seconds(), nil
}

// MemoryFootprint summarizes resident capacity demand for a serving
// configuration: weights + KV for live contexts + activations.
type MemoryFootprint struct {
	Weights     units.Bytes
	KVCache     units.Bytes
	Activations units.Bytes
}

// Total sums the footprint.
func (f MemoryFootprint) Total() units.Bytes {
	return f.Weights + f.KVCache + f.Activations
}

// Footprint computes the capacity breakdown for a batch of live contexts —
// the paper's §2 capacity claim (E3).
func (e *Engine) Footprint(ctxLens []int) MemoryFootprint {
	var kv units.Bytes
	for _, n := range ctxLens {
		kv += e.Model.KVCacheBytes(n)
	}
	return MemoryFootprint{
		Weights:     e.Model.WeightBytes(),
		KVCache:     kv,
		Activations: e.Model.ActivationBytes(len(ctxLens)),
	}
}
