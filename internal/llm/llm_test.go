package llm

import (
	"math"
	"strings"
	"testing"
	"time"

	"mrm/internal/units"
)

func TestPrecisionBytes(t *testing.T) {
	if FP32.Bytes() != 4 || FP16.Bytes() != 2 || FP8.Bytes() != 1 || INT4.Bytes() != 0.5 {
		t.Fatal("precision sizes wrong")
	}
	if FP16.String() != "fp16" || INT4.String() != "int4" {
		t.Fatal("precision names wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown precision should panic")
		}
	}()
	Precision(9).Bytes()
}

func TestPresetsValidate(t *testing.T) {
	if len(Models()) < 5 {
		t.Fatal("expected at least five presets")
	}
	for _, m := range Models() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestModelByName(t *testing.T) {
	m, err := ModelByName("Llama2-70B")
	if err != nil || m.Layers != 80 {
		t.Fatalf("lookup failed: %+v, %v", m, err)
	}
	if _, err := ModelByName("nope"); err == nil {
		t.Fatal("unknown model should error")
	}
}

func TestValidateCatchesBadGeometry(t *testing.T) {
	bad := []ModelConfig{
		{Name: "a", Params: 0, Layers: 1, Heads: 1, KVHeads: 1, HeadDim: 1, MaxContext: 1},
		{Name: "b", Params: 1, Layers: 0, Heads: 1, KVHeads: 1, HeadDim: 1, MaxContext: 1},
		{Name: "c", Params: 1, Layers: 1, Heads: 1, KVHeads: 2, HeadDim: 1, MaxContext: 1},
		{Name: "d", Params: 1, Layers: 1, Heads: 1, KVHeads: 1, HeadDim: 1, MaxContext: 0},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("%s should fail validation", m.Name)
		}
	}
}

// Paper §2: large models have 250 GB – 1 TB of weights.
func TestWeightSizesMatchPaper(t *testing.T) {
	w70 := Llama2_70B.WeightBytes()
	if w70 < 130*units.GiB || w70 > 150*units.GiB {
		t.Errorf("Llama2-70B weights = %v, want ~140 GB", w70)
	}
	wf := Frontier500B.WeightBytes()
	if wf < 900*units.GiB || wf > 1100*units.GiB {
		t.Errorf("Frontier-500B weights = %v, want ~1 TB", wf)
	}
}

// Paper §2.2: self-attention vectors are "at most a few MBs" for MHA models,
// smaller under GQA.
func TestKVVectorSizes(t *testing.T) {
	gpt := GPT3_175B.KVBytesPerToken()
	if gpt < 4*units.MiB || gpt > 5*units.MiB {
		t.Errorf("GPT3-175B KV/token = %v, want ~4.7 MB", gpt)
	}
	llama := Llama2_70B.KVBytesPerToken()
	if llama != 327680 { // 2*80*8*128*2
		t.Errorf("Llama2-70B KV/token = %d, want 327680", llama)
	}
}

// Paper §2: KV cache grows to tens of GBs at context limits.
func TestKVCacheGrowsToTensOfGB(t *testing.T) {
	kv := Frontier500B.KVCacheBytes(16384)
	if kv < 10*units.GiB {
		t.Errorf("frontier KV at 16k ctx = %v, want tens of GB", kv)
	}
}

// Paper §2: activations are ~an order of magnitude smaller than weights/KV.
func TestActivationsAreSmall(t *testing.T) {
	f := MemoryFootprint{}
	_ = f
	e, err := NewEngine(Llama2_70B, B200)
	if err != nil {
		t.Fatal(err)
	}
	ctxs := make([]int, 32)
	for i := range ctxs {
		ctxs[i] = 2048
	}
	fp := e.Footprint(ctxs)
	if fp.Activations*5 > fp.KVCache {
		t.Errorf("activations %v should be well below KV %v", fp.Activations, fp.KVCache)
	}
	if fp.Activations*5 > fp.Weights {
		t.Errorf("activations %v should be well below weights %v", fp.Activations, fp.Weights)
	}
	if fp.Total() != fp.Weights+fp.KVCache+fp.Activations {
		t.Error("Total() inconsistent")
	}
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(ModelConfig{}, B200); err == nil {
		t.Error("bad model should error")
	}
	if _, err := NewEngine(Llama2_70B, Accelerator{}); err == nil {
		t.Error("bad accelerator should error")
	}
}

// The headline workload claim (E2): decode read:write ratio exceeds 1000:1.
func TestDecodeReadWriteRatio(t *testing.T) {
	e, err := NewEngine(Llama2_70B, B200)
	if err != nil {
		t.Fatal(err)
	}
	ctxs := make([]int, 8)
	for i := range ctxs {
		ctxs[i] = 2048
	}
	c, err := e.DecodeStep(ctxs)
	if err != nil {
		t.Fatal(err)
	}
	if r := c.ReadWriteRatio(); r < 1000 {
		t.Errorf("decode read:write = %v, want > 1000", r)
	}
}

// Paper §2.1: decode is memory bound on HBM-class hardware.
func TestDecodeIsMemoryBound(t *testing.T) {
	e, _ := NewEngine(Llama2_70B, B200)
	c, err := e.DecodeStep([]int{2048})
	if err != nil {
		t.Fatal(err)
	}
	if c.Bound != MemoryBound {
		t.Errorf("single-sequence decode should be memory bound, got %v", c.Bound)
	}
	if c.Bound.String() != "memory" || ComputeBound.String() != "compute" {
		t.Error("bound names wrong")
	}
}

// Prefill with long prompts should be compute bound.
func TestPrefillIsComputeBound(t *testing.T) {
	e, _ := NewEngine(Llama2_70B, B200)
	c, err := e.Prefill([]int{2048, 2048, 2048, 2048})
	if err != nil {
		t.Fatal(err)
	}
	if c.Bound != ComputeBound {
		t.Errorf("long-prompt prefill should be compute bound, got %v", c.Bound)
	}
}

func TestPhaseErrors(t *testing.T) {
	e, _ := NewEngine(Llama2_70B, B200)
	if _, err := e.Prefill(nil); err == nil {
		t.Error("empty prefill should error")
	}
	if _, err := e.Prefill([]int{0}); err == nil {
		t.Error("zero prompt should error")
	}
	if _, err := e.Prefill([]int{1 << 20}); err == nil {
		t.Error("over-context prompt should error")
	}
	if _, err := e.DecodeStep(nil); err == nil {
		t.Error("empty decode should error")
	}
	if _, err := e.DecodeStep([]int{-1}); err == nil {
		t.Error("negative context should error")
	}
}

// Batching amortizes weight reads: tokens/s grows with batch, sublinearly.
func TestBatchingAmortizesWeights(t *testing.T) {
	e, _ := NewEngine(Llama2_70B, B200)
	t1, err := e.DecodeTokensPerSec(1, 2048)
	if err != nil {
		t.Fatal(err)
	}
	t16, err := e.DecodeTokensPerSec(16, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if t16 <= t1*2 {
		t.Errorf("batch 16 (%v tok/s) should be well above batch 1 (%v tok/s)", t16, t1)
	}
	if t16 >= t1*16 {
		t.Errorf("batch 16 should be sublinear (KV reads don't amortize): %v vs %v", t16, t1)
	}
}

// Single-stream decode rate should be plausibly tens of tokens/s for 70B on
// B200-class hardware.
func TestDecodeRateMagnitude(t *testing.T) {
	e, _ := NewEngine(Llama2_70B, B200)
	tps, err := e.DecodeTokensPerSec(1, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if tps < 10 || tps > 200 {
		t.Errorf("batch-1 decode = %v tok/s, want O(10-100)", tps)
	}
}

func TestPhaseCostTime(t *testing.T) {
	c := PhaseCost{ComputeTime: 2 * time.Second, MemoryTime: time.Second}
	if c.Time() != 2*time.Second {
		t.Error("Time should be the max")
	}
	c = PhaseCost{ComputeTime: time.Second, MemoryTime: 3 * time.Second}
	if c.Time() != 3*time.Second {
		t.Error("Time should be the max")
	}
	if (PhaseCost{ReadBytes: 10}).ReadWriteRatio() != 0 {
		t.Error("zero writes should yield ratio 0, not Inf")
	}
}

func TestFLOPsPerTokenGrowsWithContext(t *testing.T) {
	if Llama2_70B.FLOPsPerToken(8192) <= Llama2_70B.FLOPsPerToken(128) {
		t.Error("attention FLOPs should grow with context")
	}
	// But the 2*params term dominates at short context.
	base := 2 * Llama2_70B.Params
	got := Llama2_70B.FLOPsPerToken(128)
	if math.Abs(got-base)/base > 0.01 {
		t.Errorf("short-context FLOPs %g should be ~2*params %g", got, base)
	}
}

func TestWorkloadPresets(t *testing.T) {
	for _, w := range []Workload{SplitwiseConv, SplitwiseCode} {
		if w.PromptMedian <= 0 || w.OutputMedian <= 0 ||
			w.PrefillTokensPerSec <= 0 || w.DecodeTokensPerSec <= 0 {
			t.Errorf("%s has zero parameters", w.Name)
		}
		if !strings.HasPrefix(w.Name, "splitwise-") {
			t.Errorf("workload name %q", w.Name)
		}
	}
	// Coding prompts are longer, outputs much shorter (Splitwise).
	if SplitwiseCode.PromptMedian <= SplitwiseConv.PromptMedian {
		t.Error("code prompts should be longer")
	}
	if SplitwiseCode.OutputMedian >= SplitwiseConv.OutputMedian {
		t.Error("code outputs should be shorter")
	}
}

func TestServiceLife(t *testing.T) {
	if ServiceLife != 5*units.Year {
		t.Fatal("the paper sizes endurance over 5 years")
	}
}

func TestMoEGeometry(t *testing.T) {
	if err := Mixtral8x7B.Validate(); err != nil {
		t.Fatal(err)
	}
	if !Mixtral8x7B.IsMoE() || Llama2_70B.IsMoE() {
		t.Fatal("IsMoE wrong")
	}
	bad := Mixtral8x7B
	bad.ActiveExperts = 9
	if err := bad.Validate(); err == nil {
		t.Error("active > experts should fail validation")
	}
	bad = Mixtral8x7B
	bad.ActiveExperts = 0
	if err := bad.Validate(); err == nil {
		t.Error("MoE with zero active experts should fail validation")
	}
}

func TestExpertsTouched(t *testing.T) {
	m := Mixtral8x7B
	if m.ExpertsTouched(0) != 0 {
		t.Error("zero batch touches nothing")
	}
	one := m.ExpertsTouched(1)
	if math.Abs(one-2) > 1e-9 {
		t.Errorf("batch 1 touches %v experts, want 2 (the active count)", one)
	}
	// Monotone and saturating at the expert count.
	prev := 0.0
	for _, b := range []int{1, 2, 4, 8, 32, 256} {
		v := m.ExpertsTouched(b)
		if v < prev || v > float64(m.Experts) {
			t.Fatalf("ExpertsTouched(%d) = %v not monotone/bounded", b, v)
		}
		prev = v
	}
	if m.ExpertsTouched(256) < 7.99 {
		t.Errorf("large batch should touch ~all experts: %v", m.ExpertsTouched(256))
	}
	if Llama2_70B.ExpertsTouched(4) != 0 {
		t.Error("dense model touches no experts")
	}
}

func TestMoEWeightReadBytes(t *testing.T) {
	m := Mixtral8x7B
	full := m.WeightBytes()
	b1 := m.WeightReadBytes(1)
	// Batch 1: shared third + 2/8 of the expert two-thirds = 1/2 of weights.
	want := full.MulF(1.0/3 + 2.0/3*2.0/8)
	if b1 < want-want/100 || b1 > want+want/100 {
		t.Errorf("batch-1 weight read %v, want ~%v", b1, want)
	}
	b256 := m.WeightReadBytes(256)
	if b256 < full-full/100 {
		t.Errorf("large batch should read ~all weights: %v of %v", b256, full)
	}
	if Llama2_70B.WeightReadBytes(1) != Llama2_70B.WeightBytes() {
		t.Error("dense model always reads everything")
	}
}

// MoE decode at small batch moves fewer weight bytes, so single-stream
// decoding is faster than an equal-size dense model.
func TestMoEDecodeFasterAtBatch1(t *testing.T) {
	dense := Mixtral8x7B
	dense.Name = "dense-47B"
	dense.Experts, dense.ActiveExperts = 0, 0
	eMoe, err := NewEngine(Mixtral8x7B, B200)
	if err != nil {
		t.Fatal(err)
	}
	eDense, err := NewEngine(dense, B200)
	if err != nil {
		t.Fatal(err)
	}
	moe, err := eMoe.DecodeTokensPerSec(1, 2048)
	if err != nil {
		t.Fatal(err)
	}
	dn, err := eDense.DecodeTokensPerSec(1, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if moe <= dn {
		t.Errorf("MoE batch-1 decode (%v tok/s) should beat dense (%v tok/s)", moe, dn)
	}
}
