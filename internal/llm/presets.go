// Package llm models foundation-model inference as a memory workload: model
// geometry (weights, KV cache, activations), the prefill/decode phase
// structure, and the per-token memory traffic and compute the paper's §2
// characterizes. It is an analytical model, not a neural network — the unit
// of simulation is bytes moved and FLOPs executed, which is all the memory
// architecture questions need.
//
// This file holds every workload calibration constant: model geometries from
// the published architectures, and serving-workload parameters
// (throughputs, context-length medians) following Splitwise [37].
package llm

import (
	"fmt"
	"math"
	"time"

	"mrm/internal/units"
)

// Precision is the numeric format of weights and KV entries.
type Precision int

// Precisions.
const (
	FP32 Precision = iota
	FP16
	FP8
	INT4
)

// Bytes returns bytes per element.
func (p Precision) Bytes() float64 {
	switch p {
	case FP32:
		return 4
	case FP16:
		return 2
	case FP8:
		return 1
	case INT4:
		return 0.5
	default:
		panic(fmt.Sprintf("llm: unknown precision %d", int(p)))
	}
}

// String names the precision.
func (p Precision) String() string {
	switch p {
	case FP32:
		return "fp32"
	case FP16:
		return "fp16"
	case FP8:
		return "fp8"
	case INT4:
		return "int4"
	default:
		return fmt.Sprintf("Precision(%d)", int(p))
	}
}

// ModelConfig is the memory-relevant geometry of a transformer.
type ModelConfig struct {
	Name       string
	Params     float64 // total parameter count
	Layers     int
	Heads      int
	KVHeads    int // < Heads under grouped-query attention
	HeadDim    int
	DModel     int
	Precision  Precision
	MaxContext int

	// Mixture-of-experts geometry: Experts > 0 marks an MoE model where
	// each token activates ActiveExperts of the Experts FFN experts.
	// Attention (and other shared) weights are always read; expert weights
	// are read only when routed to. All experts must stay memory-resident —
	// MoE widens the capacity-vs-read-bandwidth gap the paper discusses
	// under "expert models tailored for specific use cases" (§4).
	Experts       int
	ActiveExperts int
	// SharedFraction is the fraction of parameters outside the experts
	// (attention, embeddings, router); defaults to 1/3 when Experts > 0.
	SharedFraction float64
}

// IsMoE reports whether the model has mixture-of-experts FFNs.
func (m ModelConfig) IsMoE() bool { return m.Experts > 0 }

// sharedFraction returns the non-expert parameter share.
func (m ModelConfig) sharedFraction() float64 {
	if m.SharedFraction > 0 {
		return m.SharedFraction
	}
	return 1.0 / 3.0
}

// ExpertsTouched returns the expected number of distinct experts activated
// by a batch of b tokens routing independently (with replacement):
// E·(1 − (1 − a/E)^b).
func (m ModelConfig) ExpertsTouched(b int) float64 {
	if !m.IsMoE() || b <= 0 {
		return 0
	}
	p := float64(m.ActiveExperts) / float64(m.Experts)
	return float64(m.Experts) * (1 - math.Pow(1-p, float64(b)))
}

// WeightReadBytes returns the weight bytes one forward step must read for a
// batch of b concurrent tokens. Dense models read everything; MoE models
// read the shared weights plus only the experts the batch touched — until
// the batch is large enough to touch them all.
func (m ModelConfig) WeightReadBytes(b int) units.Bytes {
	w := float64(m.WeightBytes())
	if !m.IsMoE() {
		return units.Bytes(w)
	}
	shared := m.sharedFraction()
	frac := shared + (1-shared)*m.ExpertsTouched(b)/float64(m.Experts)
	return units.Bytes(w * frac)
}

// Validate reports geometry problems.
func (m ModelConfig) Validate() error {
	switch {
	case m.Params <= 0:
		return fmt.Errorf("llm: %s has no parameters", m.Name)
	case m.Layers <= 0 || m.Heads <= 0 || m.KVHeads <= 0 || m.HeadDim <= 0:
		return fmt.Errorf("llm: %s has bad attention geometry", m.Name)
	case m.KVHeads > m.Heads:
		return fmt.Errorf("llm: %s has more KV heads than heads", m.Name)
	case m.MaxContext <= 0:
		return fmt.Errorf("llm: %s has no context window", m.Name)
	case m.Experts < 0 || (m.Experts > 0 && (m.ActiveExperts <= 0 || m.ActiveExperts > m.Experts)):
		return fmt.Errorf("llm: %s has bad expert geometry", m.Name)
	}
	return nil
}

// WeightBytes returns the resident size of the weights.
func (m ModelConfig) WeightBytes() units.Bytes {
	return units.Bytes(m.Params * m.Precision.Bytes())
}

// KVBytesPerToken returns the self-attention vector size appended per token:
// K and V, per layer, per KV head, per head dimension.
func (m ModelConfig) KVBytesPerToken() units.Bytes {
	return units.Bytes(2 * float64(m.Layers*m.KVHeads*m.HeadDim) * m.Precision.Bytes())
}

// KVCacheBytes returns KV cache size at a context length.
func (m ModelConfig) KVCacheBytes(contextLen int) units.Bytes {
	return m.KVBytesPerToken() * units.Bytes(contextLen)
}

// ActivationBytes estimates the transient activation working set for a batch:
// roughly hidden-state tensors for a handful of layers in flight. The paper
// notes activations are about an order of magnitude smaller than weights and
// KV caches; this estimate reproduces that ratio.
func (m ModelConfig) ActivationBytes(batch int) units.Bytes {
	perToken := 12 * float64(m.DModel) * m.Precision.Bytes() // qkv+mlp intermediates
	return units.Bytes(perToken * float64(batch*m.Layers) / 4)
}

// FLOPsPerToken returns dense FLOPs to process one token (forward pass):
// the standard 2*params plus attention score work at context length ctx.
func (m ModelConfig) FLOPsPerToken(ctx int) float64 {
	attn := 4 * float64(m.Layers) * float64(ctx) * float64(m.KVHeads*m.HeadDim)
	return 2*m.Params + attn
}

// Model presets. Geometry from the published architectures; the >500B
// "frontier" preset stands in for the unnamed frontier models the paper
// describes (250 GB–1 TB of weights depending on quantization).
var (
	// Llama27B: 32 layers, 32 heads, d=4096, MHA.
	Llama27B = ModelConfig{
		Name: "Llama2-7B", Params: 6.7e9,
		Layers: 32, Heads: 32, KVHeads: 32, HeadDim: 128, DModel: 4096,
		Precision: FP16, MaxContext: 4096,
	}
	// Llama2_13B: 40 layers, 40 heads, d=5120, MHA.
	Llama2_13B = ModelConfig{
		Name: "Llama2-13B", Params: 1.3e10,
		Layers: 40, Heads: 40, KVHeads: 40, HeadDim: 128, DModel: 5120,
		Precision: FP16, MaxContext: 4096,
	}
	// Llama2_70B: 80 layers, 64 heads, GQA with 8 KV heads, d=8192 — the
	// model Splitwise [37] reports, used for the paper's Figure 1 arithmetic.
	Llama2_70B = ModelConfig{
		Name: "Llama2-70B", Params: 7.0e10,
		Layers: 80, Heads: 64, KVHeads: 8, HeadDim: 128, DModel: 8192,
		Precision: FP16, MaxContext: 4096,
	}
	// GPT3_175B-class MHA model: 96 layers, 96 heads, d=12288. Its
	// ~4.7 MB/token KV vector matches the paper's "a few MBs" [4, 44].
	GPT3_175B = ModelConfig{
		Name: "GPT3-175B", Params: 1.75e11,
		Layers: 96, Heads: 96, KVHeads: 96, HeadDim: 128, DModel: 12288,
		Precision: FP16, MaxContext: 8192,
	}
	// Frontier500B: the paper's ">500 billion weights" frontier class:
	// 250 GB at int4 .. 1 TB+ at fp16 (this preset: fp16, 1 TB).
	Frontier500B = ModelConfig{
		Name: "Frontier-500B", Params: 5.0e11,
		Layers: 120, Heads: 128, KVHeads: 16, HeadDim: 128, DModel: 16384,
		Precision: FP16, MaxContext: 32768,
	}
)

// Mixtral8x7B: the open mixture-of-experts reference: 46.7B total
// parameters, 8 experts with 2 active per token, Llama-like attention.
var Mixtral8x7B = ModelConfig{
	Name: "Mixtral-8x7B", Params: 4.67e10,
	Layers: 32, Heads: 32, KVHeads: 8, HeadDim: 128, DModel: 4096,
	Precision: FP16, MaxContext: 32768,
	Experts: 8, ActiveExperts: 2,
}

// Models lists the presets.
func Models() []ModelConfig {
	return []ModelConfig{Llama27B, Llama2_13B, Llama2_70B, GPT3_175B, Frontier500B, Mixtral8x7B}
}

// ModelByName looks up a preset.
func ModelByName(name string) (ModelConfig, error) {
	for _, m := range Models() {
		if m.Name == name {
			return m, nil
		}
	}
	return ModelConfig{}, fmt.Errorf("llm: no model named %q", name)
}

// Accelerator is the compute side of an AI accelerator package.
type Accelerator struct {
	Name     string
	FLOPS    float64         // dense FP16 FLOP/s
	MemBW    units.Bandwidth // aggregate memory bandwidth
	MemBytes units.Bytes     // on-package memory capacity
	Power    units.Power     // package TDP
}

// JoulesPerFLOP returns the marginal energy per executed FLOP implied by the
// package TDP at full utilization — the compute-side energy model used when
// comparing "recompute the KV cache" against "keep it in memory".
func (a Accelerator) JoulesPerFLOP() float64 {
	if a.FLOPS <= 0 {
		return 0
	}
	return float64(a.Power) / a.FLOPS
}

// Accelerator presets (public spec-sheet figures).
var (
	// B200-class: 8 TB/s HBM3E, 192 GB [51]; dense FP16 ~2.25 PFLOP/s.
	B200 = Accelerator{
		Name: "B200", FLOPS: 2.25e15,
		MemBW: 8 * units.TBps, MemBytes: 192 * units.GiB, Power: 1000,
	}
	// H100-class: 3.35 TB/s HBM3, 80 GB; dense FP16 ~0.99 PFLOP/s.
	H100 = Accelerator{
		Name: "H100", FLOPS: 0.99e15,
		MemBW: 3.35 * units.TBps, MemBytes: 80 * units.GiB, Power: 700,
	}
)

// Workload holds the Splitwise-derived serving parameters used by the
// endurance analysis (Figure 1) and the cluster simulator. Context-length
// medians follow the coding/conversation traces in Splitwise [37]; the
// throughputs are per-machine steady-state figures of the same order as the
// paper's reported prefill/decode rates for Llama2-70B.
type Workload struct {
	Name string
	// Median and lognormal sigma of prompt and output token counts.
	PromptMedian, PromptSigma float64
	OutputMedian, OutputSigma float64
	// Per-machine sustained token throughputs.
	PrefillTokensPerSec float64
	DecodeTokensPerSec  float64
}

// Workload presets.
var (
	// SplitwiseConv: conversation trace (median prompt 1020, output 415).
	SplitwiseConv = Workload{
		Name:         "splitwise-conv",
		PromptMedian: 1020, PromptSigma: 1.2,
		OutputMedian: 415, OutputSigma: 0.9,
		PrefillTokensPerSec: 7000, DecodeTokensPerSec: 600,
	}
	// SplitwiseCode: coding trace (median prompt 1930, short outputs 13).
	SplitwiseCode = Workload{
		Name:         "splitwise-code",
		PromptMedian: 1930, PromptSigma: 1.1,
		OutputMedian: 13, OutputSigma: 1.3,
		PrefillTokensPerSec: 9000, DecodeTokensPerSec: 250,
	}
)

// ServiceLife is the deployment lifetime over which the paper sizes
// endurance requirements.
const ServiceLife = 5 * units.Year

// WeightUpdate scenarios from §3: conservative hourly model refresh and an
// intensive once-per-second update.
var (
	WeightUpdateHourly    = time.Hour
	WeightUpdatePerSecond = time.Second
)
