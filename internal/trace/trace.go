// Package trace captures and analyzes memory-access traces produced by the
// inference simulator, quantifying the workload properties the paper's §2.2
// claims: read dominance (>1000:1), sequentiality (accesses continue where
// the previous one ended), and predictability (accesses follow a declared
// plan). Traces round-trip through CSV for external tooling.
package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"mrm/internal/units"
)

// Op is the access direction.
type Op int

// Operations.
const (
	Read Op = iota
	Write
)

// String names the op.
func (o Op) String() string {
	if o == Read {
		return "R"
	}
	return "W"
}

// Stream identifies the logical data structure being accessed; sequentiality
// is meaningful per stream, not across interleaved streams.
type Stream int

// Streams.
const (
	StreamWeights Stream = iota
	StreamKV
	StreamActivation
	StreamOther
)

// SeqStream returns a per-sequence KV stream id: each inference context is
// its own append-only address space, so sequentiality and append-only
// metrics must be computed per sequence.
func SeqStream(i int) Stream {
	if i < 0 {
		panic("trace: negative sequence index")
	}
	return Stream(16 + i)
}

// String names the stream.
func (s Stream) String() string {
	switch s {
	case StreamWeights:
		return "weights"
	case StreamKV:
		return "kv"
	case StreamActivation:
		return "act"
	case StreamOther:
		return "other"
	default:
		return fmt.Sprintf("s%d", int(s))
	}
}

func streamFromString(v string) (Stream, error) {
	switch v {
	case "weights":
		return StreamWeights, nil
	case "kv":
		return StreamKV, nil
	case "act":
		return StreamActivation, nil
	case "other":
		return StreamOther, nil
	default:
		var n int
		if _, err := fmt.Sscanf(v, "s%d", &n); err == nil && n >= 0 {
			return Stream(n), nil
		}
		return 0, fmt.Errorf("trace: unknown stream %q", v)
	}
}

// Event is one access.
type Event struct {
	At     time.Duration
	Stream Stream
	Op     Op
	Addr   units.Bytes
	Size   units.Bytes
}

// Log is an append-only event log.
type Log struct {
	events []Event
}

// Append records an event. Events should be appended in time order.
func (l *Log) Append(e Event) { l.events = append(l.events, e) }

// Len returns the number of events.
func (l *Log) Len() int { return len(l.events) }

// Events returns the raw events (not a copy; treat as read-only).
func (l *Log) Events() []Event { return l.events }

// Stats are the aggregate properties of a trace.
type Stats struct {
	Events     int
	ReadBytes  units.Bytes
	WriteBytes units.Bytes
	// ReadWriteRatio is bytes read per byte written (0 when nothing written).
	ReadWriteRatio float64
	// Sequentiality is the fraction of same-stream accesses that begin
	// exactly where the stream's previous access ended.
	Sequentiality float64
	// AppendOnly is the fraction of writes that never overwrite a
	// previously written same-stream address (per-stream high-water mark).
	AppendOnly float64
}

// Analyze computes statistics over the log.
func (l *Log) Analyze() Stats {
	st := Stats{Events: len(l.events)}
	lastEnd := map[Stream]units.Bytes{}
	started := map[Stream]bool{}
	highWater := map[Stream]units.Bytes{}
	sequential, chained := 0, 0
	appendOnly, writes := 0, 0
	for _, e := range l.events {
		if e.Op == Read {
			st.ReadBytes += e.Size
		} else {
			st.WriteBytes += e.Size
			writes++
			if !startedOrBelow(highWater, e) {
				appendOnly++
			}
			if end := e.Addr + e.Size; end > highWater[e.Stream] {
				highWater[e.Stream] = end
			}
		}
		if started[e.Stream] {
			chained++
			if e.Addr == lastEnd[e.Stream] {
				sequential++
			}
		}
		started[e.Stream] = true
		lastEnd[e.Stream] = e.Addr + e.Size
	}
	if st.WriteBytes > 0 {
		st.ReadWriteRatio = float64(st.ReadBytes) / float64(st.WriteBytes)
	}
	if chained > 0 {
		st.Sequentiality = float64(sequential) / float64(chained)
	}
	if writes > 0 {
		st.AppendOnly = float64(appendOnly) / float64(writes)
	}
	return st
}

// startedOrBelow reports whether the write lands below the stream's
// high-water mark (i.e. is an in-place overwrite).
func startedOrBelow(hw map[Stream]units.Bytes, e Event) bool {
	return e.Addr < hw[e.Stream]
}

// WriteCSV streams the log as CSV with a header row.
func (l *Log) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "at_ns,stream,op,addr,size"); err != nil {
		return err
	}
	for _, e := range l.events {
		if _, err := fmt.Fprintf(bw, "%d,%s,%s,%d,%d\n",
			e.At.Nanoseconds(), e.Stream, e.Op, e.Addr, e.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a log written by WriteCSV.
func ReadCSV(r io.Reader) (*Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	l := &Log{}
	first := true
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if first {
			first = false
			if strings.HasPrefix(text, "at_ns") {
				continue
			}
		}
		parts := strings.Split(text, ",")
		if len(parts) != 5 {
			return nil, fmt.Errorf("trace: line %d: want 5 fields, got %d", line, len(parts))
		}
		ns, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		stream, err := streamFromString(parts[1])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		var op Op
		switch parts[2] {
		case "R":
			op = Read
		case "W":
			op = Write
		default:
			return nil, fmt.Errorf("trace: line %d: unknown op %q", line, parts[2])
		}
		addr, err := strconv.ParseUint(parts[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		size, err := strconv.ParseUint(parts[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		l.Append(Event{
			At:     time.Duration(ns),
			Stream: stream,
			Op:     op,
			Addr:   units.Bytes(addr),
			Size:   units.Bytes(size),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return l, nil
}

// jsonEvent is the JSONL wire form of an Event.
type jsonEvent struct {
	AtNs   int64  `json:"at_ns"`
	Stream string `json:"stream"`
	Op     string `json:"op"`
	Addr   uint64 `json:"addr"`
	Size   uint64 `json:"size"`
}

// WriteJSONL streams the log as JSON Lines (one event object per line).
func (l *Log) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range l.events {
		je := jsonEvent{
			AtNs: e.At.Nanoseconds(), Stream: e.Stream.String(),
			Op: e.Op.String(), Addr: uint64(e.Addr), Size: uint64(e.Size),
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a log written by WriteJSONL.
func ReadJSONL(r io.Reader) (*Log, error) {
	dec := json.NewDecoder(r)
	l := &Log{}
	line := 0
	for {
		var je jsonEvent
		if err := dec.Decode(&je); err != nil {
			if errors.Is(err, io.EOF) {
				return l, nil
			}
			return nil, fmt.Errorf("trace: jsonl record %d: %w", line+1, err)
		}
		line++
		stream, err := streamFromString(je.Stream)
		if err != nil {
			return nil, fmt.Errorf("trace: jsonl record %d: %w", line, err)
		}
		var op Op
		switch je.Op {
		case "R":
			op = Read
		case "W":
			op = Write
		default:
			return nil, fmt.Errorf("trace: jsonl record %d: unknown op %q", line, je.Op)
		}
		l.Append(Event{
			At:     time.Duration(je.AtNs),
			Stream: stream,
			Op:     op,
			Addr:   units.Bytes(je.Addr),
			Size:   units.Bytes(je.Size),
		})
	}
}
