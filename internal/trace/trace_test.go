package trace

import (
	"errors"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"mrm/internal/units"
)

func TestOpAndStreamStrings(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Fatal("op names wrong")
	}
	for s, want := range map[Stream]string{
		StreamWeights: "weights", StreamKV: "kv", StreamActivation: "act", StreamOther: "other",
	} {
		if s.String() != want {
			t.Errorf("%d -> %q, want %q", s, s.String(), want)
		}
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	var l Log
	st := l.Analyze()
	if st.Events != 0 || st.ReadWriteRatio != 0 || st.Sequentiality != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
}

func TestAnalyzeReadWriteRatio(t *testing.T) {
	var l Log
	l.Append(Event{Stream: StreamWeights, Op: Read, Addr: 0, Size: 1000})
	l.Append(Event{Stream: StreamKV, Op: Write, Addr: 0, Size: 10})
	st := l.Analyze()
	if st.ReadWriteRatio != 100 {
		t.Fatalf("ratio = %v, want 100", st.ReadWriteRatio)
	}
	if st.ReadBytes != 1000 || st.WriteBytes != 10 {
		t.Fatalf("bytes = %v/%v", st.ReadBytes, st.WriteBytes)
	}
}

func TestSequentialityPerStream(t *testing.T) {
	var l Log
	// Weights stream: perfectly sequential.
	l.Append(Event{Stream: StreamWeights, Op: Read, Addr: 0, Size: 100})
	l.Append(Event{Stream: StreamWeights, Op: Read, Addr: 100, Size: 100})
	// KV stream interleaved: also sequential in its own address space.
	l.Append(Event{Stream: StreamKV, Op: Read, Addr: 5000, Size: 10})
	l.Append(Event{Stream: StreamKV, Op: Read, Addr: 5010, Size: 10})
	st := l.Analyze()
	if st.Sequentiality != 1.0 {
		t.Fatalf("interleaved-but-per-stream-sequential trace scored %v", st.Sequentiality)
	}
	// A random access breaks it.
	l.Append(Event{Stream: StreamKV, Op: Read, Addr: 0, Size: 10})
	st = l.Analyze()
	if st.Sequentiality >= 1.0 {
		t.Fatalf("random access should lower sequentiality: %v", st.Sequentiality)
	}
}

func TestAppendOnlyMetric(t *testing.T) {
	var l Log
	l.Append(Event{Stream: StreamKV, Op: Write, Addr: 0, Size: 10})
	l.Append(Event{Stream: StreamKV, Op: Write, Addr: 10, Size: 10})
	if st := l.Analyze(); st.AppendOnly != 1.0 {
		t.Fatalf("append-only writes scored %v", st.AppendOnly)
	}
	// In-place overwrite drops the score.
	l.Append(Event{Stream: StreamKV, Op: Write, Addr: 0, Size: 10})
	if st := l.Analyze(); st.AppendOnly >= 1.0 {
		t.Fatalf("overwrite should lower append-only: %v", st.AppendOnly)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var l Log
	l.Append(Event{At: time.Microsecond, Stream: StreamWeights, Op: Read, Addr: 4096, Size: units.MiB})
	l.Append(Event{At: 2 * time.Microsecond, Stream: StreamKV, Op: Write, Addr: 0, Size: 320 * units.KiB})
	l.Append(Event{At: 3 * time.Microsecond, Stream: StreamActivation, Op: Write, Addr: 8, Size: 16})
	l.Append(Event{At: 4 * time.Microsecond, Stream: StreamOther, Op: Read, Addr: 1, Size: 2})

	var b strings.Builder
	if err := l.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != l.Len() {
		t.Fatalf("round trip lost events: %d != %d", got.Len(), l.Len())
	}
	for i, e := range got.Events() {
		if e != l.Events()[i] {
			t.Fatalf("event %d: %+v != %+v", i, e, l.Events()[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"at_ns,stream,op,addr,size\n1,2,3\n",
		"x,weights,R,0,1\n",
		"1,nostream,R,0,1\n",
		"1,weights,X,0,1\n",
		"1,weights,R,abc,1\n",
		"1,weights,R,0,abc\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	// Blank lines and header-only are fine.
	l, err := ReadCSV(strings.NewReader("at_ns,stream,op,addr,size\n\n"))
	if err != nil || l.Len() != 0 {
		t.Fatalf("header-only parse: %v, %d events", err, l.Len())
	}
}

// TestReadCSVWrapsCause pins that field-parse failures wrap the strconv
// cause with %w: callers can errors.Is the chain to distinguish malformed
// numbers from structural errors.
func TestReadCSVWrapsCause(t *testing.T) {
	_, err := ReadCSV(strings.NewReader("x,weights,R,0,1\n"))
	if !errors.Is(err, strconv.ErrSyntax) {
		t.Errorf("bad at_ns error %v should wrap strconv.ErrSyntax", err)
	}
	_, err = ReadCSV(strings.NewReader("1,weights,R,abc,1\n"))
	if !errors.Is(err, strconv.ErrSyntax) {
		t.Errorf("bad addr error %v should wrap strconv.ErrSyntax", err)
	}
	_, err = ReadCSV(strings.NewReader("1,weights,R,0,99999999999999999999\n"))
	if !errors.Is(err, strconv.ErrRange) {
		t.Errorf("oversized size error %v should wrap strconv.ErrRange", err)
	}
}

// Property: Analyze byte totals equal the sum of event sizes by op.
func TestAnalyzeTotalsProperty(t *testing.T) {
	f := func(sizes []uint16, ops []bool) bool {
		var l Log
		var wantR, wantW units.Bytes
		n := len(sizes)
		if len(ops) < n {
			n = len(ops)
		}
		for i := 0; i < n; i++ {
			sz := units.Bytes(sizes[i]) + 1
			op := Read
			if ops[i] {
				op = Write
				wantW += sz
			} else {
				wantR += sz
			}
			l.Append(Event{Stream: StreamKV, Op: op, Addr: units.Bytes(i * 100), Size: sz})
		}
		st := l.Analyze()
		return st.ReadBytes == wantR && st.WriteBytes == wantW
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var l Log
	l.Append(Event{At: time.Microsecond, Stream: StreamWeights, Op: Read, Addr: 4096, Size: units.MiB})
	l.Append(Event{At: 2 * time.Microsecond, Stream: SeqStream(3), Op: Write, Addr: 0, Size: 320 * units.KiB})
	var b strings.Builder
	if err := l.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"stream":"s19"`) {
		t.Errorf("per-sequence stream not serialized: %q", b.String())
	}
	got, err := ReadJSONL(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != l.Len() {
		t.Fatalf("lost events: %d != %d", got.Len(), l.Len())
	}
	for i := range got.Events() {
		if got.Events()[i] != l.Events()[i] {
			t.Fatalf("event %d mismatch", i)
		}
	}
}

func TestReadJSONLErrors(t *testing.T) {
	cases := []string{
		`{"at_ns":1,"stream":"nope","op":"R","addr":0,"size":1}`,
		`{"at_ns":1,"stream":"kv","op":"X","addr":0,"size":1}`,
		`not json`,
	}
	for i, c := range cases {
		if _, err := ReadJSONL(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	l, err := ReadJSONL(strings.NewReader(""))
	if err != nil || l.Len() != 0 {
		t.Fatalf("empty input: %v, %d", err, l.Len())
	}
}

func TestSeqStreamPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SeqStream(-1)
}
