package core

import (
	"errors"
	"testing"
	"time"

	"mrm/internal/units"
)

// twinMRMs builds two identically-stocked MRMs: a weights-sized object
// spanning many zones, a run of KV pages, and one soft-state object that is
// then allowed to expire.
func twinMRMs(t *testing.T) (*MRM, *MRM, []ObjectID, ObjectID) {
	t.Helper()
	mk := func() (*MRM, []ObjectID, ObjectID) {
		m := newMRM(t, smallConfig())
		var ids []ObjectID
		// A multi-extent object (several zones' worth).
		big, _, err := m.Put(40*units.MiB, WriteOptions{Kind: KindWeights, Lifetime: 24 * time.Hour, Policy: PolicyRefresh})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, big)
		for i := 0; i < 6; i++ {
			id, _, err := m.Put(512*units.KiB, WriteOptions{Kind: KindKVCache, Lifetime: time.Hour, Policy: PolicyDrop})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		// Short-lived soft state that expires after a tick.
		exp, _, err := m.Put(256*units.KiB, WriteOptions{Kind: KindKVCache, Lifetime: time.Minute, Policy: PolicyDrop})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Tick(15 * time.Minute); err != nil {
			t.Fatal(err)
		}
		return m, ids, exp
	}
	a, idsA, expA := mk()
	b, idsB, expB := mk()
	for i := range idsA {
		if idsA[i] != idsB[i] {
			t.Fatal("twin MRMs diverged during setup")
		}
	}
	if expA != expB {
		t.Fatal("twin MRMs diverged during setup")
	}
	return a, b, idsA, expA
}

// TestGetBatchMatchesSequentialGets drives one MRM with Get calls and its
// twin with a single GetBatch over the same ids, for batches that succeed,
// hit an expired object mid-batch, and hit an unknown object mid-batch. The
// energy accounts and stats must stay identical — GetBatch is the coalesced
// hot path under the serving simulator and must not change any number.
func TestGetBatchMatchesSequentialGets(t *testing.T) {
	seq, bat, ids, expired := twinMRMs(t)
	batches := [][]ObjectID{
		ids,
		{ids[1], ids[2], ids[3]},
		{ids[0]},
		{ids[1], expired, ids[2]}, // expired mid-batch
		{ids[3], ObjectID(9999)},  // unknown mid-batch
		{},
	}
	for bi, batch := range batches {
		seqDone, seqErr := len(batch), error(nil)
		for i, id := range batch {
			if _, err := seq.Get(id); err != nil {
				seqDone, seqErr = i, err
				break
			}
		}
		batDone, batErr := bat.GetBatch(batch)
		if batDone != seqDone {
			t.Fatalf("batch %d: done %d != sequential %d", bi, batDone, seqDone)
		}
		if (batErr == nil) != (seqErr == nil) ||
			(batErr != nil && batErr.Error() != seqErr.Error()) {
			t.Fatalf("batch %d: err %v != sequential %v", bi, batErr, seqErr)
		}
		if ss, sb := seq.Stats(), bat.Stats(); ss != sb {
			t.Fatalf("batch %d: stats diverged: %+v != %+v", bi, ss, sb)
		}
		if es, eb := seq.Energy(), bat.Energy(); es != eb {
			t.Fatalf("batch %d: energy diverged: %+v != %+v", bi, es, eb)
		}
	}
	if _, err := bat.GetBatch([]ObjectID{expired}); !errors.Is(err, ErrExpired) {
		t.Fatalf("GetBatch on expired object: err %v, want ErrExpired", err)
	}
}

// TestGetVectoredMatchesLegacyLoop pins Get's vectored read against the
// arithmetic of the extent-by-extent loop it replaced: summed per-extent
// latencies and energies over a multi-zone object.
func TestGetVectoredMatchesLegacyLoop(t *testing.T) {
	m := newMRM(t, smallConfig())
	id, _, err := m.Put(40*units.MiB, WriteOptions{Kind: KindWeights, Lifetime: 24 * time.Hour, Policy: PolicyRefresh})
	if err != nil {
		t.Fatal(err)
	}
	obj := m.objects[id]
	if len(obj.extents) < 2 {
		t.Fatalf("want a multi-extent object, got %d extents", len(obj.extents))
	}
	before := m.energy.Read
	var wantLat time.Duration
	var wantEnergy units.Energy
	for _, ext := range obj.extents {
		res, err := m.zoned.Read(ext.zone, ext.off, ext.size)
		if err != nil {
			t.Fatal(err)
		}
		wantLat += res.Latency
		wantEnergy += res.Energy
	}
	m.energy.Read = before // the reference loop's charges don't count
	gotLat, err := m.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if gotLat != wantLat {
		t.Fatalf("Get latency %v != extent-loop %v", gotLat, wantLat)
	}
	if got := m.energy.Read - before; got != wantEnergy {
		t.Fatalf("Get read energy %v != extent-loop %v", got, wantEnergy)
	}
}
