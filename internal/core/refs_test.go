package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"mrm/internal/units"
)

// refTwins builds two identically-stocked MRMs — a refresh-policy weights
// object, a run of KV pages, and one soft-state object — with refs resolved
// on the second BEFORE the expiry tick, so the ref-holding twin exercises
// reads through a reference whose object has since expired.
func refTwins(t *testing.T) (seq *MRM, ref *MRM, ids []ObjectID, refs []ObjRef, expIdx int) {
	t.Helper()
	mk := func(resolve bool) (*MRM, []ObjectID, []ObjRef) {
		m := newMRM(t, smallConfig())
		var ids []ObjectID
		big, _, err := m.Put(40*units.MiB, WriteOptions{Kind: KindWeights, Lifetime: 24 * time.Hour, Policy: PolicyRefresh})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, big)
		for i := 0; i < 6; i++ {
			id, _, err := m.Put(512*units.KiB, WriteOptions{Kind: KindKVCache, Lifetime: time.Hour, Policy: PolicyDrop})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		exp, _, err := m.Put(256*units.KiB, WriteOptions{Kind: KindKVCache, Lifetime: time.Minute, Policy: PolicyDrop})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, exp)
		var refs []ObjRef
		if resolve {
			for _, id := range ids {
				r, err := m.ResolveRef(id)
				if err != nil {
					t.Fatal(err)
				}
				refs = append(refs, r)
			}
		}
		if err := m.Tick(15 * time.Minute); err != nil {
			t.Fatal(err)
		}
		return m, ids, refs
	}
	seq, idsA, _ := mk(false)
	ref, idsB, refs := mk(true)
	for i := range idsA {
		if idsA[i] != idsB[i] {
			t.Fatal("twin MRMs diverged during setup")
		}
	}
	return seq, ref, idsA, refs, len(idsA) - 1
}

// TestGetRefsMatchesGetBatch drives one MRM with GetBatch by id and its twin
// with GetRefs over pre-resolved references to the same objects — including a
// reference whose object expired after resolution — and requires identical
// done counts, errors, stats, and energy. GetRefs is the planned read path
// under the serving simulator's event engine and must not change any number.
func TestGetRefsMatchesGetBatch(t *testing.T) {
	seq, ref, ids, refs, expIdx := refTwins(t)
	pick := func(idx ...int) ([]ObjectID, []ObjRef) {
		var is []ObjectID
		var rs []ObjRef
		for _, i := range idx {
			is = append(is, ids[i])
			rs = append(rs, refs[i])
		}
		return is, rs
	}
	batches := [][]int{
		{0, 1, 2, 3, 4, 5, 6},
		{1, 2, 3},
		{0},
		{1, expIdx, 2}, // expired mid-batch
		{},
	}
	for bi, idx := range batches {
		is, rs := pick(idx...)
		seqDone, seqErr := seq.GetBatch(is)
		refDone, refErr := ref.GetRefs(rs)
		if refDone != seqDone {
			t.Fatalf("batch %d: done %d != by-id %d", bi, refDone, seqDone)
		}
		if (refErr == nil) != (seqErr == nil) ||
			(refErr != nil && refErr.Error() != seqErr.Error()) {
			t.Fatalf("batch %d: err %v != by-id %v", bi, refErr, seqErr)
		}
		if ss, sr := seq.Stats(), ref.Stats(); ss != sr {
			t.Fatalf("batch %d: stats diverged: %+v != %+v", bi, ss, sr)
		}
		if es, er := seq.Energy(), ref.Energy(); es != er {
			t.Fatalf("batch %d: energy diverged: %+v != %+v", bi, es, er)
		}
	}
	if _, err := ref.GetRefs([]ObjRef{refs[expIdx]}); !errors.Is(err, ErrExpired) {
		t.Fatalf("GetRefs on expired ref: err %v, want ErrExpired", err)
	}
}

// TestGetRefsSurvivesRefresh pins that a reference resolved before a
// refresh-driven relocation reads the object's live extents afterwards:
// GetRefs must match GetBatch on the twin even once the refresh policy has
// rewritten the object elsewhere.
func TestGetRefsSurvivesRefresh(t *testing.T) {
	cfg := smallConfig()
	mk := func() (*MRM, ObjectID) {
		m := newMRM(t, cfg)
		id, _, err := m.Put(8*units.MiB, WriteOptions{Kind: KindWeights, Lifetime: 365 * 24 * time.Hour, Policy: PolicyRefresh})
		if err != nil {
			t.Fatal(err)
		}
		return m, id
	}
	seq, idA := mk()
	ref, idB := mk()
	r, err := ref.ResolveRef(idB)
	if err != nil {
		t.Fatal(err)
	}
	// Advance both twins far enough that the refresh deadline fires at least
	// once (longest class minus margin).
	classes := cfg.Classes
	step := classes[len(classes)-1]
	for i := 0; i < 3; i++ {
		if err := seq.Tick(step); err != nil {
			t.Fatal(err)
		}
		if err := ref.Tick(step); err != nil {
			t.Fatal(err)
		}
	}
	if seq.Stats().Refreshes == 0 {
		t.Fatal("setup: no refresh fired; test exercises nothing")
	}
	if _, err := seq.GetBatch([]ObjectID{idA}); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.GetRefs([]ObjRef{r}); err != nil {
		t.Fatal(err)
	}
	if ss, sr := seq.Stats(), ref.Stats(); ss != sr {
		t.Fatalf("stats diverged after refresh: %+v != %+v", ss, sr)
	}
	if es, er := seq.Energy(), ref.Energy(); es != er {
		t.Fatalf("energy diverged after refresh: %+v != %+v", es, er)
	}
}

// TestResolveRefErrors pins ResolveRef's error contract: Get's exact errors
// for unknown, deleted, and expired objects.
func TestResolveRefErrors(t *testing.T) {
	m := newMRM(t, smallConfig())
	if _, err := m.ResolveRef(ObjectID(9999)); err == nil || !strings.Contains(err.Error(), "no object 9999") {
		t.Fatalf("unknown id: err %v", err)
	}
	id, _, err := m.Put(units.MiB, WriteOptions{Kind: KindKVCache, Lifetime: time.Minute, Policy: PolicyDrop})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Tick(15 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ResolveRef(id); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired id: err %v, want ErrExpired", err)
	}
	id2, _, err := m.Put(units.MiB, WriteOptions{Kind: KindWeights, Lifetime: time.Hour, Policy: PolicyRefresh})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(id2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ResolveRef(id2); err == nil || !strings.Contains(err.Error(), "no object") {
		t.Fatalf("deleted id: err %v", err)
	}
}

// TestNextDeadlineFireTimes pins NextDeadline against Tick's own thresholds:
// advancing to one instant before the reported time performs no deadline
// housekeeping; advancing to the reported time does. Both refresh (deadline
// minus margin) and drop (deadline) arms are exercised.
func TestNextDeadlineFireTimes(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts WriteOptions
		hit  func(s Stats) int64
	}{
		{"refresh", WriteOptions{Kind: KindWeights, Lifetime: 365 * 24 * time.Hour, Policy: PolicyRefresh}, func(s Stats) int64 { return s.Refreshes }},
		{"drop", WriteOptions{Kind: KindKVCache, Lifetime: time.Minute, Policy: PolicyDrop}, func(s Stats) int64 { return s.Expirations }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := newMRM(t, smallConfig())
			if _, _, err := m.Put(units.MiB, tc.opts); err != nil {
				t.Fatal(err)
			}
			fire, ok := m.NextDeadline()
			if !ok {
				t.Fatal("NextDeadline reported nothing pending")
			}
			if err := m.Tick(fire - m.Now() - time.Nanosecond); err != nil {
				t.Fatal(err)
			}
			if n := tc.hit(m.Stats()); n != 0 {
				t.Fatalf("housekeeping fired %d times before the reported deadline", n)
			}
			if err := m.Tick(time.Nanosecond); err != nil {
				t.Fatal(err)
			}
			if n := tc.hit(m.Stats()); n == 0 {
				t.Fatal("housekeeping did not fire at the reported deadline")
			}
		})
	}
}

// TestNextDeadlineSkipsStale pins the staleness filter: after a refresh moves
// an object's deadline forward, the superseded heap entry must not be
// reported as the next deadline.
func TestNextDeadlineSkipsStale(t *testing.T) {
	m := newMRM(t, smallConfig())
	if _, _, err := m.Put(units.MiB, WriteOptions{Kind: KindWeights, Lifetime: 365 * 24 * time.Hour, Policy: PolicyRefresh}); err != nil {
		t.Fatal(err)
	}
	first, ok := m.NextDeadline()
	if !ok {
		t.Fatal("NextDeadline reported nothing pending")
	}
	if err := m.Tick(first - m.Now()); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Refreshes == 0 {
		t.Fatal("setup: refresh did not fire")
	}
	next, ok := m.NextDeadline()
	if !ok {
		t.Fatal("NextDeadline lost the refreshed object")
	}
	if next <= m.Now() {
		t.Fatalf("NextDeadline %v is not in the future (now %v): stale entry reported", next, m.Now())
	}
}
