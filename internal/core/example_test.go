package core_test

import (
	"errors"
	"fmt"
	"time"

	"mrm/internal/core"
	"mrm/internal/units"
)

// Store soft state with its true lifetime and let the control plane expire
// it; store durable state and let the control plane refresh it.
func Example() {
	cfg := core.DefaultConfig()
	cfg.Capacity = units.GiB
	cfg.ZoneSize = 16 * units.MiB
	m, err := core.New(cfg)
	if err != nil {
		panic(err)
	}

	kv, _, _ := m.Put(64*units.MiB, core.WriteOptions{
		Kind: core.KindKVCache, Lifetime: 30 * time.Minute, Policy: core.PolicyDrop,
	})
	weights, _, _ := m.Put(128*units.MiB, core.WriteOptions{
		Kind: core.KindWeights, Lifetime: 90 * 24 * time.Hour, Policy: core.PolicyRefresh,
	})

	if err := m.Tick(2 * time.Hour); err != nil {
		panic(err)
	}
	_, kvErr := m.Get(kv)
	_, wErr := m.Get(weights)
	fmt.Printf("kv expired: %v\n", errors.Is(kvErr, core.ErrExpired))
	fmt.Printf("weights alive: %v\n", wErr == nil)
	fmt.Printf("expirations: %d\n", m.Stats().Expirations)
	// Output:
	// kv expired: true
	// weights alive: true
	// expirations: 1
}

// Pick the cheapest retention class covering a data lifetime (the DCM
// decision) and inspect its write cost.
func ExampleMRM_ChooseClass() {
	m, err := core.New(core.DefaultConfig())
	if err != nil {
		panic(err)
	}
	class, refreshes := m.ChooseClass(3 * time.Hour)
	fmt.Printf("class retention=%v refreshes=%d\n", m.Classes()[class], refreshes)
	// Output: class retention=24h0m0s refreshes=0
}
