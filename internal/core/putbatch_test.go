package core

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"mrm/internal/memdev"
	"mrm/internal/units"
)

// comparePutTwins drives seq with serial Puts (stopping at the first error)
// and bat with one PutBatch over the same sizes, then requires identical
// done counts, errors, ids, latencies, stats, energy accounts, device-side
// accounting, free-space view, and id-allocation state.
func comparePutTwins(t *testing.T, label string, seq, bat *MRM, sizes []units.Bytes, opts WriteOptions) {
	t.Helper()
	seqIDs := make([]ObjectID, len(sizes))
	seqLats := make([]time.Duration, len(sizes))
	seqDone, seqErr := len(sizes), error(nil)
	for i, size := range sizes {
		id, lat, err := seq.Put(size, opts)
		if err != nil {
			seqDone, seqErr = i, err
			break
		}
		seqIDs[i], seqLats[i] = id, lat
	}
	batIDs := make([]ObjectID, len(sizes))
	batLats := make([]time.Duration, len(sizes))
	batDone, batErr := bat.PutBatch(sizes, opts, batIDs, batLats)
	if batDone != seqDone {
		t.Fatalf("%s: done %d != sequential %d (err %v vs %v)", label, batDone, seqDone, batErr, seqErr)
	}
	if (batErr == nil) != (seqErr == nil) ||
		(batErr != nil && batErr.Error() != seqErr.Error()) {
		t.Fatalf("%s: err %q != sequential %q", label, batErr, seqErr)
	}
	for i := 0; i < seqDone; i++ {
		if batIDs[i] != seqIDs[i] || batLats[i] != seqLats[i] {
			t.Fatalf("%s obj %d: (id %d, lat %v) != sequential (id %d, lat %v)",
				label, i, batIDs[i], batLats[i], seqIDs[i], seqLats[i])
		}
	}
	if ss, sb := seq.Stats(), bat.Stats(); ss != sb {
		t.Fatalf("%s: stats diverged: %+v != %+v", label, ss, sb)
	}
	if es, eb := seq.Energy(), bat.Energy(); es != eb {
		t.Fatalf("%s: energy diverged: %+v != %+v", label, es, eb)
	}
	if ds, db := seq.zoned.Device().Stats(), bat.zoned.Device().Stats(); ds != db {
		t.Fatalf("%s: device stats diverged: %+v != %+v", label, ds, db)
	}
	if es, eb := seq.zoned.Device().Energy(), bat.zoned.Device().Energy(); es != eb {
		t.Fatalf("%s: device energy diverged: %+v != %+v", label, es, eb)
	}
	if fs, fb := seq.FreeBytes(), bat.FreeBytes(); fs != fb {
		t.Fatalf("%s: free bytes diverged: %v != %v", label, fs, fb)
	}
	if seq.nextID != bat.nextID {
		t.Fatalf("%s: nextID diverged: %d != %d", label, seq.nextID, bat.nextID)
	}
	for c := range seq.cfg.Classes {
		if seq.openZone[Class(c)] != bat.openZone[Class(c)] {
			t.Fatalf("%s: openZone[%d] diverged: %d != %d",
				label, c, seq.openZone[Class(c)], bat.openZone[Class(c)])
		}
	}
	// A failed serial Put can legitimately leave an invariant violation (the
	// documented leak: zone membership for an object that was never
	// registered); equivalence means the batched twin reports the exact same
	// invariants verdict, violation or not.
	is, ib := seq.CheckInvariants(), bat.CheckInvariants()
	if (is == nil) != (ib == nil) || (is != nil && is.Error() != ib.Error()) {
		t.Fatalf("%s: invariants verdicts diverged: %v != %v", label, is, ib)
	}
}

var kvOpts = WriteOptions{Kind: KindKVCache, Lifetime: time.Hour, Policy: PolicyDrop}

// TestPutBatchMatchesSequentialPuts covers the equivalence contract on the
// clean path and control-plane validation failures: batches that span zones,
// fill zones exactly, run the device out of space mid-batch, and contain a
// zero-size object mid-batch.
func TestPutBatchMatchesSequentialPuts(t *testing.T) {
	zone := smallConfig().ZoneSize
	cases := []struct {
		name  string
		sizes []units.Bytes
	}{
		{"single", []units.Bytes{512 * units.KiB}},
		{"pages", []units.Bytes{64 * units.KiB, 64 * units.KiB, 64 * units.KiB, 64 * units.KiB}},
		{"spans-zones", []units.Bytes{40 * units.MiB, 512 * units.KiB, 24 * units.MiB}},
		{"fills-zone-exactly", []units.Bytes{zone, 512 * units.KiB, zone - 512*units.KiB}},
		{"zero-size-mid-batch", []units.Bytes{512 * units.KiB, 0, 512 * units.KiB}},
		{"zero-size-first", []units.Bytes{0, 512 * units.KiB}},
	}
	for _, tc := range cases {
		seq, bat := newMRM(t, smallConfig()), newMRM(t, smallConfig())
		comparePutTwins(t, tc.name, seq, bat, tc.sizes, kvOpts)
		// The twins must also agree on everything that happens next.
		comparePutTwins(t, tc.name+"/followup", seq, bat, []units.Bytes{256 * units.KiB}, kvOpts)
	}
}

func TestPutBatchOutOfSpaceMidBatch(t *testing.T) {
	seq, bat := newMRM(t, smallConfig()), newMRM(t, smallConfig())
	// Fill all but one zone, then batch more than fits: the serial path fails
	// with ErrNoSpace partway through an object, leaking that object's
	// completed chunks; the batch must leave the identical residue.
	fill := []units.Bytes{seq.Capacity() - seq.cfg.ZoneSize}
	comparePutTwins(t, "fill", seq, bat, fill, kvOpts)
	over := []units.Bytes{8 * units.MiB, 16 * units.MiB, 8 * units.MiB}
	comparePutTwins(t, "overflow", seq, bat, over, kvOpts)
	if _, err := bat.PutBatch([]units.Bytes{units.MiB}, kvOpts,
		make([]ObjectID, 1), make([]time.Duration, 1)); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("want ErrNoSpace once full, got %v", err)
	}
}

// TestPutBatchMatchesSequentialUnderWriteFaults is the write-path fault
// equivalence gate: with injected program failures armed, serial Put and
// PutBatch twins must report identical fault counters and surface the error
// at the same object index, with identical residue (ids consumed, energy,
// zone membership) — across many random rounds interleaved with Ticks.
func TestPutBatchMatchesSequentialUnderWriteFaults(t *testing.T) {
	seq, bat := newMRM(t, smallConfig()), newMRM(t, smallConfig())
	faults := memdev.FaultConfig{Seed: 21, WriteFaultRate: 0.08}
	seq.SetFaults(faults)
	bat.SetFaults(faults)
	rng := rand.New(rand.NewSource(5))
	sawFault := false
	for round := 0; round < 60; round++ {
		n := 1 + rng.Intn(6)
		sizes := make([]units.Bytes, n)
		for i := range sizes {
			sizes[i] = units.Bytes(1+rng.Intn(64)) * 64 * units.KiB
		}
		before := seq.zoned.Device().Stats().WriteFaults
		comparePutTwins(t, "round", seq, bat, sizes, kvOpts)
		if seq.zoned.Device().Stats().WriteFaults > before {
			sawFault = true
		}
		dt := time.Duration(rng.Int63n(int64(5 * time.Minute)))
		if err := seq.Tick(dt); err != nil {
			t.Fatal(err)
		}
		if err := bat.Tick(dt); err != nil {
			t.Fatal(err)
		}
	}
	if !sawFault {
		t.Fatal("fault rate never fired; the equivalence test exercised nothing")
	}
	if st := seq.zoned.Device().Stats(); st.WriteFaults == 0 {
		t.Fatal("no write faults recorded")
	}
}

// TestPutBatchShortOutputSlices pins the argument validation.
func TestPutBatchShortOutputSlices(t *testing.T) {
	m := newMRM(t, smallConfig())
	if _, err := m.PutBatch(make([]units.Bytes, 2), kvOpts,
		make([]ObjectID, 1), make([]time.Duration, 2)); err == nil {
		t.Fatal("want error for short ids slice")
	}
	if _, err := m.PutBatch(make([]units.Bytes, 2), kvOpts,
		make([]ObjectID, 2), make([]time.Duration, 1)); err == nil {
		t.Fatal("want error for short lats slice")
	}
	if done, err := m.PutBatch(nil, kvOpts, nil, nil); done != 0 || err != nil {
		t.Fatalf("empty batch: (%d, %v), want (0, nil)", done, err)
	}
}

// TestPutLatencyMatchesPerChunkArithmetic pins the serial path's hoisted
// write-cost lookups: the returned latency must equal the worst per-extent
// class write latency + transfer time, recomputed from first principles.
func TestPutLatencyMatchesPerChunkArithmetic(t *testing.T) {
	m := newMRM(t, smallConfig())
	opts := WriteOptions{Kind: KindWeights, Lifetime: 24 * time.Hour, Policy: PolicyRefresh}
	id, lat, err := m.Put(40*units.MiB, opts)
	if err != nil {
		t.Fatal(err)
	}
	obj := m.objects[id]
	if len(obj.extents) < 2 {
		t.Fatalf("want a multi-extent object, got %d extents", len(obj.extents))
	}
	op := m.ops[obj.class]
	wbw := m.zoned.Device().Spec().WriteBW
	var want time.Duration
	for _, ext := range obj.extents {
		if l := op.WriteLatency + wbw.Time(ext.size); l > want {
			want = l
		}
	}
	if lat != want {
		t.Fatalf("Put latency %v != per-chunk arithmetic %v", lat, want)
	}
}
