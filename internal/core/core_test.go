package core

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"mrm/internal/cellphys"
	"mrm/internal/ecc"
	"mrm/internal/units"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Capacity = 2 * units.GiB
	cfg.ZoneSize = 16 * units.MiB
	return cfg
}

func newMRM(t *testing.T, cfg Config) *MRM {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.Classes = nil
	if _, err := New(cfg); err == nil {
		t.Error("no classes should error")
	}
	cfg = smallConfig()
	cfg.Classes = []time.Duration{time.Hour, time.Minute}
	if _, err := New(cfg); err == nil {
		t.Error("unsorted classes should error")
	}
	cfg = smallConfig()
	cfg.Classes = []time.Duration{time.Nanosecond}
	if _, err := New(cfg); err == nil {
		t.Error("class below technology minimum should error")
	}
	cfg = smallConfig()
	cfg.RefreshMargin = 0.9
	if _, err := New(cfg); err == nil {
		t.Error("huge refresh margin should error")
	}
}

func TestDataKindAndPolicyStrings(t *testing.T) {
	if KindWeights.String() != "weights" || KindKVCache.String() != "kvcache" ||
		KindActivation.String() != "activation" || KindOther.String() != "other" {
		t.Error("kind names wrong")
	}
	if PolicyRefresh.String() != "refresh" || PolicyDrop.String() != "drop" {
		t.Error("policy names wrong")
	}
}

func TestChooseClass(t *testing.T) {
	m := newMRM(t, smallConfig())
	c, r := m.ChooseClass(5 * time.Minute)
	if c != 0 || r != 0 {
		t.Errorf("5min → class %d refreshes %d, want 0,0", c, r)
	}
	c, r = m.ChooseClass(3 * time.Hour)
	if c != 2 || r != 0 { // 24h class
		t.Errorf("3h → class %d, want 2", c)
	}
	// Beyond the longest class: refreshes required.
	c, r = m.ChooseClass(30 * 24 * time.Hour)
	if int(c) != len(m.Classes())-1 {
		t.Errorf("30d → class %d, want last", c)
	}
	if r != 4 { // ceil(30/7)-1
		t.Errorf("30d → %d refreshes, want 4", r)
	}
}

func TestPutGetDelete(t *testing.T) {
	m := newMRM(t, smallConfig())
	id, lat, err := m.Put(units.MiB, WriteOptions{Kind: KindKVCache, Lifetime: time.Hour, Policy: PolicyDrop})
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Error("write latency should be positive")
	}
	rlat, err := m.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if rlat <= 0 {
		t.Error("read latency should be positive")
	}
	if err := m.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(id); err == nil {
		t.Error("deleted object should not be readable")
	}
	if err := m.Delete(id); err == nil {
		t.Error("double delete should error")
	}
	st := m.Stats()
	if st.Puts != 1 || st.Gets != 1 || st.Deletes != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPutZeroSize(t *testing.T) {
	m := newMRM(t, smallConfig())
	if _, _, err := m.Put(0, WriteOptions{}); err == nil {
		t.Error("zero-size put should error")
	}
}

func TestGetUnknown(t *testing.T) {
	m := newMRM(t, smallConfig())
	if _, err := m.Get(99); err == nil {
		t.Error("unknown id should error")
	}
}

func TestObjectSpanningZones(t *testing.T) {
	m := newMRM(t, smallConfig())
	// 40 MiB object across 16 MiB zones → 3 extents.
	id, _, err := m.Put(40*units.MiB, WriteOptions{Kind: KindKVCache, Lifetime: time.Hour, Policy: PolicyDrop})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(id); err != nil {
		t.Fatal(err)
	}
	obj := m.objects[id]
	if len(obj.extents) < 3 {
		t.Errorf("extents = %d, want >= 3", len(obj.extents))
	}
}

func TestSoftStateExpires(t *testing.T) {
	m := newMRM(t, smallConfig())
	id, _, err := m.Put(units.MiB, WriteOptions{Kind: KindKVCache, Lifetime: 10 * time.Minute, Policy: PolicyDrop})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Tick(11 * time.Minute); err != nil {
		t.Fatal(err)
	}
	_, err = m.Get(id)
	if !errors.Is(err, ErrExpired) {
		t.Fatalf("expected ErrExpired, got %v", err)
	}
	if m.Stats().Expirations != 1 {
		t.Errorf("expirations = %d", m.Stats().Expirations)
	}
}

func TestRefreshPolicyKeepsDataAlive(t *testing.T) {
	m := newMRM(t, smallConfig())
	id, _, err := m.Put(units.MiB, WriteOptions{Kind: KindWeights, Lifetime: 90 * 24 * time.Hour, Policy: PolicyRefresh})
	if err != nil {
		t.Fatal(err)
	}
	// Step past several retention periods of the longest class (7d).
	for i := 0; i < 30; i++ {
		if err := m.Tick(24 * time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Get(id); err != nil {
		t.Fatalf("refreshed object should stay readable: %v", err)
	}
	st := m.Stats()
	if st.Refreshes < 3 {
		t.Errorf("refreshes = %d, want >= 3 over 30 days with 7d class", st.Refreshes)
	}
	if m.Energy().RefreshWrite <= 0 {
		t.Error("refresh writes must cost energy")
	}
	if st.BytesRefreshed < 3*units.MiB {
		t.Errorf("bytes refreshed = %v", st.BytesRefreshed)
	}
}

func TestExpiredZonesAreReclaimed(t *testing.T) {
	m := newMRM(t, smallConfig())
	var ids []ObjectID
	for i := 0; i < 8; i++ {
		id, _, err := m.Put(16*units.MiB, WriteOptions{Kind: KindKVCache, Lifetime: 10 * time.Minute, Policy: PolicyDrop})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	free0 := m.FreeBytes()
	if err := m.Tick(time.Hour); err != nil {
		t.Fatal(err)
	}
	if m.FreeBytes() <= free0 {
		t.Errorf("expired zones should be reclaimed: free %v -> %v", free0, m.FreeBytes())
	}
	if m.Stats().ZoneResets == 0 {
		t.Error("zone resets expected")
	}
	_ = ids
}

func TestDCMWriteCostOrdering(t *testing.T) {
	m := newMRM(t, smallConfig())
	classes := m.Classes()
	var prevE units.Energy
	var prevL time.Duration
	for c := range classes {
		e, l, err := m.WriteCost(Class(c))
		if err != nil {
			t.Fatal(err)
		}
		if c > 0 && (e < prevE || l < prevL) {
			t.Errorf("class %d (%v) should cost at least as much as class %d", c, classes[c], c-1)
		}
		prevE, prevL = e, l
	}
	if _, _, err := m.WriteCost(Class(99)); err == nil {
		t.Error("bad class should error")
	}
}

func TestShortLifetimeWritesCheaper(t *testing.T) {
	// Energy of storing 10-minute data must beat storing it at the 7-day
	// class — the DCM saving.
	cfg := smallConfig()
	m := newMRM(t, cfg)
	id1, _, err := m.Put(units.MiB, WriteOptions{Kind: KindKVCache, Lifetime: 5 * time.Minute, Policy: PolicyDrop})
	if err != nil {
		t.Fatal(err)
	}
	e1 := m.Energy().HostWrite
	m2 := newMRM(t, cfg)
	id2, _, err := m2.Put(units.MiB, WriteOptions{Kind: KindKVCache, Lifetime: 6 * 24 * time.Hour, Policy: PolicyDrop})
	if err != nil {
		t.Fatal(err)
	}
	e2 := m2.Energy().HostWrite
	if e1 >= e2 {
		t.Errorf("short-lifetime write %v should beat long-lifetime %v", e1, e2)
	}
	_, _ = id1, id2
}

func TestNoSpace(t *testing.T) {
	cfg := smallConfig()
	cfg.Capacity = 64 * units.MiB
	cfg.ZoneSize = 16 * units.MiB
	m := newMRM(t, cfg)
	if _, _, err := m.Put(128*units.MiB, WriteOptions{Lifetime: time.Hour}); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("expected ErrNoSpace, got %v", err)
	}
}

func TestScrubAccounting(t *testing.T) {
	cfg := smallConfig()
	// A weak code forces scrubbing within the longest class period.
	cfg.Code = ecc.HammingSpec()
	cfg.UBERTarget = 1e-15 // achievable for SECDED at the fresh-cell floor
	m := newMRM(t, cfg)
	if _, _, err := m.Put(64*units.MiB, WriteOptions{Kind: KindWeights, Lifetime: 6 * 24 * time.Hour, Policy: PolicyRefresh}); err != nil {
		t.Fatal(err)
	}
	if err := m.Tick(48 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if m.Energy().ScrubRead <= 0 {
		t.Error("scrub energy expected with SECDED-only protection")
	}
}

func TestStrongCodeAvoidsScrub(t *testing.T) {
	m := newMRM(t, smallConfig()) // RS(255,223)
	for c := range m.Classes() {
		plan, err := m.ScrubPlan(Class(c))
		if err != nil {
			t.Fatal(err)
		}
		// With a 16-symbol-correcting code, data within its retention target
		// needs no scrub (BER stays below the code budget by design).
		if plan.Interval != 0 {
			t.Errorf("class %d: unexpected scrub interval %v", c, plan.Interval)
		}
	}
	if _, err := m.ScrubPlan(Class(-1)); err == nil {
		t.Error("bad class should error")
	}
}

func TestWearLevelingSpreadsResets(t *testing.T) {
	cfg := smallConfig()
	cfg.Capacity = 256 * units.MiB // 16 zones
	m := newMRM(t, cfg)
	// Churn: write and expire many short-lived objects.
	for round := 0; round < 40; round++ {
		for i := 0; i < 4; i++ {
			if _, _, err := m.Put(16*units.MiB, WriteOptions{Kind: KindKVCache, Lifetime: 10 * time.Minute, Policy: PolicyDrop}); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
		if err := m.Tick(time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	maxR, meanR := m.ZoneWearSpread()
	if meanR <= 0 {
		t.Fatal("expected churn to reset zones")
	}
	if float64(maxR) > meanR*2.5 {
		t.Errorf("wear spread too wide: max %d mean %v", maxR, meanR)
	}
}

func TestEnergyAccountTotal(t *testing.T) {
	e := EnergyAccount{HostWrite: 1, RefreshWrite: 2, Read: 3, ScrubRead: 4, Static: 5}
	if e.Total() != 15 {
		t.Fatalf("Total = %v", e.Total())
	}
}

func TestStaticEnergyAccrues(t *testing.T) {
	m := newMRM(t, smallConfig())
	if err := m.Tick(time.Minute); err != nil {
		t.Fatal(err)
	}
	if m.Energy().Static <= 0 {
		t.Error("static energy should accrue with time")
	}
}

func TestOperatingPointRange(t *testing.T) {
	m := newMRM(t, smallConfig())
	if _, err := m.OperatingPoint(Class(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.OperatingPoint(Class(len(m.Classes()))); err == nil {
		t.Error("out-of-range class should error")
	}
}

// Property: after any interleaving of puts, deletes, and ticks, live objects
// within their lifetime remain readable, and byte accounting never goes
// negative.
func TestControlPlaneProperty(t *testing.T) {
	type step struct {
		Op      uint8
		SizeKiB uint8
	}
	cfg := smallConfig()
	cfg.Capacity = 512 * units.MiB
	f := func(steps []step) bool {
		m, err := New(cfg)
		if err != nil {
			return false
		}
		live := map[ObjectID]bool{}
		for _, s := range steps {
			switch s.Op % 3 {
			case 0:
				size := units.Bytes(s.SizeKiB%64+1) * units.KiB
				id, _, err := m.Put(size, WriteOptions{Kind: KindKVCache, Lifetime: 24 * time.Hour, Policy: PolicyDrop})
				if err != nil {
					return false
				}
				live[id] = true
			case 1:
				for id := range live {
					if err := m.Delete(id); err != nil {
						return false
					}
					delete(live, id)
					break
				}
			case 2:
				// Small tick, far below the 24h class.
				if err := m.Tick(time.Minute); err != nil {
					return false
				}
			}
		}
		for id := range live {
			if _, err := m.Get(id); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFreeBytesAccounting(t *testing.T) {
	m := newMRM(t, smallConfig())
	total := m.FreeBytes()
	if total != m.Capacity() {
		t.Fatalf("fresh device free %v != capacity %v", total, m.Capacity())
	}
	_, _, err := m.Put(8*units.MiB, WriteOptions{Lifetime: time.Hour, Policy: PolicyDrop})
	if err != nil {
		t.Fatal(err)
	}
	if m.FreeBytes() != total-8*units.MiB {
		t.Fatalf("free after 8MiB put = %v", m.FreeBytes())
	}
}

func TestMRMUsesConfiguredTechnology(t *testing.T) {
	cfg := smallConfig()
	cfg.Tech = cellphys.STTMRAM
	cfg.Classes = []time.Duration{time.Hour, 24 * time.Hour}
	m := newMRM(t, cfg)
	if m.Spec().Tech != cellphys.STTMRAM {
		t.Errorf("spec tech = %v", m.Spec().Tech)
	}
}

func TestCompactReclaimsStrandedSpace(t *testing.T) {
	cfg := smallConfig()
	cfg.Capacity = 256 * units.MiB
	cfg.ZoneSize = 16 * units.MiB
	m := newMRM(t, cfg)
	// Fill a zone with 8 small objects, then delete 7: the zone is full but
	// only 1/8 live. Note: same class, so they pack into shared zones.
	var ids []ObjectID
	for i := 0; i < 8; i++ {
		id, _, err := m.Put(2*units.MiB, WriteOptions{
			Kind: KindKVCache, Lifetime: 20 * time.Hour, Policy: PolicyDrop,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// The 16 MiB of objects exactly filled one zone.
	for _, id := range ids[:7] {
		if err := m.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	free0 := m.FreeBytes()
	n, err := m.Compact(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("reclaimed %d zones, want 1", n)
	}
	if m.FreeBytes() <= free0 {
		t.Fatalf("free space did not grow: %v -> %v", free0, m.FreeBytes())
	}
	// The survivor stays readable after relocation.
	if _, err := m.Get(ids[7]); err != nil {
		t.Fatalf("survivor unreadable after compaction: %v", err)
	}
	if m.Stats().Compactions != 1 {
		t.Fatalf("Compactions = %d", m.Stats().Compactions)
	}
	// The survivor's deadline advanced (fresh zone): it should survive
	// nearly a full class period from now.
	if err := m.Tick(20 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(ids[7]); err != nil {
		t.Fatalf("relocated object expired prematurely: %v", err)
	}
}

func TestCompactLeavesDenseZonesAlone(t *testing.T) {
	cfg := smallConfig()
	cfg.Capacity = 256 * units.MiB
	cfg.ZoneSize = 16 * units.MiB
	m := newMRM(t, cfg)
	var ids []ObjectID
	for i := 0; i < 8; i++ {
		id, _, err := m.Put(2*units.MiB, WriteOptions{
			Kind: KindKVCache, Lifetime: 20 * time.Hour, Policy: PolicyDrop,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Delete only one object: 7/8 live, above a 0.5 threshold.
	if err := m.Delete(ids[0]); err != nil {
		t.Fatal(err)
	}
	n, err := m.Compact(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("dense zone compacted (%d)", n)
	}
}

func TestCompactValidation(t *testing.T) {
	m := newMRM(t, smallConfig())
	if _, err := m.Compact(0); err == nil {
		t.Error("threshold 0 should error")
	}
	if _, err := m.Compact(1); err == nil {
		t.Error("threshold 1 should error")
	}
	// Empty device: nothing to do.
	if n, err := m.Compact(0.5); err != nil || n != 0 {
		t.Errorf("empty compact = %d, %v", n, err)
	}
}

// Property: the control plane's invariants hold through random interleavings
// of puts, gets, deletes, compactions, and ticks.
func TestInvariantsUnderChurn(t *testing.T) {
	type step struct {
		Op      uint8
		SizeMiB uint8
	}
	cfg := smallConfig()
	cfg.Capacity = 512 * units.MiB
	f := func(steps []step) bool {
		m, err := New(cfg)
		if err != nil {
			return false
		}
		var live []ObjectID
		for _, s := range steps {
			switch s.Op % 5 {
			case 0:
				size := units.Bytes(s.SizeMiB%24+1) * units.MiB
				life := time.Duration(s.SizeMiB%3+1) * time.Hour
				id, _, err := m.Put(size, WriteOptions{
					Kind: KindKVCache, Lifetime: life, Policy: PolicyDrop,
				})
				if err != nil {
					if errors.Is(err, ErrNoSpace) {
						continue
					}
					t.Logf("put failed: %v", err)
					return false
				}
				live = append(live, id)
			case 1:
				if len(live) > 0 {
					if err := m.Delete(live[len(live)-1]); err != nil {
						t.Logf("delete failed: %v", err)
						return false
					}
					live = live[:len(live)-1]
				}
			case 2:
				if len(live) > 0 {
					if _, err := m.Get(live[0]); err != nil && !errors.Is(err, ErrExpired) {
						t.Logf("get failed: %v", err)
						return false
					}
				}
			case 3:
				if err := m.Tick(time.Duration(s.SizeMiB%90) * time.Minute); err != nil {
					t.Logf("tick failed: %v", err)
					return false
				}
				// Drop our references to anything that expired.
				kept := live[:0]
				for _, id := range live {
					if _, err := m.Get(id); !errors.Is(err, ErrExpired) {
						kept = append(kept, id)
					}
				}
				live = kept
			case 4:
				if _, err := m.Compact(0.5); err != nil {
					t.Logf("compact failed: %v", err)
					return false
				}
			}
			if err := m.CheckInvariants(); err != nil {
				t.Logf("invariant violated: %v", err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
