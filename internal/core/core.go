// Package core implements the paper's primary contribution: Managed-
// Retention Memory (MRM) — a memory device whose retention time is a
// per-write software decision — together with the software control plane the
// paper's §4 sketches:
//
//   - Retention classes: each write is tagged with a data-lifetime hint and
//     lands in a zone programmed for the cheapest retention that covers it
//     (Dynamically Configurable Memory).
//   - Expiry tracking: the control plane tracks when every zone's data
//     becomes unreliable and decides, per object policy, whether to refresh
//     it (rewrite), drop it (soft state that can be recomputed), or surface
//     it to a higher-level migrator.
//   - Software wear-leveling: new zones are allocated least-worn-first;
//     there is no device FTL (contrast: internal/ftl).
//   - Retention-aware scrub: given the ECC code protecting the array and a
//     target uncorrectable bit error rate, the control plane derives the
//     scrub interval from the cell error model and accounts its cost.
//
// The device below an MRM is a zoned block controller (internal/controller)
// over a simulated memory device (internal/memdev); the retention↔energy↔
// endurance arithmetic comes from internal/cellphys.
package core

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"time"

	"mrm/internal/cellphys"
	"mrm/internal/controller"
	"mrm/internal/ecc"
	"mrm/internal/fault"
	"mrm/internal/memdev"
	"mrm/internal/units"
)

// DataKind is the workload-level role of an object; placement and expiry
// policies key off it.
type DataKind int

// Data kinds from the paper's workload characterization (§2).
const (
	KindWeights    DataKind = iota // immutable, persisted elsewhere, long-lived
	KindKVCache                    // soft state, append-only, lives for a context
	KindActivation                 // transient, lives for one forward pass
	KindOther
)

// String names the kind.
func (k DataKind) String() string {
	switch k {
	case KindWeights:
		return "weights"
	case KindKVCache:
		return "kvcache"
	case KindActivation:
		return "activation"
	default:
		return "other"
	}
}

// ExpiryPolicy says what the control plane does when an object's retention
// deadline approaches.
type ExpiryPolicy int

// Expiry policies.
const (
	// PolicyRefresh rewrites the data into a fresh zone before it decays
	// (for data that must stay resident, e.g. weights).
	PolicyRefresh ExpiryPolicy = iota
	// PolicyDrop lets the data decay; readers get ErrExpired and recompute
	// (KV cache soft state).
	PolicyDrop
)

// String names the policy.
func (p ExpiryPolicy) String() string {
	if p == PolicyRefresh {
		return "refresh"
	}
	return "drop"
}

// ErrExpired is returned by Get for data whose retention lapsed under
// PolicyDrop.
var ErrExpired = errors.New("core: object expired (soft state must be recomputed)")

// ErrNoSpace is returned when no zone can hold a write.
var ErrNoSpace = errors.New("core: device out of zones")

// Config assembles an MRM.
type Config struct {
	Tech     cellphys.Technology
	Capacity units.Bytes
	ZoneSize units.Bytes
	// Classes are the retention durations the device can program, ascending.
	Classes []time.Duration
	// Code is the ECC protecting the array; UBERTarget the reliability goal.
	Code       ecc.CodeSpec
	UBERTarget float64
	// RefreshMargin is the fraction of a retention period before the
	// deadline at which PolicyRefresh objects are rewritten (default 0.05).
	RefreshMargin float64
}

// DefaultConfig returns an RRAM-based MRM with four retention classes
// spanning the KV-cache-to-weights lifetime range the paper discusses.
func DefaultConfig() Config {
	return Config{
		Tech:     cellphys.RRAM,
		Capacity: 48 * units.GiB,
		ZoneSize: 64 * units.MiB,
		Classes: []time.Duration{
			10 * time.Minute, time.Hour, 24 * time.Hour, 7 * 24 * time.Hour,
		},
		Code:          ecc.RSSpec(255, 223),
		UBERTarget:    1e-18,
		RefreshMargin: 0.05,
	}
}

// Class is an index into Config.Classes.
type Class int

// ObjectID names a stored object.
type ObjectID uint64

// WriteOptions describe a Put.
type WriteOptions struct {
	Kind     DataKind
	Lifetime time.Duration // how long the data must stay readable
	Policy   ExpiryPolicy
}

type extent struct {
	zone int
	off  units.Bytes
	size units.Bytes
}

type objState int

const (
	objLive objState = iota
	objExpired
	objDeleted
)

type object struct {
	id       ObjectID
	size     units.Bytes
	class    Class
	opts     WriteOptions
	extents  []extent
	deadline time.Duration // when the data must be refreshed or dropped
	state    objState
}

type zoneMeta struct {
	class   Class
	objects map[ObjectID]bool // live objects with extents here
}

// deadlineHeap orders object ids by deadline.
type deadlineItem struct {
	id       ObjectID
	deadline time.Duration
}
type deadlineHeap []deadlineItem

func (h deadlineHeap) Len() int            { return len(h) }
func (h deadlineHeap) Less(i, j int) bool  { return h[i].deadline < h[j].deadline }
func (h deadlineHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *deadlineHeap) Push(x interface{}) { *h = append(*h, x.(deadlineItem)) }
func (h *deadlineHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// EnergyAccount breaks down MRM energy by cause. Write energy varies per
// retention class (the DCM saving), so the account is kept here, not in the
// generic device model.
type EnergyAccount struct {
	HostWrite    units.Energy
	RefreshWrite units.Energy // rewrites performed to extend retention
	Read         units.Energy
	ScrubRead    units.Energy
	Static       units.Energy
}

// Total sums the account.
func (e EnergyAccount) Total() units.Energy {
	return e.HostWrite + e.RefreshWrite + e.Read + e.ScrubRead + e.Static
}

// Stats reports control-plane activity.
type Stats struct {
	Puts, Gets, Deletes int64
	BytesWritten        units.Bytes
	BytesRead           units.Bytes
	BytesRefreshed      units.Bytes
	Refreshes           int64 // object refresh/relocation events
	Expirations         int64 // objects dropped at deadline
	Restores            int64 // refresh reads lost to faults, restored from upstream
	ScrubPasses         int64
	ZoneResets          int64
	Compactions         int64 // zones reclaimed by Compact
}

// MRM is a managed-retention memory with its control plane. Not safe for
// concurrent use: the simulator drives it from one goroutine per device.
type MRM struct {
	cfg      Config
	tradeoff cellphys.Tradeoff
	ops      []cellphys.OperatingPoint // per class
	scrub    []ecc.ScrubPlan           // per class
	zoned    *controller.Zoned

	openZone map[Class]int // currently filling zone per class, -1 if none
	zones    []zoneMeta
	objects  map[ObjectID]*object
	nextID   ObjectID
	heap     deadlineHeap

	lastScrub time.Duration
	energy    EnergyAccount
	stats     Stats

	// Scratch buffers for Get/GetBatch, reused across calls so the read hot
	// path allocates nothing in steady state.
	reqBuf  []controller.ReadReq
	resBuf  []memdev.Result
	objEnd  []int         // per-object end index into reqBuf (GetBatch)
	sizeBuf []units.Bytes // per-object sizes (GetBatch stats)

	// Scratch buffers for PutBatch, reused across calls so the write hot
	// path allocates only per-object state that outlives the call.
	putPlan []putChunk
	putEnds []int // per-object end index into putPlan
	putReqs []controller.AppendReq
}

// putChunk is one planned zone append within a PutBatch: enough to rebuild
// the extent, replay open-zone rotation, and roll back an eager zone Open if
// a mid-batch failure means the serial path would never have reached it.
type putChunk struct {
	objIdx    int
	zid       int
	off       units.Bytes
	size      units.Bytes
	opened    bool  // planning this chunk opened zid (empty -> open)
	prevClass Class // zone's class label before the open, for rollback
	fills     bool  // this chunk advances zid to ZoneFull
}

// New builds an MRM from cfg.
func New(cfg Config) (*MRM, error) {
	if len(cfg.Classes) == 0 {
		return nil, fmt.Errorf("core: need at least one retention class")
	}
	if !sort.SliceIsSorted(cfg.Classes, func(i, j int) bool { return cfg.Classes[i] < cfg.Classes[j] }) {
		return nil, fmt.Errorf("core: retention classes must be ascending")
	}
	if cfg.RefreshMargin <= 0 {
		cfg.RefreshMargin = 0.05
	}
	if cfg.RefreshMargin >= 0.5 {
		return nil, fmt.Errorf("core: refresh margin %v too large", cfg.RefreshMargin)
	}
	tr := cellphys.ForTechnology(cfg.Tech)
	ops := make([]cellphys.OperatingPoint, len(cfg.Classes))
	plans := make([]ecc.ScrubPlan, len(cfg.Classes))
	for i, d := range cfg.Classes {
		op, err := tr.At(d)
		if err != nil {
			return nil, fmt.Errorf("core: class %d: %w", i, err)
		}
		ops[i] = op
		// Retention-aware scrub: plan against the class's BER-over-time
		// curve for a fresh (unworn) cell population.
		berAt := func(age time.Duration) float64 {
			return cellphys.RawBER(op, cellphys.WearState{}, age, cellphys.DefaultBER)
		}
		plan, err := ecc.PlanScrub(cfg.Code, berAt, cfg.UBERTarget, d)
		if err != nil {
			return nil, fmt.Errorf("core: class %d scrub plan: %w", i, err)
		}
		plans[i] = plan
	}
	// The device spec is the MRM design point at the *longest* class: its
	// read path, bandwidth and capacity; per-class write costs are applied
	// by the control plane below.
	spec := memdev.MRMSpec(cfg.Tech, cfg.Classes[len(cfg.Classes)-1])
	// Scale per-stack bandwidth and background power with the number of
	// stacks the requested capacity implies (like HBM, aggregate bandwidth
	// grows with stack count).
	stacks := float64(cfg.Capacity) / float64(spec.Capacity)
	if stacks > 1 {
		spec.ReadBW *= units.Bandwidth(stacks)
		spec.WriteBW *= units.Bandwidth(stacks)
		spec.StaticPower *= units.Power(stacks)
	}
	spec.Capacity = cfg.Capacity
	spec.BlockSize = cfg.ZoneSize
	dev, err := memdev.NewDevice(spec)
	if err != nil {
		return nil, err
	}
	zoned, err := controller.NewZoned(dev, cfg.ZoneSize)
	if err != nil {
		return nil, err
	}
	m := &MRM{
		cfg:      cfg,
		tradeoff: tr,
		ops:      ops,
		scrub:    plans,
		zoned:    zoned,
		openZone: make(map[Class]int, len(cfg.Classes)),
		zones:    make([]zoneMeta, zoned.NumZones()),
		objects:  make(map[ObjectID]*object),
	}
	for c := range cfg.Classes {
		m.openZone[Class(c)] = -1
	}
	for i := range m.zones {
		m.zones[i].objects = make(map[ObjectID]bool)
	}
	return m, nil
}

// Classes returns the configured retention classes.
func (m *MRM) Classes() []time.Duration {
	out := make([]time.Duration, len(m.cfg.Classes))
	copy(out, m.cfg.Classes)
	return out
}

// OperatingPoint returns the cell operating point of a class.
func (m *MRM) OperatingPoint(c Class) (cellphys.OperatingPoint, error) {
	if int(c) < 0 || int(c) >= len(m.ops) {
		return cellphys.OperatingPoint{}, fmt.Errorf("core: class %d out of range", c)
	}
	return m.ops[int(c)], nil
}

// ScrubPlan returns the scrub plan of a class.
func (m *MRM) ScrubPlan(c Class) (ecc.ScrubPlan, error) {
	if int(c) < 0 || int(c) >= len(m.scrub) {
		return ecc.ScrubPlan{}, fmt.Errorf("core: class %d out of range", c)
	}
	return m.scrub[int(c)], nil
}

// ChooseClass picks the cheapest class whose retention covers lifetime, or
// the longest class (with refreshes) when lifetime exceeds every class.
// refreshes is how many in-place rewrites the object will need.
func (m *MRM) ChooseClass(lifetime time.Duration) (c Class, refreshes int) {
	for i, d := range m.cfg.Classes {
		if d >= lifetime {
			return Class(i), 0
		}
	}
	last := len(m.cfg.Classes) - 1
	d := m.cfg.Classes[last]
	n := int((lifetime + d - 1) / d)
	return Class(last), n - 1
}

// SetFaults arms fault injection on the underlying device. A zero Code in
// cfg is filled in from the MRM's own ECC plan, so callers need only supply
// the seed and rates.
func (m *MRM) SetFaults(cfg memdev.FaultConfig) {
	if cfg.Code.N == 0 {
		cfg.Code = m.cfg.Code
		cfg.UBERTarget = m.cfg.UBERTarget
	}
	m.zoned.Device().SetFaults(cfg)
}

// SetBERTracking forwards the read path's BER-scan switch to the underlying
// device (see memdev.Device.SetBERTracking).
func (m *MRM) SetBERTracking(on bool) { m.zoned.Device().SetBERTracking(on) }

// Now returns device time.
func (m *MRM) Now() time.Duration { return m.zoned.Device().Now() }

// Capacity returns total device capacity.
func (m *MRM) Capacity() units.Bytes { return m.cfg.Capacity }

// FreeBytes returns capacity not yet owned by open/full zones.
func (m *MRM) FreeBytes() units.Bytes {
	empty := len(m.zoned.ZonesInState(controller.ZoneEmpty))
	free := units.Bytes(empty) * m.cfg.ZoneSize
	// Plus remaining space in open zones.
	for _, id := range m.zoned.ZonesInState(controller.ZoneOpen) {
		zn, _ := m.zoned.Zone(id)
		free += zn.Remaining()
	}
	return free
}

// Put stores an object of the given size with the requested lifetime.
// It returns the object id and the write latency of the slowest extent.
func (m *MRM) Put(size units.Bytes, opts WriteOptions) (ObjectID, time.Duration, error) {
	if size == 0 {
		return 0, 0, fmt.Errorf("core: zero-size object")
	}
	class, _ := m.ChooseClass(opts.Lifetime)
	id := m.nextID
	m.nextID++
	obj := &object{
		id:    id,
		size:  size,
		class: class,
		opts:  opts,
	}
	lat, err := m.appendObject(obj, size, false)
	if err != nil {
		return 0, 0, err
	}
	obj.deadline = m.objectDeadline(obj)
	m.objects[id] = obj
	heap.Push(&m.heap, deadlineItem{id: id, deadline: obj.deadline})
	m.stats.Puts++
	m.stats.BytesWritten += size
	return id, lat, nil
}

// PutBatch stores len(sizes) objects sharing one set of write options exactly
// as if Put were called once per size in order — same object ids, zone
// selection and wear-leveling decisions, chunking, energy accumulation order,
// retention deadlines and heap order, fault-injection decisions, and the same
// error surfaced at the same object index — but issues every device write as
// one vectored append (one device lock acquisition per batch instead of one
// per chunk). ids[i] and lats[i] (both slices must be at least len(sizes)
// long) receive object i's id and worst-extent write latency. It returns the
// number of objects fully stored; when that is < len(sizes), the error is
// what the first-failing Put would have returned, and the control-plane
// residue (consumed ids, charged energy, zone membership of the failing
// object's completed chunks, open-zone rotation) matches the serial path
// bit for bit.
func (m *MRM) PutBatch(sizes []units.Bytes, opts WriteOptions, ids []ObjectID, lats []time.Duration) (int, error) {
	if len(ids) < len(sizes) || len(lats) < len(sizes) {
		return 0, fmt.Errorf("core: PutBatch: %d ids / %d lats for %d sizes", len(ids), len(lats), len(sizes))
	}
	if len(sizes) == 0 {
		return 0, nil
	}
	class, _ := m.ChooseClass(opts.Lifetime)
	startID := m.nextID
	m.putPlan = m.putPlan[:0]
	m.putEnds = m.putEnds[:0]

	// Plan: mirror the serial chunking loop — zone rotation tracked locally,
	// zone Opens applied eagerly (they touch no device state and are rolled
	// back if unreached), every device write deferred to one AppendVec.
	oz := m.openZone[class]
	var zPtr, zRem units.Bytes
	ozLoaded := false
	valErr := error(nil) // validation failure that ends the plan
	idsConsumed := 0     // objects whose id the serial path consumed

plan:
	for i, size := range sizes {
		if size == 0 {
			// The serial path rejects this before consuming an id.
			valErr = fmt.Errorf("core: zero-size object")
			break
		}
		idsConsumed = i + 1
		remaining := size
		for remaining > 0 {
			openedNow := false
			var prevClass Class
			if oz < 0 {
				zid := m.zoned.LeastWornEmpty() // software wear-leveling
				if zid < 0 {
					valErr = ErrNoSpace
					break plan
				}
				if err := m.zoned.Open(zid, m.cfg.Classes[class]); err != nil {
					valErr = err
					break plan
				}
				openedNow = true
				prevClass = m.zones[zid].class
				m.zones[zid].class = class
				oz, zPtr, zRem, ozLoaded = zid, 0, m.cfg.ZoneSize, true
			} else if !ozLoaded {
				zn, err := m.zoned.Zone(oz)
				if err != nil {
					valErr = err
					break plan
				}
				zPtr, zRem, ozLoaded = zn.WritePtr, zn.Remaining(), true
			}
			chunk := remaining
			if chunk > zRem {
				chunk = zRem
			}
			m.putPlan = append(m.putPlan, putChunk{
				objIdx: i, zid: oz, off: zPtr, size: chunk,
				opened: openedNow, prevClass: prevClass, fills: chunk == zRem,
			})
			if chunk == 0 {
				// Degenerate: the open zone has no room. The serial path issues
				// a zero-size append and fails with its error; AppendVec below
				// reproduces it at this request.
				break plan
			}
			zPtr += chunk
			zRem -= chunk
			if zRem == 0 {
				oz = -1
			}
			remaining -= chunk
		}
		m.putEnds = append(m.putEnds, len(m.putPlan))
	}

	m.putReqs = m.putReqs[:0]
	for j := range m.putPlan {
		m.putReqs = append(m.putReqs, controller.AppendReq{Zone: m.putPlan[j].zid, Size: m.putPlan[j].size})
	}
	done, derr := m.zoned.AppendVec(m.putReqs, m.results(len(m.putReqs)))

	op := m.ops[class]
	wbw := m.zoned.Device().Spec().WriteBW
	// Energy: same per-chunk values added in the same order as the serial
	// chunk loop, so the float accumulation is bit-identical.
	for j := 0; j < done; j++ {
		m.energy.HostWrite += op.WriteEnergy.PerBit(m.putPlan[j].size)
	}
	if derr != nil {
		// Zones opened for chunks the serial path never reached go back to
		// empty with no reset charged; the failing chunk's own open stands
		// (serially it happened before the failing device write).
		for j := len(m.putPlan) - 1; j > done; j-- {
			if e := &m.putPlan[j]; e.opened {
				if err := m.zoned.CancelOpen(e.zid); err == nil {
					m.zones[e.zid].class = e.prevClass
				}
			}
		}
	}
	// Open-zone rotation: replay the serial transitions. Chunks before the
	// failure take full effect; the failing chunk's zone selection happened
	// but its fill did not; chunks after it never ran.
	oz = m.openZone[class]
	for j := range m.putPlan {
		if derr != nil && j > done {
			break
		}
		e := &m.putPlan[j]
		if e.opened {
			oz = e.zid
		}
		if e.fills && !(derr != nil && j == done) {
			oz = -1
		}
	}
	m.openZone[class] = oz

	// Register fully-stored objects in id order: same deadlines (WrittenAt
	// stamps are final — later appends in the batch cannot restamp a zone)
	// and same heap push order as the serial path.
	committed, start := 0, 0
	for oi := 0; oi < len(m.putEnds); oi++ {
		end := m.putEnds[oi]
		if end > done {
			break
		}
		id := startID + ObjectID(oi)
		obj := &object{id: id, size: sizes[oi], class: class, opts: opts}
		var worst time.Duration
		for j := start; j < end; j++ {
			e := &m.putPlan[j]
			obj.extents = append(obj.extents, extent{zone: e.zid, off: e.off, size: e.size})
			m.zones[e.zid].objects[id] = true
			if lat := op.WriteLatency + wbw.Time(e.size); lat > worst {
				worst = lat
			}
		}
		obj.deadline = m.objectDeadline(obj)
		m.objects[id] = obj
		heap.Push(&m.heap, deadlineItem{id: id, deadline: obj.deadline})
		m.stats.Puts++
		m.stats.BytesWritten += sizes[oi]
		ids[oi], lats[oi] = id, worst
		start = end
		committed++
	}
	// The failing object's completed chunks keep their zone membership — the
	// residue a failed serial Put leaves behind.
	for j := start; j < done && j < len(m.putPlan); j++ {
		e := &m.putPlan[j]
		m.zones[e.zid].objects[startID+ObjectID(e.objIdx)] = true
	}
	if derr != nil {
		m.nextID = startID + ObjectID(m.putPlan[done].objIdx) + 1
		return committed, derr
	}
	m.nextID = startID + ObjectID(idsConsumed)
	return committed, valErr
}

// appendObject writes size bytes for obj into zones of its class, recording
// extents. refresh marks the energy as refresh housekeeping.
func (m *MRM) appendObject(obj *object, size units.Bytes, refresh bool) (time.Duration, error) {
	op := m.ops[obj.class]
	wbw := m.zoned.Device().Spec().WriteBW // invariant across chunks: hoisted out of the loop
	var worst time.Duration
	remaining := size
	for remaining > 0 {
		zid := m.openZone[obj.class]
		if zid < 0 {
			zid = m.zoned.LeastWornEmpty() // software wear-leveling
			if zid < 0 {
				return 0, ErrNoSpace
			}
			if err := m.zoned.Open(zid, m.cfg.Classes[obj.class]); err != nil {
				return 0, err
			}
			m.zones[zid].class = obj.class
			m.openZone[obj.class] = zid
		}
		zn, err := m.zoned.Zone(zid)
		if err != nil {
			return 0, err
		}
		chunk := remaining
		if chunk > zn.Remaining() {
			chunk = zn.Remaining()
		}
		off := zn.WritePtr
		res, err := m.zoned.Append(zid, chunk)
		if err != nil {
			return 0, err
		}
		// Replace the device's generic write energy with the class's DCM
		// write energy (the whole point of programmable retention).
		e := op.WriteEnergy.PerBit(chunk)
		if refresh {
			m.energy.RefreshWrite += e
		} else {
			m.energy.HostWrite += e
		}
		// Write latency: class-specific cell write time + transfer.
		lat := op.WriteLatency + wbw.Time(chunk)
		_ = res
		if lat > worst {
			worst = lat
		}
		obj.extents = append(obj.extents, extent{zone: zid, off: off, size: chunk})
		m.zones[zid].objects[obj.id] = true
		remaining -= chunk
		zn, _ = m.zoned.Zone(zid)
		if zn.State == controller.ZoneFull {
			m.openZone[obj.class] = -1
		}
	}
	return worst, nil
}

// objectDeadline computes when the object's data becomes unreliable: the
// earliest (zone birth + class retention) over its extents. Zone retention is
// anchored at the zone's first write, so data appended into an older zone
// inherits the shorter remaining window.
func (m *MRM) objectDeadline(obj *object) time.Duration {
	ret := m.cfg.Classes[obj.class]
	var deadline time.Duration = 1<<62 - 1
	for _, ext := range obj.extents {
		zn, err := m.zoned.Zone(ext.zone)
		if err != nil {
			continue
		}
		if d := zn.WrittenAt + ret; d < deadline {
			deadline = d
		}
	}
	return deadline
}

// Get reads an object in full, returning read latency. Expired soft state
// yields ErrExpired. The object's extents — weight-sized objects span
// thousands of zones — are issued as one vectored read: identical per-extent
// validation, cost, and fault accounting to extent-by-extent Reads, one lock
// acquisition instead of one per extent.
func (m *MRM) Get(id ObjectID) (time.Duration, error) {
	obj, err := m.liveObject(id)
	if err != nil {
		return 0, err
	}
	m.reqBuf = m.reqBuf[:0]
	for _, ext := range obj.extents {
		m.reqBuf = append(m.reqBuf, controller.ReadReq{Zone: ext.zone, Off: ext.off, Size: ext.size})
	}
	res := m.results(len(m.reqBuf))
	done, err := m.zoned.ReadVec(m.reqBuf, res)
	var total time.Duration
	for i := 0; i < done; i++ {
		m.energy.Read += res[i].Energy
		total += res[i].Latency
	}
	if err != nil {
		return 0, err
	}
	m.stats.Gets++
	m.stats.BytesRead += obj.size
	return total, nil
}

// GetBatch reads the listed objects exactly as if Get were called once per id
// in order — same validation order, same device read sequence and fault
// events, same per-object energy and stats — but coalesces every extent of
// every object into a single vectored device call. It returns the number of
// objects read in full and, when that is < len(ids), the error the
// first-failing Get would have returned.
func (m *MRM) GetBatch(ids []ObjectID) (int, error) {
	m.reqBuf = m.reqBuf[:0]
	m.objEnd = m.objEnd[:0]
	m.sizeBuf = m.sizeBuf[:0]
	for idx, id := range ids {
		obj, verr := m.liveObject(id)
		if verr != nil {
			// A sequential caller issues the reads of the earlier, valid
			// objects before looking this one up — and a device failure among
			// those takes precedence over the lookup error.
			done, err := m.flushReads(idx)
			if err != nil {
				return done, err
			}
			return idx, verr
		}
		for _, ext := range obj.extents {
			m.reqBuf = append(m.reqBuf, controller.ReadReq{Zone: ext.zone, Off: ext.off, Size: ext.size})
		}
		m.objEnd = append(m.objEnd, len(m.reqBuf))
		m.sizeBuf = append(m.sizeBuf, obj.size)
	}
	return m.flushReads(len(ids))
}

// liveObject resolves id to a readable object, with Get's error contract.
func (m *MRM) liveObject(id ObjectID) (*object, error) {
	obj, ok := m.objects[id]
	if !ok {
		return nil, fmt.Errorf("core: no object %d", id)
	}
	if err := obj.liveErr(); err != nil {
		return nil, err
	}
	return obj, nil
}

// liveErr reports whether the object is readable, with liveObject's exact
// error contract (object ids are never reused, so o.id is the id any lookup
// found it under).
func (o *object) liveErr() error {
	if o.state == objDeleted {
		return fmt.Errorf("core: no object %d", o.id)
	}
	if o.state == objExpired {
		return ErrExpired
	}
	return nil
}

// ObjRef is an opaque reference to a resolved object, for callers that read
// the same objects every step (the serving simulator's KV plans) and want to
// skip the per-read id lookup. A ref stays valid until its object is deleted;
// reads through a ref observe expiry exactly like reads by id.
type ObjRef *object

// ResolveRef resolves id for repeated planned reads. The object must be
// readable now (same errors as Get).
func (m *MRM) ResolveRef(id ObjectID) (ObjRef, error) {
	obj, err := m.liveObject(id)
	if err != nil {
		return nil, err
	}
	return ObjRef(obj), nil
}

// GetRefs reads the referenced objects exactly as GetBatch reads their ids —
// same validation order and errors, same device read sequence and fault
// events, same per-object energy and stats — minus the id lookups, which the
// refs carry pre-resolved. Extents are walked live, so a refresh that moved
// an object between calls is observed, not a stale snapshot. It returns the
// number of objects read in full and the first-failing Get's error.
func (m *MRM) GetRefs(refs []ObjRef) (int, error) {
	m.reqBuf = m.reqBuf[:0]
	m.objEnd = m.objEnd[:0]
	m.sizeBuf = m.sizeBuf[:0]
	for idx, ref := range refs {
		obj := (*object)(ref)
		if verr := obj.liveErr(); verr != nil {
			// Same precedence as GetBatch: earlier objects' device reads are
			// issued first, and a device failure among those wins.
			done, err := m.flushReads(idx)
			if err != nil {
				return done, err
			}
			return idx, verr
		}
		for _, ext := range obj.extents {
			m.reqBuf = append(m.reqBuf, controller.ReadReq{Zone: ext.zone, Off: ext.off, Size: ext.size})
		}
		m.objEnd = append(m.objEnd, len(m.reqBuf))
		m.sizeBuf = append(m.sizeBuf, obj.size)
	}
	return m.flushReads(len(refs))
}

// NextDeadline reports the earliest simulated time at which Tick would
// perform deadline housekeeping: the fire time — deadline minus the refresh
// margin for PolicyRefresh objects, the deadline itself for PolicyDrop — of
// the earliest live heap entry, mirroring Tick's own staleness filter. The
// scan is linear over the heap; it runs once per idle window, not per step.
func (m *MRM) NextDeadline() (time.Duration, bool) {
	var best time.Duration
	found := false
	for _, it := range m.heap {
		obj, ok := m.objects[it.id]
		if !ok || obj.state == objDeleted || it.deadline != obj.deadline {
			continue // stale entry; Tick would pop and ignore it
		}
		fire := it.deadline
		if obj.opts.Policy == PolicyRefresh {
			margin := time.Duration(float64(m.cfg.Classes[obj.class]) * m.cfg.RefreshMargin)
			fire = it.deadline - margin
		}
		if !found || fire < best {
			best, found = fire, true
		}
	}
	return best, found
}

// flushReads issues the extent reads accumulated in reqBuf for the first
// nObjs objects and applies the accounting a sequential Get loop would:
// read energy for every completed extent (the failing extent is charged on
// the device but not credited here, matching Get), Gets/BytesRead for every
// object whose extents all completed. Returns the number of fully-read
// objects and the first device error, if any.
func (m *MRM) flushReads(nObjs int) (int, error) {
	res := m.results(len(m.reqBuf))
	done, err := m.zoned.ReadVec(m.reqBuf, res)
	for i := 0; i < done; i++ {
		m.energy.Read += res[i].Energy
	}
	completed := 0
	for completed < nObjs && m.objEnd[completed] <= done {
		m.stats.Gets++
		m.stats.BytesRead += m.sizeBuf[completed]
		completed++
	}
	if err != nil {
		return completed, err
	}
	return nObjs, nil
}

// results returns the scratch result buffer sized for n reads.
func (m *MRM) results(n int) []memdev.Result {
	if cap(m.resBuf) < n {
		m.resBuf = make([]memdev.Result, n)
	}
	return m.resBuf[:n]
}

// Delete removes an object, releasing zones whose objects are all gone.
func (m *MRM) Delete(id ObjectID) error {
	obj, ok := m.objects[id]
	if !ok || obj.state == objDeleted {
		return fmt.Errorf("core: no object %d", id)
	}
	m.dropExtents(obj)
	obj.state = objDeleted
	m.stats.Deletes++
	return nil
}

// dropExtents removes the object from zone membership and resets zones that
// become dead. Open zones are never reset mid-fill.
func (m *MRM) dropExtents(obj *object) {
	for _, ext := range obj.extents {
		zm := &m.zones[ext.zone]
		delete(zm.objects, obj.id)
		zn, _ := m.zoned.Zone(ext.zone)
		if len(zm.objects) == 0 && zn.State != controller.ZoneEmpty && zn.State != controller.ZoneOpen {
			m.resetZone(ext.zone)
		}
	}
	obj.extents = nil
}

// Tick advances simulated time, performing due housekeeping: refreshing
// objects under PolicyRefresh whose deadline is within the refresh margin,
// expiring PolicyDrop objects whose deadline passed, accounting scrub energy,
// and reclaiming dead zones.
func (m *MRM) Tick(dt time.Duration) error {
	if err := m.zoned.Device().Advance(dt); err != nil {
		return err
	}
	now := m.Now()
	// Static energy mirrors the device account (kept here so EnergyAccount
	// is self-contained).
	m.energy.Static += m.zoned.Device().Spec().StaticPower.Over(dt)

	// Scrub accounting: each class's occupied bytes are read once per scrub
	// interval. Modeled statistically rather than per-zone events.
	m.accountScrub(dt)

	// Process deadlines.
	for m.heap.Len() > 0 {
		top := m.heap[0]
		obj, ok := m.objects[top.id]
		if !ok || obj.state == objDeleted || top.deadline != obj.deadline {
			heap.Pop(&m.heap) // stale entry
			continue
		}
		margin := time.Duration(float64(m.cfg.Classes[obj.class]) * m.cfg.RefreshMargin)
		if obj.opts.Policy == PolicyRefresh {
			if top.deadline-margin > now {
				break
			}
			heap.Pop(&m.heap)
			if err := m.refreshObject(obj); err != nil {
				return err
			}
			heap.Push(&m.heap, deadlineItem{id: obj.id, deadline: obj.deadline})
		} else {
			if top.deadline > now {
				break
			}
			heap.Pop(&m.heap)
			if obj.state == objLive {
				m.dropExtents(obj)
				obj.state = objExpired
				m.stats.Expirations++
			}
		}
	}
	// Let the zoned layer mark anything else expired (defensive); reclaim
	// dead zones.
	for _, zid := range m.zoned.ExpireDue() {
		// An expired zone can no longer take appends: if it was a class's
		// open zone, rotate away from it.
		for c, open := range m.openZone {
			if open == zid {
				m.openZone[c] = -1
			}
		}
		if len(m.zones[zid].objects) == 0 {
			m.resetZone(zid)
		}
	}
	return nil
}

// resetZone returns a zone to the empty state, fixing up any open-zone
// pointer that referenced it.
func (m *MRM) resetZone(zid int) {
	for c, open := range m.openZone {
		if open == zid {
			m.openZone[c] = -1
		}
	}
	if err := m.zoned.Reset(zid); err == nil {
		m.stats.ZoneResets++
	}
}

// refreshObject rewrites the object into fresh zones, extending its deadline
// by one retention period. An uncorrectable read during refresh does not fail
// the object: PolicyRefresh data (weights) has a durable upstream copy, so the
// rewrite proceeds from there and the event is counted as a restore.
func (m *MRM) refreshObject(obj *object) error {
	// Read the live data (energy), then rewrite.
	restored := false
	for _, ext := range obj.extents {
		res, err := m.zoned.Read(ext.zone, ext.off, ext.size)
		if err != nil {
			if errors.Is(err, fault.ErrUncorrectable) {
				restored = true
				continue
			}
			return fmt.Errorf("core: refresh read: %w", err)
		}
		m.energy.Read += res.Energy
	}
	if restored {
		m.stats.Restores++
	}
	m.dropExtents(obj)
	// Rotate to a fresh zone: appending into the aging open zone would give
	// the rewrite less than a full retention period.
	m.openZone[obj.class] = -1
	if _, err := m.appendObject(obj, obj.size, true); err != nil {
		return fmt.Errorf("core: refresh write: %w", err)
	}
	obj.deadline = m.objectDeadline(obj)
	m.stats.Refreshes++
	m.stats.BytesRefreshed += obj.size
	return nil
}

// accountScrub charges scrub read energy for dt of elapsed time.
func (m *MRM) accountScrub(dt time.Duration) {
	spec := m.zoned.Device().Spec()
	for c := range m.cfg.Classes {
		plan := m.scrub[c]
		if plan.Interval <= 0 {
			continue
		}
		var occupied units.Bytes
		for zid := range m.zones {
			zn, _ := m.zoned.Zone(zid)
			if m.zones[zid].class == Class(c) &&
				(zn.State == controller.ZoneOpen || zn.State == controller.ZoneFull) {
				occupied += zn.WritePtr
			}
		}
		if occupied == 0 {
			continue
		}
		passes := dt.Seconds() / plan.Interval.Seconds()
		m.energy.ScrubRead += units.Energy(float64(spec.ReadEnergyPerBit.PerBit(occupied)) * passes)
		m.stats.ScrubPasses += int64(passes)
	}
}

// Compact relocates live data out of zones whose live fraction has fallen
// to or below threshold (0 < threshold < 1), then resets them — the
// cluster-level garbage collection §4 assigns to the software control plane.
// Unlike an FTL, compaction here is rare: most zones die wholesale because
// retention classes segregate lifetimes; compaction only recovers space
// stranded by early deletes. It returns the number of zones reclaimed.
func (m *MRM) Compact(threshold float64) (int, error) {
	if threshold <= 0 || threshold >= 1 {
		return 0, fmt.Errorf("core: compaction threshold %v outside (0,1)", threshold)
	}
	// Identify victim zones: full (not open — the writer still owns those),
	// some live data, live fraction <= threshold.
	type victim struct {
		id   int
		live units.Bytes
	}
	var victims []victim
	for zid := range m.zones {
		zn, err := m.zoned.Zone(zid)
		if err != nil || zn.State != controller.ZoneFull {
			continue
		}
		var live units.Bytes
		for oid := range m.zones[zid].objects {
			obj := m.objects[oid]
			if obj == nil || obj.state != objLive {
				continue
			}
			for _, ext := range obj.extents {
				if ext.zone == zid {
					live += ext.size
				}
			}
		}
		if live > 0 && float64(live)/float64(zn.Size) <= threshold {
			victims = append(victims, victim{id: zid, live: live})
		}
	}
	reclaimed := 0
	for _, v := range victims {
		// Relocate every live object that has extents in this zone.
		// (Objects may span zones; the whole object moves, which also
		// defragments it.)
		var movers []*object
		for oid := range m.zones[v.id].objects {
			obj := m.objects[oid]
			if obj != nil && obj.state == objLive {
				movers = append(movers, obj)
			}
		}
		ok := true
		for _, obj := range movers {
			if err := m.refreshObject(obj); err != nil {
				// Out of space mid-compaction: stop; nothing is lost, the
				// zone simply stays uncompacted.
				ok = false
				break
			}
			// refreshObject re-pushes deadlines via the caller normally;
			// here we must record the new deadline in the heap ourselves.
			heap.Push(&m.heap, deadlineItem{id: obj.id, deadline: obj.deadline})
		}
		if !ok {
			break
		}
		// dropExtents inside refreshObject reset the zone once it emptied.
		zn, err := m.zoned.Zone(v.id)
		if err == nil && zn.State == controller.ZoneEmpty {
			reclaimed++
			m.stats.Compactions++
		}
	}
	return reclaimed, nil
}

// CheckInvariants verifies control-plane consistency: every live extent
// lies inside a written region of a non-expired zone, zone membership
// matches object extents, and FreeBytes accounting is exact. Tests call it
// after workloads.
func (m *MRM) CheckInvariants() error {
	// Object extents vs zone membership. Iterate objects in sorted-id order
	// so the first violation reported is the same in every run.
	ids := make([]ObjectID, 0, len(m.objects))
	for id := range m.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	members := make(map[int]map[ObjectID]bool, len(m.zones))
	for _, id := range ids {
		obj := m.objects[id]
		if obj.state != objLive {
			if len(obj.extents) != 0 {
				return fmt.Errorf("core: non-live object %d retains extents", id)
			}
			continue
		}
		var total units.Bytes
		for _, ext := range obj.extents {
			zn, err := m.zoned.Zone(ext.zone)
			if err != nil {
				return fmt.Errorf("core: object %d references bad zone %d", id, ext.zone)
			}
			if zn.State == controller.ZoneEmpty {
				return fmt.Errorf("core: object %d has extent in empty zone %d", id, ext.zone)
			}
			if ext.off+ext.size > zn.WritePtr {
				return fmt.Errorf("core: object %d extent beyond write pointer in zone %d", id, ext.zone)
			}
			if members[ext.zone] == nil {
				members[ext.zone] = make(map[ObjectID]bool)
			}
			members[ext.zone][id] = true
			total += ext.size
		}
		if total != obj.size {
			return fmt.Errorf("core: object %d extents sum to %v, size is %v", id, total, obj.size)
		}
	}
	for zid := range m.zones {
		oids := make([]ObjectID, 0, len(m.zones[zid].objects))
		for oid := range m.zones[zid].objects {
			oids = append(oids, oid)
		}
		sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
		for _, oid := range oids {
			obj := m.objects[oid]
			if obj == nil || obj.state != objLive {
				return fmt.Errorf("core: zone %d lists dead object %d", zid, oid)
			}
			if !members[zid][oid] {
				return fmt.Errorf("core: zone %d lists object %d with no extent there", zid, oid)
			}
		}
		if got, want := len(m.zones[zid].objects), len(members[zid]); got != want {
			return fmt.Errorf("core: zone %d membership %d != extent owners %d", zid, got, want)
		}
	}
	// FreeBytes accounting: empty zones + open-zone remainders.
	var want units.Bytes
	for zid := 0; zid < m.zoned.NumZones(); zid++ {
		zn, _ := m.zoned.Zone(zid)
		switch zn.State {
		case controller.ZoneEmpty:
			want += zn.Size
		case controller.ZoneOpen:
			want += zn.Remaining()
		}
	}
	if got := m.FreeBytes(); got != want {
		return fmt.Errorf("core: FreeBytes %v != recomputed %v", got, want)
	}
	return nil
}

// Energy returns the energy account.
func (m *MRM) Energy() EnergyAccount { return m.energy }

// Stats returns control-plane statistics.
func (m *MRM) Stats() Stats { return m.stats }

// Wear returns the underlying device wear summary (write cycles per zone).
func (m *MRM) Wear() memdev.WearSummary { return m.zoned.Device().Wear() }

// ZoneWearSpread returns max/mean zone reset counts (software WL quality).
func (m *MRM) ZoneWearSpread() (int, float64) { return m.zoned.WearSpread() }

// Spec exposes the device spec backing this MRM.
func (m *MRM) Spec() memdev.Spec { return m.zoned.Device().Spec() }

// WriteCost returns the per-bit write energy and cell write latency of a
// class — the quantities DCM trades against retention.
func (m *MRM) WriteCost(c Class) (units.Energy, time.Duration, error) {
	op, err := m.OperatingPoint(c)
	if err != nil {
		return 0, 0, err
	}
	return op.WriteEnergy, op.WriteLatency, nil
}
