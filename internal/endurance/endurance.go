// Package endurance reproduces the paper's Figure 1: the endurance (write
// cycles per cell over a five-year service life) that foundation-model
// inference demands of its memory — for model-weight updates and KV-cache
// churn — compared against the endurance of shipping memory/storage products
// and the demonstrated potential of their underlying technologies.
package endurance

import (
	"fmt"
	"time"

	"mrm/internal/cellphys"
	"mrm/internal/llm"
	"mrm/internal/memdev"
	"mrm/internal/report"
	"mrm/internal/units"
)

// Requirement is one workload bar in Figure 1.
type Requirement struct {
	Name          string
	WritesPerCell float64
}

// WeightUpdateRequirement computes writes/cell for bulk weight overwrites at
// the given update period over the service life. Every update rewrites every
// weight cell once.
func WeightUpdateRequirement(update, life time.Duration) Requirement {
	name := fmt.Sprintf("weights (update %s)", shortDur(update))
	if update <= 0 {
		panic("endurance: non-positive update period")
	}
	return Requirement{Name: name, WritesPerCell: life.Seconds() / update.Seconds()}
}

// KVRequirement computes writes/cell for KV-cache churn: the sustained KV
// append rate (prefill + decode tokens/s times bytes/token) spread over the
// KV region of capacity kvBytes, accumulated over the service life. The
// arithmetic follows §3's description using Splitwise throughputs and
// context lengths for Llama2-70B.
func KVRequirement(w llm.Workload, model llm.ModelConfig, kvBytes units.Bytes, life time.Duration) Requirement {
	if kvBytes == 0 {
		panic("endurance: zero KV capacity")
	}
	tokensPerSec := w.PrefillTokensPerSec + w.DecodeTokensPerSec
	bytesPerSec := tokensPerSec * float64(model.KVBytesPerToken())
	writesPerCellPerSec := bytesPerSec / float64(kvBytes)
	return Requirement{
		Name:          fmt.Sprintf("KV cache (%s, %s)", model.Name, w.Name),
		WritesPerCell: writesPerCellPerSec * life.Seconds(),
	}
}

// TechEndurance is one technology bar-pair in Figure 1.
type TechEndurance struct {
	Name      string
	Product   float64 // endurance of the shipping device
	Potential float64 // endurance demonstrated for the technology
}

// Technologies returns the Figure 1 comparison set from the spec database.
func Technologies() []TechEndurance {
	pick := func(s memdev.Spec) TechEndurance {
		return TechEndurance{Name: s.Name, Product: s.Endurance, Potential: s.EndurancePotential}
	}
	mrm := memdev.MRMSpec(cellphys.RRAM, 24*time.Hour)
	return []TechEndurance{
		pick(memdev.HBM3E),
		pick(memdev.NANDSLC),
		pick(memdev.NANDTLC),
		pick(memdev.OptanePCM),
		pick(memdev.WeebitRRAM),
		pick(memdev.EverspinSTT),
		{Name: mrm.Name, Product: mrm.Endurance, Potential: mrm.EndurancePotential},
	}
}

// Figure1 is the full dataset behind the figure.
type Figure1 struct {
	Requirements []Requirement
	Technologies []TechEndurance
}

// Compute builds the Figure 1 dataset with the paper's parameterization:
// hourly and once-per-second weight updates, and KV churn for Llama2-70B
// under the Splitwise workloads, over a 5-year life. kvBytes is the KV
// region capacity per device (the paper's "few tens of GBs" working set).
func Compute(kvBytes units.Bytes) Figure1 {
	life := llm.ServiceLife
	return Figure1{
		Requirements: []Requirement{
			WeightUpdateRequirement(llm.WeightUpdateHourly, life),
			WeightUpdateRequirement(llm.WeightUpdatePerSecond, life),
			KVRequirement(llm.SplitwiseConv, llm.Llama2_70B, kvBytes, life),
			KVRequirement(llm.SplitwiseCode, llm.Llama2_70B, kvBytes, life),
		},
		Technologies: Technologies(),
	}
}

// Verdict classifies one technology against one requirement.
type Verdict int

// Verdicts.
const (
	Insufficient    Verdict = iota // neither product nor technology meets it
	PotentialOnly                  // technology could, product does not
	Meets                          // shipping product meets it
	Overprovisioned                // product exceeds it by > 10^3
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Insufficient:
		return "insufficient"
	case PotentialOnly:
		return "potential-only"
	case Meets:
		return "meets"
	case Overprovisioned:
		return "overprovisioned"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Classify compares a technology against a requirement.
func Classify(t TechEndurance, r Requirement) Verdict {
	switch {
	case t.Product >= r.WritesPerCell*1e3:
		return Overprovisioned
	case t.Product >= r.WritesPerCell:
		return Meets
	case t.Potential >= r.WritesPerCell:
		return PotentialOnly
	default:
		return Insufficient
	}
}

// Chart renders the log-scale bar chart: requirement bars ('#'),
// product endurance ('='), technology potential ('+').
func (f Figure1) Chart() string {
	var b report.BarChart
	b.Title = "Figure 1: endurance requirements vs memory technologies (writes/cell, 5y, log scale)"
	b.Log10 = true
	b.Width = 50
	for _, r := range f.Requirements {
		b.AddMark("req: "+r.Name, r.WritesPerCell, '#')
	}
	for _, t := range f.Technologies {
		b.AddMark(t.Name+" product", t.Product, '=')
		if t.Potential > t.Product {
			b.AddMark(t.Name+" potential", t.Potential, '+')
		}
	}
	return b.String()
}

// Table renders the verdict matrix: one row per technology, one column per
// requirement.
func (f Figure1) Table() *report.Table {
	headers := []string{"technology", "product", "potential"}
	for _, r := range f.Requirements {
		headers = append(headers, r.Name)
	}
	t := report.NewTable("Figure 1 verdicts", headers...)
	for _, tech := range f.Technologies {
		row := []interface{}{tech.Name,
			fmt.Sprintf("%.1e", tech.Product), fmt.Sprintf("%.1e", tech.Potential)}
		for _, r := range f.Requirements {
			row = append(row, Classify(tech, r).String())
		}
		t.AddRow(row...)
	}
	return t
}

func shortDur(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%.0fh", d.Hours())
	case d >= time.Minute:
		return fmt.Sprintf("%.0fm", d.Minutes())
	default:
		return d.String()
	}
}
