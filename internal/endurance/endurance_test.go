package endurance

import (
	"math"
	"strings"
	"testing"
	"time"

	"mrm/internal/llm"
	"mrm/internal/units"
)

func TestWeightUpdateRequirement(t *testing.T) {
	// Hourly updates over 5 years: 5*365*24 = 43800 writes.
	r := WeightUpdateRequirement(time.Hour, llm.ServiceLife)
	if math.Abs(r.WritesPerCell-43800) > 1 {
		t.Fatalf("hourly = %v, want 43800", r.WritesPerCell)
	}
	// Per-second: ~1.58e8.
	r = WeightUpdateRequirement(time.Second, llm.ServiceLife)
	if r.WritesPerCell < 1.5e8 || r.WritesPerCell > 1.6e8 {
		t.Fatalf("per-second = %g, want ~1.58e8", r.WritesPerCell)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero period should panic")
		}
	}()
	WeightUpdateRequirement(0, llm.ServiceLife)
}

func TestKVRequirementMagnitude(t *testing.T) {
	// The paper's Figure 1 places KV churn in the 1e6–1e8 band: well above
	// SCM product endurance (1e5–1e6), well below HBM (1e15+).
	r := KVRequirement(llm.SplitwiseConv, llm.Llama2_70B, 48*units.GiB, llm.ServiceLife)
	if r.WritesPerCell < 1e6 || r.WritesPerCell > 1e9 {
		t.Fatalf("KV requirement = %g, want 1e6..1e9", r.WritesPerCell)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity should panic")
		}
	}()
	KVRequirement(llm.SplitwiseConv, llm.Llama2_70B, 0, llm.ServiceLife)
}

func TestKVRequirementScalesInverselyWithCapacity(t *testing.T) {
	small := KVRequirement(llm.SplitwiseConv, llm.Llama2_70B, 16*units.GiB, llm.ServiceLife)
	large := KVRequirement(llm.SplitwiseConv, llm.Llama2_70B, 64*units.GiB, llm.ServiceLife)
	ratio := small.WritesPerCell / large.WritesPerCell
	if math.Abs(ratio-4) > 0.01 {
		t.Fatalf("capacity scaling ratio = %v, want 4", ratio)
	}
}

func TestComputeFigure1Findings(t *testing.T) {
	f := Compute(48 * units.GiB)
	if len(f.Requirements) != 4 || len(f.Technologies) < 6 {
		t.Fatalf("dataset shape: %d reqs, %d techs", len(f.Requirements), len(f.Technologies))
	}
	byName := map[string]TechEndurance{}
	for _, tech := range f.Technologies {
		byName[tech.Name] = tech
	}
	kv := f.Requirements[2] // conv KV churn

	// Paper finding 1: HBM is vastly overprovisioned on endurance.
	if v := Classify(byName["HBM3E"], kv); v != Overprovisioned {
		t.Errorf("HBM vs KV churn = %v, want overprovisioned", v)
	}
	// Paper finding 2: existing SCM products don't meet the KV requirement,
	// but the underlying technologies do.
	if v := Classify(byName["Optane-PCM"], kv); v == Meets || v == Overprovisioned {
		t.Errorf("Optane product should not meet KV churn, got %v", v)
	}
	if v := Classify(byName["ReRAM(product)"], kv); v != PotentialOnly && v != Insufficient {
		t.Errorf("ReRAM product vs KV churn = %v", v)
	}
	if byName["ReRAM(product)"].Potential < kv.WritesPerCell {
		t.Error("RRAM technology potential should cover KV churn")
	}
	// Flash cannot: SLC endurance 1e5 < 1e6+ requirement.
	if v := Classify(byName["NAND-SLC"], kv); v == Meets || v == Overprovisioned {
		t.Errorf("SLC flash should fail the KV requirement, got %v", v)
	}
	// The MRM design point meets the KV requirement as a product.
	var mrm TechEndurance
	for name, tech := range byName {
		if strings.HasPrefix(name, "MRM-") {
			mrm = tech
		}
	}
	if mrm.Name == "" {
		t.Fatal("no MRM entry in figure")
	}
	if v := Classify(mrm, kv); v != Meets && v != Overprovisioned {
		t.Errorf("MRM vs KV churn = %v, want meets", v)
	}
	// Everything meets the hourly weight-update requirement except nothing
	// fancy: even flash SLC does (4.4e4 < 1e5).
	hourly := f.Requirements[0]
	if v := Classify(byName["NAND-SLC"], hourly); v != Meets && v != Overprovisioned {
		t.Errorf("SLC vs hourly weights = %v", v)
	}
}

func TestVerdictString(t *testing.T) {
	for v, want := range map[Verdict]string{
		Insufficient: "insufficient", PotentialOnly: "potential-only",
		Meets: "meets", Overprovisioned: "overprovisioned",
	} {
		if v.String() != want {
			t.Errorf("%d -> %q", v, v.String())
		}
	}
	if !strings.Contains(Verdict(9).String(), "9") {
		t.Error("unknown verdict should include number")
	}
}

func TestChartAndTableRender(t *testing.T) {
	f := Compute(48 * units.GiB)
	chart := f.Chart()
	for _, want := range []string{"Figure 1", "HBM3E", "req: weights", "KV cache"} {
		if !strings.Contains(chart, want) {
			t.Errorf("chart missing %q", want)
		}
	}
	tab := f.Table()
	out := tab.String()
	for _, want := range []string{"technology", "overprovisioned", "HBM3E"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if tab.NumRows() != len(f.Technologies) {
		t.Errorf("table rows = %d", tab.NumRows())
	}
}
