package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestForkIndependence(t *testing.T) {
	r := NewRNG(7)
	c1 := r.Fork()
	c2 := r.Fork()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("forked streams start identically")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntnRangeAndPanic(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(11)
	n := 100000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(13)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(17)
	e := Exponential{Rate: 4}
	n := 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += e.Sample(r)
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.25) > 0.01 {
		t.Errorf("exponential mean = %v, want ~0.25", mean)
	}
}

func TestExponentialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for rate<=0")
		}
	}()
	Exponential{Rate: 0}.Sample(NewRNG(1))
}

func TestLognormalMedian(t *testing.T) {
	r := NewRNG(19)
	l := Lognormal{Median: 1000, Sigma: 1}
	n := 50001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = l.Sample(r)
	}
	// The sample median should approximate the configured median.
	// Partial selection: count how many fall below the configured median.
	below := 0
	for _, v := range vals {
		if v < 1000 {
			below++
		}
	}
	frac := float64(below) / float64(n)
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("fraction below median = %v, want ~0.5", frac)
	}
}

func TestLognormalMean(t *testing.T) {
	l := Lognormal{Median: 100, Sigma: 0.5}
	want := 100 * math.Exp(0.125)
	if math.Abs(l.Mean()-want) > 1e-9 {
		t.Errorf("Mean() = %v, want %v", l.Mean(), want)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(23)
	z := NewZipf(100, 1.0)
	counts := make([]int, 101)
	for i := 0; i < 100000; i++ {
		k := z.Sample(r)
		if k < 1 || k > 100 {
			t.Fatalf("Zipf out of range: %d", k)
		}
		counts[k]++
	}
	if counts[1] < counts[2] || counts[2] < counts[10] {
		t.Errorf("Zipf not rank-skewed: c1=%d c2=%d c10=%d", counts[1], counts[2], counts[10])
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(29)
	for _, mean := range []float64{0.5, 5, 80} {
		p := Poisson{Mean: mean}
		n := 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += p.Sample(r)
		}
		got := float64(sum) / float64(n)
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
}

func TestBernoulli(t *testing.T) {
	r := NewRNG(31)
	hits := 0
	for i := 0; i < 10000; i++ {
		if Bernoulli(r, 0.3) {
			hits++
		}
	}
	frac := float64(hits) / 10000
	if math.Abs(frac-0.3) > 0.02 {
		t.Errorf("Bernoulli(0.3) rate = %v", frac)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Fatal("Clamp wrong")
	}
}

// Property: lognormal samples are always positive.
func TestLognormalPositive(t *testing.T) {
	r := NewRNG(37)
	f := func(med uint16, sig uint8) bool {
		l := Lognormal{Median: float64(med%1000) + 1, Sigma: float64(sig%30) / 10}
		return l.Sample(r) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Clamp output is always within bounds.
func TestClampProperty(t *testing.T) {
	f := func(v, lo, hi float64) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		got := Clamp(v, lo, hi)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
