// Package dist provides deterministic, seedable random distributions used by
// the workload generators: exponential inter-arrival times (Poisson
// processes), lognormal context lengths, Zipf popularity, and a handful of
// helpers. Every distribution draws from an explicit *RNG so simulations are
// reproducible from a single seed.
package dist

import (
	"math"
)

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** by Blackman & Vigna). We implement it ourselves rather than
// using math/rand so that streams can be split (Fork) with stable semantics
// across Go versions.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64, which maps any
// seed (including 0) to a full-entropy internal state.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		// splitmix64 step.
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Fork derives an independent child stream. Calling Fork twice yields two
// distinct streams; the parent advances.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xa3ec647659359acd)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("dist: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal variate (Box–Muller, one branch cached).
func (r *RNG) Norm() float64 {
	// Marsaglia polar method.
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Exponential samples an exponential distribution with the given rate
// (events per unit time). The mean of the returned value is 1/rate.
type Exponential struct {
	Rate float64
}

// Sample draws one variate.
func (e Exponential) Sample(r *RNG) float64 {
	if e.Rate <= 0 {
		panic("dist: Exponential with non-positive rate")
	}
	u := r.Float64()
	// Guard against log(0).
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1-u) / e.Rate
}

// Lognormal samples a lognormal distribution parameterized by its *median*
// and the sigma of the underlying normal. This parameterization matches how
// serving papers (e.g. Splitwise) report context lengths: a median plus a
// heavy tail.
type Lognormal struct {
	Median float64
	Sigma  float64
}

// Sample draws one variate.
func (l Lognormal) Sample(r *RNG) float64 {
	if l.Median <= 0 {
		panic("dist: Lognormal with non-positive median")
	}
	return l.Median * math.Exp(l.Sigma*r.Norm())
}

// Mean returns the analytic mean median*exp(sigma^2/2).
func (l Lognormal) Mean() float64 {
	return l.Median * math.Exp(l.Sigma*l.Sigma/2)
}

// Zipf samples ranks 1..N with probability proportional to 1/rank^S.
// Used for model/prefix popularity.
type Zipf struct {
	N int
	S float64

	cdf []float64 // lazily built cumulative distribution
}

// NewZipf precomputes the CDF for N items with exponent s.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("dist: Zipf with non-positive N")
	}
	z := &Zipf{N: n, S: s}
	z.cdf = make([]float64, n)
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), s)
		z.cdf[i-1] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z
}

// Sample draws a rank in [1, N].
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	// Binary search the CDF.
	lo, hi := 0, z.N-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// Poisson samples a Poisson-distributed count with the given mean (Knuth's
// algorithm for small means, normal approximation above 30).
type Poisson struct {
	Mean float64
}

// Sample draws one count.
func (p Poisson) Sample(r *RNG) int {
	if p.Mean < 0 {
		panic("dist: Poisson with negative mean")
	}
	if p.Mean > 30 {
		v := p.Mean + math.Sqrt(p.Mean)*r.Norm()
		if v < 0 {
			return 0
		}
		return int(math.Round(v))
	}
	l := math.Exp(-p.Mean)
	k, prod := 0, 1.0
	for {
		prod *= r.Float64()
		if prod <= l {
			return k
		}
		k++
	}
}

// Bernoulli returns true with probability p.
func Bernoulli(r *RNG, p float64) bool { return r.Float64() < p }

// Clamp bounds v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
