// Package report renders the simulator's outputs: aligned plain-text tables,
// CSV, and ASCII charts (log-scale bar charts and line series) used to
// regenerate the paper's figure. Output is deterministic so tests can match
// it exactly.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row. Cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

func formatFloat(v float64) string {
	av := math.Abs(v)
	switch {
	case v == math.Trunc(v) && av < 1e7 && av >= 1:
		return fmt.Sprintf("%.0f", v)
	case av != 0 && (av >= 1e6 || av < 1e-3):
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// WriteTo renders the table to w.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("== " + t.Title + " ==\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	_, _ = t.WriteTo(&b)
	return b.String()
}

// CSV renders the table as comma-separated values (headers first).
// Cells containing commas or quotes are quoted per RFC 4180.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.headers)
	for _, row := range t.rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// BarChart renders named values as a horizontal ASCII bar chart. With Log10
// set, bar length is proportional to log10(value), which is how the paper's
// Figure 1 presents endurance (orders of magnitude).
type BarChart struct {
	Title  string
	Log10  bool
	Width  int // bar area width in characters; default 60
	labels []string
	values []float64
	marks  []rune // per-bar fill rune; default '#'
}

// Add appends a bar.
func (b *BarChart) Add(label string, value float64) { b.AddMark(label, value, '#') }

// AddMark appends a bar drawn with the given fill rune (useful to distinguish
// "product" vs "technology potential" series in one chart).
func (b *BarChart) AddMark(label string, value float64, mark rune) {
	b.labels = append(b.labels, label)
	b.values = append(b.values, value)
	b.marks = append(b.marks, mark)
}

// String renders the chart.
func (b *BarChart) String() string {
	width := b.Width
	if width <= 0 {
		width = 60
	}
	maxLabel := 0
	for _, l := range b.labels {
		if len(l) > maxLabel {
			maxLabel = len(l)
		}
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range b.values {
		x := b.scale(v)
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if len(b.values) == 0 || hi <= lo {
		hi = lo + 1
	}
	var sb strings.Builder
	if b.Title != "" {
		sb.WriteString("== " + b.Title + " ==\n")
	}
	for i, l := range b.labels {
		frac := (b.scale(b.values[i]) - lo) / (hi - lo)
		n := int(math.Round(frac * float64(width)))
		if n < 1 && b.values[i] > 0 {
			n = 1
		}
		sb.WriteString(pad(l, maxLabel))
		sb.WriteString(" |")
		sb.WriteString(strings.Repeat(string(b.marks[i]), n))
		sb.WriteString(fmt.Sprintf(" %s\n", formatSci(b.values[i])))
	}
	return sb.String()
}

func (b *BarChart) scale(v float64) float64 {
	if b.Log10 {
		if v <= 0 {
			return 0
		}
		return math.Log10(v)
	}
	return v
}

func formatSci(v float64) string {
	if v == 0 {
		return "0"
	}
	av := math.Abs(v)
	if av >= 1e4 || av < 1e-2 {
		return fmt.Sprintf("%.2e", v)
	}
	return formatFloat(v)
}

// Series is a named (x, y) series for line output.
type Series struct {
	Name string
	X, Y []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// SeriesTable renders one or more series as a shared-x table: the series must
// have identical X vectors (the usual output of a parameter sweep).
func SeriesTable(title, xName string, series ...*Series) (*Table, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("report: no series")
	}
	n := len(series[0].X)
	headers := []string{xName}
	for _, s := range series {
		if len(s.X) != n {
			return nil, fmt.Errorf("report: series %q has %d points, want %d", s.Name, len(s.X), n)
		}
		headers = append(headers, s.Name)
	}
	t := NewTable(title, headers...)
	for i := 0; i < n; i++ {
		cells := make([]interface{}, 0, len(series)+1)
		cells = append(cells, series[0].X[i])
		for _, s := range series {
			if s.X[i] != series[0].X[i] {
				return nil, fmt.Errorf("report: series %q x[%d]=%v differs from %v", s.Name, i, s.X[i], series[0].X[i])
			}
			cells = append(cells, s.Y[i])
		}
		t.AddRow(cells...)
	}
	return t, nil
}
