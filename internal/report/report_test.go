package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("Demo", "name", "value")
	tab.AddRow("alpha", 1.5)
	tab.AddRow("beta", 42)
	out := tab.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Errorf("missing title: %q", out)
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.5") {
		t.Errorf("missing row: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines, want 5:\n%s", len(lines), out)
	}
	if tab.NumRows() != 2 {
		t.Errorf("NumRows = %d", tab.NumRows())
	}
}

func TestTableAlignment(t *testing.T) {
	tab := NewTable("", "a", "bbbb")
	tab.AddRow("xxxxxxx", "y")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// header line and data line should start columns at the same offset
	hdr, data := lines[0], lines[2]
	if strings.Index(hdr, "bbbb") != strings.Index(data, "y") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{1, "1"},
		{1000000, "1000000"},
		{1.5, "1.5"},
		{0.000123, "0.000123"},
		{1.23e-7, "1.23e-07"},
		{3.14159e8, "3.14e+08"},
	}
	for _, c := range cases {
		if got := formatFloat(c.in); got != c.want {
			t.Errorf("formatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCSV(t *testing.T) {
	tab := NewTable("", "k", "v")
	tab.AddRow("plain", "1")
	tab.AddRow("with,comma", `with"quote`)
	csv := tab.CSV()
	want := "k,v\nplain,1\n\"with,comma\",\"with\"\"quote\"\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestBarChartLog(t *testing.T) {
	var b BarChart
	b.Title = "Endurance"
	b.Log10 = true
	b.Width = 40
	b.Add("flash", 1e5)
	b.Add("dram", 1e15)
	out := b.String()
	if !strings.Contains(out, "1.00e+05") || !strings.Contains(out, "1.00e+15") {
		t.Errorf("missing values: %q", out)
	}
	// dram bar must be longer than flash bar
	flashBar := strings.Count(strings.Split(out, "\n")[1], "#")
	dramBar := strings.Count(strings.Split(out, "\n")[2], "#")
	if dramBar <= flashBar {
		t.Errorf("log bars wrong: flash=%d dram=%d\n%s", flashBar, dramBar, out)
	}
}

func TestBarChartMarks(t *testing.T) {
	var b BarChart
	b.AddMark("prod", 10, '#')
	b.AddMark("potential", 100, '+')
	out := b.String()
	if !strings.Contains(out, "+") {
		t.Errorf("missing custom mark: %q", out)
	}
}

func TestBarChartZeroAndEmpty(t *testing.T) {
	var b BarChart
	if got := b.String(); got != "" {
		t.Errorf("empty chart rendered %q", got)
	}
	b.Add("zero", 0)
	if out := b.String(); !strings.Contains(out, "zero") {
		t.Errorf("zero bar missing: %q", out)
	}
}

func TestSeriesTable(t *testing.T) {
	s1 := &Series{Name: "hbm"}
	s2 := &Series{Name: "mrm"}
	for i := 1; i <= 3; i++ {
		s1.Add(float64(i), float64(i*10))
		s2.Add(float64(i), float64(i*20))
	}
	tab, err := SeriesTable("Sweep", "batch", s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	for _, want := range []string{"batch", "hbm", "mrm", "30", "60"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSeriesTableErrors(t *testing.T) {
	if _, err := SeriesTable("x", "x"); err == nil {
		t.Error("no series should error")
	}
	s1 := &Series{Name: "a"}
	s1.Add(1, 1)
	s2 := &Series{Name: "b"}
	if _, err := SeriesTable("x", "x", s1, s2); err == nil {
		t.Error("length mismatch should error")
	}
	s2.Add(2, 2)
	if _, err := SeriesTable("x", "x", s1, s2); err == nil {
		t.Error("x mismatch should error")
	}
}
