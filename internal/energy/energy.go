// Package energy accounts cluster-level energy and cost: per-component
// energy ledgers, device TCO (capex amortization + power), and the
// figure-of-merit the paper optimizes — tokens per joule and tokens per
// dollar.
package energy

import (
	"fmt"
	"sort"
	"time"

	"mrm/internal/memdev"
	"mrm/internal/units"
)

// Account is a named-component energy ledger.
type Account struct {
	components map[string]units.Energy
}

// NewAccount returns an empty ledger.
func NewAccount() *Account {
	return &Account{components: make(map[string]units.Energy)}
}

// Add accrues energy under a component name. Negative energy panics.
func (a *Account) Add(component string, e units.Energy) {
	if e < 0 {
		panic(fmt.Sprintf("energy: negative energy %v for %s", e, component))
	}
	a.components[component] += e
}

// Component returns one component's total.
func (a *Account) Component(name string) units.Energy { return a.components[name] }

// Total sums all components in sorted-name order, so the floating-point sum
// is the same in every run regardless of map iteration order.
func (a *Account) Total() units.Energy {
	var t units.Energy
	for _, n := range a.Components() {
		t += a.components[n]
	}
	return t
}

// Components returns names in sorted order.
func (a *Account) Components() []string {
	out := make([]string, 0, len(a.components))
	for n := range a.components {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TCOModel prices hardware and power.
type TCOModel struct {
	// PowerCostPerKWh is the electricity price (datacenter all-in, including
	// cooling PUE), default $0.12/kWh.
	PowerCostPerKWh units.Cost
	// AmortizationYears spreads capex, default 5 (the paper's service life).
	AmortizationYears float64
}

// DefaultTCO returns the standard pricing.
func DefaultTCO() TCOModel {
	return TCOModel{PowerCostPerKWh: 0.12, AmortizationYears: 5}
}

// EnergyCost prices an amount of energy.
func (m TCOModel) EnergyCost(e units.Energy) units.Cost {
	kwh := float64(e) / 3.6e6
	return units.Cost(kwh * float64(m.PowerCostPerKWh))
}

// Capex returns the purchase cost of a device.
func (m TCOModel) Capex(spec memdev.Spec) units.Cost {
	return units.Cost(spec.Capacity.GB() * float64(spec.CostPerGB))
}

// DeviceCost returns the cost of owning and running one device for the given
// duration: amortized capex plus the device's energy over the period.
func (m TCOModel) DeviceCost(spec memdev.Spec, avgPower units.Power, d time.Duration) units.Cost {
	amortized := m.Capex(spec) * units.Cost(d.Hours()/(m.AmortizationYears*365*24))
	return amortized + m.EnergyCost(avgPower.Over(d))
}

// CostPerTBPerMonth is the paper's storage-style TCO metric: owning one TB
// of this memory for a month, idle.
func (m TCOModel) CostPerTBPerMonth(spec memdev.Spec) units.Cost {
	month := 30 * 24 * time.Hour
	perDevice := m.DeviceCost(spec, spec.IdlePower(), month)
	tbs := float64(spec.Capacity) / 1e12
	return units.Cost(float64(perDevice) / tbs)
}

// Efficiency aggregates serving output against its inputs.
type Efficiency struct {
	Tokens float64
	Energy units.Energy
	Cost   units.Cost
}

// TokensPerJoule returns tokens generated per joule (0 when no energy).
func (e Efficiency) TokensPerJoule() float64 {
	if e.Energy <= 0 {
		return 0
	}
	return e.Tokens / float64(e.Energy)
}

// TokensPerDollar returns tokens generated per dollar (0 when no cost).
func (e Efficiency) TokensPerDollar() float64 {
	if e.Cost <= 0 {
		return 0
	}
	return e.Tokens / float64(e.Cost)
}

// Add merges another efficiency sample.
func (e Efficiency) Add(o Efficiency) Efficiency {
	return Efficiency{Tokens: e.Tokens + o.Tokens, Energy: e.Energy + o.Energy, Cost: e.Cost + o.Cost}
}
