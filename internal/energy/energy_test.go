package energy

import (
	"math"
	"testing"
	"time"

	"mrm/internal/cellphys"
	"mrm/internal/memdev"
	"mrm/internal/units"
)

func TestAccount(t *testing.T) {
	a := NewAccount()
	a.Add("read", 2)
	a.Add("read", 3)
	a.Add("refresh", 1)
	if a.Component("read") != 5 {
		t.Errorf("read = %v", a.Component("read"))
	}
	if a.Total() != 6 {
		t.Errorf("total = %v", a.Total())
	}
	got := a.Components()
	if len(got) != 2 || got[0] != "read" || got[1] != "refresh" {
		t.Errorf("components = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative energy should panic")
		}
	}()
	a.Add("x", -1)
}

func TestEnergyCost(t *testing.T) {
	m := DefaultTCO()
	// 1 kWh = 3.6e6 J at $0.12.
	got := m.EnergyCost(3.6e6)
	if math.Abs(float64(got)-0.12) > 1e-9 {
		t.Fatalf("1 kWh costs %v, want $0.12", got)
	}
}

func TestCapex(t *testing.T) {
	m := DefaultTCO()
	got := m.Capex(memdev.HBM3E)
	want := memdev.HBM3E.Capacity.GB() * 15
	if math.Abs(float64(got)-want) > 1e-6 {
		t.Fatalf("capex = %v, want %v", got, want)
	}
}

func TestDeviceCostGrowsWithTime(t *testing.T) {
	m := DefaultTCO()
	c1 := m.DeviceCost(memdev.HBM3E, 5, 24*time.Hour)
	c2 := m.DeviceCost(memdev.HBM3E, 5, 48*time.Hour)
	if c2 <= c1 {
		t.Fatal("cost should grow with time")
	}
}

// TCO/TB: HBM should be far more expensive than LPDDR and NAND — the paper's
// "HBM is underperforming on TCO/TB" claim.
func TestCostPerTBOrdering(t *testing.T) {
	m := DefaultTCO()
	hbm := m.CostPerTBPerMonth(memdev.HBM3E)
	lpddr := m.CostPerTBPerMonth(memdev.LPDDR5X)
	nand := m.CostPerTBPerMonth(memdev.NANDTLC)
	mrm := m.CostPerTBPerMonth(memdev.MRMSpec(cellphys.RRAM, 24*time.Hour))
	if !(hbm > lpddr && lpddr > nand) {
		t.Errorf("TCO ordering wrong: hbm=%v lpddr=%v nand=%v", hbm, lpddr, nand)
	}
	if mrm >= hbm {
		t.Errorf("MRM TCO/TB %v should beat HBM %v", mrm, hbm)
	}
}

func TestEfficiency(t *testing.T) {
	e := Efficiency{Tokens: 100, Energy: 50, Cost: 2}
	if e.TokensPerJoule() != 2 {
		t.Errorf("tokens/J = %v", e.TokensPerJoule())
	}
	if e.TokensPerDollar() != 50 {
		t.Errorf("tokens/$ = %v", e.TokensPerDollar())
	}
	sum := e.Add(Efficiency{Tokens: 100, Energy: 50, Cost: 2})
	if sum.Tokens != 200 || sum.Energy != 100 || sum.Cost != 4 {
		t.Errorf("Add = %+v", sum)
	}
	zero := Efficiency{}
	if zero.TokensPerJoule() != 0 || zero.TokensPerDollar() != 0 {
		t.Error("zero efficiency should not divide by zero")
	}
}

func TestIdleEnergyCostHBMvsMRM(t *testing.T) {
	m := DefaultTCO()
	d := 30 * 24 * time.Hour
	hbmIdle := m.EnergyCost(memdev.HBM3E.IdlePower().Over(d))
	mrmIdle := m.EnergyCost(memdev.MRMSpec(cellphys.RRAM, 24*time.Hour).IdlePower().Over(d))
	if mrmIdle >= hbmIdle {
		t.Errorf("MRM idle month %v should undercut HBM %v", mrmIdle, hbmIdle)
	}
	_ = units.GiB
}
