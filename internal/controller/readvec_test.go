package controller

import (
	"testing"
	"time"

	"mrm/internal/memdev"
	"mrm/internal/units"
)

func newTwinZoned(t *testing.T) (*Zoned, *Zoned) {
	t.Helper()
	mk := func() *Zoned {
		spec := memdev.HBM3E
		spec.Capacity = 64 * units.MiB
		dev, err := memdev.NewDevice(spec)
		if err != nil {
			t.Fatal(err)
		}
		z, err := NewZoned(dev, 4*units.MiB)
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < 4; id++ {
			if err := z.Open(id, time.Hour); err != nil {
				t.Fatal(err)
			}
			if _, err := z.Append(id, 2*units.MiB); err != nil {
				t.Fatal(err)
			}
		}
		return z
	}
	return mk(), mk()
}

// TestReadVecMatchesSequentialRead checks the strict equivalence contract:
// the vectored path must produce the same per-request costs, the same
// error at the same index, and the same device-side accounting as
// call-by-call Reads that stop at the first failure — including batches
// with an invalid request in the middle.
func TestReadVecMatchesSequentialRead(t *testing.T) {
	cases := [][]ReadReq{
		{{Zone: 0, Off: 0, Size: units.MiB}},
		{{Zone: 0, Off: 0, Size: units.MiB}, {Zone: 1, Off: units.MiB, Size: units.MiB}, {Zone: 3, Off: 0, Size: 2 * units.MiB}},
		// Request 1 reads beyond the write pointer: requests 0 must still be
		// charged, request 2 must not be.
		{{Zone: 0, Off: 0, Size: units.MiB}, {Zone: 1, Off: 0, Size: 3 * units.MiB}, {Zone: 2, Off: 0, Size: units.MiB}},
		// Request 0 hits an empty zone: nothing is charged.
		{{Zone: 5, Off: 0, Size: units.MiB}, {Zone: 0, Off: 0, Size: units.MiB}},
		// Out-of-range zone id mid-batch.
		{{Zone: 2, Off: 0, Size: units.MiB}, {Zone: 99, Off: 0, Size: units.MiB}},
	}
	for ci, reqs := range cases {
		seq, vec := newTwinZoned(t)
		seqResults := make([]memdev.Result, len(reqs))
		seqDone, seqErr := len(reqs), error(nil)
		for i, r := range reqs {
			res, err := seq.Read(r.Zone, r.Off, r.Size)
			seqResults[i] = res
			if err != nil {
				seqDone, seqErr = i, err
				break
			}
		}
		vecResults := make([]memdev.Result, len(reqs))
		vecDone, vecErr := vec.ReadVec(reqs, vecResults)
		if vecDone != seqDone {
			t.Fatalf("case %d: done %d != sequential %d", ci, vecDone, seqDone)
		}
		if (vecErr == nil) != (seqErr == nil) ||
			(vecErr != nil && vecErr.Error() != seqErr.Error()) {
			t.Fatalf("case %d: err %v != sequential %v", ci, vecErr, seqErr)
		}
		for i := 0; i < seqDone; i++ {
			if vecResults[i] != seqResults[i] {
				t.Fatalf("case %d req %d: %+v != %+v", ci, i, vecResults[i], seqResults[i])
			}
		}
		if ss, sv := seq.Device().Stats(), vec.Device().Stats(); ss != sv {
			t.Fatalf("case %d: device stats diverged: %+v != %+v", ci, ss, sv)
		}
	}
}

func TestReadVecShortResults(t *testing.T) {
	z, _ := newTwinZoned(t)
	if _, err := z.ReadVec(make([]ReadReq, 2), make([]memdev.Result, 1)); err == nil {
		t.Fatal("want error for short results slice")
	}
}
