// Package controller models memory controllers at two levels of complexity,
// mirroring the paper's §4 argument:
//
//   - Sched: a conventional DRAM/HBM-style controller with channels, banks,
//     queueing, and mandatory periodic refresh — the machinery MRM gets to
//     delete.
//   - Zoned: the lightweight block-level MRM controller the paper proposes,
//     modeled on zoned storage interfaces (ZNS [60]): append-only zones with
//     per-zone retention programming (the DCM hardware hook). All policy
//     (refresh, wear-leveling, GC) lives in software above this interface.
package controller

import (
	"fmt"
	"sort"
	"time"

	"mrm/internal/memdev"
	"mrm/internal/units"
)

// Request is one memory command presented to a scheduler.
type Request struct {
	Kind   memdev.AccessKind
	Addr   units.Bytes
	Size   units.Bytes
	Arrive time.Duration // submission time
}

// Completion reports when and how a request finished.
type Completion struct {
	Start  time.Duration // when service began (>= Arrive)
	Finish time.Duration
}

// Latency is the request's total latency including queueing.
func (c Completion) Latency(r Request) time.Duration { return c.Finish - r.Arrive }

// SchedConfig configures a conventional bank/channel controller.
type SchedConfig struct {
	Spec            memdev.Spec
	Channels        int
	BanksPerChannel int
	// RefreshDuration is how long one per-bank refresh blocks the bank
	// (tRFC-class, ~350 ns for modern DRAM). Refreshes recur every
	// Spec.RefreshInterval / RefreshSlices to spread the array refresh.
	RefreshDuration time.Duration
	RefreshSlices   int
}

// DefaultSchedConfig returns a typical configuration for the spec: 8 channels
// x 4 banks for HBM-class parts, refresh spread over 8192 slices like DRAM.
func DefaultSchedConfig(spec memdev.Spec) SchedConfig {
	return SchedConfig{
		Spec:            spec,
		Channels:        8,
		BanksPerChannel: 4,
		RefreshDuration: 350 * time.Nanosecond,
		RefreshSlices:   8192,
	}
}

// Sched is a simplified FCFS-per-bank memory scheduler. Requests are striped
// across channels by address; each bank serves one request at a time; the
// channel bus serializes data transfer. Refresh periodically steals bank
// time on refreshing devices. Sched is not safe for concurrent use.
type Sched struct {
	cfg       SchedConfig
	bankFree  [][]time.Duration // [channel][bank] next-free time
	busFree   []time.Duration   // [channel]
	stripe    units.Bytes
	bankBW    units.Bandwidth
	refresh   time.Duration // per-bank refresh period (0 = none)
	completed int
	busyUntil time.Duration
	refTime   time.Duration // cumulative time banks spent refreshing
	svcTime   time.Duration // cumulative bank service time (incl. refresh)
}

// NewSched builds a scheduler. The channel stripe is 256 B (HBM pseudo-
// channel granularity rounded to a power of two).
func NewSched(cfg SchedConfig) (*Sched, error) {
	if cfg.Channels <= 0 || cfg.BanksPerChannel <= 0 {
		return nil, fmt.Errorf("controller: need positive channels/banks")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	s := &Sched{
		cfg:      cfg,
		bankFree: make([][]time.Duration, cfg.Channels),
		busFree:  make([]time.Duration, cfg.Channels),
		stripe:   256,
		bankBW:   cfg.Spec.ReadBW / units.Bandwidth(cfg.Channels*cfg.BanksPerChannel),
	}
	for i := range s.bankFree {
		s.bankFree[i] = make([]time.Duration, cfg.BanksPerChannel)
	}
	if cfg.Spec.RefreshInterval > 0 && cfg.RefreshSlices > 0 {
		s.refresh = cfg.Spec.RefreshInterval / time.Duration(cfg.RefreshSlices)
	}
	return s, nil
}

// Submit schedules one request and returns its completion. Requests should
// be submitted in non-decreasing Arrive order.
func (s *Sched) Submit(r Request) (Completion, error) {
	if r.Size == 0 {
		return Completion{}, fmt.Errorf("controller: zero-size request")
	}
	ch := int(r.Addr/s.stripe) % s.cfg.Channels
	bank := int(r.Addr/(s.stripe*units.Bytes(s.cfg.Channels))) % s.cfg.BanksPerChannel

	start := max(r.Arrive, s.bankFree[ch][bank], s.busFree[ch])
	var lat time.Duration
	var bw units.Bandwidth
	if r.Kind == memdev.Read {
		lat = s.cfg.Spec.ReadLatency
		bw = s.bankBW
	} else {
		lat = s.cfg.Spec.WriteLatency
		bw = s.bankBW * units.Bandwidth(float64(s.cfg.Spec.WriteBW)/float64(s.cfg.Spec.ReadBW))
	}
	service := lat + bw.Time(r.Size)
	// Refresh tax: every tREFI window (RefreshInterval / RefreshSlices)
	// steals one RefreshDuration (tRFC) of bank time. Refreshes overlapping
	// idle banks are free; only the share proportional to busy time delays
	// requests — the standard utilization derating.
	if s.refresh > 0 {
		steal := time.Duration(float64(service) *
			float64(s.cfg.RefreshDuration) / float64(s.refresh))
		service += steal
		s.refTime += steal
	}
	finish := start + service
	s.svcTime += service
	s.bankFree[ch][bank] = finish
	// The shared bus is busy only for the transfer portion.
	s.busFree[ch] = start + (s.cfg.Spec.ReadBW / units.Bandwidth(s.cfg.Channels)).Time(r.Size)
	s.completed++
	if finish > s.busyUntil {
		s.busyUntil = finish
	}
	return Completion{Start: start, Finish: finish}, nil
}

// Completed returns the number of requests served.
func (s *Sched) Completed() int { return s.completed }

// BusyUntil returns the time the last scheduled request finishes.
func (s *Sched) BusyUntil() time.Duration { return s.busyUntil }

// RefreshTime returns cumulative bank time stolen by refresh.
func (s *Sched) RefreshTime() time.Duration { return s.refTime }

// BankBusyTime returns cumulative bank service time across all banks
// (refresh included); RefreshTime/BankBusyTime is the refresh tax.
func (s *Sched) BankBusyTime() time.Duration { return s.svcTime }

// ZoneState is the lifecycle state of an MRM zone.
type ZoneState int

// Zone states.
const (
	ZoneEmpty ZoneState = iota
	ZoneOpen
	ZoneFull
	ZoneExpired // retention deadline passed; contents unreliable
)

// String names the state.
func (z ZoneState) String() string {
	switch z {
	case ZoneEmpty:
		return "empty"
	case ZoneOpen:
		return "open"
	case ZoneFull:
		return "full"
	case ZoneExpired:
		return "expired"
	default:
		return fmt.Sprintf("ZoneState(%d)", int(z))
	}
}

// Zone is one append-only region of an MRM device.
type Zone struct {
	ID        int
	Start     units.Bytes
	Size      units.Bytes
	WritePtr  units.Bytes // offset of next append within the zone
	State     ZoneState
	Retention time.Duration // retention programmed for this zone's writes
	WrittenAt time.Duration // device time of the first append
	Resets    int           // wear proxy: zone reset count
}

// Remaining returns the unwritten capacity of the zone.
func (z *Zone) Remaining() units.Bytes { return z.Size - z.WritePtr }

// Zoned is the lightweight MRM block controller: fixed-size append-only
// zones, explicit reset, per-zone retention programming. It owns a
// memdev.Device for cost accounting. Zoned is not safe for concurrent use;
// the control plane above serializes access.
type Zoned struct {
	dev      *memdev.Device
	zoneSize units.Bytes
	zones    []Zone
	spanBuf  []memdev.Span // scratch for ReadVec/AppendVec, reused across calls
	undoBuf  []appendUndo  // scratch for AppendVec rollback, reused across calls
}

// NewZoned carves the device into zones of zoneSize bytes.
func NewZoned(dev *memdev.Device, zoneSize units.Bytes) (*Zoned, error) {
	if zoneSize == 0 {
		return nil, fmt.Errorf("controller: zero zone size")
	}
	cap := dev.Spec().Capacity
	n := int(cap / zoneSize)
	if n == 0 {
		return nil, fmt.Errorf("controller: zone size %v exceeds capacity %v", zoneSize, cap)
	}
	z := &Zoned{dev: dev, zoneSize: zoneSize, zones: make([]Zone, n)}
	for i := range z.zones {
		z.zones[i] = Zone{ID: i, Start: units.Bytes(i) * zoneSize, Size: zoneSize}
	}
	return z, nil
}

// NumZones returns the zone count.
func (z *Zoned) NumZones() int { return len(z.zones) }

// Zone returns a snapshot of zone id.
func (z *Zoned) Zone(id int) (Zone, error) {
	if id < 0 || id >= len(z.zones) {
		return Zone{}, fmt.Errorf("controller: zone %d out of range", id)
	}
	return z.zones[id], nil
}

// Device exposes the underlying device (for energy/wear accounting).
func (z *Zoned) Device() *memdev.Device { return z.dev }

// Open transitions an empty zone to open with the given retention class.
// Retention is programmed per zone: this is the hardware half of DCM.
func (z *Zoned) Open(id int, retention time.Duration) error {
	zn, err := z.zoneRef(id)
	if err != nil {
		return err
	}
	if zn.State != ZoneEmpty {
		return fmt.Errorf("controller: zone %d is %v, not empty", id, zn.State)
	}
	zn.State = ZoneOpen
	zn.Retention = retention
	return nil
}

// Append writes size bytes at the zone's write pointer and advances it.
// The zone must be open and have room.
func (z *Zoned) Append(id int, size units.Bytes) (memdev.Result, error) {
	zn, err := z.zoneRef(id)
	if err != nil {
		return memdev.Result{}, err
	}
	if zn.State != ZoneOpen {
		return memdev.Result{}, fmt.Errorf("controller: append to zone %d in state %v", id, zn.State)
	}
	if size == 0 || size > zn.Remaining() {
		return memdev.Result{}, fmt.Errorf("controller: append %v exceeds zone %d remaining %v", size, id, zn.Remaining())
	}
	if zn.WritePtr == 0 {
		zn.WrittenAt = z.dev.Now()
	}
	res, err := z.dev.WriteAt(zn.Start+zn.WritePtr, size)
	if err != nil {
		return memdev.Result{}, err
	}
	zn.WritePtr += size
	if zn.Remaining() == 0 {
		zn.State = ZoneFull
	}
	return res, nil
}

// Read reads size bytes at offset within zone id. Reading an expired zone
// is an error — the control plane must have refreshed or dropped it.
func (z *Zoned) Read(id int, off, size units.Bytes) (memdev.Result, error) {
	sp, err := z.readSpan(id, off, size)
	if err != nil {
		return memdev.Result{}, err
	}
	return z.dev.ReadAt(sp.Addr, sp.Size)
}

// readSpan validates one zone read and maps it to a device span.
func (z *Zoned) readSpan(id int, off, size units.Bytes) (memdev.Span, error) {
	zn, err := z.zoneRef(id)
	if err != nil {
		return memdev.Span{}, err
	}
	if zn.State == ZoneEmpty {
		return memdev.Span{}, fmt.Errorf("controller: read from empty zone %d", id)
	}
	if zn.State == ZoneExpired {
		return memdev.Span{}, fmt.Errorf("controller: read from expired zone %d", id)
	}
	if off+size > zn.WritePtr {
		return memdev.Span{}, fmt.Errorf("controller: read [%v,%v) beyond write pointer %v", off, off+size, zn.WritePtr)
	}
	return memdev.Span{Addr: zn.Start + off, Size: size}, nil
}

// ReadReq is one zone read within a ReadVec batch.
type ReadReq struct {
	Zone      int
	Off, Size units.Bytes
}

// ReadVec performs the reads described by reqs exactly as if Read were called
// once per request in order — same validation, same per-read device
// accounting and fault events, same error precedence — but coalesces the
// device accesses into a single batched call (one lock acquisition instead
// of one per request). results[i] (len(results) must be >= len(reqs))
// receives request i's cost. It returns the index of the first request that
// failed plus its error, or (len(reqs), nil) on full success. A validation
// failure at request i is reported only after the device reads for requests
// [0, i) have been issued — and a device error among those takes precedence —
// matching a caller that issues Read calls one at a time and stops at the
// first error.
func (z *Zoned) ReadVec(reqs []ReadReq, results []memdev.Result) (int, error) {
	if len(results) < len(reqs) {
		return 0, fmt.Errorf("controller: ReadVec: %d results for %d requests", len(results), len(reqs))
	}
	z.spanBuf = z.spanBuf[:0]
	for i, r := range reqs {
		sp, err := z.readSpan(r.Zone, r.Off, r.Size)
		if err != nil {
			// A sequential caller has already issued the device reads for the
			// earlier, valid requests before hitting this one.
			done, derr := z.dev.ReadSpans(z.spanBuf, results)
			if derr != nil {
				return done, derr
			}
			results[i] = memdev.Result{}
			return i, err
		}
		z.spanBuf = append(z.spanBuf, sp)
	}
	return z.dev.ReadSpans(z.spanBuf, results)
}

// AppendReq is one zone append within an AppendVec batch.
type AppendReq struct {
	Zone int
	Size units.Bytes
}

// appendUndo records the zone mutations AppendVec applied for one request so
// a mid-batch device failure can roll back exactly to what a sequential
// caller would have left behind.
type appendUndo struct {
	zone          *Zone
	size          units.Bytes
	prevState     ZoneState
	prevWrittenAt time.Duration
	stamped       bool // this request stamped WrittenAt (first append to the zone)
}

// AppendVec performs the appends described by reqs exactly as if Append were
// called once per request in order — same validation (against the write
// pointer as advanced by the earlier requests in the batch), same per-write
// device accounting and fault events, same error precedence — but coalesces
// the device writes into a single batched call. results[i] (len(results)
// must be >= len(reqs)) receives request i's cost. It returns the index of
// the first request that failed plus its error, or (len(reqs), nil) on full
// success. A validation failure at request i is reported only after the
// device writes for requests [0, i) have been issued — and a device error
// among those takes precedence. A device write fault leaves its zone exactly
// as a failed sequential Append would: write pointer and state unchanged,
// but the first-append WrittenAt stamp (applied before the device write on
// the sequential path) persists.
func (z *Zoned) AppendVec(reqs []AppendReq, results []memdev.Result) (int, error) {
	if len(results) < len(reqs) {
		return 0, fmt.Errorf("controller: AppendVec: %d results for %d requests", len(results), len(reqs))
	}
	z.spanBuf = z.spanBuf[:0]
	z.undoBuf = z.undoBuf[:0]
	for i, r := range reqs {
		zn, err := z.zoneRef(r.Zone)
		if err == nil {
			if zn.State != ZoneOpen {
				err = fmt.Errorf("controller: append to zone %d in state %v", r.Zone, zn.State)
			} else if r.Size == 0 || r.Size > zn.Remaining() {
				err = fmt.Errorf("controller: append %v exceeds zone %d remaining %v", r.Size, r.Zone, zn.Remaining())
			}
		}
		if err != nil {
			// A sequential caller has already issued (and committed) the device
			// writes for the earlier, valid requests before hitting this one.
			done, derr := z.flushAppends(results)
			if derr != nil {
				return done, derr
			}
			results[i] = memdev.Result{}
			return i, err
		}
		u := appendUndo{zone: zn, size: r.Size, prevState: zn.State, prevWrittenAt: zn.WrittenAt}
		if zn.WritePtr == 0 {
			zn.WrittenAt = z.dev.Now()
			u.stamped = true
		}
		z.spanBuf = append(z.spanBuf, memdev.Span{Addr: zn.Start + zn.WritePtr, Size: r.Size})
		zn.WritePtr += r.Size
		if zn.Remaining() == 0 {
			zn.State = ZoneFull
		}
		z.undoBuf = append(z.undoBuf, u)
	}
	return z.flushAppends(results)
}

// flushAppends issues the accumulated spans in one device call and, on a
// device failure, rolls the eagerly-applied zone mutations back to the exact
// state a sequential caller stopping at that write would have left.
func (z *Zoned) flushAppends(results []memdev.Result) (int, error) {
	done, err := z.dev.WriteSpans(z.spanBuf, results)
	if err != nil {
		for k := len(z.undoBuf) - 1; k >= done; k-- {
			u := &z.undoBuf[k]
			u.zone.WritePtr -= u.size
			u.zone.State = u.prevState
			// The failing request itself keeps its WrittenAt stamp — the
			// sequential path stamps before the device write; requests after it
			// never ran at all.
			if u.stamped && k > done {
				u.zone.WrittenAt = u.prevWrittenAt
			}
		}
	}
	return done, err
}

// CancelOpen reverts an Open on a zone that was never appended to, returning
// it to empty without counting a reset (nothing was written, so no wear).
// It is the planning counterpart to Open: batched writers open zones ahead
// of issuing the device writes and must release the unused ones when a
// mid-batch failure cuts the batch short.
func (z *Zoned) CancelOpen(id int) error {
	zn, err := z.zoneRef(id)
	if err != nil {
		return err
	}
	if zn.State != ZoneOpen || zn.WritePtr != 0 {
		return fmt.Errorf("controller: cannot cancel open of zone %d (state %v, write pointer %v)", id, zn.State, zn.WritePtr)
	}
	zn.State = ZoneEmpty
	zn.Retention = 0
	return nil
}

// Reset returns a zone to empty, incrementing its reset (wear) counter.
func (z *Zoned) Reset(id int) error {
	zn, err := z.zoneRef(id)
	if err != nil {
		return err
	}
	if zn.State == ZoneEmpty {
		return fmt.Errorf("controller: reset of already-empty zone %d", id)
	}
	zn.State = ZoneEmpty
	zn.WritePtr = 0
	zn.Retention = 0
	zn.Resets++
	return nil
}

// ExpireDue marks zones whose retention deadline has passed as expired and
// returns their ids. The control plane calls this after advancing time.
func (z *Zoned) ExpireDue() []int {
	now := z.dev.Now()
	var expired []int
	for i := range z.zones {
		zn := &z.zones[i]
		if (zn.State == ZoneOpen || zn.State == ZoneFull) && zn.WritePtr > 0 &&
			zn.Retention > 0 && now-zn.WrittenAt >= zn.Retention {
			zn.State = ZoneExpired
			expired = append(expired, i)
		}
	}
	return expired
}

// LeastWornEmpty returns the id of the empty zone with the fewest resets,
// or -1 if no zone is empty. This is the software wear-leveling primitive.
func (z *Zoned) LeastWornEmpty() int {
	best, bestResets := -1, int(^uint(0)>>1)
	for i := range z.zones {
		if z.zones[i].State == ZoneEmpty && z.zones[i].Resets < bestResets {
			best, bestResets = i, z.zones[i].Resets
		}
	}
	return best
}

// WearSpread returns max and mean zone reset counts; a host wear-leveler
// tries to keep max close to mean.
func (z *Zoned) WearSpread() (maxResets int, meanResets float64) {
	sum := 0
	for i := range z.zones {
		r := z.zones[i].Resets
		sum += r
		if r > maxResets {
			maxResets = r
		}
	}
	return maxResets, float64(sum) / float64(len(z.zones))
}

// ZonesInState returns ids of zones in the given state, sorted.
func (z *Zoned) ZonesInState(st ZoneState) []int {
	var ids []int
	for i := range z.zones {
		if z.zones[i].State == st {
			ids = append(ids, i)
		}
	}
	sort.Ints(ids)
	return ids
}

func (z *Zoned) zoneRef(id int) (*Zone, error) {
	if id < 0 || id >= len(z.zones) {
		return nil, fmt.Errorf("controller: zone %d out of range", id)
	}
	return &z.zones[id], nil
}
