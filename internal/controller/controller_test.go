package controller

import (
	"strings"
	"testing"
	"time"

	"mrm/internal/cellphys"
	"mrm/internal/memdev"
	"mrm/internal/units"
)

func newSched(t *testing.T, spec memdev.Spec) *Sched {
	t.Helper()
	s, err := NewSched(DefaultSchedConfig(spec))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchedValidation(t *testing.T) {
	cfg := DefaultSchedConfig(memdev.HBM3E)
	cfg.Channels = 0
	if _, err := NewSched(cfg); err == nil {
		t.Fatal("zero channels should error")
	}
	bad := DefaultSchedConfig(memdev.Spec{})
	if _, err := NewSched(bad); err == nil {
		t.Fatal("invalid spec should error")
	}
}

func TestSchedSingleRequest(t *testing.T) {
	s := newSched(t, memdev.HBM3E)
	c, err := s.Submit(Request{Kind: memdev.Read, Addr: 0, Size: 4 * units.KiB})
	if err != nil {
		t.Fatal(err)
	}
	if c.Start != 0 {
		t.Errorf("start = %v, want 0", c.Start)
	}
	if c.Finish <= memdev.HBM3E.ReadLatency {
		t.Errorf("finish %v should exceed read latency", c.Finish)
	}
	if s.Completed() != 1 {
		t.Errorf("Completed = %d", s.Completed())
	}
}

func TestSchedZeroSizeRejected(t *testing.T) {
	s := newSched(t, memdev.HBM3E)
	if _, err := s.Submit(Request{Kind: memdev.Read}); err == nil {
		t.Fatal("zero size should error")
	}
}

func TestSchedSameBankSerializes(t *testing.T) {
	s := newSched(t, memdev.HBM3E)
	r := Request{Kind: memdev.Read, Addr: 0, Size: units.MiB}
	c1, _ := s.Submit(r)
	c2, _ := s.Submit(r) // same address → same bank
	if c2.Start < c1.Finish {
		t.Errorf("same-bank requests overlapped: c1 ends %v, c2 starts %v", c1.Finish, c2.Start)
	}
}

func TestSchedDifferentChannelsOverlap(t *testing.T) {
	s := newSched(t, memdev.HBM3E)
	c1, _ := s.Submit(Request{Kind: memdev.Read, Addr: 0, Size: units.MiB})
	c2, _ := s.Submit(Request{Kind: memdev.Read, Addr: 256, Size: units.MiB}) // next channel
	if c2.Start >= c1.Finish {
		t.Errorf("different channels should overlap: c1 ends %v, c2 starts %v", c1.Finish, c2.Start)
	}
}

func TestSchedRefreshSteals(t *testing.T) {
	s := newSched(t, memdev.HBM3E)
	r := Request{Kind: memdev.Read, Addr: 0, Size: units.MiB, Arrive: 0}
	c1, _ := s.Submit(r)
	if s.RefreshTime() <= 0 {
		t.Error("refresh should tax bank busy time on DRAM")
	}
	// The tax is proportional: tRFC per tREFI window, ~9% for the default
	// configuration (350ns per 3.9µs slice).
	frac := s.RefreshTime().Seconds() / c1.Finish.Seconds()
	if frac < 0.01 || frac > 0.2 {
		t.Errorf("refresh share = %v, want a high-single-digit percentage", frac)
	}
}

func TestSchedNoRefreshOnMRM(t *testing.T) {
	spec := memdev.MRMSpec(cellphys.RRAM, 24*time.Hour)
	s := newSched(t, spec)
	r := Request{Kind: memdev.Read, Addr: 0, Size: units.KiB}
	_, _ = s.Submit(r)
	r.Arrive = time.Second
	_, _ = s.Submit(r)
	if s.RefreshTime() != 0 {
		t.Error("MRM must not refresh")
	}
}

func TestSchedWriteSlower(t *testing.T) {
	spec := memdev.MRMSpec(cellphys.RRAM, 24*time.Hour)
	s := newSched(t, spec)
	cr, _ := s.Submit(Request{Kind: memdev.Read, Addr: 0, Size: units.MiB})
	s2 := newSched(t, spec)
	cw, _ := s2.Submit(Request{Kind: memdev.Write, Addr: 0, Size: units.MiB})
	if cw.Finish <= cr.Finish {
		t.Errorf("MRM write (%v) should be slower than read (%v)", cw.Finish, cr.Finish)
	}
}

func TestZoneStateString(t *testing.T) {
	for st, want := range map[ZoneState]string{
		ZoneEmpty: "empty", ZoneOpen: "open", ZoneFull: "full", ZoneExpired: "expired",
	} {
		if st.String() != want {
			t.Errorf("%v != %s", st, want)
		}
	}
	if !strings.Contains(ZoneState(9).String(), "9") {
		t.Error("unknown state should include number")
	}
}

func newZoned(t *testing.T) *Zoned {
	t.Helper()
	dev, err := memdev.NewDevice(memdev.MRMSpec(cellphys.RRAM, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	z, err := NewZoned(dev, 64*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	return z
}

func TestZonedSetup(t *testing.T) {
	z := newZoned(t)
	want := int(z.Device().Spec().Capacity / (64 * units.MiB))
	if z.NumZones() != want {
		t.Fatalf("NumZones = %d, want %d", z.NumZones(), want)
	}
	if _, err := NewZoned(z.Device(), 0); err == nil {
		t.Error("zero zone size should error")
	}
	if _, err := NewZoned(z.Device(), 100*units.TiB); err == nil {
		t.Error("oversized zone should error")
	}
}

func TestZonedLifecycle(t *testing.T) {
	z := newZoned(t)
	if err := z.Open(0, time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := z.Open(0, time.Hour); err == nil {
		t.Fatal("double open should error")
	}
	if _, err := z.Append(0, units.MiB); err != nil {
		t.Fatal(err)
	}
	zn, _ := z.Zone(0)
	if zn.State != ZoneOpen || zn.WritePtr != units.MiB {
		t.Fatalf("zone = %+v", zn)
	}
	if _, err := z.Read(0, 0, units.MiB); err != nil {
		t.Fatal(err)
	}
	if _, err := z.Read(0, units.MiB/2, units.MiB); err == nil {
		t.Fatal("read past write pointer should error")
	}
	if err := z.Reset(0); err != nil {
		t.Fatal(err)
	}
	zn, _ = z.Zone(0)
	if zn.State != ZoneEmpty || zn.Resets != 1 || zn.WritePtr != 0 {
		t.Fatalf("after reset: %+v", zn)
	}
	if err := z.Reset(0); err == nil {
		t.Fatal("reset of empty zone should error")
	}
}

func TestZonedAppendFills(t *testing.T) {
	z := newZoned(t)
	_ = z.Open(1, time.Hour)
	zn, _ := z.Zone(1)
	if _, err := z.Append(1, zn.Size); err != nil {
		t.Fatal(err)
	}
	zn, _ = z.Zone(1)
	if zn.State != ZoneFull {
		t.Fatalf("state = %v, want full", zn.State)
	}
	if _, err := z.Append(1, 1); err == nil {
		t.Fatal("append to full zone should error")
	}
}

func TestZonedAppendBounds(t *testing.T) {
	z := newZoned(t)
	_ = z.Open(0, time.Hour)
	if _, err := z.Append(0, 0); err == nil {
		t.Fatal("zero append should error")
	}
	if _, err := z.Append(0, 65*units.MiB); err == nil {
		t.Fatal("oversized append should error")
	}
	if _, err := z.Append(5, units.KiB); err == nil {
		t.Fatal("append to unopened zone should error")
	}
	if _, err := z.Append(-1, 1); err == nil {
		t.Fatal("negative zone should error")
	}
	if _, err := z.Zone(1 << 20); err == nil {
		t.Fatal("zone id out of range should error")
	}
}

func TestZonedExpiry(t *testing.T) {
	z := newZoned(t)
	_ = z.Open(0, time.Hour)
	_, _ = z.Append(0, units.MiB)
	_ = z.Open(1, 10*time.Hour)
	_, _ = z.Append(1, units.MiB)

	if err := z.Device().Advance(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	expired := z.ExpireDue()
	if len(expired) != 1 || expired[0] != 0 {
		t.Fatalf("expired = %v, want [0]", expired)
	}
	if _, err := z.Read(0, 0, units.KiB); err == nil {
		t.Fatal("read of expired zone should error")
	}
	if _, err := z.Read(1, 0, units.KiB); err != nil {
		t.Fatalf("zone 1 should still be readable: %v", err)
	}
	// Expired zones can be reset and reused.
	if err := z.Reset(0); err != nil {
		t.Fatal(err)
	}
}

func TestZonedWearLeveling(t *testing.T) {
	z := newZoned(t)
	// Wear zone 0 with 3 resets.
	for i := 0; i < 3; i++ {
		_ = z.Open(0, time.Hour)
		_, _ = z.Append(0, units.KiB)
		_ = z.Reset(0)
	}
	if got := z.LeastWornEmpty(); got == 0 {
		t.Fatal("least-worn pick should avoid the worn zone")
	}
	maxR, meanR := z.WearSpread()
	if maxR != 3 {
		t.Fatalf("max resets = %d", maxR)
	}
	if meanR <= 0 || meanR >= 3 {
		t.Fatalf("mean resets = %v", meanR)
	}
}

func TestZonesInState(t *testing.T) {
	z := newZoned(t)
	_ = z.Open(2, time.Hour)
	_ = z.Open(7, time.Hour)
	got := z.ZonesInState(ZoneOpen)
	if len(got) != 2 || got[0] != 2 || got[1] != 7 {
		t.Fatalf("open zones = %v", got)
	}
}

func TestLeastWornEmptyNoneLeft(t *testing.T) {
	dev, _ := memdev.NewDevice(memdev.MRMSpec(cellphys.RRAM, time.Hour))
	z, err := NewZoned(dev, dev.Spec().Capacity) // a single zone
	if err != nil {
		t.Fatal(err)
	}
	_ = z.Open(0, time.Hour)
	if z.LeastWornEmpty() != -1 {
		t.Fatal("no empty zones should yield -1")
	}
}
