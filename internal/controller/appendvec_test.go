package controller

import (
	"math/rand"
	"testing"
	"time"

	"mrm/internal/memdev"
	"mrm/internal/units"
)

// newTwinZonedForAppend builds two identical zoned controllers with a mix of
// open, partially-filled, empty, and full zones, optionally fault-armed.
func newTwinZonedForAppend(t *testing.T, faults memdev.FaultConfig) (*Zoned, *Zoned) {
	t.Helper()
	mk := func() *Zoned {
		spec := memdev.HBM3E
		spec.Capacity = 64 * units.MiB
		dev, err := memdev.NewDevice(spec)
		if err != nil {
			t.Fatal(err)
		}
		z, err := NewZoned(dev, 4*units.MiB)
		if err != nil {
			t.Fatal(err)
		}
		// Zones 0-3 open; 1 partially filled; 2 nearly full; 4+ left empty.
		for id := 0; id < 4; id++ {
			if err := z.Open(id, time.Hour); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := z.Append(1, units.MiB); err != nil {
			t.Fatal(err)
		}
		if _, err := z.Append(2, 4*units.MiB-512); err != nil {
			t.Fatal(err)
		}
		dev.SetFaults(faults)
		return z
	}
	return mk(), mk()
}

// compareAppendTwins runs one batch through both controllers (one serially,
// one via AppendVec) and requires identical results, errors, zone state, and
// device accounting.
func compareAppendTwins(t *testing.T, ci int, seq, vec *Zoned, reqs []AppendReq) {
	t.Helper()
	seqResults := make([]memdev.Result, len(reqs))
	seqDone, seqErr := len(reqs), error(nil)
	for i, r := range reqs {
		res, err := seq.Append(r.Zone, r.Size)
		seqResults[i] = res
		if err != nil {
			seqDone, seqErr = i, err
			break
		}
	}
	vecResults := make([]memdev.Result, len(reqs))
	vecDone, vecErr := vec.AppendVec(reqs, vecResults)
	if vecDone != seqDone {
		t.Fatalf("case %d: done %d != sequential %d (err %v vs %v)", ci, vecDone, seqDone, vecErr, seqErr)
	}
	if (vecErr == nil) != (seqErr == nil) ||
		(vecErr != nil && vecErr.Error() != seqErr.Error()) {
		t.Fatalf("case %d: err %q != sequential %q", ci, vecErr, seqErr)
	}
	for i := 0; i < seqDone; i++ {
		if vecResults[i] != seqResults[i] {
			t.Fatalf("case %d req %d: %+v != %+v", ci, i, vecResults[i], seqResults[i])
		}
	}
	if ss, sv := seq.Device().Stats(), vec.Device().Stats(); ss != sv {
		t.Fatalf("case %d: device stats diverged: %+v != %+v", ci, ss, sv)
	}
	if es, ev := seq.Device().Energy(), vec.Device().Energy(); es != ev {
		t.Fatalf("case %d: device energy diverged: %+v != %+v", ci, es, ev)
	}
	for id := range seq.zones {
		if seq.zones[id] != vec.zones[id] {
			t.Fatalf("case %d zone %d: %+v != %+v", ci, id, seq.zones[id], vec.zones[id])
		}
	}
}

// TestAppendVecMatchesSequentialAppend checks the strict equivalence
// contract on the write side: the vectored path must produce the same
// per-request costs, the same error at the same index, the same zone state
// (write pointers, ZoneFull transitions, WrittenAt stamps), and the same
// device-side accounting as call-by-call Appends that stop at the first
// failure — including batches with an invalid request in the middle and
// repeated appends to the same zone within one batch.
func TestAppendVecMatchesSequentialAppend(t *testing.T) {
	cases := [][]AppendReq{
		{{Zone: 0, Size: units.MiB}},
		// Repeated appends to one zone: request 2's validation must see the
		// pointer as advanced by requests 0-1.
		{{Zone: 0, Size: units.MiB}, {Zone: 0, Size: units.MiB}, {Zone: 0, Size: 2 * units.MiB}},
		// Mixed zones, one filling exactly to ZoneFull.
		{{Zone: 0, Size: 4 * units.MiB}, {Zone: 1, Size: 3 * units.MiB}, {Zone: 3, Size: 512}},
		// Request 1 overflows its zone mid-batch: request 0 is still charged,
		// request 2 is not.
		{{Zone: 0, Size: units.MiB}, {Zone: 2, Size: units.MiB}, {Zone: 3, Size: units.MiB}},
		// Append to an empty (never-opened) zone mid-batch.
		{{Zone: 3, Size: units.MiB}, {Zone: 5, Size: units.MiB}, {Zone: 0, Size: units.MiB}},
		// Zero-size append and out-of-range zone id.
		{{Zone: 0, Size: 0}},
		{{Zone: 1, Size: units.MiB}, {Zone: 99, Size: units.MiB}},
		// Zone filled by an earlier request in the same batch, then appended
		// again: the second append must fail with the ZoneFull state error.
		{{Zone: 2, Size: 512}, {Zone: 2, Size: 512}},
	}
	for ci, reqs := range cases {
		seq, vec := newTwinZonedForAppend(t, memdev.FaultConfig{})
		compareAppendTwins(t, ci, seq, vec, reqs)
	}
}

// TestAppendVecMatchesSequentialUnderWriteFaults drives fault-armed twins
// through random append batches: injected program failures must surface at
// the same request index with the same error, counters, and zone state as
// the sequential path (including the WrittenAt stamp the sequential path
// leaves behind on a failed first append).
func TestAppendVecMatchesSequentialUnderWriteFaults(t *testing.T) {
	faults := memdev.FaultConfig{Seed: 7, WriteFaultRate: 0.15}
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 40; round++ {
		seq, vec := newTwinZonedForAppend(t, faults)
		n := 1 + rng.Intn(8)
		reqs := make([]AppendReq, n)
		for i := range reqs {
			reqs[i] = AppendReq{
				Zone: rng.Intn(5),
				Size: units.Bytes(1+rng.Intn(512)) * units.KiB,
			}
		}
		compareAppendTwins(t, round, seq, vec, reqs)
	}
}

func TestAppendVecShortResults(t *testing.T) {
	z, _ := newTwinZonedForAppend(t, memdev.FaultConfig{})
	if _, err := z.AppendVec(make([]AppendReq, 2), make([]memdev.Result, 1)); err == nil {
		t.Fatal("want error for short results slice")
	}
}
