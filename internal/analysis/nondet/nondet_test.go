package nondet_test

import (
	"testing"

	"mrm/internal/analysis/analysistest"
	"mrm/internal/analysis/nondet"
)

func TestNondet(t *testing.T) {
	analysistest.Run(t, "testdata", nondet.Analyzer, "sim/internal/fix", "sim/internal/evfix", "demo")
}
