package nondet_test

import (
	"testing"

	"mrm/internal/analysis/analysistest"
	"mrm/internal/analysis/nondet"
)

func TestNondet(t *testing.T) {
	analysistest.Run(t, "testdata", nondet.Analyzer,
		"sim/internal/fix", "sim/internal/evfix", "demo",
		// Interprocedural: impurities laundered through helper chains in the
		// out-of-scope sim/lib/... packages are reported at these call sites.
		"sim/internal/deep",
		// The helper packages themselves are outside the reporting scope:
		// loading them directly must produce no diagnostics.
		"sim/lib/a", "sim/lib/b", "sim/lib/g", "sim/lib/iface", "sim/lib/waived",
		// The nondeterministic shell: exempt even though the paths match the
		// internal/ and cmd/ scope rules. No diagnostics expected.
		"sim/internal/server", "sim/internal/server/chaos", "sim/cmd/mrmd")
}
