package nondet_test

import (
	"testing"

	"mrm/internal/analysis/analysistest"
	"mrm/internal/analysis/nondet"
)

func TestNondet(t *testing.T) {
	analysistest.Run(t, "testdata", nondet.Analyzer,
		"sim/internal/fix", "sim/internal/evfix", "demo",
		// The nondeterministic shell: exempt even though the paths match the
		// internal/ and cmd/ scope rules. No diagnostics expected.
		"sim/internal/server", "sim/internal/server/chaos", "sim/cmd/mrmd")
}
