// Package iface exercises method-set propagation: a call through an
// interface method reaches every program-declared implementation, so an
// impure implementation taints the dispatch site.
package iface

import "time"

// Clock abstracts a time source.
type Clock interface {
	Now() time.Duration
}

// Wall is an impure implementation: it reads the wall clock.
type Wall struct{}

// Now reads the wall clock.
func (Wall) Now() time.Duration {
	return time.Duration(time.Now().UnixNano())
}

// Fixed is a pure implementation.
type Fixed time.Duration

// Now returns the fixed instant.
func (f Fixed) Now() time.Duration {
	return time.Duration(f)
}

// Via dispatches through the interface: the wall-clock fact of Wall.Now
// reaches it through the abstract Clock.Now node.
func Via(c Clock) time.Duration {
	return c.Now()
}
