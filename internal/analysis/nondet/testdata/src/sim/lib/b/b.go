// Package b is the bottom of the laundering chain: a helper package outside
// nondet's reporting scope (not internal/, not cmd/) that reads the wall
// clock. Nothing is reported here — the fact propagates to scoped callers.
package b

import (
	"math/rand"
	"time"
)

// Clock reads the wall clock. No diagnostic in this package; the fact is
// attached to Clock and flows caller-ward.
func Clock() time.Time {
	return time.Now()
}

// Dice draws from the shared global generator; same story.
func Dice() int {
	return rand.Intn(6)
}
