// Package a is the middle of the laundering chain: it relays package b's
// wall-clock impurity without containing one itself.
package a

import (
	"time"

	"sim/lib/b"
)

// Stamp reaches time.Now only through b.Clock — one hop down, two hops from
// the simulation code that calls Stamp.
func Stamp() time.Time {
	return b.Clock()
}

// Pure has no impurity anywhere below it.
func Pure(d time.Duration) time.Duration {
	return 2 * d
}
