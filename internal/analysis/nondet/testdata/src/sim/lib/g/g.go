// Package g holds a generic helper: the impurity fact attaches to the
// generic origin function, so every instantiation carries it.
package g

import "time"

// Tag stamps a value with the wall clock — generically impure.
func Tag[T any](v T) (T, time.Time) {
	return v, time.Now()
}

// Id is a pure generic helper.
func Id[T any](v T) T {
	return v
}
