// Package waived shows the root-waiver lifecycle: an //mrm:allow-nondet on
// the primitive impurity is a reviewed judgment that the site preserves the
// contract, so nothing propagates from it and scoped callers stay clean.
package waived

import "time"

// Quiet reads the wall clock under a waiver; callers are not flagged.
func Quiet() time.Time {
	return time.Now() //mrm:allow-nondet fixture: profiling hook outside the simulated clock
}
