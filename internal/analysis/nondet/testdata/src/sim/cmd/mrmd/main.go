// Package main is a nondet fixture: cmd/mrmd is the daemon binary — the
// other half of the nondeterministic shell — so signal-driven timing code is
// not flagged even though the path matches the "cmd/" scope rule.
package main

import "time"

func drainDeadline(budget time.Duration) time.Time {
	return time.Now().Add(budget)
}

func main() {}
