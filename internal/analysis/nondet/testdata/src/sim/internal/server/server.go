// Package server is a nondet fixture for the shell exemption: its import
// path ends in "internal/server", the designated nondeterministic shell, so
// wall-clock reads, global rand, and scheduling-dependent selects — the
// daemon's bread and butter (deadlines, jittered backoff, queue waits) — are
// not flagged even though the path also matches the "internal/" scope rule.
package server

import (
	"math/rand"
	"time"
)

func deadline() time.Time {
	return time.Now().Add(30 * time.Second)
}

func jitter(max time.Duration) time.Duration {
	return time.Duration(rand.Int63n(int64(max)))
}

func waitOrTimeout(done chan int, t *time.Timer) int {
	select {
	case v := <-done:
		return v
	case <-t.C:
		return -1
	}
}
