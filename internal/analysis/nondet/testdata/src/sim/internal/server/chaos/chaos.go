// Package chaos is a nondet fixture pinning that the shell exemption covers
// subpackages of internal/server, not just the package itself.
package chaos

import "time"

func armedAt() time.Time {
	return time.Now()
}
