// Package deep is simulation code (import path contains "internal/") whose
// impurities all arrive through helper chains in out-of-scope packages: the
// interprocedural pass must flag the call sites here, chain spelled out.
package deep

import (
	"time"

	"sim/lib/a"
	"sim/lib/b"
	"sim/lib/g"
	"sim/lib/iface"
	"sim/lib/waived"
)

// twoDeep reaches time.Now only through a two-package helper chain.
func twoDeep() time.Time {
	return a.Stamp() // want `call to a.Stamp reaches wall-clock time.Now \(a.Stamp → b.Clock\)`
}

// oneDeep reaches the global generator one package down.
func oneDeep() int {
	return b.Dice() // want `call to b.Dice reaches global rand.Intn \(b.Dice\)`
}

// pure calls only clean helpers: no diagnostic.
func pure(d time.Duration) time.Duration {
	return a.Pure(d)
}

// generic reaches time.Now through an instantiated generic helper: the fact
// rides the origin function.
func generic() (int, time.Time) {
	return g.Tag(3) // want `call to g.Tag reaches wall-clock time.Now \(g.Tag\)`
}

// genericPure instantiates a clean generic helper: no diagnostic.
func genericPure(x int) int {
	return g.Id(x)
}

// dispatch calls through an interface whose method set includes an impure
// implementation: flagged via the abstract-method node.
func dispatch(c iface.Clock) time.Duration {
	return iface.Via(c) // want `call to iface.Via reaches wall-clock time.Now \(iface.Via → iface.Clock.Now → iface.Wall.Now\)`
}

// waivedRoot calls a helper whose impurity carries a root waiver: the
// reviewed judgment holds for every caller, so no diagnostic.
func waivedRoot() time.Time {
	return waived.Quiet()
}

// waivedCall waives the laundered finding at the call site instead.
func waivedCall() time.Time {
	return a.Stamp() //mrm:allow-nondet fixture: boot-time stamp taken before the simulated clock starts
}
