// Package evfix is a nondet fixture for event-engine patterns: stamping
// events off the wall clock or merging event streams through select leaks
// host scheduling into simulated time, while a virtual clock advanced by the
// engine itself stays reproducible.
package evfix

import "time"

type event struct {
	at   time.Duration
	kind int
}

// stampWall timestamps an event off the host clock: two runs of the same
// simulation disagree on every At.
func stampWall(kind int) event {
	return event{at: time.Duration(time.Now().UnixNano()), kind: kind} // want `wall-clock call time.Now`
}

// stampVirtual timestamps off the engine's own clock: pure simulation state.
func stampVirtual(clock time.Duration, kind int) event {
	return event{at: clock, kind: kind}
}

// mergeChannels merges two nodes' event streams by select: which stream wins
// an equal-time race is the scheduler's choice, not the calendar's.
func mergeChannels(a, b chan event) event {
	select { // want `select resolves by scheduling order`
	case ev := <-a:
		return ev
	case ev := <-b:
		return ev
	}
}

// mergeCalendar merges by comparing timestamps with an explicit tie-break:
// node order decides equal times, every run the same.
func mergeCalendar(a, b []event) []event {
	out := make([]event, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if b[j].at < a[i].at {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
