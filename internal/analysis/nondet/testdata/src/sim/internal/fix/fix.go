// Package fix is a nondet fixture: a simulation package (its import path
// contains "internal/") exercising every nondet trigger and its deterministic
// counterpart.
package fix

import (
	"math/rand"
	"time"
)

func clock() time.Time {
	return time.Now() // want `wall-clock call time.Now`
}

func stopwatch(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock call time.Since`
}

func dice() int {
	return rand.Intn(6) // want `global rand.Intn`
}

func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // seeded, locally owned generator: fine
	return r.Intn(6)
}

func pick(a, b chan int) int {
	select { // want `select resolves by scheduling order`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func poll(a chan int) int {
	select { // want `select resolves by scheduling order`
	case v := <-a:
		return v
	default:
		return 0
	}
}

func waitOne(a chan int) int {
	select { // single blocking case: deterministic target
	case v := <-a:
		return v
	}
}

func profiled() time.Time {
	return time.Now() //mrm:allow-nondet fixture: timing hook outside the simulated clock
}

func profiledAbove() time.Time {
	//mrm:allow-nondet fixture: directive on the preceding line also waives
	return time.Now()
}
