// Package demo is out of nondet's scope (not the module root, not internal,
// not a command): wall-clock use here is not flagged.
package demo

import "time"

func clock() time.Time {
	return time.Now()
}
