// Package nondet flags sources of run-to-run nondeterminism in simulation
// code: wall-clock reads, the global math/rand generators, and select
// statements whose winner depends on goroutine scheduling. The simulator's
// contract is that every result is a pure function of its inputs and seeds —
// bit-identical across runs and -parallel settings — and a single time.Now or
// rand.Intn silently breaks every golden file and sweep downstream.
package nondet

import (
	"go/ast"
	"go/types"
	"strings"

	"mrm/internal/analysis"
)

// Analyzer flags nondeterministic constructs in simulation packages.
var Analyzer = &analysis.Analyzer{
	Name: "nondet",
	Doc: "flags wall-clock reads (time.Now and friends), global math/rand calls, " +
		"and multi-way selects in simulation packages; waive a deliberate use with " +
		"//mrm:allow-nondet <reason>",
	Run: run,
}

// AllowPackages lists import paths exempted wholesale (none by default —
// prefer per-site //mrm:allow-nondet directives, which carry a reason).
var AllowPackages = map[string]bool{}

// shellPackages are the import-path tails of the nondeterministic shell: the
// long-running serving daemon and its binary. They face real traffic and real
// time — wall-clock deadlines, OS signals, goroutine wakeups — and feed the
// deterministic core through a virtual clock, so the determinism contract
// deliberately stops at their boundary. Everything under them (subpackages
// included) is exempt; the sim core they call into stays locked.
var shellPackages = []string{"internal/server", "cmd/mrmd"}

// isShell reports whether path is part of the nondeterministic shell.
func isShell(path string) bool {
	for _, s := range shellPackages {
		if path == s || strings.HasSuffix(path, "/"+s) ||
			strings.Contains(path, s+"/") {
			return true
		}
	}
	return false
}

// inScope reports whether a package holds simulation code: the module root
// (the experiment drivers), internal packages, and commands. Example programs
// are demo code, and the serving shell (internal/server, cmd/mrmd) is the
// designated nondeterministic layer; both are exempt.
func inScope(path string) bool {
	if AllowPackages[path] || isShell(path) {
		return false
	}
	return path == "mrm" ||
		strings.Contains(path, "internal/") ||
		strings.Contains(path, "cmd/")
}

// wallClock is the set of time-package functions that read or schedule off
// the wall clock. time.Duration arithmetic and constants stay legal: the
// simulator's own clocks are time.Durations advanced explicitly.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// seededConstructors are the math/rand functions that build an explicitly
// seeded, locally owned generator — the deterministic alternative the
// diagnostics point at.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.SelectStmt:
				checkSelect(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClock[fn.Name()] {
			pass.Reportf(call.Pos(),
				"wall-clock call time.%s in simulation code: results must be pure in (inputs, seeds); derive time from the simulated clock", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		sig, ok := fn.Type().(*types.Signature)
		if (ok && sig.Recv() != nil) || seededConstructors[fn.Name()] {
			return // methods on an owned *Rand and seeded constructors are fine
		}
		pass.Reportf(call.Pos(),
			"global %s.%s draws from the shared process-wide RNG: use a generator seeded from the sweep cell (dist.NewRNG / rand.New(rand.NewSource(seed)))",
			fn.Pkg().Name(), fn.Name())
	}
}

func checkSelect(pass *analysis.Pass, sel *ast.SelectStmt) {
	if len(sel.Body.List) <= 1 {
		// A single-case select blocks on one deterministic communication.
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return
		}
	}
	pass.Reportf(sel.Pos(),
		"select resolves by scheduling order when several cases are ready: simulation code must not branch on goroutine timing")
}
