// Package nondet flags sources of run-to-run nondeterminism in simulation
// code: wall-clock reads, the global math/rand generators, and select
// statements whose winner depends on goroutine scheduling. The simulator's
// contract is that every result is a pure function of its inputs and seeds —
// bit-identical across runs and -parallel settings — and a single time.Now or
// rand.Intn silently breaks every golden file and sweep downstream.
//
// The analyzer is interprocedural: wall-clock and global-rand reads are
// recorded as facts on the functions that contain them and propagated
// caller-ward along the program call graph, so an impurity laundered through
// any chain of project-internal helpers is reported at the call site in
// simulation code, with the chain spelled out. The nondeterministic shell
// (internal/server, cmd/mrmd) is a propagation boundary: its functions
// neither emit nor relay facts.
package nondet

import (
	"go/ast"
	"go/types"
	"strings"

	"mrm/internal/analysis"
)

// Analyzer flags nondeterministic constructs in simulation packages.
var Analyzer = &analysis.Analyzer{
	Name: "nondet",
	Doc: "flags wall-clock reads (time.Now and friends), global math/rand calls, " +
		"and multi-way selects in simulation packages, including impurities reached " +
		"only through chains of project-internal helpers; waive a deliberate use with " +
		"//mrm:allow-nondet <reason>",
	Facts:    facts,
	Scope:    inScope,
	Boundary: boundary,
}

// run references Analyzer (to query its own flow facts), so it is wired up
// here rather than in the literal to break the initialization cycle.
func init() { Analyzer.Run = run }

// AllowPackages lists import paths exempted wholesale (none by default —
// prefer per-site //mrm:allow-nondet directives, which carry a reason).
var AllowPackages = map[string]bool{}

// boundary reports packages whose functions neither emit nor relay impurity
// facts: the nondeterministic shell and wholesale-exempted packages.
func boundary(path string) bool {
	return analysis.IsShellPackage(path) || AllowPackages[path]
}

// inScope reports whether a package holds simulation code: the module root
// (the experiment drivers), internal packages, and commands. Example programs
// are demo code, and the serving shell (internal/server, cmd/mrmd) is the
// designated nondeterministic layer; both are exempt.
func inScope(path string) bool {
	if boundary(path) {
		return false
	}
	return path == "mrm" ||
		strings.Contains(path, "internal/") ||
		strings.Contains(path, "cmd/")
}

// wallClock is the set of time-package functions that read or schedule off
// the wall clock. time.Duration arithmetic and constants stay legal: the
// simulator's own clocks are time.Durations advanced explicitly.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// seededConstructors are the math/rand functions that build an explicitly
// seeded, locally owned generator — the deterministic alternative the
// diagnostics point at.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// Fact kinds attached to functions containing primitive impurities.
const (
	kindWallClock  = "wallclock"
	kindGlobalRand = "globalrand"
)

// classifyCall identifies a primitive impurity at a call: a wall-clock read
// or a draw from the shared global generator. It returns ok=false for
// everything else, including methods on owned *Rand values and seeded
// constructors.
func classifyCall(info *types.Info, call *ast.CallExpr) (kind, detail string, ok bool) {
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", "", false
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClock[fn.Name()] {
			return kindWallClock, "time." + fn.Name(), true
		}
	case "math/rand", "math/rand/v2":
		sig, sok := fn.Type().(*types.Signature)
		if (sok && sig.Recv() != nil) || seededConstructors[fn.Name()] {
			return "", "", false // owned *Rand methods and seeded constructors are fine
		}
		return kindGlobalRand, fn.Pkg().Name() + "." + fn.Name(), true
	}
	return "", "", false
}

// facts records one fact per primitive impurity in each function body, so
// the framework can flow them to call sites in simulation code.
func facts(pass *analysis.Pass) map[*types.Func][]analysis.Fact {
	out := make(map[*types.Func][]analysis.Fact)
	analysis.ForEachFuncDecl(pass, func(obj *types.Func, fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if kind, detail, ok := classifyCall(pass.TypesInfo, call); ok {
				out[obj] = append(out[obj], analysis.Fact{Kind: kind, Pos: call.Pos(), Detail: detail})
			}
			return true
		})
	})
	return out
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.SelectStmt:
				checkSelect(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	// Primitive impurity at this very call: report directly.
	if kind, detail, ok := classifyCall(pass.TypesInfo, call); ok {
		switch kind {
		case kindWallClock:
			pass.Reportf(call.Pos(),
				"wall-clock call %s in simulation code: results must be pure in (inputs, seeds); derive time from the simulated clock", detail)
		case kindGlobalRand:
			pass.Reportf(call.Pos(),
				"global %s draws from the shared process-wide RNG: use a generator seeded from the sweep cell (dist.NewRNG / rand.New(rand.NewSource(seed)))", detail)
		}
		return
	}
	// Laundered impurity: the callee (or something it transitively calls,
	// outside this analyzer's reporting scope) contains one.
	if pass.Program == nil {
		return
	}
	callee := analysis.Callee(pass.TypesInfo, call)
	for _, ff := range pass.Program.FlowFacts(Analyzer, callee) {
		chain := pass.Program.ChainString(Analyzer, callee, ff)
		switch ff.Fact.Kind {
		case kindWallClock:
			pass.Reportf(call.Pos(),
				"call to %s reaches wall-clock %s (%s): results must be pure in (inputs, seeds); derive time from the simulated clock",
				analysis.FuncDisplayName(callee), ff.Fact.Detail, chain)
		case kindGlobalRand:
			pass.Reportf(call.Pos(),
				"call to %s reaches global %s (%s): use a generator seeded from the sweep cell (dist.NewRNG / rand.New(rand.NewSource(seed)))",
				analysis.FuncDisplayName(callee), ff.Fact.Detail, chain)
		}
	}
}

func checkSelect(pass *analysis.Pass, sel *ast.SelectStmt) {
	if len(sel.Body.List) <= 1 {
		// A single-case select blocks on one deterministic communication.
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return
		}
	}
	pass.Reportf(sel.Pos(),
		"select resolves by scheduling order when several cases are ready: simulation code must not branch on goroutine timing")
}
