// Package analysis is a small, self-contained static-analysis framework
// modeled on golang.org/x/tools/go/analysis, built only on the standard
// library (go/parser, go/types, go list). The build environment has no module
// proxy, so the upstream framework cannot be vendored; this package
// reimplements the slice of its API the repo's analyzers need — Analyzer,
// Pass, position-sorted diagnostics, an analysistest-style harness
// (internal/analysis/analysistest) — and adds the project-wide suppression
// directive:
//
//	//mrm:allow-<analyzer> <reason>
//
// A directive suppresses an analyzer's diagnostics when it appears on the
// flagged line, on the line immediately above it, or in the doc comment of
// the enclosing function. The reason is mandatory: a bare directive is itself
// a diagnostic (see DirectiveDiagnostics), so every waived finding carries a
// reviewable justification in the source.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one analysis: a named invariant and the function
// that checks a package against it. An analyzer with a Facts hook is
// interprocedural: the framework computes its per-function facts over the
// whole program, propagates them caller-ward along the call graph, and the
// Run function reports facts that surface at call sites in its scope.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in the suppression
	// directive //mrm:allow-<Name>. It must be a valid identifier.
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// enforces and why violating it threatens reproducibility.
	Doc string
	// Run checks one package, reporting findings through the Pass.
	Run func(*Pass) error
	// Facts, if non-nil, computes the direct facts of the functions declared
	// in the pass's package: properties (an impurity, a wall-clock read) that
	// should follow the function to every call site. Keys are the canonical
	// (Origin) *types.Func objects from the package's Defs.
	Facts func(*Pass) map[*types.Func][]Fact
	// Scope reports the packages the analyzer reports diagnostics in. Facts
	// do not originate in scope packages — a direct finding there is already
	// reported at its own site by Run — and do not relay through them, so
	// each impurity is reported exactly once, at the deepest scoped frame.
	Scope func(pkgPath string) bool
	// Boundary reports packages whose functions neither emit nor relay
	// facts: designated-impure layers (the serving shell) where the
	// invariant deliberately stops.
	Boundary func(pkgPath string) bool
}

// A Fact is one function-level property an interprocedural analyzer tracks:
// the kind of construct, where it occurs, and a human-readable detail for
// diagnostics ("time.Now", "package-level var trials").
type Fact struct {
	Kind   string
	Pos    token.Pos
	Detail string
}

// A FlowFact is a fact as seen from some function: the root fact plus the
// first hop of the call chain through which the function reaches it. Via is
// nil when the function contains the root construct itself.
type FlowFact struct {
	Fact Fact
	Via  *types.Func
}

// A Pass provides one analyzer run with a type-checked package and collects
// its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	PkgPath   string
	TypesInfo *types.Info
	// Program is the whole-program view (call graph + propagated facts).
	// It is nil only for Facts hooks, which must be intraprocedural.
	Program *Program

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Position token.Position
	Analyzer string
	Message  string
}

// RunAnalyzer runs a on pkg in isolation: a single-package Program with no
// cross-package fact flow. Tests of purely intraprocedural analyzers use it;
// interprocedural runs build a Program over every loaded package instead.
func RunAnalyzer(a *Analyzer, pkg *Pkg) ([]Diagnostic, error) {
	return NewProgram([]*Pkg{pkg}).Run(a, pkg)
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// ShellPackages are the import-path tails of the nondeterministic shell: the
// long-running serving daemon and its binary. They face real traffic and real
// time — wall-clock deadlines, OS signals, goroutine wakeups — and feed the
// deterministic core through a virtual clock, so the determinism contracts
// deliberately stop at their boundary. Analyzers treat them as out of scope
// and as fact-propagation boundaries.
var ShellPackages = []string{"internal/server", "cmd/mrmd"}

// IsShellPackage reports whether path is part of the nondeterministic shell
// (either shell package or any subpackage under one).
func IsShellPackage(path string) bool {
	for _, s := range ShellPackages {
		if path == s || strings.HasSuffix(path, "/"+s) ||
			strings.Contains(path, s+"/") {
			return true
		}
	}
	return false
}

// ForEachFuncDecl visits every function declaration with a body in the
// pass's package, in file and position order, along with its canonical
// types.Func object. Fact hooks build their per-function tables with it.
func ForEachFuncDecl(pass *Pass, fn func(obj *types.Func, fd *ast.FuncDecl)) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fn(obj.Origin(), fd)
		}
	}
}

// Callee resolves the static callee of a call, or nil for calls through
// function values, builtins, and type conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	if fn != nil {
		// Canonicalize instantiated generic functions and methods to their
		// origin so facts and call-graph edges agree across instantiations.
		fn = fn.Origin()
	}
	return fn
}

// UsesAny reports whether node references any of the given objects.
func UsesAny(info *types.Info, node ast.Node, objs map[types.Object]bool) bool {
	if node == nil || len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && objs[info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

// pathString renders a selector base as a dotted identifier path ("d",
// "s.dev"), or "" if the expression is not a pure identifier path — lock
// tracking only reasons about stable paths.
func pathString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := pathString(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	default:
		return ""
	}
}

// PathString is pathString for use by analyzers.
func PathString(e ast.Expr) string { return pathString(e) }

// IsFloat reports whether t's underlying type is a floating-point (or
// complex) basic type — the types whose addition is order-sensitive.
func IsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// StmtLists yields every statement list in the file (block bodies, case and
// comm clause bodies) so analyzers can reason about a statement's successors
// within its enclosing list.
func StmtLists(f *ast.File, fn func(list []ast.Stmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			fn(n.List)
		case *ast.CaseClause:
			fn(n.Body)
		case *ast.CommClause:
			fn(n.Body)
		}
		return true
	})
}

// Unlabel strips labels from a statement: `loop: for ... {}` checks the same
// as the bare loop.
func Unlabel(s ast.Stmt) ast.Stmt {
	for {
		l, ok := s.(*ast.LabeledStmt)
		if !ok {
			return s
		}
		s = l.Stmt
	}
}

// IsErrorType reports whether t implements the error interface — package
// level error sentinels (var ErrX = errors.New) are conventional and
// immutable by contract, so purity checks exempt them.
func IsErrorType(t types.Type) bool {
	return types.Implements(t, errorInterface) ||
		types.Implements(types.NewPointer(t), errorInterface)
}

var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// exprString is a helper for diagnostics.
func exprString(e ast.Expr) string {
	if s := pathString(e); s != "" {
		return s
	}
	return strings.TrimSpace(types.ExprString(e))
}

// ExprString renders an expression for use in diagnostic messages.
func ExprString(e ast.Expr) string { return exprString(e) }
