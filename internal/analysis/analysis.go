// Package analysis is a small, self-contained static-analysis framework
// modeled on golang.org/x/tools/go/analysis, built only on the standard
// library (go/parser, go/types, go list). The build environment has no module
// proxy, so the upstream framework cannot be vendored; this package
// reimplements the slice of its API the repo's analyzers need — Analyzer,
// Pass, position-sorted diagnostics, an analysistest-style harness
// (internal/analysis/analysistest) — and adds the project-wide suppression
// directive:
//
//	//mrm:allow-<analyzer> <reason>
//
// A directive suppresses an analyzer's diagnostics when it appears on the
// flagged line, on the line immediately above it, or in the doc comment of
// the enclosing function. The reason is mandatory: a bare directive is itself
// a diagnostic (see DirectiveDiagnostics), so every waived finding carries a
// reviewable justification in the source.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one analysis: a named invariant and the function
// that checks a package against it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in the suppression
	// directive //mrm:allow-<Name>. It must be a valid identifier.
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// enforces and why violating it threatens reproducibility.
	Doc string
	// Run checks one package, reporting findings through the Pass.
	Run func(*Pass) error
}

// A Pass provides one analyzer run with a type-checked package and collects
// its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	PkgPath   string
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Position token.Position
	Analyzer string
	Message  string
}

// RunAnalyzer runs a on pkg, filters out diagnostics waived by an
// //mrm:allow-<name> directive, and returns the survivors sorted by position.
func RunAnalyzer(a *Analyzer, pkg *Pkg) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Syntax,
		Pkg:       pkg.Types,
		PkgPath:   pkg.PkgPath,
		TypesInfo: pkg.TypesInfo,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
	}
	idx := indexDirectives(pkg)
	kept := pass.diags[:0]
	for _, d := range pass.diags {
		if !idx.allows(pkg, a.Name, d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return posLess(kept[i].Position, kept[j].Position) })
	return kept, nil
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// Callee resolves the static callee of a call, or nil for calls through
// function values, builtins, and type conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// UsesAny reports whether node references any of the given objects.
func UsesAny(info *types.Info, node ast.Node, objs map[types.Object]bool) bool {
	if node == nil || len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && objs[info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

// pathString renders a selector base as a dotted identifier path ("d",
// "s.dev"), or "" if the expression is not a pure identifier path — lock
// tracking only reasons about stable paths.
func pathString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := pathString(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	default:
		return ""
	}
}

// PathString is pathString for use by analyzers.
func PathString(e ast.Expr) string { return pathString(e) }

// IsFloat reports whether t's underlying type is a floating-point (or
// complex) basic type — the types whose addition is order-sensitive.
func IsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// StmtLists yields every statement list in the file (block bodies, case and
// comm clause bodies) so analyzers can reason about a statement's successors
// within its enclosing list.
func StmtLists(f *ast.File, fn func(list []ast.Stmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			fn(n.List)
		case *ast.CaseClause:
			fn(n.Body)
		case *ast.CommClause:
			fn(n.Body)
		}
		return true
	})
}

// Unlabel strips labels from a statement: `loop: for ... {}` checks the same
// as the bare loop.
func Unlabel(s ast.Stmt) ast.Stmt {
	for {
		l, ok := s.(*ast.LabeledStmt)
		if !ok {
			return s
		}
		s = l.Stmt
	}
}

// IsErrorType reports whether t implements the error interface — package
// level error sentinels (var ErrX = errors.New) are conventional and
// immutable by contract, so purity checks exempt them.
func IsErrorType(t types.Type) bool {
	return types.Implements(t, errorInterface) ||
		types.Implements(types.NewPointer(t), errorInterface)
}

var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// exprString is a helper for diagnostics.
func exprString(e ast.Expr) string {
	if s := pathString(e); s != "" {
		return s
	}
	return strings.TrimSpace(types.ExprString(e))
}

// ExprString renders an expression for use in diagnostic messages.
func ExprString(e ast.Expr) string { return exprString(e) }
