// Package a is a maporder fixture covering each order-leak sink and its
// deterministic counterpart.
package a

import (
	"fmt"
	"sort"
)

func keysUnsorted(m map[string]int) []string {
	out := []string{}
	for k := range m {
		out = append(out, k) // want `accumulates elements in map iteration order`
	}
	return out
}

func keysSorted(m map[string]int) []string {
	out := []string{}
	for k := range m {
		out = append(out, k) // sorted below: fine
	}
	sort.Strings(out)
	return out
}

func keysSortSlice(m map[string]int) []string {
	out := []string{}
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func floatSum(m map[string]float64) float64 {
	var t float64
	for _, v := range m {
		t += v // want `floating-point accumulation over map iteration order`
	}
	return t
}

func intSum(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v // integer addition is exact and commutative: fine
	}
	return t
}

func countOnly(m map[string]int) int {
	n := 0
	for range m {
		n++ // no loop variables: nothing order-dependent escapes
	}
	return n
}

func copyOut(m map[int]float64, dst map[int]float64) {
	for k, v := range m {
		dst[k] = v // map-to-map copy commutes: fine
	}
}

func printAll(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `writes output in map iteration order`
	}
}

func findAny(m map[string]int) string {
	for k := range m {
		if k != "" {
			return k // want `depends on map iteration order`
		}
	}
	return ""
}

func waived(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) //mrm:allow-maporder fixture: consumer sorts
	}
	return out
}

type sink struct{}

func (s *sink) Observe(x float64) {}

func feedAccumulator(m map[string]float64, s *sink) {
	for _, v := range m {
		s.Observe(v) // want `feeds an order-sensitive sink`
	}
}
