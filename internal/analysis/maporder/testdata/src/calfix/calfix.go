// Package calfix is a maporder fixture for event-calendar patterns: picking
// or draining "next events" out of a map leaks iteration order into the
// simulation schedule, while a slice-backed calendar with an explicit
// tie-break stays deterministic.
package calfix

import "sort"

type event struct {
	at  int64
	seq int
}

// nextFromMap returns some due event id: with several events due at the same
// instant, which one runs first is whatever key the runtime yields first.
func nextFromMap(pending map[int]int64, now int64) int {
	for id, at := range pending {
		if at <= now {
			return id // want `depends on map iteration order`
		}
	}
	return -1
}

// drainFromMap gathers the due events in map iteration order, so the handler
// sequence differs run to run.
func drainFromMap(pending map[int]int64, now int64) []int {
	var due []int
	for id, at := range pending {
		if at <= now {
			due = append(due, id) // want `accumulates elements in map iteration order`
		}
	}
	return due
}

// drainSorted gathers then sorts: order restored before anything observes it.
func drainSorted(pending map[int]int64, now int64) []int {
	var due []int
	for id, at := range pending {
		if at <= now {
			due = append(due, id)
		}
	}
	sort.Ints(due)
	return due
}

// calendar is the deterministic counterpart: a slice ordered by (at, seq), so
// equal-time events pop in insertion order no matter what the runtime does.
type calendar struct {
	h []event
}

func (c *calendar) push(at int64) {
	c.h = append(c.h, event{at: at, seq: len(c.h)})
	sort.Slice(c.h, func(i, j int) bool {
		if c.h[i].at != c.h[j].at {
			return c.h[i].at < c.h[j].at
		}
		return c.h[i].seq < c.h[j].seq
	})
}

func (c *calendar) pop() (event, bool) {
	if len(c.h) == 0 {
		return event{}, false
	}
	ev := c.h[0]
	c.h = c.h[1:]
	return ev, true
}
