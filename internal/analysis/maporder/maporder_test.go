package maporder_test

import (
	"testing"

	"mrm/internal/analysis/analysistest"
	"mrm/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata", maporder.Analyzer, "a", "calfix")
}
