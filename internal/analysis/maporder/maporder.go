// Package maporder flags range-over-map loops whose iteration order can leak
// into results. Go randomizes map iteration per run, so a map-range that
// appends to a slice nobody sorts, accumulates floating point, writes
// output, or returns a value derived from the current element produces
// different bytes (or different last-ulp floats) on identical inputs — the
// exact failure mode the repo's golden files exist to catch, surfaced at
// compile time instead.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"mrm/internal/analysis"
)

// Analyzer flags order-sensitive map iteration.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flags range-over-map loops that append to an unsorted slice, accumulate " +
		"floating point, write output, or return order-dependent values; waive with " +
		"//mrm:allow-maporder <reason>",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		analysis.StmtLists(f, func(list []ast.Stmt) {
			for i, st := range list {
				if rs, ok := analysis.Unlabel(st).(*ast.RangeStmt); ok {
					checkRange(pass, rs, list[i+1:])
				}
			}
		})
	}
	return nil
}

// loopVars returns the objects bound by the range statement's key and value.
func loopVars(pass *analysis.Pass, rs *ast.RangeStmt) map[types.Object]bool {
	objs := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if o := pass.TypesInfo.Defs[id]; o != nil {
			objs[o] = true
		} else if o := pass.TypesInfo.Uses[id]; o != nil {
			objs[o] = true
		}
	}
	return objs
}

func checkRange(pass *analysis.Pass, rs *ast.RangeStmt, tail []ast.Stmt) {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	vars := loopVars(pass, rs)
	if len(vars) == 0 {
		return // `for range m` observes only the count
	}
	info := pass.TypesInfo
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if analysis.UsesAny(info, res, vars) {
					pass.Reportf(n.Pos(),
						"return inside range over %s depends on map iteration order: iterate sorted keys or reduce order-insensitively",
						analysis.ExprString(rs.X))
					return false
				}
			}
		case *ast.AssignStmt:
			checkAssign(pass, rs, n, vars, tail)
		case *ast.CallExpr:
			checkSinkCall(pass, rs, n, vars)
		}
		return true
	})
}

// checkAssign flags two order leaks: appends to a slice that is never sorted
// afterwards, and floating-point op-assign accumulation.
func checkAssign(pass *analysis.Pass, rs *ast.RangeStmt, as *ast.AssignStmt, vars map[types.Object]bool, tail []ast.Stmt) {
	info := pass.TypesInfo
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return
		}
		lt := info.TypeOf(as.Lhs[0])
		if lt == nil || !analysis.IsFloat(lt) {
			return
		}
		if !analysis.UsesAny(info, as.Rhs[0], vars) && !analysis.UsesAny(info, as.Lhs[0], vars) {
			return
		}
		pass.Reportf(as.Pos(),
			"floating-point accumulation over map iteration order: %s differs between runs; sum over sorted keys",
			analysis.ExprString(as.Lhs[0]))
	case token.ASSIGN, token.DEFINE:
		if len(as.Rhs) != 1 {
			return
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isAppend(info, call) {
			return
		}
		target, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Uses[target]
		if obj == nil {
			obj = info.Defs[target]
		}
		if obj == nil || obj.Pos() > rs.Pos() {
			return // slice declared inside the loop: order cannot outlive it
		}
		args := call.Args[1:]
		ref := false
		for _, a := range args {
			if analysis.UsesAny(info, a, vars) {
				ref = true
				break
			}
		}
		if !ref {
			return
		}
		if sortedAfter(info, obj, tail) {
			return
		}
		pass.Reportf(call.Pos(),
			"%s accumulates elements in map iteration order and is never sorted afterwards: sort it (sort./slices.) before use",
			obj.Name())
	}
}

func isAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append" && len(call.Args) >= 2
}

// sortedAfter reports whether any statement after the loop (in the same
// enclosing list) passes obj to a sort/slices function or a Sort method.
func sortedAfter(info *types.Info, obj types.Object, tail []ast.Stmt) bool {
	for _, st := range tail {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			if !isSortCall(info, call) {
				return true
			}
			for _, a := range call.Args {
				if usesObj(info, a, obj) {
					found = true
					return false
				}
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && usesObj(info, sel.X, obj) {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.Callee(info, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "sort", "slices":
			return true
		}
	}
	return fn.Name() == "Sort"
}

func usesObj(info *types.Info, n ast.Node, obj types.Object) bool {
	return analysis.UsesAny(info, n, map[types.Object]bool{obj: true})
}

// checkSinkCall flags calls that emit loop elements somewhere order matters:
// fmt printing, writer methods, and metric accumulators.
func checkSinkCall(pass *analysis.Pass, rs *ast.RangeStmt, call *ast.CallExpr, vars map[types.Object]bool) {
	info := pass.TypesInfo
	fn := analysis.Callee(info, call)
	if fn == nil {
		return
	}
	ref := false
	for _, a := range call.Args {
		if analysis.UsesAny(info, a, vars) {
			ref = true
			break
		}
	}
	if !ref {
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			pass.Reportf(call.Pos(),
				"fmt.%s inside range over %s writes output in map iteration order: iterate sorted keys",
				fn.Name(), analysis.ExprString(rs.X))
		}
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() == nil {
		return
	}
	switch fn.Name() {
	case "Observe", "Record", "Merge",
		"Write", "WriteString", "WriteByte", "WriteRune":
		recv := "receiver"
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			recv = analysis.ExprString(sel.X)
		}
		pass.Reportf(call.Pos(),
			"%s.%s inside range over %s feeds an order-sensitive sink in map iteration order: iterate sorted keys",
			recv, fn.Name(), analysis.ExprString(rs.X))
	}
}
