package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// A Pkg is one loaded, parsed, and type-checked package.
type Pkg struct {
	PkgPath   string
	Name      string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// A Loader parses and type-checks packages without the go/packages driver:
// module packages come from `go list -json` (or a plain directory tree for
// test fixtures), standard-library imports are type-checked from GOROOT
// source via go/importer's "source" compiler, so loading works with no
// network, no module proxy, and no pre-built export data.
type Loader struct {
	Fset *token.FileSet

	std      types.Importer
	dirs     map[string]string // import path -> directory of source files
	files    map[string][]string
	loaded   map[string]*Pkg
	loading  map[string]bool
	treeRoot string // when loading a fixture tree, its root directory
}

// NewLoader returns a ready Loader with a fresh FileSet.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		dirs:    make(map[string]string),
		files:   make(map[string][]string),
		loaded:  make(map[string]*Pkg),
		loading: make(map[string]bool),
	}
}

type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Standard   bool
}

// LoadPatterns loads the packages matching the go list patterns, rooted at
// dir, along with every in-module dependency. Test files are not loaded.
func (l *Loader) LoadPatterns(dir string, patterns ...string) ([]*Pkg, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// One -deps pass registers source locations for every in-module package
	// (dependencies included); a second plain pass names the target set.
	all, err := goList(dir, true, patterns)
	if err != nil {
		return nil, err
	}
	for _, p := range all {
		if p.Standard || p.Dir == "" || len(p.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		l.dirs[p.ImportPath] = p.Dir
		l.files[p.ImportPath] = files
	}
	targets, err := goList(dir, false, patterns)
	if err != nil {
		return nil, err
	}
	var out []*Pkg
	for _, p := range targets {
		if p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := l.load(p.ImportPath)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadTree loads the given import paths from a plain directory tree (the
// analysistest layout: root/<import/path>/*.go). Imports between fixture
// packages resolve inside the tree; everything else must be standard library.
func (l *Loader) LoadTree(root string, paths ...string) ([]*Pkg, error) {
	l.treeRoot = root
	var out []*Pkg
	for _, p := range paths {
		if err := l.registerTreeDir(p); err != nil {
			return nil, err
		}
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func (l *Loader) registerTreeDir(path string) error {
	if _, ok := l.dirs[path]; ok {
		return nil
	}
	dir := filepath.Join(l.treeRoot, filepath.FromSlash(path))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("analysis: fixture package %s: %w", path, err)
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		if !buildTagsSatisfied(full) {
			continue
		}
		files = append(files, full)
	}
	if len(files) == 0 {
		return fmt.Errorf("analysis: fixture package %s: no Go files in %s", path, dir)
	}
	sort.Strings(files)
	l.dirs[path] = dir
	l.files[path] = files
	return nil
}

// buildTagsSatisfied reports whether the file's //go:build constraint (if
// any) holds for the current GOOS/GOARCH. Module packages get this filtering
// from `go list`; fixture trees must do it themselves or a tagged-out file
// (say a GOOS twin or an intentionally broken fixture) would be parsed into
// the package and break type-checking.
func buildTagsSatisfied(filename string) bool {
	src, err := os.ReadFile(filename)
	if err != nil {
		return true // let the parser produce the real error
	}
	for _, line := range strings.Split(string(src), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "package ") {
			break // constraints must precede the package clause
		}
		if !constraint.IsGoBuild(line) {
			continue
		}
		expr, err := constraint.Parse(line)
		if err != nil {
			return true
		}
		return expr.Eval(func(tag string) bool {
			return tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc"
		})
	}
	return true
}

// Loaded returns every package this Loader has parsed and type-checked so
// far — explicit targets and in-module dependencies alike — sorted by import
// path. NewProgram wants this full set: facts propagate through dependency
// packages even when diagnostics are only wanted for the targets.
func (l *Loader) Loaded() []*Pkg {
	out := make([]*Pkg, 0, len(l.loaded))
	for _, pkg := range l.loaded {
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out
}

// load parses and type-checks one registered package (and, recursively, its
// registered imports).
func (l *Loader) load(path string) (*Pkg, error) {
	if pkg, ok := l.loaded[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	var syntax []*ast.File
	for _, fname := range l.files[path] {
		f, err := parser.ParseFile(l.Fset, fname, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: importerFunc(l.importPkg)}
	tpkg, err := conf.Check(path, l.Fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Pkg{
		PkgPath:   path,
		Name:      tpkg.Name(),
		Fset:      l.Fset,
		Syntax:    syntax,
		Types:     tpkg,
		TypesInfo: info,
	}
	l.loaded[path] = pkg
	return pkg, nil
}

func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.dirs[path]; !ok && l.treeRoot != "" {
		// Fixture trees register packages lazily so fixtures can import
		// sibling fixture packages.
		if fi, err := os.Stat(filepath.Join(l.treeRoot, filepath.FromSlash(path))); err == nil && fi.IsDir() {
			if err := l.registerTreeDir(path); err != nil {
				return nil, err
			}
		}
	}
	if _, ok := l.dirs[path]; ok {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func goList(dir string, deps bool, patterns []string) ([]listPkg, error) {
	args := []string{"list", "-json=ImportPath,Dir,Name,GoFiles,Standard"}
	if deps {
		args = append(args, "-deps")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list: %w\n%s", err, stderr.String())
	}
	var out []listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		out = append(out, p)
	}
	return out, nil
}
