package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A CallGraph is a deterministic static call graph over a set of loaded
// packages. Nodes are the canonical *types.Func objects of functions declared
// in those packages (methods included), plus the abstract methods of
// interfaces declared in them. Edges are:
//
//   - static calls: f() and x.M() where the callee resolves to a concrete
//     function declared in the program;
//   - dynamic dispatch, over-approximated by method sets: a call through an
//     interface method I.M gets an edge to T.M for every program-declared
//     named type T (or *T) that implements I.
//
// Calls through plain function values (closures stored in variables, fields,
// or parameters) are not resolved; impurity inside a function literal is
// attributed to the function whose body lexically contains it, which covers
// the common helper-closure pattern.
//
// All adjacency lists are sorted by declaration position so traversals — and
// therefore every diagnostic derived from them — are stable run to run.
type CallGraph struct {
	fset *token.FileSet
	// callees and callers are the forward and reverse edge sets.
	callees map[*types.Func][]*types.Func
	callers map[*types.Func][]*types.Func
	// decls maps each declared function to the file syntax that declares it;
	// iteration happens over the sorted funcs slice, never over this map.
	decls map[*types.Func]*ast.FuncDecl
	funcs []*types.Func // every node, sorted by position
}

// buildCallGraph constructs the graph over pkgs. The packages must share one
// FileSet and one type-checking session (the Loader guarantees both), so a
// function referenced from two packages is the same object in both.
func buildCallGraph(pkgs []*Pkg) *CallGraph {
	g := &CallGraph{
		callees: make(map[*types.Func][]*types.Func),
		callers: make(map[*types.Func][]*types.Func),
		decls:   make(map[*types.Func]*ast.FuncDecl),
	}
	if len(pkgs) > 0 {
		g.fset = pkgs[0].Fset
	}
	declared := make(map[*types.Func]bool)
	var named []*types.Named
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fn = fn.Origin()
				declared[fn] = true
				g.decls[fn] = fd
			}
		}
		// Collect the package's named types for method-set resolution of
		// interface calls. Scope names are returned sorted.
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if n, ok := tn.Type().(*types.Named); ok {
				named = append(named, n)
			}
		}
	}

	// rawEdges gathers edges per caller before dedup/sort.
	rawEdges := make(map[*types.Func][]*types.Func)
	addEdge := func(from, to *types.Func) {
		rawEdges[from] = append(rawEdges[from], to)
	}
	// ifaceTargets resolves an abstract interface method to the matching
	// concrete methods declared in the program.
	ifaceTargets := func(m *types.Func) []*types.Func {
		sig, ok := m.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return nil
		}
		iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
		if !ok {
			return nil
		}
		var out []*types.Func
		for _, n := range named {
			if types.IsInterface(n) {
				continue
			}
			var recv types.Type = n
			if !types.Implements(recv, iface) {
				recv = types.NewPointer(n)
				if !types.Implements(recv, iface) {
					continue
				}
			}
			obj, _, _ := types.LookupFieldOrMethod(recv, true, m.Pkg(), m.Name())
			if impl, ok := obj.(*types.Func); ok {
				impl = impl.Origin()
				if declared[impl] {
					out = append(out, impl)
				}
			}
		}
		return out
	}

	for _, pkg := range pkgs {
		info := pkg.TypesInfo
		// Iterate declared functions in file/position order for determinism.
		for _, f := range pkg.Syntax {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				caller, ok := info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				caller = caller.Origin()
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := Callee(info, call)
					if callee == nil {
						return true
					}
					if declared[callee] {
						addEdge(caller, callee)
						return true
					}
					if targets := ifaceTargets(callee); len(targets) > 0 {
						// Route dispatch through the abstract method node so
						// call sites and fact chains name the interface.
						addEdge(caller, callee)
						declared[callee] = true
						for _, t := range targets {
							addEdge(callee, t)
						}
					}
					return true
				})
			}
		}
	}

	// Dedup and sort adjacency; build the reverse graph the same way.
	nodeSet := make(map[*types.Func]bool)
	for fn := range declared {
		nodeSet[fn] = true
	}
	for from, tos := range rawEdges {
		g.callees[from] = g.sortFuncs(dedupFuncs(tos))
		nodeSet[from] = true
		for _, to := range g.callees[from] {
			g.callers[to] = append(g.callers[to], from)
			nodeSet[to] = true
		}
	}
	for to, froms := range g.callers {
		g.callers[to] = g.sortFuncs(dedupFuncs(froms))
	}
	for fn := range nodeSet {
		g.funcs = append(g.funcs, fn)
	}
	g.funcs = g.sortFuncs(g.funcs)
	return g
}

// Callees returns fn's statically resolved callees, sorted by position.
func (g *CallGraph) Callees(fn *types.Func) []*types.Func { return g.callees[fn] }

// Callers returns the functions with a static edge to fn, sorted by position.
func (g *CallGraph) Callers(fn *types.Func) []*types.Func { return g.callers[fn] }

// Funcs returns every node in the graph, sorted by declaration position.
func (g *CallGraph) Funcs() []*types.Func { return g.funcs }

// sortFuncs orders functions by (file, offset) of their declaration, with
// the full name as a tiebreak for objects synthesized without positions.
func (g *CallGraph) sortFuncs(fns []*types.Func) []*types.Func {
	sort.Slice(fns, func(i, j int) bool { return g.funcLess(fns[i], fns[j]) })
	return fns
}

func (g *CallGraph) funcLess(a, b *types.Func) bool {
	pa, pb := g.fset.Position(a.Pos()), g.fset.Position(b.Pos())
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	if pa.Offset != pb.Offset {
		return pa.Offset < pb.Offset
	}
	return a.FullName() < b.FullName()
}

func dedupFuncs(fns []*types.Func) []*types.Func {
	seen := make(map[*types.Func]bool, len(fns))
	out := fns[:0]
	for _, fn := range fns {
		if !seen[fn] {
			seen[fn] = true
			out = append(out, fn)
		}
	}
	return out
}
