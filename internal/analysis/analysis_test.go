package analysis_test

import (
	"go/ast"
	"strings"
	"testing"

	"mrm/internal/analysis"
)

// TestDirectiveDiagnostics: reason-less and unknown-name directives are
// themselves findings; well-formed ones are not.
func TestDirectiveDiagnostics(t *testing.T) {
	loader := analysis.NewLoader()
	pkgs, err := loader.LoadTree("testdata/src", "dirfix")
	if err != nil {
		t.Fatal(err)
	}
	diags := analysis.DirectiveDiagnostics(pkgs[0], map[string]bool{"nondet": true})
	if len(diags) != 2 {
		t.Fatalf("got %d directive diagnostics, want 2: %+v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "needs a reason") {
		t.Errorf("first diagnostic %q should demand a reason", diags[0].Message)
	}
	if !strings.Contains(diags[1].Message, "no known analyzer") {
		t.Errorf("second diagnostic %q should reject the unknown name", diags[1].Message)
	}
}

// TestLoadPatterns: the go list loader type-checks a real module package and
// resolves both stdlib and in-module imports.
func TestLoadPatterns(t *testing.T) {
	loader := analysis.NewLoader()
	pkgs, err := loader.LoadPatterns("../..", "./internal/fault")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Name != "fault" {
		t.Fatalf("unexpected packages: %+v", pkgs)
	}
	pkg := pkgs[0]
	if pkg.Types == nil || pkg.TypesInfo == nil || len(pkg.Syntax) == 0 {
		t.Fatal("package loaded without types or syntax")
	}
	// Uses must be populated: resolve some identifier to an object.
	found := false
	for _, f := range pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pkg.TypesInfo.Uses[id] != nil {
				found = true
			}
			return !found
		})
	}
	if !found {
		t.Fatal("TypesInfo.Uses is empty")
	}
}
