// Package genfix checks that the Loader type-checks generic declarations and
// that instantiated callees canonicalize to their origin objects.
package genfix

// Map is a generic helper the test resolves an instantiation of.
func Map[T, U any](xs []T, f func(T) U) []U {
	out := make([]U, 0, len(xs))
	for _, x := range xs {
		out = append(out, f(x))
	}
	return out
}

// Use instantiates Map implicitly.
func Use() []int {
	return Map([]string{"mrm"}, func(s string) int { return len(s) })
}
