// Package mid relays the leaf fact one package up without containing the
// marker construct itself.
package mid

import "factflow/leaf"

// Mid inherits leaf.Leaf's fact through propagation.
func Mid() string {
	return leaf.Leaf()
}

// Pure calls only the clean helper.
func Pure() string {
	return leaf.Clean()
}
