// Package top is the test analyzer's reporting scope: laundered facts from
// leaf, two packages down, must surface at the call sites here.
package top

import "factflow/mid"

// Top calls the relay; the test expects a diagnostic on the call.
func Top() string {
	return mid.Mid()
}

// Quiet calls only the pure relay; no diagnostic.
func Quiet() string {
	return mid.Pure()
}
