// Package leaf holds the fact roots for the program_test propagation fixture.
package leaf

// Leaf contains the marker construct the test analyzer attaches a fact to.
func Leaf() string {
	return "TAINT"
}

// Clean carries no fact.
func Clean() string {
	return "ok"
}
