// Package stalefix exercises the staleallow waiver lifecycle: one directive
// that still suppresses a finding (live) and one on clean code (stale).
package stalefix

// Live returns the marker string; the directive suppresses the test
// analyzer's finding and is therefore not stale.
func Live() string {
	return "TAINT" //mrm:allow-marker fixture: the waiver still earns its keep
}

// Stale is clean code under a waiver: the directive suppresses nothing and
// the staleallow post-pass must flag it.
func Stale() string {
	return "ok" //mrm:allow-marker fixture: the marker this excused is long gone
}
