// Package tagged checks the Loader's build-constraint filtering: the sibling
// file is excluded by its //go:build line; if it were loaded, the duplicate
// declaration of Answer would fail type-checking.
package tagged

// Answer is declared once in the files the Loader keeps.
func Answer() int {
	return 42
}
