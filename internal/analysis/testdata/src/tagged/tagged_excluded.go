//go:build mrm_never_enabled

// This file is excluded by its build constraint; loading it anyway would
// redeclare Answer and break the type-check.
package tagged

func Answer() int {
	return 7
}
