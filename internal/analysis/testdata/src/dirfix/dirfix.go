// Package dirfix exercises directive validation: a reason-less directive and
// an unknown analyzer name are both diagnostics.
package dirfix

func a() int {
	return 1 //mrm:allow-nondet
}

func b() int {
	return 2 //mrm:allow-bogus because reasons
}

func c() int {
	return 3 //mrm:allow-nondet fine: has a reason
}
