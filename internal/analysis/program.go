package analysis

import (
	"fmt"
	"go/types"
	"sort"
	"strings"
)

// A Program is the whole-program view an interprocedural run works in: the
// loaded packages, their shared call graph, and, per analyzer, the function
// facts after caller-ward propagation. Build one over every package the
// Loader has loaded (dependencies included) and run analyzers through it; a
// fact attached to a helper three packages away then surfaces at the call
// site in the analyzer's scope.
type Program struct {
	Pkgs  []*Pkg
	Graph *CallGraph

	// facts[analyzer][fn][fact] is the next hop toward the fact's root
	// (nil when fn contains the root construct itself).
	facts map[*Analyzer]map[*types.Func]map[Fact]*types.Func
	// dirs caches each package's directive index so suppression marks
	// accumulate across analyzers — the staleallow pass reads the tallies.
	dirs map[*Pkg]*directiveIndex
}

// NewProgram builds the call graph over pkgs and returns a ready Program.
// The packages must come from one Loader (shared FileSet and type identity).
func NewProgram(pkgs []*Pkg) *Program {
	sorted := make([]*Pkg, len(pkgs))
	copy(sorted, pkgs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].PkgPath < sorted[j].PkgPath })
	return &Program{
		Pkgs:  sorted,
		Graph: buildCallGraph(sorted),
		facts: make(map[*Analyzer]map[*types.Func]map[Fact]*types.Func),
		dirs:  make(map[*Pkg]*directiveIndex),
	}
}

// Run executes a on pkg within the program: facts are computed and propagated
// on first use, diagnostics waived by //mrm:allow-<name> directives are
// dropped (and the directive marked used), and the survivors come back sorted
// by position.
func (p *Program) Run(a *Analyzer, pkg *Pkg) ([]Diagnostic, error) {
	if err := p.ensureFacts(a); err != nil {
		return nil, err
	}
	pass := p.newPass(a, pkg)
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
	}
	idx := p.directives(pkg)
	kept := pass.diags[:0]
	for _, d := range pass.diags {
		if !idx.allows(a.Name, d.Position, d.Pos) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return posLess(kept[i].Position, kept[j].Position) })
	return kept, nil
}

func (p *Program) newPass(a *Analyzer, pkg *Pkg) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Syntax,
		Pkg:       pkg.Types,
		PkgPath:   pkg.PkgPath,
		TypesInfo: pkg.TypesInfo,
		Program:   p,
	}
}

// directives returns pkg's shared directive index, creating it on first use.
func (p *Program) directives(pkg *Pkg) *directiveIndex {
	idx, ok := p.dirs[pkg]
	if !ok {
		idx = indexDirectives(pkg)
		p.dirs[pkg] = idx
	}
	return idx
}

// factEligible reports whether a's facts may originate in or relay through
// functions of the given package: not in a boundary package (designated
// impure) and not in the analyzer's reporting scope (a direct finding there
// is already reported at its own site, so relaying it caller-ward would
// report the same root twice).
func factEligible(a *Analyzer, pkgPath string) bool {
	if a.Boundary != nil && a.Boundary(pkgPath) {
		return false
	}
	if a.Scope != nil && a.Scope(pkgPath) {
		return false
	}
	return true
}

// ensureFacts computes and propagates a's facts over the whole program once.
func (p *Program) ensureFacts(a *Analyzer) error {
	if a.Facts == nil {
		return nil
	}
	if _, done := p.facts[a]; done {
		return nil
	}
	flows := make(map[*types.Func]map[Fact]*types.Func)
	p.facts[a] = flows

	// Direct facts, with waived roots dropped: an //mrm:allow-<name>
	// directive on the root construct is a reviewed judgment that the site
	// preserves the invariant, so nothing propagates from it — and the
	// directive counts as used even though the root itself is outside the
	// reporting scope and never produced a diagnostic of its own.
	for _, pkg := range p.Pkgs {
		if !factEligible(a, pkg.PkgPath) {
			continue
		}
		idx := p.directives(pkg)
		for fn, facts := range a.Facts(p.newPass(a, pkg)) {
			fn = fn.Origin()
			for _, f := range facts {
				pos := pkg.Fset.Position(f.Pos)
				if idx.allows(a.Name, pos, f.Pos) {
					continue
				}
				if flows[fn] == nil {
					flows[fn] = make(map[Fact]*types.Func)
				}
				flows[fn][f] = nil
			}
		}
	}

	// Propagate caller-ward to a fixed point. The worklist pops the
	// position-least function each round and callers are visited in sorted
	// order, so the first-writer-wins Via hop is deterministic.
	var work []*types.Func
	inWork := make(map[*types.Func]bool)
	push := func(fn *types.Func) {
		if !inWork[fn] {
			inWork[fn] = true
			work = append(work, fn)
		}
	}
	for _, fn := range p.Graph.Funcs() {
		if len(flows[fn]) > 0 {
			push(fn)
		}
	}
	for len(work) > 0 {
		sort.Slice(work, func(i, j int) bool { return p.Graph.funcLess(work[i], work[j]) })
		fn := work[0]
		work = work[1:]
		inWork[fn] = false
		keys := sortedFacts(flows[fn])
		for _, caller := range p.Graph.Callers(fn) {
			if caller.Pkg() == nil || !factEligible(a, caller.Pkg().Path()) {
				continue
			}
			changed := false
			for _, f := range keys {
				if _, ok := flows[caller][f]; ok {
					continue
				}
				if flows[caller] == nil {
					flows[caller] = make(map[Fact]*types.Func)
				}
				flows[caller][f] = fn
				changed = true
			}
			if changed {
				push(caller)
			}
		}
	}
	return nil
}

// sortedFacts orders a fact set by (position, kind, detail).
func sortedFacts(m map[Fact]*types.Func) []Fact {
	out := make([]Fact, 0, len(m))
	for f := range m {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Detail < out[j].Detail
	})
	return out
}

// FlowFacts returns the propagated facts of fn for analyzer a, sorted.
// Empty for functions outside the fact domain and for analyzers without a
// Facts hook.
func (p *Program) FlowFacts(a *Analyzer, fn *types.Func) []FlowFact {
	if fn == nil {
		return nil
	}
	m := p.facts[a][fn.Origin()]
	if len(m) == 0 {
		return nil
	}
	out := make([]FlowFact, 0, len(m))
	for _, f := range sortedFacts(m) {
		out = append(out, FlowFact{Fact: f, Via: m[f]})
	}
	return out
}

// Chain reconstructs the call chain from fn to the root of f: the functions
// visited, starting with fn itself and ending with the function that contains
// the root construct.
func (p *Program) Chain(a *Analyzer, fn *types.Func, f FlowFact) []*types.Func {
	chain := []*types.Func{fn.Origin()}
	cur := f.Via
	for cur != nil && len(chain) < 64 {
		chain = append(chain, cur)
		cur = p.facts[a][cur][f.Fact]
	}
	return chain
}

// ChainString renders a Chain as "a.F → b.G" for diagnostics.
func (p *Program) ChainString(a *Analyzer, fn *types.Func, f FlowFact) string {
	var parts []string
	for _, fn := range p.Chain(a, fn, f) {
		parts = append(parts, FuncDisplayName(fn))
	}
	return strings.Join(parts, " → ")
}

// FuncDisplayName renders fn compactly for diagnostics: pkg.Name for
// top-level functions, pkg.Recv.Name for methods.
func FuncDisplayName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			name = n.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

// StaleDirectives is the staleallow post-pass: after every enabled analyzer
// has run over every target package through this Program, it flags the
// well-formed //mrm:allow-<name> directives in pkg that suppressed nothing —
// neither a diagnostic nor a fact root. ran lists the analyzer names that
// actually executed, so a subset run (-only) never condemns a directive whose
// analyzer sat the round out.
func (p *Program) StaleDirectives(pkg *Pkg, ran map[string]bool) []Diagnostic {
	idx := p.directives(pkg)
	var out []Diagnostic
	pass := &Pass{Analyzer: StaleAllow, Fset: pkg.Fset}
	for _, u := range idx.uses {
		if u.used || !ran[u.d.Name] || u.d.Reason == "" {
			continue
		}
		pass.Reportf(u.d.Pos,
			"//mrm:allow-%s suppressed no findings in this run: the code under the waiver was fixed or removed, delete the directive (reason was: %s)",
			u.d.Name, u.d.Reason)
	}
	out = append(out, pass.diags...)
	sort.Slice(out, func(i, j int) bool { return posLess(out[i].Position, out[j].Position) })
	return out
}

// StaleAllow is the waiver-lifecycle pseudo-analyzer. It has no Run of its
// own: the multichecker invokes Program.StaleDirectives after all other
// analyzers have reported, flagging //mrm:allow directives that no longer
// suppress anything so waivers cannot quietly outlive the code they excused.
var StaleAllow = &Analyzer{
	Name: "staleallow",
	Doc: "flags //mrm:allow-<analyzer> directives that suppressed zero diagnostics " +
		"(and gated zero fact roots) in the run: stale waivers rot into misleading " +
		"documentation; delete them when the code under them is fixed",
}
