// Package mutexguard enforces `// guarded by <mu>` field comments: every
// access to a guarded struct field must be preceded, in the same function, by
// Lock or RLock on the named mutex of the same instance. Functions whose name
// ends in "Locked" declare the caller-holds-the-lock convention and are
// exempt. The check is positional (a Lock anywhere earlier in the function
// satisfies it), which is deliberately weaker than a lockset analysis but
// catches the real failure mode — a new method reading shared state with no
// locking at all — without false-positive noise.
package mutexguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"mrm/internal/analysis"
)

// Analyzer enforces guarded-by field comments.
var Analyzer = &analysis.Analyzer{
	Name: "mutexguard",
	Doc: "flags reads/writes of struct fields documented `// guarded by mu` from " +
		"functions that never acquire that mutex on the same instance; name the " +
		"function *Locked or waive with //mrm:allow-mutexguard <reason>",
	Run: run,
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

// guardInfo records, for one guarded field object, the name of its mutex.
type guardInfo struct {
	mutex string
}

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			checkFunc(pass, fd, guards)
		}
	}
	return nil
}

// collectGuards parses guarded-by comments on struct fields, validating that
// the named guard is a sibling mutex field.
func collectGuards(pass *analysis.Pass) map[types.Object]guardInfo {
	guards := make(map[types.Object]guardInfo)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			mutexes := make(map[string]bool)
			for _, field := range st.Fields.List {
				t := pass.TypesInfo.TypeOf(field.Type)
				if t != nil && isMutex(t) {
					for _, name := range field.Names {
						mutexes[name.Name] = true
					}
				}
			}
			for _, field := range st.Fields.List {
				mu := guardComment(field)
				if mu == "" {
					continue
				}
				if !mutexes[mu] {
					pass.Reportf(field.Pos(),
						"guarded-by comment names %q, which is not a sync.Mutex/RWMutex field of this struct", mu)
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = guardInfo{mutex: mu}
					}
				}
			}
			return true
		})
	}
	return guards
}

func guardComment(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func isMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	s := types.TypeString(t, nil)
	return s == "sync.Mutex" || s == "sync.RWMutex"
}

// lockCall matches <path>.<mu>.Lock() / RLock() and returns (path, mu).
func lockCall(call *ast.CallExpr) (base, mutex string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
		return "", "", false
	}
	inner, isSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	base = analysis.PathString(inner.X)
	if base == "" {
		return "", "", false
	}
	return base, inner.Sel.Name, true
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, guards map[types.Object]guardInfo) {
	// First pass: collect lock acquisitions with their positions.
	type acq struct {
		base, mutex string
		pos         token.Pos
	}
	var locks []acq
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if base, mu, ok := lockCall(call); ok {
				locks = append(locks, acq{base: base, mutex: mu, pos: call.Pos()})
			}
		}
		return true
	})
	held := func(base, mutex string, before token.Pos) bool {
		for _, l := range locks {
			if l.base == base && l.mutex == mutex && l.pos < before {
				return true
			}
		}
		return false
	}
	// Second pass: check guarded field accesses.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection := pass.TypesInfo.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return true
		}
		g, guarded := guards[selection.Obj()]
		if !guarded {
			return true
		}
		base := analysis.PathString(sel.X)
		if base == "" {
			return true // computed bases (m[k].f, f().x) are beyond this check
		}
		if !held(base, g.mutex, sel.Pos()) {
			pass.Reportf(sel.Pos(),
				"%s.%s is guarded by %s.%s, but this function never calls %s.%s.Lock or RLock before the access",
				base, selection.Obj().Name(), base, g.mutex, base, g.mutex)
		}
		return true
	})
}
