// Package a is a mutexguard fixture: guarded fields accessed with and
// without their lock, the *Locked naming convention, multi-instance locking,
// and a bad guarded-by comment.
package a

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
	// hits is also shared state.
	hits int // guarded by mu

	immutable int // set at construction, no guard needed
}

func (c *counter) Bad() int {
	return c.n // want `guarded by c.mu`
}

func (c *counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) GoodTwo() {
	c.mu.Lock()
	c.n++
	c.hits++
	c.mu.Unlock()
}

func (c *counter) valueLocked() int {
	return c.n // *Locked suffix: caller holds the lock
}

func (c *counter) Immutable() int {
	return c.immutable // unguarded field: fine
}

func (c *counter) Waived() int {
	return c.n //mrm:allow-mutexguard fixture: snapshot tolerates a torn read
}

// merge folds other into c: both instances must be locked.
func merge(c, other *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += other.n // want `guarded by other.mu`
}

func mergeLocked2(c, other *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	other.mu.Lock()
	defer other.mu.Unlock()
	c.n += other.n
}

type badGuard struct {
	lock sync.Mutex
	// guarded by mutex
	n int // want `guarded-by comment names "mutex"`
}
