package mutexguard_test

import (
	"testing"

	"mrm/internal/analysis/analysistest"
	"mrm/internal/analysis/mutexguard"
)

func TestMutexguard(t *testing.T) {
	analysistest.Run(t, "testdata", mutexguard.Analyzer, "a")
}
