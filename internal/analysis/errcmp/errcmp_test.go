package errcmp_test

import (
	"testing"

	"mrm/internal/analysis/analysistest"
	"mrm/internal/analysis/errcmp"
)

func TestErrcmp(t *testing.T) {
	analysistest.Run(t, "testdata", errcmp.Analyzer, "errfix")
}
