// Package errfix is the errcmp fixture: sentinel identity comparisons and
// %v/%s-flattened causes are flagged; errors.Is, nil checks, %w, and waived
// sites are not.
package errfix

import (
	"errors"
	"fmt"
	"io"
)

// ErrExpired is a local sentinel.
var ErrExpired = errors.New("lease expired")

func compare(err error) int {
	if err == ErrExpired { // want `== compares error identity against sentinel ErrExpired and misses wrapped causes: use errors.Is\(err, ErrExpired\)`
		return 1
	}
	if err != io.EOF { // want `!= compares error identity against sentinel EOF and misses wrapped causes: use errors.Is\(err, EOF\)`
		return 2
	}
	if io.EOF == err { // want `== compares error identity against sentinel EOF`
		return 3
	}
	return 0
}

func blessed(err error) int {
	if err == nil { // nil check: fine
		return 0
	}
	if errors.Is(err, ErrExpired) { // the recommended form
		return 1
	}
	other := errors.New("local")
	if err == other { // not a package-level sentinel: out of scope
		return 2
	}
	return 3
}

func classify(err error) string {
	switch err {
	case nil:
		return "ok"
	case ErrExpired: // want `switch case matches error identity against sentinel ErrExpired and misses wrapped causes: use if errors.Is\(err, ErrExpired\)`
		return "expired"
	case io.EOF: // want `switch case matches error identity against sentinel EOF`
		return "eof"
	default:
		return "other"
	}
}

func wrap(err error, line int) error {
	return fmt.Errorf("line %d: %v", line, err) // want `fmt.Errorf flattens an error cause with %v, cutting the Unwrap chain: use %w so callers can errors.Is/errors.As it`
}

func wrapString(err error) error {
	return fmt.Errorf("cause: %s", err) // want `fmt.Errorf flattens an error cause with %s`
}

func wrapIndexed(err error) error {
	return fmt.Errorf("%[2]d: %[1]v", err, 7) // want `fmt.Errorf flattens an error cause with %v`
}

func wrapStar(err error, w int) error {
	return fmt.Errorf("%*d %v", w, 3, err) // want `fmt.Errorf flattens an error cause with %v`
}

func wrapGood(err error, line int) error {
	return fmt.Errorf("line %d: %w", line, err) // %w preserves the chain: fine
}

func wrapValue(line int) error {
	return fmt.Errorf("line %d: %v", line, "text") // %v on a non-error: fine
}

func wrapDynamic(err error, format string) error {
	return fmt.Errorf(format, err) // non-constant format: not parsed
}

// deliberate flattens on purpose: the waiver records the reviewed judgment.
func deliberate(err error) error {
	return fmt.Errorf("terminal: %v", err) //mrm:allow-errcmp fixture: flattening is the point, callers must not retry this
}
