// Package errcmp enforces the repo's error-matching discipline. The serving
// layer's retry classifier and the fault pipeline both depend on wrapped
// errors staying matchable: Retryable walks chains with errors.Is, and trace
// replay distinguishes parse failures by unwrapping. Two habits silently
// break that:
//
//   - comparing an error against a package-level sentinel with == or != (or a
//     switch case), which matches identity and misses every wrapped cause;
//   - formatting a cause into fmt.Errorf with %v or %s, which flattens it to
//     text and cuts the Unwrap chain that errors.Is/errors.As need.
//
// errcmp flags both. Nil checks (err == nil), errors.Is/As calls, and %w are
// the blessed forms and never flagged. Deliberate identity comparisons — the
// rare cases where a flattened cause is the point — carry
// //mrm:allow-errcmp <reason>.
package errcmp

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"

	"mrm/internal/analysis"
)

// Analyzer flags sentinel identity comparisons and %v/%s-flattened causes.
var Analyzer = &analysis.Analyzer{
	Name: "errcmp",
	Doc: "flags ==/!=/switch comparisons of errors against sentinel values (use " +
		"errors.Is, which matches wrapped causes) and fmt.Errorf %v/%s applied to an " +
		"error (use %w, which preserves the Unwrap chain); waive a deliberate " +
		"identity match with //mrm:allow-errcmp <reason>",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkBinary(pass, n)
			case *ast.SwitchStmt:
				checkSwitch(pass, n)
			case *ast.CallExpr:
				checkErrorf(pass, n)
			}
			return true
		})
	}
	return nil
}

// sentinel returns the package-level error variable e refers to, if any:
// the io.EOF / fault.ErrUncorrectable shape — a *types.Var at package scope
// whose type implements error.
func sentinel(info *types.Info, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !analysis.IsErrorType(v.Type()) {
		return nil
	}
	return v
}

// isErrorExpr reports whether e is error-typed (not untyped nil).
func isErrorExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	return t != nil && analysis.IsErrorType(t)
}

func checkBinary(pass *analysis.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if !isErrorExpr(pass.TypesInfo, be.X) || !isErrorExpr(pass.TypesInfo, be.Y) {
		return // err == nil and friends: nil is untyped, not error-typed
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		if v := sentinel(pass.TypesInfo, side); v != nil {
			pass.Reportf(be.Pos(),
				"%s compares error identity against sentinel %s and misses wrapped causes: use errors.Is(err, %s)",
				be.Op, v.Name(), v.Name())
			return
		}
	}
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil || !isErrorExpr(pass.TypesInfo, sw.Tag) {
		return
	}
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if v := sentinel(pass.TypesInfo, e); v != nil {
				pass.Reportf(e.Pos(),
					"switch case matches error identity against sentinel %s and misses wrapped causes: use if errors.Is(err, %s)",
					v.Name(), v.Name())
			}
		}
	}
}

// checkErrorf flags fmt.Errorf calls whose format string applies %v or %s to
// an error-typed argument: the cause is flattened to text and the Unwrap
// chain is cut. %w is the preserving form.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return // non-constant format string: nothing to parse
	}
	format := constant.StringVal(tv.Value)
	args := call.Args[1:]
	for _, v := range parseVerbs(format) {
		if v.verb != 'v' && v.verb != 's' {
			continue
		}
		if v.arg >= len(args) {
			continue // malformed format: vet territory, not ours
		}
		arg := args[v.arg]
		if isErrorExpr(pass.TypesInfo, arg) {
			pass.Reportf(arg.Pos(),
				"fmt.Errorf flattens an error cause with %%%c, cutting the Unwrap chain: use %%w so callers can errors.Is/errors.As it",
				v.verb)
		}
	}
}

// verbRef is one formatting verb and the operand index it consumes.
type verbRef struct {
	verb rune
	arg  int
}

// parseVerbs walks a fmt format string and pairs each verb with the operand
// index it will format, tracking '*' width/precision operands and explicit
// [n] argument indexes the way the fmt package does.
func parseVerbs(format string) []verbRef {
	var out []verbRef
	arg := 0
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		if i >= len(runes) {
			break
		}
		if runes[i] == '%' {
			continue // literal percent
		}
		// Flags.
		for i < len(runes) && (runes[i] == '+' || runes[i] == '-' || runes[i] == '#' ||
			runes[i] == ' ' || runes[i] == '0') {
			i++
		}
		// Width, possibly '*' (consumes an operand).
		for i < len(runes) && runes[i] >= '0' && runes[i] <= '9' {
			i++
		}
		if i < len(runes) && runes[i] == '*' {
			arg++
			i++
		}
		// Precision.
		if i < len(runes) && runes[i] == '.' {
			i++
			for i < len(runes) && runes[i] >= '0' && runes[i] <= '9' {
				i++
			}
			if i < len(runes) && runes[i] == '*' {
				arg++
				i++
			}
		}
		// Explicit argument index: %[n]v.
		if i < len(runes) && runes[i] == '[' {
			j := i + 1
			for j < len(runes) && runes[j] != ']' {
				j++
			}
			if j < len(runes) {
				if n, err := strconv.Atoi(string(runes[i+1 : j])); err == nil && n >= 1 {
					arg = n - 1
				}
				i = j + 1
			}
		}
		if i >= len(runes) {
			break
		}
		out = append(out, verbRef{verb: runes[i], arg: arg})
		arg++
	}
	return out
}
