// Package ctxflow enforces context discipline in the nondeterministic shell
// (internal/server, cmd/mrmd) — the one layer of the repo that is allowed to
// block, and therefore the one layer where a dropped context turns a drain
// deadline into a hang. Three rules:
//
//   - a function that takes a context.Context takes it first, per Go
//     convention, so call sites and wrappers stay uniform;
//   - contexts are not stored in struct fields: a field outlives any single
//     call and decouples cancellation from the request it belongs to (the
//     rare deliberate lifetime-context field carries //mrm:allow-ctxflow);
//   - a function that receives a ctx threads it: calling
//     context.Background()/TODO(), or a blocking method's context-less
//     variant when a ...Context sibling exists (Sim.Run vs Sim.RunContext),
//     detaches the work from the caller's deadline.
//
// The analyzer is scoped to the shell; simulation code takes no contexts at
// all (nondet polices its blocking constructs instead).
package ctxflow

import (
	"go/ast"
	"go/types"

	"mrm/internal/analysis"
)

// Analyzer enforces shell context discipline.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "in shell packages (internal/server, cmd/mrmd): context parameters come " +
		"first, contexts are not stored in struct fields, and a received ctx must " +
		"reach blocking calls — no context.Background()/TODO() and no context-less " +
		"variant of a method with a ...Context sibling; waive a deliberate " +
		"lifetime context with //mrm:allow-ctxflow <reason>",
	Run: run,
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func run(pass *analysis.Pass) error {
	if !analysis.IsShellPackage(pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				checkFunc(pass, decl)
			case *ast.GenDecl:
				checkStructFields(pass, decl)
			}
		}
	}
	return nil
}

// checkStructFields flags context.Context stored in struct fields.
func checkStructFields(pass *analysis.Pass, decl *ast.GenDecl) {
	for _, spec := range decl.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, field := range st.Fields.List {
			t := pass.TypesInfo.TypeOf(field.Type)
			if t == nil || !isContextType(t) {
				continue
			}
			name := "(embedded)"
			if len(field.Names) > 0 {
				name = field.Names[0].Name
			}
			pass.Reportf(field.Pos(),
				"context.Context stored in struct field %s outlives any one call and detaches cancellation from the request: pass ctx as a parameter", name)
		}
	}
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	sig, _ := pass.TypesInfo.TypeOf(fd.Name).(*types.Signature)
	if sig == nil {
		return
	}
	// Rule 1: a context parameter comes first.
	hasCtx := false
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			hasCtx = true
			if i > 0 {
				pass.Reportf(sig.Params().At(i).Pos(),
					"context.Context is parameter %d of %s: contexts come first so wrappers and call sites stay uniform", i+1, fd.Name.Name)
			}
		}
	}
	if fd.Body == nil || !hasCtx {
		return
	}
	// The threading rules apply only inside functions that received a ctx:
	// a fresh Background() at the top of main or a constructor is legitimate.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
			(fn.Name() == "Background" || fn.Name() == "TODO") {
			pass.Reportf(call.Pos(),
				"context.%s() inside a function that receives a ctx detaches the work from the caller's deadline: thread the ctx through", fn.Name())
			return true
		}
		if sibling := contextSibling(fn); sibling != nil && sibling != obj {
			pass.Reportf(call.Pos(),
				"call to %s discards the received ctx: use %s so cancellation reaches the blocking call",
				analysis.FuncDisplayName(fn), analysis.FuncDisplayName(sibling))
		}
		return true
	})
}

// contextSibling returns the <Name>Context variant of method fn — a method on
// the same receiver type whose first parameter is a context.Context — or nil.
// A method that already takes a context has no work to hand off.
func contextSibling(fn *types.Func) *types.Func {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	if sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type()) {
		return nil
	}
	obj, _, _ := types.LookupFieldOrMethod(sig.Recv().Type(), true, fn.Pkg(), fn.Name()+"Context")
	sib, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	sibSig, ok := sib.Type().(*types.Signature)
	if !ok || sibSig.Params().Len() == 0 || !isContextType(sibSig.Params().At(0).Type()) {
		return nil
	}
	return sib
}
