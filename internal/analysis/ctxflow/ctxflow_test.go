package ctxflow_test

import (
	"testing"

	"mrm/internal/analysis/analysistest"
	"mrm/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	// sim/internal/server matches the shell scope; sim/internal/engine does
	// not, and must stay silent despite containing the same shapes.
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "sim/internal/server", "sim/internal/engine")
}
