// Package server is the ctxflow fixture: a stand-in for the real serving
// shell, where every rule of context discipline applies.
package server

import (
	"context"
	"time"
)

// Sim mimics a blocking engine with paired context-less/context-ful entry
// points, like the real Sim.Run / Sim.RunContext.
type Sim struct{}

// Run blocks with no cancellation path.
func (s *Sim) Run(steps int) int { return steps }

// RunContext is the cancellable variant; calling s.Run from here is how the
// pair is implemented and must not be flagged.
func (s *Sim) RunContext(ctx context.Context, steps int) int {
	select {
	case <-ctx.Done():
		return 0
	default:
	}
	return s.Run(steps)
}

// Server stores configuration; storing a context would detach cancellation.
type Server struct {
	sim     *Sim
	timeout time.Duration
	ctx     context.Context // want `context.Context stored in struct field ctx outlives any one call and detaches cancellation from the request: pass ctx as a parameter`
}

// lifetime is the reviewed exception: the waiver records why.
type lifetime struct {
	//mrm:allow-ctxflow fixture: process-lifetime context, applied between batches only
	runCtx context.Context
}

func ctxLast(steps int, ctx context.Context) int { // want `context.Context is parameter 2 of ctxLast: contexts come first so wrappers and call sites stay uniform`
	return steps
}

func ctxFirst(ctx context.Context, steps int) int { // correct order: fine
	return steps
}

func detached(ctx context.Context, s *Sim) int {
	c, cancel := context.WithTimeout(context.Background(), time.Second) // want `context.Background\(\) inside a function that receives a ctx detaches the work from the caller's deadline: thread the ctx through`
	defer cancel()
	<-c.Done()
	return s.RunContext(c, 1)
}

func todo(ctx context.Context) context.Context {
	return context.TODO() // want `context.TODO\(\) inside a function that receives a ctx detaches the work from the caller's deadline: thread the ctx through`
}

func dropped(ctx context.Context, s *Sim) int {
	return s.Run(3) // want `call to server.Sim.Run discards the received ctx: use server.Sim.RunContext so cancellation reaches the blocking call`
}

func threaded(ctx context.Context, s *Sim) int {
	return s.RunContext(ctx, 3) // the blessed form
}

// boot has no ctx parameter: Background at the root is legitimate.
func boot(s *Sim) int {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	return s.RunContext(ctx, 1)
}
