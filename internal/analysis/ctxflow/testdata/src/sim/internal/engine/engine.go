// Package engine is outside the shell: ctxflow must produce no diagnostics
// here even though the same shapes appear (nondet polices this layer).
package engine

import "context"

type holder struct {
	ctx context.Context // out of scope: no finding
}

func ctxLast(steps int, ctx context.Context) int { // out of scope: no finding
	return steps
}
