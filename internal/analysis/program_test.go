package analysis_test

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"mrm/internal/analysis"
)

// newMarkerAnalyzer builds a minimal interprocedural analyzer for framework
// tests: the "marker construct" is the string literal "TAINT". Functions
// containing one get a fact; scoped packages report both direct literals and
// laundered facts at call sites, mirroring how nondet and seedpurity use the
// framework.
func newMarkerAnalyzer() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name:  "marker",
		Doc:   "test analyzer: flags the TAINT literal, directly and through helpers",
		Scope: func(path string) bool { return path == "factflow/top" || path == "stalefix" },
	}
	isMarker := func(n ast.Node) (token.Pos, bool) {
		lit, ok := n.(*ast.BasicLit)
		if ok && lit.Kind == token.STRING && lit.Value == `"TAINT"` {
			return lit.Pos(), true
		}
		return token.NoPos, false
	}
	a.Facts = func(pass *analysis.Pass) map[*types.Func][]analysis.Fact {
		out := make(map[*types.Func][]analysis.Fact)
		analysis.ForEachFuncDecl(pass, func(obj *types.Func, fd *ast.FuncDecl) {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if pos, ok := isMarker(n); ok {
					out[obj] = append(out[obj], analysis.Fact{Kind: "marker", Pos: pos, Detail: "TAINT literal"})
				}
				return true
			})
		})
		return out
	}
	a.Run = func(pass *analysis.Pass) error {
		if !a.Scope(pass.PkgPath) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if pos, ok := isMarker(n); ok {
					pass.Reportf(pos, "marker literal in scoped code")
					return true
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := analysis.Callee(pass.TypesInfo, call)
				for _, ff := range pass.Program.FlowFacts(a, callee) {
					pass.Reportf(call.Pos(), "call to %s reaches %s (%s)",
						analysis.FuncDisplayName(callee), ff.Fact.Detail,
						pass.Program.ChainString(a, callee, ff))
				}
				return true
			})
		}
		return nil
	}
	return a
}

// runMarker loads path from testdata/src into a fresh Program and runs the
// marker analyzer over it, returning the program, the package, and the
// formatted diagnostics.
func runMarker(t *testing.T, path string) (*analysis.Program, *analysis.Pkg, []string) {
	t.Helper()
	loader := analysis.NewLoader()
	pkgs, err := loader.LoadTree("testdata/src", path)
	if err != nil {
		t.Fatal(err)
	}
	prog := analysis.NewProgram(loader.Loaded())
	diags, err := prog.Run(newMarkerAnalyzer(), pkgs[0])
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, d := range diags {
		out = append(out, fmt.Sprintf("%s:%d:%d: %s", d.Position.Filename, d.Position.Line, d.Position.Column, d.Message))
	}
	return prog, pkgs[0], out
}

// TestFactPropagation: a fact rooted two packages below the scope surfaces at
// the scoped call site with the full helper chain, pure paths stay silent,
// and the whole pipeline is deterministic across independent loads.
func TestFactPropagation(t *testing.T) {
	prog, _, diags := runMarker(t, "factflow/top")
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	want := "call to mid.Mid reaches TAINT literal (mid.Mid → leaf.Leaf)"
	if !strings.Contains(diags[0], want) {
		t.Errorf("diagnostic %q does not contain %q", diags[0], want)
	}

	// The call graph agrees: leaf.Leaf's sole caller is mid.Mid.
	var leafPkg *analysis.Pkg
	for _, p := range prog.Pkgs {
		if p.PkgPath == "factflow/leaf" {
			leafPkg = p
		}
	}
	if leafPkg == nil {
		t.Fatal("factflow/leaf not loaded as a dependency")
	}
	leafFn, _ := leafPkg.Types.Scope().Lookup("Leaf").(*types.Func)
	if leafFn == nil {
		t.Fatal("leaf.Leaf not found")
	}
	callers := prog.Graph.Callers(leafFn)
	if len(callers) != 1 || analysis.FuncDisplayName(callers[0]) != "mid.Mid" {
		t.Errorf("Callers(leaf.Leaf) = %v, want [mid.Mid]", callers)
	}

	// Determinism: an independent load and run produces identical output.
	_, _, again := runMarker(t, "factflow/top")
	if strings.Join(diags, "\n") != strings.Join(again, "\n") {
		t.Errorf("two runs disagree:\n%v\n---\n%v", diags, again)
	}
}

// TestStaleDirectives: a directive that suppressed a finding is live; one on
// clean code is flagged by the staleallow post-pass — but only when its
// analyzer actually ran.
func TestStaleDirectives(t *testing.T) {
	prog, pkg, diags := runMarker(t, "stalefix")
	if len(diags) != 0 {
		t.Fatalf("waived fixture produced diagnostics: %v", diags)
	}
	stale := prog.StaleDirectives(pkg, map[string]bool{"marker": true})
	if len(stale) != 1 {
		t.Fatalf("got %d stale directives, want 1: %+v", len(stale), stale)
	}
	if !strings.Contains(stale[0].Message, "suppressed no findings") ||
		!strings.Contains(stale[0].Message, "the marker this excused is long gone") {
		t.Errorf("stale message %q should name the lifecycle and echo the reason", stale[0].Message)
	}
	if got := stale[0].Analyzer; got != "staleallow" {
		t.Errorf("stale diagnostic attributed to %q, want staleallow", got)
	}
	// A subset run that skipped the analyzer must not condemn its waivers.
	if skipped := prog.StaleDirectives(pkg, map[string]bool{}); len(skipped) != 0 {
		t.Errorf("StaleDirectives flagged waivers of an analyzer that did not run: %+v", skipped)
	}
}

// TestLoadTreeBuildTags: files excluded by //go:build constraints are dropped
// before parsing; loading succeeds where including them would redeclare.
func TestLoadTreeBuildTags(t *testing.T) {
	loader := analysis.NewLoader()
	pkgs, err := loader.LoadTree("testdata/src", "tagged")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs[0].Syntax) != 1 {
		t.Fatalf("got %d files, want 1 (tagged_excluded.go must be filtered)", len(pkgs[0].Syntax))
	}
}

// TestGenericInstantiation: Callee canonicalizes instantiated generic callees
// to their origin object, so facts attached to the origin are found.
func TestGenericInstantiation(t *testing.T) {
	loader := analysis.NewLoader()
	pkgs, err := loader.LoadTree("testdata/src", "genfix")
	if err != nil {
		t.Fatal(err)
	}
	pkg := pkgs[0]
	origin, _ := pkg.Types.Scope().Lookup("Map").(*types.Func)
	if origin == nil {
		t.Fatal("genfix.Map not found")
	}
	var resolved *types.Func
	for _, f := range pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := analysis.Callee(pkg.TypesInfo, call); fn != nil && fn.Name() == "Map" {
				resolved = fn
			}
			return true
		})
	}
	if resolved != origin {
		t.Fatalf("instantiated callee resolved to %v, want the origin %v", resolved, origin)
	}
}
