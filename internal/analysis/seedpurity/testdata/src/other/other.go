// Package other is outside seedpurity's scope: impurity here is not flagged.
package other

var counter int

func bump() int {
	counter++
	return counter
}
