// Package fault is a seedpurity fixture standing in for the real
// internal/fault: decision paths must be pure in (seed, stream, event).
package fault

import "errors"

// ErrLost is an error sentinel: immutable by convention, exempt.
var ErrLost = errors.New("data lost")

var trials int

func decide(seed, event uint64) bool {
	trials++ // want `package-level var trials`
	return (seed^event)&1 == 0
}

func pure(seed, event uint64) bool {
	return (seed^event)&1 == 0
}

func sentinel(ok bool) error {
	if !ok {
		return ErrLost // error sentinel read: fine
	}
	return nil
}

func recv(ch chan uint64) uint64 {
	return <-ch // want `channel receive in a decision path`
}

func send(ch chan uint64, v uint64) {
	ch <- v // want `channel send in a decision path`
}

func spawn(f func()) {
	go f() // want `goroutine spawn in a decision path`
}

func drain(ch chan uint64) uint64 {
	var last uint64
	for v := range ch { // want `range over channel in a decision path`
		last = v
	}
	return last
}

// engine is scheduler plumbing, not a decision: results are collected in
// deterministic order regardless of goroutine interleaving.
//
//mrm:allow-seedpurity fixture: engine plumbing, output order is pinned elsewhere
func engine(f func()) {
	trials++
	go f()
}
