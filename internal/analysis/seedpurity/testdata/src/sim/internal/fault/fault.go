// Package fault is a seedpurity fixture standing in for the real
// internal/fault: decision paths must be pure in (seed, stream, event).
package fault

import (
	"errors"

	"sim/seedlib"
)

// ErrLost is an error sentinel: immutable by convention, exempt.
var ErrLost = errors.New("data lost")

var trials int

func decide(seed, event uint64) bool {
	trials++ // want `package-level var trials`
	return (seed^event)&1 == 0
}

func pure(seed, event uint64) bool {
	return (seed^event)&1 == 0
}

func sentinel(ok bool) error {
	if !ok {
		return ErrLost // error sentinel read: fine
	}
	return nil
}

func recv(ch chan uint64) uint64 {
	return <-ch // want `channel receive in a decision path`
}

func send(ch chan uint64, v uint64) {
	ch <- v // want `channel send in a decision path`
}

func spawn(f func()) {
	go f() // want `goroutine spawn in a decision path`
}

func drain(ch chan uint64) uint64 {
	var last uint64
	for v := range ch { // want `range over channel in a decision path`
		last = v
	}
	return last
}

// laundered reaches a package-level counter through a helper in another
// package: reported here, at the decision-path call site.
func laundered(seed uint64) uint64 {
	return seed + uint64(seedlib.Bump()) // want `call to seedlib.Bump reaches package-level var counter \(seedlib.Bump\)`
}

// twoDeep reaches the same counter through a two-call helper chain.
func twoDeep(seed uint64) uint64 {
	return seed + uint64(seedlib.Outer()) // want `call to seedlib.Outer reaches package-level var counter \(seedlib.Outer → seedlib.inner\)`
}

// cleanHelper calls a pure helper: no diagnostic.
func cleanHelper(seed, event uint64) uint64 {
	return seedlib.Pure(seed, event)
}

// waivedHelper calls a helper whose impurity is root-waived: no diagnostic.
func waivedHelper() int {
	return seedlib.Logged()
}

// engine is scheduler plumbing, not a decision: results are collected in
// deterministic order regardless of goroutine interleaving.
//
//mrm:allow-seedpurity fixture: engine plumbing, output order is pinned elsewhere
func engine(f func()) {
	trials++
	go f()
}
