// Package seedlib is a helper package outside the purity-contract packages:
// its impurities are never reported here, only as facts that flow to call
// sites inside internal/fault and internal/sweep.
package seedlib

var counter int

// Bump mutates a package-level counter; the fact flows to contract callers.
func Bump() int {
	counter++
	return counter
}

// Outer launders the impurity one level deeper: Outer → inner → counter.
func Outer() int {
	return inner()
}

func inner() int {
	counter--
	return counter
}

// Pure is a clean helper: no fact, no diagnostic anywhere.
func Pure(seed, event uint64) uint64 {
	return seed ^ event
}

// Logged draws on the counter under a root waiver: the reviewed judgment
// covers every caller, so nothing propagates.
func Logged() int {
	counter++ //mrm:allow-seedpurity fixture: diagnostics counter, never read by a decision
	return 0
}
