package seedpurity_test

import (
	"testing"

	"mrm/internal/analysis/analysistest"
	"mrm/internal/analysis/seedpurity"
)

func TestSeedpurity(t *testing.T) {
	analysistest.Run(t, "testdata", seedpurity.Analyzer, "sim/internal/fault", "other")
}
