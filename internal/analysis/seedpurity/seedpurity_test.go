package seedpurity_test

import (
	"testing"

	"mrm/internal/analysis/analysistest"
	"mrm/internal/analysis/seedpurity"
)

func TestSeedpurity(t *testing.T) {
	// sim/seedlib is the out-of-scope helper package: loaded both as an
	// import of sim/internal/fault (fact source) and directly (no findings).
	analysistest.Run(t, "testdata", seedpurity.Analyzer, "sim/internal/fault", "sim/seedlib", "other")
}
