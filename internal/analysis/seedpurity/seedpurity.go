// Package seedpurity keeps the fault- and seed-derivation packages pure. The
// determinism contracts of internal/fault and internal/sweep promise that
// every decision is a pure function of (seed, stream, event) — no shared RNG,
// no global counters, no scheduling dependence — so this analyzer flags, in
// those packages, any function that touches package-level variables, channel
// operations, or goroutines. The sweep engine's scheduler plumbing is the
// deliberate exception and carries //mrm:allow-seedpurity directives
// explaining why each exemption preserves the contract.
package seedpurity

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mrm/internal/analysis"
)

// Analyzer enforces purity in the seed/fault decision packages.
var Analyzer = &analysis.Analyzer{
	Name: "seedpurity",
	Doc: "flags package-level variable access, channel operations, and goroutine " +
		"spawns inside internal/fault and internal/sweep, whose decisions must be " +
		"pure in (seed, stream, event); waive engine plumbing with " +
		"//mrm:allow-seedpurity <reason>",
	Run: run,
}

// inScope reports whether path is one of the purity-contract packages.
func inScope(path string) bool {
	return strings.HasSuffix(path, "internal/fault") || strings.HasSuffix(path, "internal/sweep")
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			v, ok := info.Uses[n].(*types.Var)
			if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
				return true // not a package-level variable
			}
			if analysis.IsErrorType(v.Type()) {
				return true // error sentinels are immutable by convention
			}
			pass.Reportf(n.Pos(),
				"decision path touches package-level var %s: fault/seed decisions must be pure in (seed, stream, event)", v.Name())
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "select in a decision path depends on goroutine scheduling")
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send in a decision path: decisions must not communicate")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "channel receive in a decision path: decisions must not communicate")
			}
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "goroutine spawn in a decision path: decision order must not depend on scheduling")
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					pass.Reportf(n.Pos(), "range over channel in a decision path: decisions must not communicate")
				}
			}
		}
		return true
	})
}
