// Package seedpurity keeps the fault- and seed-derivation packages pure. The
// determinism contracts of internal/fault and internal/sweep promise that
// every decision is a pure function of (seed, stream, event) — no shared RNG,
// no global counters, no scheduling dependence — so this analyzer flags, in
// those packages, any function that touches package-level variables, channel
// operations, or goroutines. The sweep engine's scheduler plumbing is the
// deliberate exception and carries //mrm:allow-seedpurity directives
// explaining why each exemption preserves the contract.
//
// The analyzer is interprocedural: impurities in helper packages the decision
// code calls into (a global counter bumped two packages away, a channel
// receive behind a utility function) are recorded as facts, propagated
// caller-ward along the call graph, and reported at the call site inside
// internal/fault or internal/sweep with the helper chain spelled out.
package seedpurity

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mrm/internal/analysis"
)

// Analyzer enforces purity in the seed/fault decision packages.
var Analyzer = &analysis.Analyzer{
	Name: "seedpurity",
	Doc: "flags package-level variable access, channel operations, and goroutine " +
		"spawns inside internal/fault and internal/sweep — directly or through any " +
		"chain of helper calls; decisions must be pure in (seed, stream, event); " +
		"waive engine plumbing with //mrm:allow-seedpurity <reason>",
	Facts:    facts,
	Scope:    inScope,
	Boundary: analysis.IsShellPackage,
}

// run references Analyzer (to query its own flow facts), so it is wired up
// here rather than in the literal to break the initialization cycle.
func init() { Analyzer.Run = run }

// inScope reports whether path is one of the purity-contract packages.
func inScope(path string) bool {
	return strings.HasSuffix(path, "internal/fault") || strings.HasSuffix(path, "internal/sweep")
}

// Fact kinds for impurities that flow to decision-path call sites.
const (
	kindPkgVar = "pkgvar"
	kindChanOp = "chanop"
	kindGo     = "gostmt"
)

// collect walks one function body and hands every impurity to report: the
// direct checker and the fact builder share exactly this definition of
// impure, so a helper flagged here is flagged identically via a call chain.
func collect(info *types.Info, body *ast.BlockStmt, report func(kind string, pos token.Pos, detail string)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			v, ok := info.Uses[n].(*types.Var)
			if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
				return true // not a package-level variable
			}
			if analysis.IsErrorType(v.Type()) {
				return true // error sentinels are immutable by convention
			}
			report(kindPkgVar, n.Pos(), "package-level var "+v.Name())
		case *ast.SelectStmt:
			report(kindChanOp, n.Pos(), "select")
		case *ast.SendStmt:
			report(kindChanOp, n.Pos(), "channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				report(kindChanOp, n.Pos(), "channel receive")
			}
		case *ast.GoStmt:
			report(kindGo, n.Pos(), "goroutine spawn")
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					report(kindChanOp, n.Pos(), "range over channel")
				}
			}
		}
		return true
	})
}

// facts records impurity facts for every function so decision-path call
// sites can see what their helpers reach.
func facts(pass *analysis.Pass) map[*types.Func][]analysis.Fact {
	out := make(map[*types.Func][]analysis.Fact)
	analysis.ForEachFuncDecl(pass, func(obj *types.Func, fd *ast.FuncDecl) {
		collect(pass.TypesInfo, fd.Body, func(kind string, pos token.Pos, detail string) {
			out[obj] = append(out[obj], analysis.Fact{Kind: kind, Pos: pos, Detail: detail})
		})
	})
	return out
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Direct impurities in the decision path itself.
	collect(pass.TypesInfo, fd.Body, func(kind string, pos token.Pos, detail string) {
		switch kind {
		case kindPkgVar:
			pass.Reportf(pos,
				"decision path touches %s: fault/seed decisions must be pure in (seed, stream, event)", detail)
		case kindChanOp:
			switch detail {
			case "select":
				pass.Reportf(pos, "select in a decision path depends on goroutine scheduling")
			case "range over channel":
				pass.Reportf(pos, "range over channel in a decision path: decisions must not communicate")
			default:
				pass.Reportf(pos, "%s in a decision path: decisions must not communicate", detail)
			}
		case kindGo:
			pass.Reportf(pos, "goroutine spawn in a decision path: decision order must not depend on scheduling")
		}
	})
	// Impurities reached through helpers outside the contract packages.
	if pass.Program == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := analysis.Callee(pass.TypesInfo, call)
		for _, ff := range pass.Program.FlowFacts(Analyzer, callee) {
			pass.Reportf(call.Pos(),
				"call to %s reaches %s (%s): fault/seed decisions must be pure in (seed, stream, event)",
				analysis.FuncDisplayName(callee), ff.Fact.Detail,
				pass.Program.ChainString(Analyzer, callee, ff))
		}
		return true
	})
}
