// Package analysistest runs an analyzer over fixture packages and checks its
// diagnostics against expectations written in the fixtures themselves, in the
// style of golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <testdata>/src/<import/path>/*.go. A line that should
// be flagged carries a comment of the form
//
//	// want "regexp" "another regexp"
//
// Every diagnostic must be matched by a want expectation on its line, and
// every expectation must match at least one diagnostic; anything else fails
// the test. Because RunAnalyzer applies //mrm:allow-* directives before
// diagnostics reach the harness, fixtures exercise directive suppression by
// writing the directive and omitting the want.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"mrm/internal/analysis"
)

// Run loads each fixture package from testdata/src and checks a's diagnostics
// against the // want comments in its files. All listed packages (plus any
// sibling fixture packages they import) are loaded into one Program first,
// so interprocedural analyzers see facts flow across fixture package
// boundaries exactly as they do across real ones.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	loader := analysis.NewLoader()
	pkgs, err := loader.LoadTree(filepath.Join(testdata, "src"), paths...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	prog := analysis.NewProgram(loader.Loaded())
	for _, pkg := range pkgs {
		diags, err := prog.Run(a, pkg)
		if err != nil {
			t.Fatalf("%s: %v", pkg.PkgPath, err)
		}
		checkExpectations(t, pkg, diags)
	}
}

type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("^//\\s*want((?:\\s+(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))+)\\s*$")
var quoted = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func collectWants(t *testing.T, pkg *analysis.Pkg) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range quoted.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", pos, q, err)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	return wants
}

func checkExpectations(t *testing.T, pkg *analysis.Pkg, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Position.Filename && w.line == d.Position.Line && w.rx.MatchString(d.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", d.Position, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.rx)
		}
	}
}
