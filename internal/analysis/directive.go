package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix introduces a suppression directive comment:
//
//	//mrm:allow-<analyzer> <reason>
//
// The comment must be a line comment with no space after "//" (Go directive
// style, which gofmt leaves untouched).
const directivePrefix = "//mrm:allow-"

// A Directive is one parsed //mrm:allow-* comment.
type Directive struct {
	Pos    token.Pos
	Name   string // analyzer name after "allow-"
	Reason string // justification text; "" is malformed
}

// directiveIndex locates directives by file and line, plus the directives in
// every function's doc comment, for suppression lookups.
type directiveIndex struct {
	// byLine maps filename -> line -> set of analyzer names allowed there.
	byLine map[string]map[int]map[string]bool
	// funcs lists, per file, each function's body extent and the analyzer
	// names its doc comment allows.
	funcs map[string][]funcDirectives
	all   []Directive
}

type funcDirectives struct {
	start, end token.Pos
	names      map[string]bool
}

// parseDirective parses one comment, returning ok=false for non-directives.
func parseDirective(c *ast.Comment) (Directive, bool) {
	rest, ok := strings.CutPrefix(c.Text, directivePrefix)
	if !ok {
		return Directive{}, false
	}
	name, reason, _ := strings.Cut(rest, " ")
	return Directive{Pos: c.Pos(), Name: name, Reason: strings.TrimSpace(reason)}, true
}

func indexDirectives(pkg *Pkg) *directiveIndex {
	idx := &directiveIndex{
		byLine: make(map[string]map[int]map[string]bool),
		funcs:  make(map[string][]funcDirectives),
	}
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c)
				if !ok {
					continue
				}
				idx.all = append(idx.all, d)
				pos := pkg.Fset.Position(c.Pos())
				lines := idx.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					idx.byLine[pos.Filename] = lines
				}
				if lines[pos.Line] == nil {
					lines[pos.Line] = make(map[string]bool)
				}
				lines[pos.Line][d.Name] = true
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || fd.Body == nil {
				continue
			}
			names := make(map[string]bool)
			for _, c := range fd.Doc.List {
				if d, ok := parseDirective(c); ok {
					names[d.Name] = true
				}
			}
			if len(names) == 0 {
				continue
			}
			file := pkg.Fset.Position(fd.Pos()).Filename
			idx.funcs[file] = append(idx.funcs[file], funcDirectives{
				start: fd.Pos(), end: fd.Body.End(), names: names,
			})
		}
	}
	return idx
}

// allows reports whether diagnostic d of analyzer name is waived: a matching
// directive sits on d's line, the line above it, or in the doc comment of the
// function whose body contains d.
func (idx *directiveIndex) allows(pkg *Pkg, name string, d Diagnostic) bool {
	if lines := idx.byLine[d.Position.Filename]; lines != nil {
		if lines[d.Position.Line][name] || lines[d.Position.Line-1][name] {
			return true
		}
	}
	for _, fn := range idx.funcs[d.Position.Filename] {
		if fn.names[name] && d.Pos >= fn.start && d.Pos < fn.end {
			return true
		}
	}
	return false
}

// DirectiveDiagnostics validates every //mrm:allow-* directive in pkg:
// the analyzer name must be one of known, and the reason must be non-empty.
// Run it alongside the analyzers so suppressions stay auditable.
func DirectiveDiagnostics(pkg *Pkg, known map[string]bool) []Diagnostic {
	var out []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		p := &Pass{Analyzer: &Analyzer{Name: "directive"}, Fset: pkg.Fset}
		p.Reportf(pos, format, args...)
		out = append(out, p.diags...)
	}
	idx := indexDirectives(pkg)
	for _, d := range idx.all {
		if !known[d.Name] {
			report(d.Pos, "//mrm:allow-%s names no known analyzer", d.Name)
			continue
		}
		if d.Reason == "" {
			report(d.Pos, "//mrm:allow-%s needs a reason: every waived finding must say why", d.Name)
		}
	}
	return out
}
