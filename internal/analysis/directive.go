package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix introduces a suppression directive comment:
//
//	//mrm:allow-<analyzer> <reason>
//
// The comment must be a line comment with no space after "//" (Go directive
// style, which gofmt leaves untouched).
const directivePrefix = "//mrm:allow-"

// A Directive is one parsed //mrm:allow-* comment.
type Directive struct {
	Pos    token.Pos
	Name   string // analyzer name after "allow-"
	Reason string // justification text; "" is malformed
}

// A directiveUse is one directive site plus its suppression tally. A
// directive is "used" once it waives a diagnostic or gates a fact root; the
// staleallow pass flags well-formed directives that end a run unused.
type directiveUse struct {
	d    Directive
	used bool
}

// directiveIndex locates directives by file and line, plus the directives in
// every function's doc comment, for suppression lookups. The byLine and
// funcs tables share *directiveUse entries with the uses list, so a match
// through either path marks the same site used.
type directiveIndex struct {
	// byLine maps filename -> line -> analyzer name -> directive site.
	byLine map[string]map[int]map[string]*directiveUse
	// funcs lists, per file, each function's body extent and the directives
	// its doc comment carries.
	funcs map[string][]funcDirectives
	uses  []*directiveUse
}

type funcDirectives struct {
	start, end token.Pos
	names      map[string]*directiveUse
}

// parseDirective parses one comment, returning ok=false for non-directives.
func parseDirective(c *ast.Comment) (Directive, bool) {
	rest, ok := strings.CutPrefix(c.Text, directivePrefix)
	if !ok {
		return Directive{}, false
	}
	name, reason, _ := strings.Cut(rest, " ")
	return Directive{Pos: c.Pos(), Name: name, Reason: strings.TrimSpace(reason)}, true
}

func indexDirectives(pkg *Pkg) *directiveIndex {
	idx := &directiveIndex{
		byLine: make(map[string]map[int]map[string]*directiveUse),
		funcs:  make(map[string][]funcDirectives),
	}
	// byPos lets the function-doc walk below reference the same use entry
	// the comment walk created, so either match path marks one site.
	byPos := make(map[token.Pos]*directiveUse)
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c)
				if !ok {
					continue
				}
				u := &directiveUse{d: d}
				idx.uses = append(idx.uses, u)
				byPos[d.Pos] = u
				pos := pkg.Fset.Position(c.Pos())
				lines := idx.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]*directiveUse)
					idx.byLine[pos.Filename] = lines
				}
				if lines[pos.Line] == nil {
					lines[pos.Line] = make(map[string]*directiveUse)
				}
				lines[pos.Line][d.Name] = u
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || fd.Body == nil {
				continue
			}
			names := make(map[string]*directiveUse)
			for _, c := range fd.Doc.List {
				if d, ok := parseDirective(c); ok {
					names[d.Name] = byPos[d.Pos]
				}
			}
			if len(names) == 0 {
				continue
			}
			file := pkg.Fset.Position(fd.Pos()).Filename
			idx.funcs[file] = append(idx.funcs[file], funcDirectives{
				start: fd.Pos(), end: fd.Body.End(), names: names,
			})
		}
	}
	return idx
}

// allows reports whether a finding of analyzer name at the given position is
// waived: a matching directive sits on its line, the line above it, or in the
// doc comment of the function whose body contains it. A match marks the
// directive used.
func (idx *directiveIndex) allows(name string, position token.Position, pos token.Pos) bool {
	if lines := idx.byLine[position.Filename]; lines != nil {
		for _, line := range []int{position.Line, position.Line - 1} {
			if u := lines[line][name]; u != nil {
				u.used = true
				return true
			}
		}
	}
	for _, fn := range idx.funcs[position.Filename] {
		if u := fn.names[name]; u != nil && pos >= fn.start && pos < fn.end {
			u.used = true
			return true
		}
	}
	return false
}

// DirectiveDiagnostics validates every //mrm:allow-* directive in pkg:
// the analyzer name must be one of known, and the reason must be non-empty.
// Run it alongside the analyzers so suppressions stay auditable.
func DirectiveDiagnostics(pkg *Pkg, known map[string]bool) []Diagnostic {
	var out []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		p := &Pass{Analyzer: &Analyzer{Name: "directive"}, Fset: pkg.Fset}
		p.Reportf(pos, format, args...)
		out = append(out, p.diags...)
	}
	idx := indexDirectives(pkg)
	for _, u := range idx.uses {
		if !known[u.d.Name] {
			report(u.d.Pos, "//mrm:allow-%s names no known analyzer", u.d.Name)
			continue
		}
		if u.d.Reason == "" {
			report(u.d.Pos, "//mrm:allow-%s needs a reason: every waived finding must say why", u.d.Name)
		}
	}
	return out
}
