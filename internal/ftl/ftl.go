// Package ftl implements a page-mapped flash translation layer: the
// device-resident indirection machinery (out-of-place writes, garbage
// collection, wear leveling) that non-volatile block devices need because
// their cell retention is mismatched to data lifetime. In the paper's
// framing this is the housekeeping MRM removes from the device by matching
// retention to lifetime and lifting policy into the software control plane;
// the FTL here is the baseline for experiment E10.
package ftl

import (
	"fmt"
)

// Config sizes the FTL.
type Config struct {
	PagesPerBlock int
	NumBlocks     int
	// OverProvision is the fraction of physical capacity hidden from the
	// host (typical SSDs: 0.07–0.28). More OP → less GC write amplification.
	OverProvision float64
	// GCFreeThreshold triggers GC when free blocks drop to this count.
	GCFreeThreshold int
	// StaticWearLevelEvery triggers static wear leveling after this many
	// host writes (0 disables): the coldest block is migrated into the
	// most-worn free block to spread erases.
	StaticWearLevelEvery int
}

// DefaultConfig returns a small but representative geometry.
func DefaultConfig() Config {
	return Config{
		PagesPerBlock:        64,
		NumBlocks:            256,
		OverProvision:        0.125,
		GCFreeThreshold:      4,
		StaticWearLevelEvery: 0,
	}
}

const (
	pageFree  = -1 // physical page holds nothing
	pageStale = -2 // physical page holds invalidated data
)

// FTL is a page-mapped translation layer. Not safe for concurrent use.
type FTL struct {
	cfg       Config
	l2p       []int // logical page -> physical page (or pageFree)
	p2l       []int // physical page -> logical page, pageFree, or pageStale
	valid     []int // per block: count of valid pages
	erases    []int // per block: erase count
	freeBlock []int // stack of fully erased block ids
	openBlock int   // block currently receiving writes
	nextPage  int   // next free page index within openBlock

	hostWrites   int64
	mediaWrites  int64 // includes GC relocations
	eraseCount   int64
	gcRuns       int64
	wlMigrations int64
}

// New builds an FTL. The logical space is physical capacity minus
// over-provisioning, rounded down to whole blocks.
func New(cfg Config) (*FTL, error) {
	if cfg.PagesPerBlock <= 0 || cfg.NumBlocks <= 1 {
		return nil, fmt.Errorf("ftl: need >=2 blocks and positive pages/block")
	}
	if cfg.OverProvision < 0 || cfg.OverProvision >= 1 {
		return nil, fmt.Errorf("ftl: over-provision %v outside [0,1)", cfg.OverProvision)
	}
	if cfg.GCFreeThreshold < 1 {
		return nil, fmt.Errorf("ftl: GC threshold must be >= 1")
	}
	physPages := cfg.PagesPerBlock * cfg.NumBlocks
	logicalBlocks := int(float64(cfg.NumBlocks) * (1 - cfg.OverProvision))
	if logicalBlocks < 1 {
		logicalBlocks = 1
	}
	if logicalBlocks >= cfg.NumBlocks {
		logicalBlocks = cfg.NumBlocks - 1 // at least one spare block for GC
	}
	logicalPages := logicalBlocks * cfg.PagesPerBlock
	f := &FTL{
		cfg:    cfg,
		l2p:    make([]int, logicalPages),
		p2l:    make([]int, physPages),
		valid:  make([]int, cfg.NumBlocks),
		erases: make([]int, cfg.NumBlocks),
	}
	for i := range f.l2p {
		f.l2p[i] = pageFree
	}
	for i := range f.p2l {
		f.p2l[i] = pageFree
	}
	for b := cfg.NumBlocks - 1; b >= 1; b-- {
		f.freeBlock = append(f.freeBlock, b)
	}
	f.openBlock = 0
	f.nextPage = 0
	return f, nil
}

// LogicalPages returns the host-visible capacity in pages.
func (f *FTL) LogicalPages() int { return len(f.l2p) }

// Write stores a logical page (contents are not modeled, only placement).
func (f *FTL) Write(lpn int) error {
	if lpn < 0 || lpn >= len(f.l2p) {
		return fmt.Errorf("ftl: logical page %d out of range", lpn)
	}
	f.hostWrites++
	if err := f.program(lpn); err != nil {
		return err
	}
	if f.cfg.StaticWearLevelEvery > 0 && f.hostWrites%int64(f.cfg.StaticWearLevelEvery) == 0 {
		f.staticWearLevel()
	}
	return nil
}

// Read resolves a logical page; it reports whether the page has been written.
func (f *FTL) Read(lpn int) (physical int, ok bool, err error) {
	if lpn < 0 || lpn >= len(f.l2p) {
		return 0, false, fmt.Errorf("ftl: logical page %d out of range", lpn)
	}
	p := f.l2p[lpn]
	if p == pageFree {
		return 0, false, nil
	}
	return p, true, nil
}

// Trim invalidates a logical page (the host declares it dead), freeing its
// physical page for GC without relocation.
func (f *FTL) Trim(lpn int) error {
	if lpn < 0 || lpn >= len(f.l2p) {
		return fmt.Errorf("ftl: logical page %d out of range", lpn)
	}
	if old := f.l2p[lpn]; old != pageFree {
		f.p2l[old] = pageStale
		f.valid[old/f.cfg.PagesPerBlock]--
		f.l2p[lpn] = pageFree
	}
	return nil
}

// program writes lpn out-of-place into the open block.
func (f *FTL) program(lpn int) error {
	if f.nextPage == f.cfg.PagesPerBlock {
		if err := f.rotateOpenBlock(); err != nil {
			return err
		}
	}
	// Invalidate the previous location.
	if old := f.l2p[lpn]; old != pageFree {
		f.p2l[old] = pageStale
		f.valid[old/f.cfg.PagesPerBlock]--
	}
	ppn := f.openBlock*f.cfg.PagesPerBlock + f.nextPage
	f.nextPage++
	f.l2p[lpn] = ppn
	f.p2l[ppn] = lpn
	f.valid[f.openBlock]++
	f.mediaWrites++
	return nil
}

// rotateOpenBlock takes a fresh block from the free list, running GC first
// if the list is low.
func (f *FTL) rotateOpenBlock() error {
	// Collect until the free list has headroom: one pass can be net-zero
	// (the victim's valid pages consume the block it frees), but as long as
	// stale pages exist in closed blocks, greedy victims make progress.
	for attempts := 0; len(f.freeBlock) <= f.cfg.GCFreeThreshold; attempts++ {
		if attempts > 2*f.cfg.NumBlocks {
			return fmt.Errorf("ftl: GC cannot reclaim space (no stale pages)")
		}
		if err := f.collect(); err != nil {
			return err
		}
	}
	if len(f.freeBlock) == 0 {
		return fmt.Errorf("ftl: out of free blocks (logical space overcommitted)")
	}
	f.openBlock = f.freeBlock[len(f.freeBlock)-1]
	f.freeBlock = f.freeBlock[:len(f.freeBlock)-1]
	f.nextPage = 0
	return nil
}

// collect performs greedy GC: pick the closed block with the fewest valid
// pages, relocate them, erase it.
func (f *FTL) collect() error {
	f.gcRuns++
	victim := -1
	best := f.cfg.PagesPerBlock + 1
	inFree := make(map[int]bool, len(f.freeBlock))
	for _, b := range f.freeBlock {
		inFree[b] = true
	}
	for b := 0; b < f.cfg.NumBlocks; b++ {
		if b == f.openBlock || inFree[b] {
			continue
		}
		if f.valid[b] < best {
			best, victim = f.valid[b], b
		}
	}
	if victim < 0 {
		return fmt.Errorf("ftl: no GC victim available")
	}
	// Relocate valid pages into the open block (recursing into rotate if it
	// fills; the free threshold guarantees a spare).
	start := victim * f.cfg.PagesPerBlock
	for p := start; p < start+f.cfg.PagesPerBlock; p++ {
		lpn := f.p2l[p]
		if lpn >= 0 {
			if f.nextPage == f.cfg.PagesPerBlock {
				if len(f.freeBlock) == 0 {
					return fmt.Errorf("ftl: wedged during GC")
				}
				f.openBlock = f.freeBlock[len(f.freeBlock)-1]
				f.freeBlock = f.freeBlock[:len(f.freeBlock)-1]
				f.nextPage = 0
			}
			ppn := f.openBlock*f.cfg.PagesPerBlock + f.nextPage
			f.nextPage++
			f.p2l[p] = pageStale
			f.valid[victim]--
			f.l2p[lpn] = ppn
			f.p2l[ppn] = lpn
			f.valid[f.openBlock]++
			f.mediaWrites++
		}
	}
	f.eraseBlock(victim)
	return nil
}

func (f *FTL) eraseBlock(b int) {
	start := b * f.cfg.PagesPerBlock
	for p := start; p < start+f.cfg.PagesPerBlock; p++ {
		f.p2l[p] = pageFree
	}
	f.valid[b] = 0
	f.erases[b]++
	f.eraseCount++
	f.freeBlock = append(f.freeBlock, b)
}

// staticWearLevel migrates the coldest closed block (fewest erases) into a
// free block so its low-wear cells rejoin circulation.
func (f *FTL) staticWearLevel() {
	inFree := make(map[int]bool, len(f.freeBlock))
	for _, b := range f.freeBlock {
		inFree[b] = true
	}
	cold := -1
	for b := 0; b < f.cfg.NumBlocks; b++ {
		if b == f.openBlock || inFree[b] || f.valid[b] == 0 {
			continue
		}
		if cold < 0 || f.erases[b] < f.erases[cold] {
			cold = b
		}
	}
	if cold < 0 {
		return
	}
	start := cold * f.cfg.PagesPerBlock
	for p := start; p < start+f.cfg.PagesPerBlock; p++ {
		lpn := f.p2l[p]
		if lpn >= 0 {
			if f.nextPage == f.cfg.PagesPerBlock {
				if len(f.freeBlock) <= 1 {
					return // don't deadlock the GC reserve
				}
				f.openBlock = f.freeBlock[len(f.freeBlock)-1]
				f.freeBlock = f.freeBlock[:len(f.freeBlock)-1]
				f.nextPage = 0
			}
			ppn := f.openBlock*f.cfg.PagesPerBlock + f.nextPage
			f.nextPage++
			f.p2l[p] = pageStale
			f.valid[cold]--
			f.l2p[lpn] = ppn
			f.p2l[ppn] = lpn
			f.valid[f.openBlock]++
			f.mediaWrites++
			f.wlMigrations++
		}
	}
	f.eraseBlock(cold)
}

// Stats summarizes FTL behaviour.
type Stats struct {
	HostWrites   int64
	MediaWrites  int64
	Erases       int64
	GCRuns       int64
	WLMigrations int64
	// WriteAmplification = MediaWrites / HostWrites (>= 1).
	WriteAmplification float64
	// MaxErase / MeanErase measure wear spread.
	MaxErase  int
	MeanErase float64
}

// Stats returns current statistics.
func (f *FTL) Stats() Stats {
	s := Stats{
		HostWrites:   f.hostWrites,
		MediaWrites:  f.mediaWrites,
		Erases:       f.eraseCount,
		GCRuns:       f.gcRuns,
		WLMigrations: f.wlMigrations,
	}
	if f.hostWrites > 0 {
		s.WriteAmplification = float64(f.mediaWrites) / float64(f.hostWrites)
	}
	sum := 0
	for _, e := range f.erases {
		sum += e
		if e > s.MaxErase {
			s.MaxErase = e
		}
	}
	s.MeanErase = float64(sum) / float64(len(f.erases))
	return s
}

// CheckInvariants verifies internal consistency; tests call it after
// workloads. It returns the first violation found.
func (f *FTL) CheckInvariants() error {
	// Every mapped logical page must map back.
	for lpn, ppn := range f.l2p {
		if ppn == pageFree {
			continue
		}
		if ppn < 0 || ppn >= len(f.p2l) {
			return fmt.Errorf("ftl: lpn %d maps to bad ppn %d", lpn, ppn)
		}
		if f.p2l[ppn] != lpn {
			return fmt.Errorf("ftl: lpn %d -> ppn %d -> lpn %d", lpn, ppn, f.p2l[ppn])
		}
	}
	// Valid counts must match the maps.
	count := make([]int, f.cfg.NumBlocks)
	for ppn, lpn := range f.p2l {
		if lpn >= 0 {
			count[ppn/f.cfg.PagesPerBlock]++
		}
	}
	for b, c := range count {
		if f.valid[b] != c {
			return fmt.Errorf("ftl: block %d valid=%d, actual %d", b, f.valid[b], c)
		}
	}
	return nil
}
