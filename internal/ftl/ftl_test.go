package ftl

import (
	"testing"
	"testing/quick"

	"mrm/internal/dist"
)

func newFTL(t *testing.T, cfg Config) *FTL {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{PagesPerBlock: 0, NumBlocks: 10, OverProvision: 0.1, GCFreeThreshold: 2},
		{PagesPerBlock: 8, NumBlocks: 1, OverProvision: 0.1, GCFreeThreshold: 2},
		{PagesPerBlock: 8, NumBlocks: 10, OverProvision: 1.0, GCFreeThreshold: 2},
		{PagesPerBlock: 8, NumBlocks: 10, OverProvision: -0.1, GCFreeThreshold: 2},
		{PagesPerBlock: 8, NumBlocks: 10, OverProvision: 0.1, GCFreeThreshold: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestLogicalCapacityRespectsOP(t *testing.T) {
	f := newFTL(t, DefaultConfig())
	phys := DefaultConfig().PagesPerBlock * DefaultConfig().NumBlocks
	if f.LogicalPages() >= phys {
		t.Fatalf("logical %d should be below physical %d", f.LogicalPages(), phys)
	}
}

func TestBasicWriteRead(t *testing.T) {
	f := newFTL(t, DefaultConfig())
	if err := f.Write(7); err != nil {
		t.Fatal(err)
	}
	p, ok, err := f.Read(7)
	if err != nil || !ok {
		t.Fatalf("Read: ok=%v err=%v", ok, err)
	}
	if p < 0 {
		t.Fatalf("physical page %d", p)
	}
	if _, ok, _ := f.Read(8); ok {
		t.Fatal("unwritten page should not resolve")
	}
	if err := f.Write(-1); err == nil {
		t.Fatal("negative lpn should error")
	}
	if _, _, err := f.Read(1 << 30); err == nil {
		t.Fatal("out-of-range read should error")
	}
}

func TestOverwriteInvalidatesOld(t *testing.T) {
	f := newFTL(t, DefaultConfig())
	_ = f.Write(3)
	p1, _, _ := f.Read(3)
	_ = f.Write(3)
	p2, _, _ := f.Read(3)
	if p1 == p2 {
		t.Fatal("overwrite must be out-of-place")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTrim(t *testing.T) {
	f := newFTL(t, DefaultConfig())
	_ = f.Write(5)
	if err := f.Trim(5); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := f.Read(5); ok {
		t.Fatal("trimmed page should be gone")
	}
	// Trim of unwritten page is a no-op.
	if err := f.Trim(6); err != nil {
		t.Fatal(err)
	}
	if err := f.Trim(-1); err == nil {
		t.Fatal("bad lpn should error")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Sustained random overwrites force GC; write amplification must exceed 1
// and the FTL must stay consistent.
func TestGCUnderRandomOverwrite(t *testing.T) {
	cfg := DefaultConfig()
	f := newFTL(t, cfg)
	rng := dist.NewRNG(1)
	n := f.LogicalPages()
	for i := 0; i < n*6; i++ {
		if err := f.Write(rng.Intn(n)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	st := f.Stats()
	if st.GCRuns == 0 {
		t.Fatal("GC never ran under 6x overwrite")
	}
	if st.WriteAmplification <= 1.0 {
		t.Fatalf("WA = %v, want > 1", st.WriteAmplification)
	}
	if st.WriteAmplification > 10 {
		t.Fatalf("WA = %v implausibly high", st.WriteAmplification)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Sequential overwrites (append-like) should produce near-1 WA: blocks die
// wholesale, so GC relocates almost nothing.
func TestSequentialWAIsLow(t *testing.T) {
	f := newFTL(t, DefaultConfig())
	n := f.LogicalPages()
	for round := 0; round < 6; round++ {
		for lpn := 0; lpn < n; lpn++ {
			if err := f.Write(lpn); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := f.Stats()
	if st.WriteAmplification > 1.1 {
		t.Fatalf("sequential WA = %v, want ~1", st.WriteAmplification)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// More over-provisioning should reduce random-write WA.
func TestOPReducesWA(t *testing.T) {
	wa := func(op float64) float64 {
		cfg := DefaultConfig()
		cfg.OverProvision = op
		f := newFTL(t, cfg)
		rng := dist.NewRNG(2)
		n := f.LogicalPages()
		for i := 0; i < n*8; i++ {
			if err := f.Write(rng.Intn(n)); err != nil {
				t.Fatal(err)
			}
		}
		return f.Stats().WriteAmplification
	}
	low, high := wa(0.07), wa(0.28)
	if high >= low {
		t.Fatalf("WA with 28%% OP (%v) should beat 7%% OP (%v)", high, low)
	}
}

// Static wear leveling narrows the erase-count spread under a skewed
// (hot/cold) workload.
func TestStaticWearLeveling(t *testing.T) {
	spread := func(wlEvery int) float64 {
		cfg := DefaultConfig()
		cfg.StaticWearLevelEvery = wlEvery
		f := newFTL(t, cfg)
		rng := dist.NewRNG(3)
		n := f.LogicalPages()
		// Write all pages once (cold data), then hammer 10% of them.
		for lpn := 0; lpn < n; lpn++ {
			if err := f.Write(lpn); err != nil {
				t.Fatal(err)
			}
		}
		hot := n / 10
		for i := 0; i < n*10; i++ {
			if err := f.Write(rng.Intn(hot)); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		st := f.Stats()
		if st.MeanErase == 0 {
			return 0
		}
		return float64(st.MaxErase) / st.MeanErase
	}
	without := spread(0)
	with := spread(512)
	if with >= without {
		t.Fatalf("wear leveling should narrow spread: with=%v without=%v", with, without)
	}
}

func TestStatsZeroWrites(t *testing.T) {
	f := newFTL(t, DefaultConfig())
	if st := f.Stats(); st.WriteAmplification != 0 || st.HostWrites != 0 {
		t.Fatalf("fresh stats = %+v", st)
	}
}

// Property: after any sequence of writes/trims within range, invariants hold
// and every written page resolves.
func TestInvariantsProperty(t *testing.T) {
	cfg := Config{PagesPerBlock: 16, NumBlocks: 32, OverProvision: 0.2, GCFreeThreshold: 3}
	f2 := func(ops []uint16) bool {
		f, err := New(cfg)
		if err != nil {
			return false
		}
		n := f.LogicalPages()
		written := make(map[int]bool)
		for _, op := range ops {
			lpn := int(op) % n
			if op%7 == 0 && written[lpn] {
				if err := f.Trim(lpn); err != nil {
					return false
				}
				delete(written, lpn)
			} else {
				if err := f.Write(lpn); err != nil {
					return false
				}
				written[lpn] = true
			}
		}
		if err := f.CheckInvariants(); err != nil {
			return false
		}
		for lpn := range written {
			if _, ok, err := f.Read(lpn); !ok || err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f2, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
