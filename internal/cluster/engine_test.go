package cluster

import (
	"reflect"
	"testing"
	"time"

	"mrm/internal/core"
	"mrm/internal/llm"
	"mrm/internal/memdev"
	"mrm/internal/tier"
	"mrm/internal/units"
)

// memBuilder constructs a fresh memory system for one twin. The returned MRM
// handle is nil for device-only managers; when non-nil, the twin comparison
// additionally requires identical MRM stats and device time.
type memBuilder func(t *testing.T) (*tier.Manager, *core.MRM)

func hbmOnlyMem(t *testing.T) (*tier.Manager, *core.MRM) {
	return hbmOnly(t), nil
}

func hbmPlusMRMMem(t *testing.T) (*tier.Manager, *core.MRM) {
	t.Helper()
	spec := memdev.HBM3E
	spec.Capacity = 24 * units.GiB
	spec.ReadBW = 8 * units.TBps
	hbm, err := tier.NewDeviceTier("hbm", spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Capacity = 64 * units.GiB
	cfg.ZoneSize = 64 * units.MiB
	mrm, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := tier.NewManager(tier.RetentionAwarePolicy{}, hbm, tier.NewMRMTier("mrm", mrm))
	if err != nil {
		t.Fatal(err)
	}
	return m, mrm
}

// mrmOnlyShortClasses puts everything — weights included — on an MRM whose
// longest retention class is 30 seconds, so weight-refresh deadlines fall
// inside any idle window longer than that. This is the memory the IdleTick
// tests use to make housekeeping-in-idle observable.
func mrmOnlyShortClasses(t *testing.T) (*tier.Manager, *core.MRM) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Capacity = 64 * units.GiB
	cfg.ZoneSize = 64 * units.MiB
	cfg.Classes = []time.Duration{10 * time.Second, 30 * time.Second}
	mrm, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := tier.NewManager(tier.StaticPolicy{}, tier.NewMRMTier("mrm", mrm))
	if err != nil {
		t.Fatal(err)
	}
	return m, mrm
}

// runEngine builds one sim over a fresh memory system and runs the stream.
// Faults are armed after NewSim so weight placement is identical whether or
// not a scenario injects failures.
func runEngine(t *testing.T, stepping bool, mk memBuilder, mut func(*Config),
	reqs []Request, stopAt time.Duration, faults *memdev.FaultConfig) (Result, []Request, *tier.Manager, *core.MRM) {
	t.Helper()
	m, mrm := mk(t)
	cfg := Config{
		Model: llm.Llama27B, Acc: llm.B200,
		Memory: m, PageTokens: 16, MaxBatch: 4,
		Stepping: stepping,
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if faults != nil {
		for _, b := range m.Backends() {
			if f, ok := b.(tier.Faultable); ok {
				f.SetFaults(*faults)
			}
		}
	}
	in := append([]Request(nil), reqs...)
	res, left, err := s.RunUntil(in, stopAt)
	if err != nil {
		t.Fatalf("stepping=%v: %v", stepping, err)
	}
	return res, left, m, mrm
}

// runTwins runs the same scenario under the stepping engine and the event
// engine and requires bit-identical results: the full Result (histogram
// snapshots included), the unfinished-request list, every backend's traffic
// and energy, and — when an MRM is present — its stats and device clock. It
// returns the event engine's outputs for scenario-specific assertions.
func runTwins(t *testing.T, mk memBuilder, mut func(*Config),
	reqs []Request, stopAt time.Duration, faults *memdev.FaultConfig) (Result, []Request, *core.MRM) {
	t.Helper()
	sRes, sLeft, sMem, sMRM := runEngine(t, true, mk, mut, reqs, stopAt, faults)
	eRes, eLeft, eMem, eMRM := runEngine(t, false, mk, mut, reqs, stopAt, faults)
	if !reflect.DeepEqual(sRes, eRes) {
		t.Fatalf("results diverged:\nstepping: %+v\nevents:   %+v", sRes, eRes)
	}
	if !reflect.DeepEqual(sLeft, eLeft) {
		t.Fatalf("unfinished lists diverged:\nstepping: %+v\nevents:   %+v", sLeft, eLeft)
	}
	sb, eb := sMem.Backends(), eMem.Backends()
	for i := range sb {
		sr, sw := sb[i].Traffic()
		er, ew := eb[i].Traffic()
		if sr != er || sw != ew {
			t.Fatalf("tier %d traffic diverged: stepping (%v, %v), events (%v, %v)", i, sr, sw, er, ew)
		}
		if se, ee := sb[i].Energy(), eb[i].Energy(); se != ee {
			t.Fatalf("tier %d energy diverged: stepping %v, events %v", i, se, ee)
		}
	}
	if sMRM != nil {
		if ss, es := sMRM.Stats(), eMRM.Stats(); ss != es {
			t.Fatalf("MRM stats diverged:\nstepping: %+v\nevents:   %+v", ss, es)
		}
		if sn, en := sMRM.Now(), eMRM.Now(); sn != en {
			t.Fatalf("MRM device time diverged: stepping %v, events %v", sn, en)
		}
	}
	return eRes, eLeft, eMRM
}

// TestEngineEquivalence is the twin-instance suite: every scenario runs once
// under the legacy stepping engine and once under the discrete-event engine,
// and the two must agree on every observable — results, latency histograms,
// device traffic, energy, fault accounting, and the fate of every request.
func TestEngineEquivalence(t *testing.T) {
	faults := &memdev.FaultConfig{Seed: 7, TransientRate: 0.01, LapseRate: 0.005}
	scenarios := []struct {
		name   string
		mem    memBuilder
		mut    func(*Config)
		reqs   func() []Request
		stopAt time.Duration
		faults *memdev.FaultConfig
		check  func(t *testing.T, res Result, left []Request, mrm *core.MRM)
	}{
		{
			name: "hbm-only", mem: hbmOnlyMem, stopAt: -1,
			reqs: func() []Request { return shortRequests(24) },
			check: func(t *testing.T, res Result, left []Request, _ *core.MRM) {
				if res.Completed != 24 || len(left) != 0 {
					t.Fatalf("completed %d, left %d", res.Completed, len(left))
				}
			},
		},
		{
			name: "hbm+mrm-retention-aware", mem: hbmPlusMRMMem, stopAt: -1,
			reqs: func() []Request { return shortRequests(24) },
		},
		{
			// KV lifetimes round up to a retention class, so expiry needs
			// requests that outlive the shortest class (10s here): their
			// oldest pages expire mid-decode and the rollback-recompute path
			// runs under both engines.
			name: "mrm-expiry-recompute", mem: mrmOnlyShortClasses, stopAt: -1,
			mut: func(c *Config) { c.KVLifetime = 5 * time.Second },
			reqs: func() []Request {
				return []Request{
					{ID: 0, Arrival: 0, PromptTokens: 256, OutputTokens: 1500, Class: Interactive},
					{ID: 1, Arrival: 100 * time.Millisecond, PromptTokens: 256, OutputTokens: 1500, Class: Interactive},
				}
			},
			check: func(t *testing.T, res Result, _ []Request, mrm *core.MRM) {
				if mrm.Stats().Expirations == 0 || res.Faults.KVPagesLost == 0 {
					t.Fatal("no KV page expired; the scenario exercised nothing")
				}
			},
		},
		{
			name: "chunked-prefill", mem: hbmOnlyMem, stopAt: -1,
			mut: func(c *Config) { c.PrefillChunk = 64 },
			reqs: func() []Request {
				reqs := shortRequests(16)
				for i := range reqs {
					reqs[i].PromptTokens = 300
				}
				return reqs
			},
		},
		{
			name: "prefilled-requests", mem: hbmOnlyMem, stopAt: -1,
			reqs: func() []Request {
				reqs := shortRequests(16)
				for i := range reqs {
					reqs[i].Prefilled = i%2 == 0
				}
				return reqs
			},
		},
		{
			name: "faults-armed", mem: hbmPlusMRMMem, stopAt: -1, faults: faults,
			mut: func(c *Config) { c.MaxBatch = 8 },
			reqs: func() []Request {
				reqs := shortRequests(24)
				for i := range reqs {
					reqs[i].PromptTokens = 256
					reqs[i].OutputTokens = 48
				}
				return reqs
			},
			check: func(t *testing.T, res Result, _ []Request, _ *core.MRM) {
				if res.Faults.KVPagesLost == 0 {
					t.Fatal("no KV fault fired; the scenario exercised nothing")
				}
			},
		},
		{
			name: "fail-stop-mid-stream", mem: hbmOnlyMem, stopAt: 1200 * time.Millisecond,
			reqs: func() []Request { return shortRequests(24) },
			check: func(t *testing.T, res Result, left []Request, _ *core.MRM) {
				if len(left) == 0 {
					t.Fatal("fail-stop mid-stream left nothing; the scenario exercised nothing")
				}
			},
		},
		{
			name: "fail-stop-with-faults", mem: hbmPlusMRMMem,
			stopAt: 1200 * time.Millisecond, faults: faults,
			reqs: func() []Request { return shortRequests(24) },
		},
		{
			name: "tiny-memory-truncation", stopAt: -1,
			mem: func(t *testing.T) (*tier.Manager, *core.MRM) {
				spec := memdev.HBM3E
				spec.Capacity = 14 * units.GiB // weights barely fit; KV won't
				hbm, err := tier.NewDeviceTier("hbm", spec)
				if err != nil {
					t.Fatal(err)
				}
				m, err := tier.NewManager(tier.StaticPolicy{}, hbm)
				if err != nil {
					t.Fatal(err)
				}
				return m, nil
			},
			reqs: func() []Request {
				reqs := shortRequests(4)
				for i := range reqs {
					reqs[i].PromptTokens = 1024
					reqs[i].OutputTokens = 512
				}
				return reqs
			},
			check: func(t *testing.T, res Result, _ []Request, _ *core.MRM) {
				if res.Truncated == 0 {
					t.Fatal("nothing truncated; the scenario exercised nothing")
				}
			},
		},
		{
			name: "idle-tick", mem: mrmOnlyShortClasses, stopAt: -1,
			mut: func(c *Config) { c.IdleTick = true },
			reqs: func() []Request {
				reqs := make([]Request, 4)
				for i := range reqs {
					reqs[i] = Request{
						ID:           uint64(i),
						Arrival:      time.Duration(i) * 5 * time.Minute,
						PromptTokens: 64,
						OutputTokens: 4,
						Class:        Interactive,
					}
				}
				return reqs
			},
			check: func(t *testing.T, _ Result, _ []Request, mrm *core.MRM) {
				if mrm.Stats().Refreshes == 0 {
					t.Fatal("no refresh fired under IdleTick; the scenario exercised nothing")
				}
			},
		},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			res, left, mrm := runTwins(t, sc.mem, sc.mut, sc.reqs(), sc.stopAt, sc.faults)
			if sc.check != nil {
				sc.check(t, res, left, mrm)
			}
		})
	}
}

// TestAdmissionOrderPinned pins RunUntil's single admission sort: requests
// are consumed in (class, arrival) order, and equal-(class, arrival) requests
// keep their input order — the stability the removed arrival-only pre-sort
// used to provide redundantly. RunUntil with stopAt 0 halts before admitting
// anything, so the returned unfinished list IS the sorted pending queue.
func TestAdmissionOrderPinned(t *testing.T) {
	reqs := []Request{
		{ID: 0, Class: Throughput, Arrival: 100 * time.Millisecond},
		{ID: 1, Class: Interactive, Arrival: 200 * time.Millisecond},
		{ID: 2, Class: Interactive, Arrival: 200 * time.Millisecond}, // tie with 1: input order holds
		{ID: 3, Class: BestEffort, Arrival: 50 * time.Millisecond},
		{ID: 4, Class: Interactive, Arrival: 100 * time.Millisecond},
	}
	want := []uint64{4, 1, 2, 0, 3}
	for _, stepping := range []bool{true, false} {
		cfg := Config{
			Model: llm.Llama27B, Acc: llm.B200,
			Memory: hbmOnly(t), PageTokens: 16, MaxBatch: 4,
			Stepping: stepping,
		}
		s, err := NewSim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		in := append([]Request(nil), reqs...)
		for i := range in {
			in[i].PromptTokens, in[i].OutputTokens = 64, 8
		}
		res, left, err := s.RunUntil(in, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.TokensOut != 0 || res.Completed != 0 {
			t.Fatalf("stepping=%v: stopAt 0 ran work: %+v", stepping, res)
		}
		if len(left) != len(want) {
			t.Fatalf("stepping=%v: %d unfinished, want %d", stepping, len(left), len(want))
		}
		for i, r := range left {
			if r.ID != want[i] {
				t.Fatalf("stepping=%v: admission order %v at %d, want %v", stepping, r.ID, i, want[i])
			}
		}
	}
}

// idleGapRequests is a stream whose two requests are separated by a long idle
// window — much longer than mrmOnlyShortClasses's 30-second refresh class.
func idleGapRequests() []Request {
	return []Request{
		{ID: 0, Arrival: 0, PromptTokens: 64, OutputTokens: 4, Class: Interactive},
		{ID: 1, Arrival: 10 * time.Minute, PromptTokens: 64, OutputTokens: 4, Class: Interactive},
	}
}

// TestIdleTickConsumesDeadlinesInIdleWindows is the idle-jump regression
// test: without IdleTick an idle window jumps the request clock without aging
// memory, so refresh deadlines inside the window never fire; with IdleTick
// the window is ticked through every housekeeping deadline, the device clock
// tracks the simulation clock, and the refresh work lands — identically under
// both engines.
func TestIdleTickConsumesDeadlinesInIdleWindows(t *testing.T) {
	// Default mode: the 10-minute gap is skipped. The weights' 30-second
	// refresh class fires at most during busy periods, and device time stays
	// far behind the simulation clock.
	defRes, _, defMRM := runTwins(t, mrmOnlyShortClasses, nil, idleGapRequests(), -1, nil)
	// IdleTick: the same stream ages memory through the gap.
	idleRes, _, idleMRM := runTwins(t, mrmOnlyShortClasses,
		func(c *Config) { c.IdleTick = true }, idleGapRequests(), -1, nil)
	if idleMRM.Stats().Refreshes == 0 {
		t.Fatal("IdleTick consumed no refresh deadlines in a 10-minute idle window")
	}
	if defMRM.Stats().Refreshes >= idleMRM.Stats().Refreshes {
		t.Fatalf("idle window fired no extra refreshes: default %d, IdleTick %d",
			defMRM.Stats().Refreshes, idleMRM.Stats().Refreshes)
	}
	if defMRM.Now() >= idleMRM.Now() {
		t.Fatalf("device time did not advance through the idle window: default %v, IdleTick %v",
			defMRM.Now(), idleMRM.Now())
	}
	// IdleTick keeps the device clock in lockstep with the simulation clock.
	if idleMRM.Now() != idleRes.SimTime {
		t.Fatalf("IdleTick device time %v != sim time %v", idleMRM.Now(), idleRes.SimTime)
	}
	if defRes.Completed != 2 || idleRes.Completed != 2 {
		t.Fatalf("requests lost: default %d, IdleTick %d completed", defRes.Completed, idleRes.Completed)
	}
}

// TestFailStopAtArrivalBoundary pins the stopAt == arrival tie under both
// idle semantics. Default mode preserves the legacy quirk the experiment
// goldens depend on: admission jumps the clock to the arrival (== stopAt),
// prefills, and runs exactly one decode step past the fail-stop before
// halting, so one token is generated and wasted. IdleTick mode resolves the
// tie the other way: the fail-stop wins, the request is never admitted, and
// no work is wasted.
func TestFailStopAtArrivalBoundary(t *testing.T) {
	stopAt := time.Second
	req := Request{ID: 1, Arrival: stopAt, PromptTokens: 64, OutputTokens: 8, Class: Interactive}

	t.Run("default-admits-and-runs-one-step", func(t *testing.T) {
		res, left, _ := runTwins(t, hbmOnlyMem, nil, []Request{req}, stopAt, nil)
		if res.TokensOut != 1 || res.WastedTokens != 1 {
			t.Fatalf("tokens %d, wasted %d; want exactly one wasted token", res.TokensOut, res.WastedTokens)
		}
		if res.SimTime <= stopAt {
			t.Fatalf("sim time %v did not run past the fail-stop", res.SimTime)
		}
		if len(left) != 1 || left[0].ID != 1 || left[0].Prefilled {
			t.Fatalf("unfinished %+v; want request 1, fresh", left)
		}
	})

	t.Run("idletick-fail-stop-wins-tie", func(t *testing.T) {
		res, left, _ := runTwins(t, hbmOnlyMem,
			func(c *Config) { c.IdleTick = true }, []Request{req}, stopAt, nil)
		if res.TokensOut != 0 || res.WastedTokens != 0 {
			t.Fatalf("tokens %d, wasted %d; want none", res.TokensOut, res.WastedTokens)
		}
		if res.SimTime != stopAt {
			t.Fatalf("sim time %v, want exactly the fail-stop %v", res.SimTime, stopAt)
		}
		if len(left) != 1 || left[0].ID != 1 {
			t.Fatalf("unfinished %+v; want request 1", left)
		}
	})
}

// TestFailStopMidPrefillWastesNothing halts a chunked prefill before its
// first token: the request comes back fresh with zero generated — and
// therefore zero wasted — tokens, even though decode steps ran.
func TestFailStopMidPrefillWastesNothing(t *testing.T) {
	req := Request{ID: 1, Arrival: 0, PromptTokens: 2048, OutputTokens: 8, Class: Interactive}
	res, left, _ := runTwins(t, hbmOnlyMem,
		func(c *Config) { c.PrefillChunk = 16 }, []Request{req}, 10*time.Millisecond, nil)
	if res.DecodeSteps == 0 {
		t.Fatal("no prefill chunk ran before the fail-stop; the test exercised nothing")
	}
	if res.TokensOut != 0 || res.WastedTokens != 0 {
		t.Fatalf("tokens %d, wasted %d; prefill-only work must waste nothing", res.TokensOut, res.WastedTokens)
	}
	if len(left) != 1 || left[0].ID != 1 || left[0].PromptTokens != 2048 {
		t.Fatalf("unfinished %+v; want the full request back", left)
	}
}

// TestFailStopClearsPrefilledFlag pins the requeue contract for phase-split
// requests: a Prefilled request caught in the batch at fail-stop loses its
// credit (its transferred KV died with the node) and its generated tokens
// count as waste, while a Prefilled request still waiting in the queue keeps
// the flag — its KV was never written here.
func TestFailStopClearsPrefilledFlag(t *testing.T) {
	reqs := []Request{
		{ID: 1, Arrival: time.Second, PromptTokens: 64, OutputTokens: 500, Class: Interactive, Prefilled: true},
		{ID: 2, Arrival: time.Second + time.Millisecond, PromptTokens: 64, OutputTokens: 8, Class: Interactive, Prefilled: true},
	}
	res, left, _ := runTwins(t, hbmOnlyMem,
		func(c *Config) { c.MaxBatch = 1 }, reqs, time.Second+20*time.Millisecond, nil)
	if len(left) != 2 {
		t.Fatalf("%d unfinished, want 2", len(left))
	}
	// Batch members come back first, then the untouched queue.
	if left[0].ID != 1 || left[0].Prefilled {
		t.Fatalf("batched request %+v; want Prefilled cleared", left[0])
	}
	if left[1].ID != 2 || !left[1].Prefilled {
		t.Fatalf("queued request %+v; want Prefilled kept", left[1])
	}
	if res.TokensOut == 0 || res.WastedTokens != res.TokensOut {
		t.Fatalf("tokens %d, wasted %d; every generated token was on the failed node",
			res.TokensOut, res.WastedTokens)
	}
}
