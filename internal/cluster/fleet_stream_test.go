package cluster

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"mrm/internal/dist"
	"mrm/internal/llm"
	"mrm/internal/memdev"
	"mrm/internal/tier"
)

// TestGeneratorStreamMatchesGenerate pins the block-streaming iterator to
// the batch generator: same seed, byte-identical request sequence, and Reset
// replays it exactly.
func TestGeneratorStreamMatchesGenerate(t *testing.T) {
	g := testGenerator()
	const n = 500 // spans several GenBlocks
	batch, err := g.Generate(dist.NewRNG(42), n)
	if err != nil {
		t.Fatal(err)
	}
	st, err := g.Stream(dist.NewRNG(42), n)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != n {
		t.Fatalf("Len = %d, want %d", st.Len(), n)
	}
	for pass := 0; pass < 2; pass++ {
		var streamed []Request
		for {
			req, ok := st.Next()
			if !ok {
				break
			}
			streamed = append(streamed, req)
		}
		if !reflect.DeepEqual(streamed, batch) {
			t.Fatalf("pass %d: streamed sequence diverged from Generate", pass)
		}
		st.Reset()
	}
}

// TestGeneratorStreamValidation pins Stream to Generate's config checks.
func TestGeneratorStreamValidation(t *testing.T) {
	for name, mut := range map[string]func(*Generator){
		"zero rate":    func(g *Generator) { g.RatePerSec = 0 },
		"bad mix":      func(g *Generator) { g.Mix = [3]float64{0.5, 0.1, 0.1} },
		"tiny context": func(g *Generator) { g.MaxContext = 1 },
	} {
		g := testGenerator()
		mut(&g)
		if _, err := g.Stream(dist.NewRNG(1), 10); err == nil {
			t.Errorf("%s should error", name)
		}
	}
}

// TestLoadHeapMatchesLinearScan pins the placement heap's tie-break to the
// linear least-loaded scan it replaces: lowest index wins among equal loads.
// The request mix deliberately recreates ties (uniform token counts over a
// node count that divides the request count).
func TestLoadHeapMatchesLinearScan(t *testing.T) {
	reqs := []Request{
		// Uniform sizes: every placement round ties all nodes at equal load.
		{PromptTokens: 64, OutputTokens: 16}, {PromptTokens: 64, OutputTokens: 16},
		{PromptTokens: 64, OutputTokens: 16}, {PromptTokens: 64, OutputTokens: 16},
		{PromptTokens: 64, OutputTokens: 16}, {PromptTokens: 64, OutputTokens: 16},
		// Skewed sizes exercise genuine least-loaded decisions.
		{PromptTokens: 2000, OutputTokens: 512}, {PromptTokens: 8, OutputTokens: 8},
		{PromptTokens: 300, OutputTokens: 100}, {PromptTokens: 8, OutputTokens: 8},
		{PromptTokens: 8, OutputTokens: 8}, {PromptTokens: 500, OutputTokens: 1},
		// Back to ties between the small nodes.
		{PromptTokens: 16, OutputTokens: 16}, {PromptTokens: 16, OutputTokens: 16},
	}
	for _, n := range []int{1, 2, 3, 7} {
		linLoad := make([]int64, n)
		heapLoad := make([]int64, n)
		nodes := make([]int, n)
		for i := range nodes {
			nodes[i] = i
		}
		h := newLoadHeap(nodes, heapLoad)
		for k, r := range reqs {
			best := 0
			for i := 1; i < n; i++ {
				if linLoad[i] < linLoad[best] {
					best = i
				}
			}
			tokens := int64(r.PromptTokens + r.OutputTokens)
			linLoad[best] += tokens
			if got := h.assign(tokens); got != best {
				t.Fatalf("n=%d req %d: heap chose node %d, linear scan chose %d", n, k, got, best)
			}
		}
		if !reflect.DeepEqual(heapLoad, linLoad) {
			t.Fatalf("n=%d: final loads diverged: heap %v linear %v", n, heapLoad, linLoad)
		}
	}
}

// TestFleetRunUnsortedInputPinned: Run sorts unsorted input itself, so a
// shuffled stream must give results identical to the pre-sorted one (and the
// sortedness fast path must not change outcomes for sorted input).
func TestFleetRunUnsortedInputPinned(t *testing.T) {
	sorted := shortRequests(24)
	shuffled := make([]Request, len(sorted))
	// Deterministic shuffle: reverse then interleave halves.
	for i, j := 0, len(sorted)-1; j >= 0; i, j = i+1, j-1 {
		shuffled[i] = sorted[j]
	}
	want, err := fleetOf(t, 3).Run(sorted)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fleetOf(t, 3).Run(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("unsorted input diverged:\n got %+v\nwant %+v", got, want)
	}
	// The shuffled caller's slice must not be mutated by Run's sort.
	for i, j := 0, len(sorted)-1; j >= 0; i, j = i+1, j-1 {
		if shuffled[i] != sorted[j] {
			t.Fatal("Run mutated the caller's request slice")
		}
	}
}

// streamTwinFleet builds two identical fleets (batch and stream twins) with
// optional armed faults, mirroring the engine twin-test idiom: faults are
// armed after construction so weight placement matches the clean path.
func streamTwinFleet(t *testing.T, n int, faults *memdev.FaultConfig) (*Fleet, *Fleet) {
	t.Helper()
	mk := func(int) (*Sim, error) {
		m := hbmOnly(t)
		s, err := NewSim(Config{
			Model: llm.Llama27B, Acc: llm.B200,
			Memory: m, PageTokens: 16, MaxBatch: 4,
		})
		if err != nil {
			return nil, err
		}
		if faults != nil {
			for _, b := range m.Backends() {
				if f, ok := b.(tier.Faultable); ok {
					f.SetFaults(*faults)
				}
			}
		}
		return s, nil
	}
	batch, err := NewFleet(n, mk)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := NewFleet(n, mk)
	if err != nil {
		t.Fatal(err)
	}
	return batch, stream
}

// runStreamTwins runs the same requests through batch Run and RunStream on
// twin fleets and requires bit-identical FleetResults (per-node Results,
// TTFT/TBT snapshots, fault stats, degraded-mode accounting — everything).
func runStreamTwins(t *testing.T, reqs []Request, mut func(*Fleet), n, workers, window int,
	faults *memdev.FaultConfig) FleetResult {
	t.Helper()
	batch, stream := streamTwinFleet(t, n, faults)
	batch.Workers = workers
	stream.Workers = workers
	stream.Window = window
	if mut != nil {
		mut(batch)
		mut(stream)
	}
	want, err := batch.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := stream.RunStream(&SliceSource{Reqs: reqs})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("RunStream diverged from Run (nodes=%d workers=%d window=%d):\n got %+v\nwant %+v",
			n, workers, window, got, want)
	}
	return got
}

// TestRunStreamMatchesRun is the core twin pin: streamed execution is
// byte-identical to batch at every window size — including window=1, where
// every request is its own sweep round — and at Workers 1/2/8.
func TestRunStreamMatchesRun(t *testing.T) {
	reqs, err := testGenerator().Generate(dist.NewRNG(9), 60)
	if err != nil {
		t.Fatal(err)
	}
	for _, window := range []int{1, 7, 64, 0} { // 0 = DefaultWindow
		runStreamTwins(t, reqs, nil, 3, 1, window, nil)
	}
	for _, workers := range []int{2, 8} {
		runStreamTwins(t, reqs, nil, 3, workers, 7, nil)
	}
}

// TestRunStreamLoadTiesMatchRun forces placement load ties (uniform request
// sizes across a node count dividing the request count) so the heap's
// tie-break is exercised end to end, not just in the unit pin.
func TestRunStreamLoadTiesMatchRun(t *testing.T) {
	res := runStreamTwins(t, shortRequests(24), nil, 4, 1, 5, nil)
	if res.Completed != 24 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if res.Balance < 0.95 {
		t.Fatalf("uniform requests should balance, got %v", res.Balance)
	}
}

// TestRunStreamFailoverMatchesRun pins the degraded path: fail-stops,
// orphan requeue through the calendar merge, and survivors' merged feeds —
// including two nodes failing at the same virtual instant.
func TestRunStreamFailoverMatchesRun(t *testing.T) {
	reqs, err := testGenerator().Generate(dist.NewRNG(5), 48)
	if err != nil {
		t.Fatal(err)
	}
	scenarios := map[string][]NodeFailure{
		"mid-run":      {{Node: 2, At: 2 * time.Second}, {Node: 0, At: 5 * time.Second}},
		"simultaneous": {{Node: 1, At: 3 * time.Second}, {Node: 2, At: 3 * time.Second}},
		"immediate":    {{Node: 3, At: 0}},
	}
	for name, failures := range scenarios {
		t.Run(name, func(t *testing.T) {
			for _, workers := range []int{1, 2, 8} {
				res := runStreamTwins(t, reqs, func(f *Fleet) { f.Failures = failures },
					4, workers, 9, nil)
				if res.Requeued == 0 {
					t.Fatal("scenario should requeue work")
				}
			}
		})
	}
}

// TestRunStreamAllFailMatchesRun: no survivors — every request unserved,
// identical accounting on both paths.
func TestRunStreamAllFailMatchesRun(t *testing.T) {
	res := runStreamTwins(t, shortRequests(10),
		func(f *Fleet) { f.Failures = []NodeFailure{{Node: 0, At: 0}, {Node: 1, At: 0}} },
		2, 1, 4, nil)
	if res.Unserved != 10 || res.Completed != 0 {
		t.Fatalf("unserved %d completed %d", res.Unserved, res.Completed)
	}
}

// TestRunStreamArmedFaultsMatchesRun: with transient-fault injection armed
// on every node's memory, graceful-degradation work (retries, remaps) must
// fold into identical fleet fault stats on both paths.
func TestRunStreamArmedFaultsMatchesRun(t *testing.T) {
	reqs, err := testGenerator().Generate(dist.NewRNG(3), 24)
	if err != nil {
		t.Fatal(err)
	}
	// Rates low enough that the fleet survives a full day of reads (the
	// engine twin tests run hotter but far shorter streams).
	faults := &memdev.FaultConfig{Seed: 7, TransientRate: 1e-3, LapseRate: 1e-4}
	res := runStreamTwins(t, reqs, func(f *Fleet) {
		f.Failures = []NodeFailure{{Node: 1, At: 4 * time.Second}}
	}, 3, 2, 8, faults)
	if res.Faults.KVPagesLost == 0 && res.Faults.KVTokensRecomputed == 0 {
		t.Fatal("armed faults should register graceful-degradation work")
	}
}

// TestRunStreamGeneratorSource wires Generator.Stream straight into
// RunStream — the fleetday path — and pins it to Generate + Run.
func TestRunStreamGeneratorSource(t *testing.T) {
	g := testGenerator()
	reqs, err := g.Generate(dist.NewRNG(11), 80)
	if err != nil {
		t.Fatal(err)
	}
	batch, stream := streamTwinFleet(t, 3, nil)
	want, err := batch.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	src, err := g.Stream(dist.NewRNG(11), 80)
	if err != nil {
		t.Fatal(err)
	}
	stream.Window = 16
	got, err := stream.RunStream(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("generator-fed RunStream diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestRunStreamRejectsUnsortedSource: RunStream requires arrival order (the
// placement replay depends on it) and must fail loudly, not silently place
// differently.
func TestRunStreamRejectsUnsortedSource(t *testing.T) {
	reqs := shortRequests(6)
	reqs[2], reqs[4] = reqs[4], reqs[2]
	_, stream := streamTwinFleet(t, 2, nil)
	if _, err := stream.RunStream(&SliceSource{Reqs: reqs}); err == nil ||
		!strings.Contains(err.Error(), "arrival-ordered") {
		t.Fatalf("unsorted source should error, got %v", err)
	}
}

// TestNewFleetParallelSemantics: the sweep-pool build keeps node order and
// reports the lowest failing index, like the serial loop it replaced.
func TestNewFleetParallelSemantics(t *testing.T) {
	f, err := NewFleet(16, func(node int) (*Sim, error) {
		s, err := NewSim(Config{
			Model: llm.Llama27B, Acc: llm.B200,
			Memory: hbmOnly(t), PageTokens: 16, MaxBatch: 4,
		})
		if err != nil {
			return nil, err
		}
		s.cfg.MaxBatch = node // tag each sim so order is observable
		return s, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range f.nodes {
		if s.cfg.MaxBatch != i {
			t.Fatalf("node %d landed at index %d", s.cfg.MaxBatch, i)
		}
	}
	_, err = NewFleet(16, func(node int) (*Sim, error) {
		if node >= 5 {
			return nil, errTestBoom
		}
		return NewSim(Config{
			Model: llm.Llama27B, Acc: llm.B200,
			Memory: hbmOnly(t), PageTokens: 16, MaxBatch: 4,
		})
	})
	if err == nil || !strings.Contains(err.Error(), "node 5") {
		t.Fatalf("want lowest failing index (node 5) in error, got %v", err)
	}
}

var errTestBoom = errTest("boom")

type errTest string

func (e errTest) Error() string { return string(e) }
