package cluster

import (
	"context"
	"fmt"
	"time"

	"mrm/internal/sweep"
)

// BlockSource is a RequestSource whose stream is organized in independently
// derivable GenBlock-sized blocks — Generator.Stream is the canonical
// implementation. RunStream type-asserts its source against this interface:
// when it holds, request synthesis is sharded across the sweep pool in
// chunk-sized tasks and harvested in order, instead of being drawn serially
// through Next.
type BlockSource interface {
	RequestSource
	// Blocks returns the block count (the last block may be short).
	Blocks() int
	// GenerateBlock appends block b's requests to dst — arrivals relative to
	// the block start — and returns the extended slice plus the block's
	// total clock advance. It must be a pure function of b, safe for
	// concurrent calls with distinct destinations.
	GenerateBlock(b int, dst []Request) ([]Request, time.Duration)
}

// genChunkBlocks is the number of GenBlocks one generation task synthesizes:
// large enough (16 blocks = 1024 requests) that task dispatch overhead
// vanishes against sampling work, small enough that a handful of in-flight
// chunks stay cache-sized.
const genChunkBlocks = 16

// genChunk is one generation task's output: a run of consecutive blocks with
// arrivals relative to the chunk's start, plus the chunk's total clock
// advance. Like blocks, chunks recombine exactly: absolute arrival = chunk
// prefix advance + relative arrival, all integer sums.
type genChunk struct {
	reqs []Request
	adv  time.Duration
}

// genChunkOf synthesizes chunk c of src into dst (appending), rebasing each
// block's relative arrivals onto the chunk-local clock.
func genChunkOf(src BlockSource, c int, dst []Request) genChunk {
	first := c * genChunkBlocks
	last := first + genChunkBlocks
	if nb := src.Blocks(); last > nb {
		last = nb
	}
	var adv time.Duration
	for b := first; b < last; b++ {
		n0 := len(dst)
		var blockAdv time.Duration
		dst, blockAdv = src.GenerateBlock(b, dst)
		for i := n0; i < len(dst); i++ {
			dst[i].Arrival += adv
		}
		adv += blockAdv
	}
	return genChunk{reqs: dst, adv: adv}
}

// blockPump streams a BlockSource through the sweep pool: it keeps a small
// ring of chunk-generation handles in flight (an ordered bounded queue —
// depth pool workers + 1) and hands requests to the placement loop strictly
// in stream order, folding each consumed chunk's advance into the running
// absolute clock. Consumed chunk buffers are recycled into the next
// dispatch, so peak memory is O(depth × chunk), independent of stream
// length. Only generation is parallel; the consumer — the placement heap —
// stays serial, which is what keeps placement bit-identical to a serial
// drain.
type blockPump struct {
	src     BlockSource
	pool    *sweep.Pool
	chunks  int
	handles []*sweep.Handle[genChunk] // ring: chunk c lives in slot c%len
	free    [][]Request

	nextDispatch int
	nextConsume  int
	cur          genChunk
	curIdx       int
	clock        time.Duration
}

// newBlockPump starts a pump with the first ring of chunks already
// dispatched.
func newBlockPump(src BlockSource, pool *sweep.Pool) *blockPump {
	chunks := (src.Blocks() + genChunkBlocks - 1) / genChunkBlocks
	depth := pool.Workers() + 1
	if depth > chunks {
		depth = chunks
	}
	if depth < 1 {
		depth = 1
	}
	p := &blockPump{src: src, pool: pool, chunks: chunks, handles: make([]*sweep.Handle[genChunk], depth)}
	for i := 0; i < depth; i++ {
		p.dispatch()
	}
	return p
}

// dispatch submits the next chunk's generation onto the pool, reusing a
// recycled buffer when one is free. The ring slot is free by construction:
// chunk c is dispatched either at startup or right after chunk c-depth was
// consumed out of the same slot.
func (p *blockPump) dispatch() {
	c := p.nextDispatch
	if c >= p.chunks {
		return
	}
	p.nextDispatch++
	var buf []Request
	if n := len(p.free); n > 0 {
		buf, p.free = p.free[n-1][:0], p.free[:n-1]
	}
	src := p.src
	p.handles[c%len(p.handles)] = sweep.MapAsync(p.pool, 0, []int{c},
		func(_ context.Context, _ sweep.Cell, chunk int) (genChunk, error) {
			return genChunkOf(src, chunk, buf), nil
		})
}

// next yields the stream's next request in order, or ok=false at the end.
func (p *blockPump) next() (Request, bool, error) {
	if p.curIdx >= len(p.cur.reqs) {
		if p.cur.reqs != nil {
			p.clock += p.cur.adv
			p.free = append(p.free, p.cur.reqs)
			p.cur = genChunk{}
		}
		if p.nextConsume >= p.chunks {
			return Request{}, false, nil
		}
		res, err := p.handles[p.nextConsume%len(p.handles)].Wait()
		if err != nil {
			return Request{}, false, err
		}
		p.handles[p.nextConsume%len(p.handles)] = nil
		p.nextConsume++
		p.dispatch()
		p.cur = res[0]
		p.curIdx = 0
	}
	req := p.cur.reqs[p.curIdx]
	p.curIdx++
	req.Arrival += p.clock
	return req, true, nil
}

// drain waits out any still-in-flight chunks — called when a pass aborts
// early so no generation task outlives its pump.
func (p *blockPump) drain() {
	for _, h := range p.handles {
		if h != nil {
			_, _ = h.Wait() // abort path: the pass error wins
		}
	}
}

// manifestPageSize is the placement manifest's page granularity.
const manifestPageSize = 1 << 13

// placementManifest records the node chosen for every stream position, in
// fixed-size pages (4 bytes per request — ~40 MB for a 10M-request day,
// noise against the fleet's own footprint). RunStream's first placement pass
// records it; every later pass — the two remaining class passes and the
// failover re-walk — replays placement by lookup instead of re-running the
// heap, then verifies the per-node load sums it accumulated against the
// canonical load vector, so a corrupted or misaligned manifest fails loudly
// rather than silently misplacing work.
type placementManifest struct {
	pages    [][]uint32
	n        int
	complete bool
}

// append records the next position's node.
func (m *placementManifest) append(node int) {
	if m.n%manifestPageSize == 0 {
		m.pages = append(m.pages, make([]uint32, 0, manifestPageSize))
	}
	m.pages[m.n/manifestPageSize] = append(m.pages[m.n/manifestPageSize], uint32(node))
	m.n++
}

// at returns position i's recorded node.
func (m *placementManifest) at(i int) int {
	return int(m.pages[i/manifestPageSize][i%manifestPageSize])
}

// lookup validates and returns position pos's node for a replay pass.
func (m *placementManifest) lookup(pos, numNodes int) (int, error) {
	if pos >= m.n {
		return 0, fmt.Errorf("cluster: placement manifest ends at %d but the replayed stream continues", m.n)
	}
	node := m.at(pos)
	if node < 0 || node >= numNodes {
		return 0, fmt.Errorf("cluster: placement manifest names bad node %d at position %d", node, pos)
	}
	return node, nil
}
