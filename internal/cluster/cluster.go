// Package cluster simulates a foundation-model serving node: requests with
// SLA classes arrive (Poisson), get admitted into a continuous batch, run a
// prefill, then decode token by token. Every byte the workload moves flows
// through a tier.Manager, so placement policy (static vs retention-aware,
// HBM-only vs HBM+MRM) changes both the step time (per-tier bandwidth) and
// the energy bill — the quantities experiment E7 compares.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"mrm/internal/core"
	"mrm/internal/dist"
	"mrm/internal/eventq"
	"mrm/internal/fault"
	"mrm/internal/llm"
	"mrm/internal/metrics"
	"mrm/internal/sweep"
	"mrm/internal/tier"
	"mrm/internal/units"
)

// defaultStepping selects the legacy tick-by-tick engine for sims whose
// Config leaves Stepping unset. The default is the discrete-event engine;
// the toggle exists so equivalence suites and benchmarks can run whole
// experiment drivers under either engine without threading a flag through
// every Config literal (mirroring sweep.SetDefaultWorkers).
var defaultStepping bool

// SetDefaultStepping switches the engine used by sims that don't set
// Config.Stepping, returning the previous default.
func SetDefaultStepping(on bool) bool {
	prev := defaultStepping
	defaultStepping = on
	return prev
}

// SLAClass is a request's service class (§4: diversified requirements).
type SLAClass int

// SLA classes.
const (
	Interactive SLAClass = iota // user-in-the-loop: tight time-between-tokens
	Throughput                  // batch-friendly
	BestEffort                  // background jobs (meeting recap)
)

// String names the class.
func (c SLAClass) String() string {
	switch c {
	case Interactive:
		return "interactive"
	case Throughput:
		return "throughput"
	case BestEffort:
		return "best-effort"
	default:
		return fmt.Sprintf("SLAClass(%d)", int(c))
	}
}

// Request is one inference query.
type Request struct {
	ID           uint64
	Arrival      time.Duration
	PromptTokens int
	OutputTokens int
	Class        SLAClass
	// Prefilled marks a request whose KV cache was computed elsewhere
	// (phase-split serving à la Splitwise [37]): admission writes the
	// transferred KV pages but charges no prefill compute.
	Prefilled bool
}

// Generator produces a request stream from a workload description.
type Generator struct {
	Workload llm.Workload
	// RatePerSec is the mean arrival rate (Poisson process).
	RatePerSec float64
	// Mix is the probability of each class (Interactive, Throughput,
	// BestEffort); it must sum to ~1.
	Mix [3]float64
	// MaxContext clamps prompt+output.
	MaxContext int
}

// GenBlock is the number of requests drawn from one derived RNG stream.
// Generate seeds an independent generator per block (splitmix derivation
// from a base seed), so blocks can be sampled in any order — or on any
// worker — and still produce the same stream. Only the arrival clock is a
// running prefix across blocks, and that is a pure sum of per-block
// inter-arrival gaps.
const GenBlock = 64

// Generate returns n requests with increasing arrival times. The rng seeds
// the stream: its first draw becomes the base seed from which every
// GenBlock-sized block of requests derives its own generator, keeping the
// stream reproducible even if block sampling is parallelized. Generate is
// Stream drained into a slice; the two produce byte-identical sequences.
func (g Generator) Generate(rng *dist.RNG, n int) ([]Request, error) {
	st, err := g.Stream(rng, n)
	if err != nil {
		return nil, err
	}
	reqs := make([]Request, 0, n)
	for {
		req, ok := st.Next()
		if !ok {
			return reqs, nil
		}
		reqs = append(reqs, req)
	}
}

// Stream returns a block-streaming iterator over the same request sequence
// Generate materializes: Next yields Generate's output element by element
// without ever holding more than the current GenBlock's derived generator.
// The rng's first draw becomes the base seed, exactly as in Generate, so a
// drained Stream and a Generate call on equal rng states are byte-identical
// — the pinned-stream test holds for both. Reset rewinds to the first
// request and replays the identical sequence (block seeds re-derive from the
// captured base), which is what lets the fleet replay a day-long stream once
// per SLA class without materializing it.
func (g Generator) Stream(rng *dist.RNG, n int) (*Stream, error) {
	if g.RatePerSec <= 0 || n <= 0 {
		return nil, fmt.Errorf("cluster: need positive rate and count")
	}
	sum := g.Mix[0] + g.Mix[1] + g.Mix[2]
	if sum < 0.99 || sum > 1.01 {
		return nil, fmt.Errorf("cluster: class mix sums to %v", sum)
	}
	if g.MaxContext <= 1 {
		return nil, fmt.Errorf("cluster: MaxContext too small")
	}
	return &Stream{
		g:      g,
		inter:  dist.Exponential{Rate: g.RatePerSec},
		prompt: dist.Lognormal{Median: g.Workload.PromptMedian, Sigma: g.Workload.PromptSigma},
		output: dist.Lognormal{Median: g.Workload.OutputMedian, Sigma: g.Workload.OutputSigma},
		base:   rng.Uint64(),
		n:      n,
		loaded: -1,
	}, nil
}

// Stream iterates a Generator's request sequence block by block; see
// Generator.Stream. The zero value is not useful — construct via Stream.
//
// Next is the serial iterator; GenerateBlock is the same sequence exposed
// block by block for parallel synthesis (each block is a pure function of
// the captured base seed and the block index), and SeekBlock repositions the
// serial iterator at a block boundary. Next is implemented on top of
// GenerateBlock, so the two can never drift.
type Stream struct {
	g      Generator
	inter  dist.Exponential
	prompt dist.Lognormal
	output dist.Lognormal
	base   uint64
	n      int
	// Serial-iterator state: the current block's requests (arrivals relative
	// to the block start), the absolute clock at that block's start, and the
	// block's total clock advance.
	next      int
	loaded    int // block index held in buf; -1 = none
	buf       []Request
	blockBase time.Duration
	bufAdv    time.Duration
}

// Len returns the total number of requests the stream yields.
func (s *Stream) Len() int { return s.n }

// Blocks returns the number of GenBlock-sized blocks in the stream (the last
// may be short).
func (s *Stream) Blocks() int { return (s.n + GenBlock - 1) / GenBlock }

// Reset rewinds the stream to its first request; the replayed sequence is
// identical (block generators re-derive from the captured base seed, and the
// arrival clock restarts its prefix sum).
func (s *Stream) Reset() {
	s.next = 0
	s.loaded = -1
	s.blockBase = 0
	s.bufAdv = 0
}

// GenerateBlock appends block b's requests to dst and returns the extended
// slice plus the block's total arrival-clock advance. Arrivals are relative
// to the block's start: the absolute stream is recovered by adding the sum
// of all earlier blocks' advances, and because arrivals are integer
// (time.Duration) sums of per-request gaps, that regrouped sum is
// bit-identical to the serial prefix sum Next maintains.
//
// The block is a pure function of (captured base seed, b): it touches no
// iterator state, so distinct blocks may be generated concurrently from one
// Stream — that is what lets RunStream shard request synthesis across the
// sweep pool.
func (s *Stream) GenerateBlock(b int, dst []Request) ([]Request, time.Duration) {
	start := b * GenBlock
	count := s.n - start
	if count > GenBlock {
		count = GenBlock
	}
	rng := dist.NewRNG(sweep.DeriveSeed(s.base, b))
	var clock time.Duration
	for k := 0; k < count; k++ {
		clock += time.Duration(s.inter.Sample(rng) * float64(time.Second))
		p := int(dist.Clamp(s.prompt.Sample(rng), 1, float64(s.g.MaxContext-1)))
		maxOut := s.g.MaxContext - p
		o := int(dist.Clamp(s.output.Sample(rng), 1, float64(maxOut)))
		u := rng.Float64()
		var cl SLAClass
		switch {
		case u < s.g.Mix[0]:
			cl = Interactive
		case u < s.g.Mix[0]+s.g.Mix[1]:
			cl = Throughput
		default:
			cl = BestEffort
		}
		dst = append(dst, Request{
			ID: uint64(start + k), Arrival: clock,
			PromptTokens: p, OutputTokens: o, Class: cl,
		})
	}
	return dst, clock
}

// SeekBlock positions the stream at the start of block b (request b·GenBlock):
// the subsequent Next calls yield exactly the tail a full drain would have
// yielded from that point, absolute arrivals included. Only the arrival
// clock carries history across blocks, so seeking re-derives the first b
// block advances (O(b) sampling, O(GenBlock) memory) without materializing
// any requests for the caller.
func (s *Stream) SeekBlock(b int) error {
	if b < 0 || b > s.Blocks() {
		return fmt.Errorf("cluster: SeekBlock(%d) outside [0, %d]", b, s.Blocks())
	}
	var base time.Duration
	scratch := s.buf
	for i := 0; i < b; i++ {
		var adv time.Duration
		scratch, adv = s.GenerateBlock(i, scratch[:0])
		base += adv
	}
	s.buf = scratch[:0]
	s.next = b * GenBlock
	s.loaded = -1
	s.blockBase = base
	s.bufAdv = 0
	return nil
}

// Next returns the stream's next request, or ok=false once n requests have
// been yielded. Arrival times are non-decreasing across the whole stream.
func (s *Stream) Next() (Request, bool) {
	if s.next >= s.n {
		return Request{}, false
	}
	b := s.next / GenBlock
	if s.loaded != b {
		if s.loaded == b-1 {
			// Walking off the previous block: fold its advance into the
			// absolute clock. (After Reset/SeekBlock there is no previous
			// block; blockBase was set directly.)
			s.blockBase += s.bufAdv
		}
		s.buf, s.bufAdv = s.GenerateBlock(b, s.buf[:0])
		s.loaded = b
	}
	req := s.buf[s.next-b*GenBlock]
	req.Arrival += s.blockBase
	s.next++
	return req, true
}

// Config assembles a serving simulation.
type Config struct {
	Model llm.ModelConfig
	Acc   llm.Accelerator
	// Memory is the tiered memory; the simulator places weights once and KV
	// pages continuously.
	Memory *tier.Manager
	// PageTokens is the KV page size in vectors (PagedAttention geometry).
	PageTokens int
	// MaxBatch bounds the continuous batch.
	MaxBatch int
	// KVLifetime is the lifetime hint for KV pages (how long a context is
	// expected to stay useful).
	KVLifetime time.Duration
	// ScratchTier is the tier index holding partial KV pages and activations
	// (the HBM tier).
	ScratchTier int
	// PrefillChunk, when positive, enables SARATHI-style chunked prefill
	// [3]: prompt ingestion proceeds PrefillChunk tokens per decode step,
	// piggybacked on the running batch, instead of a monolithic prefill
	// that stalls every running decode.
	PrefillChunk int
	// Stepping selects the legacy tick-by-tick outer loop instead of the
	// discrete-event calendar. Both engines share admission, decode, and
	// accounting code and produce bit-identical results; the event engine
	// additionally resolves KV reads into reusable plans (tier.ReadPlan),
	// which is where its speed comes from. Kept for twin-instance
	// equivalence suites and as a reference implementation.
	Stepping bool
	// IdleTick opts into advancing memory time through idle windows
	// (segmented at every scrub/retention deadline, so no refresh or expiry
	// fires late). The default preserves the original semantics — idle gaps
	// jump the request clock without aging the devices — which the recorded
	// experiment goldens pin.
	IdleTick bool
	// OnDone, when set, streams a completion record for every request the
	// sim retires (completed or truncated), in retirement order. The record
	// is a pure function of sim state, so a nil OnDone leaves the sim
	// byte-identical; a serving shell hooks it to deliver per-request
	// TTFT/TBT results as they happen instead of waiting for Result's
	// aggregate histograms. The callback runs synchronously on the sim's
	// goroutine and must not call back into the sim.
	OnDone func(Done)
}

// Done is one request's completion record, streamed to Config.OnDone the
// instant the sim retires the request. Times are virtual (simulated).
type Done struct {
	ID     uint64
	Tokens int // tokens generated (0 if truncated before the first token)
	// TTFT is the first-token latency (prefill completion for monolithic
	// prefill, first generated token under chunked prefill) — the same
	// quantity the sim's TTFT histogram observes.
	TTFT time.Duration
	// TBT is the mean time between tokens (0 with fewer than two tokens).
	TBT time.Duration
	// At is the virtual completion time.
	At time.Duration
	// Truncated marks a request cut short by memory pressure rather than
	// run to its output length.
	Truncated bool
}

type running struct {
	req         Request
	ctx         int // current context length in tokens
	generated   int
	prefillLeft int // prompt tokens not yet ingested (chunked prefill)
	chunk       int // this step's prefill chunk (scratch, valid within decodeStep)
	pages       []tier.ObjectID
	pageTiers   []int
	// plan caches the resolved read path of pages (event engine only): the
	// per-step KV read replays it instead of re-resolving every page id.
	// Kept in lockstep with pages — appended on flush, truncated on KV
	// drop, reset on reuse.
	plan     tier.ReadPlan
	partial  int // tokens accumulated in the scratch partial page
	firstTok time.Duration
	lastTok  time.Duration
	// faulted marks that this step's KV read hit an uncorrectable error: the
	// request emits no token this step and re-ingests the lost suffix.
	faulted bool
	// retired marks a request removed from the batch this step (completed or
	// truncated); decodeStep filters survivors with it after running the
	// step's page-write schedule.
	retired bool
}

// FaultStats accounts the graceful-degradation work a node performed: the
// cost of the paper's "soft state can be dropped and recomputed" bargain.
type FaultStats struct {
	// KVPagesLost counts KV page objects dropped after uncorrectable reads;
	// KVTokensRecomputed is the tokens rolled back and re-ingested, and
	// RecomputeFLOPs the extra prefill compute that took.
	KVPagesLost        int64
	KVTokensRecomputed int64
	RecomputeFLOPs     float64
	// WeightsReseats counts weight re-placements from the durable upstream
	// copy; ReseatStall is clock spent in isolation backoff plus rewrites.
	WeightsReseats int64
	ReseatStall    time.Duration
}

// Add returns the field-wise sum (fleet aggregation).
func (f FaultStats) Add(o FaultStats) FaultStats {
	f.KVPagesLost += o.KVPagesLost
	f.KVTokensRecomputed += o.KVTokensRecomputed
	f.RecomputeFLOPs += o.RecomputeFLOPs
	f.WeightsReseats += o.WeightsReseats
	f.ReseatStall += o.ReseatStall
	return f
}

// Result summarizes a simulation.
type Result struct {
	SimTime         time.Duration
	Completed       int
	Truncated       int // requests cut short by memory pressure
	TokensOut       int64
	TTFT            metrics.Snapshot // seconds
	TBT             metrics.Snapshot // seconds, time between tokens
	Energy          units.Energy
	TokensPerSec    float64
	TokensPerJoule  float64
	PerTierReads    map[string]units.Bytes
	DecodeSteps     int64
	MemoryBoundFrac float64
	Faults          FaultStats
	// WastedTokens counts tokens generated for requests the node did not
	// finish (fail-stop): work a requeue must redo elsewhere.
	WastedTokens int64
}

// Sim runs a serving workload to completion.
type Sim struct {
	cfg      Config
	eng      *llm.Engine
	weights  tier.ObjectID
	wTier    int
	stepping bool // legacy tick-by-tick outer loop (Config.Stepping or package default)
	idleTick bool
	plans    bool // event engine: KV and weights reads go through ReadPlans
	cal      eventq.Calendar
	wPlan    tier.ReadPlan // resolved weights read (event engine); rebuilt on reseat

	clock   time.Duration
	pending []Request
	batch   []*running
	// feeding marks a segmented run (RunSegment more=true): further requests
	// will be fed, so the engines park when pending drains rather than idle
	// or finish — the next decision depends on the head they don't have yet.
	feeding bool

	ttft *metrics.Histogram
	tbt  *metrics.Histogram

	onDone func(Done)

	tokensOut    int64
	completed    int
	truncated    int
	decodeSteps  int64
	memBoundHits int64
	perTierReads []units.Bytes // indexed by tier
	readTiers    []bool        // tiers that ever appeared in a step's read plan
	faults       FaultStats
	wasted       int64

	// Scratch state reused across decode steps (the per-step hot path runs
	// tens of thousands of times per simulation; these cut its allocations
	// to zero in steady state).
	decoding   []*running
	prefilling []*running
	ctxs       []int
	perTier    []units.Bytes // indexed by tier
	freeList   []*running    // finished running structs, pages capacity intact
	ops        []stepOp      // per-step page-write/finish schedule
	metaBuf    []tier.Meta   // KV page metas (identical entries, filled once)
	idBuf      []tier.ObjectID
	latBuf     []time.Duration
	tierBuf    []int
}

// stepOp is one entry in a decode step's ordered schedule of page writes and
// request finishes. Writes between two finishes coalesce into one batched
// put; a finish is a barrier because deleting its request's pages frees
// memory that changes where later writes in the same step may land.
type stepOp struct {
	r      *running
	pages  int  // KV pages to write (flush ops)
	decode bool // decode-path flush: reset partial once its page lands
	fin    bool // finish op: release pages and retire the request
}

// NewSim builds a simulator and places the model weights.
func NewSim(cfg Config) (*Sim, error) {
	if cfg.Memory == nil {
		return nil, fmt.Errorf("cluster: no memory manager")
	}
	if cfg.PageTokens <= 0 || cfg.MaxBatch <= 0 {
		return nil, fmt.Errorf("cluster: need positive PageTokens and MaxBatch")
	}
	if cfg.KVLifetime <= 0 {
		cfg.KVLifetime = 30 * time.Minute
	}
	eng, err := llm.NewEngine(cfg.Model, cfg.Acc)
	if err != nil {
		return nil, err
	}
	nTiers := len(cfg.Memory.Tiers())
	stepping := cfg.Stepping || defaultStepping
	s := &Sim{
		cfg:          cfg,
		eng:          eng,
		stepping:     stepping,
		idleTick:     cfg.IdleTick,
		onDone:       cfg.OnDone,
		plans:        !stepping,
		ttft:         metrics.NewHistogram(1e-6, 1.05),
		tbt:          metrics.NewHistogram(1e-6, 1.05),
		perTierReads: make([]units.Bytes, nTiers),
		readTiers:    make([]bool, nTiers),
		perTier:      make([]units.Bytes, nTiers),
	}
	// Weights: read-hot, effectively immortal (refreshed if on MRM).
	id, _, err := cfg.Memory.Put(tier.Meta{
		Kind:     core.KindWeights,
		Size:     cfg.Model.WeightBytes(),
		Lifetime: 365 * 24 * time.Hour,
		ReadHot:  true,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: placing weights: %w", err)
	}
	s.weights = id
	s.wTier, err = cfg.Memory.TierOf(id)
	if err != nil {
		return nil, err
	}
	if s.plans {
		// Nothing on the planned read path consumes Result.RawBER, so the
		// worst-BER scan is wasted work; an armed ECC budget forces the scan
		// regardless, keeping organic fault decisions identical.
		for _, b := range cfg.Memory.Backends() {
			if bt, ok := b.(tier.BERTunable); ok {
				bt.SetBERTracking(false)
			}
		}
		if err := cfg.Memory.PlanAppend(&s.wPlan, id); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// WeightsTier reports where the weights landed.
func (s *Sim) WeightsTier() int { return s.wTier }

// Clock returns the sim's current virtual time. An ingest layer feeding the
// sim live (the serving daemon) stamps new requests' arrivals with it, so
// arrivals are expressed on the virtual timeline and TTFT/TBT stay pure
// simulated quantities.
func (s *Sim) Clock() time.Duration { return s.clock }

// SetOnDone installs (or, with nil, removes) the per-request completion
// callback after construction; see Config.OnDone. Must not be called while
// a Run is in progress.
func (s *Sim) SetOnDone(fn func(Done)) { s.onDone = fn }

// Run executes the request stream to completion and returns the result.
func (s *Sim) Run(reqs []Request) (Result, error) {
	res, _, err := s.RunUntil(reqs, -1)
	return res, err
}

// RunContext is Run with a cancellation context: the engines poll ctx
// between events and abort with a wrapped ctx.Err() when it fires. The sim's
// state stays consistent on cancellation — requests already retired have
// been reported, the rest remain pending — so a shell enforcing a drain
// deadline can bound a batch without corrupting the node. A background (or
// nil) context is byte-identical to Run.
func (s *Sim) RunContext(ctx context.Context, reqs []Request) (Result, error) {
	res, _, err := s.RunUntilContext(ctx, reqs, -1)
	return res, err
}

// RunUntil executes the request stream until it drains or simulated time
// reaches stopAt (fail-stop; stopAt < 0 runs to completion). On a fail-stop
// it returns, besides the result so far, every request the node did not
// finish — in-flight requests come back as fresh requests (their KV and any
// remote-prefill credit die with the node) and their already-generated tokens
// are counted as WastedTokens. The fleet requeues them onto survivors.
func (s *Sim) RunUntil(reqs []Request, stopAt time.Duration) (Result, []Request, error) {
	return s.RunUntilContext(context.Background(), reqs, stopAt)
}

// RunUntilContext is RunUntil with a cancellation context; see RunContext.
// It is one RunSegment (the whole stream as a single final segment) followed
// by a Harvest.
func (s *Sim) RunUntilContext(ctx context.Context, reqs []Request, stopAt time.Duration) (Result, []Request, error) {
	if err := s.RunSegment(ctx, reqs, stopAt, false); err != nil {
		return Result{}, nil, err
	}
	res, unfinished := s.Harvest(stopAt)
	return res, unfinished, nil
}

// RunSegment ingests one segment of the request stream and advances the sim
// exactly as far as the fed prefix permits. Segments must arrive in
// admission order — class priority, then arrival — across calls: every
// request in a later segment sorts at or after every request in an earlier
// one. more promises at least one further segment; the engine then parks the
// instant its pending queue drains instead of idling or declaring the run
// complete, because whether to admit, idle-jump, or keep decoding depends on
// the head request it has not been fed yet. The engines only ever consult
// the head of the sorted pending queue, so a sequence of RunSegment calls
// whose concatenated segments equal one request slice leaves the sim in
// exactly the state a single RunUntilContext over that slice reaches —
// bit-identical results, O(segment) peak memory. The final segment is
// flagged more=false and the run is then closed out with Harvest.
func (s *Sim) RunSegment(ctx context.Context, reqs []Request, stopAt time.Duration, more bool) error {
	s.pending = append(s.pending, reqs...)
	// Admission order is class priority, then arrival — one stable sort per
	// feed; requests are only ever consumed from the head after this point.
	// Generated streams arrive time-ordered, but stability makes no further
	// assumption: equal-class requests keep their input order, which for a
	// time-sorted input is arrival order. Segment feeds and mostly-drained
	// queues are usually already in admission order, so an O(n) sortedness
	// check skips the stable sort (which would be the identity permutation).
	if !admissionOrdered(s.pending) {
		sort.SliceStable(s.pending, func(i, j int) bool {
			if s.pending[i].Class != s.pending[j].Class {
				return s.pending[i].Class < s.pending[j].Class
			}
			return s.pending[i].Arrival < s.pending[j].Arrival
		})
	}
	s.feeding = more
	if ctx == nil {
		ctx = context.Background()
	}
	if s.stepping {
		return s.runStepping(ctx, stopAt)
	}
	return s.runEvents(ctx, stopAt)
}

// Harvest closes out a (possibly segmented) run: for a fail-stopped node
// (stopAt >= 0) with work left, it tears down the in-flight batch — KV pages
// released, generated tokens counted as wasted — and returns the unfinished
// requests for the fleet to requeue, exactly as RunUntil always has.
func (s *Sim) Harvest(stopAt time.Duration) (Result, []Request) {
	var unfinished []Request
	if stopAt >= 0 && (len(s.batch) > 0 || len(s.pending) > 0) {
		for _, r := range s.batch {
			s.wasted += int64(r.generated)
			for _, pid := range r.pages {
				if err := s.cfg.Memory.Delete(pid); err != nil {
					s.cfg.Memory.Forget(pid)
				}
			}
			req := r.req
			req.Prefilled = false
			unfinished = append(unfinished, req)
		}
		s.batch = nil
		unfinished = append(unfinished, s.pending...)
		s.pending = nil
	}
	return s.result(), unfinished
}

// admissionOrdered reports whether reqs are already sorted by (class,
// arrival) — in which case the stable sort is the identity and is skipped.
func admissionOrdered(reqs []Request) bool {
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Class != reqs[i-1].Class {
			if reqs[i].Class < reqs[i-1].Class {
				return false
			}
			continue
		}
		if reqs[i].Arrival < reqs[i-1].Arrival {
			return false
		}
	}
	return true
}

// runStepping is the legacy engine: a tick-by-tick outer loop that re-derives
// "what happens next" at the top of every iteration. Kept as the reference
// implementation the event engine is equivalence-tested against.
func (s *Sim) runStepping(ctx context.Context, stopAt time.Duration) error {
	for len(s.pending) > 0 || len(s.batch) > 0 {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("cluster: run canceled: %w", err)
		}
		if stopAt >= 0 && s.clock >= stopAt {
			break
		}
		if err := s.admit(); err != nil {
			return err
		}
		if s.feeding && len(s.pending) == 0 {
			// Parked: the queue just drained mid-feed, and an unfed request
			// may be admissible before the next decode step (a full queue
			// admits it in this same admit pass, since prefill advances the
			// clock). Stop before decoding; state is untouched, so admission
			// resumes seamlessly — back-to-back admit calls across the feed
			// boundary collapse into exactly one full-queue admit pass.
			break
		}
		if len(s.batch) == 0 {
			// Idle: jump to the next arrival (or the fail-stop, whichever
			// comes first). Without IdleTick, admit has already consumed the
			// idle window by jumping the clock (memory time intentionally
			// does not advance — the goldens pin that); with it, the window
			// is ticked through every housekeeping deadline inside it.
			if len(s.pending) == 0 {
				break
			}
			next := s.pending[0].Arrival
			if stopAt >= 0 && next > stopAt {
				next = stopAt
			}
			if next > s.clock {
				if s.idleTick {
					if err := s.tickThrough(next); err != nil {
						return err
					}
				} else {
					idle := next - s.clock
					s.clock = next
					if err := s.cfg.Memory.Tick(idle); err != nil {
						return err
					}
				}
			}
			continue
		}
		if err := s.decodeStep(); err != nil {
			return err
		}
	}
	return nil
}

// runEvents is the discrete-event engine: each iteration builds the node's
// tiny calendar — the next decode step, the next admissible arrival, and (in
// IdleTick mode) the fail-stop and the next scrub/retention deadline — and
// jumps the clock straight to the earliest event. Ties break deterministically
// by (time, kind, push order); see eventq. Arrival and step events share one
// handler that admits and then decodes, because that is exactly one iteration
// of the stepping loop: splitting them would insert a fail-stop check between
// admission and the decode it feeds, and the engines would diverge whenever a
// monolithic prefill pushes the clock past stopAt.
func (s *Sim) runEvents(ctx context.Context, stopAt time.Duration) error {
	for len(s.pending) > 0 || len(s.batch) > 0 {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("cluster: run canceled: %w", err)
		}
		if stopAt >= 0 && s.clock >= stopAt {
			break
		}
		s.cal.Reset()
		if len(s.batch) > 0 {
			s.cal.Push(s.clock, eventq.KindStep, 0)
		} else if s.idleTick {
			// Idle window: age memory up to whichever comes first — the
			// fail-stop, a housekeeping deadline, or the next arrival below.
			if stopAt >= 0 {
				s.cal.Push(stopAt, eventq.KindFailStop, 0)
			}
			if at, ok := s.cfg.Memory.NextHousekeeping(); ok {
				if at < s.clock {
					at = s.clock
				}
				s.cal.Push(at, eventq.KindDeadline, 0)
			}
		}
		if len(s.pending) > 0 && len(s.batch) < s.cfg.MaxBatch {
			at := s.pending[0].Arrival
			if at < s.clock {
				at = s.clock
			}
			s.cal.Push(at, eventq.KindArrival, 0)
		}
		ev, ok := s.cal.Pop()
		if !ok {
			break // nothing runnable and nothing scheduled: drained
		}
		switch ev.Kind {
		case eventq.KindFailStop:
			// At stopAt == arrival the fail-stop wins the tie: the stepping
			// engine clamps the idle jump to stopAt and halts before
			// admitting, and so does this.
			if err := s.tickThrough(ev.At); err != nil {
				return err
			}
		case eventq.KindDeadline:
			if err := s.tickThrough(ev.At); err != nil {
				return err
			}
		default: // KindArrival, KindStep
			if ev.Kind == eventq.KindArrival && s.idleTick {
				if err := s.tickThrough(ev.At); err != nil {
					return err
				}
			}
			if err := s.admit(); err != nil {
				return err
			}
			if s.feeding && len(s.pending) == 0 {
				// Parked mid-feed before the decode; see runStepping.
				return nil
			}
			if len(s.batch) > 0 {
				if err := s.decodeStep(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// tickThrough advances the virtual clock to target, splitting the advance at
// every pending housekeeping deadline so refresh and expiry work fires at the
// same instants a fine-grained driver would perform it — not late, bunched at
// the window's end. Only IdleTick mode routes idle windows through here; busy
// periods age memory via the per-step Ticks in admit and decodeStep.
func (s *Sim) tickThrough(target time.Duration) error {
	for s.clock < target {
		next := target
		if at, ok := s.cfg.Memory.NextHousekeeping(); ok && at > s.clock && at < next {
			next = at
		}
		dt := next - s.clock
		s.clock = next
		if err := s.cfg.Memory.Tick(dt); err != nil {
			return err
		}
	}
	return nil
}

// newRunning returns a request state struct, reusing one retired by finish
// so the pages/pageTiers slices keep their grown capacity across requests.
func (s *Sim) newRunning() *running {
	if n := len(s.freeList); n > 0 {
		r := s.freeList[n-1]
		s.freeList = s.freeList[:n-1]
		pages, tiers, plan := r.pages[:0], r.pageTiers[:0], r.plan
		plan.Reset()
		*r = running{pages: pages, pageTiers: tiers, plan: plan}
		return r
	}
	return &running{}
}

// admit pulls arrived requests into the batch (interactive first) and runs
// their prefill. s.pending is kept sorted by (class, arrival) — see Run.
func (s *Sim) admit() error {
	for len(s.pending) > 0 && len(s.batch) < s.cfg.MaxBatch {
		req := s.pending[0]
		if req.Arrival > s.clock && (len(s.batch) > 0 || s.idleTick) {
			// Not here yet: keep decoding, or (IdleTick) let the engine age
			// memory through the gap before admitting.
			break
		}
		if req.Arrival > s.clock {
			// Idle jump: the request clock advances but memory time does not
			// — the original semantics, pinned by the experiment goldens.
			s.clock = req.Arrival
		}
		if s.cfg.PrefillChunk > 0 {
			// Chunked prefill: the request joins the batch immediately and
			// ingests its prompt alongside decode steps.
			s.pending = s.pending[1:]
			r := s.newRunning()
			r.req, r.prefillLeft, r.lastTok = req, req.PromptTokens, s.clock
			s.batch = append(s.batch, r)
			continue
		}
		r := s.newRunning()
		r.req, r.ctx = req, req.PromptTokens
		var prefillTime time.Duration
		if !req.Prefilled {
			cost, err := s.eng.Prefill([]int{req.PromptTokens})
			if err != nil {
				return err
			}
			prefillTime = cost.Time()
		}
		// Write the prompt's KV pages.
		fullPages := req.PromptTokens / s.cfg.PageTokens
		if err := s.flushPages(r, fullPages); err != nil {
			// Memory pressure at admission: release anything partially
			// allocated, then requeue unless nothing is running (in which
			// case the request can never fit: truncate it).
			for _, pid := range r.pages {
				if derr := s.cfg.Memory.Delete(pid); derr != nil {
					s.cfg.Memory.Forget(pid)
				}
			}
			s.freeList = append(s.freeList, r)
			if len(s.batch) == 0 {
				s.pending = s.pending[1:]
				s.truncated++
				if s.onDone != nil {
					s.onDone(Done{ID: req.ID, At: s.clock, Truncated: true})
				}
				continue
			}
			return nil
		}
		r.partial = req.PromptTokens % s.cfg.PageTokens
		s.pending = s.pending[1:]
		s.clock += prefillTime
		if err := s.cfg.Memory.Tick(prefillTime); err != nil {
			return err
		}
		r.firstTok = s.clock
		r.lastTok = s.clock
		s.ttft.Observe((s.clock - req.Arrival).Seconds())
		s.batch = append(s.batch, r)
	}
	return nil
}

// kvMeta describes one KV page; every page a sim writes is identical.
func (s *Sim) kvMeta() tier.Meta {
	return tier.Meta{
		Kind:     core.KindKVCache,
		Size:     s.cfg.Model.KVBytesPerToken() * units.Bytes(s.cfg.PageTokens),
		Lifetime: s.cfg.KVLifetime,
		ReadHot:  true,
	}
}

// flushScratch returns n-length views of the page-write scratch buffers. The
// meta entries are all the same KV page descriptor, so they are filled once
// per growth rather than per call.
func (s *Sim) flushScratch(n int) ([]tier.Meta, []tier.ObjectID, []time.Duration, []int) {
	if len(s.metaBuf) < n {
		s.metaBuf = make([]tier.Meta, n)
		meta := s.kvMeta()
		for i := range s.metaBuf {
			s.metaBuf[i] = meta
		}
		s.idBuf = make([]tier.ObjectID, n)
		s.latBuf = make([]time.Duration, n)
		s.tierBuf = make([]int, n)
	}
	return s.metaBuf[:n], s.idBuf[:n], s.latBuf[:n], s.tierBuf[:n]
}

// flushPages writes n full KV pages for the request into the tiered store as
// one batched put (identical placement, device writes, and fault events to n
// serial Puts). On error the pages stored before the failure are already
// appended to the request, matching the serial path's partial progress.
func (s *Sim) flushPages(r *running, n int) error {
	if n == 0 {
		return nil
	}
	metas, ids, lats, tiers := s.flushScratch(n)
	done, err := s.cfg.Memory.PutBatch(metas, ids, lats, tiers)
	for i := 0; i < done; i++ {
		r.pages = append(r.pages, ids[i])
		r.pageTiers = append(r.pageTiers, tiers[i])
		if s.plans {
			if perr := s.cfg.Memory.PlanAppend(&r.plan, ids[i]); perr != nil {
				return perr
			}
		}
	}
	return err
}

// decodeStep generates one token for every decoding request and, under
// chunked prefill, ingests one prompt chunk for every prefilling request,
// fused into the same step.
func (s *Sim) decodeStep() error {
	decoding, prefilling, ctxs := s.decoding[:0], s.prefilling[:0], s.ctxs[:0]
	for _, r := range s.batch {
		if r.prefillLeft > 0 {
			prefilling = append(prefilling, r)
		} else {
			decoding = append(decoding, r)
			ctxs = append(ctxs, r.ctx)
		}
	}
	s.decoding, s.prefilling, s.ctxs = decoding, prefilling, ctxs
	var flops float64
	if len(decoding) > 0 {
		cost, err := s.eng.DecodeStep(ctxs)
		if err != nil {
			return err
		}
		flops = cost.FLOPs
	}
	for _, r := range prefilling {
		chunk := s.cfg.PrefillChunk
		// Without chunked prefill the only prefilling requests are fault
		// rollbacks: re-ingest the whole lost suffix in one step.
		if chunk <= 0 || chunk > r.prefillLeft {
			chunk = r.prefillLeft
		}
		r.chunk = chunk
		// Quadratic attention inside the prompt, sampled at mid-chunk.
		flops += float64(chunk) * s.cfg.Model.FLOPsPerToken(r.ctx+chunk/2)
	}
	// Per-tier read traffic: weights + every full KV page of decoding
	// requests + partial pages and activations from scratch.
	perTier := s.perTier
	for i := range perTier {
		perTier[i] = 0
	}
	kvPerTok := s.cfg.Model.KVBytesPerToken()
	pageBytes := kvPerTok * units.Bytes(s.cfg.PageTokens)
	for _, r := range decoding {
		// One vectored read for the request's whole KV sequence: identical
		// device reads and fault events to page-by-page Gets, one batched
		// call instead of one per page. The event engine replays the
		// request's resolved plan instead of re-resolving every page id.
		var n int
		var err error
		if s.plans {
			n, err = s.cfg.Memory.GetPlanned(&r.plan)
			// Per-tier accounting over the plan's runs: O(runs) for the same
			// sums the per-page loop below accumulates.
			for ri := 0; ri < r.plan.Runs(); ri++ {
				tierIdx, start, end := r.plan.Run(ri)
				if end > n {
					end = n
				}
				if end <= start {
					break
				}
				perTier[tierIdx] += pageBytes * units.Bytes(end-start)
				s.readTiers[tierIdx] = true
			}
		} else {
			n, err = s.cfg.Memory.GetBatch(r.pages)
			for i := 0; i < n; i++ {
				perTier[r.pageTiers[i]] += pageBytes
				s.readTiers[r.pageTiers[i]] = true
			}
		}
		if err != nil {
			// KV pages are soft state: an uncorrectable (or expired) page
			// invalidates the sequence's suffix — pages are read in order —
			// so roll back and recompute instead of failing.
			if errors.Is(err, fault.ErrUncorrectable) || errors.Is(err, core.ErrExpired) {
				s.dropKVFrom(r, n)
			} else {
				return fmt.Errorf("cluster: KV page read: %w", err)
			}
		}
		perTier[s.cfg.ScratchTier] += kvPerTok * units.Bytes(r.partial)
		s.readTiers[s.cfg.ScratchTier] = true
	}
	// Account the weights read against the device; a lost copy is restored
	// from its durable upstream before the step proceeds.
	if err := s.readWeights(); err != nil {
		return err
	}
	perTier[s.wTier] += s.cfg.Model.WeightBytes()
	s.readTiers[s.wTier] = true
	memTime := s.cfg.Memory.ReadTime(perTier)
	stepTime := s.eng.TimeForFLOPs(flops)
	if memTime > stepTime {
		stepTime = memTime
		s.memBoundHits++
	}
	s.decodeSteps++
	for t, b := range perTier {
		s.perTierReads[t] += b
	}
	s.clock += stepTime
	if err := s.cfg.Memory.Tick(stepTime); err != nil {
		return err
	}
	// Bookkeeping phase: advance every request's counters (pure in-memory
	// work) and schedule the step's page writes and request finishes in
	// exactly the order the per-page path performed them. The schedule then
	// runs with consecutive writes coalesced into batched puts.
	ops := s.ops[:0]
	// Prefilling requests advance by their chunk; filled pages flush.
	for _, r := range prefilling {
		r.ctx += r.chunk
		r.prefillLeft -= r.chunk
		r.partial += r.chunk
		if n := r.partial / s.cfg.PageTokens; n > 0 {
			ops = append(ops, stepOp{r: r, pages: n})
			r.partial -= n * s.cfg.PageTokens
		}
	}
	// One token per decoding request; pages flush as they fill.
	for _, r := range decoding {
		if r.faulted {
			// The KV read failed this step: no token was produced. The
			// request stays batched and re-ingests its lost suffix through
			// the prefill path starting next step.
			r.faulted = false
			continue
		}
		r.ctx++
		r.generated++
		r.partial++
		s.tokensOut++
		if r.generated == 1 {
			// The first token's latency is TTFT, not a between-token gap:
			// under chunked prefill it spans the whole prompt ingestion.
			if s.cfg.PrefillChunk > 0 {
				s.ttft.Observe((s.clock - r.req.Arrival).Seconds())
				r.firstTok = s.clock
			}
		} else {
			s.tbt.Observe((s.clock - r.lastTok).Seconds())
		}
		r.lastTok = s.clock
		if r.generated >= r.req.OutputTokens || r.ctx >= s.cfg.Model.MaxContext {
			ops = append(ops, stepOp{r: r, fin: true})
		} else if r.partial >= s.cfg.PageTokens {
			ops = append(ops, stepOp{r: r, pages: 1, decode: true})
		}
	}
	s.ops = ops
	if err := s.runStepOps(ops); err != nil {
		return err
	}
	// Survivors keep batch order: prefilling requests first, then decoding,
	// minus the requests the schedule retired.
	survivors := s.batch[:0]
	for _, r := range prefilling {
		if !r.retired {
			survivors = append(survivors, r)
		}
	}
	for _, r := range decoding {
		if !r.retired {
			survivors = append(survivors, r)
		}
	}
	s.batch = survivors
	return nil
}

// runStepOps executes a decode step's schedule. Runs of consecutive page
// writes issue as one batched put each; a finish op is a barrier (its page
// deletes change where later writes may land, so batching across one would
// perturb allocation). A failed page write truncates only the owning request
// — its pages are released, freeing memory — and the writes after it retry,
// exactly as the per-page path behaved.
func (s *Sim) runStepOps(ops []stepOp) error {
	for len(ops) > 0 {
		if ops[0].fin {
			s.finish(ops[0].r, false)
			ops = ops[1:]
			continue
		}
		end, total := 0, 0
		for end < len(ops) && !ops[end].fin {
			total += ops[end].pages
			end++
		}
		if err := s.flushOps(ops[:end], total); err != nil {
			return err
		}
		ops = ops[end:]
	}
	return nil
}

// flushOps writes the pages of one barrier-free run of flush ops, retrying
// after each truncation until every surviving op's pages are stored.
func (s *Sim) flushOps(ops []stepOp, total int) error {
	for len(ops) > 0 {
		metas, ids, lats, tiers := s.flushScratch(total)
		done, err := s.cfg.Memory.PutBatch(metas, ids, lats, tiers)
		// Hand the stored pages to their owners in schedule order.
		oi, assigned := 0, 0
		for assigned < done {
			op := &ops[oi]
			take := op.pages
			if take > done-assigned {
				take = done - assigned
			}
			for j := 0; j < take; j++ {
				op.r.pages = append(op.r.pages, ids[assigned+j])
				op.r.pageTiers = append(op.r.pageTiers, tiers[assigned+j])
				if s.plans {
					if perr := s.cfg.Memory.PlanAppend(&op.r.plan, ids[assigned+j]); perr != nil {
						return perr
					}
				}
			}
			op.pages -= take
			assigned += take
			if op.pages == 0 {
				if op.decode {
					op.r.partial = 0
				}
				oi++
			}
		}
		if err == nil {
			return nil
		}
		// The write at index done failed: the owning op's request is out of
		// KV memory (or its page write faulted). Finish it early — releasing
		// its pages, including any stored above — and retry the rest.
		s.truncated++
		s.finish(ops[oi].r, true)
		ops = ops[oi+1:]
		total = 0
		for i := range ops {
			total += ops[i].pages
		}
	}
	return nil
}

// dropKVFrom implements the KV degradation path: page i of the request's
// sequence is unreadable, and pages are consumed strictly in order, so the
// suffix from page i onward (including the scratch partial page) is dropped.
// The request rolls back to its last intact prefix and the lost tokens are
// queued for re-ingestion through the prefill path.
func (s *Sim) dropKVFrom(r *running, i int) {
	intact := i * s.cfg.PageTokens
	lost := r.ctx - intact
	// The plan must drop the suffix before its objects are deleted (validity
	// contract: a deleted member invalidates the plan from that member on).
	r.plan.Truncate(i)
	for _, pid := range r.pages[i:] {
		// The backend may have dropped the object already (expiry).
		if err := s.cfg.Memory.Delete(pid); err != nil {
			s.cfg.Memory.Forget(pid)
		}
	}
	s.faults.KVPagesLost += int64(len(r.pages) - i)
	s.faults.KVTokensRecomputed += int64(lost)
	s.faults.RecomputeFLOPs += float64(lost) * s.cfg.Model.FLOPsPerToken(intact+lost/2)
	r.pages = r.pages[:i]
	r.pageTiers = r.pageTiers[:i]
	r.ctx = intact
	r.partial = 0
	r.prefillLeft += lost
	r.faulted = true
}

// readWeights performs the step's weights read. An uncorrectable read is not
// fatal: weights are immutable with a durable upstream copy, so the manager
// reseats them (retry with exponential backoff, preferring another tier) and
// the read is retried. Only exhausting every tier fails the simulation.
func (s *Sim) readWeights() error {
	err := s.getWeights()
	if err == nil {
		return nil
	}
	backoff := s.cfg.Memory.Backoff
	attempts := len(s.cfg.Memory.Tiers()) + 1
	for try := 0; try < attempts; try++ {
		if !errors.Is(err, fault.ErrUncorrectable) {
			return fmt.Errorf("cluster: weights read: %w", err)
		}
		// Fault-isolation window, then rewrite from upstream.
		lat, rerr := s.cfg.Memory.Reseat(s.weights)
		if rerr != nil {
			return fmt.Errorf("cluster: weights reseat: %w", rerr)
		}
		stall := backoff + lat
		s.clock += stall
		if terr := s.cfg.Memory.Tick(stall); terr != nil {
			return terr
		}
		s.faults.WeightsReseats++
		s.faults.ReseatStall += stall
		backoff *= 2
		if s.wTier, rerr = s.cfg.Memory.TierOf(s.weights); rerr != nil {
			return rerr
		}
		if s.plans {
			// The reseat re-placed the weights: rebuild the resolved plan.
			s.wPlan.Reset()
			if rerr = s.cfg.Memory.PlanAppend(&s.wPlan, s.weights); rerr != nil {
				return rerr
			}
		}
		if err = s.getWeights(); err == nil {
			return nil
		}
	}
	return fmt.Errorf("cluster: weights unreadable after %d reseats: %w", attempts, err)
}

// getWeights performs one weights read: the resolved plan under the event
// engine, the by-id lookup under stepping — device-identical either way.
func (s *Sim) getWeights() error {
	if s.plans {
		_, err := s.cfg.Memory.GetPlanned(&s.wPlan)
		return err
	}
	_, _, err := s.cfg.Memory.Get(s.weights)
	return err
}

// finish releases a request's pages, records completion, and retires the
// state struct to the reuse pool. truncated marks a request cut short by
// memory pressure; it only affects the streamed completion record — the
// caller has already counted it in s.truncated.
func (s *Sim) finish(r *running, truncated bool) {
	for _, pid := range r.pages {
		// Pages may have already expired inside an MRM tier; tolerate it.
		if err := s.cfg.Memory.Delete(pid); err != nil {
			s.cfg.Memory.Forget(pid)
		}
	}
	s.completed++
	s.emitDone(r, truncated)
	r.retired = true
	s.freeList = append(s.freeList, r)
}

// emitDone streams a request's completion record to the OnDone observer (a
// no-op when none is registered — the sim's own state is untouched either
// way).
func (s *Sim) emitDone(r *running, truncated bool) {
	if s.onDone == nil {
		return
	}
	d := Done{
		ID:        r.req.ID,
		Tokens:    r.generated,
		At:        s.clock,
		Truncated: truncated,
	}
	// firstTok is stamped at monolithic-prefill completion, or at the first
	// generated token under chunked prefill; a request truncated before
	// either has no first-token latency to report.
	if r.firstTok > 0 || r.generated > 0 {
		d.TTFT = r.firstTok - r.req.Arrival
	}
	if r.generated > 1 {
		d.TBT = (r.lastTok - r.firstTok) / time.Duration(r.generated-1)
	}
	s.onDone(d)
}

// Observations exposes the simulator's latency histograms so callers that
// shard a workload across many sims (the fleet) can Merge them into
// aggregate distributions after the barrier.
func (s *Sim) Observations() (ttft, tbt *metrics.Histogram) {
	return s.ttft, s.tbt
}

func (s *Sim) result() Result {
	res := Result{
		SimTime:      s.clock,
		Completed:    s.completed,
		Truncated:    s.truncated,
		TokensOut:    s.tokensOut,
		TTFT:         s.ttft.Snapshot(),
		TBT:          s.tbt.Snapshot(),
		Energy:       s.cfg.Memory.TotalEnergy(),
		DecodeSteps:  s.decodeSteps,
		PerTierReads: make(map[string]units.Bytes),
		Faults:       s.faults,
		WastedTokens: s.wasted,
	}
	infos := s.cfg.Memory.Tiers()
	for idx, b := range s.perTierReads {
		if s.readTiers[idx] {
			res.PerTierReads[infos[idx].Name] = b
		}
	}
	if s.clock > 0 {
		res.TokensPerSec = float64(s.tokensOut) / s.clock.Seconds()
	}
	if res.Energy > 0 {
		res.TokensPerJoule = float64(s.tokensOut) / float64(res.Energy)
	}
	if s.decodeSteps > 0 {
		res.MemoryBoundFrac = float64(s.memBoundHits) / float64(s.decodeSteps)
	}
	return res
}
