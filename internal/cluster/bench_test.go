package cluster

import (
	"testing"
	"time"

	"mrm/internal/core"
	"mrm/internal/dist"
	"mrm/internal/llm"
	"mrm/internal/memdev"
	"mrm/internal/tier"
	"mrm/internal/units"
)

// benchNode builds one single-HBM serving node — both weights and KV pages
// on the device tier — under the requested engine.
func benchNode(b *testing.B, stepping bool) *Sim {
	b.Helper()
	spec := memdev.HBM3E
	spec.Capacity = 64 * units.GiB
	spec.ReadBW = 8 * units.TBps
	hbm, err := tier.NewDeviceTier("hbm", spec)
	if err != nil {
		b.Fatal(err)
	}
	m, err := tier.NewManager(tier.StaticPolicy{}, hbm)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := NewSim(Config{
		Model:       llm.Llama27B,
		Acc:         llm.B200,
		Memory:      m,
		PageTokens:  16,
		MaxBatch:    16,
		KVLifetime:  30 * time.Minute,
		ScratchTier: 0,
		Stepping:    stepping,
	})
	if err != nil {
		b.Fatal(err)
	}
	return sim
}

// benchSim builds a serving simulator over a single HBM device tier holding
// both weights and KV pages, with a fixed request stream — the decode loop's
// per-step cost (weights read + per-page KV reads) is what this measures.
func benchSim(b *testing.B) (*Sim, []Request) {
	b.Helper()
	sim := benchNode(b, false)
	g := Generator{
		Workload:   llm.SplitwiseConv,
		RatePerSec: 50,
		Mix:        [3]float64{0.5, 0.3, 0.2},
		MaxContext: 4096,
	}
	reqs, err := g.Generate(dist.NewRNG(42), 48)
	if err != nil {
		b.Fatal(err)
	}
	return sim, reqs
}

// BenchmarkDecodeCoalesce runs a fixed serving workload to completion: its
// hot path is decodeStep's weights read plus the per-request KV page reads,
// the accesses the coalesced read path batches into ranged device calls.
func BenchmarkDecodeCoalesce(b *testing.B) {
	var res Result
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sim, reqs := benchSim(b)
		b.StartTimer()
		var err error
		res, err = sim.Run(reqs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.TokensOut)/float64(res.DecodeSteps), "tokens/step")
	b.ReportMetric(float64(res.DecodeSteps), "steps")
}

// benchMRMSim builds a serving simulator whose only tier is a zoned MRM
// module, so every prefill admission and per-step KV page append rides the
// full batched write chain: cluster PutBatch → tier.MRMTier.PutBatch →
// core.MRM.PutBatch → controller.AppendVec → memdev.WriteSpans.
func benchMRMSim(b *testing.B) (*Sim, []Request) {
	b.Helper()
	cfg := core.DefaultConfig()
	cfg.Capacity = 64 * units.GiB
	mrm, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	m, err := tier.NewManager(tier.StaticPolicy{}, tier.NewMRMTier("mrm", mrm))
	if err != nil {
		b.Fatal(err)
	}
	sim, err := NewSim(Config{
		Model:       llm.Llama27B,
		Acc:         llm.B200,
		Memory:      m,
		PageTokens:  16,
		MaxBatch:    16,
		KVLifetime:  30 * time.Minute,
		ScratchTier: 0,
	})
	if err != nil {
		b.Fatal(err)
	}
	g := Generator{
		Workload:   llm.SplitwiseConv,
		RatePerSec: 50,
		Mix:        [3]float64{0.5, 0.3, 0.2},
		MaxContext: 4096,
	}
	reqs, err := g.Generate(dist.NewRNG(42), 32)
	if err != nil {
		b.Fatal(err)
	}
	return sim, reqs
}

// BenchmarkSimWritePath measures the coalesced append path: a fixed workload
// served entirely out of zoned MRM, where each decode step's KV page appends
// are issued as one PutBatch through the core append chain.
func BenchmarkSimWritePath(b *testing.B) {
	var res Result
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sim, reqs := benchMRMSim(b)
		b.StartTimer()
		var err error
		res, err = sim.Run(reqs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.TokensOut)/float64(res.DecodeSteps), "tokens/step")
	b.ReportMetric(float64(res.DecodeSteps), "steps")
}

// benchFleetRun is the shared body of the fleet benchmark under either
// engine: a four-node fleet (each node the single-HBM benchNode
// configuration) serving one token-balanced request stream serially, so
// results are deterministic and the per-node decode/write loops dominate.
func benchFleetRun(b *testing.B, stepping bool) {
	var res FleetResult
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f, err := NewFleet(4, func(int) (*Sim, error) {
			return benchNode(b, stepping), nil
		})
		if err != nil {
			b.Fatal(err)
		}
		f.Workers = 1
		g := Generator{
			Workload:   llm.SplitwiseConv,
			RatePerSec: 200,
			Mix:        [3]float64{0.5, 0.3, 0.2},
			MaxContext: 4096,
		}
		reqs, err := g.Generate(dist.NewRNG(7), 96)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err = f.Run(reqs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Completed), "completed")
	b.ReportMetric(res.TokensPerSec, "tokens/sec")
}

// BenchmarkFleetRun measures rack-scale orchestration end-to-end under the
// discrete-event engine (the default).
func BenchmarkFleetRun(b *testing.B) { benchFleetRun(b, false) }

// BenchmarkFleetRunStepping runs the identical workload under the legacy
// tick-by-tick engine: the before/after pair the event-engine speedup is
// quoted from.
func BenchmarkFleetRunStepping(b *testing.B) { benchFleetRun(b, true) }

// BenchmarkFleetDay is the scale target: a 1000-node fleet serving a sparse
// day-long Poisson stream (0.25 req/s fleet-wide over ~24 simulated hours),
// run serially. The discrete-event engine jumps each node's clock between
// arrivals instead of grinding through idle ticks, which is what makes a
// simulated fleet-day of wall time affordable; the budget is under a minute
// of CPU. Reported sim-hours is the span the simulation covered.
func BenchmarkFleetDay(b *testing.B) {
	var res FleetResult
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f, err := NewFleet(1000, func(int) (*Sim, error) {
			return benchNode(b, false), nil
		})
		if err != nil {
			b.Fatal(err)
		}
		f.Workers = 1
		g := Generator{
			Workload:   llm.SplitwiseConv,
			RatePerSec: 0.25,
			Mix:        [3]float64{0.5, 0.3, 0.2},
			MaxContext: 4096,
		}
		reqs, err := g.Generate(dist.NewRNG(11), 21600)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err = f.Run(reqs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.WallTime.Hours(), "sim-hours")
	b.ReportMetric(float64(res.Completed), "completed")
}

// benchFleetDayStream is the shared body of the streamed fleet-day
// benchmarks: the same 1000 nodes and 21.6k-request day as BenchmarkFleetDay,
// but generated block by block (Generator.Stream) and executed windowed
// (Fleet.RunStream), so the request stream is never materialized.
func benchFleetDayStream(b *testing.B, workers int) {
	var res FleetResult
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f, err := NewFleet(1000, func(int) (*Sim, error) {
			return benchNode(b, false), nil
		})
		if err != nil {
			b.Fatal(err)
		}
		f.Workers = workers
		g := Generator{
			Workload:   llm.SplitwiseConv,
			RatePerSec: 0.25,
			Mix:        [3]float64{0.5, 0.3, 0.2},
			MaxContext: 4096,
		}
		b.StartTimer()
		src, err := g.Stream(dist.NewRNG(11), 21600)
		if err != nil {
			b.Fatal(err)
		}
		res, err = f.RunStream(src)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.WallTime.Hours(), "sim-hours")
	b.ReportMetric(float64(res.Completed), "completed")
}

// BenchmarkFleetDayStream is the streamed fleet-day at Workers=1 — the
// serial reference whose results are bit-identical to the batch twin; the
// interesting deltas are B/op and allocs/op.
func BenchmarkFleetDayStream(b *testing.B) { benchFleetDayStream(b, 1) }

// BenchmarkFleetDayStreamParallel is the same day through the pipelined
// path at the default worker count: window execution overlaps the next
// window's generation+placement on the persistent pool, and request
// synthesis fans out in ordered chunks. On a single-CPU host it tracks
// BenchmarkFleetDayStream; with cores the overlap shows up as wall-time.
func BenchmarkFleetDayStreamParallel(b *testing.B) { benchFleetDayStream(b, 0) }

// dayGenerator is the fleet-day request mix shared by the generation and
// placement microbenches: same workload, rate, and seed as the fleet-day
// benchmarks, so their costs decompose BenchmarkFleetDayStream's.
func dayGenerator() Generator {
	return Generator{
		Workload:   llm.SplitwiseConv,
		RatePerSec: 0.25,
		Mix:        [3]float64{0.5, 0.3, 0.2},
		MaxContext: 4096,
	}
}

// BenchmarkGeneratorStream isolates request synthesis: one op drains the
// 21.6k-request fleet-day stream through the serial block iterator. Compare
// against BenchmarkFleetPlacement and BenchmarkFleetDayStream to see where
// a streamed replay's time actually goes.
func BenchmarkGeneratorStream(b *testing.B) {
	st, err := dayGenerator().Stream(dist.NewRNG(11), 21600)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		st.Reset()
		n = 0
		for {
			_, ok := st.Next()
			if !ok {
				break
			}
			n++
		}
	}
	b.ReportMetric(float64(n), "requests")
}

// BenchmarkFleetPlacement isolates the placement heap: one op replays the
// 21.6k-request day through loadHeap.assign over 1000 nodes — generation
// plus placement, no execution. Subtracting BenchmarkGeneratorStream leaves
// the heap's own cost.
func BenchmarkFleetPlacement(b *testing.B) {
	st, err := dayGenerator().Stream(dist.NewRNG(11), 21600)
	if err != nil {
		b.Fatal(err)
	}
	const nodes = 1000
	idx := make([]int, nodes)
	for i := range idx {
		idx[i] = i
	}
	load := make([]int64, nodes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Reset()
		for j := range load {
			load[j] = 0
		}
		h := newLoadHeap(idx, load)
		for {
			req, ok := st.Next()
			if !ok {
				break
			}
			h.assign(int64(req.PromptTokens + req.OutputTokens))
		}
	}
}
