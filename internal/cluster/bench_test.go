package cluster

import (
	"testing"
	"time"

	"mrm/internal/dist"
	"mrm/internal/llm"
	"mrm/internal/memdev"
	"mrm/internal/tier"
	"mrm/internal/units"
)

// benchSim builds a serving simulator over a single HBM device tier holding
// both weights and KV pages, with a fixed request stream — the decode loop's
// per-step cost (weights read + per-page KV reads) is what this measures.
func benchSim(b *testing.B) (*Sim, []Request) {
	b.Helper()
	spec := memdev.HBM3E
	spec.Capacity = 64 * units.GiB
	spec.ReadBW = 8 * units.TBps
	hbm, err := tier.NewDeviceTier("hbm", spec)
	if err != nil {
		b.Fatal(err)
	}
	m, err := tier.NewManager(tier.StaticPolicy{}, hbm)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := NewSim(Config{
		Model:       llm.Llama27B,
		Acc:         llm.B200,
		Memory:      m,
		PageTokens:  16,
		MaxBatch:    16,
		KVLifetime:  30 * time.Minute,
		ScratchTier: 0,
	})
	if err != nil {
		b.Fatal(err)
	}
	g := Generator{
		Workload:   llm.SplitwiseConv,
		RatePerSec: 50,
		Mix:        [3]float64{0.5, 0.3, 0.2},
		MaxContext: 4096,
	}
	reqs, err := g.Generate(dist.NewRNG(42), 48)
	if err != nil {
		b.Fatal(err)
	}
	return sim, reqs
}

// BenchmarkDecodeCoalesce runs a fixed serving workload to completion: its
// hot path is decodeStep's weights read plus the per-request KV page reads,
// the accesses the coalesced read path batches into ranged device calls.
func BenchmarkDecodeCoalesce(b *testing.B) {
	var res Result
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sim, reqs := benchSim(b)
		b.StartTimer()
		var err error
		res, err = sim.Run(reqs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.TokensOut)/float64(res.DecodeSteps), "tokens/step")
	b.ReportMetric(float64(res.DecodeSteps), "steps")
}
