package cluster

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"mrm/internal/llm"
)

func fleetOf(t *testing.T, n int) *Fleet {
	t.Helper()
	f, err := NewFleet(n, func(int) (*Sim, error) {
		return NewSim(Config{
			Model: llm.Llama27B, Acc: llm.B200,
			Memory: hbmOnly(t), PageTokens: 16, MaxBatch: 4,
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewFleetValidation(t *testing.T) {
	if _, err := NewFleet(0, nil); err == nil {
		t.Fatal("zero nodes should error")
	}
	wantErr := errors.New("boom")
	if _, err := NewFleet(2, func(int) (*Sim, error) { return nil, wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("factory error not propagated: %v", err)
	}
}

func TestFleetCompletesEverything(t *testing.T) {
	f := fleetOf(t, 3)
	if f.NumNodes() != 3 {
		t.Fatal("node count wrong")
	}
	reqs := shortRequests(18)
	res, err := f.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 18 || res.Truncated != 0 {
		t.Fatalf("completed %d truncated %d", res.Completed, res.Truncated)
	}
	if res.TokensOut != 18*24 {
		t.Fatalf("tokens = %d", res.TokensOut)
	}
	if len(res.PerNode) != 3 {
		t.Fatal("per-node results missing")
	}
	if res.TokensPerSec <= 0 || res.TokensPerJoule <= 0 {
		t.Fatal("aggregate efficiency missing")
	}
}

func TestFleetBalances(t *testing.T) {
	f := fleetOf(t, 3)
	// Uniform requests: token-balanced placement should split evenly.
	res, err := f.Run(shortRequests(18))
	if err != nil {
		t.Fatal(err)
	}
	if res.Balance < 0.95 {
		t.Fatalf("balance = %v, want ~1 for uniform requests", res.Balance)
	}
}

func TestFleetScalesThroughput(t *testing.T) {
	reqs := shortRequests(16)
	for i := range reqs {
		reqs[i].Arrival = 0 // saturate
	}
	r1, err := fleetOf(t, 1).Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := fleetOf(t, 4).Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if r4.TokensPerSec < 2.5*r1.TokensPerSec {
		t.Fatalf("4 nodes (%v tok/s) should well exceed 1 node (%v tok/s)",
			r4.TokensPerSec, r1.TokensPerSec)
	}
	if r4.WallTime >= r1.WallTime {
		t.Fatalf("4-node wall time %v should beat 1-node %v", r4.WallTime, r1.WallTime)
	}
}

func TestFleetParallelMatchesSerial(t *testing.T) {
	reqs := shortRequests(24)
	run := func(workers int) FleetResult {
		f := fleetOf(t, 3) // fresh nodes per run: Sims accumulate state
		f.Workers = workers
		res, err := f.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	for _, w := range []int{2, 8} {
		if got := run(w); !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d: fleet result diverged from serial:\n got %+v\nwant %+v", w, got, serial)
		}
	}
	// The fleet-wide latency distributions are the merged per-node histograms:
	// one TTFT observation per completed request, across all nodes.
	if serial.TTFT.Count != int64(serial.Completed) {
		t.Fatalf("fleet TTFT count = %d, want %d", serial.TTFT.Count, serial.Completed)
	}
	if serial.TBT.Count == 0 || serial.TBT.P99 <= 0 {
		t.Fatalf("fleet TBT snapshot empty: %+v", serial.TBT)
	}
}

func TestFleetFailoverRequeuesOntoSurvivors(t *testing.T) {
	reqs := shortRequests(18)
	// Baseline to learn the wall time, then fail one node halfway through.
	base, err := fleetOf(t, 3).Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	f := fleetOf(t, 3)
	f.Failures = []NodeFailure{{Node: 1, At: base.WallTime / 2}}
	res, err := f.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedNodes != 1 {
		t.Fatalf("FailedNodes = %d", res.FailedNodes)
	}
	if res.Requeued == 0 {
		t.Fatal("a mid-run fail-stop should orphan at least one request")
	}
	if res.Unserved != 0 {
		t.Fatalf("survivors exist, yet %d requests unserved", res.Unserved)
	}
	// Every request still completes — just later and with wasted work.
	if res.Completed+res.Truncated != len(reqs) {
		t.Fatalf("completed %d + truncated %d != %d", res.Completed, res.Truncated, len(reqs))
	}
	if res.GoodTokens != res.TokensOut-res.WastedTokens {
		t.Fatalf("goodput accounting: good %d, total %d, wasted %d",
			res.GoodTokens, res.TokensOut, res.WastedTokens)
	}
	if res.GoodTokensPerSec > res.TokensPerSec {
		t.Fatal("goodput cannot exceed raw throughput")
	}
	// Requeued work can only push the fleet's finish time out, never in.
	if res.WallTime < base.WallTime {
		t.Fatalf("degraded run (%v) finished before baseline (%v)", res.WallTime, base.WallTime)
	}
}

func TestFleetAllNodesFailLosesRequests(t *testing.T) {
	f := fleetOf(t, 2)
	f.Failures = []NodeFailure{{Node: 0, At: 0}, {Node: 1, At: 0}}
	res, err := f.Run(shortRequests(6))
	if err != nil {
		t.Fatal(err)
	}
	if res.Unserved != 6 || res.Requeued != 0 {
		t.Fatalf("unserved %d requeued %d, want 6 and 0", res.Unserved, res.Requeued)
	}
	if res.Completed != 0 {
		t.Fatalf("completed %d with no survivors", res.Completed)
	}
}

func TestFleetFailureValidation(t *testing.T) {
	f := fleetOf(t, 2)
	f.Failures = []NodeFailure{{Node: 5, At: time.Second}}
	if _, err := f.Run(shortRequests(2)); err == nil {
		t.Fatal("out-of-range node should error")
	}
	f = fleetOf(t, 2)
	f.Failures = []NodeFailure{{Node: 0, At: -time.Second}}
	if _, err := f.Run(shortRequests(2)); err == nil {
		t.Fatal("negative fail time should error")
	}
}

func TestFleetFailoverDeterministicAcrossWorkers(t *testing.T) {
	// The ISSUE's determinism bar: a fleet with scheduled node failures must
	// produce an identical FleetResult at Workers=1 and Workers=8.
	reqs := shortRequests(24)
	run := func(workers int) FleetResult {
		f := fleetOf(t, 4)
		f.Workers = workers
		f.Failures = []NodeFailure{{Node: 2, At: 500 * time.Millisecond}, {Node: 0, At: time.Second}}
		res, err := f.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	if serial.Requeued == 0 {
		t.Fatal("test wants a run that actually requeues work")
	}
	for _, w := range []int{2, 8} {
		if got := run(w); !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d: degraded fleet result diverged from serial:\n got %+v\nwant %+v",
				w, got, serial)
		}
	}
}

func TestFleetSimultaneousFailStopDeterministic(t *testing.T) {
	// Two nodes fail-stopping at the SAME virtual instant is the nastiest
	// requeue case: both orphan sets merge into the survivors' queues in one
	// scheduling round. The merge must be deterministic — byte-identical
	// results at any worker count and any -parallel setting, over repeated
	// runs.
	t.Parallel()
	reqs := shortRequests(24)
	run := func(workers int) FleetResult {
		f := fleetOf(t, 4)
		f.Workers = workers
		// Same instant, deliberately listed out of node order.
		f.Failures = []NodeFailure{
			{Node: 2, At: 400 * time.Millisecond},
			{Node: 1, At: 400 * time.Millisecond},
		}
		res, err := f.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	if serial.FailedNodes != 2 {
		t.Fatalf("FailedNodes = %d, want 2", serial.FailedNodes)
	}
	if serial.Requeued == 0 {
		t.Fatal("test wants a failure instant that actually orphans work")
	}
	if serial.Completed+serial.Truncated != len(reqs) {
		t.Fatalf("completed %d + truncated %d != %d", serial.Completed, serial.Truncated, len(reqs))
	}
	want := fmt.Sprintf("%+v", serial)
	for rep := 0; rep < 3; rep++ {
		for _, w := range []int{1, 2, 8} {
			got := run(w)
			if !reflect.DeepEqual(got, serial) {
				t.Fatalf("rep=%d workers=%d: simultaneous fail-stop diverged:\n got %+v\nwant %+v",
					rep, w, got, serial)
			}
			if s := fmt.Sprintf("%+v", got); s != want {
				t.Fatalf("rep=%d workers=%d: rendered result not byte-identical", rep, w)
			}
		}
	}
}

func TestFleetSkewedRequestsStillAssignLeastLoaded(t *testing.T) {
	f := fleetOf(t, 2)
	// One huge request plus many small: the big one should not share a node
	// with most of the small ones.
	reqs := []Request{{ID: 0, PromptTokens: 2000, OutputTokens: 512}}
	for i := 1; i <= 8; i++ {
		reqs = append(reqs, Request{ID: uint64(i), Arrival: time.Duration(i) * time.Millisecond,
			PromptTokens: 64, OutputTokens: 16})
	}
	res, err := f.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 9 {
		t.Fatalf("completed = %d", res.Completed)
	}
	// The node with the big request should have far fewer completions.
	a, b := res.PerNode[0].Completed, res.PerNode[1].Completed
	if a > b {
		a, b = b, a
	}
	if a > 3 {
		t.Fatalf("load balancing failed: completions %d vs %d", a, b)
	}
}
