package cluster

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"mrm/internal/dist"
	"mrm/internal/llm"
	"mrm/internal/memdev"
	"mrm/internal/sweep"
	"mrm/internal/tier"
)

// pipelineTwinFleet is streamTwinFleet with a Config hook, so pipeline twins
// can run under IdleTick (and any other engine mode) too.
func pipelineTwinFleet(t *testing.T, n int, cfgMut func(*Config), faults *memdev.FaultConfig) (*Fleet, *Fleet) {
	t.Helper()
	mk := func(int) (*Sim, error) {
		m := hbmOnly(t)
		cfg := Config{
			Model: llm.Llama27B, Acc: llm.B200,
			Memory: m, PageTokens: 16, MaxBatch: 4,
		}
		if cfgMut != nil {
			cfgMut(&cfg)
		}
		s, err := NewSim(cfg)
		if err != nil {
			return nil, err
		}
		if faults != nil {
			for _, b := range m.Backends() {
				if f, ok := b.(tier.Faultable); ok {
					f.SetFaults(*faults)
				}
			}
		}
		return s, nil
	}
	batch, err := NewFleet(n, mk)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := NewFleet(n, mk)
	if err != nil {
		t.Fatal(err)
	}
	return batch, stream
}

// runGenTwins feeds the same generator sequence through batch Run and a
// generator-fed RunStream — the fleetday path, which at Workers > 1 also
// exercises the block pump (parallel request synthesis) — and requires
// bit-identical FleetResults.
func runGenTwins(t *testing.T, seed uint64, nreqs, nodes, workers, window int,
	cfgMut func(*Config), fleetMut func(*Fleet), faults *memdev.FaultConfig) FleetResult {
	t.Helper()
	g := testGenerator()
	reqs, err := g.Generate(dist.NewRNG(seed), nreqs)
	if err != nil {
		t.Fatal(err)
	}
	batch, stream := pipelineTwinFleet(t, nodes, cfgMut, faults)
	batch.Workers = workers
	stream.Workers = workers
	stream.Window = window
	if fleetMut != nil {
		fleetMut(batch)
		fleetMut(stream)
	}
	want, err := batch.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	src, err := g.Stream(dist.NewRNG(seed), nreqs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := stream.RunStream(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pipelined RunStream diverged from Run (workers=%d window=%d):\n got %+v\nwant %+v",
			workers, window, got, want)
	}
	return got
}

// TestRunStreamPipelinedIdleTick: the pipelined replay must stay
// bit-identical to batch when nodes advance memory time through idle windows
// (IdleTick schedules refresh/scrub work inside arrival gaps, so segment
// boundaries landing inside idle windows are exactly the edge the pipeline
// must not move).
func TestRunStreamPipelinedIdleTick(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		runGenTwins(t, 21, 90, 3, workers, 16,
			func(c *Config) { c.IdleTick = true }, nil, nil)
	}
}

// TestRunStreamPipelinedArmedFaults: parallel generation + async windows +
// failover requeue under armed transient and lapse faults — fault-injection
// event indices are derived from device read counters, so any reordering or
// double-charge in the pipelined path would shift them and diverge.
func TestRunStreamPipelinedArmedFaults(t *testing.T) {
	faults := &memdev.FaultConfig{Seed: 7, TransientRate: 1e-3, LapseRate: 1e-4}
	for _, workers := range []int{2, 8} {
		res := runGenTwins(t, 13, 64, 3, workers, 8, nil,
			func(f *Fleet) { f.Failures = []NodeFailure{{Node: 1, At: 4 * time.Second}} },
			faults)
		if res.Requeued == 0 {
			t.Fatal("failover scenario should requeue work")
		}
		if res.Faults.KVPagesLost == 0 && res.Faults.KVTokensRecomputed == 0 {
			t.Fatal("armed faults should register graceful-degradation work")
		}
	}
}

// TestStreamSeekBlock pins seek-then-drain to plain drain: after
// SeekBlock(b), the remaining requests — absolute arrivals included — must
// be byte-identical to the tail of a full drain.
func TestStreamSeekBlock(t *testing.T) {
	g := testGenerator()
	const n = GenBlock*3 + 17 // a short final block
	st, err := g.Stream(dist.NewRNG(4), n)
	if err != nil {
		t.Fatal(err)
	}
	var all []Request
	for {
		req, ok := st.Next()
		if !ok {
			break
		}
		all = append(all, req)
	}
	for _, b := range []int{0, 1, 2, 3, st.Blocks()} {
		if err := st.SeekBlock(b); err != nil {
			t.Fatal(err)
		}
		var tail []Request
		for {
			req, ok := st.Next()
			if !ok {
				break
			}
			tail = append(tail, req)
		}
		want := all[min(b*GenBlock, n):]
		if len(tail) != len(want) {
			t.Fatalf("SeekBlock(%d): %d requests, want %d", b, len(tail), len(want))
		}
		for i := range want {
			if tail[i] != want[i] {
				t.Fatalf("SeekBlock(%d) request %d diverged:\n got %+v\nwant %+v", b, i, tail[i], want[i])
			}
		}
	}
	// Seeking mid-stream then crossing a block boundary must keep the
	// absolute clock exact (covered above), and out-of-range seeks error.
	for _, b := range []int{-1, st.Blocks() + 1} {
		if err := st.SeekBlock(b); err == nil {
			t.Fatalf("SeekBlock(%d) should error", b)
		}
	}
}

// TestGenerateBlockMatchesNext: each block's relative arrivals plus the
// running sum of block advances must reproduce the serial stream exactly —
// the recombination invariant the chunked pump depends on.
func TestGenerateBlockMatchesNext(t *testing.T) {
	g := testGenerator()
	const n = GenBlock*2 + 5
	st, err := g.Stream(dist.NewRNG(8), n)
	if err != nil {
		t.Fatal(err)
	}
	var serial []Request
	for {
		req, ok := st.Next()
		if !ok {
			break
		}
		serial = append(serial, req)
	}
	var clock time.Duration
	var rebuilt []Request
	for b := 0; b < st.Blocks(); b++ {
		block, adv := st.GenerateBlock(b, nil)
		for _, req := range block {
			req.Arrival += clock
			rebuilt = append(rebuilt, req)
		}
		clock += adv
	}
	if !reflect.DeepEqual(rebuilt, serial) {
		t.Fatal("block-rebuilt stream diverged from serial Next drain")
	}
}

// TestBlockPumpMatchesSerialDrain runs the pump (parallel chunked synthesis,
// ordered harvest) against a serial drain of the same stream, across sizes
// that cover partial chunks and partial blocks.
func TestBlockPumpMatchesSerialDrain(t *testing.T) {
	g := testGenerator()
	pool := sweep.NewPool(4)
	defer pool.Close()
	for _, n := range []int{1, GenBlock, GenBlock + 1, genChunkBlocks*GenBlock + 3, 3*genChunkBlocks*GenBlock - 1} {
		st, err := g.Stream(dist.NewRNG(77), n)
		if err != nil {
			t.Fatal(err)
		}
		var serial []Request
		for {
			req, ok := st.Next()
			if !ok {
				break
			}
			serial = append(serial, req)
		}
		pump := newBlockPump(st, pool)
		for i := 0; ; i++ {
			req, ok, err := pump.next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				if i != len(serial) {
					t.Fatalf("n=%d: pump yielded %d requests, want %d", n, i, len(serial))
				}
				break
			}
			if i >= len(serial) || req != serial[i] {
				t.Fatalf("n=%d: pump request %d diverged", n, i)
			}
		}
	}
}

// TestPlacementManifestPaging exercises append/at across page boundaries.
func TestPlacementManifestPaging(t *testing.T) {
	var m placementManifest
	const n = manifestPageSize*2 + 100
	for i := 0; i < n; i++ {
		m.append(i % 1000)
	}
	if m.n != n {
		t.Fatalf("n = %d, want %d", m.n, n)
	}
	for _, i := range []int{0, manifestPageSize - 1, manifestPageSize, n - 1} {
		if got := m.at(i); got != i%1000 {
			t.Fatalf("at(%d) = %d, want %d", i, got, i%1000)
		}
	}
	if _, err := m.lookup(n, 2000); err == nil || !strings.Contains(err.Error(), "manifest ends") {
		t.Fatalf("lookup past end should error, got %v", err)
	}
	if _, err := m.lookup(0, 0); err == nil || !strings.Contains(err.Error(), "bad node") {
		t.Fatalf("lookup with out-of-range node should error, got %v", err)
	}
}

// TestPlacementManifestDivergence: a corrupted manifest must error loudly on
// the replay passes — via the canonical-load check for a swapped node id,
// and via the bounds check for an impossible node id — never silently
// misplace.
func TestPlacementManifestDivergence(t *testing.T) {
	reqs := shortRequests(12)
	run := func(corrupt func(*placementManifest)) error {
		_, f := streamTwinFleet(t, 2, nil)
		pool := sweep.NewPool(1)
		defer pool.Close()
		sr := &streamRun{f: f, pool: pool, window: 4,
			load: make([]int64, 2), man: &placementManifest{}}
		// Record pass state: place the whole stream once so the manifest and
		// canonical loads are filled, exactly as RunStream's first class pass
		// would. Replaying with a corrupted manifest must then error.
		if err := sr.phase(&SliceSource{Reqs: reqs}, []int{0, 1}, nil, nil); err != nil {
			return err
		}
		corrupt(sr.man)
		// Fresh nodes for the replay: the first phase already close-out ran
		// the originals.
		_, f2 := streamTwinFleet(t, 2, nil)
		sr.f = f2
		return sr.phase(&SliceSource{Reqs: reqs}, []int{0, 1}, nil, nil)
	}
	if err := run(func(*placementManifest) {}); err != nil {
		t.Fatalf("clean manifest replay should succeed, got %v", err)
	}
	// Swap one placement to the other node: per-node load sums shift, the
	// canonical-load verification must catch it.
	err := run(func(m *placementManifest) { m.pages[0][3] ^= 1 })
	if err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("swapped manifest entry should report divergence, got %v", err)
	}
	// An impossible node id fails the bounds check at lookup time.
	err = run(func(m *placementManifest) { m.pages[0][3] = 99 })
	if err == nil || !strings.Contains(err.Error(), "bad node") {
		t.Fatalf("out-of-range manifest entry should error, got %v", err)
	}
	// A short manifest fails the length check.
	err = run(func(m *placementManifest) { m.pages[0] = m.pages[0][:len(m.pages[0])-1]; m.n-- })
	if err == nil || !strings.Contains(err.Error(), "manifest ends") {
		t.Fatalf("truncated manifest should error, got %v", err)
	}
}

// TestRunStreamDivergentSourceErrors: a source whose replays disagree must
// fail the canonical-load verification, not silently corrupt placement.
func TestRunStreamDivergentSourceErrors(t *testing.T) {
	_, f := streamTwinFleet(t, 2, nil)
	src := &divergingSource{reqs: shortRequests(9)}
	if _, err := f.RunStream(src); err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("diverging source should error, got %v", err)
	}
}

// divergingSource yields different token counts on each replay.
type divergingSource struct {
	reqs []Request
	next int
	pass int
}

func (d *divergingSource) Next() (Request, bool) {
	if d.next >= len(d.reqs) {
		return Request{}, false
	}
	r := d.reqs[d.next]
	r.PromptTokens += d.pass * 7 // replays disagree
	d.next++
	return r, true
}

func (d *divergingSource) Reset() { d.next = 0; d.pass++ }
