package cluster

import (
	"context"
	"fmt"
	"sort"
	"time"

	"mrm/internal/eventq"
	"mrm/internal/metrics"
	"mrm/internal/sweep"
	"mrm/internal/units"
)

// Fleet schedules a request stream across multiple serving nodes — the
// rack-scale orchestration layer the paper's §4 describes as "building up
// towards a rack-scale OS for foundation model inference". Placement is
// token-balanced: each request goes to the node with the least assigned
// work, the static analogue of join-shortest-queue.
type Fleet struct {
	nodes []*Sim
	// Workers bounds the goroutines used to run nodes (0 = the sweep
	// default, 1 = serial). Nodes are independent simulators, so results are
	// identical at any worker count.
	Workers int
	// Failures schedules fail-stop events: each named node halts at its
	// simulated time, its in-flight and unserved requests are requeued onto
	// surviving nodes (fresh, least-loaded), and the fleet reports
	// degraded-mode latency and goodput. Multiple entries for one node keep
	// the earliest time.
	Failures []NodeFailure
	// Window bounds the number of requests RunStream buffers between
	// execution sweeps (0 = DefaultWindow). Peak memory for a streamed
	// replay is O(nodes + Window + orphans), independent of stream length;
	// smaller windows trade memory for more sweep barriers.
	Window int
	// Progress, when non-nil, is called by RunStream at every window
	// dispatch with the cumulative number of requests fed into node
	// execution buffers so far. The call points are window boundaries of the
	// deterministic replay, so the sequence of values is itself
	// deterministic; what the callback does with wall-clock time is the
	// caller's business (mrmsim fleetday -progress).
	Progress func(fed int64)
}

// DefaultWindow is RunStream's buffered-request budget when Fleet.Window is
// zero: large enough that sweep-barrier overhead is negligible against node
// simulation work, small enough that a streamed million-user day never holds
// more than a sliver of it in memory.
const DefaultWindow = 8192

// NodeFailure schedules a fail-stop: node Node halts at simulated time At.
type NodeFailure struct {
	Node int
	At   time.Duration
}

// NewFleet constructs n nodes with the given factory. Construction fans out
// over the sweep pool — nodes are independent simulators, and thousand-node
// fleets are built inside every daemon rebuild and benchmark setup — so mk
// must be safe for concurrent calls (each call should build its own memory
// system, as every existing factory does). Nodes land in index order and a
// failing factory reports the lowest failing index, exactly as the serial
// loop it replaces did.
func NewFleet(n int, mk func(node int) (*Sim, error)) (*Fleet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	nodes, err := sweep.Run(context.Background(), sweep.Config{}, n,
		func(_ context.Context, c sweep.Cell) (*Sim, error) {
			s, err := mk(c.Index)
			if err != nil {
				return nil, fmt.Errorf("cluster: building node %d: %w", c.Index, err)
			}
			return s, nil
		})
	if err != nil {
		return nil, err
	}
	return &Fleet{nodes: nodes}, nil
}

// NumNodes returns the fleet size.
func (f *Fleet) NumNodes() int { return len(f.nodes) }

// FleetResult aggregates per-node results.
type FleetResult struct {
	PerNode []Result
	// Aggregates.
	Completed      int
	Truncated      int
	TokensOut      int64
	Energy         units.Energy
	WallTime       time.Duration // max node sim time (nodes run in parallel)
	TokensPerSec   float64
	TokensPerJoule float64
	// Balance is min/max of per-node token output (1 = perfectly even).
	Balance float64
	// TTFT and TBT are fleet-wide latency distributions: every node's
	// histogram merged after the barrier (metrics.Histogram.Merge), exactly
	// as if one accumulator had observed all requests.
	TTFT metrics.Snapshot
	TBT  metrics.Snapshot
	// Degraded-mode accounting (zero when no failures are scheduled).
	FailedNodes  int
	Requeued     int   // requests moved to survivors after fail-stops
	Unserved     int   // requests lost outright (no surviving node)
	WastedTokens int64 // tokens generated on failed nodes and redone
	// GoodTokens is TokensOut minus WastedTokens: output that reached a
	// completed request. GoodTokensPerSec is the fleet's goodput.
	GoodTokens       int64
	GoodTokensPerSec float64
	// Faults aggregates per-node graceful-degradation work.
	Faults FaultStats
}

// failurePlan validates Failures and splits the fleet by fate: failAt[i] < 0
// means node i survives. failing and surviving are ascending node indices.
func (f *Fleet) failurePlan() (failAt []time.Duration, failing, surviving []int, err error) {
	failAt = make([]time.Duration, len(f.nodes))
	for i := range failAt {
		failAt[i] = -1
	}
	for _, nf := range f.Failures {
		if nf.Node < 0 || nf.Node >= len(f.nodes) {
			return nil, nil, nil, fmt.Errorf("cluster: failure names bad node %d", nf.Node)
		}
		if nf.At < 0 {
			return nil, nil, nil, fmt.Errorf("cluster: failure time %v for node %d", nf.At, nf.Node)
		}
		if failAt[nf.Node] < 0 || nf.At < failAt[nf.Node] {
			failAt[nf.Node] = nf.At
		}
	}
	for i := range f.nodes {
		if failAt[i] >= 0 {
			failing = append(failing, i)
		} else {
			surviving = append(surviving, i)
		}
	}
	return failAt, failing, surviving, nil
}

// arrivalOrdered reports whether reqs already have non-decreasing arrivals —
// Generator output always does — in which case Run's defensive copy and
// stable sort are the identity and are skipped.
func arrivalOrdered(reqs []Request) bool {
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival < reqs[i-1].Arrival {
			return false
		}
	}
	return true
}

// Run partitions the stream (token-balanced, arrival order preserved per
// node) and runs every node to completion — or, for nodes with a scheduled
// failure, until their fail-stop time. Failing nodes run first (one sweep
// barrier), their unfinished requests are requeued deterministically onto
// survivors, then survivors run. Nodes simulate concurrently on the sweep
// pool; every phase reduces in node order, so the outcome is bit-identical
// to running the nodes one after another at any worker count.
//
// Run materializes every shard for the whole run; RunStream is the
// stream-native twin that replays the same placement and execution with
// windowed peak memory, bit-identical on arrival-sorted input.
func (f *Fleet) Run(reqs []Request) (FleetResult, error) {
	shards := make([][]Request, len(f.nodes))
	load := make([]int64, len(f.nodes))
	ordered := reqs
	if !arrivalOrdered(reqs) {
		ordered = make([]Request, len(reqs))
		copy(ordered, reqs)
		sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Arrival < ordered[j].Arrival })
	}
	for _, r := range ordered {
		// Least-loaded placement by assigned token volume. The linear scan is
		// kept as the reference the RunStream placement heap is pinned
		// against (lowest index wins load ties).
		best := 0
		for i := 1; i < len(load); i++ {
			if load[i] < load[best] {
				best = i
			}
		}
		shards[best] = append(shards[best], r)
		load[best] += int64(r.PromptTokens + r.OutputTokens)
	}
	failAt, failing, surviving, err := f.failurePlan()
	if err != nil {
		return FleetResult{}, err
	}
	// One persistent pool for every sweep in this run: the failing and
	// surviving phases reuse the same workers instead of rebuilding them.
	pool := sweep.NewPool(f.Workers)
	defer pool.Close()
	perNode := make([]Result, len(f.nodes))
	out := FleetResult{PerNode: perNode, FailedNodes: len(failing)}
	if len(failing) > 0 {
		type partial struct {
			res  Result
			left []Request
		}
		parts, err := sweep.MapOn(pool, 0, failing,
			func(_ context.Context, _ sweep.Cell, node int) (partial, error) {
				res, left, err := f.nodes[node].RunUntil(shards[node], failAt[node])
				if err != nil {
					return partial{}, fmt.Errorf("cluster: node %d: %w", node, err)
				}
				return partial{res: res, left: left}, nil
			})
		if err != nil {
			return FleetResult{}, err
		}
		// Requeue through a cross-node event merge: an orphan re-arrives no
		// earlier than its node's fail-stop (detection), fresh (its KV died).
		// Each failing node pushes its orphans in node order onto one
		// calendar, and popping yields them in (re-arrival time, push order) —
		// the same order a stable sort by arrival produces, with the tie-break
		// explicit in the event queue rather than implicit in sort stability.
		var orphans []Request
		var merge eventq.Calendar
		for k, node := range failing {
			perNode[node] = parts[k].res
			for _, req := range parts[k].left {
				if req.Arrival < failAt[node] {
					req.Arrival = failAt[node]
				}
				merge.Push(req.Arrival, eventq.KindArrival, uint64(len(orphans)))
				orphans = append(orphans, req)
			}
		}
		if len(surviving) == 0 {
			out.Unserved = len(orphans)
		} else {
			out.Requeued = len(orphans)
			for merge.Len() > 0 {
				ev, _ := merge.Pop()
				req := orphans[ev.Data]
				best := surviving[0]
				for _, i := range surviving[1:] {
					if load[i] < load[best] {
						best = i
					}
				}
				shards[best] = append(shards[best], req)
				load[best] += int64(req.PromptTokens + req.OutputTokens)
			}
		}
	}
	if len(surviving) > 0 {
		res, err := sweep.MapOn(pool, 0, surviving,
			func(_ context.Context, _ sweep.Cell, node int) (Result, error) {
				r, err := f.nodes[node].Run(shards[node])
				if err != nil {
					return Result{}, fmt.Errorf("cluster: node %d: %w", node, err)
				}
				return r, nil
			})
		if err != nil {
			return FleetResult{}, err
		}
		for k, node := range surviving {
			perNode[node] = res[k]
		}
	}
	f.reduce(&out)
	return out, nil
}

// reduce folds the per-node results already stored in out.PerNode into the
// fleet aggregates. It runs serially in node order after the sweep barriers,
// so sums and histogram merges come out independent of which worker finished
// first — Run and RunStream share it, which is half of their equivalence.
func (f *Fleet) reduce(out *FleetResult) {
	ttft := metrics.NewHistogram(1e-6, 1.05)
	tbt := metrics.NewHistogram(1e-6, 1.05)
	var minTok, maxTok int64 = 1<<62 - 1, 0
	for i, res := range out.PerNode {
		out.Completed += res.Completed
		out.Truncated += res.Truncated
		out.TokensOut += res.TokensOut
		out.Energy += res.Energy
		if res.SimTime > out.WallTime {
			out.WallTime = res.SimTime
		}
		if res.TokensOut < minTok {
			minTok = res.TokensOut
		}
		if res.TokensOut > maxTok {
			maxTok = res.TokensOut
		}
		out.WastedTokens += res.WastedTokens
		out.Faults = out.Faults.Add(res.Faults)
		nodeTTFT, nodeTBT := f.nodes[i].Observations()
		ttft.Merge(nodeTTFT)
		tbt.Merge(nodeTBT)
	}
	out.TTFT = ttft.Snapshot()
	out.TBT = tbt.Snapshot()
	out.GoodTokens = out.TokensOut - out.WastedTokens
	if out.WallTime > 0 {
		out.TokensPerSec = float64(out.TokensOut) / out.WallTime.Seconds()
		out.GoodTokensPerSec = float64(out.GoodTokens) / out.WallTime.Seconds()
	}
	if out.Energy > 0 {
		out.TokensPerJoule = float64(out.TokensOut) / float64(out.Energy)
	}
	if maxTok > 0 {
		out.Balance = float64(minTok) / float64(maxTok)
	}
}

// RequestSource is a restartable stream of requests in arrival order (what
// Generator.Stream yields). RunStream replays the source once per SLA class,
// so Reset must rewind to the first request and the replayed sequence must
// be identical — for a seeded generator stream that holds by construction.
type RequestSource interface {
	// Next returns the stream's next request, or ok=false at the end.
	Next() (Request, bool)
	// Reset rewinds the source to the beginning.
	Reset()
}

// SliceSource adapts an arrival-sorted request slice to RequestSource — the
// bridge the twin-equivalence suite uses to run the same requests through
// Run and RunStream.
type SliceSource struct {
	Reqs []Request
	next int
}

// Next yields the next request in the slice.
func (s *SliceSource) Next() (Request, bool) {
	if s.next >= len(s.Reqs) {
		return Request{}, false
	}
	r := s.Reqs[s.next]
	s.next++
	return r, true
}

// Reset rewinds to the first request.
func (s *SliceSource) Reset() { s.next = 0 }

// loadHeap is a deterministic min-heap of node indices keyed by (assigned
// load, node index): the least-loaded node is always at the root, and load
// ties break to the lowest node index — pinned byte-for-byte to the linear
// least-loaded scan it replaces (which also yields the lowest index among
// minima) by the placement-equivalence test. The key is a total order (node
// indices are unique), so the root is unique no matter how the heap's
// interior is arranged, and assignment is O(log n) per request instead of
// O(n).
type loadHeap struct {
	heap []int   // node indices in heap order
	load []int64 // indexed by node; shared with (and mutated for) the caller
}

// newLoadHeap builds a heap over the given node indices and their loads.
func newLoadHeap(nodes []int, load []int64) loadHeap {
	h := loadHeap{heap: append([]int(nil), nodes...), load: load}
	for i := len(h.heap)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	return h
}

// less orders node a before node b by (load, index).
func (h *loadHeap) less(a, b int) bool {
	if h.load[a] != h.load[b] {
		return h.load[a] < h.load[b]
	}
	return a < b
}

// assign places `tokens` of work on the least-loaded node and returns it.
func (h *loadHeap) assign(tokens int64) int {
	n := h.heap[0]
	h.load[n] += tokens
	h.siftDown(0)
	return n
}

func (h *loadHeap) siftDown(i int) {
	n := len(h.heap)
	for {
		least := i
		if l := 2*i + 1; l < n && h.less(h.heap[l], h.heap[least]) {
			least = l
		}
		if r := 2*i + 2; r < n && h.less(h.heap[r], h.heap[least]) {
			least = r
		}
		if least == i {
			return
		}
		h.heap[i], h.heap[least] = h.heap[least], h.heap[i]
		i = least
	}
}

// RunStream is Run's stream-native twin: it replays an arrival-ordered
// request source through the fleet with peak memory O(nodes × window)
// instead of O(requests), bit-identical to Run on the same sequence.
//
// Three things make that possible. Placement is a pure function of the
// arrival-ordered stream — a deterministic min-heap keyed (load, node index)
// assigns each request in O(log nodes), reproducing the linear least-loaded
// scan's lowest-index-wins tie-break — so it can be replayed exactly rather
// than stored. Each node consumes its shard strictly in admission order
// (class priority, then arrival; see RunSegment), so the source is replayed
// once per SLA class and each node is fed its class-c requests in arrival
// order, never holding more than a window of them. And execution is
// windowed: buffered shard segments flush to the nodes in sweep rounds every
// Window requests, buffers recycle across rounds, and nodes park exactly
// when their next decision would depend on a request not yet fed.
//
// Fail-stops follow Run's phases: failing nodes stream first (halting at
// their fail-stop), their orphans merge through the requeue calendar onto
// survivors — heap-placed against the canonical full-stream loads — and the
// survivors then stream with orphan segments merged into admission order.
//
// The replay is pipelined (see DESIGN.md §14): one persistent sweep pool
// serves the whole call; execution of window w runs asynchronously on that
// pool while the placement loop fills window w+1 (double-buffered); request
// synthesis for a BlockSource is sharded across the same pool and harvested
// in order; and the first placement pass records a manifest that lets every
// later pass skip the heap. None of it changes a single emitted byte — the
// twin suite holds the pipelined path to Run's output exactly.
func (f *Fleet) RunStream(src RequestSource) (FleetResult, error) {
	failAt, failing, surviving, err := f.failurePlan()
	if err != nil {
		return FleetResult{}, err
	}
	window := f.Window
	if window <= 0 {
		window = DefaultWindow
	}
	pool := sweep.NewPool(f.Workers)
	defer pool.Close()
	sr := &streamRun{f: f, pool: pool, window: window,
		load: make([]int64, len(f.nodes)), man: &placementManifest{}}
	perNode := make([]Result, len(f.nodes))
	out := FleetResult{PerNode: perNode, FailedNodes: len(failing)}
	if len(failing) > 0 {
		if err := sr.phase(src, failing, failAt, nil); err != nil {
			return FleetResult{}, err
		}
		type partial struct {
			res  Result
			left []Request
		}
		parts, err := sweep.MapOn(pool, 0, failing,
			func(_ context.Context, _ sweep.Cell, node int) (partial, error) {
				res, left := f.nodes[node].Harvest(failAt[node])
				return partial{res: res, left: left}, nil
			})
		if err != nil {
			return FleetResult{}, err
		}
		// The requeue merge is Run's, verbatim: orphans re-arrive no earlier
		// than their node's fail-stop, in (re-arrival, push order).
		var orphans []Request
		var merge eventq.Calendar
		for k, node := range failing {
			perNode[node] = parts[k].res
			for _, req := range parts[k].left {
				if req.Arrival < failAt[node] {
					req.Arrival = failAt[node]
				}
				merge.Push(req.Arrival, eventq.KindArrival, uint64(len(orphans)))
				orphans = append(orphans, req)
			}
		}
		if len(surviving) == 0 {
			out.Unserved = len(orphans)
			f.reduce(&out)
			return out, nil
		}
		out.Requeued = len(orphans)
		// Heap-placed requeue against a copy of the canonical loads: same
		// survivors, same (load, lowest-index) choice the linear scan makes —
		// and the originals stay pristine for phase 2's replay check.
		requeueLoad := append([]int64(nil), sr.load...)
		h := newLoadHeap(surviving, requeueLoad)
		orphansFor := make([][]Request, len(f.nodes))
		for merge.Len() > 0 {
			ev, _ := merge.Pop()
			req := orphans[ev.Data]
			node := h.assign(int64(req.PromptTokens + req.OutputTokens))
			orphansFor[node] = append(orphansFor[node], req)
		}
		// Each node feeds its orphans in admission order; the stable sort
		// keeps calendar pop order among equal (class, arrival) keys, exactly
		// as Run's per-node stable sort keeps shard-append order.
		for _, node := range surviving {
			o := orphansFor[node]
			sort.SliceStable(o, func(i, j int) bool {
				if o[i].Class != o[j].Class {
					return o[i].Class < o[j].Class
				}
				return o[i].Arrival < o[j].Arrival
			})
		}
		if err := sr.phase(src, surviving, nil, orphansFor); err != nil {
			return FleetResult{}, err
		}
	} else {
		if err := sr.phase(src, surviving, nil, nil); err != nil {
			return FleetResult{}, err
		}
	}
	res, err := sweep.MapOn(pool, 0, surviving,
		func(_ context.Context, _ sweep.Cell, node int) (Result, error) {
			r, _ := f.nodes[node].Harvest(-1)
			return r, nil
		})
	if err != nil {
		return FleetResult{}, err
	}
	for k, node := range surviving {
		perNode[node] = res[k]
	}
	f.reduce(&out)
	return out, nil
}

// streamRun carries the state one RunStream call shares across its phases:
// the persistent sweep pool every dispatch in the call reuses, the canonical
// full-stream placement loads (filled by the first replay pass and verified
// identical on every later one — a source whose replays diverge would
// silently corrupt placement), the placement manifest the first pass
// records, and the cumulative fed-request count the Progress callback
// reports.
type streamRun struct {
	f         *Fleet
	pool      *sweep.Pool
	window    int
	load      []int64
	loadKnown bool
	man       *placementManifest
	fed       int64
}

// phase feeds the target nodes their shards in admission order: one
// placement replay of the source per SLA class, so each node receives its
// class-c requests in arrival order, all of class c before any of class c+1
// — exactly the (class, arrival) stable order Run's per-node sort produces.
// Every pass replays placement over the whole stream (assignments depend on
// the loads every earlier request accumulated, whatever its class); the
// first pass runs the heap and records the manifest, later passes replay
// the manifest and verify their load sums against the canonical vector.
// Requests owned by non-target nodes are placed but not buffered. Orphan
// lists (requeued work for surviving nodes, already in admission order)
// merge into the feed: stream requests first on equal (class, arrival)
// keys, matching Run's shard-append-then-stable-sort order.
//
// Execution is double-buffered: every `window` buffered requests, the
// filled buffer set is dispatched asynchronously onto the pool and the loop
// keeps filling the other set; the next dispatch first waits out the
// previous window, so at most one window executes while one fills. The two
// sets touch disjoint buffers and each node's Sim is only ever touched by
// its own in-flight segment task, and segments reach each node in exactly
// the order the serial path fed them — which is why the pipelined replay is
// bit-identical to the barriered one. Peak memory is O(target × window)
// (two window sets) plus the orphans and the manifest.
//
// stopAt, when non-nil, carries per-node fail-stop times (-1 = none).
func (r *streamRun) phase(src RequestSource, target []int, stopAt []time.Duration,
	orphans [][]Request) error {
	f := r.f
	inTarget := make([]bool, len(f.nodes))
	for _, n := range target {
		inTarget[n] = true
	}
	var bufs [2][][]Request // double buffer: bufs[cur] fills, bufs[cur^1] executes
	var active [2][]int     // target nodes with buffered work, per set
	for s := range bufs {
		bufs[s] = make([][]Request, len(f.nodes))
	}
	cur := 0
	var inflight *sweep.Handle[struct{}]
	passLoad := make([]int64, len(f.nodes))
	allNodes := make([]int, len(f.nodes))
	for i := range allNodes {
		allNodes[i] = i
	}
	orphanNext := make([]int, len(f.nodes))
	buffered := 0

	// harvest waits out the executing window and recycles its buffers.
	harvest := func() error {
		if inflight == nil {
			return nil
		}
		_, err := inflight.Wait()
		inflight = nil
		prev := cur ^ 1
		for _, n := range active[prev] {
			bufs[prev][n] = bufs[prev][n][:0] // recycle: capacity survives
		}
		active[prev] = active[prev][:0]
		return err
	}
	// dispatch submits one window's segments (buffer set, node list) onto
	// the pool. The closure captures the set's slice header, not `cur`, so
	// the fill loop is free to flip sets while the sweep runs.
	dispatch := func(set int, nodes []int, final bool) *sweep.Handle[struct{}] {
		segs := bufs[set]
		return sweep.MapAsync(r.pool, 0, nodes,
			func(_ context.Context, _ sweep.Cell, node int) (struct{}, error) {
				stop := time.Duration(-1)
				if stopAt != nil {
					stop = stopAt[node]
				}
				if err := f.nodes[node].RunSegment(context.Background(), segs[node], stop, !final); err != nil {
					return struct{}{}, fmt.Errorf("cluster: node %d: %w", node, err)
				}
				return struct{}{}, nil
			})
	}
	flush := func() error {
		if err := harvest(); err != nil {
			return err
		}
		buffered = 0
		if len(active[cur]) == 0 {
			return nil
		}
		inflight = dispatch(cur, active[cur], false)
		cur ^= 1
		if f.Progress != nil {
			f.Progress(r.fed)
		}
		return nil
	}
	emit := func(node int, req Request) {
		if len(bufs[cur][node]) == 0 {
			active[cur] = append(active[cur], node)
		}
		bufs[cur][node] = append(bufs[cur][node], req)
		buffered++
		r.fed++
	}

	for class := SLAClass(0); class <= BestEffort; class++ {
		// Request synthesis: a BlockSource is pumped through the pool in
		// ordered chunks (parallel generation, serial consumption); anything
		// else is drawn serially through Next. Either way the consumption
		// order is the stream order.
		var next func() (Request, bool, error)
		var pump *blockPump
		if bs, ok := src.(BlockSource); ok && r.pool.Workers() > 1 {
			pump = newBlockPump(bs, r.pool)
			next = pump.next
		} else {
			src.Reset()
			next = func() (Request, bool, error) {
				req, ok := src.Next()
				return req, ok, nil
			}
		}
		for i := range passLoad {
			passLoad[i] = 0
		}
		// The first pass runs the placement heap and records the manifest;
		// later passes replay the manifest (no heap) and re-accumulate the
		// per-node sums for the divergence check below.
		record := !r.man.complete
		var h loadHeap
		if record {
			h = newLoadHeap(allNodes, passLoad)
		}
		prev := time.Duration(-1)
		pos := 0
		passErr := func() error {
			for {
				req, ok, err := next()
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				if req.Arrival < prev {
					return fmt.Errorf("cluster: RunStream source not arrival-ordered (%v after %v)", req.Arrival, prev)
				}
				prev = req.Arrival
				tokens := int64(req.PromptTokens + req.OutputTokens)
				var node int
				if record {
					node = h.assign(tokens)
					r.man.append(node)
				} else {
					var err error
					if node, err = r.man.lookup(pos, len(f.nodes)); err != nil {
						return err
					}
					passLoad[node] += tokens
				}
				pos++
				if !inTarget[node] || req.Class != class {
					continue
				}
				// Orphans sorting strictly before this stream request go
				// first; equal keys emit the stream request first (Run's
				// stable order).
				if orphans != nil {
					for o := orphans[node]; orphanNext[node] < len(o); orphanNext[node]++ {
						or := o[orphanNext[node]]
						if or.Class > class || (or.Class == class && or.Arrival >= req.Arrival) {
							break
						}
						emit(node, or)
					}
				}
				emit(node, req)
				if buffered >= r.window {
					if err := flush(); err != nil {
						return err
					}
				}
			}
		}()
		if passErr != nil {
			if pump != nil {
				pump.drain()
			}
			if inflight != nil {
				_, _ = inflight.Wait() // the pass error wins
			}
			return passErr
		}
		if !record && pos != r.man.n {
			if inflight != nil {
				_, _ = inflight.Wait()
			}
			return fmt.Errorf("cluster: placement manifest records %d positions but the replayed stream has %d", r.man.n, pos)
		}
		// Class close-out: trailing orphans of this class (arrivals past the
		// node's last stream request of the class).
		if orphans != nil {
			for _, node := range target {
				for o := orphans[node]; orphanNext[node] < len(o); orphanNext[node]++ {
					if o[orphanNext[node]].Class > class {
						break
					}
					emit(node, o[orphanNext[node]])
				}
			}
		}
		if r.loadKnown {
			for i, l := range passLoad {
				if l != r.load[i] {
					if inflight != nil {
						_, _ = inflight.Wait()
					}
					return fmt.Errorf("cluster: RunStream source replay diverged (node %d load %d vs %d)", i, l, r.load[i])
				}
			}
		} else {
			copy(r.load, passLoad)
			r.loadKnown = true
		}
		if record {
			r.man.complete = true
		}
	}
	// Close-out: wait for the in-flight window, then give every target node
	// its more=false call with whatever remains buffered.
	if err := harvest(); err != nil {
		return err
	}
	err := func() error {
		_, err := dispatch(cur, target, true).Wait()
		return err
	}()
	if err == nil && f.Progress != nil {
		f.Progress(r.fed)
	}
	return err
}
