package cluster

import (
	"context"
	"fmt"
	"sort"
	"time"

	"mrm/internal/eventq"
	"mrm/internal/metrics"
	"mrm/internal/sweep"
	"mrm/internal/units"
)

// Fleet schedules a request stream across multiple serving nodes — the
// rack-scale orchestration layer the paper's §4 describes as "building up
// towards a rack-scale OS for foundation model inference". Placement is
// token-balanced: each request goes to the node with the least assigned
// work, the static analogue of join-shortest-queue.
type Fleet struct {
	nodes []*Sim
	// Workers bounds the goroutines used to run nodes (0 = the sweep
	// default, 1 = serial). Nodes are independent simulators, so results are
	// identical at any worker count.
	Workers int
	// Failures schedules fail-stop events: each named node halts at its
	// simulated time, its in-flight and unserved requests are requeued onto
	// surviving nodes (fresh, least-loaded), and the fleet reports
	// degraded-mode latency and goodput. Multiple entries for one node keep
	// the earliest time.
	Failures []NodeFailure
}

// NodeFailure schedules a fail-stop: node Node halts at simulated time At.
type NodeFailure struct {
	Node int
	At   time.Duration
}

// NewFleet constructs n nodes with the given factory.
func NewFleet(n int, mk func(node int) (*Sim, error)) (*Fleet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	f := &Fleet{nodes: make([]*Sim, n)}
	for i := range f.nodes {
		s, err := mk(i)
		if err != nil {
			return nil, fmt.Errorf("cluster: building node %d: %w", i, err)
		}
		f.nodes[i] = s
	}
	return f, nil
}

// NumNodes returns the fleet size.
func (f *Fleet) NumNodes() int { return len(f.nodes) }

// FleetResult aggregates per-node results.
type FleetResult struct {
	PerNode []Result
	// Aggregates.
	Completed      int
	Truncated      int
	TokensOut      int64
	Energy         units.Energy
	WallTime       time.Duration // max node sim time (nodes run in parallel)
	TokensPerSec   float64
	TokensPerJoule float64
	// Balance is min/max of per-node token output (1 = perfectly even).
	Balance float64
	// TTFT and TBT are fleet-wide latency distributions: every node's
	// histogram merged after the barrier (metrics.Histogram.Merge), exactly
	// as if one accumulator had observed all requests.
	TTFT metrics.Snapshot
	TBT  metrics.Snapshot
	// Degraded-mode accounting (zero when no failures are scheduled).
	FailedNodes  int
	Requeued     int   // requests moved to survivors after fail-stops
	Unserved     int   // requests lost outright (no surviving node)
	WastedTokens int64 // tokens generated on failed nodes and redone
	// GoodTokens is TokensOut minus WastedTokens: output that reached a
	// completed request. GoodTokensPerSec is the fleet's goodput.
	GoodTokens       int64
	GoodTokensPerSec float64
	// Faults aggregates per-node graceful-degradation work.
	Faults FaultStats
}

// Run partitions the stream (token-balanced, arrival order preserved per
// node) and runs every node to completion — or, for nodes with a scheduled
// failure, until their fail-stop time. Failing nodes run first (one sweep
// barrier), their unfinished requests are requeued deterministically onto
// survivors, then survivors run. Nodes simulate concurrently on the sweep
// pool; every phase reduces in node order, so the outcome is bit-identical
// to running the nodes one after another at any worker count.
func (f *Fleet) Run(reqs []Request) (FleetResult, error) {
	shards := make([][]Request, len(f.nodes))
	load := make([]int64, len(f.nodes))
	ordered := make([]Request, len(reqs))
	copy(ordered, reqs)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Arrival < ordered[j].Arrival })
	for _, r := range ordered {
		// Least-loaded placement by assigned token volume.
		best := 0
		for i := 1; i < len(load); i++ {
			if load[i] < load[best] {
				best = i
			}
		}
		shards[best] = append(shards[best], r)
		load[best] += int64(r.PromptTokens + r.OutputTokens)
	}
	// Split the fleet by fate: failAt[i] < 0 means node i survives.
	failAt := make([]time.Duration, len(f.nodes))
	for i := range failAt {
		failAt[i] = -1
	}
	for _, nf := range f.Failures {
		if nf.Node < 0 || nf.Node >= len(f.nodes) {
			return FleetResult{}, fmt.Errorf("cluster: failure names bad node %d", nf.Node)
		}
		if nf.At < 0 {
			return FleetResult{}, fmt.Errorf("cluster: failure time %v for node %d", nf.At, nf.Node)
		}
		if failAt[nf.Node] < 0 || nf.At < failAt[nf.Node] {
			failAt[nf.Node] = nf.At
		}
	}
	var failing, surviving []int
	for i := range f.nodes {
		if failAt[i] >= 0 {
			failing = append(failing, i)
		} else {
			surviving = append(surviving, i)
		}
	}
	perNode := make([]Result, len(f.nodes))
	out := FleetResult{PerNode: perNode, FailedNodes: len(failing)}
	if len(failing) > 0 {
		type partial struct {
			res  Result
			left []Request
		}
		parts, err := sweep.Map(context.Background(), sweep.Config{Workers: f.Workers}, failing,
			func(_ context.Context, _ sweep.Cell, node int) (partial, error) {
				res, left, err := f.nodes[node].RunUntil(shards[node], failAt[node])
				if err != nil {
					return partial{}, fmt.Errorf("cluster: node %d: %w", node, err)
				}
				return partial{res: res, left: left}, nil
			})
		if err != nil {
			return FleetResult{}, err
		}
		// Requeue through a cross-node event merge: an orphan re-arrives no
		// earlier than its node's fail-stop (detection), fresh (its KV died).
		// Each failing node pushes its orphans in node order onto one
		// calendar, and popping yields them in (re-arrival time, push order) —
		// the same order a stable sort by arrival produces, with the tie-break
		// explicit in the event queue rather than implicit in sort stability.
		var orphans []Request
		var merge eventq.Calendar
		for k, node := range failing {
			perNode[node] = parts[k].res
			for _, req := range parts[k].left {
				if req.Arrival < failAt[node] {
					req.Arrival = failAt[node]
				}
				merge.Push(req.Arrival, eventq.KindArrival, uint64(len(orphans)))
				orphans = append(orphans, req)
			}
		}
		if len(surviving) == 0 {
			out.Unserved = len(orphans)
		} else {
			out.Requeued = len(orphans)
			for merge.Len() > 0 {
				ev, _ := merge.Pop()
				req := orphans[ev.Data]
				best := surviving[0]
				for _, i := range surviving[1:] {
					if load[i] < load[best] {
						best = i
					}
				}
				shards[best] = append(shards[best], req)
				load[best] += int64(req.PromptTokens + req.OutputTokens)
			}
		}
	}
	if len(surviving) > 0 {
		res, err := sweep.Map(context.Background(), sweep.Config{Workers: f.Workers}, surviving,
			func(_ context.Context, _ sweep.Cell, node int) (Result, error) {
				r, err := f.nodes[node].Run(shards[node])
				if err != nil {
					return Result{}, fmt.Errorf("cluster: node %d: %w", node, err)
				}
				return r, nil
			})
		if err != nil {
			return FleetResult{}, err
		}
		for k, node := range surviving {
			perNode[node] = res[k]
		}
	}
	// Ordered reduction after the barriers: aggregates come out in node
	// order, independent of which worker finished first.
	ttft := metrics.NewHistogram(1e-6, 1.05)
	tbt := metrics.NewHistogram(1e-6, 1.05)
	var minTok, maxTok int64 = 1<<62 - 1, 0
	for i, res := range perNode {
		out.Completed += res.Completed
		out.Truncated += res.Truncated
		out.TokensOut += res.TokensOut
		out.Energy += res.Energy
		if res.SimTime > out.WallTime {
			out.WallTime = res.SimTime
		}
		if res.TokensOut < minTok {
			minTok = res.TokensOut
		}
		if res.TokensOut > maxTok {
			maxTok = res.TokensOut
		}
		out.WastedTokens += res.WastedTokens
		out.Faults = out.Faults.Add(res.Faults)
		nodeTTFT, nodeTBT := f.nodes[i].Observations()
		ttft.Merge(nodeTTFT)
		tbt.Merge(nodeTBT)
	}
	out.TTFT = ttft.Snapshot()
	out.TBT = tbt.Snapshot()
	out.GoodTokens = out.TokensOut - out.WastedTokens
	if out.WallTime > 0 {
		out.TokensPerSec = float64(out.TokensOut) / out.WallTime.Seconds()
		out.GoodTokensPerSec = float64(out.GoodTokens) / out.WallTime.Seconds()
	}
	if out.Energy > 0 {
		out.TokensPerJoule = float64(out.TokensOut) / float64(out.Energy)
	}
	if maxTok > 0 {
		out.Balance = float64(minTok) / float64(maxTok)
	}
	return out, nil
}
