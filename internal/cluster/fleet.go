package cluster

import (
	"context"
	"fmt"
	"sort"
	"time"

	"mrm/internal/metrics"
	"mrm/internal/sweep"
	"mrm/internal/units"
)

// Fleet schedules a request stream across multiple serving nodes — the
// rack-scale orchestration layer the paper's §4 describes as "building up
// towards a rack-scale OS for foundation model inference". Placement is
// token-balanced: each request goes to the node with the least assigned
// work, the static analogue of join-shortest-queue.
type Fleet struct {
	nodes []*Sim
	// Workers bounds the goroutines used to run nodes (0 = the sweep
	// default, 1 = serial). Nodes are independent simulators, so results are
	// identical at any worker count.
	Workers int
}

// NewFleet constructs n nodes with the given factory.
func NewFleet(n int, mk func(node int) (*Sim, error)) (*Fleet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	f := &Fleet{nodes: make([]*Sim, n)}
	for i := range f.nodes {
		s, err := mk(i)
		if err != nil {
			return nil, fmt.Errorf("cluster: building node %d: %w", i, err)
		}
		f.nodes[i] = s
	}
	return f, nil
}

// NumNodes returns the fleet size.
func (f *Fleet) NumNodes() int { return len(f.nodes) }

// FleetResult aggregates per-node results.
type FleetResult struct {
	PerNode []Result
	// Aggregates.
	Completed      int
	Truncated      int
	TokensOut      int64
	Energy         units.Energy
	WallTime       time.Duration // max node sim time (nodes run in parallel)
	TokensPerSec   float64
	TokensPerJoule float64
	// Balance is min/max of per-node token output (1 = perfectly even).
	Balance float64
	// TTFT and TBT are fleet-wide latency distributions: every node's
	// histogram merged after the barrier (metrics.Histogram.Merge), exactly
	// as if one accumulator had observed all requests.
	TTFT metrics.Snapshot
	TBT  metrics.Snapshot
}

// Run partitions the stream (token-balanced, arrival order preserved per
// node) and runs every node to completion. Nodes simulate concurrently on
// the sweep pool; each node's result depends only on its shard, so the
// outcome is bit-identical to running the nodes one after another.
func (f *Fleet) Run(reqs []Request) (FleetResult, error) {
	shards := make([][]Request, len(f.nodes))
	load := make([]int64, len(f.nodes))
	ordered := make([]Request, len(reqs))
	copy(ordered, reqs)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Arrival < ordered[j].Arrival })
	for _, r := range ordered {
		// Least-loaded placement by assigned token volume.
		best := 0
		for i := 1; i < len(load); i++ {
			if load[i] < load[best] {
				best = i
			}
		}
		shards[best] = append(shards[best], r)
		load[best] += int64(r.PromptTokens + r.OutputTokens)
	}
	perNode, err := sweep.Map(context.Background(), sweep.Config{Workers: f.Workers}, shards,
		func(_ context.Context, c sweep.Cell, shard []Request) (Result, error) {
			res, err := f.nodes[c.Index].Run(shard)
			if err != nil {
				return Result{}, fmt.Errorf("cluster: node %d: %w", c.Index, err)
			}
			return res, nil
		})
	if err != nil {
		return FleetResult{}, err
	}
	// Ordered reduction after the barrier: aggregates come out in node
	// order, independent of which worker finished first.
	out := FleetResult{PerNode: perNode}
	ttft := metrics.NewHistogram(1e-6, 1.05)
	tbt := metrics.NewHistogram(1e-6, 1.05)
	var minTok, maxTok int64 = 1<<62 - 1, 0
	for i, res := range perNode {
		out.Completed += res.Completed
		out.Truncated += res.Truncated
		out.TokensOut += res.TokensOut
		out.Energy += res.Energy
		if res.SimTime > out.WallTime {
			out.WallTime = res.SimTime
		}
		if res.TokensOut < minTok {
			minTok = res.TokensOut
		}
		if res.TokensOut > maxTok {
			maxTok = res.TokensOut
		}
		nodeTTFT, nodeTBT := f.nodes[i].Observations()
		ttft.Merge(nodeTTFT)
		tbt.Merge(nodeTBT)
	}
	out.TTFT = ttft.Snapshot()
	out.TBT = tbt.Snapshot()
	if out.WallTime > 0 {
		out.TokensPerSec = float64(out.TokensOut) / out.WallTime.Seconds()
	}
	if out.Energy > 0 {
		out.TokensPerJoule = float64(out.TokensOut) / float64(out.Energy)
	}
	if maxTok > 0 {
		out.Balance = float64(minTok) / float64(maxTok)
	}
	return out, nil
}
