package cluster

import (
	"strings"
	"testing"
	"time"

	"mrm/internal/core"
	"mrm/internal/dist"
	"mrm/internal/llm"
	"mrm/internal/memdev"
	"mrm/internal/tier"
	"mrm/internal/units"
)

func TestSLAClassString(t *testing.T) {
	if Interactive.String() != "interactive" || Throughput.String() != "throughput" ||
		BestEffort.String() != "best-effort" {
		t.Fatal("class names wrong")
	}
	if !strings.Contains(SLAClass(9).String(), "9") {
		t.Fatal("unknown class should include number")
	}
}

func testGenerator() Generator {
	return Generator{
		Workload:   llm.SplitwiseConv,
		RatePerSec: 2,
		Mix:        [3]float64{0.5, 0.3, 0.2},
		MaxContext: 4096,
	}
}

func TestGeneratorProducesValidStream(t *testing.T) {
	rng := dist.NewRNG(1)
	reqs, err := testGenerator().Generate(rng, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 200 {
		t.Fatalf("got %d requests", len(reqs))
	}
	var prev time.Duration
	counts := map[SLAClass]int{}
	for _, r := range reqs {
		if r.Arrival < prev {
			t.Fatal("arrivals must be non-decreasing")
		}
		prev = r.Arrival
		if r.PromptTokens < 1 || r.OutputTokens < 1 {
			t.Fatalf("bad lengths: %+v", r)
		}
		if r.PromptTokens+r.OutputTokens > 4096 {
			t.Fatalf("context overflow: %+v", r)
		}
		counts[r.Class]++
	}
	if counts[Interactive] == 0 || counts[Throughput] == 0 || counts[BestEffort] == 0 {
		t.Fatalf("class mix missing a class: %v", counts)
	}
	// Mean arrival rate ~2/s: 200 requests in ~100s.
	if reqs[len(reqs)-1].Arrival < 50*time.Second || reqs[len(reqs)-1].Arrival > 200*time.Second {
		t.Errorf("last arrival %v implausible for 2/s", reqs[len(reqs)-1].Arrival)
	}
}

func TestGeneratorValidation(t *testing.T) {
	rng := dist.NewRNG(1)
	g := testGenerator()
	g.RatePerSec = 0
	if _, err := g.Generate(rng, 10); err == nil {
		t.Error("zero rate should error")
	}
	g = testGenerator()
	g.Mix = [3]float64{0.5, 0.1, 0.1}
	if _, err := g.Generate(rng, 10); err == nil {
		t.Error("bad mix should error")
	}
	g = testGenerator()
	g.MaxContext = 1
	if _, err := g.Generate(rng, 10); err == nil {
		t.Error("tiny context should error")
	}
}

// hbmOnly builds an HBM-only memory manager big enough for Llama2-7B.
func hbmOnly(t *testing.T) *tier.Manager {
	t.Helper()
	spec := memdev.HBM3E
	spec.Capacity = 64 * units.GiB
	spec.ReadBW = 8 * units.TBps // aggregate of 8 stacks
	hbm, err := tier.NewDeviceTier("hbm", spec)
	if err != nil {
		t.Fatal(err)
	}
	m, err := tier.NewManager(tier.StaticPolicy{}, hbm)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// hbmPlusMRM builds a small HBM + large MRM manager with retention-aware
// placement.
func hbmPlusMRM(t *testing.T) *tier.Manager {
	t.Helper()
	spec := memdev.HBM3E
	spec.Capacity = 24 * units.GiB
	spec.ReadBW = 8 * units.TBps
	hbm, err := tier.NewDeviceTier("hbm", spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Capacity = 64 * units.GiB
	cfg.ZoneSize = 64 * units.MiB
	mrm, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := tier.NewManager(tier.RetentionAwarePolicy{}, hbm, tier.NewMRMTier("mrm", mrm))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func shortRequests(n int) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{
			ID:           uint64(i),
			Arrival:      time.Duration(i) * 100 * time.Millisecond,
			PromptTokens: 64,
			OutputTokens: 24,
			Class:        SLAClass(i % 3),
		}
	}
	return reqs
}

func TestNewSimValidation(t *testing.T) {
	if _, err := NewSim(Config{}); err == nil {
		t.Error("no memory should error")
	}
	if _, err := NewSim(Config{Memory: hbmOnly(t)}); err == nil {
		t.Error("zero PageTokens should error")
	}
	cfg := Config{
		Model: llm.Llama27B, Acc: llm.B200,
		Memory: hbmOnly(t), PageTokens: 16, MaxBatch: 4,
	}
	if _, err := NewSim(cfg); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestSimCompletesAllRequests(t *testing.T) {
	cfg := Config{
		Model: llm.Llama27B, Acc: llm.B200,
		Memory: hbmOnly(t), PageTokens: 16, MaxBatch: 8,
	}
	s, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := shortRequests(12)
	res, err := s.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 12 || res.Truncated != 0 {
		t.Fatalf("completed %d truncated %d, want 12/0", res.Completed, res.Truncated)
	}
	wantTokens := int64(12 * 24)
	if res.TokensOut != wantTokens {
		t.Fatalf("tokens out = %d, want %d", res.TokensOut, wantTokens)
	}
	if res.TokensPerSec <= 0 || res.TokensPerJoule <= 0 {
		t.Fatalf("efficiency not computed: %+v", res)
	}
	if res.TTFT.Count != 12 {
		t.Fatalf("TTFT count = %d", res.TTFT.Count)
	}
	// Every token after each request's first contributes a TBT sample.
	if res.TBT.Count != wantTokens-12 {
		t.Fatalf("TBT count = %d, want %d", res.TBT.Count, wantTokens-12)
	}
	if res.PerTierReads["hbm"] == 0 {
		t.Fatal("per-tier reads not recorded")
	}
	if res.DecodeSteps < 24 {
		t.Fatalf("decode steps = %d", res.DecodeSteps)
	}
}

func TestSimWeightsPlacement(t *testing.T) {
	m := hbmPlusMRM(t)
	cfg := Config{
		Model: llm.Llama27B, Acc: llm.B200,
		Memory: m, PageTokens: 16, MaxBatch: 4,
	}
	s, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Retention-aware placement sends read-hot weights to the MRM tier (1).
	if s.WeightsTier() != 1 {
		t.Fatalf("weights tier = %d, want 1 (mrm)", s.WeightsTier())
	}
}

func TestSimOnTieredMemory(t *testing.T) {
	m := hbmPlusMRM(t)
	cfg := Config{
		Model: llm.Llama27B, Acc: llm.B200,
		Memory: m, PageTokens: 16, MaxBatch: 8,
		KVLifetime: time.Hour,
	}
	s, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(shortRequests(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 8 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if res.PerTierReads["mrm"] == 0 {
		t.Fatal("MRM tier should serve KV/weight reads")
	}
}

// Decode on a single B200-class node must be memory bound (§2.1).
func TestDecodeMemoryBound(t *testing.T) {
	cfg := Config{
		Model: llm.Llama27B, Acc: llm.B200,
		Memory: hbmOnly(t), PageTokens: 16, MaxBatch: 2,
	}
	s, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(shortRequests(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.MemoryBoundFrac < 0.9 {
		t.Fatalf("memory-bound fraction = %v, want ~1", res.MemoryBoundFrac)
	}
}

// Interactive requests should see admission priority (lower TTFT on average
// than best-effort) when the system queues.
func TestSLAPriority(t *testing.T) {
	cfg := Config{
		Model: llm.Llama27B, Acc: llm.B200,
		Memory: hbmOnly(t), PageTokens: 16, MaxBatch: 2, // force queueing
	}
	s, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// All arrive at once: priority decides order.
	reqs := make([]Request, 10)
	for i := range reqs {
		cl := BestEffort
		if i >= 5 {
			cl = Interactive
		}
		reqs[i] = Request{ID: uint64(i), PromptTokens: 64, OutputTokens: 16, Class: cl}
	}
	res, err := s.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 10 {
		t.Fatalf("completed = %d", res.Completed)
	}
	// The interactive half should include the very first admissions; assert
	// indirectly: TTFT p50 < max (queueing spread exists).
	if res.TTFT.P50 >= res.TTFT.Max {
		t.Errorf("expected TTFT spread, p50=%v max=%v", res.TTFT.P50, res.TTFT.Max)
	}
}

// Memory pressure truncates rather than deadlocks.
func TestMemoryPressureTruncates(t *testing.T) {
	spec := memdev.HBM3E
	spec.Capacity = 14 * units.GiB // weights (13.4 GB) barely fit; KV won't
	hbm, err := tier.NewDeviceTier("hbm", spec)
	if err != nil {
		t.Fatal(err)
	}
	m, err := tier.NewManager(tier.StaticPolicy{}, hbm)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Model: llm.Llama27B, Acc: llm.B200,
		Memory: m, PageTokens: 16, MaxBatch: 4,
	}
	s, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := shortRequests(4)
	for i := range reqs {
		reqs[i].PromptTokens = 1024
		reqs[i].OutputTokens = 512
	}
	res, err := s.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated == 0 {
		t.Fatal("expected truncation under memory pressure")
	}
	if res.Completed+res.Truncated < 4 {
		t.Fatalf("requests lost: %+v", res)
	}
}

// Chunked prefill completes the same work and improves time-between-tokens
// for decoding requests that would otherwise stall behind monolithic
// prefills (SARATHI [3]).
func TestChunkedPrefillCompletes(t *testing.T) {
	cfg := Config{
		Model: llm.Llama27B, Acc: llm.B200,
		Memory: hbmOnly(t), PageTokens: 16, MaxBatch: 8,
		PrefillChunk: 32,
	}
	s, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(shortRequests(12))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 12 || res.Truncated != 0 {
		t.Fatalf("completed %d truncated %d", res.Completed, res.Truncated)
	}
	if res.TokensOut != 12*24 {
		t.Fatalf("tokens = %d", res.TokensOut)
	}
	if res.TTFT.Count != 12 {
		t.Fatalf("TTFT count = %d", res.TTFT.Count)
	}
}

func TestChunkedPrefillImprovesTBTTail(t *testing.T) {
	// A steady decode stream interrupted by late long-prompt arrivals: the
	// monolithic prefill stalls every running decode, inflating TBT max.
	mkReqs := func() []Request {
		reqs := []Request{
			{ID: 0, PromptTokens: 64, OutputTokens: 400},
			{ID: 1, PromptTokens: 64, OutputTokens: 400},
		}
		for i := 2; i < 6; i++ {
			reqs = append(reqs, Request{
				ID: uint64(i), Arrival: 200 * time.Millisecond,
				PromptTokens: 2048, OutputTokens: 8,
			})
		}
		return reqs
	}
	run := func(chunk int) Result {
		cfg := Config{
			Model: llm.Llama27B, Acc: llm.B200,
			Memory: hbmOnly(t), PageTokens: 16, MaxBatch: 8,
			PrefillChunk: chunk,
		}
		s, err := NewSim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(mkReqs())
		if err != nil {
			t.Fatal(err)
		}
		if res.Completed != 6 {
			t.Fatalf("chunk %d: completed = %d", chunk, res.Completed)
		}
		return res
	}
	mono := run(0)
	chunked := run(64)
	if chunked.TBT.Max >= mono.TBT.Max {
		t.Errorf("chunked prefill should cut the TBT tail: max %v vs monolithic %v",
			chunked.TBT.Max, mono.TBT.Max)
	}
}

// Regression pin: the exact stream for seed 42. The generator derives one
// RNG per GenBlock of requests from the base seed (splitmix), so this stream
// is load-bearing for every experiment's reproducibility — it must never
// drift with refactors, Go versions, or future parallel generation.
func TestGeneratorPinnedStreamSeed42(t *testing.T) {
	reqs, err := testGenerator().Generate(dist.NewRNG(42), 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []Request{
		{ID: 0, Arrival: 156636061, PromptTokens: 2524, OutputTokens: 377, Class: Interactive},
		{ID: 1, Arrival: 441303706, PromptTokens: 310, OutputTokens: 773, Class: BestEffort},
		{ID: 2, Arrival: 563706943, PromptTokens: 2534, OutputTokens: 276, Class: Throughput},
		{ID: 3, Arrival: 800537075, PromptTokens: 151, OutputTokens: 119, Class: Interactive},
		{ID: 4, Arrival: 1332435181, PromptTokens: 257, OutputTokens: 96, Class: BestEffort},
	}
	for i, w := range want {
		if reqs[i] != w {
			t.Errorf("req[%d] = %+v, want %+v", i, reqs[i], w)
		}
	}
}

// Block seeding makes the stream a pure function of (seed, index): a longer
// run must share its prefix with a shorter one, block boundaries included.
func TestGeneratorPrefixStability(t *testing.T) {
	long, err := testGenerator().Generate(dist.NewRNG(7), 3*GenBlock)
	if err != nil {
		t.Fatal(err)
	}
	short, err := testGenerator().Generate(dist.NewRNG(7), GenBlock+1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range short {
		if long[i] != short[i] {
			t.Fatalf("req[%d] diverged across run lengths: %+v vs %+v", i, long[i], short[i])
		}
	}
}
