package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{0, "0 B"},
		{512, "512 B"},
		{KiB, "1.00 KiB"},
		{1536, "1.50 KiB"},
		{MiB, "1.00 MiB"},
		{GiB, "1.00 GiB"},
		{3 * TiB / 2, "1.50 TiB"},
		{PiB, "1.00 PiB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%d).String() = %q, want %q", uint64(c.in), got, c.want)
		}
	}
}

func TestBytesBits(t *testing.T) {
	if got := Bytes(3).Bits(); got != 24 {
		t.Fatalf("Bits() = %d, want 24", got)
	}
}

func TestBytesGB(t *testing.T) {
	if got := Bytes(2e9).GB(); got != 2.0 {
		t.Fatalf("GB() = %v, want 2.0", got)
	}
}

func TestBytesMulF(t *testing.T) {
	if got := Bytes(100).MulF(1.5); got != 150 {
		t.Fatalf("MulF = %d, want 150", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MulF(-1) did not panic")
		}
	}()
	Bytes(1).MulF(-1)
}

func TestEnergyPerBit(t *testing.T) {
	// 1 pJ/bit over 1 byte = 8 pJ.
	got := PicoJoule.PerBit(1)
	if math.Abs(float64(got)-8e-12) > 1e-24 {
		t.Fatalf("PerBit = %v, want 8e-12", float64(got))
	}
}

func TestEnergyString(t *testing.T) {
	cases := []struct {
		in   Energy
		want string
	}{
		{0, "0 J"},
		{1.5, "1.5 J"},
		{2 * MilliJoule, "2 mJ"},
		{3 * MicroJoule, "3 µJ"},
		{4 * NanoJoule, "4 nJ"},
		{5 * PicoJoule, "5 pJ"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Energy(%g).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestPowerOverAndDiv(t *testing.T) {
	e := Power(2).Over(3 * time.Second)
	if e != 6 {
		t.Fatalf("2W over 3s = %v J, want 6", float64(e))
	}
	p := Energy(6).Div(3 * time.Second)
	if p != 2 {
		t.Fatalf("6J / 3s = %v W, want 2", float64(p))
	}
	if Energy(1).Div(0) != 0 {
		t.Fatal("Div by zero duration should be 0")
	}
}

func TestPowerString(t *testing.T) {
	if got := (1500 * Watt).String(); got != "1.5 kW" {
		t.Errorf("got %q", got)
	}
	if got := (500 * MilliWatt).String(); got != "500 mW" {
		t.Errorf("got %q", got)
	}
	if got := Power(0).String(); got != "0 W" {
		t.Errorf("got %q", got)
	}
}

func TestBandwidthTime(t *testing.T) {
	d := GBps.Time(2e9)
	if d != 2*time.Second {
		t.Fatalf("2GB @ 1GB/s = %v, want 2s", d)
	}
	if Bandwidth(0).Time(1) <= 0 {
		t.Fatal("zero bandwidth should take effectively forever")
	}
}

func TestBandwidthString(t *testing.T) {
	if got := (8 * TBps).String(); got != "8.00 TB/s" {
		t.Errorf("got %q", got)
	}
	if got := (500 * BytePerSec).String(); got != "500 B/s" {
		t.Errorf("got %q", got)
	}
}

func TestCostString(t *testing.T) {
	if got := Cost(12.345).String(); got != "$12.35" {
		t.Errorf("got %q", got)
	}
}

// Property: Power.Over and Energy.Div are inverses (within float tolerance).
func TestPowerEnergyRoundTrip(t *testing.T) {
	f := func(pw uint16, ms uint16) bool {
		p := Power(float64(pw%1000) + 0.5)
		d := time.Duration(int64(ms)%100000+1) * time.Millisecond
		back := p.Over(d).Div(d)
		return math.Abs(float64(back-p)) < 1e-9*math.Abs(float64(p))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Bandwidth.Time is monotonic in the byte count.
func TestBandwidthMonotonic(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := Bytes(a), Bytes(b)
		if x > y {
			x, y = y, x
		}
		return GBps.Time(x) <= GBps.Time(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
