// Package units defines the physical quantities used throughout the mrm
// simulator: byte sizes, energy, power, bandwidth, and cost. All quantities
// are strongly typed so that, e.g., a per-bit energy cannot silently be added
// to a power. Formatting follows engineering notation (KiB/MiB for sizes,
// pJ/nJ/µJ for energy).
package units

import (
	"fmt"
	"math"
	"time"
)

// Bytes is a byte count. It is unsigned because capacities and transfer
// sizes are never negative.
type Bytes uint64

// Byte-size constants (binary prefixes).
const (
	Byte Bytes = 1
	KiB  Bytes = 1 << 10
	MiB  Bytes = 1 << 20
	GiB  Bytes = 1 << 30
	TiB  Bytes = 1 << 40
	PiB  Bytes = 1 << 50
)

// Bits returns the number of bits in b.
func (b Bytes) Bits() uint64 { return uint64(b) * 8 }

// String formats b with the largest binary prefix that keeps the mantissa
// above 1, e.g. "1.50 GiB".
func (b Bytes) String() string {
	switch {
	case b >= PiB:
		return fmt.Sprintf("%.2f PiB", float64(b)/float64(PiB))
	case b >= TiB:
		return fmt.Sprintf("%.2f TiB", float64(b)/float64(TiB))
	case b >= GiB:
		return fmt.Sprintf("%.2f GiB", float64(b)/float64(GiB))
	case b >= MiB:
		return fmt.Sprintf("%.2f MiB", float64(b)/float64(MiB))
	case b >= KiB:
		return fmt.Sprintf("%.2f KiB", float64(b)/float64(KiB))
	default:
		return fmt.Sprintf("%d B", uint64(b))
	}
}

// GB returns b expressed in decimal gigabytes (as used in $/GB pricing).
func (b Bytes) GB() float64 { return float64(b) / 1e9 }

// MulF scales b by a non-negative float, rounding to the nearest byte.
func (b Bytes) MulF(f float64) Bytes {
	if f < 0 {
		panic("units: negative byte scale factor")
	}
	return Bytes(math.Round(float64(b) * f))
}

// Energy is an amount of energy in joules.
type Energy float64

// Energy constants.
const (
	Joule      Energy = 1
	MilliJoule Energy = 1e-3
	MicroJoule Energy = 1e-6
	NanoJoule  Energy = 1e-9
	PicoJoule  Energy = 1e-12
)

// PerBit converts a per-bit energy into the energy to access n bytes.
func (e Energy) PerBit(n Bytes) Energy { return e * Energy(n.Bits()) }

// String formats e with an engineering prefix, e.g. "3.90 pJ".
func (e Energy) String() string {
	abs := math.Abs(float64(e))
	switch {
	case abs == 0:
		return "0 J"
	case abs >= 1:
		return fmt.Sprintf("%.3g J", float64(e))
	case abs >= 1e-3:
		return fmt.Sprintf("%.3g mJ", float64(e)*1e3)
	case abs >= 1e-6:
		return fmt.Sprintf("%.3g µJ", float64(e)*1e6)
	case abs >= 1e-9:
		return fmt.Sprintf("%.3g nJ", float64(e)*1e9)
	default:
		return fmt.Sprintf("%.3g pJ", float64(e)*1e12)
	}
}

// Power is a rate of energy use in watts.
type Power float64

// Power constants.
const (
	Watt      Power = 1
	MilliWatt Power = 1e-3
	KiloWatt  Power = 1e3
)

// Over returns the energy consumed by drawing p for duration d.
func (p Power) Over(d time.Duration) Energy {
	return Energy(float64(p) * d.Seconds())
}

// String formats p, e.g. "12.5 W".
func (p Power) String() string {
	abs := math.Abs(float64(p))
	switch {
	case abs == 0:
		return "0 W"
	case abs >= 1e3:
		return fmt.Sprintf("%.3g kW", float64(p)/1e3)
	case abs >= 1:
		return fmt.Sprintf("%.3g W", float64(p))
	default:
		return fmt.Sprintf("%.3g mW", float64(p)*1e3)
	}
}

// Div returns the average power of spending e over duration d.
func (e Energy) Div(d time.Duration) Power {
	if d <= 0 {
		return 0
	}
	return Power(float64(e) / d.Seconds())
}

// Bandwidth is a data rate in bytes per second.
type Bandwidth float64

// Bandwidth constants (decimal, matching vendor spec sheets).
const (
	BytePerSec Bandwidth = 1
	KBps       Bandwidth = 1e3
	MBps       Bandwidth = 1e6
	GBps       Bandwidth = 1e9
	TBps       Bandwidth = 1e12
)

// Time returns how long transferring n bytes takes at bandwidth bw.
func (bw Bandwidth) Time(n Bytes) time.Duration {
	if bw <= 0 {
		return time.Duration(math.MaxInt64)
	}
	sec := float64(n) / float64(bw)
	return time.Duration(sec * float64(time.Second))
}

// String formats bw, e.g. "8.00 TB/s".
func (bw Bandwidth) String() string {
	switch {
	case bw >= TBps:
		return fmt.Sprintf("%.2f TB/s", float64(bw)/1e12)
	case bw >= GBps:
		return fmt.Sprintf("%.2f GB/s", float64(bw)/1e9)
	case bw >= MBps:
		return fmt.Sprintf("%.2f MB/s", float64(bw)/1e6)
	case bw >= KBps:
		return fmt.Sprintf("%.2f KB/s", float64(bw)/1e3)
	default:
		return fmt.Sprintf("%.0f B/s", float64(bw))
	}
}

// Cost is a monetary amount in US dollars.
type Cost float64

// String formats c, e.g. "$1234.56".
func (c Cost) String() string { return fmt.Sprintf("$%.2f", float64(c)) }

// Year is the duration of a (non-leap) year, used for lifetime arithmetic.
const Year = 365 * 24 * time.Hour

// Seconds converts a duration to float seconds.
func Seconds(d time.Duration) float64 { return d.Seconds() }
