package server

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"mrm/internal/core"
	"mrm/internal/dist"
	"mrm/internal/ecc"
	"mrm/internal/fault"
)

// TestRetryableTable pins the daemon's retryability contract: which simulator
// errors are transient (retried with backoff) versus permanent (fail fast,
// rebuild the node). The table deliberately includes wrapped forms — the
// classification must survive every fmt.Errorf("%w") layer the stack adds.
func TestRetryableTable(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"uncorrectable", fault.ErrUncorrectable, true},
		{"uncorrectable wrapped once",
			fmt.Errorf("memdev: hbm read [0x0,0x1000): %w", fault.ErrUncorrectable), true},
		{"uncorrectable wrapped twice",
			fmt.Errorf("cluster: weights unreadable after 2 reseats: %w",
				fmt.Errorf("memdev: read: %w", fault.ErrUncorrectable)), true},
		{"expired", core.ErrExpired, true},
		{"expired wrapped",
			fmt.Errorf("cluster: KV page read: %w", core.ErrExpired), true},
		{"no space", core.ErrNoSpace, false},
		{"no space wrapped",
			fmt.Errorf("cluster: admission: %w", core.ErrNoSpace), false},
		{"unreachable scrub target", ecc.ErrUnreachableTarget, false},
		{"unreachable wrapped",
			fmt.Errorf("ecc: plan: %w", ecc.ErrUnreachableTarget), false},
		{"context canceled", context.Canceled, false},
		{"deadline exceeded", context.DeadlineExceeded, false},
		{"canceled wrapped",
			fmt.Errorf("cluster: run canceled: %w", context.Canceled), false},
		{"plain error", errors.New("cluster: bad config"), false},
		{"daemon sentinels are not retryable themselves", ErrNodeFailed, false},
		{"queue full is backpressure, not retry-here", ErrQueueFull, false},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("%s: Retryable(%v) = %v, want %v", tc.name, tc.err, got, tc.want)
		}
	}
}

// TestFailNodeErrorNotRetryable pins the deliberate %v in failNode (the
// site carries an //mrm:allow-errcmp waiver): a node failure is permanent
// even when its cause was a transient fault class, because the retry budget
// was already spent before failNode ran. Wrapping the cause with %w would
// make Retryable match fault.ErrUncorrectable through the chain and send
// callers into a retry loop against a rebuilt node.
func TestFailNodeErrorNotRetryable(t *testing.T) {
	err := fmt.Errorf("%w (node %d): %v", ErrNodeFailed, 3, fault.ErrUncorrectable)
	if Retryable(err) {
		t.Errorf("Retryable(%v) = true: node-failure errors must be permanent", err)
	}
	if !errors.Is(err, ErrNodeFailed) {
		t.Errorf("errors.Is(%v, ErrNodeFailed) = false: the sentinel must stay matchable", err)
	}
	if errors.Is(err, fault.ErrUncorrectable) {
		t.Errorf("errors.Is(%v, fault.ErrUncorrectable) = true: the flattened cause leaked into the Is chain", err)
	}
}

// TestBackoffFullJitter checks the draw stays inside the exponential
// envelope: attempt k draws from [0, min(Max, Base·2^(k-1))).
func TestBackoffFullJitter(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 8, Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	rng := dist.NewRNG(7)
	ceilings := []time.Duration{
		10 * time.Millisecond, // attempt 1
		20 * time.Millisecond, // attempt 2
		40 * time.Millisecond, // attempt 3
		80 * time.Millisecond, // attempt 4
		80 * time.Millisecond, // attempt 5: capped
		80 * time.Millisecond, // attempt 99: still capped
	}
	attempts := []int{1, 2, 3, 4, 5, 99}
	for round := 0; round < 200; round++ {
		for i, a := range attempts {
			d := p.Backoff(a, rng)
			if d < 0 || d >= ceilings[i] {
				t.Fatalf("attempt %d: backoff %v outside [0, %v)", a, d, ceilings[i])
			}
		}
	}
	// Degenerate attempt values clamp rather than panic.
	if d := p.Backoff(0, rng); d < 0 || d >= p.Base {
		t.Fatalf("attempt 0 should clamp to the first ceiling, got %v", d)
	}
	// The draw is deterministic under a pinned RNG.
	a := p.Backoff(3, dist.NewRNG(42))
	b := p.Backoff(3, dist.NewRNG(42))
	if a != b {
		t.Fatalf("same seed drew %v then %v", a, b)
	}
}

// TestTimeoutErrorIsDeadlineExceeded pins the typed timeout's errors.Is
// compatibility (handlers and clients both rely on it).
func TestTimeoutErrorIsDeadlineExceeded(t *testing.T) {
	err := error(&TimeoutError{Stage: "queued", Elapsed: time.Second})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("TimeoutError must unwrap to context.DeadlineExceeded")
	}
	var te *TimeoutError
	if !errors.As(err, &te) || te.Stage != "queued" {
		t.Fatalf("errors.As lost the typed error: %+v", te)
	}
	wrapped := fmt.Errorf("submit: %w", err)
	if !errors.As(wrapped, &te) {
		t.Fatal("wrapped TimeoutError must still errors.As")
	}
}
