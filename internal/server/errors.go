package server

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// ErrQueueFull reports that the bounded admission queue rejected a
// submission: the daemon sheds load explicitly (HTTP 429 + Retry-After)
// instead of buffering without bound.
var ErrQueueFull = errors.New("server: admission queue full")

// ErrDraining reports that the daemon is shutting down and no longer admits
// work (HTTP 429 + Retry-After; retry against another replica).
var ErrDraining = errors.New("server: draining, not admitting")

// ErrNodeFailed reports that the serving node processing the request failed
// permanently (after exhausting the transient-retry budget) and was rebuilt;
// the request's work is lost (HTTP 500).
var ErrNodeFailed = errors.New("server: serving node failed")

// TimeoutError is the typed per-request deadline error. It wraps
// context.DeadlineExceeded for errors.Is, and records at which stage the
// deadline expired so 504 bodies can say whether the request ever reached a
// node.
type TimeoutError struct {
	// Stage is "queued" (deadline expired before a node picked the request
	// up) or "running" (expired while the request was inside a sim batch).
	Stage string
	// Elapsed is how long the request had been in the daemon.
	Elapsed time.Duration
}

// Error implements error.
func (e *TimeoutError) Error() string {
	return fmt.Sprintf("server: request deadline exceeded after %v (%s)", e.Elapsed, e.Stage)
}

// Unwrap makes errors.Is(err, context.DeadlineExceeded) true.
func (e *TimeoutError) Unwrap() error { return context.DeadlineExceeded }
