package server

import (
	"errors"
	"sync"
	"testing"
)

func mkCall(id uint64) *call { return &call{id: id, out: make(chan outcome, 1)} }

func TestQueueBoundedAndOrdered(t *testing.T) {
	q := newQueue(3)
	for i := uint64(1); i <= 3; i++ {
		if err := q.Enqueue(mkCall(i)); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	// The bound is the backpressure contract: the fourth admission sheds.
	if err := q.Enqueue(mkCall(4)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-cap enqueue = %v, want ErrQueueFull", err)
	}
	if q.Len() != 3 {
		t.Fatalf("len = %d", q.Len())
	}
	// Batch dequeue respects admission order and the max.
	batch := q.Dequeue(2)
	if len(batch) != 2 || batch[0].id != 1 || batch[1].id != 2 {
		t.Fatalf("batch = %+v", batch)
	}
	// Shedding freed capacity: admission works again.
	if err := q.Enqueue(mkCall(5)); err != nil {
		t.Fatalf("enqueue after dequeue: %v", err)
	}
}

func TestQueueCloseDrains(t *testing.T) {
	q := newQueue(8)
	for i := uint64(1); i <= 4; i++ {
		q.Enqueue(mkCall(i))
	}
	q.Close()
	q.Close() // idempotent
	if err := q.Enqueue(mkCall(9)); !errors.Is(err, ErrDraining) {
		t.Fatalf("enqueue after close = %v, want ErrDraining", err)
	}
	// Already-admitted calls stay dequeueable — the drain half of shutdown.
	got := 0
	for {
		batch := q.Dequeue(3)
		if batch == nil {
			break
		}
		got += len(batch)
	}
	if got != 4 {
		t.Fatalf("drained %d calls, want 4", got)
	}
}

func TestQueueWakesBlockedWorkers(t *testing.T) {
	q := newQueue(4)
	var wg sync.WaitGroup
	results := make(chan int, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			for {
				batch := q.Dequeue(2)
				if batch == nil {
					break
				}
				n += len(batch)
			}
			results <- n
		}()
	}
	for i := uint64(1); i <= 4; i++ {
		if err := q.Enqueue(mkCall(i)); err != nil {
			t.Fatalf("enqueue: %v", err)
		}
	}
	q.Close()
	wg.Wait()
	close(results)
	total := 0
	for n := range results {
		total += n
	}
	if total != 4 {
		t.Fatalf("workers drained %d calls, want 4", total)
	}
}
