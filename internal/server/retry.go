package server

import (
	"errors"
	"time"

	"mrm/internal/core"
	"mrm/internal/dist"
	"mrm/internal/fault"
)

// Retryable reports whether err is a transient fault-class error worth
// retrying on the same node. The split is the daemon's reliability contract,
// so it leans entirely on errors.Is against the simulator's sentinels —
// wrapped or not:
//
//   - fault.ErrUncorrectable: device-level uncorrectable reads/writes
//     (injected or organic). The layers below have already degraded
//     gracefully where they could (KV recompute, weight reseat); what
//     escapes is a window the next attempt may miss — transient.
//   - core.ErrExpired: soft state aged out (retention lapse by the virtual
//     clock); by definition recomputable — transient.
//
// Everything else — configuration errors, capacity exhaustion
// (core.ErrNoSpace), unreachable scrub targets (ecc.ErrUnreachableTarget),
// canceled contexts — is permanent: retrying cannot help, and the node is
// rebuilt instead.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, fault.ErrUncorrectable) || errors.Is(err, core.ErrExpired)
}

// Backoff returns the sleep before retry attempt (1-based): a duration drawn
// uniformly from [0, min(Max, Base<<(attempt-1))) — exponential backoff with
// full jitter. rng is the caller's owned generator, so tests can pin the
// draw.
func (p RetryPolicy) Backoff(attempt int, rng *dist.RNG) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	ceiling := p.Base
	for i := 1; i < attempt; i++ {
		ceiling *= 2
		if ceiling >= p.Max {
			ceiling = p.Max
			break
		}
	}
	if ceiling > p.Max {
		ceiling = p.Max
	}
	if ceiling <= 0 {
		return 0
	}
	return time.Duration(rng.Float64() * float64(ceiling))
}
