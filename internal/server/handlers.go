package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"mrm/internal/cluster"
	"mrm/internal/dist"
	"mrm/internal/llm"
)

// routes mounts the control plane.
func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.Handle("GET /metrics", s.reg)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/submit", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/trace", s.handleTrace)
	s.mux.HandleFunc("POST /v1/chaos", s.handleChaos)
	s.mux.HandleFunc("POST /v1/config/tiering", s.handleTiering)
}

// recoverMiddleware contains handler panics: the request gets a 500, the
// daemon keeps serving.
func (s *Server) recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.reg.Counter("mrmd_panics_total").Inc()
				// Best effort: if the handler already wrote, this is a no-op.
				writeJSONError(w, http.StatusInternalServerError,
					fmt.Sprintf("internal error: %v", rec))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeJSONError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// writeSubmitError maps the service's typed errors onto HTTP statuses:
// backpressure is 429 with a Retry-After hint, deadlines are 504, node loss
// is 500.
func (s *Server) writeSubmitError(w http.ResponseWriter, err error) {
	var te *TimeoutError
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", strconv.Itoa(s.svc.RetryAfter()))
		writeJSONError(w, http.StatusTooManyRequests, err.Error())
	case errors.As(err, &te):
		writeJSONError(w, http.StatusGatewayTimeout, te.Error())
	case errors.Is(err, ErrNodeFailed):
		writeJSONError(w, http.StatusInternalServerError, err.Error())
	default:
		writeJSONError(w, http.StatusBadRequest, err.Error())
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports readiness: 503 once draining so load balancers stop
// routing here before the listener goes away.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.svc.Draining() {
		writeJSONError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"nodes":       len(s.svc.nodes),
		"queue_depth": s.svc.QueueDepth(),
		"queue_cap":   s.cfg.QueueDepth,
		"max_batch":   s.cfg.MaxBatch,
		"draining":    s.svc.Draining(),
	})
}

// submitBody is the /v1/submit request.
type submitBody struct {
	PromptTokens int    `json:"prompt_tokens"`
	OutputTokens int    `json:"output_tokens"`
	Class        string `json:"class"` // interactive | throughput | best-effort
	Prefilled    bool   `json:"prefilled"`
	TimeoutMS    int    `json:"timeout_ms"`
}

// submitReply is the /v1/submit response: virtual-clock service quality plus
// shell-side accounting.
type submitReply struct {
	ID           uint64  `json:"id"`
	Node         int     `json:"node"`
	Attempts     int     `json:"attempts"`
	Tokens       int     `json:"tokens"`
	Truncated    bool    `json:"truncated"`
	TTFTVirtualS float64 `json:"ttft_virtual_s"`
	TBTVirtualS  float64 `json:"tbt_virtual_s"`
	DoneVirtualS float64 `json:"done_at_virtual_s"`
	WallS        float64 `json:"wall_s"`
}

func parseClass(s string) (cluster.SLAClass, error) {
	switch s {
	case "", "interactive":
		return cluster.Interactive, nil
	case "throughput":
		return cluster.Throughput, nil
	case "best-effort":
		return cluster.BestEffort, nil
	default:
		return 0, fmt.Errorf("unknown class %q (want interactive, throughput, or best-effort)", s)
	}
}

// timeoutFor resolves the request's wall-clock deadline: client ask, clamped
// to MaxTimeout, defaulting to RequestTimeout.
func (s *Server) timeoutFor(ms int) time.Duration {
	d := s.cfg.RequestTimeout
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var body submitBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	class, err := parseClass(body.Class)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeoutFor(body.TimeoutMS))
	defer cancel()
	res, err := s.svc.Submit(ctx, SubmitRequest{
		PromptTokens: body.PromptTokens,
		OutputTokens: body.OutputTokens,
		Class:        class,
		Prefilled:    body.Prefilled,
	})
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, submitReply{
		ID:           res.ID,
		Node:         res.Node,
		Attempts:     res.Attempts,
		Tokens:       res.Done.Tokens,
		Truncated:    res.Done.Truncated,
		TTFTVirtualS: res.Done.TTFT.Seconds(),
		TBTVirtualS:  res.Done.TBT.Seconds(),
		DoneVirtualS: res.Done.At.Seconds(),
		WallS:        res.Wall.Seconds(),
	})
}

// traceBody is the /v1/trace request: draw a deterministic request stream
// from a workload preset and push it through the daemon's front door (same
// admission, backpressure, and retry path as individual submissions).
type traceBody struct {
	Requests   int    `json:"requests"`
	Workload   string `json:"workload"` // splitwise-conv (default) | splitwise-code
	Seed       uint64 `json:"seed"`
	MaxContext int    `json:"max_context"`
	TimeoutMS  int    `json:"timeout_ms"`
}

type traceReply struct {
	Submitted int     `json:"submitted"`
	Completed int     `json:"completed"`
	Truncated int     `json:"truncated"`
	Rejected  int     `json:"rejected"`
	TimedOut  int     `json:"timed_out"`
	Failed    int     `json:"failed"`
	TTFTP50S  float64 `json:"ttft_virtual_p50_s"`
	TTFTP99S  float64 `json:"ttft_virtual_p99_s"`
	WallS     float64 `json:"wall_s"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	var body traceBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if body.Requests <= 0 || body.Requests > 4096 {
		writeJSONError(w, http.StatusBadRequest, "requests must be in [1, 4096]")
		return
	}
	wl := llm.SplitwiseConv
	switch body.Workload {
	case "", "splitwise-conv":
	case "splitwise-code":
		wl = llm.SplitwiseCode
	default:
		writeJSONError(w, http.StatusBadRequest,
			fmt.Sprintf("unknown workload %q (want splitwise-conv or splitwise-code)", body.Workload))
		return
	}
	seed := body.Seed
	if seed == 0 {
		seed = s.cfg.Seed
	}
	maxCtx := body.MaxContext
	if maxCtx <= 0 {
		maxCtx = 8192
	}
	gen := cluster.Generator{
		Workload:   wl,
		RatePerSec: 1, // arrivals are re-stamped at admission; rate is moot
		Mix:        [3]float64{0.5, 0.3, 0.2},
		MaxContext: maxCtx,
	}
	reqs, err := gen.Generate(dist.NewRNG(seed), body.Requests)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	timeout := s.timeoutFor(body.TimeoutMS)
	start := time.Now()
	var (
		mu      sync.Mutex
		reply   traceReply
		ttfts   []float64
		wg      sync.WaitGroup
		backoff = 5 * time.Millisecond
	)
	for _, req := range reqs {
		wg.Add(1)
		go func(req cluster.Request) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), timeout)
			defer cancel()
			res, err := s.svc.Submit(ctx, SubmitRequest{
				PromptTokens: req.PromptTokens,
				OutputTokens: req.OutputTokens,
				Class:        req.Class,
				Prefilled:    req.Prefilled,
			})
			mu.Lock()
			defer mu.Unlock()
			reply.Submitted++
			var te *TimeoutError
			switch {
			case err == nil:
				if res.Done.Truncated {
					reply.Truncated++
				} else {
					reply.Completed++
				}
				ttfts = append(ttfts, res.Done.TTFT.Seconds())
			case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
				reply.Rejected++
			case errors.As(err, &te):
				reply.TimedOut++
			default:
				reply.Failed++
			}
		}(req)
		// Light pacing so a big trace ramps the queue instead of slamming
		// the full burst into one admission instant.
		if len(reqs) > s.cfg.QueueDepth {
			time.Sleep(backoff / time.Duration(len(reqs)))
		}
	}
	wg.Wait()
	sort.Float64s(ttfts)
	if n := len(ttfts); n > 0 {
		reply.TTFTP50S = ttfts[n/2]
		reply.TTFTP99S = ttfts[(n*99)/100]
	}
	reply.WallS = time.Since(start).Seconds()
	writeJSON(w, http.StatusOK, reply)
}

// chaosBody is the /v1/chaos request: arm deterministic seeded fault
// injection against a running node (or all nodes with node = -1). Rates of
// zero disarm.
type chaosBody struct {
	Node          *int    `json:"node"` // nil or -1 = all nodes
	Seed          uint64  `json:"seed"`
	TransientRate float64 `json:"transient_rate"`
	LapseRate     float64 `json:"lapse_rate"`
}

func (s *Server) handleChaos(w http.ResponseWriter, r *http.Request) {
	var body chaosBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	node := -1
	if body.Node != nil {
		node = *body.Node
	}
	armed, err := s.svc.ArmChaos(node, body.Seed, body.TransientRate, body.LapseRate)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"armed_nodes":    armed,
		"transient_rate": body.TransientRate,
		"lapse_rate":     body.LapseRate,
	})
}

// tieringBody is the /v1/config/tiering request.
type tieringBody struct {
	Policy string `json:"policy"` // static | retention-aware
}

func (s *Server) handleTiering(w http.ResponseWriter, r *http.Request) {
	var body tieringBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if err := s.svc.SetTiering(body.Policy); err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"policy": body.Policy})
}
