// Package server is the robustness-first serving shell around the
// deterministic simulation core: a long-running daemon that hosts serving
// nodes (cluster.Sim instances) as a persistent service behind an HTTP/JSON
// control plane.
//
// The deterministic/nondeterministic boundary is load-bearing and
// mrmlint-enforced. This package is the nondeterministic side — it reads the
// wall clock, sleeps jittered backoffs, races goroutines on selects, and
// reacts to OS signals. The sim core it hosts stays pure: the ingest layer
// stamps every admitted request with the node's *virtual* clock, so
// TTFT/TBT remain simulated quantities, and per-request results stream out
// through cluster.Config.OnDone without the core ever observing real time.
//
// Robustness machinery, in the order a request meets it:
//
//   - panic-recovery middleware (a handler bug 500s one request, not the
//     daemon);
//   - per-request deadlines propagated via context.Context, with typed
//     timeout errors (TimeoutError, errors.Is-compatible with
//     context.DeadlineExceeded);
//   - a bounded admission queue with explicit backpressure: when full,
//     submissions are rejected with ErrQueueFull (HTTP 429 + Retry-After),
//     never buffered without bound;
//   - retry with exponential backoff and full jitter for transient
//     fault-class errors (fault.ErrUncorrectable and friends, classified
//     with errors.Is); permanent errors fail fast and rebuild the node;
//   - graceful drain: shutdown stops admitting (429), runs every admitted
//     request to completion within a drain deadline, then flushes final
//     metrics;
//   - live chaos: deterministic seeded fault injection can be armed against
//     running nodes, so degradation paths are exercisable in production
//     posture.
package server

import (
	"fmt"
	"time"

	"mrm/internal/cluster"
	"mrm/internal/tier"
)

// Node is one serving node as the daemon sees it: the deterministic sim, its
// tiered memory (for live tiering reconfiguration), and an Arm hook that
// installs seeded fault injection on that memory (for live chaos). Builders
// construct fresh Nodes; the daemon also invokes the builder again to
// rebuild a node whose sim failed permanently.
type Node struct {
	Sim *cluster.Sim
	Mem *tier.Manager
	// Arm installs deterministic fault injection on the node's memory
	// (rates of zero disarm). Optional; a nil Arm makes /chaos a no-op for
	// this node. It is only invoked from the node's own goroutine, between
	// batches, so it never races the sim.
	Arm func(seed uint64, transientRate, lapseRate float64)
}

// Builder constructs the node with the given index. It is called once per
// node at startup and again whenever a node is rebuilt after a permanent
// failure, so it must return an independent, fully initialized node each
// time.
type Builder func(node int) (Node, error)

// RetryPolicy bounds the retry-with-backoff loop around transient sim
// faults.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts, including the first
	// (minimum 1; a value of 1 disables retries).
	MaxAttempts int
	// Base is the backoff ceiling before the first retry; the ceiling
	// doubles each further retry, capped at Max. The actual sleep is drawn
	// uniformly from [0, ceiling) — "full jitter" — so retrying nodes
	// decorrelate instead of thundering together.
	Base time.Duration
	// Max caps the backoff ceiling.
	Max time.Duration
}

// Config assembles a daemon.
type Config struct {
	// Build constructs the serving nodes. Required.
	Build Builder
	// Nodes is the number of serving nodes (default 1).
	Nodes int
	// QueueDepth bounds the admission queue (default 64). A full queue
	// rejects with ErrQueueFull — explicit backpressure, never unbounded
	// buffering.
	QueueDepth int
	// MaxBatch caps how many queued requests one node pulls per sim batch
	// (default 8).
	MaxBatch int
	// RequestTimeout is the default per-request wall-clock deadline applied
	// when a submission names none (default 30s); MaxTimeout caps
	// client-requested deadlines (default 2m).
	RequestTimeout time.Duration
	MaxTimeout     time.Duration
	// DrainTimeout bounds graceful shutdown: admitted requests get this
	// long to finish before the daemon abandons them (default 15s).
	DrainTimeout time.Duration
	// Retry is the transient-fault retry policy (defaults: 4 attempts, 5ms
	// base, 250ms cap).
	Retry RetryPolicy
	// Seed seeds the daemon's own randomness (retry jitter) and the default
	// chaos-seed derivation. Deterministic tests pin it; production can
	// leave the default.
	Seed uint64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() (Config, error) {
	if c.Build == nil {
		return c, fmt.Errorf("server: config needs a node Builder")
	}
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 15 * time.Second
	}
	if c.Retry.MaxAttempts <= 0 {
		c.Retry.MaxAttempts = 4
	}
	if c.Retry.Base <= 0 {
		c.Retry.Base = 5 * time.Millisecond
	}
	if c.Retry.Max <= 0 {
		c.Retry.Max = 250 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c, nil
}
