package server

import "sync"

// queue is the bounded admission queue: submissions enter non-blocking (a
// full queue is an ErrQueueFull rejection, the backpressure signal), node
// workers block dequeuing batches. Closing the queue stops admission while
// letting workers drain what was already admitted — the graceful-shutdown
// half of the contract: everything admitted gets an answer, nothing new gets
// in.
//
// A cond-guarded slice rather than a channel: Enqueue must fail fast when
// full (never block the HTTP handler), Dequeue must take up to max items in
// one wakeup, and Close must be idempotent and safe against concurrent
// enqueues — all awkward on a channel, all trivial here.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond // signaled on enqueue and close; set once in newQueue
	items  []*call    // guarded by mu
	cap    int        // guarded by mu
	closed bool       // guarded by mu
}

func newQueue(capacity int) *queue {
	q := &queue{cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Enqueue admits c, or rejects immediately with ErrQueueFull (bounded) or
// ErrDraining (closed).
func (q *queue) Enqueue(c *call) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	if len(q.items) >= q.cap {
		return ErrQueueFull
	}
	q.items = append(q.items, c)
	q.cond.Signal()
	return nil
}

// Dequeue blocks until at least one call is queued, then returns up to max
// of them in admission order. It returns nil only when the queue is closed
// and fully drained — the worker's signal to exit.
func (q *queue) Dequeue(max int) []*call {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil
	}
	n := max
	if n > len(q.items) {
		n = len(q.items)
	}
	batch := make([]*call, n)
	copy(batch, q.items[:n])
	// Shift rather than re-slice so dequeued calls don't pin the array.
	rest := copy(q.items, q.items[n:])
	for i := rest; i < len(q.items); i++ {
		q.items[i] = nil
	}
	q.items = q.items[:rest]
	return batch
}

// Len reports the current depth (for Retry-After hints and metrics).
func (q *queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Close stops admission. Idempotent; queued calls remain dequeueable so
// workers can drain them.
func (q *queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}
