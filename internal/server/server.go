package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"mrm/internal/metrics"
)

// Server is the daemon: the service (nodes + queue) plus its HTTP control
// plane.
type Server struct {
	cfg Config
	svc *service
	reg *metrics.Registry
	mux *http.ServeMux
	hs  *http.Server

	lis  net.Listener
	shut atomic.Bool
}

// New assembles a daemon from cfg (nodes are built and their workers started
// immediately; requests flow once a listener is attached or the Handler is
// mounted).
func New(cfg Config) (*Server, error) {
	reg := metrics.NewRegistry()
	svc, err := newService(cfg, reg)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: svc.cfg, svc: svc, reg: reg, mux: http.NewServeMux()}
	s.routes()
	s.hs = &http.Server{Handler: s.Handler()}
	return s, nil
}

// Handler returns the daemon's full HTTP handler (all routes, wrapped in
// panic recovery). Tests mount it on httptest.Server.
func (s *Server) Handler() http.Handler {
	return s.recoverMiddleware(s.mux)
}

// Metrics exposes the daemon's registry (the smoke test and final flush read
// it directly).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Listen binds addr (":0" picks a free port).
func (s *Server) Listen(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s.lis = lis
	return nil
}

// Addr reports the bound address ("" before Listen).
func (s *Server) Addr() string {
	if s.lis == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// Serve runs the HTTP server on the bound listener until Shutdown. It
// returns nil on graceful shutdown.
func (s *Server) Serve() error {
	if s.lis == nil {
		return fmt.Errorf("server: Serve before Listen")
	}
	if err := s.hs.Serve(s.lis); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("server: serve: %w", err)
	}
	return nil
}

// Shutdown drains the daemon gracefully: stop admitting (submissions get 429
// while the listener stays up so in-flight responses can complete), drain
// every admitted request within the drain deadline, stop the HTTP server,
// and flush final metrics to w (if non-nil). Returns nil on a clean drain;
// a drain-deadline overrun returns the wrapped context error after
// force-failing what was left. Idempotent.
func (s *Server) Shutdown(w io.Writer) error {
	if s.shut.Swap(true) {
		return nil
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	drainErr := s.svc.Shutdown(drainCtx)
	// The service has answered every admitted call; now close the HTTP side
	// (brief deadline — handlers only have responses left to write).
	httpCtx, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	if err := s.hs.Shutdown(httpCtx); err != nil {
		s.hs.Close()
	}
	if w != nil {
		fmt.Fprintf(w, "# mrmd final metrics\n")
		s.reg.WriteText(w)
	}
	return drainErr
}
