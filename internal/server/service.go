package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mrm/internal/cluster"
	"mrm/internal/dist"
	"mrm/internal/fault"
	"mrm/internal/metrics"
	"mrm/internal/tier"
)

// call is one admitted request's journey through the daemon: queued, fed to
// a node sim, answered exactly once through out.
type call struct {
	id       uint64
	req      cluster.Request
	enqueued time.Time
	// canceled marks a call whose client gave up (deadline) while it was
	// still queued; workers skip it instead of feeding it to a sim.
	canceled atomic.Bool
	// fed marks that a worker handed the call to a sim (for timeout-stage
	// reporting).
	fed atomic.Bool
	// delivered guards out so completion and node-failure paths can race
	// benignly: exactly one outcome wins.
	delivered atomic.Bool
	out       chan outcome // buffered(1)
}

// deliver answers the call once; later deliveries are dropped.
func (c *call) deliver(o outcome) {
	if c.delivered.CompareAndSwap(false, true) {
		c.out <- o
	}
}

// outcome is what a call resolves to.
type outcome struct {
	done     cluster.Done
	node     int
	attempts int
	err      error
}

// SubmitRequest describes one inference request entering the daemon.
type SubmitRequest struct {
	PromptTokens int              `json:"prompt_tokens"`
	OutputTokens int              `json:"output_tokens"`
	Class        cluster.SLAClass `json:"class"`
	Prefilled    bool             `json:"prefilled"`
}

// SubmitResult is a completed request's answer: the sim's per-request
// completion record (virtual times) plus shell-side accounting.
type SubmitResult struct {
	ID       uint64
	Node     int
	Attempts int
	Done     cluster.Done
	Wall     time.Duration // wall-clock time inside the daemon
}

// chaosCfg is a staged fault-injection arming.
type chaosCfg struct {
	seed             uint64
	transient, lapse float64
}

// nodeCtl is the staged control state for one node. The control plane writes
// it under the service lock and bumps version; the node's own goroutine
// applies it between batches, so reconfiguration never races a running sim.
type nodeCtl struct {
	version  uint64
	chaos    chaosCfg
	chaosSet bool
	policy   tier.Policy
}

// node is one serving node: a deterministic sim owned by exactly one worker
// goroutine. inflight and applied are touched only by that goroutine (and by
// startup/rebuild code running on it), so they need no lock.
type node struct {
	idx      int
	sim      *cluster.Sim
	mem      *tier.Manager
	arm      func(uint64, float64, float64)
	inflight map[uint64]*call
	applied  uint64 // last applied control version
	attempts int    // attempts spent on the current batch
}

// service hosts the nodes behind the admission queue. It is the layer the
// HTTP handlers talk to, and the one the daemon drains on shutdown.
type service struct {
	cfg   Config
	reg   *metrics.Registry
	queue *queue
	nodes []*node

	mu       sync.Mutex
	jitter   *dist.RNG // guarded by mu
	controls []nodeCtl // guarded by mu

	wg       sync.WaitGroup
	draining atomic.Bool
	nextID   atomic.Uint64
	// runCtx is the workers' lifetime context: created once at startup,
	// cancelled once by Shutdown. It gates whole sim batches, not requests —
	// per-request deadlines live in the queue's admission layer — so storing
	// it does not detach any request from its caller.
	//mrm:allow-ctxflow process-lifetime context for the worker goroutines, cancelled by Shutdown; request deadlines are enforced at admission
	runCtx    context.Context
	cancelRun context.CancelFunc
}

// newService builds the nodes and starts one worker goroutine per node.
func newService(cfg Config, reg *metrics.Registry) (*service, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &service{
		cfg:      cfg,
		reg:      reg,
		queue:    newQueue(cfg.QueueDepth),
		jitter:   dist.NewRNG(cfg.Seed),
		controls: make([]nodeCtl, cfg.Nodes),
	}
	s.runCtx, s.cancelRun = context.WithCancel(context.Background())
	for i := 0; i < cfg.Nodes; i++ {
		nd, err := cfg.Build(i)
		if err != nil {
			return nil, fmt.Errorf("server: building node %d: %w", i, err)
		}
		if nd.Sim == nil {
			return nil, fmt.Errorf("server: builder returned node %d without a sim", i)
		}
		n := &node{idx: i, sim: nd.Sim, mem: nd.Mem, arm: nd.Arm, inflight: make(map[uint64]*call)}
		n.sim.SetOnDone(s.nodeDone(n))
		s.nodes = append(s.nodes, n)
	}
	for _, n := range s.nodes {
		s.wg.Add(1)
		go s.nodeLoop(n)
	}
	return s, nil
}

// Submit admits one request and blocks until it completes, fails, or ctx
// expires. Backpressure is explicit: a full queue or a draining daemon
// rejects immediately (ErrQueueFull / ErrDraining) rather than buffering.
func (s *service) Submit(ctx context.Context, req SubmitRequest) (SubmitResult, error) {
	s.reg.Counter("mrmd_requests_total").Inc()
	if req.PromptTokens <= 0 || req.OutputTokens <= 0 {
		return SubmitResult{}, fmt.Errorf("server: need positive prompt and output tokens")
	}
	if s.draining.Load() {
		s.reg.Counter("mrmd_rejected_draining_total").Inc()
		return SubmitResult{}, ErrDraining
	}
	id := s.nextID.Add(1)
	c := &call{
		id: id,
		req: cluster.Request{
			ID:           id,
			PromptTokens: req.PromptTokens,
			OutputTokens: req.OutputTokens,
			Class:        req.Class,
			Prefilled:    req.Prefilled,
		},
		enqueued: time.Now(),
		out:      make(chan outcome, 1),
	}
	if err := s.queue.Enqueue(c); err != nil {
		if errors.Is(err, ErrQueueFull) {
			s.reg.Counter("mrmd_rejected_full_total").Inc()
		} else {
			s.reg.Counter("mrmd_rejected_draining_total").Inc()
		}
		return SubmitResult{}, err
	}
	s.reg.Gauge("mrmd_queue_depth").Set(float64(s.queue.Len()))
	select {
	case out := <-c.out:
		wall := time.Since(c.enqueued)
		s.reg.Histogram("mrmd_wall_seconds").Observe(wall.Seconds())
		if out.err != nil {
			return SubmitResult{}, out.err
		}
		return SubmitResult{ID: id, Node: out.node, Attempts: out.attempts, Done: out.done, Wall: wall}, nil
	case <-ctx.Done():
		c.canceled.Store(true)
		s.reg.Counter("mrmd_timeouts_total").Inc()
		stage := "queued"
		if c.fed.Load() {
			stage = "running"
		}
		return SubmitResult{}, &TimeoutError{Stage: stage, Elapsed: time.Since(c.enqueued)}
	}
}

// nodeDone builds the per-request completion observer registered on a node's
// sim. It runs synchronously on the node goroutine while the sim is inside
// Run, so it may touch node-owned state without a lock.
func (s *service) nodeDone(n *node) func(cluster.Done) {
	return func(d cluster.Done) {
		c, ok := n.inflight[d.ID]
		if !ok {
			return
		}
		delete(n.inflight, d.ID)
		s.reg.Gauge("mrmd_inflight").Add(-1)
		if d.Truncated {
			s.reg.Counter("mrmd_truncated_total").Inc()
		} else {
			s.reg.Counter("mrmd_completed_total").Inc()
		}
		s.reg.Histogram("mrmd_ttft_virtual_seconds").Observe(d.TTFT.Seconds())
		if d.TBT > 0 {
			s.reg.Histogram("mrmd_tbt_virtual_seconds").Observe(d.TBT.Seconds())
		}
		c.deliver(outcome{done: d, node: n.idx, attempts: n.attempts})
	}
}

// nodeLoop is a node's worker: dequeue a batch, apply staged controls, run
// it. Exits when the queue is closed and drained.
func (s *service) nodeLoop(n *node) {
	defer s.wg.Done()
	for {
		batch := s.queue.Dequeue(s.cfg.MaxBatch)
		s.reg.Gauge("mrmd_queue_depth").Set(float64(s.queue.Len()))
		if batch == nil {
			return
		}
		s.applyControls(n)
		s.runBatch(n, batch)
	}
}

// runBatch feeds one batch to the node's sim on the virtual clock and runs
// it to completion, retrying transient faults with jittered backoff. A
// panic anywhere inside the sim is contained to this node: its calls fail,
// the node rebuilds, the daemon lives.
func (s *service) runBatch(n *node, batch []*call) {
	defer func() {
		if r := recover(); r != nil {
			s.reg.Counter("mrmd_panics_total").Inc()
			s.failNode(n, fmt.Errorf("server: node %d panicked: %v", n.idx, r))
		}
	}()
	// Ingest: stamp arrivals with the node's virtual clock. The sim never
	// sees wall time; whatever instant the shell admitted a request at, on
	// the virtual timeline it arrives "now".
	now := n.sim.Clock()
	reqs := make([]cluster.Request, 0, len(batch))
	for _, c := range batch {
		if c.canceled.Load() {
			continue // client gave up while queued; already answered 504
		}
		c.fed.Store(true)
		r := c.req
		r.Arrival = now
		n.inflight[r.ID] = c
		reqs = append(reqs, r)
	}
	if len(reqs) == 0 {
		return
	}
	s.reg.Gauge("mrmd_inflight").Add(float64(len(reqs)))
	n.attempts = 1
	_, err := n.sim.RunContext(s.runCtx, reqs)
	for err != nil {
		if s.runCtx.Err() != nil {
			// Drain deadline (or daemon teardown): answer what's left and
			// exit without rebuilding — the daemon is going away.
			s.failCalls(n, fmt.Errorf("server: abandoned at drain deadline: %w", err))
			return
		}
		if !Retryable(err) || n.attempts >= s.cfg.Retry.MaxAttempts {
			s.failNode(n, err)
			return
		}
		s.reg.Counter("mrmd_retries_total").Inc()
		// Jittered sleep, cut short if the drain deadline fires meanwhile.
		select {
		case <-time.After(s.backoff(n.attempts)):
		case <-s.runCtx.Done():
		}
		n.attempts++
		// Continue the interrupted batch: the sim holds its unfinished
		// requests internally, so a Run with no new arrivals drains them.
		_, err = n.sim.RunContext(s.runCtx, nil)
	}
}

// backoff draws the jittered sleep before retry attempt (1-based).
func (s *service) backoff(attempt int) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg.Retry.Backoff(attempt, s.jitter)
}

// failCalls answers every call fed to the node's sim with err (in admission
// order) and clears the inflight set.
func (s *service) failCalls(n *node, err error) {
	ids := make([]uint64, 0, len(n.inflight))
	for id := range n.inflight {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		c := n.inflight[id]
		delete(n.inflight, id)
		s.reg.Gauge("mrmd_inflight").Add(-1)
		c.deliver(outcome{err: err, node: n.idx, attempts: n.attempts})
	}
}

// failNode handles a permanent node failure: every in-flight call on the
// node fails with ErrNodeFailed, and the node is rebuilt from the builder so
// the poisoned sim state cannot leak into later requests.
func (s *service) failNode(n *node, cause error) {
	s.reg.Counter("mrmd_node_failures_total").Inc()
	// The cause is flattened with %v on purpose: a node failure is permanent
	// (the retry budget is spent, the node is rebuilt), and wrapping a
	// transient cause like fault.ErrUncorrectable with %w would make
	// Retryable resurrect it. TestFailNodeErrorNotRetryable pins this.
	//mrm:allow-errcmp flattening is deliberate: ErrNodeFailed is permanent; %w on the cause would make Retryable match it again
	s.failCalls(n, fmt.Errorf("%w (node %d): %v", ErrNodeFailed, n.idx, cause))
	nd, err := s.cfg.Build(n.idx)
	if err != nil || nd.Sim == nil {
		// Can't rebuild: keep the old sim — requests will keep failing and
		// each failure retries the rebuild. Degraded beats dead.
		s.reg.Counter("mrmd_rebuild_failures_total").Inc()
		return
	}
	n.sim, n.mem, n.arm = nd.Sim, nd.Mem, nd.Arm
	n.sim.SetOnDone(s.nodeDone(n))
	s.reg.Counter("mrmd_node_rebuilds_total").Inc()
	// Re-apply staged controls (chaos arming, tiering policy) so the fresh
	// node matches the fleet's configured posture.
	n.applied = 0
	s.applyControls(n)
}

// applyControls applies any staged control-plane changes to the node. Runs
// only on the node's goroutine, between batches.
func (s *service) applyControls(n *node) {
	s.mu.Lock()
	ctl := s.controls[n.idx]
	s.mu.Unlock()
	if ctl.version == n.applied {
		return
	}
	if ctl.chaosSet && n.arm != nil {
		n.arm(ctl.chaos.seed, ctl.chaos.transient, ctl.chaos.lapse)
	}
	if ctl.policy != nil && n.mem != nil {
		if _, err := n.mem.SetPolicy(ctl.policy); err != nil {
			s.reg.Counter("mrmd_reconfig_failures_total").Inc()
		}
	}
	n.applied = ctl.version
}

// ArmChaos stages deterministic seeded fault injection on one node (or all,
// with node < 0). Each node derives an independent stream from the given
// seed, and the arming lands before the node's next batch — the control
// plane never touches a sim mid-run. Rates of zero disarm.
func (s *service) ArmChaos(nodeIdx int, seed uint64, transient, lapse float64) (int, error) {
	if nodeIdx >= len(s.nodes) {
		return 0, fmt.Errorf("server: chaos names bad node %d (have %d)", nodeIdx, len(s.nodes))
	}
	if transient < 0 || lapse < 0 || transient > 1 || lapse > 1 {
		return 0, fmt.Errorf("server: chaos rates must be in [0,1]")
	}
	if seed == 0 {
		seed = s.cfg.Seed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	count := 0
	for i := range s.controls {
		if nodeIdx >= 0 && i != nodeIdx {
			continue
		}
		s.controls[i].chaos = chaosCfg{seed: fault.DeriveSeed(seed, i), transient: transient, lapse: lapse}
		s.controls[i].chaosSet = true
		s.controls[i].version++
		count++
	}
	s.reg.Counter("mrmd_chaos_armed_total").Add(int64(count))
	return count, nil
}

// SetTiering stages a live placement-policy swap on every node (applied
// before each node's next batch; already-placed objects stay put).
func (s *service) SetTiering(policy string) error {
	var p tier.Policy
	switch policy {
	case "static":
		p = tier.StaticPolicy{}
	case "retention-aware":
		p = tier.RetentionAwarePolicy{}
	default:
		return fmt.Errorf("server: unknown tiering policy %q (want static or retention-aware)", policy)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.controls {
		s.controls[i].policy = p
		s.controls[i].version++
	}
	return nil
}

// Draining reports whether the daemon has stopped admitting.
func (s *service) Draining() bool { return s.draining.Load() }

// QueueDepth reports the admission queue's current depth.
func (s *service) QueueDepth() int { return s.queue.Len() }

// RetryAfter estimates (in whole seconds, minimum 1) how long a rejected
// client should wait before retrying, scaled by how backed up the queue is.
func (s *service) RetryAfter() int {
	secs := 1 + s.queue.Len()/s.cfg.MaxBatch
	if secs > 30 {
		secs = 30
	}
	return secs
}

// Shutdown drains the daemon: stop admitting (new submissions see
// ErrDraining), let the workers run every already-admitted request to
// completion, and return nil on a clean drain. If ctx expires first, the
// in-flight sim batches are canceled, their calls answered with a drain
// error, and a wrapped ctx.Err() is returned. Idempotent.
func (s *service) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.queue.Close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.cancelRun()
		return nil
	case <-ctx.Done():
		s.cancelRun()
		<-done
		return fmt.Errorf("server: drain deadline exceeded: %w", ctx.Err())
	}
}
