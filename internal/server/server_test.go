package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mrm/internal/cluster"
	"mrm/internal/ecc"
	"mrm/internal/fault"
	"mrm/internal/llm"
	"mrm/internal/memdev"
	"mrm/internal/tier"
	"mrm/internal/units"
)

// testBuilder returns a Builder producing small HBM-only serving nodes with
// a chaos Arm hook, the same shape cmd/mrmd builds from the full memory
// configurations.
func testBuilder(t *testing.T) Builder {
	t.Helper()
	return func(node int) (Node, error) {
		spec := memdev.HBM3E
		spec.Capacity = 64 * units.GiB
		spec.ReadBW = 8 * units.TBps
		hbm, err := tier.NewDeviceTier("hbm", spec)
		if err != nil {
			return Node{}, err
		}
		m, err := tier.NewManager(tier.StaticPolicy{}, hbm)
		if err != nil {
			return Node{}, err
		}
		sim, err := cluster.NewSim(cluster.Config{
			Model: llm.Llama27B, Acc: llm.B200,
			Memory: m, PageTokens: 16, MaxBatch: 4,
		})
		if err != nil {
			return Node{}, err
		}
		arm := func(seed uint64, transient, lapse float64) {
			for i, b := range m.Backends() {
				if f, ok := b.(tier.Faultable); ok {
					f.SetFaults(memdev.FaultConfig{
						Seed:          fault.DeriveSeed(seed, i),
						TransientRate: transient,
						Code:          ecc.RSSpec(255, 223),
						UBERTarget:    1e-18,
					})
				}
			}
		}
		return Node{Sim: sim, Mem: m, Arm: arm}, nil
	}
}

func newTestServer(t *testing.T, mod func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Build:          testBuilder(t),
		Nodes:          1,
		QueueDepth:     16,
		MaxBatch:       4,
		RequestTimeout: 20 * time.Second,
		DrainTimeout:   20 * time.Second,
		Retry:          RetryPolicy{MaxAttempts: 2, Base: time.Millisecond, Max: 2 * time.Millisecond},
		Seed:           7,
	}
	if mod != nil {
		mod(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Shutdown(nil)
	})
	return srv, hs
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		out = nil
	}
	return resp, out
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, sb.String()
}

func TestSubmitCompletesOverHTTP(t *testing.T) {
	_, hs := newTestServer(t, nil)
	if code, _ := getBody(t, hs.URL+"/healthz"); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
	if code, _ := getBody(t, hs.URL+"/readyz"); code != 200 {
		t.Fatalf("readyz = %d", code)
	}
	resp, out := postJSON(t, hs.URL+"/v1/submit", map[string]any{
		"prompt_tokens": 64, "output_tokens": 16, "class": "interactive",
	})
	if resp.StatusCode != 200 {
		t.Fatalf("submit = %d (%v)", resp.StatusCode, out)
	}
	if out["tokens"].(float64) != 16 {
		t.Fatalf("tokens = %v", out["tokens"])
	}
	if out["ttft_virtual_s"].(float64) <= 0 {
		t.Fatalf("ttft = %v, want > 0 (virtual clock)", out["ttft_virtual_s"])
	}
	if out["truncated"].(bool) {
		t.Fatal("short request should not truncate")
	}
	code, metrics := getBody(t, hs.URL+"/metrics")
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	for _, want := range []string{"mrmd_requests_total 1", "mrmd_completed_total 1", "mrmd_ttft_virtual_seconds_count 1"} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
	if code, _ := getBody(t, hs.URL+"/v1/stats"); code != 200 {
		t.Fatalf("stats = %d", code)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, hs := newTestServer(t, nil)
	resp, _ := postJSON(t, hs.URL+"/v1/submit", map[string]any{"prompt_tokens": 0, "output_tokens": 4})
	if resp.StatusCode != 400 {
		t.Fatalf("zero prompt = %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, hs.URL+"/v1/submit", map[string]any{
		"prompt_tokens": 8, "output_tokens": 4, "class": "warp-speed"})
	if resp.StatusCode != 400 {
		t.Fatalf("bad class = %d, want 400", resp.StatusCode)
	}
	r, err := http.Post(hs.URL+"/v1/submit", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != 400 {
		t.Fatalf("bad json = %d, want 400", r.StatusCode)
	}
}

func TestPerRequestDeadline(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	_, err := srv.svc.Submit(ctx, SubmitRequest{PromptTokens: 64, OutputTokens: 512})
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TimeoutError", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("timeout must satisfy errors.Is(err, context.DeadlineExceeded)")
	}
	if te.Stage != "queued" && te.Stage != "running" {
		t.Fatalf("stage = %q", te.Stage)
	}
}

// TestBackpressureShedsWith429 is the saturation test: with the worker
// pinned down by armed chaos (every attempt faults, so it cycles through
// retry backoffs), a tiny queue fills and the next admission is shed with
// 429 + Retry-After — never buffered without bound.
func TestBackpressureShedsWith429(t *testing.T) {
	srv, hs := newTestServer(t, func(c *Config) {
		c.QueueDepth = 1
		c.MaxBatch = 1
		// Long retry budget with real sleeps: the worker stays busy. A short
		// drain deadline keeps the test's cleanup Shutdown fast.
		c.Retry = RetryPolicy{MaxAttempts: 1000, Base: 20 * time.Millisecond, Max: 50 * time.Millisecond}
		c.DrainTimeout = 200 * time.Millisecond
	})
	if _, err := srv.svc.ArmChaos(-1, 7, 1.0, 0); err != nil {
		t.Fatal(err)
	}
	// First submission: the worker dequeues it and starts fault-retrying.
	go srv.svc.Submit(context.Background(), SubmitRequest{PromptTokens: 64, OutputTokens: 16})
	waitFor(t, func() bool { return srv.reg.Gauge("mrmd_inflight").Value() >= 1 })
	// Second submission: sits in the queue (depth 1), filling it.
	go srv.svc.Submit(context.Background(), SubmitRequest{PromptTokens: 64, OutputTokens: 16})
	waitFor(t, func() bool { return srv.svc.QueueDepth() >= 1 })
	// Third submission over HTTP: the queue is full — explicit shed.
	resp, out := postJSON(t, hs.URL+"/v1/submit", map[string]any{
		"prompt_tokens": 64, "output_tokens": 16})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit = %d (%v), want 429", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry a Retry-After hint")
	}
	if srv.reg.Counter("mrmd_rejected_full_total").Value() < 1 {
		t.Fatal("shed not accounted in mrmd_rejected_full_total")
	}
}

// TestChaosRetryExhaustionRebuildsNode arms live chaos at rate 1.0 (every
// read uncorrectable): the daemon retries to its budget, fails the node's
// calls with ErrNodeFailed (HTTP 500), and rebuilds the node. Disarming
// returns the daemon to healthy service — the full degradation round-trip.
func TestChaosRetryExhaustionRebuildsNode(t *testing.T) {
	srv, hs := newTestServer(t, nil)
	resp, out := postJSON(t, hs.URL+"/v1/chaos", map[string]any{
		"seed": 7, "transient_rate": 1.0})
	if resp.StatusCode != 200 || out["armed_nodes"].(float64) != 1 {
		t.Fatalf("chaos arm = %d %v", resp.StatusCode, out)
	}
	resp, out = postJSON(t, hs.URL+"/v1/submit", map[string]any{
		"prompt_tokens": 64, "output_tokens": 16})
	if resp.StatusCode != 500 {
		t.Fatalf("submit under total chaos = %d (%v), want 500", resp.StatusCode, out)
	}
	if !strings.Contains(out["error"].(string), "node") {
		t.Fatalf("error body %q should name the node failure", out["error"])
	}
	if srv.reg.Counter("mrmd_retries_total").Value() < 1 {
		t.Fatal("transient faults should be retried before giving up")
	}
	if srv.reg.Counter("mrmd_node_rebuilds_total").Value() < 1 {
		t.Fatal("exhausted node should be rebuilt")
	}
	// Disarm: the rebuilt node serves cleanly again.
	if resp, _ := postJSON(t, hs.URL+"/v1/chaos", map[string]any{"transient_rate": 0.0}); resp.StatusCode != 200 {
		t.Fatalf("chaos disarm = %d", resp.StatusCode)
	}
	resp, out = postJSON(t, hs.URL+"/v1/submit", map[string]any{
		"prompt_tokens": 64, "output_tokens": 16})
	if resp.StatusCode != 200 {
		t.Fatalf("submit after disarm = %d (%v), want 200", resp.StatusCode, out)
	}
}

// TestGracefulDrain pins the shutdown contract: every admitted request gets
// a definitive answer (zero drops), new admissions are rejected 429-style,
// readiness flips, and Shutdown returns nil within the drain deadline.
func TestGracefulDrain(t *testing.T) {
	srv, hs := newTestServer(t, func(c *Config) { c.QueueDepth = 64; c.MaxBatch = 2 })
	const n = 10
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = srv.svc.Submit(context.Background(),
				SubmitRequest{PromptTokens: 64, OutputTokens: 24})
		}(i)
	}
	// Wait until the burst is at least partly admitted, then drain.
	waitFor(t, func() bool {
		return srv.reg.Counter("mrmd_requests_total").Value() >= n
	})
	var buf bytes.Buffer
	if err := srv.Shutdown(&buf); err != nil {
		t.Fatalf("drain should complete inside the deadline: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d dropped during drain: %v", i, err)
		}
	}
	if !strings.Contains(buf.String(), "mrmd_completed_total") {
		t.Fatal("shutdown should flush final metrics")
	}
	// Post-drain admissions are refused, and readiness reports draining.
	if _, err := srv.svc.Submit(context.Background(), SubmitRequest{PromptTokens: 8, OutputTokens: 4}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit = %v, want ErrDraining", err)
	}
	if code, _ := getBody(t, hs.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain = %d, want 503", code)
	}
	if code, _ := getBody(t, hs.URL+"/healthz"); code != 200 {
		t.Fatalf("healthz should stay 200 while the process lives, got %d", code)
	}
	if err := srv.Shutdown(nil); err != nil {
		t.Fatalf("shutdown must be idempotent: %v", err)
	}
}

// TestDrainDeadlineAbandons pins the other half: when in-flight work cannot
// finish inside the drain deadline, the daemon abandons it — the calls still
// get answers (errors, not silence) and Shutdown reports the overrun.
func TestDrainDeadlineAbandons(t *testing.T) {
	srv, _ := newTestServer(t, func(c *Config) {
		c.QueueDepth = 4
		c.MaxBatch = 1
		c.DrainTimeout = 30 * time.Millisecond
		c.Retry = RetryPolicy{MaxAttempts: 1 << 20, Base: 20 * time.Millisecond, Max: 40 * time.Millisecond}
	})
	if _, err := srv.svc.ArmChaos(-1, 7, 1.0, 0); err != nil {
		t.Fatal(err)
	}
	res := make(chan error, 1)
	go func() {
		_, err := srv.svc.Submit(context.Background(), SubmitRequest{PromptTokens: 64, OutputTokens: 16})
		res <- err
	}()
	waitFor(t, func() bool { return srv.reg.Gauge("mrmd_inflight").Value() >= 1 })
	err := srv.Shutdown(nil)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("overrun drain = %v, want wrapped DeadlineExceeded", err)
	}
	select {
	case serr := <-res:
		if serr == nil {
			t.Fatal("abandoned call should fail, not succeed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned call never answered — a dropped response")
	}
}

func TestTraceEndpoint(t *testing.T) {
	_, hs := newTestServer(t, func(c *Config) { c.QueueDepth = 64; c.Nodes = 2 })
	resp, out := postJSON(t, hs.URL+"/v1/trace", map[string]any{
		"requests": 8, "workload": "splitwise-code", "seed": 11})
	if resp.StatusCode != 200 {
		t.Fatalf("trace = %d (%v)", resp.StatusCode, out)
	}
	sum := out["completed"].(float64) + out["truncated"].(float64) +
		out["rejected"].(float64) + out["timed_out"].(float64) + out["failed"].(float64)
	if out["submitted"].(float64) != 8 || sum != 8 {
		t.Fatalf("trace accounting: %v", out)
	}
	if out["completed"].(float64) == 0 {
		t.Fatalf("healthy trace completed nothing: %v", out)
	}
}

func TestTieringReconfig(t *testing.T) {
	_, hs := newTestServer(t, nil)
	resp, _ := postJSON(t, hs.URL+"/v1/config/tiering", map[string]any{"policy": "retention-aware"})
	if resp.StatusCode != 200 {
		t.Fatalf("tiering swap = %d", resp.StatusCode)
	}
	// The staged policy applies before the next batch; service continues.
	resp, out := postJSON(t, hs.URL+"/v1/submit", map[string]any{
		"prompt_tokens": 64, "output_tokens": 8})
	if resp.StatusCode != 200 {
		t.Fatalf("submit after reconfig = %d (%v)", resp.StatusCode, out)
	}
	resp, _ = postJSON(t, hs.URL+"/v1/config/tiering", map[string]any{"policy": "zirp"})
	if resp.StatusCode != 400 {
		t.Fatalf("unknown policy = %d, want 400", resp.StatusCode)
	}
}

func TestChaosValidation(t *testing.T) {
	_, hs := newTestServer(t, nil)
	resp, _ := postJSON(t, hs.URL+"/v1/chaos", map[string]any{"node": 9, "transient_rate": 0.1})
	if resp.StatusCode != 400 {
		t.Fatalf("bad node = %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, hs.URL+"/v1/chaos", map[string]any{"transient_rate": 1.5})
	if resp.StatusCode != 400 {
		t.Fatalf("bad rate = %d, want 400", resp.StatusCode)
	}
}

// TestPanicRecoveryMiddleware pins that a panicking handler costs one 500,
// not the daemon.
func TestPanicRecoveryMiddleware(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	h := srv.recoverMiddleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500", rec.Code)
	}
	if srv.reg.Counter("mrmd_panics_total").Value() != 1 {
		t.Fatal("panic not accounted")
	}
}

// TestServeReturnsNilOnShutdown pins Serve's graceful-close contract: the
// net/http ErrServerClosed that Serve sees on Shutdown is recognized via
// errors.Is and mapped to nil, so callers (cmd/mrmd's errgroup-style wait)
// do not mistake a clean drain for a crash.
func TestServeReturnsNilOnShutdown(t *testing.T) {
	cfg := Config{
		Build:          testBuilder(t),
		Nodes:          1,
		QueueDepth:     16,
		MaxBatch:       4,
		RequestTimeout: 20 * time.Second,
		DrainTimeout:   20 * time.Second,
		Retry:          RetryPolicy{MaxAttempts: 2, Base: time.Millisecond, Max: 2 * time.Millisecond},
		Seed:           7,
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve() }()
	// One round trip proves the listener is live before the shutdown races it.
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if err := srv.Shutdown(nil); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v after graceful shutdown, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
}

// waitFor polls cond (shell-side wall-clock helper) with a generous bound.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
