package memdev

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"mrm/internal/cellphys"
	"mrm/internal/ecc"
	"mrm/internal/fault"
	"mrm/internal/units"
)

func newTestDevice(t *testing.T, spec Spec) *Device {
	t.Helper()
	d, err := NewDevice(spec)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDeviceRejectsBadSpec(t *testing.T) {
	if _, err := NewDevice(Spec{}); err == nil {
		t.Fatal("empty spec should be rejected")
	}
}

func TestReadCost(t *testing.T) {
	d := newTestDevice(t, HBM3E)
	res, err := d.ReadAt(0, units.GiB)
	if err != nil {
		t.Fatal(err)
	}
	// 1 GiB at 1 TB/s ≈ 1.07 ms plus 100 ns latency.
	wantTransfer := HBM3E.ReadBW.Time(units.GiB)
	if res.Latency != HBM3E.ReadLatency+wantTransfer {
		t.Errorf("latency = %v, want %v", res.Latency, HBM3E.ReadLatency+wantTransfer)
	}
	wantE := HBM3E.ReadEnergyPerBit.PerBit(units.GiB)
	if res.Energy != wantE {
		t.Errorf("energy = %v, want %v", res.Energy, wantE)
	}
	st := d.Stats()
	if st.Reads != 1 || st.ReadBytes != units.GiB {
		t.Errorf("stats = %+v", st)
	}
}

func TestAccessBoundsAndZeroSize(t *testing.T) {
	d := newTestDevice(t, EverspinSTT)
	if _, err := d.ReadAt(d.Spec().Capacity-10, 20); err == nil {
		t.Error("out-of-bounds read should error")
	}
	if _, err := d.WriteAt(0, 0); err == nil {
		t.Error("zero-size write should error")
	}
}

func TestWearAccumulates(t *testing.T) {
	d := newTestDevice(t, MRMSpec(cellphys.RRAM, 24*time.Hour))
	blk := d.Spec().BlockSize
	for i := 0; i < 10; i++ {
		if _, err := d.WriteAt(0, blk); err != nil {
			t.Fatal(err)
		}
	}
	w := d.Wear()
	if w.MaxCycles < 9.99 || w.MaxCycles > 10.01 {
		t.Errorf("MaxCycles = %v, want 10", w.MaxCycles)
	}
	if w.LifeUsed <= 0 {
		t.Error("LifeUsed should be positive")
	}
}

func TestFractionalWear(t *testing.T) {
	d := newTestDevice(t, MRMSpec(cellphys.RRAM, 24*time.Hour))
	blk := d.Spec().BlockSize
	// Writing half a block should cost half a cycle.
	if _, err := d.WriteAt(0, blk/2); err != nil {
		t.Fatal(err)
	}
	w := d.Wear()
	if w.MaxCycles < 0.49 || w.MaxCycles > 0.51 {
		t.Errorf("MaxCycles = %v, want 0.5", w.MaxCycles)
	}
}

func TestWearSpansBlocks(t *testing.T) {
	d := newTestDevice(t, MRMSpec(cellphys.RRAM, 24*time.Hour))
	blk := d.Spec().BlockSize
	// A write crossing a block boundary wears both blocks fractionally.
	if _, err := d.WriteAt(blk/2, blk); err != nil {
		t.Fatal(err)
	}
	w := d.Wear()
	if w.MaxCycles > 0.51 {
		t.Errorf("boundary-crossing write should wear each block by 0.5, got max %v", w.MaxCycles)
	}
}

func TestBERGrowsWithAgeOnManagedDevice(t *testing.T) {
	d := newTestDevice(t, MRMSpec(cellphys.RRAM, time.Hour))
	blk := d.Spec().BlockSize
	if _, err := d.WriteAt(0, blk); err != nil {
		t.Fatal(err)
	}
	fresh, err := d.ReadAt(0, blk)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Advance(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	stale, err := d.ReadAt(0, blk)
	if err != nil {
		t.Fatal(err)
	}
	if stale.RawBER <= fresh.RawBER {
		t.Errorf("BER should grow past retention: fresh %g, stale %g", fresh.RawBER, stale.RawBER)
	}
}

func TestFaultInjectionCertain(t *testing.T) {
	d := newTestDevice(t, HBM3E)
	d.SetFaults(FaultConfig{Seed: 1, TransientRate: 1})
	res, err := d.ReadAt(0, units.KiB)
	if !errors.Is(err, fault.ErrUncorrectable) {
		t.Fatalf("rate-1 injector must fault: err = %v", err)
	}
	// The read's cost is charged even when it faults: the controller did the
	// work before ECC declared defeat.
	if res.Latency <= 0 || res.Energy <= 0 {
		t.Fatalf("faulted read should still report cost: %+v", res)
	}
	st := d.Stats()
	if st.Uncorrectable != 1 || st.TransientFaults != 1 || st.RetentionLapses != 0 {
		t.Fatalf("stats = %+v", st)
	}

	d.SetFaults(FaultConfig{Seed: 1, LapseRate: 1})
	if _, err := d.ReadAt(0, units.KiB); !errors.Is(err, fault.ErrUncorrectable) {
		t.Fatalf("rate-1 lapse must fault: err = %v", err)
	}
	if st := d.Stats(); st.RetentionLapses != 1 {
		t.Fatalf("lapse not counted: %+v", st)
	}
}

func TestFaultInjectionDisabled(t *testing.T) {
	// Never arming faults, arming with zero rates, and re-arming with the
	// zero config all behave identically: no read ever errors.
	for name, arm := range map[string]func(*Device){
		"never-armed": func(*Device) {},
		"zero-rates":  func(d *Device) { d.SetFaults(FaultConfig{Seed: 9}) },
		"disarmed": func(d *Device) {
			d.SetFaults(FaultConfig{Seed: 9, TransientRate: 1, LapseRate: 1})
			d.SetFaults(FaultConfig{})
		},
	} {
		d := newTestDevice(t, HBM3E)
		arm(d)
		for i := 0; i < 100; i++ {
			if _, err := d.ReadAt(0, units.KiB); err != nil {
				t.Fatalf("%s: read %d errored: %v", name, i, err)
			}
		}
		if st := d.Stats(); st.Uncorrectable != 0 {
			t.Fatalf("%s: stats = %+v", name, st)
		}
	}
}

func TestFaultSequenceDeterministic(t *testing.T) {
	// The fault pattern is a pure function of (seed, read index): two devices
	// with the same seed fault on exactly the same reads, regardless of
	// wall-clock or construction order.
	pattern := func(seed uint64) []bool {
		d := newTestDevice(t, HBM3E)
		d.SetFaults(FaultConfig{Seed: seed, TransientRate: 0.3, LapseRate: 0.1})
		hits := make([]bool, 200)
		for i := range hits {
			_, err := d.ReadAt(0, units.KiB)
			hits[i] = err != nil
		}
		return hits
	}
	a, b := pattern(42), pattern(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different fault sequences")
	}
	if reflect.DeepEqual(a, pattern(43)) {
		t.Fatal("different seeds produced identical fault sequences (suspicious)")
	}
	faults := 0
	for _, h := range a {
		if h {
			faults++
		}
	}
	// ~40% of 200 reads; a loose band catches a broken U01 mapping.
	if faults < 40 || faults > 120 {
		t.Fatalf("fault count %d/200 far from the 40%% target", faults)
	}
}

func TestBERThresholdFaultsOrganically(t *testing.T) {
	// An aggressive UBER target on a managed device: once the data ages past
	// retention, raw BER crosses the ECC budget and the read is
	// uncorrectable — with no injected randomness at all.
	d := newTestDevice(t, MRMSpec(cellphys.RRAM, time.Hour))
	d.SetFaults(FaultConfig{Code: ecc.RSSpec(255, 239), UBERTarget: 1e-18})
	blk := d.Spec().BlockSize
	if _, err := d.WriteAt(0, blk); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadAt(0, blk); err != nil {
		t.Fatalf("fresh read should pass ECC: %v", err)
	}
	if err := d.Advance(48 * time.Hour); err != nil {
		t.Fatal(err)
	}
	res, err := d.ReadAt(0, blk)
	if !errors.Is(err, fault.ErrUncorrectable) {
		t.Fatalf("stale read (BER %g) should exceed the ECC budget: err = %v", res.RawBER, err)
	}
	st := d.Stats()
	if st.Uncorrectable != 1 || st.TransientFaults != 0 || st.RetentionLapses != 0 {
		t.Fatalf("organic fault miscounted: %+v", st)
	}
}

func TestAdvanceChargesIdleEnergy(t *testing.T) {
	d := newTestDevice(t, HBM3E)
	if err := d.Advance(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	e := d.Energy()
	if e.Static <= 0 || e.Refresh <= 0 {
		t.Errorf("HBM idle must cost static+refresh energy: %+v", e)
	}
	wantStatic := HBM3E.StaticPower.Over(10 * time.Second)
	if e.Static != wantStatic {
		t.Errorf("static = %v, want %v", e.Static, wantStatic)
	}
	if d.Now() != 10*time.Second {
		t.Errorf("Now = %v", d.Now())
	}
	if err := d.Advance(-time.Second); err == nil {
		t.Error("negative advance should error")
	}
}

func TestMRMIdleCheaperThanHBM(t *testing.T) {
	h := newTestDevice(t, HBM3E)
	m := newTestDevice(t, MRMSpec(cellphys.RRAM, 24*time.Hour))
	_ = h.Advance(time.Minute)
	_ = m.Advance(time.Minute)
	if m.Energy().Total() >= h.Energy().Total() {
		t.Errorf("MRM idle energy %v should undercut HBM %v",
			m.Energy().Total(), h.Energy().Total())
	}
	if m.Energy().Refresh != 0 {
		t.Error("MRM refresh energy must be zero")
	}
}

func TestEnergyBreakdownTotal(t *testing.T) {
	e := EnergyBreakdown{Read: 1, Write: 2, Refresh: 3, Static: 4}
	if e.Total() != 10 {
		t.Fatalf("Total = %v", e.Total())
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := newTestDevice(t, HBM3E)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_, _ = d.ReadAt(units.Bytes(g)*units.MiB, units.KiB)
				_, _ = d.WriteAt(units.Bytes(g)*units.MiB, units.KiB)
			}
		}(g)
	}
	wg.Wait()
	st := d.Stats()
	if st.Reads != 1600 || st.Writes != 1600 {
		t.Fatalf("stats lost updates: %+v", st)
	}
}

func TestAccessKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("kind names wrong")
	}
}

// Property: total wear (sum over blocks) equals total bytes written divided
// by block size, regardless of the access pattern.
func TestWearConservation(t *testing.T) {
	spec := MRMSpec(cellphys.RRAM, 24*time.Hour)
	f := func(ops []struct {
		Addr uint32
		Size uint16
	}) bool {
		d, err := NewDevice(spec)
		if err != nil {
			return false
		}
		var total units.Bytes
		for _, op := range ops {
			addr := units.Bytes(op.Addr) % spec.Capacity
			size := units.Bytes(op.Size)%spec.BlockSize + 1
			if addr+size > spec.Capacity {
				continue
			}
			if _, err := d.WriteAt(addr, size); err != nil {
				return false
			}
			total += size
		}
		want := float64(total) / float64(spec.BlockSize)
		got := d.Wear().MeanCycles * float64(spec.Capacity/spec.BlockSize)
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-6*(want+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
