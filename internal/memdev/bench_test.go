package memdev

import (
	"testing"
	"time"

	"mrm/internal/units"
)

// weightDevice builds a device sized like an accelerator's weight store:
// 192 GiB of HBM-class memory tracked at 2 MiB wear blocks (~98k blocks), a
// weight-sized object written across most of it, and an hour of age so the
// retention-decay term of the BER model is live.
func weightDevice(b *testing.B) (*Device, units.Bytes) {
	b.Helper()
	spec := HBM3E
	spec.Capacity = 192 * units.GiB
	d, err := NewDevice(spec)
	if err != nil {
		b.Fatal(err)
	}
	size := 140 * units.GiB
	if _, err := d.WriteAt(0, size); err != nil {
		b.Fatal(err)
	}
	if err := d.Advance(time.Hour); err != nil {
		b.Fatal(err)
	}
	return d, size
}

// BenchmarkDeviceReadWeights is the simulator's dominant access: one read
// spanning a weight-sized range (70k wear blocks), issued once per decode
// step. Its cost is the per-block worst-BER scan.
func BenchmarkDeviceReadWeights(b *testing.B) {
	d, size := weightDevice(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.ReadAt(0, size); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(size))
}

// BenchmarkDeviceReadPages is the KV access pattern: many small contiguous
// page reads (each well under one wear block), issued call by call.
func BenchmarkDeviceReadPages(b *testing.B) {
	d, _ := weightDevice(b)
	const pages = 1024
	pageBytes := 832 * units.KiB // Llama2-70B KV page at 16 tokens/page
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := units.Bytes(0); p < pages; p++ {
			if _, err := d.ReadAt(p*pageBytes, pageBytes); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.SetBytes(int64(pages * pageBytes))
}

// BenchmarkDeviceReadSpans issues the same 1024 page reads as
// BenchmarkDeviceReadPages as one batched call: identical accounting per
// span, one lock acquisition total.
func BenchmarkDeviceReadSpans(b *testing.B) {
	d, _ := weightDevice(b)
	const pages = 1024
	pageBytes := 832 * units.KiB
	spans := make([]Span, pages)
	for p := range spans {
		spans[p] = Span{Addr: units.Bytes(p) * pageBytes, Size: pageBytes}
	}
	results := make([]Result, pages)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.ReadSpans(spans, results); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(pages * pageBytes))
}

// BenchmarkDeviceWriteLarge measures wear accounting for a weight-sized
// write: every interior block is fully covered, so its wear update should be
// one addition, not an overlap computation.
func BenchmarkDeviceWriteLarge(b *testing.B) {
	spec := HBM3E
	spec.Capacity = 192 * units.GiB
	d, err := NewDevice(spec)
	if err != nil {
		b.Fatal(err)
	}
	size := 140 * units.GiB
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.WriteAt(1024, size); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(size))
}
