package memdev

import (
	"math/rand"
	"testing"
	"time"

	"mrm/internal/ecc"
	"mrm/internal/units"
)

// driveDevice runs a fixed access mix against a device and returns the
// Results of its reads. The schedule is seeded so both twin instances see
// the identical access sequence.
func driveDevice(t *testing.T, d *Device, seed int64) []Result {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var out []Result
	for i := 0; i < 400; i++ {
		addr := units.Bytes(rng.Intn(256)) * units.MiB
		size := units.Bytes(1+rng.Intn(16)) * units.MiB
		switch rng.Intn(3) {
		case 0:
			if _, err := d.WriteAt(addr, size); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
		case 1:
			res, err := d.ReadAt(addr, size)
			if err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
			out = append(out, res)
		default:
			if err := d.Advance(time.Duration(rng.Intn(1000)) * time.Millisecond); err != nil {
				t.Fatal(err)
			}
		}
	}
	return out
}

// TestBERTrackingOffTwin runs twin devices — tracking on vs off — through an
// identical schedule and checks that everything except Result.RawBER is
// bit-identical: latencies, energies, counters, wear. RawBER must be 0 with
// tracking off and >= 0 with it on.
func TestBERTrackingOffTwin(t *testing.T) {
	spec := HBM3E
	spec.Capacity = 640 * units.MiB
	on, err := NewDevice(spec)
	if err != nil {
		t.Fatal(err)
	}
	off, err := NewDevice(spec)
	if err != nil {
		t.Fatal(err)
	}
	off.SetBERTracking(false)
	resOn := driveDevice(t, on, 99)
	resOff := driveDevice(t, off, 99)
	if len(resOn) != len(resOff) {
		t.Fatalf("twin read counts differ: %d vs %d", len(resOn), len(resOff))
	}
	for i := range resOn {
		if resOn[i].Latency != resOff[i].Latency || resOn[i].Energy != resOff[i].Energy {
			t.Fatalf("read %d cost differs: %+v vs %+v", i, resOn[i], resOff[i])
		}
		if resOff[i].RawBER != 0 {
			t.Fatalf("read %d: RawBER %v reported with tracking off", i, resOff[i].RawBER)
		}
	}
	if on.Energy() != off.Energy() {
		t.Fatalf("energy differs: %+v vs %+v", on.Energy(), off.Energy())
	}
	if on.Stats() != off.Stats() {
		t.Fatalf("stats differ: %+v vs %+v", on.Stats(), off.Stats())
	}
	if on.Wear() != off.Wear() {
		t.Fatalf("wear differs: %+v vs %+v", on.Wear(), off.Wear())
	}
}

// TestBERTrackingOffKeepsECCBudgetCheck pins that an armed ECC budget forces
// the worst-BER scan even with tracking off: organic uncorrectable reads — the
// wear/age-outruns-the-code failure mode — must not be silently disabled.
func TestBERTrackingOffKeepsECCBudgetCheck(t *testing.T) {
	spec := HBM3E
	spec.Capacity = 64 * units.MiB
	spec.Endurance = 100 // tiny, so a few writes push BER over any budget
	d, err := NewDevice(spec)
	if err != nil {
		t.Fatal(err)
	}
	d.SetBERTracking(false)
	d.SetFaults(FaultConfig{Seed: 1, Code: ecc.RSSpec(255, 223), UBERTarget: 1e-18})
	// Wear one block far past its endurance.
	for i := 0; i < 5000; i++ {
		if _, err := d.WriteAt(0, 2*units.MiB); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	res, err := d.ReadAt(0, 2*units.MiB)
	if err == nil {
		t.Fatal("worn-out read succeeded: ECC budget check lost with tracking off")
	}
	if res.RawBER == 0 {
		t.Fatal("uncorrectable read reported RawBER 0: budget path must still scan")
	}
}
