package memdev

import (
	"fmt"
	"sync"
	"time"

	"mrm/internal/cellphys"
	"mrm/internal/ecc"
	"mrm/internal/fault"
	"mrm/internal/units"
)

// AccessKind distinguishes reads from writes.
type AccessKind int

// Access kinds.
const (
	Read AccessKind = iota
	Write
)

// String names the kind.
func (k AccessKind) String() string {
	if k == Read {
		return "read"
	}
	return "write"
}

// Result reports the cost of one access.
type Result struct {
	Latency time.Duration // first-byte latency + transfer time
	Energy  units.Energy
	// RawBER is the expected raw bit error rate of the data returned by a
	// read (0 for writes): it reflects wear of the touched blocks and, for
	// managed devices, time since the data was written.
	RawBER float64
}

// EnergyBreakdown accumulates device energy by component.
type EnergyBreakdown struct {
	Read    units.Energy
	Write   units.Energy
	Refresh units.Energy
	Static  units.Energy
}

// Total sums all components.
func (e EnergyBreakdown) Total() units.Energy {
	return e.Read + e.Write + e.Refresh + e.Static
}

// Device simulates one memory device instance. It charges latency and energy
// per access, tracks per-block wear, and integrates background (static +
// refresh) power over simulated time via Advance. Device is safe for
// concurrent use.
type Device struct {
	spec      Spec
	wearBlock units.Bytes // granularity at which wear is tracked

	mu         sync.Mutex
	now        time.Duration // simulated device-local time
	wear       []float64     // write cycles per wear block
	lastWrite  []time.Duration
	energy     EnergyBreakdown
	reads      uint64
	writes     uint64
	readBytes  units.Bytes
	writeBytes units.Bytes
	berParams  cellphys.RawBERParams
	op         cellphys.OperatingPoint // fixed operating point from the spec

	// Fault injection (SetFaults). All decisions are pure functions of the
	// fault seed and the read counter, so a device's fault sequence is
	// deterministic regardless of goroutine scheduling.
	maxBER        float64 // ECC correction ceiling; 0 disables the check
	transient     *fault.Injector
	lapse         *fault.Injector
	uncorrectable uint64 // total reads returning ErrUncorrectable
	transients    uint64
	lapses        uint64
}

// NewDevice creates a device from spec. Wear is tracked per spec.BlockSize
// (or per 2 MiB for byte-addressable devices).
func NewDevice(spec Spec) (*Device, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	wb := spec.BlockSize
	if wb == 0 {
		wb = 2 * units.MiB
	}
	n := (spec.Capacity + wb - 1) / wb
	if n == 0 {
		n = 1
	}
	tr := cellphys.ForTechnology(spec.Tech)
	// Derive the fixed operating point implied by the spec: its retention
	// clamped into the technology's legal range.
	ret := spec.Retention
	if ret < tr.MinRetention {
		ret = tr.MinRetention
	}
	if ret > tr.MaxRetention {
		ret = tr.MaxRetention
	}
	op := tr.MustAt(ret)
	// Trust the spec sheet's endurance over the generic curve: products bin
	// and derate cells in ways the curve cannot know.
	op.Endurance = spec.Endurance
	return &Device{
		spec:      spec,
		wearBlock: wb,
		wear:      make([]float64, n),
		lastWrite: make([]time.Duration, n),
		berParams: cellphys.DefaultBER,
		op:        op,
	}, nil
}

// Spec returns the device's specification.
func (d *Device) Spec() Spec { return d.spec }

// FaultConfig arms a device's fault-injection path. The zero value disables
// everything; drivers that never call SetFaults are byte-identical to the
// pre-fault simulator.
type FaultConfig struct {
	// Seed drives the injected-fault streams; decisions are pure functions
	// of (Seed, stream, read index).
	Seed uint64
	// Code and UBERTarget define the device's ECC plan: reads whose
	// worst-block raw BER exceeds Code.MaxBERForUBER(UBERTarget) surface as
	// fault.ErrUncorrectable — the organic failure path where wear or age
	// outruns the code. A zero Code (N == 0) or UBERTarget disables the
	// threshold.
	Code       ecc.CodeSpec
	UBERTarget float64
	// TransientRate is the per-read probability of a transient uncorrectable
	// fault (particle strike, read disturb).
	TransientRate float64
	// LapseRate is the per-read probability that the touched data's
	// retention lapsed before the scrubber reached it: the managed-retention
	// failure mode §4 argues ECC must absorb.
	LapseRate float64
}

// SetFaults installs (or, with a zero config, removes) fault injection.
func (d *Device) SetFaults(cfg FaultConfig) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.maxBER = 0
	if cfg.Code.N > 0 && cfg.UBERTarget > 0 {
		d.maxBER = cfg.Code.MaxBERForUBER(cfg.UBERTarget)
	}
	d.transient = fault.NewInjector(cfg.Seed, cfg.TransientRate)
	d.lapse = fault.NewInjector(cfg.Seed, cfg.LapseRate)
}

// Now returns the device-local simulated time.
func (d *Device) Now() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.now
}

// Advance moves simulated time forward, charging static and refresh energy
// for the elapsed window. It is an error to move time backwards.
func (d *Device) Advance(dt time.Duration) error {
	if dt < 0 {
		return fmt.Errorf("memdev: cannot advance time by %v", dt)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.now += dt
	d.energy.Static += d.spec.StaticPower.Over(dt)
	d.energy.Refresh += d.spec.RefreshPower().Over(dt)
	return nil
}

func (d *Device) blockRange(addr, size units.Bytes) (first, last int, err error) {
	if size == 0 {
		return 0, 0, fmt.Errorf("memdev: zero-size access")
	}
	if addr+size > d.spec.Capacity {
		return 0, 0, fmt.Errorf("memdev: access [%d, %d) beyond capacity %v",
			addr, addr+size, d.spec.Capacity)
	}
	first = int(addr / d.wearBlock)
	last = int((addr + size - 1) / d.wearBlock)
	return first, last, nil
}

// ReadAt performs a read of size bytes at addr and returns its cost. With
// fault injection armed (SetFaults), a read whose raw BER exceeds the ECC
// plan's budget — organically, or via an injected transient fault or
// retention lapse — returns fault.ErrUncorrectable alongside the cost: the
// access happened and is charged, but the data is lost and the caller must
// degrade (drop + recompute soft state, restore durable state).
func (d *Device) ReadAt(addr, size units.Bytes) (Result, error) {
	first, last, err := d.blockRange(addr, size)
	if err != nil {
		return Result{}, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	lat := d.spec.ReadLatency + d.spec.ReadBW.Time(size)
	e := d.spec.ReadEnergyPerBit.PerBit(size)
	d.energy.Read += e
	d.reads++
	d.readBytes += size
	// Report the worst BER across the touched blocks.
	worst := 0.0
	for b := first; b <= last; b++ {
		age := d.now - d.lastWrite[b]
		if age < 0 {
			age = 0
		}
		ber := cellphys.RawBER(d.op, cellphys.WearState{Cycles: d.wear[b]}, age, d.berParams)
		if ber > worst {
			worst = ber
		}
	}
	res := Result{Latency: lat, Energy: e, RawBER: worst}
	event := d.reads // monotone, deterministic event index for this read
	if d.transient.Hit(fault.StreamTransient, event) {
		d.transients++
		d.uncorrectable++
		return res, fmt.Errorf("memdev: %s: transient fault on read %d at [%d, %d): %w",
			d.spec.Name, event, addr, addr+size, fault.ErrUncorrectable)
	}
	if d.lapse.Hit(fault.StreamLapse, event) {
		d.lapses++
		d.uncorrectable++
		return res, fmt.Errorf("memdev: %s: retention lapse on read %d at [%d, %d): %w",
			d.spec.Name, event, addr, addr+size, fault.ErrUncorrectable)
	}
	if d.maxBER > 0 && worst > d.maxBER {
		d.uncorrectable++
		return res, fmt.Errorf("memdev: %s: raw BER %.3g exceeds ECC budget %.3g at [%d, %d): %w",
			d.spec.Name, worst, d.maxBER, addr, addr+size, fault.ErrUncorrectable)
	}
	return res, nil
}

// WriteAt performs a write of size bytes at addr, wearing the touched blocks.
func (d *Device) WriteAt(addr, size units.Bytes) (Result, error) {
	first, last, err := d.blockRange(addr, size)
	if err != nil {
		return Result{}, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	lat := d.spec.WriteLatency + d.spec.WriteBW.Time(size)
	e := d.spec.WriteEnergyPerBit.PerBit(size)
	d.energy.Write += e
	d.writes++
	d.writeBytes += size
	for b := first; b <= last; b++ {
		// Charge fractional wear proportional to how much of the block the
		// write covers, so small writes do not count as full-block cycles.
		bStart := units.Bytes(b) * d.wearBlock
		bEnd := bStart + d.wearBlock
		cover := overlap(addr, addr+size, bStart, bEnd)
		d.wear[b] += float64(cover) / float64(d.wearBlock)
		d.lastWrite[b] = d.now
	}
	return Result{Latency: lat, Energy: e}, nil
}

func overlap(a0, a1, b0, b1 units.Bytes) units.Bytes {
	lo, hi := max64(a0, b0), min64(a1, b1)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

func max64(a, b units.Bytes) units.Bytes {
	if a > b {
		return a
	}
	return b
}

func min64(a, b units.Bytes) units.Bytes {
	if a < b {
		return a
	}
	return b
}

// WearSummary reports wear statistics across blocks.
type WearSummary struct {
	MaxCycles  float64
	MeanCycles float64
	// LifeUsed is MaxCycles / endurance: the fraction of device life consumed
	// at the most-worn block.
	LifeUsed float64
}

// Wear returns the current wear summary.
func (d *Device) Wear() WearSummary {
	d.mu.Lock()
	defer d.mu.Unlock()
	var maxC, sum float64
	for _, c := range d.wear {
		if c > maxC {
			maxC = c
		}
		sum += c
	}
	mean := sum / float64(len(d.wear))
	return WearSummary{
		MaxCycles:  maxC,
		MeanCycles: mean,
		LifeUsed:   maxC / d.spec.Endurance,
	}
}

// Energy returns the accumulated energy breakdown.
func (d *Device) Energy() EnergyBreakdown {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.energy
}

// Stats reports access counts, bytes moved, and fault events (the counters
// the fault reports aggregate per tier).
type Stats struct {
	Reads, Writes         uint64
	ReadBytes, WriteBytes units.Bytes
	// Uncorrectable is the total reads that returned fault.ErrUncorrectable;
	// TransientFaults and RetentionLapses break out the injected causes (the
	// remainder crossed the ECC BER budget organically).
	Uncorrectable   uint64
	TransientFaults uint64
	RetentionLapses uint64
}

// Stats returns the access statistics.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Stats{
		Reads: d.reads, Writes: d.writes,
		ReadBytes: d.readBytes, WriteBytes: d.writeBytes,
		Uncorrectable:   d.uncorrectable,
		TransientFaults: d.transients,
		RetentionLapses: d.lapses,
	}
}
